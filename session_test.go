package adj

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"adj/internal/relation"
)

// hcubeEngines are the engines whose executions go through the block-trie
// registry (and therefore the session store).
var hcubeEngines = map[string]bool{"ADJ": true, "HCubeJ": true, "HCubeJ+Cache": true}

func randomEdges(t *testing.T, rng *rand.Rand, n, vertices int) *Relation {
	t.Helper()
	r := NewRelation("E", "src", "dst")
	for i := 0; i < n; i++ {
		r.Append(Value(rng.Intn(vertices)), Value(rng.Intn(vertices)))
	}
	return r
}

func sortedBytes(t *testing.T, r *Relation) []byte {
	t.Helper()
	if r == nil {
		return nil
	}
	c := r.Clone()
	c.Sort()
	return relation.Encode(c)
}

// TestSessionMatchesOneShot is the randomized session-vs-oneshot
// equivalence: for random graphs, every engine must produce the same count
// and the same output multiset through a PreparedQuery (twice — cold and
// warm) as through the one-shot RunGraph, and warm executions of the HCube
// engines must be served entirely from the session trie store.
func TestSessionMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []string{"Q1", "Q2"}
	for trial := 0; trial < 3; trial++ {
		edges := randomEdges(t, rng, 300+rng.Intn(300), 40+rng.Intn(40))
		q := CatalogQuery(queries[trial%len(queries)])
		opts := Options{Workers: 3, Samples: 60, Seed: int64(trial + 1)}

		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Register("edges", edges); err != nil {
			t.Fatal(err)
		}
		for _, name := range EngineNames() {
			oneshotOpts := opts
			oneshotOpts.CollectOutput = true
			base, err := RunGraph(name, q, edges, oneshotOpts)
			if err != nil {
				t.Fatalf("%s oneshot: %v", name, err)
			}
			baseBytes := sortedBytes(t, base.Output)

			pq, err := s.PrepareGraph(name, q, "edges")
			if err != nil {
				t.Fatalf("%s prepare: %v", name, err)
			}
			for exec := 0; exec < 2; exec++ {
				res, err := pq.Exec(context.Background())
				if err != nil {
					t.Fatalf("%s exec %d: %v", name, exec, err)
				}
				rep := res.Report()
				if rep.Failed {
					t.Fatalf("%s exec %d failed: %s", name, exec, rep.FailReason)
				}
				if res.Count() != base.Results {
					t.Fatalf("%s exec %d: count %d, oneshot %d", name, exec, res.Count(), base.Results)
				}
				if got := sortedBytes(t, res.Rows()); !bytes.Equal(got, baseBytes) {
					t.Fatalf("%s exec %d: output differs from oneshot", name, exec)
				}
				// Streamed runs must reconstruct exactly the materialized rows.
				rebuilt := NewRelation("out", res.Attrs()...)
				res.Reset()
				row := make([]Value, len(res.Attrs()))
				for {
					prefix, vals, ok := res.NextRun()
					if !ok {
						break
					}
					copy(row, prefix)
					for _, v := range vals {
						row[len(row)-1] = v
						rebuilt.AppendTuple(row)
					}
				}
				if !rebuilt.Equal(res.Rows()) {
					t.Fatalf("%s exec %d: NextRun stream does not reconstruct Rows()", name, exec)
				}
				if exec == 1 && hcubeEngines[name] {
					if rep.TrieBuilds != 0 {
						t.Fatalf("%s warm exec: %d trie builds, want 0", name, rep.TrieBuilds)
					}
					if rep.TrieCacheHits == 0 {
						t.Fatalf("%s warm exec: no trie cache hits", name)
					}
					// The HCube shuffle itself is skipped warm; ADJ plans
					// with pre-computed bags (marked "*") still shuffle the
					// bag-materializing joins each run.
					if rep.TuplesShuffled != 0 && !strings.Contains(rep.Plan, "*") {
						t.Fatalf("%s warm exec: shuffled %d tuples, want 0", name, rep.TuplesShuffled)
					}
				}
				if exec == 0 && hcubeEngines[name] && rep.CacheBlocks > 0 && rep.TrieBuilds == 0 {
					// The first execution of the first engine must be cold;
					// later engines may legitimately share store entries
					// (identical shares and permutations), which is the
					// cross-engine reuse the content keying buys.
					t.Logf("%s cold exec served from store (cross-engine reuse)", name)
				}
			}
		}
		s.Close()
	}
}

// TestSessionCountOnly checks the count-only execution path and that
// NextRun yields nothing without materialized output.
func TestSessionCountOnly(t *testing.T) {
	edges := GenerateGraph("WB", 0.03)
	s, err := Open(Options{Workers: 3, Samples: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() <= 0 {
		t.Fatal("expected triangles")
	}
	if res.Rows() != nil {
		t.Fatal("CountOnly must not materialize rows")
	}
	if _, _, ok := res.NextRun(); ok {
		t.Fatal("CountOnly must not stream runs")
	}
}

// TestSessionAdHocDatabase prepares a query over individually registered
// relations and checks re-registration invalidates warm reuse.
func TestSessionAdHocDatabase(t *testing.T) {
	q, err := ParseQuery("Qt :- R(a,b) ⋈ S(b,c) ⋈ T(a,c)")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, rows [][]Value) *Relation {
		r := NewRelation(name, "x", "y")
		for _, row := range rows {
			r.Append(row...)
		}
		return r
	}
	e := [][]Value{{1, 2}, {2, 3}, {1, 3}}
	s, err := Open(Options{Workers: 2, Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.RegisterDatabase(Database{"R": mk("R", e), "S": mk("S", e), "T": mk("T", e)}); err != nil {
		t.Fatal(err)
	}
	pq, err := s.Prepare("ADJ", q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 1 {
		t.Fatalf("count=%d want 1", res.Count())
	}
	// Warm re-execution.
	res2, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report().TrieBuilds != 0 {
		t.Fatalf("warm exec built %d tries", res2.Report().TrieBuilds)
	}
	// Re-register R with different content: next exec must go cold for R's
	// blocks and see the new result.
	e2 := [][]Value{{1, 2}, {2, 3}, {1, 3}, {3, 4}, {4, 5}, {3, 5}}
	if err := s.Register("R", mk("R", e2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("S", mk("S", e2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("T", mk("T", e2)); err != nil {
		t.Fatal(err)
	}
	res3, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res3.Count() != 2 {
		t.Fatalf("after re-register count=%d want 2", res3.Count())
	}
	if res3.Report().TrieBuilds == 0 {
		t.Fatal("re-registered content must rebuild tries")
	}
}

// TestSessionEvictionRespectsBudget forces the trie store far under the
// workload's footprint: resident bytes must stay within the budget,
// evictions must occur, and execution must stay correct (falling back to
// cold shuffles when block sets are broken).
func TestSessionEvictionRespectsBudget(t *testing.T) {
	edges := GenerateGraph("WB", 0.05)
	s, err := Open(Options{Workers: 4, Samples: 100, Seed: 3, TrieStoreBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	var want int64 = -1
	for i := 0; i < 3; i++ {
		res, err := pq.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if want < 0 {
			want = res.Count()
		} else if res.Count() != want {
			t.Fatalf("exec %d count=%d want %d", i, res.Count(), want)
		}
	}
	st := s.TrieStoreStats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a %d-byte budget (resident %d bytes)", st.Budget, st.Bytes)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("store bytes %d exceed budget %d", st.Bytes, st.Budget)
	}
}

// TestSessionReuseDisabled checks TrieStoreBytes < 0 turns reuse off: the
// second execution rebuilds everything and the store stays empty.
func TestSessionReuseDisabled(t *testing.T) {
	edges := GenerateGraph("WB", 0.03)
	s, err := Open(Options{Workers: 3, Samples: 80, Seed: 4, TrieStoreBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := pq.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Report().TrieBuilds == 0 {
			t.Fatalf("exec %d: reuse disabled but no builds", i)
		}
	}
	if st := s.TrieStoreStats(); st.Blocks != 0 {
		t.Fatalf("disabled store holds %d blocks", st.Blocks)
	}
}

// TestSessionExecCancel cancels a mid-flight execution and checks it
// returns promptly with the context error and without leaking goroutines.
func TestSessionExecCancel(t *testing.T) {
	edges := GenerateGraph("LJ", 0.3)
	s, err := Open(Options{Workers: 4, Samples: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q5"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := pq.Exec(ctx)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Log("execution finished before cancellation took effect")
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled execution did not return")
	}
	waitForGoroutines(t, before)
}

func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
