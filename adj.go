// Package adj is a Go implementation of ADJ — Adaptive Distributed Join —
// from "Fast Distributed Complex Join Processing" (Zhang, Qiao, Yu, Cheng;
// ICDE 2021, arXiv:2102.13370).
//
// ADJ evaluates complex natural-join queries (cyclic subgraph patterns,
// FK–FK joins) on a cluster in one communication round: an HCube shuffle
// partitions the join's output space across servers, and a Leapfrog
// worst-case-optimal join evaluates each partition locally. The system's
// contribution is *co-optimization*: instead of minimizing communication
// alone (HCubeJ), ADJ's optimizer may pre-compute selected bags of a
// generalized hypertree decomposition — trading a little communication and
// pre-computing for a large cut in Leapfrog computation — choosing the plan
// that minimizes the combined cost, with cardinalities estimated by a
// distributed sampler with a Chernoff–Hoeffding guarantee.
//
// # Quick start
//
//	edges := adj.GenerateGraph("LJ", 0.1)           // synthetic LiveJournal analogue
//	q := adj.CatalogQuery("Q1")                     // triangle query
//	report, err := adj.Count(q, edges, adj.Options{Workers: 8})
//	fmt.Println(report.Results, report.Total())
//
// Arbitrary queries and databases:
//
//	q, _ := adj.ParseQuery("Q :- R(a,b) ⋈ S(b,c) ⋈ T(a,c)")
//	db := adj.Database{"R": r, "S": s, "T": t}
//	report, err := adj.Run("ADJ", q, db, adj.Options{Workers: 4})
//
// The baselines the paper compares against (SparkSQL-style binary joins,
// BigJoin, HCubeJ, HCubeJ+Cache) are available under the same Run API, and
// cmd/experiments regenerates every figure and table of the evaluation.
package adj

import (
	"fmt"

	"adj/internal/costmodel"
	"adj/internal/dataset"
	"adj/internal/engine"
	"adj/internal/ghd"
	"adj/internal/hypergraph"
	"adj/internal/optimizer"
	"adj/internal/relation"
	"adj/internal/yannakakis"
)

// Value is the attribute domain (int64; graph vertex ids).
type Value = relation.Value

// Relation is a named multiset of fixed-arity tuples.
type Relation = relation.Relation

// Tuple is one row of a relation.
type Tuple = relation.Tuple

// Query is a natural join query over named relations.
type Query = hypergraph.Query

// Atom is one relation occurrence in a query.
type Atom = hypergraph.Atom

// Database maps relation names to relations for Query.Bind.
type Database = hypergraph.Database

// Report is an engine run's outcome: result count, cost breakdown
// (optimization / pre-computing / communication / computation seconds),
// shuffle counters and the chosen plan.
type Report = engine.Report

// Options configures a run.
type Options struct {
	// Workers is the simulated cluster size (default 4; the paper uses up
	// to 28).
	Workers int
	// Samples per cardinality estimation (default 1000).
	Samples int
	// Seed makes sampling deterministic.
	Seed int64
	// Budget caps intermediate work; exceeded runs return Failed reports
	// (the paper's 12-hour-timeout analogue). 0 = unlimited.
	Budget int64
	// MemoryPerServer bounds HCube load per server in tuples (0 = unbounded).
	MemoryPerServer int64
	// CollectOutput materializes result tuples into Report.Output.
	CollectOutput bool
}

func (o Options) toConfig() engine.Config {
	return engine.Config{
		NumServers:      o.Workers,
		Samples:         o.Samples,
		Seed:            o.Seed,
		Budget:          o.Budget,
		MemoryPerServer: o.MemoryPerServer,
		CollectOutput:   o.CollectOutput,
	}
}

// EngineNames lists the available engines: "ADJ", "HCubeJ", "HCubeJ+Cache",
// "BigJoin", "SparkSQL".
func EngineNames() []string { return engine.EngineNames() }

// NewRelation creates an empty relation with the given schema.
func NewRelation(name string, attrs ...string) *Relation {
	return relation.New(name, attrs...)
}

// CatalogQuery returns one of the paper's benchmark queries Q1–Q11
// (Fig. 7). It panics on unknown names; use ParseQuery for ad-hoc queries.
func CatalogQuery(name string) Query { return hypergraph.Get(name) }

// CatalogQueries returns all benchmark queries in order.
func CatalogQueries() []Query { return hypergraph.AllQueries() }

// ParseQuery parses "Name :- R1(a,b) ⋈ R2(b,c) ⋈ ..." (JOIN or commas also
// accepted as separators).
func ParseQuery(s string) (Query, error) { return hypergraph.ParseQuery(s) }

// GenerateGraph returns a deterministic synthetic analogue of one of the
// paper's datasets (WB, AS, WT, LJ, EN, OK) at the given scale (1.0 ≈ the
// paper's edge counts ×10⁻³). Results are memoized; do not mutate.
func GenerateGraph(name string, scale float64) *Relation {
	return dataset.Load(name, scale)
}

// LoadGraph reads a SNAP-format edge list ("src dst" per line, '#'
// comments) — the format of the paper's real datasets.
func LoadGraph(path string) (*Relation, error) { return dataset.LoadSNAPFile(path) }

// DatasetNames lists the named synthetic datasets in size order.
func DatasetNames() []string { return dataset.Names() }

// Run executes a query with the named engine over a database. Every atom
// of q must name a relation in db with matching arity.
func Run(engineName string, q Query, db Database, opts Options) (Report, error) {
	run, ok := engine.Engines()[engineName]
	if !ok {
		return Report{}, fmt.Errorf("adj: unknown engine %q (want one of %v)", engineName, EngineNames())
	}
	rels, err := q.Bind(db)
	if err != nil {
		return Report{}, err
	}
	return run(q, rels, opts.toConfig())
}

// RunGraph executes a subgraph query where every atom binds to the same
// edge relation — the paper's benchmark setup.
func RunGraph(engineName string, q Query, edges *Relation, opts Options) (Report, error) {
	run, ok := engine.Engines()[engineName]
	if !ok {
		return Report{}, fmt.Errorf("adj: unknown engine %q (want one of %v)", engineName, EngineNames())
	}
	return run(q, q.BindGraph(edges), opts.toConfig())
}

// Count runs ADJ on a graph-bound query and returns the full report.
func Count(q Query, edges *Relation, opts Options) (Report, error) {
	return RunGraph("ADJ", q, edges, opts)
}

// CountAcyclic evaluates an α-acyclic query with Yannakakis' algorithm
// (linear in input + output; §VI positions it as the acyclic-query
// standard). It errors when the query is cyclic — use Run for those.
func CountAcyclic(q Query, db Database) (int64, error) {
	rels, err := q.Bind(db)
	if err != nil {
		return 0, err
	}
	d, err := ghd.Decompose(q, ghd.Options{})
	if err != nil {
		return 0, err
	}
	return yannakakis.Count(q, rels, d)
}

// Explain returns ADJ's chosen plan for a graph-bound query without
// executing the distributed join (it still samples, which is where
// planning cost lives).
func Explain(q Query, edges *Relation, opts Options) (string, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	o, err := optimizer.New(q, q.BindGraph(edges), optimizer.Options{
		Params:  costmodel.DefaultParams(workers),
		Samples: opts.Samples,
		Seed:    opts.Seed,
	})
	if err != nil {
		return "", err
	}
	plan, err := o.CoOptimize()
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}
