// Package adj is a Go implementation of ADJ — Adaptive Distributed Join —
// from "Fast Distributed Complex Join Processing" (Zhang, Qiao, Yu, Cheng;
// ICDE 2021, arXiv:2102.13370).
//
// ADJ evaluates complex natural-join queries (cyclic subgraph patterns,
// FK–FK joins) on a cluster in one communication round: an HCube shuffle
// partitions the join's output space across servers, and a Leapfrog
// worst-case-optimal join evaluates each partition locally. The system's
// contribution is *co-optimization*: instead of minimizing communication
// alone (HCubeJ), ADJ's optimizer may pre-compute selected bags of a
// generalized hypertree decomposition — trading a little communication and
// pre-computing for a large cut in Leapfrog computation — choosing the plan
// that minimizes the combined cost, with cardinalities estimated by a
// distributed sampler with a Chernoff–Hoeffding guarantee.
//
// # Quick start
//
// The serving shape is a Session: a long-lived resident worker pool that
// answers a stream of queries. Relations are registered once (computing
// content signatures), queries are prepared once (paying sampling and plan
// selection up front), and every execution after the first reuses the
// session's block-trie store — a repeated query skips the shuffle-side trie
// builds entirely:
//
//	sess, _ := adj.Open(adj.Options{Workers: 8, Samples: 500, Seed: 1})
//	defer sess.Close()
//	sess.Register("edges", adj.GenerateGraph("LJ", 0.1))
//
//	pq, _ := sess.PrepareGraph("ADJ", adj.CatalogQuery("Q1"), "edges")
//	res, _ := pq.Exec(context.Background())        // cold: shuffle + build
//	fmt.Println(res.Count())
//
//	res, _ = pq.Exec(context.Background())         // warm: TrieBuilds == 0
//	for {                                          // stream run-aware results
//		prefix, vals, ok := res.NextRun()
//		if !ok {
//			break
//		}
//		_ = prefix // shared binding of all but the last attribute
//		_ = vals   // the run's last-attribute values (zero-copy)
//	}
//
// Ad-hoc databases work the same way:
//
//	q, _ := adj.ParseQuery("Q :- R(a,b) ⋈ S(b,c) ⋈ T(a,c)")
//	sess.Register("R", r)
//	sess.Register("S", s)
//	sess.Register("T", t)
//	pq, _ := sess.Prepare("ADJ", q)
//
// # One-shot compatibility
//
// The original one-shot calls remain and are thin shims over a temporary
// Session (open, register, prepare, execute, close):
//
//	report, err := adj.Count(q, edges, adj.Options{Workers: 8})
//	report, err := adj.Run("ADJ", q, db, adj.Options{Workers: 4})
//
// Migrating to the Session API is worthwhile whenever the same relations
// serve more than one execution: Prepare amortizes sampling, and the
// session's content-keyed trie store amortizes shuffle and trie builds.
//
// The baselines the paper compares against (SparkSQL-style binary joins,
// BigJoin, HCubeJ, HCubeJ+Cache) are available under the same Session and
// Run APIs, and cmd/experiments regenerates every figure and table of the
// evaluation.
package adj

import (
	"fmt"

	"adj/internal/admission"
	"adj/internal/cluster"
	"adj/internal/dataset"
	"adj/internal/engine"
	"adj/internal/ghd"
	"adj/internal/hypergraph"
	"adj/internal/relation"
	"adj/internal/yannakakis"
)

// Value is the attribute domain (int64; graph vertex ids).
type Value = relation.Value

// Relation is a named multiset of fixed-arity tuples.
type Relation = relation.Relation

// Tuple is one row of a relation.
type Tuple = relation.Tuple

// Query is a natural join query over named relations.
type Query = hypergraph.Query

// Atom is one relation occurrence in a query.
type Atom = hypergraph.Atom

// Database maps relation names to relations for Query.Bind.
type Database = hypergraph.Database

// Report is an engine run's outcome: result count, cost breakdown
// (optimization / pre-computing / communication / computation seconds),
// shuffle counters, block-trie cache counters, fault counters
// (PanicsRecovered, TransportRetries, Retried) and the chosen plan.
type Report = engine.Report

// Typed failure classes of an execution, re-exported from the cluster
// runtime so callers classify errors with errors.Is without importing
// internal packages:
//
//   - ErrWorkerPanic: a worker (or the coordinator) panicked; the panic was
//     recovered into the error (errors.As a *cluster.WorkerPanicError for
//     worker ID, phase and stack).
//   - ErrTransport: the exchange transport failed — retries exhausted, a
//     connection died, or a payload arrived corrupt.
//   - ErrCanceled: the execution's context was cancelled (this is
//     context.Canceled itself).
//   - ErrOverloaded: the serving tier shed or refused the request before
//     it ran (admission queue full, bulk shed under pressure, or a tenant
//     over budget). errors.As a *OverloadError for the reason, the queue
//     depth and a retry-after hint; retrying after the hint is always
//     safe because the execution never started.
var (
	ErrWorkerPanic = cluster.ErrWorkerPanic
	ErrTransport   = cluster.ErrTransport
	ErrCanceled    = cluster.ErrCanceled
	ErrOverloaded  = cluster.ErrOverloaded
)

// OverloadError is the typed admission rejection behind ErrOverloaded.
type OverloadError = cluster.OverloadError

// Class is an execution's admission class (see WithClass).
type Class = admission.Class

// Admission classes: Interactive executions are latency-sensitive —
// granted before Bulk and shed only when the queue is hard-full; Bulk
// executions are throughput work, shed first under overload.
const (
	Interactive = admission.Interactive
	Bulk        = admission.Bulk
)

// AdmissionConfig tunes a session's (or server's) admission controller:
// concurrency limit, queue bound, shed watermarks, tenant budgets. The
// zero value derives everything from Options.Concurrency.
type AdmissionConfig = admission.Config

// AdmissionStats snapshots an admission controller (see
// Session.AdmissionStats and Server.Stats).
type AdmissionStats = admission.Stats

// TenantStats is one tenant's decayed budget consumption.
type TenantStats = admission.TenantStats

// IsTransient reports whether an execution error is worth retrying on the
// same session: transport failures are transient, panics and cancellations
// are not. Options.Retry applies exactly this test.
func IsTransient(err error) bool { return cluster.IsTransient(err) }

// Options configures a Session (and, via the one-shot shims, a run).
type Options struct {
	// Workers is the simulated cluster size (default 4; the paper uses up
	// to 28). A Session's worker pool is created once at Open.
	Workers int
	// Samples per cardinality estimation (default 1000).
	Samples int
	// Seed makes sampling deterministic.
	Seed int64
	// Budget caps intermediate work; exceeded runs return Failed reports
	// (the paper's 12-hour-timeout analogue). 0 = unlimited.
	Budget int64
	// MemoryPerServer bounds HCube load per server in tuples (0 = unbounded).
	MemoryPerServer int64
	// CollectOutput materializes result tuples into Report.Output on the
	// one-shot calls. Session executions stream results instead (see
	// PreparedQuery.Exec and CountOnly).
	CollectOutput bool
	// TrieStoreBytes bounds the session-resident block-trie store, the
	// content-keyed cache that lets a repeated query skip shuffle-side trie
	// builds. 0 picks the default (256 MiB); negative disables cross-query
	// reuse entirely. Least-recently-used blocks are evicted when the
	// budget overflows.
	TrieStoreBytes int64
	// Retry opts executions into fail-safe re-running: when an Exec fails
	// with a transient transport error (IsTransient — dial/write
	// exhaustion, a dropped connection, a corrupt payload), the session
	// resets its workers and repeats the execution once; the re-run's
	// Report is marked Retried. Worker panics, cancellations and budget
	// failures are never retried.
	Retry bool
	// Concurrency is the session's resident cluster-pool size — how many
	// Exec calls run truly in parallel (default: the admission
	// controller's concurrency limit, itself defaulting to 1). Each
	// in-flight execution borrows one pool cluster exclusively; the trie
	// store is shared across the pool.
	Concurrency int
	// Admission tunes the session's admission controller (queue bound,
	// shed watermarks, tenant budgets). Zero-value fields take defaults
	// derived from Concurrency. Ignored by Server.OpenShared sessions,
	// which share the server's controller.
	Admission AdmissionConfig
}

func (o Options) toConfig() engine.Config {
	return engine.Config{
		NumServers:      o.Workers,
		Samples:         o.Samples,
		Seed:            o.Seed,
		Budget:          o.Budget,
		MemoryPerServer: o.MemoryPerServer,
		CollectOutput:   o.CollectOutput,
	}
}

// oneShot adapts Options for a temporary single-execution session: the
// cross-query trie store would be discarded unread at Close, so reuse is
// disabled — skipping both the content fingerprint at Register and the
// post-join publish.
func oneShot(opts Options) Options {
	opts.TrieStoreBytes = -1
	return opts
}

// resolveEngine is the single engine-name lookup behind Run, RunGraph and
// Session.Prepare.
func resolveEngine(name string) (engine.RunFunc, error) {
	if run, ok := engine.Engines()[name]; ok {
		return run, nil
	}
	return nil, fmt.Errorf("adj: unknown engine %q (want one of %v)", name, AllEngineNames())
}

// EngineNames lists the paper's engines: "ADJ", "HCubeJ", "HCubeJ+Cache",
// "BigJoin", "SparkSQL".
func EngineNames() []string { return engine.EngineNames() }

// AllEngineNames is EngineNames plus "Hybrid", the selectivity-routed
// binary/WCOJ engine layered on top of the paper's five.
func AllEngineNames() []string { return engine.AllEngineNames() }

// NewRelation creates an empty relation with the given schema.
func NewRelation(name string, attrs ...string) *Relation {
	return relation.New(name, attrs...)
}

// CatalogQuery returns one of the paper's benchmark queries Q1–Q11
// (Fig. 7). It panics on unknown names; use ParseQuery for ad-hoc queries.
func CatalogQuery(name string) Query { return hypergraph.Get(name) }

// CatalogQueries returns all benchmark queries in order.
func CatalogQueries() []Query { return hypergraph.AllQueries() }

// ParseQuery parses "Name :- R1(a,b) ⋈ R2(b,c) ⋈ ..." (JOIN or commas also
// accepted as separators).
func ParseQuery(s string) (Query, error) { return hypergraph.ParseQuery(s) }

// GenerateGraph returns a deterministic synthetic analogue of one of the
// paper's datasets (WB, AS, WT, LJ, EN, OK) at the given scale (1.0 ≈ the
// paper's edge counts ×10⁻³). Results are memoized; do not mutate.
func GenerateGraph(name string, scale float64) *Relation {
	return dataset.Load(name, scale)
}

// LoadGraph reads a SNAP-format edge list ("src dst" per line, '#'
// comments) — the format of the paper's real datasets.
func LoadGraph(path string) (*Relation, error) { return dataset.LoadSNAPFile(path) }

// DatasetNames lists the named synthetic datasets in size order.
func DatasetNames() []string { return dataset.Names() }

// Run executes a query one-shot with the named engine over a database —
// a thin shim over a temporary Session (register, prepare, execute, close).
// Every atom of q must name a relation in db with matching arity. Use a
// Session directly when the same relations serve repeated queries.
func Run(engineName string, q Query, db Database, opts Options) (Report, error) {
	if _, err := resolveEngine(engineName); err != nil {
		return Report{}, err
	}
	s, err := Open(oneShot(opts))
	if err != nil {
		return Report{}, err
	}
	defer s.Close()
	for name, r := range db {
		if err := s.Register(name, r); err != nil {
			return Report{}, err
		}
	}
	p, err := s.Prepare(engineName, q)
	if err != nil {
		return Report{}, err
	}
	return p.execOneShot(opts)
}

// RunGraph executes a subgraph query one-shot, binding every atom to the
// same edge relation — the paper's benchmark setup. Like Run, it is a shim
// over a temporary Session.
func RunGraph(engineName string, q Query, edges *Relation, opts Options) (Report, error) {
	if _, err := resolveEngine(engineName); err != nil {
		return Report{}, err
	}
	s, err := Open(oneShot(opts))
	if err != nil {
		return Report{}, err
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		return Report{}, err
	}
	p, err := s.PrepareGraph(engineName, q, "edges")
	if err != nil {
		return Report{}, err
	}
	return p.execOneShot(opts)
}

// Count runs ADJ on a graph-bound query and returns the full report.
func Count(q Query, edges *Relation, opts Options) (Report, error) {
	return RunGraph("ADJ", q, edges, opts)
}

// CountAcyclic evaluates an α-acyclic query with Yannakakis' algorithm
// (linear in input + output; §VI positions it as the acyclic-query
// standard). It errors when the query is cyclic — use Run for those.
func CountAcyclic(q Query, db Database) (int64, error) {
	rels, err := q.Bind(db)
	if err != nil {
		return 0, err
	}
	d, err := ghd.Decompose(q, ghd.Options{})
	if err != nil {
		return 0, err
	}
	return yannakakis.Count(q, rels, d)
}

// Explain returns ADJ's physical plan for a graph-bound query — see
// ExplainEngine.
func Explain(q Query, edges *Relation, opts Options) (string, error) {
	return ExplainEngine("ADJ", q, edges, opts)
}

// ExplainEngine returns the named engine's physical plan for a graph-bound
// query, rendered as an indented operator tree with per-op strategy and
// cost annotations, without executing the distributed join (it still
// samples, which is where planning cost lives). It runs the same planning
// pass Prepare does, so the printed plan is exactly the operator DAG an
// execution would interpret.
func ExplainEngine(engineName string, q Query, edges *Relation, opts Options) (string, error) {
	pp, err := engine.Prepare(engineName, q, q.BindGraph(edges), opts.toConfig())
	if err != nil {
		return "", err
	}
	if pp.Program != nil {
		return pp.Program.Tree(), nil
	}
	return pp.Opt.String(), nil
}
