package adj

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

// The session plan cache is keyed by (engine, query shape, relation
// content): warm executions route straight to the interpreter with zero
// planning seconds; re-registering changed content replans automatically
// (charged to that execution's Optimization); re-registering identical
// content stays warm.
func TestSessionPlanCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := randomEdges(t, rng, 400, 40)
	q := CatalogQuery("Q1")
	for _, name := range []string{"ADJ", "Hybrid"} {
		s, err := Open(Options{Workers: 3, Samples: 80, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Register("edges", edges); err != nil {
			t.Fatal(err)
		}
		pq, err := s.PrepareGraph(name, q, "edges")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pq.PlanSeconds() <= 0 {
			t.Fatalf("%s: Prepare reported no planning time", name)
		}
		if expl := pq.Explain(); !strings.Contains(expl, "Emit") {
			t.Fatalf("%s: Explain missing operator tree:\n%s", name, expl)
		}

		// Warm hit: the cached plan executes with zero planning cost.
		res, err := pq.Exec(context.Background(), CountOnly())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := res.Count()
		if opt := res.Report().Optimization; opt != 0 {
			t.Fatalf("%s: warm execution charged %.6fs optimization", name, opt)
		}

		// Identical content re-registered: the content signature is
		// unchanged, so the key still matches and no replan happens.
		if err := s.Register("edges", edges.Clone()); err != nil {
			t.Fatal(err)
		}
		res, err = pq.Exec(context.Background(), CountOnly())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if opt := res.Report().Optimization; opt != 0 {
			t.Fatalf("%s: identical re-register caused a replan (%.6fs)", name, opt)
		}
		if res.Count() != want {
			t.Fatalf("%s: count changed on identical data: %d != %d", name, res.Count(), want)
		}

		// Changed content: the key misses, the execution replans and pays
		// for it, and the answer reflects the new data.
		bigger := edges.Clone()
		for i := 0; i < 200; i++ {
			bigger.Append(Value(rng.Intn(40)), Value(rng.Intn(40)))
		}
		if err := s.Register("edges", bigger); err != nil {
			t.Fatal(err)
		}
		res, err = pq.Exec(context.Background(), CountOnly())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if opt := res.Report().Optimization; opt <= 0 {
			t.Fatalf("%s: changed content did not replan (optimization=%.6fs)", name, opt)
		}

		// And the replanned plan is cached in turn: the next execution over
		// the same content is warm again.
		res, err = pq.Exec(context.Background(), CountOnly())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if opt := res.Report().Optimization; opt != 0 {
			t.Fatalf("%s: replanned plan not cached (%.6fs)", name, opt)
		}
		s.Close()
	}
}
