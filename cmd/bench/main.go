// Command bench snapshots the performance of the execution hot path so PRs
// have a trajectory to compare against. It runs the tier-2 micro-benchmarks
// (trie build — row-major and columnar, k-way trie merge, single-cube
// Leapfrog, result listing through the batched columnar sink vs the
// per-tuple emit baseline, shuffle encode/decode on both layouts, hash
// partitioning) plus the triangle query end-to-end on every engine over a
// generated power-law graph at CubesPerServer=4 (a shared-block workload),
// verifies the engines agree on the result count, that the block-trie
// cache built each (relation, block) trie exactly once per worker, and
// that collected results flow through the batched emit sink (nonzero
// emitted-run counters, allocs under a pinned ceiling), and writes a JSON
// snapshot (BENCH_<n>.json at the repo root by convention).
//
// It also measures the Session repeated-query workload: the triangle query
// prepared once and executed cold then warm on a resident session. The
// invariants — warm executions perform zero shuffle-side trie builds and
// stream results byte-for-byte identical to the one-shot baseline — are
// enforced in every mode including -quick, so CI catches a silent
// regression of the session trie store; the cold/warm wall times and
// store footprint land in the snapshot's "session" section.
//
// Since PR 6 every mode also enforces a fault-free-parity invariant:
// each engine re-run through a quiescent fault-injection transport (the
// full robustness chain — panic recovery, context-aware exchange routing,
// retry accounting — engaged, zero faults armed) must return exactly the
// plain run's result with zero recovered panics and zero transport
// retries, so the recover/retry wrappers cost nothing on the happy path.
//
// Since PR 9 every mode also drives the multi-tenant serving tier: a bulk
// flood through a one-slot admission gate must shed with typed
// *adj.OverloadError rejections (positive retry hints) while every
// interactive request completes within a fairness bound; two sessions
// opened through one Server must warm each other (the second session's
// first execution builds zero tries); and on multi-core hosts N warmed
// executions run concurrently over the cluster pool must beat the same N
// serialized by >= 2x. The counters land in the snapshot's "serving"
// section.
//
// When a reference snapshot exists (-ref, default BENCH_8.json), the
// output embeds a before/after comparison for every shared benchmark key
// plus per-engine timing, so BENCH_9.json directly reports single-query
// latency against the PR-8 numbers alongside the new serving counters.
//
//	go run ./cmd/bench                  # writes BENCH_9.json, compares to BENCH_8.json
//	go run ./cmd/bench -scale 0.1 -out /tmp/b.json -ref ""
//	go run ./cmd/bench -quick -out /tmp/smoke.json -ref ""   # CI smoke: engines + emit + session + parity + serving invariants
package main

import (
	"bytes"
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	mrand "math/rand"
	"os"
	"runtime"
	sortslice "sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adj"
	"adj/internal/blockcache"
	"adj/internal/cluster"
	"adj/internal/engine"
	"adj/internal/faultinject"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/leapfrog"
	"adj/internal/relation"
	"adj/internal/trie"
)

// Metric is one benchmark result.
type Metric struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
}

// EngineRun is one engine's end-to-end triangle measurement.
type EngineRun struct {
	Results        int64   `json:"results"`
	TuplesShuffled int64   `json:"tuples_shuffled"`
	BytesShuffled  int64   `json:"bytes_shuffled"`
	TotalSeconds   float64 `json:"total_modeled_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	// Block-trie cache counters (HCube engines; zero otherwise): with the
	// shared cache each (relation, block) trie is built exactly once per
	// worker, so TrieBuilds == CacheBlocks and TrieCacheHits counts the
	// cross-cube reuse.
	CacheBlocks   int64 `json:"cache_blocks,omitempty"`
	TrieBuilds    int64 `json:"trie_builds,omitempty"`
	TrieCacheHits int64 `json:"trie_cache_hits,omitempty"`
}

// EngineVsRef compares one engine's wall time against the reference
// snapshot: speedup > 1 means this snapshot is faster.
type EngineVsRef struct {
	RefWallSeconds float64 `json:"ref_wall_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	Speedup        float64 `json:"speedup"`
}

// VsRef compares one benchmark against the reference snapshot: speedup > 1
// means this snapshot is faster.
type VsRef struct {
	RefNsPerOp float64 `json:"ref_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	Speedup    float64 `json:"speedup"`
}

// Snapshot is the written file.
type Snapshot struct {
	Generated    string               `json:"generated"`
	GoVersion    string               `json:"go_version"`
	GOMAXPROCS   int                  `json:"gomaxprocs"`
	Dataset      string               `json:"dataset"`
	Scale        float64              `json:"scale"`
	Edges        int                  `json:"edges"`
	Query        string               `json:"query"`
	Benchmarks   map[string]Metric    `json:"benchmarks"`
	EncodedBytes map[string]int       `json:"encoded_bytes_per_block"`
	Engines      map[string]EngineRun `json:"engines"`
	// CubesPerServer documents the cube fan-out of the Engines runs (4 by
	// default: the shared-block workload the block-trie cache targets).
	// EnginesCPS1 holds the one-cube-per-server runs comparable to earlier
	// snapshots, and EnginesVsReference compares those against the
	// reference (earlier snapshots ran cps=1).
	CubesPerServer int                  `json:"cubes_per_server"`
	EnginesCPS1    map[string]EngineRun `json:"engines_cps1,omitempty"`
	// Session is the repeated-query session workload: the triangle query
	// prepared once, executed cold (shuffle + trie builds, published to the
	// session store) then warm (shuffle skipped, tries adopted).
	Session *SessionBench `json:"session,omitempty"`
	// Streaming is the pipelined-shuffle workload: streamed-vs-materialized
	// parity across every engine, comm/compute overlap on a shuffle-heavy
	// run, dial amortization over the persistent TCP transport, and the
	// receive-side memory bound on the multi-round BigJoin.
	Streaming *StreamBench `json:"streaming,omitempty"`
	// Hybrid is the strategy-routing workload: a path-attached triangle
	// where the Hybrid engine's split plan (semijoin-reduced WCOJ core +
	// ear hash joins) must beat both the pure leapfrog and the pure binary
	// strategies on modeled cost, with a warm plan-cache hit charging zero
	// planning seconds.
	Hybrid *HybridBench `json:"hybrid,omitempty"`
	// Serving is the multi-tenant serving workload: overload shedding
	// under a bulk flood (typed rejections, interactive completion, a
	// fairness bound on interactive waits), cross-session store warmth
	// through a Server handle, and concurrent-vs-serialized Exec
	// throughput over the cluster pool.
	Serving *ServingBench `json:"serving,omitempty"`
	// Reference names the snapshot the VsReference section compares
	// against (empty when none was found).
	Reference          string                 `json:"reference,omitempty"`
	VsReference        map[string]VsRef       `json:"vs_reference,omitempty"`
	EnginesVsReference map[string]EngineVsRef `json:"engines_vs_reference,omitempty"`
}

// SessionBench reports the cold-vs-warm session measurement. WarmSeconds
// is the fastest warm execution; Speedup is ColdSeconds / WarmSeconds.
type SessionBench struct {
	Engine            string  `json:"engine"`
	Executions        int     `json:"executions"`
	Results           int64   `json:"results"`
	ColdSeconds       float64 `json:"cold_seconds"`
	WarmSeconds       float64 `json:"warm_seconds"`
	Speedup           float64 `json:"warm_speedup"`
	ColdTrieBuilds    int64   `json:"cold_trie_builds"`
	WarmTrieBuilds    int64   `json:"warm_trie_builds"`
	WarmTrieCacheHits int64   `json:"warm_trie_cache_hits"`
	StoreBlocks       int64   `json:"store_blocks"`
	StoreBytes        int64   `json:"store_bytes"`
}

// StreamBench reports the streaming-shuffle measurement: wire-level chunk
// counters from the parallel (pipelined) engine runs, the comm/compute
// overlap reclaimed on a shuffle-heavy workload, the dial count of one
// multi-round run over the persistent TCP transport, and the receive-side
// peak bytes of the BigJoin run streamed vs materialized.
type StreamBench struct {
	// StreamChunks totals the chunk envelopes the parallel engine runs
	// moved through the pipelined path (every engine must stream).
	StreamChunks int64 `json:"stream_chunks"`
	// OverlapEngine / OverlapSeconds: the shuffle-heavy run's measured
	// comm/compute overlap (producer+consumer busy time in excess of the
	// exchange wall time). Must be > 0: the pipeline's whole point.
	OverlapEngine  string  `json:"overlap_engine"`
	OverlapSeconds float64 `json:"overlap_seconds"`
	// TCPDials is the number of connections one multi-round BigJoin run
	// dialed over the real TCP transport; TCPDialBound is workers² — the
	// persistent-connection ceiling no matter how many exchanges ran.
	TCPDials     int64 `json:"tcp_dials"`
	TCPDialBound int64 `json:"tcp_dial_bound"`
	// BigJoin receive-side peak payload bytes held at one worker: bounded
	// chunk queues (streamed) vs the full materialized inbox.
	RecvPeakStreamedBytes     int64 `json:"bigjoin_recv_peak_streamed_bytes"`
	RecvPeakMaterializedBytes int64 `json:"bigjoin_recv_peak_materialized_bytes"`
}

// HybridBench reports the strategy-routing measurement on the
// path-attached-triangle workload: the Hybrid engine's routed plan against
// the pure worst-case-optimal (HCubeJ) and pure binary (SparkSQL)
// strategies, all agreeing on the result exactly.
type HybridBench struct {
	Query             string  `json:"query"`
	Results           int64   `json:"results"`
	RoutedPlan        string  `json:"routed_plan"`
	HybridSeconds     float64 `json:"hybrid_modeled_seconds"`
	LeapfrogSeconds   float64 `json:"pure_leapfrog_modeled_seconds"`
	BinarySeconds     float64 `json:"pure_binary_modeled_seconds"`
	HybridShuffled    int64   `json:"hybrid_tuples_shuffled"`
	LeapfrogShuffled  int64   `json:"pure_leapfrog_tuples_shuffled"`
	BinaryShuffled    int64   `json:"pure_binary_tuples_shuffled"`
	SpeedupVsLeapfrog float64 `json:"speedup_vs_pure_leapfrog"`
	SpeedupVsBinary   float64 `json:"speedup_vs_pure_binary"`
	// WarmOptimizationSeconds is the planning cost of a warm plan-cache
	// hit; the bench fatals unless it is exactly zero.
	WarmOptimizationSeconds float64 `json:"warm_optimization_seconds"`
}

// ServingBench reports the multi-tenant serving measurement: overload
// shedding under a bulk flood against an interactive trickle, cross-session
// store warmth through a Server handle, and concurrent-vs-serialized Exec
// throughput over the session's cluster pool.
type ServingBench struct {
	// Overload scenario: a bulk flood through a one-slot admission gate.
	// The bench fatals unless BulkShed > 0, every rejection is a typed
	// *adj.OverloadError with a positive retry hint, all interactive
	// requests complete, and the worst interactive queue wait stays under
	// the fairness bound.
	BulkSubmitted      int     `json:"bulk_submitted"`
	BulkShed           int     `json:"bulk_shed"`
	BulkCompleted      int     `json:"bulk_completed"`
	InteractiveRuns    int     `json:"interactive_runs"`
	InteractiveMaxWait float64 `json:"interactive_max_wait_seconds"`
	// Cross-session warmth: the second session's first execution over the
	// same graph through a shared Server store must build zero tries.
	CrossSessionTrieBuilds int64 `json:"cross_session_warm_trie_builds"`
	CrossSessionCacheHits  int64 `json:"cross_session_warm_trie_cache_hits"`
	// Throughput: the same warmed executions run back-to-back vs
	// concurrently over the pool. Speedup = serialized / concurrent wall
	// time; enforced >= 2x only on multi-core hosts.
	Concurrency       int     `json:"concurrency"`
	SingleExecSeconds float64 `json:"single_exec_seconds"`
	SerializedSeconds float64 `json:"serialized_seconds"`
	ConcurrentSeconds float64 `json:"concurrent_seconds"`
	ConcurrentSpeedup float64 `json:"concurrent_speedup"`
}

func metricOf(r testing.BenchmarkResult) Metric {
	return Metric{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func bench(fn func(b *testing.B)) Metric {
	return metricOf(testing.Benchmark(fn))
}

// buildReference is the pre-Builder trie pipeline (materialize the permuted
// relation, sort+dedup, FromSorted), reconstructed from public API as the
// comparison baseline.
func buildReference(r *relation.Relation, attrs []string) *trie.Trie {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.AttrIndex(a)
	}
	perm := relation.NewWithCapacity(r.Name, r.Len(), attrs...)
	row := make([]relation.Value, len(attrs))
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		for j, c := range cols {
			row[j] = t[c]
		}
		perm.AppendTuple(row)
	}
	perm.SortDedup()
	return trie.FromSorted(perm)
}

// --- Reference Leapfrog: the seed implementation, reconstructed as the
// comparison baseline. One iterator allocation per trie per run, a
// sort.Slice per level open, and every key read through the iterator. ---

type refFrame struct {
	iters []*trie.Iterator
	p     int
	key   relation.Value
	atEnd bool
	open_ bool
}

func (f *refFrame) open() bool {
	for _, it := range f.iters {
		it.Open()
	}
	f.open_ = true
	f.atEnd = false
	for _, it := range f.iters {
		if it.AtEnd() {
			f.atEnd = true
			return false
		}
	}
	sortIters(f.iters)
	f.p = 0
	f.search()
	return !f.atEnd
}

func sortIters(iters []*trie.Iterator) {
	sortSlice(iters, func(a, b *trie.Iterator) bool { return a.Key() < b.Key() })
}

func (f *refFrame) close() {
	if !f.open_ {
		return
	}
	for _, it := range f.iters {
		it.Up()
	}
	f.open_ = false
}

func (f *refFrame) search() {
	k := len(f.iters)
	xPrime := f.iters[(f.p+k-1)%k].Key()
	for {
		x := f.iters[f.p].Key()
		if x == xPrime {
			f.key = x
			return
		}
		f.iters[f.p].Seek(xPrime)
		if f.iters[f.p].AtEnd() {
			f.atEnd = true
			return
		}
		xPrime = f.iters[f.p].Key()
		f.p = (f.p + 1) % k
	}
}

func (f *refFrame) next() {
	f.iters[f.p].Next()
	if f.iters[f.p].AtEnd() {
		f.atEnd = true
		return
	}
	f.p = (f.p + 1) % len(f.iters)
	f.search()
}

func referenceJoinCount(tries []*trie.Trie, order []string) int64 {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	active := make([][]*trie.Iterator, len(order))
	for _, t := range tries {
		it := trie.NewIterator(t)
		for _, a := range t.Attrs {
			active[pos[a]] = append(active[pos[a]], it)
		}
	}
	lf := make([]*refFrame, len(order))
	for d := range lf {
		lf[d] = &refFrame{iters: active[d]}
	}
	var results int64
	d := 0
	if !lf[0].open() {
		return 0
	}
	n := len(order)
	for d >= 0 {
		f := lf[d]
		if f.atEnd {
			f.close()
			d--
			if d >= 0 {
				lf[d].next()
			}
			continue
		}
		if d == n-1 {
			results++
			f.next()
			continue
		}
		d++
		lf[d].open()
	}
	return results
}

// sortSlice is sort.Slice specialized to iterator slices (keeps the
// reference implementation's per-open allocation behavior).
func sortSlice(s []*trie.Iterator, less func(a, b *trie.Iterator) bool) {
	sortslice.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

func main() {
	var (
		out     = flag.String("out", "BENCH_9.json", "output JSON path")
		ref     = flag.String("ref", "BENCH_8.json", "reference snapshot to compare against (\"\" disables)")
		scale   = flag.Float64("scale", 0.2, "dataset scale for the power-law graph")
		dataset = flag.String("dataset", "LJ", "generated dataset name (power-law: WB, AS, LJ, ...)")
		workers = flag.Int("workers", 8, "cluster size for the engine runs")
		cubes   = flag.Int("cubes", 4, "CubesPerServer for the engine runs (>1 exercises the block cache)")
		quick   = flag.Bool("quick", false, "smoke mode: skip micro-benchmarks, tiny dataset, engines+invariants only")
	)
	flag.Parse()
	if *quick && *scale > 0.05 {
		*scale = 0.05
	}

	valid := false
	for _, n := range adj.DatasetNames() {
		if n == *dataset {
			valid = true
			break
		}
	}
	if !valid {
		fatal(fmt.Errorf("unknown dataset %q (want one of %v)", *dataset, adj.DatasetNames()))
	}
	edges := adj.GenerateGraph(*dataset, *scale)
	q := hypergraph.Get("Q1") // triangle
	rels := q.BindGraph(edges)
	order := q.Attrs()

	snap := Snapshot{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Dataset:        *dataset,
		Scale:          *scale,
		Edges:          edges.Len(),
		Query:          q.Name,
		CubesPerServer: *cubes,
		Benchmarks:     map[string]Metric{},
		EncodedBytes:   map[string]int{},
		Engines:        map[string]EngineRun{},
	}

	fmt.Fprintf(os.Stderr, "dataset %s scale=%g: %d edges\n", *dataset, *scale, edges.Len())

	if !*quick {
		runMicroBenches(&snap, edges, rels, order, *workers)
	}
	// Emit-path benchmarks and invariants run in every mode: the quick CI
	// smoke must still catch a silent regression to per-tuple emission.
	benchEmitPipeline(&snap, edges)
	emitEngineSmoke(q, rels, *workers, *cubes)
	// Fault-free parity runs in every mode: the robustness layer must cost
	// nothing (and change nothing) when no fault fires.
	faultFreeParity(q, rels, *workers, *cubes)
	// Streaming-shuffle invariants (streamed == materialized for every
	// engine, chunks flow, overlap > 0, TCP dials amortized, BigJoin
	// receive peak bounded) run in every mode too.
	snap.Streaming = benchStreamingShuffle(q, rels, *dataset, *workers, *cubes)
	// Session invariants (warm trie builds == 0, streamed output ==
	// one-shot baseline byte-for-byte) run in every mode too.
	snap.Session = benchSessionWorkload(q, edges, *workers, *quick)
	// Strategy-routing invariants (the hybrid split beats both pure
	// strategies; a warm plan-cache hit charges zero planning seconds)
	// run in every mode too.
	snap.Hybrid = benchHybridWorkload(*workers, *quick)
	// Serving invariants (bulk shed under flood with typed errors while
	// interactive completes, cross-session warm hits through a Server,
	// concurrent throughput over the pool) run in every mode too.
	snap.Serving = benchServingWorkload(q, edges, *workers, *quick)

	snap.Engines = runEngines(q, rels, *workers, *cubes)
	if *cubes == 1 {
		snap.EnginesCPS1 = snap.Engines
	} else if !*quick {
		// One-cube-per-server runs for the cross-snapshot comparison
		// (earlier snapshots measured this workload); skipped in quick
		// mode, where no comparison is emitted.
		snap.EnginesCPS1 = runEngines(q, rels, *workers, 1)
	}

	// --- Reference comparison: embed before/after ratios for every
	// benchmark key the reference snapshot also measured ---
	if *ref != "" {
		if refData, err := os.ReadFile(*ref); err == nil {
			var refSnap Snapshot
			if err := json.Unmarshal(refData, &refSnap); err != nil {
				fatal(fmt.Errorf("parse reference %s: %w", *ref, err))
			}
			snap.Reference = *ref
			snap.VsReference = map[string]VsRef{}
			for name, m := range snap.Benchmarks {
				rm, ok := refSnap.Benchmarks[name]
				if !ok || rm.NsPerOp <= 0 {
					continue
				}
				snap.VsReference[name] = VsRef{
					RefNsPerOp: rm.NsPerOp,
					NsPerOp:    m.NsPerOp,
					Speedup:    rm.NsPerOp / m.NsPerOp,
				}
			}
			snap.EnginesVsReference = map[string]EngineVsRef{}
			// Compare cps=1 runs against the reference's cps=1 runs; old
			// snapshots (pre-EnginesCPS1) recorded Engines at cps=1.
			refEngines := refSnap.EnginesCPS1
			if len(refEngines) == 0 {
				refEngines = refSnap.Engines
			}
			for name, er := range snap.EnginesCPS1 {
				re, ok := refEngines[name]
				if !ok || re.WallSeconds <= 0 {
					continue
				}
				snap.EnginesVsReference[name] = EngineVsRef{
					RefWallSeconds: re.WallSeconds,
					WallSeconds:    er.WallSeconds,
					Speedup:        re.WallSeconds / er.WallSeconds,
				}
			}
			for name, v := range snap.VsReference {
				fmt.Fprintf(os.Stderr, "vs %s: %-28s %.2fx\n", *ref, name, v.Speedup)
			}
			for name, v := range snap.EnginesVsReference {
				fmt.Fprintf(os.Stderr, "vs %s: engine %-20s %.2fx\n", *ref, name, v.Speedup)
			}
		} else {
			fmt.Fprintf(os.Stderr, "reference %s not found; skipping comparison\n", *ref)
		}
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func runMicroBenches(snap *Snapshot, edges *relation.Relation, rels []*relation.Relation, order []string, workers int) {
	// --- Trie build: radix builder vs reference pipeline ---
	snap.Benchmarks["trie_build"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Build(edges, []string{"src", "dst"})
		}
	})
	snap.Benchmarks["trie_build_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildReference(edges, []string{"src", "dst"})
		}
	})
	// Columnar layout: same radix builder over a columnar-resident source
	// (the layout every shuffled block arrives in after PR 2).
	colEdges := edges.Clone().PivotToColumns()
	snap.Benchmarks["trie_build_columnar"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Build(colEdges, []string{"src", "dst"})
		}
	})
	sortedColEdges := edges.Clone().PivotToColumns().Sort()
	snap.Benchmarks["trie_build_columnar_sorted"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Build(sortedColEdges, []string{"src", "dst"})
		}
	})

	// --- Single-cube Leapfrog: join over pre-built tries, and the full
	// cube pipeline (trie construction + join) the engines actually run ---
	tries := leapfrog.BuildTries(rels, order)
	snap.Benchmarks["leapfrog_triangle"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := leapfrog.Join(tries, order, leapfrog.Options{}); err != nil {
				fatal(err)
			}
		}
	})
	snap.Benchmarks["leapfrog_triangle_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceJoinCount(tries, order)
		}
	})
	if got, want := referenceJoinCount(tries, order), countJoin(tries, order); got != want {
		fatal(fmt.Errorf("reference joiner disagrees: %d vs %d", got, want))
	}
	snap.Benchmarks["cube_pipeline"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ts := leapfrog.BuildTries(rels, order)
			if _, err := leapfrog.Join(ts, order, leapfrog.Options{}); err != nil {
				fatal(err)
			}
		}
	})
	snap.Benchmarks["cube_pipeline_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var ts []*trie.Trie
			for _, r := range rels {
				ts = append(ts, buildReference(r, sortedAttrs(r, order)))
			}
			referenceJoinCount(ts, order)
		}
	})

	// --- Shuffle codec: batched delta format vs legacy fixed-width, plus
	// the columnar encoder (one contiguous run per column, no gather) ---
	block := edges.Clone()
	block.Sort()
	colBlock := block.Clone().PivotToColumns()
	encoded := relation.Encode(block)
	if colEnc := relation.Encode(colBlock); !bytes.Equal(encoded, colEnc) {
		fatal(fmt.Errorf("columnar encoder produced different wire bytes"))
	}
	encodedRaw := relation.EncodeRaw(block)
	snap.EncodedBytes["delta"] = len(encoded)
	snap.EncodedBytes["raw"] = len(encodedRaw)
	scratch := make([]byte, 0, len(encoded))
	snap.Benchmarks["shuffle_encode"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = relation.AppendEncode(scratch[:0], block)
		}
	})
	snap.Benchmarks["shuffle_encode_columnar"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = relation.AppendEncode(scratch[:0], colBlock)
		}
	})
	snap.Benchmarks["shuffle_encode_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			relation.EncodeRaw(block)
		}
	})
	var decodeScratch relation.Relation
	snap.Benchmarks["shuffle_decode"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := relation.DecodeInto(encoded, &decodeScratch); err != nil {
				fatal(err)
			}
		}
	})
	snap.Benchmarks["shuffle_decode_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relation.DecodeRaw(encodedRaw); err != nil {
				fatal(err)
			}
		}
	})
	// Composite: one block's full shuffle cost — encode + wire (modeled at
	// the paper's 10 GbE testbed bandwidth) + decode. This is the number
	// the batched codec optimizes: it trades a few percent of encode CPU
	// for a 4–5× cut in bytes moved.
	wire := func(nBytes int) float64 {
		return cluster.DefaultNetwork().CommSeconds(int64(nBytes), 1) * 1e9
	}
	snap.Benchmarks["shuffle_roundtrip"] = Metric{
		NsPerOp: snap.Benchmarks["shuffle_encode"].NsPerOp +
			wire(len(encoded)) +
			snap.Benchmarks["shuffle_decode"].NsPerOp,
		AllocsPerOp: snap.Benchmarks["shuffle_encode"].AllocsPerOp +
			snap.Benchmarks["shuffle_decode"].AllocsPerOp,
	}
	snap.Benchmarks["shuffle_roundtrip_reference"] = Metric{
		NsPerOp: snap.Benchmarks["shuffle_encode_reference"].NsPerOp +
			wire(len(encodedRaw)) +
			snap.Benchmarks["shuffle_decode_reference"].NsPerOp,
		AllocsPerOp: snap.Benchmarks["shuffle_encode_reference"].AllocsPerOp +
			snap.Benchmarks["shuffle_decode_reference"].AllocsPerOp,
	}

	// --- Hash partitioner: column-scan hash + single scatter, row-major
	// vs columnar-resident input (the BinaryJoin/BigJoin repartition and
	// the sampler's value partitioning) ---
	snap.Benchmarks["partition_rowmajor"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			edges.PartitionBy([]int{0}, workers)
		}
	})
	snap.Benchmarks["partition_columnar"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			colEdges.PartitionBy([]int{0}, workers)
		}
	})

	// --- K-way block-trie merge: pooled heap/stream state vs the
	// allocate-per-merge reference (the Merge HCube's receiver path) ---
	mergeBlocks := blockTries(edges, 8)
	if got, want := trie.Merge(mergeBlocks).NumTuples, mergeReference(mergeBlocks).NumTuples; got != want {
		fatal(fmt.Errorf("pooled merge disagrees with reference: %d vs %d tuples", got, want))
	}
	snap.Benchmarks["trie_merge"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Merge(mergeBlocks)
		}
	})
	snap.Benchmarks["trie_merge_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mergeReference(mergeBlocks)
		}
	})

	// --- Compute phase on a shared-block workload: one worker's trie
	// assembly + Leapfrog over a cps>1-style cube set. "cached" runs the
	// block registry (each block's per-sender parts merged exactly once,
	// single-block cubes alias the shared trie); "rebuild" is the legacy
	// path (every cube re-merges its blocks' sender parts from scratch).
	// This isolates exactly the computation-time win the cache buys. ---
	benchCubeCompute(snap, rels, order)
}

// emitAllocCeiling pins the emit path's allocations per listing run. The
// batched sink allocates O(columns × log results) slices (amortized column
// growth) plus a handful of fixed objects; a regression to per-value
// allocation would scale with the result count (tens of thousands here)
// and blow straight through this.
const emitAllocCeiling = 256

// benchEmitPipeline measures result listing end to end on the emit-bound
// workload the batched sink targets: the 2-path (wedge) listing
// R(a,b) ⋈ S(b,c), whose output volume dwarfs the input (every hub
// contributes deg·deg results) and whose leaf intersections are whole
// adjacency lists — the ring-of-1 runs the sink receives as zero-copy
// slices. Results materialize as a columnar-resident relation, once
// through the batched columnar sink (leapfrog.Sink →
// relation.ColumnWriter) and once through the per-tuple emit baseline
// (row-major append + the pivot to columns every downstream consumer —
// shuffle encode, merge, trie build — would force anyway). Asserts both
// paths list identical relations, that the sink path's emitted-run
// counters engage, and that the sink's allocs/op stay under
// emitAllocCeiling — in quick mode too, so CI catches a silent regression
// to per-tuple emission.
func benchEmitPipeline(snap *Snapshot, edges *relation.Relation) {
	r := edges.Clone()
	r.Name, r.Attrs = "R", []string{"a", "b"}
	s := edges.Clone()
	s.Name, s.Attrs = "S", []string{"b", "c"}
	rels := []*relation.Relation{r, s}
	order := []string{"a", "b", "c"}
	tries := leapfrog.BuildTries(rels, order)
	runSink := func() (*relation.Relation, leapfrog.Stats) {
		out := relation.New("out", order...)
		st, err := leapfrog.Join(tries, order, leapfrog.Options{Sink: relation.NewColumnWriter(out)})
		if err != nil {
			fatal(err)
		}
		return out, st
	}
	runPerTuple := func() (*relation.Relation, leapfrog.Stats) {
		out := relation.New("out", order...)
		st, err := leapfrog.Join(tries, order, leapfrog.Options{
			Emit: func(t relation.Tuple) { out.AppendTuple(t) },
		})
		if err != nil {
			fatal(err)
		}
		out.PivotToColumns()
		return out, st
	}
	sinkOut, sinkSt := runSink()
	tupleOut, tupleSt := runPerTuple()
	if sinkSt.Results != tupleSt.Results || !sinkOut.Equal(tupleOut) {
		fatal(fmt.Errorf("emit paths disagree: sink %d tuples vs per-tuple %d",
			sinkOut.Len(), tupleOut.Len()))
	}
	if sinkSt.Results > 0 && (sinkSt.EmittedRuns == 0 || sinkSt.EmittedValues != sinkSt.Results) {
		fatal(fmt.Errorf("batched emit did not engage: %d results, %d runs, %d values",
			sinkSt.Results, sinkSt.EmittedRuns, sinkSt.EmittedValues))
	}
	snap.Benchmarks["leapfrog_emit_sink"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runSink()
		}
	})
	snap.Benchmarks["leapfrog_emit_pertuple"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runPerTuple()
		}
	})
	sink := snap.Benchmarks["leapfrog_emit_sink"]
	pt := snap.Benchmarks["leapfrog_emit_pertuple"]
	if sink.AllocsPerOp > emitAllocCeiling {
		fatal(fmt.Errorf("emit sink allocates %d/op, ceiling %d: batched path regressed toward per-tuple",
			sink.AllocsPerOp, emitAllocCeiling))
	}
	fmt.Fprintf(os.Stderr,
		"emit listing: sink %.0f ns/op (%d allocs, %d B) vs per-tuple %.0f ns/op (%d allocs, %d B) — %.2fx, runlen %.1f\n",
		sink.NsPerOp, sink.AllocsPerOp, sink.BytesPerOp,
		pt.NsPerOp, pt.AllocsPerOp, pt.BytesPerOp,
		pt.NsPerOp/sink.NsPerOp, float64(sinkSt.EmittedValues)/float64(max(sinkSt.EmittedRuns, 1)))
}

// emitEngineSmoke asserts the engines' collected output rides the batched
// sink: a CollectOutput run must report nonzero emitted-run counters with
// values matching the result count, and must list exactly the relation
// the legacy per-tuple shim produces.
func emitEngineSmoke(q hypergraph.Query, rels []*relation.Relation, workers, cubes int) {
	cfg := engine.Config{NumServers: workers, Samples: 300, Seed: 1,
		CubesPerServer: cubes, CollectOutput: true}
	rep, err := engine.RunADJ(q, rels, cfg)
	if err != nil {
		fatal(err)
	}
	if rep.Results > 0 && rep.EmittedRuns == 0 {
		fatal(fmt.Errorf("ADJ CollectOutput: %d results but zero emitted runs — batched sink not engaged", rep.Results))
	}
	if rep.EmittedValues != rep.Results {
		fatal(fmt.Errorf("ADJ CollectOutput: emitted values %d != results %d", rep.EmittedValues, rep.Results))
	}
	cfg.PerTupleEmit = true
	shim, err := engine.RunADJ(q, rels, cfg)
	if err != nil {
		fatal(err)
	}
	if rep.Results != shim.Results || !rep.Output.Equal(shim.Output) {
		fatal(fmt.Errorf("ADJ sink output differs from per-tuple shim (%d vs %d tuples)",
			rep.Output.Len(), shim.Output.Len()))
	}
	fmt.Fprintf(os.Stderr, "engine emit smoke: ADJ results=%d runs=%d (runlen %.1f), sink == shim\n",
		rep.Results, rep.EmittedRuns, float64(rep.EmittedValues)/float64(max(rep.EmittedRuns, 1)))
}

// faultFreeParity asserts the robustness layer is free on the happy path:
// every engine re-run through a quiescent fault-injection transport (zero
// rules armed, but the whole chain engaged — wrapper routing, the
// context-aware exchange path, panic-recovery bookkeeping and retry
// accounting) must return exactly the plain run's result and report zero
// recovered panics and zero transport retries.
func faultFreeParity(q hypergraph.Query, rels []*relation.Relation, workers, cubes int) {
	for _, name := range engine.EngineNames() {
		run := engine.Engines()[name]
		cfg := engine.Config{NumServers: workers, Samples: 300, Seed: 1, CubesPerServer: cubes}
		plain, err := run(q, rels, cfg)
		if err != nil {
			fatal(fmt.Errorf("fault-free parity %s (plain): %w", name, err))
		}
		cfg.Transport = faultinject.Wrap(cluster.NewLocalTransport(workers), 1)
		wrapped, err := run(q, rels, cfg)
		if err != nil {
			fatal(fmt.Errorf("fault-free parity %s (quiescent injector): %w", name, err))
		}
		if wrapped.Results != plain.Results {
			fatal(fmt.Errorf("fault-free parity %s: quiescent injector changed the result: %d vs %d",
				name, wrapped.Results, plain.Results))
		}
		if wrapped.PanicsRecovered != 0 || wrapped.TransportRetries != 0 {
			fatal(fmt.Errorf("fault-free parity %s: clean run reported panics=%d retries=%d",
				name, wrapped.PanicsRecovered, wrapped.TransportRetries))
		}
	}
	fmt.Fprintf(os.Stderr, "fault-free parity: all engines identical through quiescent fault layer\n")
}

// benchStreamingShuffle enforces the pipelined-shuffle invariants in every
// mode (quick included) and returns the streaming section of the snapshot:
//
//   - every engine run in the parallel (streamed) mode produces sorted
//     output byte-identical to its sequential (materialized shim) run, and
//     moves a nonzero number of chunk envelopes while the shim moves none;
//   - the streamed BigJoin's receive-side peak bytes never exceed the
//     materialized inbox peak (bounded chunk queues vs full inboxes);
//   - a shuffle-heavy run reports comm/compute overlap > 0;
//   - one multi-round BigJoin over the real TCP transport dials at most
//     workers² connections across all its exchanges (persistent
//     connections amortize, nothing re-dials per exchange).
func benchStreamingShuffle(q hypergraph.Query, rels []*relation.Relation, dataset string, workers, cubes int) *StreamBench {
	sb := &StreamBench{TCPDialBound: int64(workers * workers)}
	sortedBytes := func(r *relation.Relation) []byte {
		if r == nil {
			return nil
		}
		return relation.Encode(r.Clone().Sort())
	}
	var wantResults int64 = -1
	for _, name := range engine.AllEngineNames() {
		run := engine.Engines()[name]
		cfg := engine.Config{NumServers: workers, Samples: 300, Seed: 1,
			CubesPerServer: cubes, CollectOutput: true}
		streamed, err := run(q, rels, cfg)
		if err != nil {
			fatal(fmt.Errorf("streaming %s (parallel): %w", name, err))
		}
		cfg.Sequential = true
		mat, err := run(q, rels, cfg)
		if err != nil {
			fatal(fmt.Errorf("streaming %s (sequential): %w", name, err))
		}
		if streamed.Results != mat.Results || !bytes.Equal(sortedBytes(streamed.Output), sortedBytes(mat.Output)) {
			fatal(fmt.Errorf("streaming %s: streamed output differs from materialized (%d vs %d results)",
				name, streamed.Results, mat.Results))
		}
		if wantResults == -1 {
			wantResults = streamed.Results
		}
		if streamed.StreamChunks == 0 {
			fatal(fmt.Errorf("streaming %s: parallel run moved zero chunks — pipelined path not engaged", name))
		}
		if mat.StreamChunks != 0 {
			fatal(fmt.Errorf("streaming %s: sequential run reported %d stream chunks", name, mat.StreamChunks))
		}
		sb.StreamChunks += streamed.StreamChunks
		if name == "BigJoin" {
			sb.RecvPeakStreamedBytes = streamed.RecvPeakBytes
			sb.RecvPeakMaterializedBytes = mat.RecvPeakBytes
			if streamed.RecvPeakBytes > mat.RecvPeakBytes {
				fatal(fmt.Errorf("streaming BigJoin: streamed receive peak %d B exceeds materialized inbox peak %d B",
					streamed.RecvPeakBytes, mat.RecvPeakBytes))
			}
		}
	}

	// Overlap on a shuffle-heavy workload: the Push-shuffle HCubeJ over a
	// floor-scaled graph (per-tuple envelopes, consumers depositing as
	// chunks land). Overlap is producer+consumer busy time in excess of
	// exchange wall time — real wall-clock concurrency, which a
	// single-processor host cannot exhibit (one core serializes every
	// goroutine, so elapsed always covers the sum of busy times). Enforce
	// the overlap > 0 invariant only where the hardware can express it;
	// allow a few scheduling-fluke retries before declaring the pipeline
	// dead.
	sb.OverlapEngine = "HCubeJ"
	heavy := adj.GenerateGraph(dataset, 0.2)
	heavyRels := q.BindGraph(heavy)
	for attempt := 0; attempt < 3 && sb.OverlapSeconds == 0; attempt++ {
		rep, err := engine.RunHCubeJ(q, heavyRels, engine.Config{
			NumServers: workers, Samples: 300, Seed: 1, CubesPerServer: cubes})
		if err != nil {
			fatal(fmt.Errorf("streaming overlap run: %w", err))
		}
		sb.OverlapSeconds = rep.OverlapSeconds
	}
	if sb.OverlapSeconds <= 0 {
		if runtime.GOMAXPROCS(0) > 1 {
			fatal(fmt.Errorf("streaming: shuffle-heavy %s run reclaimed zero comm/compute overlap", sb.OverlapEngine))
		}
		fmt.Fprintf(os.Stderr, "streaming: single-processor host (GOMAXPROCS=1) — comm/compute overlap unmeasurable, skipping the overlap > 0 invariant\n")
	}

	// Dial amortization over the real wire: one multi-round BigJoin run
	// (many exchanges) must dial at most workers² persistent connections.
	tcp, err := cluster.NewTCPTransport(workers)
	if err != nil {
		fatal(fmt.Errorf("streaming: tcp transport: %w", err))
	}
	rep, err := engine.RunBigJoin(q, rels, engine.Config{NumServers: workers, Samples: 300, Seed: 1,
		CubesPerServer: cubes, Transport: tcp})
	if err != nil {
		fatal(fmt.Errorf("streaming BigJoin over TCP: %w", err))
	}
	if rep.Results != wantResults {
		fatal(fmt.Errorf("streaming BigJoin over TCP: %d results, local runs found %d", rep.Results, wantResults))
	}
	sb.TCPDials = rep.TransportDials
	if sb.TCPDials == 0 || sb.TCPDials > sb.TCPDialBound {
		fatal(fmt.Errorf("streaming BigJoin over TCP dialed %d connections, want in (0, %d]: persistent connections not amortizing",
			sb.TCPDials, sb.TCPDialBound))
	}
	fmt.Fprintf(os.Stderr,
		"streaming: %d chunks, overlap %.4fs (%s), tcp dials %d/%d, bigjoin recv peak %d B streamed vs %d B materialized\n",
		sb.StreamChunks, sb.OverlapSeconds, sb.OverlapEngine,
		sb.TCPDials, sb.TCPDialBound, sb.RecvPeakStreamedBytes, sb.RecvPeakMaterializedBytes)
	return sb
}

// benchSessionWorkload measures the Session repeated-query path — the
// workload the session trie store exists for — and enforces its
// correctness invariants in every mode:
//
//   - the warm execution performs zero shuffle-side trie builds and is
//     served from the store (TrieCacheHits > 0, zero tuples shuffled);
//   - results streamed from the session (cold and warm) are byte-for-byte
//     identical to the one-shot RunGraph baseline.
//
// Timing runs count-only on a fresh session (the first execution is the
// cold measurement, the rest warm); the collected-output runs validate the
// byte equality separately so materialization cost doesn't blur the
// speedup.
func benchSessionWorkload(q hypergraph.Query, edges *relation.Relation, workers int, quick bool) *SessionBench {
	opts := adj.Options{Workers: workers, Samples: 300, Seed: 1}

	// --- Correctness: streamed session output == one-shot baseline ---
	oneshotOpts := opts
	oneshotOpts.CollectOutput = true
	base, err := adj.RunGraph("ADJ", q, edges, oneshotOpts)
	if err != nil {
		fatal(err)
	}
	baseBytes := relation.Encode(base.Output)
	checkSess, err := adj.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer checkSess.Close()
	if err := checkSess.Register("edges", edges); err != nil {
		fatal(err)
	}
	pq, err := checkSess.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		fatal(err)
	}
	for exec := 0; exec < 2; exec++ {
		res, err := pq.Exec(context.Background())
		if err != nil {
			fatal(err)
		}
		rep := res.Report()
		if res.Count() != base.Results {
			fatal(fmt.Errorf("session exec %d: %d results, one-shot %d", exec, res.Count(), base.Results))
		}
		// Reconstruct the relation from the streamed runs and compare the
		// encoded bytes against the one-shot baseline.
		streamed := relation.NewWithCapacity("out", int(res.Count()), res.Attrs()...)
		row := make([]relation.Value, len(res.Attrs()))
		for {
			prefix, vals, ok := res.NextRun()
			if !ok {
				break
			}
			copy(row, prefix)
			for _, v := range vals {
				row[len(row)-1] = v
				streamed.AppendTuple(row)
			}
		}
		if got := relation.Encode(streamed); !bytes.Equal(got, baseBytes) {
			fatal(fmt.Errorf("session exec %d: streamed results differ from one-shot baseline (%d vs %d bytes)",
				exec, len(got), len(baseBytes)))
		}
		if exec == 1 {
			if rep.TrieBuilds != 0 {
				fatal(fmt.Errorf("warm session exec built %d tries, want 0", rep.TrieBuilds))
			}
			if rep.TrieCacheHits == 0 {
				fatal(fmt.Errorf("warm session exec: no trie cache hits"))
			}
			// The HCube shuffle itself is skipped warm; a plan with
			// pre-computed bags (marked "*") legitimately still shuffles
			// the bag-materializing joins each run.
			if rep.TuplesShuffled != 0 && !strings.Contains(rep.Plan, "*") {
				fatal(fmt.Errorf("warm session exec shuffled %d tuples, want 0", rep.TuplesShuffled))
			}
		}
	}

	// --- Timing: cold vs warm, count-only, fresh session ---
	execs := 4
	if quick {
		execs = 2
	}
	sess, err := adj.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	if err := sess.Register("edges", edges); err != nil {
		fatal(err)
	}
	pq, err = sess.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		fatal(err)
	}
	sb := &SessionBench{Engine: "ADJ", Executions: execs}
	for exec := 0; exec < execs; exec++ {
		t0 := time.Now()
		res, err := pq.Exec(context.Background(), adj.CountOnly())
		if err != nil {
			fatal(err)
		}
		wall := time.Since(t0).Seconds()
		rep := res.Report()
		sb.Results = res.Count()
		if exec == 0 {
			sb.ColdSeconds = wall
			sb.ColdTrieBuilds = rep.TrieBuilds
			continue
		}
		if rep.TrieBuilds != 0 {
			fatal(fmt.Errorf("warm timing exec %d built %d tries, want 0", exec, rep.TrieBuilds))
		}
		if sb.WarmSeconds == 0 || wall < sb.WarmSeconds {
			sb.WarmSeconds = wall
		}
		sb.WarmTrieBuilds += rep.TrieBuilds
		sb.WarmTrieCacheHits += rep.TrieCacheHits
	}
	if sb.WarmSeconds > 0 {
		sb.Speedup = sb.ColdSeconds / sb.WarmSeconds
	}
	st := sess.TrieStoreStats()
	sb.StoreBlocks = st.Blocks
	sb.StoreBytes = st.Bytes
	fmt.Fprintf(os.Stderr,
		"session: cold %.4fs (builds=%d) warm %.4fs (builds=0, hits=%d) — %.2fx, store %d blocks / %d bytes\n",
		sb.ColdSeconds, sb.ColdTrieBuilds, sb.WarmSeconds, sb.WarmTrieCacheHits, sb.Speedup,
		sb.StoreBlocks, sb.StoreBytes)
	return sb
}

// hybridJoinWorkload builds the path-attached-triangle instance the hybrid
// router splits: R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c) is a large random-graph
// cyclic core, P1(c,d) is a small path relation selective on the
// attachment attribute c (few distinct values), and P2(d,e) is a large far
// path relation that a pure HCube shuffle must replicate across servers
// but the hybrid tail merely hash-partitions.
func hybridJoinWorkload(scale int) (hypergraph.Query, adj.Database) {
	rng := mrand.New(mrand.NewSource(11))
	nodes := int64(scale / 2)
	tri := relation.New("E", "src", "dst")
	for i := 0; i < 10*scale; i++ {
		tri.Append(relation.Value(rng.Int63n(nodes)), relation.Value(rng.Int63n(nodes)))
	}
	q := hypergraph.Query{Name: "Qhybrid", Atoms: []hypergraph.Atom{
		{Name: "R1", Attrs: []string{"a", "b"}},
		{Name: "R2", Attrs: []string{"b", "c"}},
		{Name: "R3", Attrs: []string{"a", "c"}},
		{Name: "P1", Attrs: []string{"c", "d"}},
		{Name: "P2", Attrs: []string{"d", "e"}},
	}}
	p1 := relation.New("P1", "c", "d")
	p2 := relation.New("P2", "d", "e")
	domain := int64(50 * scale)
	for i := 0; i < scale; i++ {
		p1.Append(relation.Value(rng.Intn(40)), relation.Value(10000+rng.Int63n(domain)))
	}
	for i := 0; i < 40*scale; i++ {
		p2.Append(relation.Value(10000+rng.Int63n(domain)), relation.Value(rng.Int63n(8000)))
	}
	// Set semantics: random draws collide, and duplicate input tuples
	// would make trie-based and hash-join-based engines disagree on
	// output multiplicity.
	tri.SortDedup()
	p1.SortDedup()
	p2.SortDedup()
	return q, adj.Database{"R1": tri, "R2": tri, "R3": tri, "P1": p1, "P2": p2}
}

// benchHybridWorkload measures selectivity-driven strategy routing and
// enforces its invariants in every mode:
//
//   - the router picks the split plan (semijoin-reduced core + ear hash
//     joins) on this workload, and its modeled cost beats both the pure
//     leapfrog (HCubeJ) and the pure binary (SparkSQL) strategies;
//   - all three agree on the result count exactly;
//   - a warm plan-cache hit reports zero planning/sampling seconds.
func benchHybridWorkload(workers int, quick bool) *HybridBench {
	scale := 2000
	if quick {
		scale = 1000
	}
	q, db := hybridJoinWorkload(scale)
	opts := adj.Options{Workers: workers, Samples: 300, Seed: 7}

	sess, err := adj.Open(opts)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	if err := sess.RegisterDatabase(db); err != nil {
		fatal(err)
	}
	pq, err := sess.Prepare("Hybrid", q)
	if err != nil {
		fatal(err)
	}
	if !strings.Contains(pq.Explain(), "Semijoin") {
		fatal(fmt.Errorf("hybrid router did not pick the split plan:\n%s", pq.Explain()))
	}

	var hybrid adj.Report
	for exec := 0; exec < 2; exec++ {
		res, err := pq.Exec(context.Background(), adj.CountOnly())
		if err != nil {
			fatal(err)
		}
		hybrid = res.Report()
		if exec > 0 && hybrid.Optimization != 0 {
			fatal(fmt.Errorf("warm hybrid exec charged %.6fs planning, want 0", hybrid.Optimization))
		}
	}
	hb := &HybridBench{
		Query:                   q.Name,
		Results:                 hybrid.Results,
		RoutedPlan:              hybrid.Plan,
		HybridSeconds:           hybrid.Total(),
		HybridShuffled:          hybrid.TuplesShuffled,
		WarmOptimizationSeconds: hybrid.Optimization,
	}
	pures := []struct {
		engine  string
		seconds *float64
		shuf    *int64
		speedup *float64
	}{
		{"HCubeJ", &hb.LeapfrogSeconds, &hb.LeapfrogShuffled, &hb.SpeedupVsLeapfrog},
		{"SparkSQL", &hb.BinarySeconds, &hb.BinaryShuffled, &hb.SpeedupVsBinary},
	}
	for _, p := range pures {
		rep, err := adj.Run(p.engine, q, db, opts)
		if err != nil {
			fatal(fmt.Errorf("hybrid workload %s: %w", p.engine, err))
		}
		if rep.Results != hb.Results {
			fatal(fmt.Errorf("hybrid workload: %s disagrees: %d vs %d", p.engine, rep.Results, hb.Results))
		}
		*p.seconds = rep.Total()
		*p.shuf = rep.TuplesShuffled
		*p.speedup = rep.Total() / hb.HybridSeconds
		if rep.Total() <= hb.HybridSeconds {
			fatal(fmt.Errorf("hybrid (%.4fs) did not beat %s (%.4fs)", hb.HybridSeconds, p.engine, rep.Total()))
		}
	}
	fmt.Fprintf(os.Stderr,
		"hybrid routing: %d results, %.4fs vs leapfrog %.4fs (%.1fx) / binary %.4fs (%.1fx), warm planning 0s\n",
		hb.Results, hb.HybridSeconds, hb.LeapfrogSeconds, hb.SpeedupVsLeapfrog,
		hb.BinarySeconds, hb.SpeedupVsBinary)
	return hb
}

// benchServingWorkload drives the multi-tenant serving tier and enforces
// its invariants in every mode:
//
//   - a bulk flood through a one-slot admission gate must shed (bulk
//     beyond the shed watermark rejected with a typed *adj.OverloadError
//     carrying a positive retry hint) while the concurrent interactive
//     trickle completes in full, its worst queue wait bounded by a
//     generous multiple of a single execution — bulk cannot starve
//     interactive;
//   - the storm leaves the session fully healthy: the next execution is
//     warm (zero trie builds);
//   - two sessions opened through one Server warm each other — the second
//     session's first execution over the same graph adopts the first's
//     tries (zero builds, nonzero store hits);
//   - on a multi-core host, N warmed executions run concurrently over the
//     cluster pool must beat the same N back-to-back by >= 2x (a
//     single-processor host serializes every goroutine, so the invariant
//     is unmeasurable there and skipped with a note).
func benchServingWorkload(q hypergraph.Query, edges *relation.Relation, workers int, quick bool) *ServingBench {
	sb := &ServingBench{}

	// --- Overload: bulk flood vs interactive trickle through one slot ---
	sess, err := adj.Open(adj.Options{Workers: workers, Samples: 300, Seed: 1,
		Admission: adj.AdmissionConfig{MaxConcurrent: 1, MaxQueue: 16, ShedQueue: 1}})
	if err != nil {
		fatal(err)
	}
	if err := sess.Register("edges", edges); err != nil {
		fatal(err)
	}
	pq, err := sess.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		fatal(err)
	}
	// Warm the store and take the single-execution baseline the fairness
	// bound scales from.
	t0 := time.Now()
	if _, err := pq.Exec(context.Background(), adj.CountOnly()); err != nil {
		fatal(err)
	}
	sb.SingleExecSeconds = time.Since(t0).Seconds()

	bulkN, interN := 24, 6
	if quick {
		bulkN, interN = 12, 4
	}
	sb.BulkSubmitted, sb.InteractiveRuns = bulkN, interN
	var (
		wg        sync.WaitGroup
		shed      atomic.Int64
		completed atomic.Int64
		badErr    atomic.Value
		maxWaitNs atomic.Int64
	)
	for i := 0; i < bulkN; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := pq.Exec(context.Background(), adj.CountOnly(),
				adj.WithClass(adj.Bulk), adj.WithTenant("bulk"))
			switch {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, adj.ErrOverloaded):
				var oe *adj.OverloadError
				if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
					badErr.Store(fmt.Errorf("serving: shed without a usable retry hint: %w", err))
				}
				shed.Add(1)
			default:
				badErr.Store(fmt.Errorf("serving: bulk exec failed with a non-overload error: %w", err))
			}
		}()
	}
	for i := 0; i < interN; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pq.Exec(context.Background(), adj.CountOnly(), adj.WithTenant("inter"))
			if err != nil {
				badErr.Store(fmt.Errorf("serving: interactive exec rejected during bulk flood: %w", err))
				return
			}
			ns := int64(res.QueueSeconds() * float64(time.Second))
			for {
				cur := maxWaitNs.Load()
				if ns <= cur || maxWaitNs.CompareAndSwap(cur, ns) {
					break
				}
			}
		}()
	}
	wg.Wait()
	if e := badErr.Load(); e != nil {
		fatal(e.(error))
	}
	sb.BulkShed = int(shed.Load())
	sb.BulkCompleted = int(completed.Load())
	sb.InteractiveMaxWait = time.Duration(maxWaitNs.Load()).Seconds()
	if sb.BulkShed == 0 {
		fatal(fmt.Errorf("serving: bulk flood of %d through a one-slot gate shed nothing", bulkN))
	}
	// Fairness: an interactive request waits behind at most the in-flight
	// execution, one queued bulk (the shed watermark rejects the rest) and
	// the other interactives — bound the worst wait by a generous multiple
	// of that many single executions, floored to absorb scheduler noise.
	bound := float64(interN+2) * sb.SingleExecSeconds * 10
	if bound < 1.0 {
		bound = 1.0
	}
	if sb.InteractiveMaxWait > bound {
		fatal(fmt.Errorf("serving: interactive wait %.4fs exceeds fairness bound %.4fs",
			sb.InteractiveMaxWait, bound))
	}
	// Post-storm health: the pool must come back warm and clean.
	res, err := pq.Exec(context.Background(), adj.CountOnly())
	if err != nil {
		fatal(fmt.Errorf("serving: post-storm exec: %w", err))
	}
	if rep := res.Report(); rep.TrieBuilds != 0 {
		fatal(fmt.Errorf("serving: post-storm exec built %d tries, want 0 (pool unhealthy)", rep.TrieBuilds))
	}
	if err := sess.Close(); err != nil {
		fatal(err)
	}

	// --- Cross-session warmth through a Server ---
	srv := adj.NewServer(adj.ServerOptions{Admission: adj.AdmissionConfig{MaxConcurrent: 2}})
	sOpts := adj.Options{Workers: workers, Samples: 300, Seed: 1}
	sA, err := srv.OpenShared(sOpts)
	if err != nil {
		fatal(err)
	}
	if err := sA.Register("edges", edges); err != nil {
		fatal(err)
	}
	pqA, err := sA.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		fatal(err)
	}
	resA, err := pqA.Exec(context.Background(), adj.CountOnly())
	if err != nil {
		fatal(err)
	}
	if resA.Report().TrieBuilds == 0 {
		fatal(fmt.Errorf("serving: session A's cold run built no tries — warmth claim would be vacuous"))
	}
	sB, err := srv.OpenShared(sOpts)
	if err != nil {
		fatal(err)
	}
	if err := sB.Register("edges", edges); err != nil {
		fatal(err)
	}
	pqB, err := sB.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		fatal(err)
	}
	resB, err := pqB.Exec(context.Background(), adj.CountOnly())
	if err != nil {
		fatal(err)
	}
	repB := resB.Report()
	sb.CrossSessionTrieBuilds = repB.TrieBuilds
	sb.CrossSessionCacheHits = repB.TrieCacheHits
	if sb.CrossSessionTrieBuilds != 0 || sb.CrossSessionCacheHits == 0 {
		fatal(fmt.Errorf("serving: session B's first exec built %d tries with %d store hits, want 0 builds and > 0 hits (shared store not warming)",
			sb.CrossSessionTrieBuilds, sb.CrossSessionCacheHits))
	}
	if err := srv.Close(); err != nil {
		fatal(err)
	}

	// --- Throughput: serialized vs concurrent over the cluster pool ---
	conc := runtime.GOMAXPROCS(0)
	if conc < 2 {
		conc = 2
	}
	if conc > 4 {
		conc = 4
	}
	sb.Concurrency = conc
	psess, err := adj.Open(adj.Options{Workers: workers, Samples: 300, Seed: 1, Concurrency: conc})
	if err != nil {
		fatal(err)
	}
	defer psess.Close()
	if err := psess.Register("edges", edges); err != nil {
		fatal(err)
	}
	ppq, err := psess.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		fatal(err)
	}
	if _, err := ppq.Exec(context.Background(), adj.CountOnly()); err != nil {
		fatal(err)
	}
	n := 4 * conc
	if quick {
		n = 2 * conc
	}
	t0 = time.Now()
	for i := 0; i < n; i++ {
		if _, err := ppq.Exec(context.Background(), adj.CountOnly()); err != nil {
			fatal(fmt.Errorf("serving: serialized exec %d: %w", i, err))
		}
	}
	sb.SerializedSeconds = time.Since(t0).Seconds()
	var terr atomic.Value
	t0 = time.Now()
	wg = sync.WaitGroup{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := ppq.Exec(context.Background(), adj.CountOnly()); err != nil {
				terr.Store(fmt.Errorf("serving: concurrent exec %d: %w", i, err))
			}
		}(i)
	}
	wg.Wait()
	sb.ConcurrentSeconds = time.Since(t0).Seconds()
	if e := terr.Load(); e != nil {
		fatal(e.(error))
	}
	if sb.ConcurrentSeconds > 0 {
		sb.ConcurrentSpeedup = sb.SerializedSeconds / sb.ConcurrentSeconds
	}
	if sb.ConcurrentSpeedup < 2 {
		if runtime.GOMAXPROCS(0) > 1 {
			fatal(fmt.Errorf("serving: %d concurrent execs over a %d-cluster pool only %.2fx over serialized, want >= 2x",
				n, conc, sb.ConcurrentSpeedup))
		}
		fmt.Fprintf(os.Stderr, "serving: single-processor host (GOMAXPROCS=1) — concurrent speedup %.2fx unmeasurable, skipping the >= 2x invariant\n",
			sb.ConcurrentSpeedup)
	}
	fmt.Fprintf(os.Stderr,
		"serving: flood %d bulk -> %d shed / %d ran, %d interactive all ran (max wait %.4fs), cross-session warm builds=%d hits=%d, %d execs serialized %.4fs vs concurrent(%d) %.4fs — %.2fx\n",
		sb.BulkSubmitted, sb.BulkShed, sb.BulkCompleted, sb.InteractiveRuns, sb.InteractiveMaxWait,
		sb.CrossSessionTrieBuilds, sb.CrossSessionCacheHits,
		n, sb.SerializedSeconds, conc, sb.ConcurrentSeconds, sb.ConcurrentSpeedup)
	return sb
}

// benchCubeCompute sets up a triangle shuffle's receiver state by hand:
// shares (2,2,2) over the global order give 8 cubes; each relation splits
// into 4 blocks of 8 per-sender trie parts, every block shared by 2 cubes.
func benchCubeCompute(snap *Snapshot, rels []*relation.Relation, order []string) {
	const senders = 8
	s := hcube.Shares{Attrs: order, P: []int{2, 2, 2}}
	attrsOf := map[string][]string{}
	blockParts := map[blockcache.Key][]*trie.Trie{}
	numCubes := s.NumCubes()
	cubeKeys := make([]map[string][]blockcache.Key, numCubes)
	for i := range cubeKeys {
		cubeKeys[i] = map[string][]blockcache.Key{}
	}
	for _, r := range rels {
		relPos := s.RelPositions(r.Attrs)
		attrs := sortedAttrs(r, order)
		attrsOf[r.Name] = attrs
		nb := s.NumBlocks(relPos)
		parts := make([][]*relation.Relation, nb)
		for sig := range parts {
			parts[sig] = make([]*relation.Relation, senders)
			for sd := range parts[sig] {
				parts[sig][sd] = relation.New(r.Name, r.Attrs...)
			}
		}
		for i, n := 0, r.Len(); i < n; i++ {
			t := r.Tuple(i)
			parts[s.BlockSig(relPos, t)][i%senders].AppendTuple(t)
		}
		for sig := 0; sig < nb; sig++ {
			key := blockcache.Key{Rel: r.Name, Sig: sig}
			for _, sp := range parts[sig] {
				if sp.Len() > 0 {
					sp.Sort()
					blockParts[key] = append(blockParts[key], trie.Build(sp, attrs))
				}
			}
			if len(blockParts[key]) == 0 {
				continue
			}
			for _, cube := range s.BlockCubes(relPos, sig) {
				cubeKeys[cube][r.Name] = append(cubeKeys[cube][r.Name], key)
			}
		}
	}
	rebuild := func() int64 {
		var total int64
		for cube := 0; cube < numCubes; cube++ {
			tries := make([]*trie.Trie, 0, len(rels))
			for _, r := range rels {
				var ps []*trie.Trie
				for _, k := range cubeKeys[cube][r.Name] {
					ps = append(ps, blockParts[k]...)
				}
				tries = append(tries, trie.Merge(ps))
			}
			st, err := leapfrog.Join(tries, order, leapfrog.Options{})
			if err != nil {
				fatal(err)
			}
			total += st.Results
		}
		return total
	}
	cached := func() int64 {
		reg := blockcache.New()
		for key, ps := range blockParts {
			for _, t := range ps {
				reg.DepositTrie(key, attrsOf[key.Rel], t)
			}
		}
		for cube := 0; cube < numCubes; cube++ {
			for rel, ks := range cubeKeys[cube] {
				for _, k := range ks {
					reg.BindCube(cube, rel, k)
				}
			}
		}
		var total int64
		for cube := 0; cube < numCubes; cube++ {
			tries := make([]*trie.Trie, 0, len(rels))
			for _, r := range rels {
				tr, ok := reg.CubeTrie(cube, r.Name)
				if !ok {
					tr = trie.Build(relation.New(r.Name, r.Attrs...), attrsOf[r.Name])
				}
				tries = append(tries, tr)
			}
			st, err := leapfrog.Join(tries, order, leapfrog.Options{})
			if err != nil {
				fatal(err)
			}
			total += st.Results
		}
		return total
	}
	if a, b := cached(), rebuild(); a != b {
		fatal(fmt.Errorf("cube compute paths disagree: cached=%d rebuild=%d", a, b))
	}
	snap.Benchmarks["cube_compute_cached"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cached()
		}
	})
	snap.Benchmarks["cube_compute_rebuild"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rebuild()
		}
	})
}

// runEngines measures the five engines end-to-end at the given cube
// fan-out, records the block-cache counters, and enforces the cache
// invariants: engines agree on the result count and every (relation,
// block) trie is built exactly once per worker (builds == blocks).
func runEngines(q hypergraph.Query, rels []*relation.Relation, workers, cubes int) map[string]EngineRun {
	out := map[string]EngineRun{}
	var wantResults int64 = -1
	for _, name := range engine.EngineNames() {
		run := engine.Engines()[name]
		cfg := engine.Config{NumServers: workers, Samples: 300, Seed: 1, CubesPerServer: cubes}
		t0 := time.Now()
		rep, err := run(q, rels, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if rep.Failed {
			fatal(fmt.Errorf("%s failed: %s", name, rep.FailReason))
		}
		if wantResults == -1 {
			wantResults = rep.Results
		} else if rep.Results != wantResults {
			fatal(fmt.Errorf("%s: results=%d, other engines found %d", name, rep.Results, wantResults))
		}
		if rep.CacheBlocks > 0 && rep.TrieBuilds != rep.CacheBlocks {
			fatal(fmt.Errorf("%s: %d trie builds for %d cached blocks; each block must be built exactly once",
				name, rep.TrieBuilds, rep.CacheBlocks))
		}
		out[name] = EngineRun{
			Results:        rep.Results,
			TuplesShuffled: rep.TuplesShuffled,
			BytesShuffled:  rep.BytesShuffled,
			TotalSeconds:   rep.Total(),
			WallSeconds:    time.Since(t0).Seconds(),
			CacheBlocks:    rep.CacheBlocks,
			TrieBuilds:     rep.TrieBuilds,
			TrieCacheHits:  rep.TrieCacheHits,
		}
		fmt.Fprintf(os.Stderr, "%-12s cps=%d results=%d tuples=%d bytes=%d blocks=%d builds=%d hits=%d\n",
			name, cubes, rep.Results, rep.TuplesShuffled, rep.BytesShuffled,
			rep.CacheBlocks, rep.TrieBuilds, rep.TrieCacheHits)
	}
	return out
}

// blockTries splits the edge relation into n sorted sub-blocks and builds
// one trie per block — the shape trie.Merge sees at a Merge-shuffle
// receiver.
func blockTries(edges *relation.Relation, n int) []*trie.Trie {
	parts := make([]*relation.Relation, n)
	for i := range parts {
		parts[i] = relation.New("B", "src", "dst")
	}
	for i, m := 0, edges.Len(); i < m; i++ {
		parts[i%n].AppendTuple(edges.Tuple(i))
	}
	out := make([]*trie.Trie, n)
	for i, p := range parts {
		out[i] = trie.Build(p, []string{"src", "dst"})
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// --- Reference k-way merge: the pre-pooling implementation (one
// iterator, stream struct, tuple buffer and heap allocation per input per
// merge, plus a fresh staging relation), reconstructed from public API as
// the trie_merge comparison baseline. ---

type refStream struct {
	t       *trie.Trie
	it      *trie.Iterator
	cur     []relation.Value
	started bool
}

func (s *refStream) next() bool {
	k := s.t.Arity()
	if k == 0 || s.t.NumTuples == 0 {
		return false
	}
	it := s.it
	if !s.started {
		s.started = true
		for d := 0; d < k; d++ {
			it.Open()
			if it.AtEnd() {
				return false
			}
			s.cur[d] = it.Key()
		}
		return true
	}
	for {
		it.Next()
		if !it.AtEnd() {
			s.cur[it.Depth()] = it.Key()
			for it.Depth() < k-1 {
				it.Open()
				s.cur[it.Depth()] = it.Key()
			}
			return true
		}
		it.Up()
		if it.Depth() < 0 {
			return false
		}
	}
}

type refStreamHeap struct {
	items []*refStream
	k     int
}

func (h *refStreamHeap) Len() int { return len(h.items) }
func (h *refStreamHeap) Less(i, j int) bool {
	a, b := h.items[i].cur, h.items[j].cur
	for x := 0; x < h.k; x++ {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}
func (h *refStreamHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *refStreamHeap) Push(x interface{}) { h.items = append(h.items, x.(*refStream)) }
func (h *refStreamHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func mergeReference(ts []*trie.Trie) *trie.Trie {
	var live []*trie.Trie
	for _, t := range ts {
		if t != nil && t.NumTuples > 0 {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return &trie.Trie{}
	}
	if len(live) == 1 {
		return live[0]
	}
	k := live[0].Arity()
	total := 0
	var streams []*refStream
	for _, t := range live {
		total += t.NumTuples
		s := &refStream{t: t, it: trie.NewIterator(t), cur: make([]relation.Value, k)}
		if s.next() {
			streams = append(streams, s)
		}
	}
	h := &refStreamHeap{items: streams, k: k}
	heap.Init(h)
	out := relation.NewWithCapacity("merged", total, live[0].Attrs...)
	last := make([]relation.Value, k)
	havLast := false
	for h.Len() > 0 {
		s := h.items[0]
		same := havLast
		if same {
			for x := 0; x < k; x++ {
				if last[x] != s.cur[x] {
					same = false
					break
				}
			}
		}
		if !same {
			copy(last, s.cur)
			havLast = true
			out.AppendTuple(s.cur)
		}
		if s.next() {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return trie.FromSorted(out)
}

// countJoin runs the production joiner and returns the result count.
func countJoin(tries []*trie.Trie, order []string) int64 {
	st, err := leapfrog.Join(tries, order, leapfrog.Options{})
	if err != nil {
		fatal(err)
	}
	return st.Results
}

// sortedAttrs returns r's attributes ordered by global-order position.
func sortedAttrs(r *relation.Relation, order []string) []string {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	attrs := append([]string(nil), r.Attrs...)
	sortslice.Slice(attrs, func(x, y int) bool { return pos[attrs[x]] < pos[attrs[y]] })
	return attrs
}
