// Command bench snapshots the performance of the execution hot path so PRs
// have a trajectory to compare against. It runs the tier-2 micro-benchmarks
// (trie build — row-major and columnar, single-cube Leapfrog, shuffle
// encode/decode on both layouts, hash partitioning) plus the triangle
// query end-to-end on every engine over a generated power-law graph,
// verifies the engines agree on the result count, and writes a JSON
// snapshot (BENCH_<n>.json at the repo root by convention).
//
// When a reference snapshot exists (-ref, default BENCH_1.json), the
// output embeds a before/after comparison for every shared benchmark key,
// so BENCH_2.json directly reports the columnar-layout wins over the PR-1
// numbers.
//
//	go run ./cmd/bench                  # writes BENCH_2.json, compares to BENCH_1.json
//	go run ./cmd/bench -scale 0.1 -out /tmp/b.json -ref ""
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	sortslice "sort"
	"testing"
	"time"

	"adj"
	"adj/internal/cluster"
	"adj/internal/engine"
	"adj/internal/hypergraph"
	"adj/internal/leapfrog"
	"adj/internal/relation"
	"adj/internal/trie"
)

// Metric is one benchmark result.
type Metric struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
}

// EngineRun is one engine's end-to-end triangle measurement.
type EngineRun struct {
	Results        int64   `json:"results"`
	TuplesShuffled int64   `json:"tuples_shuffled"`
	BytesShuffled  int64   `json:"bytes_shuffled"`
	TotalSeconds   float64 `json:"total_modeled_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
}

// VsRef compares one benchmark against the reference snapshot: speedup > 1
// means this snapshot is faster.
type VsRef struct {
	RefNsPerOp float64 `json:"ref_ns_op"`
	NsPerOp    float64 `json:"ns_op"`
	Speedup    float64 `json:"speedup"`
}

// Snapshot is the written file.
type Snapshot struct {
	Generated    string               `json:"generated"`
	GoVersion    string               `json:"go_version"`
	GOMAXPROCS   int                  `json:"gomaxprocs"`
	Dataset      string               `json:"dataset"`
	Scale        float64              `json:"scale"`
	Edges        int                  `json:"edges"`
	Query        string               `json:"query"`
	Benchmarks   map[string]Metric    `json:"benchmarks"`
	EncodedBytes map[string]int       `json:"encoded_bytes_per_block"`
	Engines      map[string]EngineRun `json:"engines"`
	// Reference names the snapshot the VsReference section compares
	// against (empty when none was found).
	Reference   string           `json:"reference,omitempty"`
	VsReference map[string]VsRef `json:"vs_reference,omitempty"`
}

func metricOf(r testing.BenchmarkResult) Metric {
	return Metric{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func bench(fn func(b *testing.B)) Metric {
	return metricOf(testing.Benchmark(fn))
}

// buildReference is the pre-Builder trie pipeline (materialize the permuted
// relation, sort+dedup, FromSorted), reconstructed from public API as the
// comparison baseline.
func buildReference(r *relation.Relation, attrs []string) *trie.Trie {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.AttrIndex(a)
	}
	perm := relation.NewWithCapacity(r.Name, r.Len(), attrs...)
	row := make([]relation.Value, len(attrs))
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		for j, c := range cols {
			row[j] = t[c]
		}
		perm.AppendTuple(row)
	}
	perm.SortDedup()
	return trie.FromSorted(perm)
}

// --- Reference Leapfrog: the seed implementation, reconstructed as the
// comparison baseline. One iterator allocation per trie per run, a
// sort.Slice per level open, and every key read through the iterator. ---

type refFrame struct {
	iters []*trie.Iterator
	p     int
	key   relation.Value
	atEnd bool
	open_ bool
}

func (f *refFrame) open() bool {
	for _, it := range f.iters {
		it.Open()
	}
	f.open_ = true
	f.atEnd = false
	for _, it := range f.iters {
		if it.AtEnd() {
			f.atEnd = true
			return false
		}
	}
	sortIters(f.iters)
	f.p = 0
	f.search()
	return !f.atEnd
}

func sortIters(iters []*trie.Iterator) {
	sortSlice(iters, func(a, b *trie.Iterator) bool { return a.Key() < b.Key() })
}

func (f *refFrame) close() {
	if !f.open_ {
		return
	}
	for _, it := range f.iters {
		it.Up()
	}
	f.open_ = false
}

func (f *refFrame) search() {
	k := len(f.iters)
	xPrime := f.iters[(f.p+k-1)%k].Key()
	for {
		x := f.iters[f.p].Key()
		if x == xPrime {
			f.key = x
			return
		}
		f.iters[f.p].Seek(xPrime)
		if f.iters[f.p].AtEnd() {
			f.atEnd = true
			return
		}
		xPrime = f.iters[f.p].Key()
		f.p = (f.p + 1) % k
	}
}

func (f *refFrame) next() {
	f.iters[f.p].Next()
	if f.iters[f.p].AtEnd() {
		f.atEnd = true
		return
	}
	f.p = (f.p + 1) % len(f.iters)
	f.search()
}

func referenceJoinCount(tries []*trie.Trie, order []string) int64 {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	active := make([][]*trie.Iterator, len(order))
	for _, t := range tries {
		it := trie.NewIterator(t)
		for _, a := range t.Attrs {
			active[pos[a]] = append(active[pos[a]], it)
		}
	}
	lf := make([]*refFrame, len(order))
	for d := range lf {
		lf[d] = &refFrame{iters: active[d]}
	}
	var results int64
	d := 0
	if !lf[0].open() {
		return 0
	}
	n := len(order)
	for d >= 0 {
		f := lf[d]
		if f.atEnd {
			f.close()
			d--
			if d >= 0 {
				lf[d].next()
			}
			continue
		}
		if d == n-1 {
			results++
			f.next()
			continue
		}
		d++
		lf[d].open()
	}
	return results
}

// sortSlice is sort.Slice specialized to iterator slices (keeps the
// reference implementation's per-open allocation behavior).
func sortSlice(s []*trie.Iterator, less func(a, b *trie.Iterator) bool) {
	sortslice.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}

func main() {
	var (
		out     = flag.String("out", "BENCH_2.json", "output JSON path")
		ref     = flag.String("ref", "BENCH_1.json", "reference snapshot to compare against (\"\" disables)")
		scale   = flag.Float64("scale", 0.2, "dataset scale for the power-law graph")
		dataset = flag.String("dataset", "LJ", "generated dataset name (power-law: WB, AS, LJ, ...)")
		workers = flag.Int("workers", 8, "cluster size for the engine runs")
	)
	flag.Parse()

	valid := false
	for _, n := range adj.DatasetNames() {
		if n == *dataset {
			valid = true
			break
		}
	}
	if !valid {
		fatal(fmt.Errorf("unknown dataset %q (want one of %v)", *dataset, adj.DatasetNames()))
	}
	edges := adj.GenerateGraph(*dataset, *scale)
	q := hypergraph.Get("Q1") // triangle
	rels := q.BindGraph(edges)
	order := q.Attrs()

	snap := Snapshot{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Dataset:      *dataset,
		Scale:        *scale,
		Edges:        edges.Len(),
		Query:        q.Name,
		Benchmarks:   map[string]Metric{},
		EncodedBytes: map[string]int{},
		Engines:      map[string]EngineRun{},
	}

	fmt.Fprintf(os.Stderr, "dataset %s scale=%g: %d edges\n", *dataset, *scale, edges.Len())

	// --- Trie build: radix builder vs reference pipeline ---
	snap.Benchmarks["trie_build"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Build(edges, []string{"src", "dst"})
		}
	})
	snap.Benchmarks["trie_build_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildReference(edges, []string{"src", "dst"})
		}
	})
	// Columnar layout: same radix builder over a columnar-resident source
	// (the layout every shuffled block arrives in after PR 2).
	colEdges := edges.Clone().PivotToColumns()
	snap.Benchmarks["trie_build_columnar"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Build(colEdges, []string{"src", "dst"})
		}
	})
	sortedColEdges := edges.Clone().PivotToColumns().Sort()
	snap.Benchmarks["trie_build_columnar_sorted"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			trie.Build(sortedColEdges, []string{"src", "dst"})
		}
	})

	// --- Single-cube Leapfrog: join over pre-built tries, and the full
	// cube pipeline (trie construction + join) the engines actually run ---
	tries := leapfrog.BuildTries(rels, order)
	snap.Benchmarks["leapfrog_triangle"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := leapfrog.Join(tries, order, leapfrog.Options{}); err != nil {
				fatal(err)
			}
		}
	})
	snap.Benchmarks["leapfrog_triangle_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referenceJoinCount(tries, order)
		}
	})
	if got, want := referenceJoinCount(tries, order), countJoin(tries, order); got != want {
		fatal(fmt.Errorf("reference joiner disagrees: %d vs %d", got, want))
	}
	snap.Benchmarks["cube_pipeline"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ts := leapfrog.BuildTries(rels, order)
			if _, err := leapfrog.Join(ts, order, leapfrog.Options{}); err != nil {
				fatal(err)
			}
		}
	})
	snap.Benchmarks["cube_pipeline_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var ts []*trie.Trie
			for _, r := range rels {
				ts = append(ts, buildReference(r, sortedAttrs(r, order)))
			}
			referenceJoinCount(ts, order)
		}
	})

	// --- Shuffle codec: batched delta format vs legacy fixed-width, plus
	// the columnar encoder (one contiguous run per column, no gather) ---
	block := edges.Clone()
	block.Sort()
	colBlock := block.Clone().PivotToColumns()
	encoded := relation.Encode(block)
	if colEnc := relation.Encode(colBlock); !bytes.Equal(encoded, colEnc) {
		fatal(fmt.Errorf("columnar encoder produced different wire bytes"))
	}
	encodedRaw := relation.EncodeRaw(block)
	snap.EncodedBytes["delta"] = len(encoded)
	snap.EncodedBytes["raw"] = len(encodedRaw)
	scratch := make([]byte, 0, len(encoded))
	snap.Benchmarks["shuffle_encode"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = relation.AppendEncode(scratch[:0], block)
		}
	})
	snap.Benchmarks["shuffle_encode_columnar"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = relation.AppendEncode(scratch[:0], colBlock)
		}
	})
	snap.Benchmarks["shuffle_encode_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			relation.EncodeRaw(block)
		}
	})
	var decodeScratch relation.Relation
	snap.Benchmarks["shuffle_decode"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := relation.DecodeInto(encoded, &decodeScratch); err != nil {
				fatal(err)
			}
		}
	})
	snap.Benchmarks["shuffle_decode_reference"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := relation.DecodeRaw(encodedRaw); err != nil {
				fatal(err)
			}
		}
	})
	// Composite: one block's full shuffle cost — encode + wire (modeled at
	// the paper's 10 GbE testbed bandwidth) + decode. This is the number
	// the batched codec optimizes: it trades a few percent of encode CPU
	// for a 4–5× cut in bytes moved.
	wire := func(nBytes int) float64 {
		return cluster.DefaultNetwork().CommSeconds(int64(nBytes), 1) * 1e9
	}
	snap.Benchmarks["shuffle_roundtrip"] = Metric{
		NsPerOp: snap.Benchmarks["shuffle_encode"].NsPerOp +
			wire(len(encoded)) +
			snap.Benchmarks["shuffle_decode"].NsPerOp,
		AllocsPerOp: snap.Benchmarks["shuffle_encode"].AllocsPerOp +
			snap.Benchmarks["shuffle_decode"].AllocsPerOp,
	}
	snap.Benchmarks["shuffle_roundtrip_reference"] = Metric{
		NsPerOp: snap.Benchmarks["shuffle_encode_reference"].NsPerOp +
			wire(len(encodedRaw)) +
			snap.Benchmarks["shuffle_decode_reference"].NsPerOp,
		AllocsPerOp: snap.Benchmarks["shuffle_encode_reference"].AllocsPerOp +
			snap.Benchmarks["shuffle_decode_reference"].AllocsPerOp,
	}

	// --- Hash partitioner: column-scan hash + single scatter, row-major
	// vs columnar-resident input (the BinaryJoin/BigJoin repartition and
	// the sampler's value partitioning) ---
	snap.Benchmarks["partition_rowmajor"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			edges.PartitionBy([]int{0}, *workers)
		}
	})
	snap.Benchmarks["partition_columnar"] = bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			colEdges.PartitionBy([]int{0}, *workers)
		}
	})

	// --- End-to-end engines on the triangle query; counts must agree ---
	var wantResults int64 = -1
	for _, name := range engine.EngineNames() {
		run := engine.Engines()[name]
		cfg := engine.Config{NumServers: *workers, Samples: 300, Seed: 1}
		t0 := time.Now()
		rep, err := run(q, rels, cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		if rep.Failed {
			fatal(fmt.Errorf("%s failed: %s", name, rep.FailReason))
		}
		if wantResults == -1 {
			wantResults = rep.Results
		} else if rep.Results != wantResults {
			fatal(fmt.Errorf("%s: results=%d, other engines found %d", name, rep.Results, wantResults))
		}
		snap.Engines[name] = EngineRun{
			Results:        rep.Results,
			TuplesShuffled: rep.TuplesShuffled,
			BytesShuffled:  rep.BytesShuffled,
			TotalSeconds:   rep.Total(),
			WallSeconds:    time.Since(t0).Seconds(),
		}
		fmt.Fprintf(os.Stderr, "%-12s results=%d tuples=%d bytes=%d\n",
			name, rep.Results, rep.TuplesShuffled, rep.BytesShuffled)
	}

	// --- Reference comparison: embed before/after ratios for every
	// benchmark key the reference snapshot also measured ---
	if *ref != "" {
		if refData, err := os.ReadFile(*ref); err == nil {
			var refSnap Snapshot
			if err := json.Unmarshal(refData, &refSnap); err != nil {
				fatal(fmt.Errorf("parse reference %s: %w", *ref, err))
			}
			snap.Reference = *ref
			snap.VsReference = map[string]VsRef{}
			for name, m := range snap.Benchmarks {
				rm, ok := refSnap.Benchmarks[name]
				if !ok || rm.NsPerOp <= 0 {
					continue
				}
				snap.VsReference[name] = VsRef{
					RefNsPerOp: rm.NsPerOp,
					NsPerOp:    m.NsPerOp,
					Speedup:    rm.NsPerOp / m.NsPerOp,
				}
			}
			for name, v := range snap.VsReference {
				fmt.Fprintf(os.Stderr, "vs %s: %-28s %.2fx\n", *ref, name, v.Speedup)
			}
		} else {
			fmt.Fprintf(os.Stderr, "reference %s not found; skipping comparison\n", *ref)
		}
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}


// countJoin runs the production joiner and returns the result count.
func countJoin(tries []*trie.Trie, order []string) int64 {
	st, err := leapfrog.Join(tries, order, leapfrog.Options{})
	if err != nil {
		fatal(err)
	}
	return st.Results
}

// sortedAttrs returns r's attributes ordered by global-order position.
func sortedAttrs(r *relation.Relation, order []string) []string {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	attrs := append([]string(nil), r.Attrs...)
	sortslice.Slice(attrs, func(x, y int) bool { return pos[attrs[x]] < pos[attrs[y]] })
	return attrs
}
