// Command experiments regenerates the paper's evaluation (§VII): every
// table and figure, printed as text tables with the same rows and series.
//
//	experiments -exp all                 # everything (minutes)
//	experiments -exp fig12d -scale 0.1   # one experiment
//	experiments -list                    # available ids
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"adj/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all': "+strings.Join(experiments.IDs(), " "))
		scale   = flag.Float64("scale", 0.1, "dataset scale (1.0 ≈ paper ×10⁻³)")
		workers = flag.Int("workers", 8, "cluster size (paper figures use 28)")
		samples = flag.Int("samples", 500, "optimizer sampling budget")
		seed    = flag.Int64("seed", 1, "random seed")
		budget  = flag.Int64("budget", 30_000_000, "per-run work budget; exceeded runs report FAIL")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := experiments.Config{
		Scale: *scale, Workers: *workers, Samples: *samples, Seed: *seed, Budget: *budget,
		Ctx: ctx,
	}

	run := func(id string, fn func(experiments.Config) (experiments.Result, error)) {
		t0 := time.Now()
		res, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		fmt.Printf("   [%s took %.1fs]\n\n", id, time.Since(t0).Seconds())
	}

	if *exp == "all" {
		for _, id := range experiments.IDs() {
			run(id, experiments.ByID(id))
		}
		return
	}
	fn := experiments.ByID(*exp)
	if fn == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows ids\n", *exp)
		os.Exit(1)
	}
	run(*exp, fn)
}
