// Command adjlint is ADJ's project-specific static analysis gate. It runs
// the internal/analyzers suite (ctxflow, errwrap, lockdiscipline,
// pooldiscipline, phasevocab — see internal/analyzers/README.md) over the
// packages matching the given patterns (default ./...) and exits non-zero
// if any invariant is violated.
//
// Usage:
//
//	adjlint [-run name,name] [-list] [packages...]
//
// Findings print to stdout as file:line:col: analyzer: message. Load and
// per-analyzer timings print to stderr so CI logs keep the gate's cost
// visible. False positives are suppressed in place with
// //adjlint:ignore directives, never by weakening the analyzers.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"adj/internal/analyzers"
)

func main() {
	runList := flag.String("run", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := analyzers.ByName(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adjlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	t0 := time.Now()
	pkgs, err := analyzers.LoadPackages(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adjlint:", err)
		os.Exit(2)
	}
	loadSecs := time.Since(t0).Seconds()

	diags, seconds, err := analyzers.Run(pkgs, as)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adjlint:", err)
		os.Exit(2)
	}

	for _, d := range diags {
		fmt.Println(d)
	}

	names := make([]string, 0, len(seconds))
	for n := range seconds {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(os.Stderr, "adjlint: %d packages loaded in %.2fs\n", len(pkgs), loadSecs)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "adjlint: %-16s %8.3fs\n", n, seconds[n])
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "adjlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
