// Command datagen writes the synthetic benchmark graphs as SNAP edge lists
// so they can be inspected or consumed by other systems.
//
//	datagen -dataset LJ -scale 0.1 -out lj.txt
//	datagen -all -scale 1.0 -dir ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"adj/internal/dataset"
)

func main() {
	var (
		name  = flag.String("dataset", "LJ", "dataset name: WB AS WT LJ EN OK")
		scale = flag.Float64("scale", 0.1, "scale (1.0 ≈ paper edge counts ×10⁻³)")
		out   = flag.String("out", "", "output file (default <name>.txt)")
		all   = flag.Bool("all", false, "write every dataset")
		dir   = flag.String("dir", ".", "output directory for -all")
		stats = flag.Bool("stats", false, "print Table-I style statistics only")
	)
	flag.Parse()

	names := []string{*name}
	if *all {
		names = dataset.Names()
	}
	for _, n := range names {
		r := dataset.Load(n, *scale)
		st := dataset.StatsOf(n, r)
		if *stats {
			fmt.Printf("%-3s edges=%-8d nodes=%-8d maxOut=%-5d avgDeg=%.2f size=%.2fMB\n",
				st.Name, st.Edges, st.Nodes, st.MaxOut, st.AvgDegree, st.SizeMB)
			continue
		}
		path := *out
		if path == "" || *all {
			path = filepath.Join(*dir, fmt.Sprintf("%s_%g.txt", n, *scale))
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		if err := dataset.WriteSNAP(f, r); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (%d edges)\n", path, r.Len())
	}
}
