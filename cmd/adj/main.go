// Command adj runs a join query on a simulated cluster with any of the
// five engines and prints the paper-style cost breakdown. Runs go through
// the Session API: the dataset is registered once, the query is prepared
// once (planning amortized), and -repeat executes it repeatedly on the
// resident workers — repeated executions go warm, served from the
// session's content-keyed block-trie store with zero shuffle-side builds.
//
// Examples:
//
//	adj -query Q1 -dataset LJ -scale 0.1 -engine ADJ -workers 8
//	adj -query Q1 -dataset LJ -engine ADJ -repeat 5      # cold + 4 warm execs
//	adj -query 'Qt :- R(a,b) ⋈ S(b,c) ⋈ T(a,c)' -snap edges.txt -engine HCubeJ
//	adj -query Q5 -dataset OK -all            # compare every engine
//
// Note -all runs every engine on the same session: engines whose shuffles
// agree on shares and attribute order reuse each other's published block
// tries (visible as builds=0 / zero shuffled tuples on later engines).
// For isolated per-engine measurements use cmd/bench, which runs each
// engine on a fresh cluster.
//
//	adj -query Q6 -dataset LJ -explain              # print ADJ's plan DAG only
//	adj -query Q5 -dataset LJ -engine Hybrid -explain   # the hybrid route's DAG
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"adj"
)

func main() {
	var (
		queryStr = flag.String("query", "Q1", "catalog name (Q1..Q11) or full query text 'Q :- R1(a,b) ⋈ ...'")
		dataset  = flag.String("dataset", "LJ", "named synthetic dataset: WB AS WT LJ EN OK")
		scale    = flag.Float64("scale", 0.1, "dataset scale (1.0 ≈ paper edge counts ×10⁻³)")
		snap     = flag.String("snap", "", "load a SNAP edge-list file instead of a synthetic dataset")
		engine   = flag.String("engine", "ADJ", "engine: "+strings.Join(adj.AllEngineNames(), " "))
		workers  = flag.Int("workers", 8, "simulated cluster size")
		samples  = flag.Int("samples", 1000, "sampling budget for the optimizer")
		seed     = flag.Int64("seed", 1, "random seed")
		budget   = flag.Int64("budget", 100_000_000, "intermediate-work budget (0 = unlimited)")
		repeat   = flag.Int("repeat", 1, "execute the prepared query this many times on one session (run 2+ go warm)")
		all      = flag.Bool("all", false, "run every engine and compare")
		explain  = flag.Bool("explain", false, "print the chosen engine's plan DAG and exit")
		phases   = flag.Bool("phases", false, "print per-phase metrics")
	)
	flag.Parse()

	q, err := parseQueryArg(*queryStr)
	exitOn(err)

	var edges *adj.Relation
	if *snap != "" {
		edges, err = adj.LoadGraph(*snap)
		exitOn(err)
		fmt.Printf("loaded %s: %d edges\n", *snap, edges.Len())
	} else {
		edges = adj.GenerateGraph(*dataset, *scale)
		fmt.Printf("dataset %s@%g: %d edges\n", *dataset, *scale, edges.Len())
	}

	opts := adj.Options{Workers: *workers, Samples: *samples, Seed: *seed, Budget: *budget}

	if *explain {
		plan, err := adj.ExplainEngine(*engine, q, edges, opts)
		exitOn(err)
		fmt.Println(plan)
		return
	}

	sess, err := adj.Open(opts)
	exitOn(err)
	defer sess.Close()
	exitOn(sess.Register("edges", edges))

	names := []string{*engine}
	if *all {
		names = adj.AllEngineNames()
	}
	for _, name := range names {
		pq, err := sess.PrepareGraph(name, q, "edges")
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			continue
		}
		for exec := 0; exec < *repeat; exec++ {
			t0 := time.Now()
			res, err := pq.Exec(context.Background(), adj.CountOnly())
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				break
			}
			rep := res.Report()
			fmt.Println(rep.String())
			if *repeat > 1 {
				fmt.Printf("  exec %d: wall=%.3fs blocks=%d builds=%d hits=%d\n",
					exec+1, time.Since(t0).Seconds(), rep.CacheBlocks, rep.TrieBuilds, rep.TrieCacheHits)
			}
			if exec == 0 {
				if rep.Plan != "" {
					fmt.Printf("  plan: %s (prepared in %.3fs)\n", rep.Plan, pq.PlanSeconds())
				}
				if *phases && rep.Metrics != nil {
					fmt.Print(rep.Metrics.String())
				}
			}
		}
	}
	if *repeat > 1 {
		st := sess.TrieStoreStats()
		fmt.Printf("trie store: %d blocks, %d bytes (budget %d), %d hits, %d evictions\n",
			st.Blocks, st.Bytes, st.Budget, st.Hits, st.Evictions)
	}
}

func parseQueryArg(s string) (adj.Query, error) {
	if !strings.ContainsAny(s, "(") {
		for _, q := range adj.CatalogQueries() {
			if q.Name == s {
				return q, nil
			}
		}
		return adj.Query{}, fmt.Errorf("unknown catalog query %q (Q1..Q11) — or pass full query text", s)
	}
	return adj.ParseQuery(s)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adj:", err)
		os.Exit(1)
	}
}
