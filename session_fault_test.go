package adj

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"adj/internal/cluster"
	"adj/internal/faultinject"
)

// withFaultTransport swaps a session's resident cluster for one whose
// transport is wrapped in the fault injector (the session owns its
// clusters, so this is the seam fault tests use). These tests open their
// sessions with the default pool of one cluster; the swap checks it out of
// the pool and returns the replacement through it. The returned
// transport's rules can be re-armed or healed between executions with
// SetRules.
func withFaultTransport(t *testing.T, s *Session, seed int64, rules ...faultinject.Rule) *faultinject.Transport {
	t.Helper()
	if len(s.clusters) != 1 {
		t.Fatalf("withFaultTransport wants a single-cluster session, got pool of %d", len(s.clusters))
	}
	tr := faultinject.Wrap(cluster.NewLocalTransport(s.opts.Workers), seed, rules...)
	old := <-s.pool
	old.Close()
	s.clusters[0] = cluster.New(cluster.Config{N: s.opts.Workers, Transport: tr})
	s.pool <- s.clusters[0]
	return tr
}

// TestSessionSurvivesTransportFault is the fail-safe regression: an Exec
// that dies on a typed transport fault must leave the session fully usable
// — the very next Exec, with the fault healed, returns exactly the
// one-shot result.
func TestSessionSurvivesTransportFault(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	edges := randomEdges(t, rng, 400, 50)
	q := CatalogQuery("Q1")
	opts := Options{Workers: 3, Samples: 60, Seed: 1}

	ref, err := Count(q, edges, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []string{"drop", "corrupt", "faildial"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var rule faultinject.Rule
			switch kind {
			case "drop":
				rule = faultinject.Rule{From: faultinject.Any, To: faultinject.Any, Drop: 1}
			case "corrupt":
				rule = faultinject.Rule{From: faultinject.Any, To: faultinject.Any, Corrupt: 1}
			case "faildial":
				rule = faultinject.Rule{From: faultinject.Any, To: faultinject.Any, FailDial: 1}
			}
			tr := withFaultTransport(t, s, 5, rule)
			if err := s.Register("edges", edges); err != nil {
				t.Fatal(err)
			}
			pq, err := s.PrepareGraph("ADJ", q, "edges")
			if err != nil {
				t.Fatal(err)
			}

			if _, err := pq.Exec(context.Background(), CountOnly()); err == nil {
				t.Fatal("faulted exec should fail")
			} else if !errors.Is(err, ErrTransport) {
				t.Fatalf("faulted exec's error is untyped: %v", err)
			} else if !IsTransient(err) {
				t.Fatalf("transport fault should classify transient: %v", err)
			}

			tr.SetRules() // heal
			res, err := pq.Exec(context.Background(), CountOnly())
			if err != nil {
				t.Fatalf("exec after failure: %v", err)
			}
			if res.Count() != ref.Results {
				t.Fatalf("post-failure exec count = %d, one-shot = %d", res.Count(), ref.Results)
			}
			if res.Err() != nil {
				t.Fatalf("clean exec reports Err: %v", res.Err())
			}
		})
	}
}

// TestSessionSurvivesWorkerPanicWarmStore verifies the other half of the
// fail-safe contract: a worker panic mid-execution neither wedges the
// session nor invalidates the session trie store — the execution after the
// crash still runs warm (zero shuffle-side trie builds) and returns the
// same count as the pre-crash execution.
func TestSessionSurvivesWorkerPanicWarmStore(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges := randomEdges(t, rng, 400, 50)
	q := CatalogQuery("Q1")

	s, err := Open(Options{Workers: 3, Samples: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		t.Fatal(err)
	}

	cold, err := pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report().TrieBuilds == 0 {
		t.Fatal("cold exec built no tries (test premise broken)")
	}

	s.clusters[0].SetPanicHook(func(phase string, workerID int) {
		if workerID == 1 {
			panic("injected crash")
		}
	})
	_, err = pq.Exec(context.Background(), CountOnly())
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("want ErrWorkerPanic, got %v", err)
	}
	if IsTransient(err) {
		t.Fatal("panics must not classify transient (Retry must not re-run them)")
	}

	s.clusters[0].SetPanicHook(nil)
	warm, err := pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatalf("exec after panic: %v", err)
	}
	if warm.Count() != cold.Count() {
		t.Fatalf("post-panic count = %d, pre-panic = %d", warm.Count(), cold.Count())
	}
	rep := warm.Report()
	if rep.TrieBuilds != 0 || rep.TrieCacheHits == 0 {
		t.Fatalf("store did not survive the crash: builds=%d hits=%d",
			rep.TrieBuilds, rep.TrieCacheHits)
	}
}

// TestSessionRetryTransient verifies Options.Retry: a transient transport
// fault that fires exactly once is absorbed — the execution succeeds, its
// report is marked Retried — while the same schedule without Retry
// surfaces the error.
func TestSessionRetryTransient(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	edges := randomEdges(t, rng, 400, 50)
	q := CatalogQuery("Q1")
	base := Options{Workers: 3, Samples: 60, Seed: 1}

	ref, err := Count(q, edges, base)
	if err != nil {
		t.Fatal(err)
	}
	failOnce := faultinject.Rule{From: faultinject.Any, To: faultinject.Any, Drop: 1, Times: 1}

	// Without Retry: the fault surfaces.
	s, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	withFaultTransport(t, s, 3, failOnce)
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Exec(context.Background(), CountOnly()); !errors.Is(err, ErrTransport) {
		t.Fatalf("without Retry want ErrTransport, got %v", err)
	}
	s.Close()

	// With Retry: absorbed, marked, correct.
	retryOpts := base
	retryOpts.Retry = true
	s, err = Open(retryOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	withFaultTransport(t, s, 3, failOnce)
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err = s.PrepareGraph("ADJ", q, "edges")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatalf("Retry did not absorb the transient fault: %v", err)
	}
	if !res.Report().Retried {
		t.Fatal("absorbed exec's report not marked Retried")
	}
	if res.Count() != ref.Results {
		t.Fatalf("retried exec count = %d, one-shot = %d", res.Count(), ref.Results)
	}

	// A second execution on the same session is clean and unmarked.
	res, err = pq.Exec(context.Background(), CountOnly())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report().Retried {
		t.Fatal("clean exec spuriously marked Retried")
	}
}

// TestSessionCoordinatorPanicContained verifies the Exec guard: a panic
// outside any worker body (here: a panic hook firing during the planning
// leftovers is simulated with a hook on every worker including sequential
// coordination) is converted to a typed error and the session's lock is
// released — Close and further calls proceed normally.
func TestSessionCoordinatorPanicContained(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	edges := randomEdges(t, rng, 200, 30)
	s, err := Open(Options{Workers: 2, Samples: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}

	// Worker-side panic through the full session stack: typed, contained.
	s.clusters[0].SetPanicHook(func(string, int) { panic("boom") })
	if _, err := pq.Exec(context.Background(), CountOnly()); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("want ErrWorkerPanic, got %v", err)
	}
	s.clusters[0].SetPanicHook(nil)
	if _, err := pq.Exec(context.Background(), CountOnly()); err != nil {
		t.Fatalf("session wedged after contained panic: %v", err)
	}
}

// TestResultsErrBudgetFailure verifies the Err contract on the one
// non-error degraded case: a budget-failed run produces a Results whose
// Err is non-nil while NextRun yields nothing.
func TestResultsErrBudgetFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	edges := randomEdges(t, rng, 400, 40)
	opts := Options{Workers: 2, Samples: 40, Seed: 1, Budget: 1}

	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Register("edges", edges); err != nil {
		t.Fatal(err)
	}
	pq, err := s.PrepareGraph("ADJ", CatalogQuery("Q1"), "edges")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Exec(context.Background())
	if err != nil {
		t.Fatalf("budget failures are reported as data, not as an Exec error: %v", err)
	}
	if res.Err() == nil {
		t.Fatal("budget-failed run must surface through Results.Err")
	}
	if _, _, ok := res.NextRun(); ok {
		t.Fatal("failed run must not stream partial results")
	}
}
