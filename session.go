package adj

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"adj/internal/admission"
	"adj/internal/blockcache"
	"adj/internal/cluster"
	"adj/internal/engine"
	"adj/internal/hcube"
	"adj/internal/relation"
)

// ErrSessionClosed is the stable error every operation on a closed session
// returns (Exec, Prepare, Register). errors.Is-able; Close itself stays
// idempotent and returns nil on repeat calls.
var ErrSessionClosed = errors.New("adj: session closed")

// defaultTrieStoreBytes is the session trie store's byte budget when
// Options.TrieStoreBytes is zero.
const defaultTrieStoreBytes = 256 << 20

// TrieStoreStats snapshots the session-resident block-trie store: resident
// blocks/bytes, the configured budget, and hit/miss/eviction counters.
type TrieStoreStats = blockcache.StoreStats

// Session is the server-resident execution surface: a long-lived worker
// pool answering a stream of join queries — the paper's deployment shape.
// Open creates the pool once; Register deposits relations and computes
// their content signatures; Prepare binds and plans a query once (paying
// sampling up front); Exec runs it with context cancellation and streams
// run-aware results.
//
// Underneath sits a session-resident, content-keyed block-trie store with
// an LRU byte budget: a cold execution publishes the block tries its HCube
// shuffle built, and every later execution over unchanged relation content
// adopts them directly — zero shuffle traffic and zero shuffle-side trie
// builds (Report.TrieBuilds == 0 on a warm run).
//
// A Session is safe for concurrent use and executes concurrently: it owns
// a small pool of resident clusters (Options.Concurrency), and Exec calls
// from many goroutines each borrow one exclusively for the duration of
// their run. Every execution passes the session's admission controller
// first — a priority queue (interactive before bulk) with a bounded
// concurrency limiter, per-tenant budgets and load-shed watermarks — so
// under overload requests fail fast with a typed ErrOverloaded (bulk
// first) instead of queueing without bound. The trie store is shared by
// the whole pool, and by every session of a Server (OpenShared), so
// tenants warm each other's tries.
type Session struct {
	mu       sync.Mutex
	opts     Options
	pool     chan *cluster.Cluster // buffered; cap == len(clusters)
	clusters []*cluster.Cluster
	done     chan struct{} // closed by Close; unblocks pool waiters
	ctrl     *admission.Controller
	store    *blockcache.Store
	srv      *Server // non-nil when opened through a Server
	rels     map[string]*registeredRel
	epochs   uint64
	closed   bool
}

type registeredRel struct {
	rel   *Relation
	sig   uint64
	epoch uint64
}

// Open creates a session: a resident pool of simulated clusters (each of
// opts.Workers workers), an admission controller sized to the pool, and
// the cross-query trie store. Close it when done.
func Open(opts Options) (*Session, error) {
	var store *blockcache.Store
	switch {
	case opts.TrieStoreBytes < 0:
		// reuse disabled
	case opts.TrieStoreBytes == 0:
		store = blockcache.NewStore(defaultTrieStoreBytes)
	default:
		store = blockcache.NewStore(opts.TrieStoreBytes)
	}
	acfg := opts.Admission
	if acfg.MaxConcurrent <= 0 {
		acfg.MaxConcurrent = opts.Concurrency // <= 0 defaults inside the controller
	}
	return newSession(opts, store, admission.NewController(acfg), nil), nil
}

// newSession wires the common state behind Open and Server.OpenShared:
// the cluster pool (Options.Concurrency clusters, defaulting to the
// controller's concurrency limit so every admitted request finds a free
// cluster), plus the given store and admission controller.
func newSession(opts Options, store *blockcache.Store, ctrl *admission.Controller, srv *Server) *Session {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Samples <= 0 {
		opts.Samples = 1000
	}
	size := opts.Concurrency
	if size <= 0 {
		size = ctrl.MaxConcurrent()
	}
	s := &Session{
		opts:     opts,
		pool:     make(chan *cluster.Cluster, size),
		clusters: make([]*cluster.Cluster, size),
		done:     make(chan struct{}),
		ctrl:     ctrl,
		store:    store,
		srv:      srv,
		rels:     make(map[string]*registeredRel),
	}
	for i := range s.clusters {
		s.clusters[i] = cluster.New(cluster.Config{N: opts.Workers})
		s.pool <- s.clusters[i]
	}
	return s
}

// Close shuts the session down: it marks the session closed (all further
// Exec/Prepare/Register calls return ErrSessionClosed, and executions
// queued in admission unblock with it), waits for in-flight executions to
// hand their clusters back, and releases every cluster. Close is
// idempotent — repeat calls return nil without re-running teardown.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()
	// Collect every pool cluster. In-flight executions return theirs when
	// they finish; waiters that lost the race see s.done and bail without
	// taking one, so exactly len(s.clusters) sends remain.
	var err error
	for range s.clusters {
		c := <-s.pool
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if s.srv != nil {
		s.srv.forget(s)
	}
	return err
}

// Register deposits a relation under name and computes its content
// signature — the key under which the session store caches the relation's
// block tries. Re-registering a name replaces the relation; changed content
// fingerprints differently, so the next execution over it runs cold (the
// stale tries age out of the LRU). The relation is retained by reference
// and must not be mutated while registered.
func (s *Session) Register(name string, rel *Relation) error {
	if rel == nil {
		return fmt.Errorf("adj: Register %q: nil relation", name)
	}
	if name == "" {
		return fmt.Errorf("adj: Register: empty relation name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.epochs++
	reg := &registeredRel{rel: rel, epoch: s.epochs}
	if s.store != nil {
		// The fingerprint only keys the trie store; with reuse disabled
		// (one-shot shims, TrieStoreBytes < 0) the O(values) hash pass is
		// skipped entirely.
		reg.sig = relation.Fingerprint(rel)
	}
	s.rels[name] = reg
	return nil
}

// RegisterDatabase registers every relation of db.
func (s *Session) RegisterDatabase(db Database) error {
	for name, r := range db {
		if err := s.Register(name, r); err != nil {
			return err
		}
	}
	return nil
}

// Registered reports whether name is registered.
func (s *Session) Registered(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.rels[name]
	return ok
}

// TrieStoreStats snapshots the session trie store (zero stats when reuse
// is disabled).
func (s *Session) TrieStoreStats() TrieStoreStats { return s.store.Stats() }

// Prepare binds q's atoms against the registered relations and computes the
// engine's planning artifact (sampling-based cardinality estimation, plan
// selection and the lowered physical program) exactly once. The returned
// PreparedQuery can be executed any number of times; executions rebind
// against the session's current registrations. The cached plan is keyed by
// the planning inputs — the engine, the query shape and every bound
// relation's content signature — so a warm execution routes straight to the
// interpreter with zero sampling or planning cost, while an execution over
// re-registered relations with changed content replans automatically (the
// replanning time shows up in that report's Optimization).
func (s *Session) Prepare(engineName string, q Query) (*PreparedQuery, error) {
	return s.prepare(engineName, q, "")
}

// PrepareGraph prepares a subgraph query with every atom bound to the
// registered binary relation edgesName — the paper's benchmark setup.
func (s *Session) PrepareGraph(engineName string, q Query, edgesName string) (*PreparedQuery, error) {
	return s.prepare(engineName, q, edgesName)
}

func (s *Session) prepare(engineName string, q Query, graphRel string) (*PreparedQuery, error) {
	run, err := resolveEngine(engineName)
	if err != nil {
		return nil, err
	}
	p := &PreparedQuery{s: s, engineName: engineName, run: run, q: q, graphRel: graphRel}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	rels, _, err := s.bindLocked(p)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Prepare(engineName, q, rels, s.opts.toConfig())
	if err != nil {
		return nil, err
	}
	p.plan = plan
	p.planKey = s.planKeyLocked(p)
	return p, nil
}

// planKeyLocked fingerprints a prepared query's planning inputs: the
// engine, the query shape, and the content signature of every bound
// relation (its registration epoch when content hashing is off, i.e. the
// trie store is disabled). Two equal keys mean the cached plan was
// computed from identical inputs and can be executed as-is. Caller holds
// s.mu.
func (s *Session) planKeyLocked(p *PreparedQuery) uint64 {
	h := relation.NewHash64()
	h.Bytes(p.engineName)
	h.Bytes(p.q.Name)
	for _, a := range p.q.Atoms {
		h.Bytes(a.Name)
		for _, at := range a.Attrs {
			h.Bytes(at)
		}
		name := a.Name
		if p.graphRel != "" {
			name = p.graphRel
		}
		if reg, ok := s.rels[name]; ok {
			if s.store != nil {
				h.Word(reg.sig)
			} else {
				h.Word(reg.epoch)
			}
		}
	}
	return h.Sum()
}

// bindLocked binds p's query atoms against the current registrations and
// returns the bound relations plus the atom-name → content-signature map
// the shuffle reuse layer keys on. Caller holds s.mu.
func (s *Session) bindLocked(p *PreparedQuery) ([]*Relation, map[string]uint64, error) {
	sigs := make(map[string]uint64, len(p.q.Atoms))
	if p.graphRel != "" {
		reg, ok := s.rels[p.graphRel]
		if !ok {
			return nil, nil, fmt.Errorf("adj: query %s: relation %q not registered", p.q.Name, p.graphRel)
		}
		if reg.rel.Arity() != 2 {
			return nil, nil, fmt.Errorf("adj: PrepareGraph %q: relation %q is not binary", p.q.Name, p.graphRel)
		}
		rels := p.q.BindGraph(reg.rel)
		for _, a := range p.q.Atoms {
			sigs[a.Name] = reg.sig
		}
		return rels, sigs, nil
	}
	db := make(Database, len(s.rels))
	for name, reg := range s.rels {
		db[name] = reg.rel
	}
	rels, err := p.q.Bind(db)
	if err != nil {
		return nil, nil, err
	}
	for _, a := range p.q.Atoms {
		sigs[a.Name] = s.rels[a.Name].sig
	}
	return rels, sigs, nil
}

// PreparedQuery is a query bound to a session with its planning done: the
// chosen plan (and the sampled cardinalities behind it) is cached, so Exec
// skips the optimization phase entirely.
type PreparedQuery struct {
	s          *Session
	engineName string
	run        engine.RunFunc
	q          Query
	graphRel   string
	plan       *engine.PreparedPlan
	planKey    uint64
}

// Engine returns the engine name the query was prepared for.
func (p *PreparedQuery) Engine() string { return p.engineName }

// Plan renders the cached plan.
func (p *PreparedQuery) Plan() string {
	if p.plan.Opt != nil {
		return p.plan.Opt.String()
	}
	return fmt.Sprintf("%v%v", p.plan.Order, p.plan.JoinOrder)
}

// PlanSeconds is the measured planning time Prepare paid — what a one-shot
// run charges to its Optimization phase.
func (p *PreparedQuery) PlanSeconds() float64 { return p.plan.Seconds }

// Explain renders the prepared physical plan — the operator DAG Exec will
// interpret — as an indented tree with per-op strategy and cost
// annotations.
func (p *PreparedQuery) Explain() string {
	if p.plan.Program != nil {
		return p.plan.Program.Tree()
	}
	return p.Plan()
}

// ExecOption tunes one execution.
type ExecOption func(*execOpts)

type execOpts struct {
	countOnly bool
	class     Class
	tenant    string
}

// CountOnly skips result materialization: the Results carry only the count
// and report (NextRun yields nothing). Counting runs are faster — the leaf
// intersections are tallied without emitting values.
func CountOnly() ExecOption {
	return func(o *execOpts) { o.countOnly = true }
}

// WithClass sets the execution's admission class (default Interactive).
// Bulk executions are granted after interactive ones and are shed first
// under overload.
func WithClass(c Class) ExecOption {
	return func(o *execOpts) { o.class = c }
}

// WithTenant charges the execution's shuffle bytes and modeled CPU to the
// named tenant's decaying budget account; a tenant over budget is refused
// with ErrOverloaded until the account decays. Unset executions are
// unaccounted.
func WithTenant(tenant string) ExecOption {
	return func(o *execOpts) { o.tenant = tenant }
}

// Exec runs the prepared query on one of the session's resident clusters
// and returns a streaming, run-aware Results iterator. Exec is safe — and
// genuinely parallel — from many goroutines: each call passes admission
// (priority queue, concurrency limit, tenant budgets; see WithClass /
// WithTenant), borrows a pool cluster exclusively, and hands it back
// whatever happens. Under overload the call fails fast with a typed
// ErrOverloaded (bulk classes first) carrying a retry-after hint; a
// request whose ctx deadline cannot be met by the estimated queue wait is
// rejected immediately with context.DeadlineExceeded. ctx cancellation
// and deadline expiry are observed promptly at every stage — the
// admission queue, the pool checkout, phase barriers, the cube scheduler
// and the Leapfrog inner loops — with no goroutines leaked; the returned
// error is then ctx.Err().
//
// Executions over unchanged registered relations go warm: the shuffle is
// skipped and every block trie is adopted from the shared store
// (Report.TrieBuilds == 0, Report.TrieCacheHits > 0). A shed, expired or
// failed execution leaves the pool fully healthy and the warm store
// intact.
func (p *PreparedQuery) Exec(ctx context.Context, opts ...ExecOption) (*Results, error) {
	eo := execOpts{class: Interactive}
	for _, o := range opts {
		o(&eo)
	}
	if ctx == nil {
		//adjlint:ignore ctxflow nil-ctx compat guard: callers without a context get an uncancellable run
		ctx = context.Background()
	}
	s := p.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	ctrl := s.ctrl
	s.mu.Unlock()

	// Admission: block for a slot (interactive ahead of bulk), or fail
	// typed — ErrOverloaded on shed, ctx.Err() on cancellation/expiry
	// while queued, DeadlineExceeded immediately when the deadline is
	// infeasible. No pool state is touched until a ticket is granted.
	ticket, err := ctrl.Admit(ctx, admission.Request{Class: eo.class, Tenant: eo.tenant})
	if err != nil {
		return nil, err
	}

	// Borrow a resident cluster. The admission limit normally matches the
	// pool size, so this is immediate; if the caller configured them apart
	// the wait stays ctx- and Close-aware.
	var clus *cluster.Cluster
	select {
	case clus = <-s.pool:
	case <-ctx.Done():
		ticket.Release(admission.Usage{})
		return nil, ctx.Err()
	case <-s.done:
		ticket.Release(admission.Usage{})
		return nil, ErrSessionClosed
	}
	var usage admission.Usage
	defer func() {
		// Exactly-once hand-back: the cluster to the pool (Close's drain
		// counts on it) and the slot to the controller, charged with what
		// the run consumed (zero on failure).
		s.pool <- clus
		ticket.Release(usage)
	}()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrSessionClosed
	}
	rels, sigs, err := s.bindLocked(p)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}

	// Plan-cache validation: the cached plan is keyed by the planning
	// inputs' content, so a warm hit routes straight to the interpreter —
	// zero sampling, zero planning. A key mismatch (a relation was
	// re-registered with different content) replans here and charges the
	// replanning time to this execution's Optimization phase. Replanning
	// holds s.mu, so concurrent executions of the same prepared query
	// replan once and the rest adopt the refreshed plan.
	var replanSeconds float64
	if key := s.planKeyLocked(p); key != p.planKey {
		pl, err := engine.Prepare(p.engineName, p.q, rels, s.opts.toConfig())
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		p.plan, p.planKey = pl, key
		replanSeconds = pl.Seconds
	}
	plan := p.plan
	store := s.store
	sessOpts := s.opts
	s.mu.Unlock()

	cfg := sessOpts.toConfig()
	cfg.CollectOutput = !eo.countOnly
	cfg.Ctx = ctx
	cfg.Cluster = clus
	cfg.Prepared = plan
	if store != nil {
		cfg.Reuse = &hcube.Reuse{Store: store, Sigs: sigs}
	}

	// Fail-safe execution: any failure — a typed transport error, a
	// recovered worker panic, a cancellation, even a coordinator-side panic
	// caught by the guard — leaves the borrowed cluster fully usable for
	// the pool's next execution. The engine's release hook already drains
	// per-run worker state; the extra ResetRun here covers panics that
	// unwound past it. The shared trie store is untouched either way, so a
	// warm data set stays warm across a failed execution.
	rep, err := runGuarded(p.run, p.q, rels, cfg)
	if err != nil {
		clus.ResetRun()
		if sessOpts.Retry && cluster.IsTransient(err) && ctx.Err() == nil {
			// Transient transport failure and the caller opted in: re-run
			// once on the reset workers. The re-run's report is marked so
			// callers can count degraded executions.
			rep, err = runGuarded(p.run, p.q, rels, cfg)
			if err == nil {
				rep.Retried = true
			} else {
				clus.ResetRun()
			}
		}
		if err != nil {
			return nil, err
		}
	}
	rep.Optimization += replanSeconds
	rep.QueueSeconds = ticket.QueueSeconds()
	rep.AdmissionClass = ticket.Class().String()
	usage = admission.Usage{
		Bytes:      rep.BytesShuffled,
		CPUSeconds: rep.Computation + rep.PreComputing,
	}
	return newResults(rep), nil
}

// AdmissionStats snapshots the session's admission controller: queue
// depth, in-flight executions, admitted/shed/rejected counters, latency
// EWMAs and per-tenant budget consumption. Sessions of a Server share one
// controller; its server-wide view is Server.Stats.
func (s *Session) AdmissionStats() AdmissionStats { return s.ctrl.Stats() }

// runGuarded executes an engine run with coordinator-side panic
// containment: worker-body panics are already recovered by the cluster
// runtime, and this guard converts a panic anywhere else in the engine
// (planning leftovers, shuffle coordination, report assembly) into the
// same typed error class, so a session never crashes the process and
// never wedges its lock.
func runGuarded(run engine.RunFunc, q Query, rels []*Relation, cfg engine.Config) (rep engine.Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &cluster.WorkerPanicError{
				WorkerID: -1, // coordinator, not a worker
				Phase:    "coordinator",
				Value:    r,
				Stack:    debug.Stack(),
			}
		}
	}()
	return run(q, rels, cfg)
}

// execOneShot backs the package-level Run/RunGraph shims: execute on the
// temporary session with the caller's CollectOutput semantics and fold the
// planning time back into the report's Optimization phase, reproducing the
// one-shot cost accounting.
func (p *PreparedQuery) execOneShot(opts Options) (Report, error) {
	var eo []ExecOption
	if !opts.CollectOutput {
		eo = append(eo, CountOnly())
	}
	//adjlint:ignore ctxflow one-shot compat shim: the legacy Run surface has no context to thread
	res, err := p.Exec(context.Background(), eo...)
	if err != nil {
		return Report{}, err
	}
	rep := res.Report()
	rep.Optimization += p.plan.Seconds
	return rep, nil
}
