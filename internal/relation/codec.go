package relation

import (
	"encoding/binary"
	"fmt"
)

// Binary wire codec for relations: the payload format of tuple blocks in
// the cluster transport. Layout (little-endian):
//
//	u32 name length, name bytes
//	u32 arity; per attr: u32 len, bytes
//	u64 tuple count
//	values row-major as u64

// Encode serializes r.
func Encode(r *Relation) []byte {
	size := 4 + len(r.Name) + 4 + 8 + 8*len(r.data)
	for _, a := range r.Attrs {
		size += 4 + len(a)
	}
	buf := make([]byte, 0, size)
	var b4 [4]byte
	var b8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b4[:], v)
		buf = append(buf, b4[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf = append(buf, b8[:]...)
	}
	put32(uint32(len(r.Name)))
	buf = append(buf, r.Name...)
	put32(uint32(len(r.Attrs)))
	for _, a := range r.Attrs {
		put32(uint32(len(a)))
		buf = append(buf, a...)
	}
	put64(uint64(r.Len()))
	for _, v := range r.data {
		put64(uint64(v))
	}
	return buf
}

// Decode deserializes a relation encoded by Encode.
func Decode(buf []byte) (*Relation, error) {
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("relation decode: truncated at %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := get32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(buf) {
			return "", fmt.Errorf("relation decode: truncated string at %d", off)
		}
		s := string(buf[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	name, err := getStr()
	if err != nil {
		return nil, err
	}
	arity, err := get32()
	if err != nil {
		return nil, err
	}
	if arity > 64 {
		return nil, fmt.Errorf("relation decode: implausible arity %d", arity)
	}
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i], err = getStr()
		if err != nil {
			return nil, err
		}
	}
	if off+8 > len(buf) {
		return nil, fmt.Errorf("relation decode: truncated count at %d", off)
	}
	count := binary.LittleEndian.Uint64(buf[off:])
	off += 8
	total := int(count) * int(arity)
	if off+8*total > len(buf) {
		return nil, fmt.Errorf("relation decode: truncated data: need %d values", total)
	}
	data := make([]Value, total)
	for i := range data {
		data[i] = Value(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	if off != len(buf) {
		return nil, fmt.Errorf("relation decode: %d trailing bytes", len(buf)-off)
	}
	r := &Relation{Name: name, Attrs: attrs, data: data}
	return r, nil
}
