package relation

import (
	"encoding/binary"
	"fmt"
	"sync"

	"adj/internal/deltaenc"
)

// Binary wire codec for relations: the payload format of tuple blocks in
// the cluster transport.
//
// The batched format encodes each column as one run of zigzag deltas
// against the previous tuple, stored at a byte width chosen per column
// (0, 1, 2, 4 or 8 bytes — width 0 means every delta is zero), or in
// deltaenc's exception-list form when a few outlier deltas would
// otherwise force the whole column wide. A sorted run of graph-id tuples
// costs one or two bytes per value instead of eight, and the fixed-width
// inner loops carry no per-byte branches, so both encode and decode run
// at memcpy-like speed. Senders sort blocks before encoding (receivers
// re-sort into tries anyway), which is where the "sorted tuple runs" win
// comes from; unsorted input still round-trips correctly, just less
// compactly.
//
// Layout:
//
//	u8 magic 0xAD
//	uvarint name length, name bytes
//	uvarint arity; per attr: uvarint len, bytes
//	uvarint tuple count n
//	per column: one deltaenc run of n values (fixed-width or exception form)
//
// The legacy fixed-width row-major format (EncodeRaw/DecodeRaw) is kept as
// the pre-batching benchmark baseline. Package trie applies the same
// delta-run scheme to its flat level arrays (trie/codec.go).

// codecMagic tags the batched delta format.
const codecMagic = 0xAD

// colScratch pools the gather buffer the row-major encode path stages each
// column in before handing it to the shared run encoder. Keeping both
// layouts on deltaenc.AppendRun guarantees byte-identical wire output —
// width selection (including the exception-list form) cannot drift between
// them.
var colScratch = sync.Pool{New: func() interface{} {
	s := make([]Value, 0, 1024)
	return &s
}}

// AppendEncode serializes r onto dst (which may be nil or a recycled
// buffer) and returns the extended slice. This is the allocation-free path:
// callers that pool their buffers pay nothing beyond the payload itself.
//
// A columnar-resident relation encodes each column as one contiguous
// deltaenc run — a pure sequential scan with no gather loop; row-major
// input uses the strided column loops below. Both produce byte-identical
// payloads (the per-run format is shared with deltaenc.AppendRun).
func AppendEncode(dst []byte, r *Relation) []byte {
	return AppendEncodeRange(dst, r, 0, r.Len())
}

// AppendEncodeRange serializes the row range [lo, hi) of r onto dst as a
// complete, standalone relation encoding: the chunk carries the full
// schema header and its delta runs restart at the range boundary, so every
// chunk decodes independently through DecodeInto/DecodeAppend. This is the
// streaming transport's chunked encode: a block cut into row ranges
// ships as it is encoded instead of materializing one monolithic payload.
// AppendEncodeRange(dst, r, 0, r.Len()) is byte-identical to AppendEncode.
func AppendEncodeRange(dst []byte, r *Relation, lo, hi int) []byte {
	if lo < 0 {
		lo = 0
	}
	if max := r.Len(); hi > max {
		hi = max
	}
	dst = append(dst, codecMagic)
	dst = binary.AppendUvarint(dst, uint64(len(r.Name)))
	dst = append(dst, r.Name...)
	k := len(r.Attrs)
	dst = binary.AppendUvarint(dst, uint64(k))
	for _, a := range r.Attrs {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	n := hi - lo
	if n < 0 {
		n = 0
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	if n == 0 || k == 0 {
		return dst
	}
	if cs := r.colsView(); cs != nil {
		for _, col := range cs {
			dst = deltaenc.AppendRun(dst, col[lo:hi])
		}
		return dst
	}
	// Row-major input: gather each column's range into pooled scratch and
	// encode it through the same run encoder the columnar path uses, so
	// both layouts produce byte-identical payloads.
	sp := colScratch.Get().(*[]Value)
	col := *sp
	if cap(col) < n {
		col = make([]Value, n)
	} else {
		col = col[:n]
	}
	data := r.data
	for j := 0; j < k; j++ {
		for i, o := lo*k+j, 0; o < n; i, o = i+k, o+1 {
			col[o] = data[i]
		}
		dst = deltaenc.AppendRun(dst, col)
	}
	*sp = col[:0]
	colScratch.Put(sp)
	return dst
}

// Encode serializes r into a fresh buffer.
func Encode(r *Relation) []byte {
	// Capacity guess: headers plus ~3 bytes per value for sorted id runs;
	// a pathological run grows once.
	hint := 16 + len(r.Name) + r.Len()*r.Arity()*3
	for _, a := range r.Attrs {
		hint += 8 + len(a)
	}
	return AppendEncode(make([]byte, 0, hint), r)
}

// Decode deserializes a relation encoded by Encode/AppendEncode.
func Decode(buf []byte) (*Relation, error) {
	var r Relation
	if err := DecodeInto(buf, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeInto deserializes into r, reusing r's backing arrays (when their
// capacity suffices) and r's schema strings (when they match the payload).
// Receivers that decode a stream of blocks into one scratch relation
// allocate nothing in steady state. r must be owned by the caller — its
// arrays are overwritten, so never pass a relation whose data or Attrs are
// shared (e.g. via Renamed).
//
// The decoded relation is columnar-resident: each wire column is one
// contiguous delta run, so decode writes every column with a single
// sequential pass and downstream consumers (trie builds, cube appends)
// pick up the columnar fast paths. Row-major views materialize lazily via
// Data/Tuple.
func DecodeInto(buf []byte, r *Relation) error {
	if len(buf) == 0 || buf[0] != codecMagic {
		return fmt.Errorf("relation decode: bad magic (want 0x%02x)", codecMagic)
	}
	off := 1
	getUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(buf[off:])
		if w <= 0 {
			return 0, fmt.Errorf("relation decode: truncated varint at %d", off)
		}
		off += w
		return v, nil
	}
	// Read name/attr bytes without allocating when they match r's current
	// schema — the steady state for a consumer decoding a stream of blocks
	// of the same relation ("string(b) == s" compares without copying).
	getStringBytes := func() ([]byte, error) {
		n, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)-off) < n {
			return nil, fmt.Errorf("relation decode: truncated string at %d", off)
		}
		b := buf[off : off+int(n)]
		off += int(n)
		return b, nil
	}
	nameBytes, err := getStringBytes()
	if err != nil {
		return err
	}
	name := r.Name
	if string(nameBytes) != name {
		name = string(nameBytes)
	}
	arity, err := getUvarint()
	if err != nil {
		return err
	}
	if arity > 64 {
		return fmt.Errorf("relation decode: implausible arity %d", arity)
	}
	attrs := r.Attrs
	if len(attrs) != int(arity) {
		attrs = make([]string, arity)
	}
	for i := range attrs {
		ab, err := getStringBytes()
		if err != nil {
			return err
		}
		if string(ab) != attrs[i] {
			attrs[i] = string(ab)
		}
	}
	count, err := getUvarint()
	if err != nil {
		return err
	}
	k := int(arity)
	n := int(count)
	total := n * k
	// Guard the allocation below against corrupt or hostile counts (the
	// payload may arrive over the real TCP transport): every column
	// section must be present in the buffer before n*k values are
	// materialized, and the total is capped outright — width-0 columns
	// occupy no payload bytes, so byte accounting alone cannot bound a
	// zero-compressed bomb.
	if n < 0 || total < 0 || total > 1<<28 {
		return fmt.Errorf("relation decode: implausible tuple count %d", count)
	}
	walk := off
	for j := 0; j < k && n > 0; j++ {
		size, err := deltaenc.RunSize(buf[walk:], n)
		if err != nil {
			return fmt.Errorf("relation decode: column %d: %w", j, err)
		}
		walk += size
	}
	cols := r.cols
	if cap(cols) >= k {
		cols = cols[:k]
	} else {
		cols = make([][]Value, k)
	}
	for j := 0; j < k; j++ {
		if cap(cols[j]) >= n {
			cols[j] = cols[j][:n]
		} else {
			cols[j] = make([]Value, n)
		}
	}
	for j := 0; j < k && n > 0; j++ {
		used, err := deltaenc.DecodeRun(buf[off:], cols[j])
		if err != nil {
			return fmt.Errorf("relation decode: column %d: %w", j, err)
		}
		off += used
	}
	if off != len(buf) {
		return fmt.Errorf("relation decode: %d trailing bytes", len(buf)-off)
	}
	r.Name = name
	r.Attrs = attrs
	r.cols = cols
	if k > 0 {
		r.lay = layoutCols
	} else {
		r.data = r.data[:0]
		r.lay = layoutRows
	}
	return nil
}

// DecodeAppend decodes one chunk payload through scratch (caller-owned,
// reused across chunks — the steady state allocates nothing) and appends
// its tuples to dst via the columnar appender. This is the streaming
// receiver's incremental decode: chunks of one logical block accumulate
// into dst in arrival order without materializing the whole block's bytes
// first. The chunk's schema must match dst's (same arity; dst adopts the
// chunk's schema when empty, as AppendAll does).
func DecodeAppend(buf []byte, dst, scratch *Relation) error {
	if err := DecodeInto(buf, scratch); err != nil {
		return err
	}
	dst.AppendAll(scratch)
	return nil
}

// EncodeRaw serializes r in the legacy fixed-width layout (u32 lengths,
// u64 row-major values). Kept as the pre-batching baseline for the codec
// benchmarks; the engines ship the delta-varint format.
func EncodeRaw(r *Relation) []byte {
	size := 4 + len(r.Name) + 4 + 8 + 8*len(r.data)
	for _, a := range r.Attrs {
		size += 4 + len(a)
	}
	buf := make([]byte, 0, size)
	var b4 [4]byte
	var b8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b4[:], v)
		buf = append(buf, b4[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf = append(buf, b8[:]...)
	}
	put32(uint32(len(r.Name)))
	buf = append(buf, r.Name...)
	put32(uint32(len(r.Attrs)))
	for _, a := range r.Attrs {
		put32(uint32(len(a)))
		buf = append(buf, a...)
	}
	put64(uint64(r.Len()))
	for _, v := range r.data {
		put64(uint64(v))
	}
	return buf
}

// DecodeRaw deserializes a relation encoded by EncodeRaw.
func DecodeRaw(buf []byte) (*Relation, error) {
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("relation decode: truncated at %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := get32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(buf) {
			return "", fmt.Errorf("relation decode: truncated string at %d", off)
		}
		s := string(buf[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	name, err := getStr()
	if err != nil {
		return nil, err
	}
	arity, err := get32()
	if err != nil {
		return nil, err
	}
	if arity > 64 {
		return nil, fmt.Errorf("relation decode: implausible arity %d", arity)
	}
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i], err = getStr()
		if err != nil {
			return nil, err
		}
	}
	if off+8 > len(buf) {
		return nil, fmt.Errorf("relation decode: truncated count at %d", off)
	}
	count := binary.LittleEndian.Uint64(buf[off:])
	off += 8
	total := int(count) * int(arity)
	if off+8*total > len(buf) {
		return nil, fmt.Errorf("relation decode: truncated data: need %d values", total)
	}
	data := make([]Value, total)
	for i := range data {
		data[i] = Value(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	if off != len(buf) {
		return nil, fmt.Errorf("relation decode: %d trailing bytes", len(buf)-off)
	}
	r := &Relation{Name: name, Attrs: attrs, data: data}
	return r, nil
}
