package relation

import (
	"encoding/binary"
	"fmt"

	"adj/internal/deltaenc"
)

// Binary wire codec for relations: the payload format of tuple blocks in
// the cluster transport.
//
// The batched format encodes each column as one run of zigzag deltas
// against the previous tuple, stored at a fixed byte width chosen per
// column (0, 1, 2, 4 or 8 bytes — width 0 means every delta is zero). A
// sorted run of graph-id tuples costs one or two bytes per value instead
// of eight, and the fixed-width inner loops carry no per-byte branches, so
// both encode and decode run at memcpy-like speed. Senders sort blocks
// before encoding (receivers re-sort into tries anyway), which is where
// the "sorted tuple runs" win comes from; unsorted input still
// round-trips correctly, just less compactly.
//
// Layout:
//
//	u8 magic 0xAD
//	uvarint name length, name bytes
//	uvarint arity; per attr: uvarint len, bytes
//	uvarint tuple count n
//	per column: u8 width, then n fixed-width little-endian zigzag deltas
//
// The legacy fixed-width row-major format (EncodeRaw/DecodeRaw) is kept as
// the pre-batching benchmark baseline. Package trie applies the same
// fixed-width delta scheme to its flat level arrays (trie/codec.go); the
// column loops here stay specialized because they stride row-major data.

// codecMagic tags the batched delta format.
const codecMagic = 0xAD

// zigzag/unzigzag/extend alias the shared wire primitives so the two
// payload formats cannot drift.
func zigzag(d Value) uint64 { return deltaenc.Zigzag(d) }

func unzigzag(z uint64) Value { return deltaenc.Unzigzag(z) }

func extend(dst []byte, n int) []byte { return deltaenc.Extend(dst, n) }

// AppendEncode serializes r onto dst (which may be nil or a recycled
// buffer) and returns the extended slice. This is the allocation-free path:
// callers that pool their buffers pay nothing beyond the payload itself.
//
// A columnar-resident relation encodes each column as one contiguous
// deltaenc run — a pure sequential scan with no gather loop; row-major
// input uses the strided column loops below. Both produce byte-identical
// payloads (the per-run format is shared with deltaenc.AppendRun).
func AppendEncode(dst []byte, r *Relation) []byte {
	dst = append(dst, codecMagic)
	dst = binary.AppendUvarint(dst, uint64(len(r.Name)))
	dst = append(dst, r.Name...)
	k := len(r.Attrs)
	dst = binary.AppendUvarint(dst, uint64(k))
	for _, a := range r.Attrs {
		dst = binary.AppendUvarint(dst, uint64(len(a)))
		dst = append(dst, a...)
	}
	n := r.Len()
	dst = binary.AppendUvarint(dst, uint64(n))
	if n == 0 || k == 0 {
		return dst
	}
	if cs := r.colsView(); cs != nil {
		for _, col := range cs {
			dst = deltaenc.AppendRun(dst, col)
		}
		return dst
	}
	data := r.data
	for j := 0; j < k; j++ {
		// Pass 1: the widest zigzag delta decides the column's byte width.
		var maxZ uint64
		prev := Value(0)
		for i := j; i < len(data); i += k {
			v := data[i]
			if z := zigzag(v - prev); z > maxZ {
				maxZ = z
			}
			prev = v
		}
		w := deltaenc.WidthFor(maxZ)
		dst = append(dst, byte(w))
		if w == 0 {
			continue
		}
		off := len(dst)
		dst = extend(dst, n*w)
		out := dst[off:]
		prev = 0
		switch w {
		case 1:
			for i, o := j, 0; i < len(data); i, o = i+k, o+1 {
				v := data[i]
				out[o] = byte(zigzag(v - prev))
				prev = v
			}
		case 2:
			for i, o := j, 0; i < len(data); i, o = i+k, o+2 {
				v := data[i]
				binary.LittleEndian.PutUint16(out[o:], uint16(zigzag(v-prev)))
				prev = v
			}
		case 4:
			for i, o := j, 0; i < len(data); i, o = i+k, o+4 {
				v := data[i]
				binary.LittleEndian.PutUint32(out[o:], uint32(zigzag(v-prev)))
				prev = v
			}
		default:
			for i, o := j, 0; i < len(data); i, o = i+k, o+8 {
				v := data[i]
				binary.LittleEndian.PutUint64(out[o:], zigzag(v-prev))
				prev = v
			}
		}
	}
	return dst
}

// Encode serializes r into a fresh buffer.
func Encode(r *Relation) []byte {
	// Capacity guess: headers plus ~3 bytes per value for sorted id runs;
	// a pathological run grows once.
	hint := 16 + len(r.Name) + r.Len()*r.Arity()*3
	for _, a := range r.Attrs {
		hint += 8 + len(a)
	}
	return AppendEncode(make([]byte, 0, hint), r)
}

// Decode deserializes a relation encoded by Encode/AppendEncode.
func Decode(buf []byte) (*Relation, error) {
	var r Relation
	if err := DecodeInto(buf, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// DecodeInto deserializes into r, reusing r's backing arrays (when their
// capacity suffices) and r's schema strings (when they match the payload).
// Receivers that decode a stream of blocks into one scratch relation
// allocate nothing in steady state. r must be owned by the caller — its
// arrays are overwritten, so never pass a relation whose data or Attrs are
// shared (e.g. via Renamed).
//
// The decoded relation is columnar-resident: each wire column is one
// contiguous delta run, so decode writes every column with a single
// sequential pass and downstream consumers (trie builds, cube appends)
// pick up the columnar fast paths. Row-major views materialize lazily via
// Data/Tuple.
func DecodeInto(buf []byte, r *Relation) error {
	if len(buf) == 0 || buf[0] != codecMagic {
		return fmt.Errorf("relation decode: bad magic (want 0x%02x)", codecMagic)
	}
	off := 1
	getUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(buf[off:])
		if w <= 0 {
			return 0, fmt.Errorf("relation decode: truncated varint at %d", off)
		}
		off += w
		return v, nil
	}
	// Read name/attr bytes without allocating when they match r's current
	// schema — the steady state for a consumer decoding a stream of blocks
	// of the same relation ("string(b) == s" compares without copying).
	getStringBytes := func() ([]byte, error) {
		n, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(buf)-off) < n {
			return nil, fmt.Errorf("relation decode: truncated string at %d", off)
		}
		b := buf[off : off+int(n)]
		off += int(n)
		return b, nil
	}
	nameBytes, err := getStringBytes()
	if err != nil {
		return err
	}
	name := r.Name
	if string(nameBytes) != name {
		name = string(nameBytes)
	}
	arity, err := getUvarint()
	if err != nil {
		return err
	}
	if arity > 64 {
		return fmt.Errorf("relation decode: implausible arity %d", arity)
	}
	attrs := r.Attrs
	if len(attrs) != int(arity) {
		attrs = make([]string, arity)
	}
	for i := range attrs {
		ab, err := getStringBytes()
		if err != nil {
			return err
		}
		if string(ab) != attrs[i] {
			attrs[i] = string(ab)
		}
	}
	count, err := getUvarint()
	if err != nil {
		return err
	}
	k := int(arity)
	n := int(count)
	total := n * k
	// Guard the allocation below against corrupt or hostile counts (the
	// payload may arrive over the real TCP transport): every column
	// section must be present in the buffer before n*k values are
	// materialized, and the total is capped outright — width-0 columns
	// occupy no payload bytes, so byte accounting alone cannot bound a
	// zero-compressed bomb.
	if n < 0 || total < 0 || total > 1<<28 {
		return fmt.Errorf("relation decode: implausible tuple count %d", count)
	}
	walk := off
	for j := 0; j < k && n > 0; j++ {
		if walk >= len(buf) {
			return fmt.Errorf("relation decode: truncated column %d header", j)
		}
		w := int(buf[walk])
		walk++
		if !deltaenc.ValidWidth(w) {
			return fmt.Errorf("relation decode: bad column width %d", w)
		}
		if len(buf)-walk < n*w {
			return fmt.Errorf("relation decode: truncated column %d: need %d bytes", j, n*w)
		}
		walk += n * w
	}
	cols := r.cols
	if cap(cols) >= k {
		cols = cols[:k]
	} else {
		cols = make([][]Value, k)
	}
	for j := 0; j < k; j++ {
		if cap(cols[j]) >= n {
			cols[j] = cols[j][:n]
		} else {
			cols[j] = make([]Value, n)
		}
	}
	for j := 0; j < k && n > 0; j++ {
		used, err := deltaenc.DecodeRun(buf[off:], cols[j])
		if err != nil {
			return fmt.Errorf("relation decode: column %d: %w", j, err)
		}
		off += used
	}
	if off != len(buf) {
		return fmt.Errorf("relation decode: %d trailing bytes", len(buf)-off)
	}
	r.Name = name
	r.Attrs = attrs
	r.cols = cols
	if k > 0 {
		r.lay = layoutCols
	} else {
		r.data = r.data[:0]
		r.lay = layoutRows
	}
	return nil
}

// EncodeRaw serializes r in the legacy fixed-width layout (u32 lengths,
// u64 row-major values). Kept as the pre-batching baseline for the codec
// benchmarks; the engines ship the delta-varint format.
func EncodeRaw(r *Relation) []byte {
	size := 4 + len(r.Name) + 4 + 8 + 8*len(r.data)
	for _, a := range r.Attrs {
		size += 4 + len(a)
	}
	buf := make([]byte, 0, size)
	var b4 [4]byte
	var b8 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b4[:], v)
		buf = append(buf, b4[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf = append(buf, b8[:]...)
	}
	put32(uint32(len(r.Name)))
	buf = append(buf, r.Name...)
	put32(uint32(len(r.Attrs)))
	for _, a := range r.Attrs {
		put32(uint32(len(a)))
		buf = append(buf, a...)
	}
	put64(uint64(r.Len()))
	for _, v := range r.data {
		put64(uint64(v))
	}
	return buf
}

// DecodeRaw deserializes a relation encoded by EncodeRaw.
func DecodeRaw(buf []byte) (*Relation, error) {
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("relation decode: truncated at %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := get32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(buf) {
			return "", fmt.Errorf("relation decode: truncated string at %d", off)
		}
		s := string(buf[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	name, err := getStr()
	if err != nil {
		return nil, err
	}
	arity, err := get32()
	if err != nil {
		return nil, err
	}
	if arity > 64 {
		return nil, fmt.Errorf("relation decode: implausible arity %d", arity)
	}
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i], err = getStr()
		if err != nil {
			return nil, err
		}
	}
	if off+8 > len(buf) {
		return nil, fmt.Errorf("relation decode: truncated count at %d", off)
	}
	count := binary.LittleEndian.Uint64(buf[off:])
	off += 8
	total := int(count) * int(arity)
	if off+8*total > len(buf) {
		return nil, fmt.Errorf("relation decode: truncated data: need %d values", total)
	}
	data := make([]Value, total)
	for i := range data {
		data[i] = Value(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	if off != len(buf) {
		return nil, fmt.Errorf("relation decode: %d trailing bytes", len(buf)-off)
	}
	r := &Relation{Name: name, Attrs: attrs, data: data}
	return r, nil
}
