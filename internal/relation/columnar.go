package relation

import (
	"fmt"
	"sort"
)

// Columnar backing store: per-attribute value slices plus the lazy pivots
// between the row-major and column-major representations.
//
// The column-major layout turns the three hot per-column consumers into
// sequential scans: the trie builder's radix passes read one contiguous
// column per level, the shuffle codec encodes/decodes each column as one
// delta run with no gather loop, and the hash partitioner hashes a column
// scan and scatters each column once. Row-major stays the layout of choice
// for tuple-at-a-time construction (Append) and row enumeration (Tuple);
// the pivot between them is a single transpose, performed lazily and cached
// until the next mutation.

// rows returns the row-major backing, materializing it from the columnar
// store if needed. The result is a read view: the columnar store remains
// valid (layoutBoth).
func (r *Relation) rows() []Value {
	if r.lay == layoutCols {
		k := len(r.Attrs)
		n := 0
		if k > 0 {
			n = len(r.cols[0])
		}
		total := n * k
		if cap(r.data) >= total {
			r.data = r.data[:total]
		} else {
			r.data = make([]Value, total)
		}
		for j, col := range r.cols {
			d := r.data
			for i, v := range col {
				d[i*k+j] = v
			}
		}
		r.lay = layoutBoth
	}
	return r.data
}

// mutableRows is rows plus invalidation of the columnar mirror: callers are
// about to mutate the row-major store.
func (r *Relation) mutableRows() []Value {
	d := r.rows()
	r.lay = layoutRows
	return d
}

// columns returns the column-major backing, materializing it from the
// row-major store if needed. The result is a read view (layoutBoth).
func (r *Relation) columns() [][]Value {
	if r.lay == layoutRows {
		k := len(r.Attrs)
		n := r.Len()
		cs := r.cols
		if cap(cs) >= k {
			cs = cs[:k]
		} else {
			cs = make([][]Value, k)
		}
		for j := 0; j < k; j++ {
			if cap(cs[j]) >= n {
				cs[j] = cs[j][:n]
			} else {
				cs[j] = make([]Value, n)
			}
		}
		d := r.data
		for i := 0; i < n; i++ {
			row := d[i*k : (i+1)*k]
			for j, v := range row {
				cs[j][i] = v
			}
		}
		r.cols = cs
		r.lay = layoutBoth
	}
	return r.cols
}

// mutableColsEmptyOK returns the columnar backing ready for column-wise
// mutation, switching an empty relation to columnar layout without forcing
// a transpose. The caller must reassign r.cols if it appends.
func (r *Relation) mutableColsEmptyOK() [][]Value {
	k := len(r.Attrs)
	if r.lay == layoutRows && r.Len() == 0 {
		cs := r.cols
		if cap(cs) >= k {
			cs = cs[:k]
			for j := range cs {
				cs[j] = cs[j][:0]
			}
		} else {
			cs = make([][]Value, k)
		}
		r.cols = cs
		r.lay = layoutCols
		return cs
	}
	cs := r.columns()
	r.lay = layoutCols
	return cs
}

// Columns returns per-column value views (read-only by convention, like
// Data), materializing the columnar store from row-major data if needed.
// Column j holds attribute Attrs[j] for every tuple in row order.
func (r *Relation) Columns() [][]Value { return r.columns() }

// Column returns the values of column j (read-only by convention).
func (r *Relation) Column(j int) []Value { return r.columns()[j] }

// ColumnsResident reports whether the columnar representation is currently
// materialized and in sync; hot paths use it to pick the layout-native
// kernel without forcing a transpose.
func (r *Relation) ColumnsResident() bool { return r.lay != layoutRows }

// RowsResident reports whether the row-major representation is currently
// materialized and in sync.
func (r *Relation) RowsResident() bool { return r.lay != layoutCols }

// colsView returns the resident column slices, or nil when the relation is
// row-major only. Package-internal fast-path accessor: never transposes.
func (r *Relation) colsView() [][]Value {
	if r.lay == layoutRows {
		return nil
	}
	return r.cols
}

// checkColumns validates a caller-supplied column batch: one slice per
// attribute, all the same length. Shared by FromColumns, SetColumns and
// AppendColumns so the contract cannot drift between them.
func checkColumns(name string, nattrs int, cols [][]Value) {
	if len(cols) != nattrs {
		panic(fmt.Sprintf("relation %q: %d columns != %d attrs", name, len(cols), nattrs))
	}
	for j := 1; j < len(cols); j++ {
		if len(cols[j]) != len(cols[0]) {
			panic(fmt.Sprintf("relation %q: column %d length %d != column 0 length %d", name, j, len(cols[j]), len(cols[0])))
		}
	}
}

// FromColumns builds a columnar relation taking ownership of cols (one
// slice per attribute, all the same length).
func FromColumns(name string, attrs []string, cols [][]Value) *Relation {
	checkColumns(name, len(attrs), cols)
	r := &Relation{Name: name, Attrs: append([]string(nil), attrs...)}
	if len(attrs) > 0 {
		r.cols = cols
		r.lay = layoutCols
	}
	return r
}

// SetColumns replaces the backing store with the given columns (the
// columnar analogue of SetData). Takes ownership of cols.
func (r *Relation) SetColumns(cols [][]Value) {
	checkColumns(r.Name, len(r.Attrs), cols)
	if len(r.Attrs) == 0 {
		return
	}
	r.cols = cols
	r.lay = layoutCols
}

// AppendColumns appends one batch of column slices (aligned with Attrs,
// equal lengths) column-wise; the relation becomes/stays columnar.
func (r *Relation) AppendColumns(cols [][]Value) {
	checkColumns(r.Name, len(r.Attrs), cols)
	if len(r.Attrs) == 0 {
		return
	}
	dst := r.mutableColsEmptyOK()
	for j := range dst {
		dst[j] = append(dst[j], cols[j]...)
	}
	r.cols = dst
}

// PivotToColumns makes the columnar representation authoritative (the
// explicit pivot point of the dual layout), materializing it if needed, and
// returns the receiver. Subsequent row-major reads transpose lazily.
func (r *Relation) PivotToColumns() *Relation {
	if len(r.Attrs) == 0 {
		return r
	}
	r.columns()
	r.lay = layoutCols
	return r
}

// PivotToRows makes the row-major representation authoritative,
// materializing it if needed, and returns the receiver.
func (r *Relation) PivotToRows() *Relation {
	r.rows()
	r.lay = layoutRows
	return r
}

func cloneCols(cols [][]Value) [][]Value {
	out := make([][]Value, len(cols))
	for j, c := range cols {
		out[j] = append([]Value(nil), c...)
	}
	return out
}

// sortCols sorts a columnar-resident relation lexicographically in place:
// it sorts a row-index permutation (comparisons resolve in the first
// columns almost always) and then applies the permutation to each column
// with one sequential write pass.
func (r *Relation) sortCols() {
	cols := r.cols
	n := len(cols[0])
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		for _, c := range cols {
			if c[a] != c[b] {
				return c[a] < c[b]
			}
		}
		return false
	})
	identity := true
	for i, p := range idx {
		if p != int32(i) {
			identity = false
			break
		}
	}
	if identity {
		return
	}
	tmp := make([]Value, n)
	for _, col := range cols {
		for i, p := range idx {
			tmp[i] = col[p]
		}
		copy(col, tmp)
	}
}

// dedupCols removes adjacent duplicate rows of a columnar-resident
// relation in place (the relation must be sorted, as for Dedup).
func (r *Relation) dedupCols() {
	cols := r.cols
	n := len(cols[0])
	w := 1
	for i := 1; i < n; i++ {
		dup := true
		for _, c := range cols {
			if c[i] != c[w-1] {
				dup = false
				break
			}
		}
		if dup {
			continue
		}
		if w != i {
			for _, c := range cols {
				c[w] = c[i]
			}
		}
		w++
	}
	for j := range cols {
		cols[j] = cols[j][:w]
	}
}
