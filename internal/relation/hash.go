package relation

// HashValue maps a value to a bucket in [0, parts). It is the hash function
// h_A of HCube (§II-A): every site must agree on it, so it is a pure
// function of the value. A 64-bit finalizer (splitmix64) avoids the
// pathological collisions a plain modulo would produce on consecutive vertex
// ids, which matters because graph datasets number vertices densely.
func HashValue(v Value, parts int) int {
	if parts <= 1 {
		return 0
	}
	x := uint64(v)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(parts))
}

// HashTuple combines all values of a tuple into one bucket in [0, parts);
// used to hash-partition intermediate results in the multi-round baselines.
func HashTuple(t Tuple, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint64(1469598103934665603) // FNV offset basis
	for _, v := range t {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	return int(h % uint64(parts))
}

// PartitionBy splits r into parts relations by hashing the listed columns.
// Tuples with equal values on cols land in the same partition — the
// contract hash joins rely on.
func (r *Relation) PartitionBy(cols []int, parts int) []*Relation {
	out := make([]*Relation, parts)
	for i := range out {
		out[i] = New(r.Name, r.Attrs...)
	}
	kbuf := make([]Value, len(cols))
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		var p int
		if len(cols) == 1 {
			p = HashValue(t[cols[0]], parts)
		} else {
			for j, c := range cols {
				kbuf[j] = t[c]
			}
			p = HashTuple(kbuf, parts)
		}
		out[p].AppendTuple(t)
	}
	return out
}
