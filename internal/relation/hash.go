package relation

// HashValue maps a value to a bucket in [0, parts). It is the hash function
// h_A of HCube (§II-A): every site must agree on it, so it is a pure
// function of the value. A 64-bit finalizer (splitmix64) avoids the
// pathological collisions a plain modulo would produce on consecutive vertex
// ids, which matters because graph datasets number vertices densely.
func HashValue(v Value, parts int) int {
	if parts <= 1 {
		return 0
	}
	x := uint64(v)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(parts))
}

// HashTuple combines all values of a tuple into one bucket in [0, parts);
// used to hash-partition intermediate results in the multi-round baselines.
func HashTuple(t Tuple, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint64(1469598103934665603) // FNV offset basis
	for _, v := range t {
		x := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	return int(h % uint64(parts))
}

// PartitionBy splits r into parts relations by hashing the listed columns.
// Tuples with equal values on cols land in the same partition — the
// contract hash joins rely on.
//
// Both layouts run in two passes: hash every row into a partition id
// (a pure column scan for a single-column key on columnar input), count,
// then scatter each row exactly once into exact-size backing. A
// columnar-resident relation yields columnar partitions (scattering one
// column at a time); row-major input yields row-major partitions.
func (r *Relation) PartitionBy(cols []int, parts int) []*Relation {
	n := r.Len()
	part, counts := r.partitionIDs(cols, parts, n)
	out := make([]*Relation, parts)
	if cs := r.colsView(); cs != nil {
		k := len(r.Attrs)
		outCols := make([][][]Value, parts)
		for p := 0; p < parts; p++ {
			outCols[p] = make([][]Value, k)
			for j := 0; j < k; j++ {
				outCols[p][j] = make([]Value, counts[p])
			}
		}
		cur := make([]int32, parts)
		for j, col := range cs {
			for i := range cur {
				cur[i] = 0
			}
			for i := 0; i < n; i++ {
				p := part[i]
				outCols[p][j][cur[p]] = col[i]
				cur[p]++
			}
		}
		for p := 0; p < parts; p++ {
			out[p] = FromColumns(r.Name, r.Attrs, outCols[p])
		}
		return out
	}
	k := len(r.Attrs)
	data := r.rows()
	bufs := make([][]Value, parts)
	for p := 0; p < parts; p++ {
		bufs[p] = make([]Value, 0, int(counts[p])*k)
	}
	for i := 0; i < n; i++ {
		p := part[i]
		bufs[p] = append(bufs[p], data[i*k:(i+1)*k]...)
	}
	for p := 0; p < parts; p++ {
		out[p] = New(r.Name, r.Attrs...)
		out[p].SetData(bufs[p])
	}
	return out
}

// partitionIDs hashes every row into [0, parts) and returns per-row ids
// plus per-partition counts. Single-column keys over columnar input hash
// one contiguous column; multi-column keys gather into a scratch tuple
// (the FNV combination is order-sensitive, so it must see whole rows).
func (r *Relation) partitionIDs(cols []int, parts, n int) ([]int32, []int32) {
	part := make([]int32, n)
	counts := make([]int32, parts)
	if parts <= 1 {
		if parts == 1 {
			counts[0] = int32(n)
		}
		return part, counts
	}
	if cs := r.colsView(); cs != nil && len(cols) == 1 {
		col := cs[cols[0]]
		for i := 0; i < n; i++ {
			p := int32(HashValue(col[i], parts))
			part[i] = p
			counts[p]++
		}
		return part, counts
	}
	kbuf := make([]Value, len(cols))
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		var p int
		if len(cols) == 1 {
			p = HashValue(t[cols[0]], parts)
		} else {
			for j, c := range cols {
				kbuf[j] = t[c]
			}
			p = HashTuple(kbuf, parts)
		}
		part[i] = int32(p)
		counts[p]++
	}
	return part, counts
}
