package relation

import "fmt"

// ColumnWriter is the batched columnar result sink of the join pipeline: it
// appends result tuples to a relation column-wise, exploiting the run
// structure of worst-case-optimal join output — long stretches of tuples
// share every value except the deepest attribute. A caller announces the
// shared binding prefix once (BeginRun) and then bulk-appends only the
// varying last column (AppendRun); the writer replicates the prefix values
// with tight fill loops instead of copying a full row per tuple.
//
// The target relation becomes (or stays) columnar-resident and is kept
// consistent after every append, so it can be read, merged (AppendAll
// adopts the columnar layout) or encoded at any point. The writer owns the
// relation's column storage while attached: do not mutate the relation
// through other methods until the writer is dropped.
//
// ColumnWriter satisfies the leapfrog result-sink contract (BeginRun /
// AppendRun over []Value) directly — no per-tuple adapter sits between the
// leaf intersection and the output columns.
type ColumnWriter struct {
	r      *Relation
	cols   [][]Value
	prefix []Value
	rows   int
}

// NewColumnWriter attaches a writer to r. r may already hold tuples (new
// runs append after them) and may use either layout; it is pivoted to
// columnar residency.
func NewColumnWriter(r *Relation) *ColumnWriter {
	if len(r.Attrs) == 0 {
		panic(fmt.Sprintf("relation %q: ColumnWriter needs at least one attribute", r.Name))
	}
	w := &ColumnWriter{r: r}
	w.cols = r.mutableColsEmptyOK()
	w.rows = r.Len()
	return w
}

// Rows returns the number of tuples appended so far (including any the
// relation held before the writer attached).
func (w *ColumnWriter) Rows() int { return w.rows }

// Reserve grows every column's capacity to hold at least n additional
// tuples, so a caller that knows the output size pays one allocation.
func (w *ColumnWriter) Reserve(n int) {
	for j, col := range w.cols {
		if cap(col)-len(col) < n {
			grown := make([]Value, len(col), len(col)+n)
			copy(grown, col)
			w.cols[j] = grown
		}
	}
}

// BeginRun records the binding prefix shared by subsequent AppendRun
// calls: the values of every attribute except the last. prefix may alias a
// caller buffer reused across runs; the writer copies it.
func (w *ColumnWriter) BeginRun(prefix []Value) {
	if len(prefix) != len(w.r.Attrs)-1 {
		panic(fmt.Sprintf("relation %q: run prefix arity %d != %d",
			w.r.Name, len(prefix), len(w.r.Attrs)-1))
	}
	w.prefix = append(w.prefix[:0], prefix...)
}

// AppendRun appends one tuple per value in vals: the current prefix in the
// leading columns, vals in the last. vals may alias trie storage or caller
// scratch; the writer copies. Growth is amortized (doubling), and column
// lengths always equal the exact row count.
func (w *ColumnWriter) AppendRun(vals []Value) {
	n := len(vals)
	if n == 0 {
		return
	}
	k := len(w.cols)
	for j, p := range w.prefix {
		col := extendCol(w.cols[j], n)
		fill := col[len(col)-n:]
		for i := range fill {
			fill[i] = p
		}
		w.cols[j] = col
	}
	last := extendCol(w.cols[k-1], n)
	copy(last[len(last)-n:], vals)
	w.cols[k-1] = last
	w.rows += n
}

// AppendTuple appends one full row (the per-tuple fallback for callers
// mixing run and row emission through the same writer).
func (w *ColumnWriter) AppendTuple(t Tuple) {
	if len(t) != len(w.cols) {
		panic(fmt.Sprintf("relation %q: append arity %d != schema arity %d",
			w.r.Name, len(t), len(w.cols)))
	}
	for j, v := range t {
		w.cols[j] = append(w.cols[j], v)
	}
	w.rows++
}

// extendCol grows col by n slots, ready to be overwritten.
func extendCol(col []Value, n int) []Value {
	if cap(col)-len(col) >= n {
		return col[:len(col)+n]
	}
	return append(col, make([]Value, n)...)
}
