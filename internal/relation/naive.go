package relation

import "sort"

// NaiveJoin evaluates the natural join of rels over the output attribute
// list outAttrs by brute-force backtracking over tuples. It exists purely as
// a correctness oracle for property tests of Leapfrog, HCube and the
// engines; it makes no attempt to be fast.
func NaiveJoin(rels []*Relation, outAttrs []string) *Relation {
	out := New("naive", outAttrs...)
	if len(rels) == 0 {
		return out
	}
	binding := make(map[string]Value, len(outAttrs))
	row := make([]Value, len(outAttrs))
	var rec func(d int)
	rec = func(d int) {
		if d == len(rels) {
			for i, a := range outAttrs {
				row[i] = binding[a]
			}
			out.AppendTuple(row)
			return
		}
		r := rels[d]
		for i, n := 0, r.Len(); i < n; i++ {
			t := r.Tuple(i)
			ok := true
			var bound []string
			for j, a := range r.Attrs {
				if v, has := binding[a]; has {
					if v != t[j] {
						ok = false
						break
					}
				} else {
					binding[a] = t[j]
					bound = append(bound, a)
				}
			}
			if ok {
				rec(d + 1)
			}
			for _, a := range bound {
				delete(binding, a)
			}
		}
	}
	rec(0)
	// The same output tuple can be produced once per combination of input
	// tuples; natural-join semantics over sets require dedup.
	return out.SortDedup()
}

// SortedValues returns vals sorted ascending (non-mutating helper).
func SortedValues(vals []Value) []Value {
	out := append([]Value(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IntersectSorted intersects two ascending value slices.
func IntersectSorted(a, b []Value) []Value {
	var out []Value
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// IntersectAllSorted intersects any number of ascending value slices.
func IntersectAllSorted(lists [][]Value) []Value {
	if len(lists) == 0 {
		return nil
	}
	acc := lists[0]
	for _, l := range lists[1:] {
		acc = IntersectSorted(acc, l)
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}
