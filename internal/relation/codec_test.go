package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundtripBasic(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}, {3, -4}, {1 << 40, -(1 << 50)}})
	back, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Fatalf("roundtrip mismatch:\n%v\n%v", back, r)
	}
}

func TestCodecRoundtripEmpty(t *testing.T) {
	for _, r := range []*Relation{
		New("empty", "a", "b"),
		New("noattrs"),
	} {
		back, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if !back.Equal(r) {
			t.Fatalf("%s: roundtrip mismatch", r.Name)
		}
	}
}

func TestCodecRoundtripSingleTuple(t *testing.T) {
	r := FromTuples("one", []string{"x", "y", "z"}, [][]Value{{-9, 0, 1 << 62}})
	back, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Fatal("single-tuple roundtrip mismatch")
	}
}

func TestCodecProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%4) + 1
		attrs := []string{"a", "b", "c", "d"}[:k]
		r := New("R", attrs...)
		row := make([]Value, k)
		for i := 0; i < int(nRaw%100); i++ {
			for j := range row {
				row[j] = rng.Int63() - rng.Int63()
			}
			r.AppendTuple(row)
		}
		back, err := Decode(Encode(r))
		return err == nil && back.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsTruncatedAndGarbage(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{100, 200}, {300, 400}})
	buf := Encode(r)
	for _, cut := range []int{0, 1, len(buf) / 2, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes should fail", cut, len(buf))
		}
	}
	if _, err := Decode(append(append([]byte(nil), buf...), 7)); err == nil {
		t.Fatal("trailing bytes should fail")
	}
	if _, err := Decode([]byte{0x00, 0x01, 0x02}); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func TestDecodeIntoReusesBacking(t *testing.T) {
	big := New("big", "a", "b")
	for i := 0; i < 1000; i++ {
		big.Append(Value(i), Value(i*2))
	}
	buf := Encode(big)
	var scratch Relation
	if err := DecodeInto(buf, &scratch); err != nil {
		t.Fatal(err)
	}
	if !scratch.Equal(big) {
		t.Fatal("first decode mismatch")
	}
	firstBacking := &scratch.data[0]
	small := FromTuples("small", []string{"x", "y"}, [][]Value{{5, 6}})
	if err := DecodeInto(Encode(small), &scratch); err != nil {
		t.Fatal(err)
	}
	if !scratch.Equal(small) {
		t.Fatal("second decode mismatch")
	}
	if &scratch.data[0] != firstBacking {
		t.Fatal("DecodeInto should reuse the backing array when capacity suffices")
	}
}

func TestSortedRunsEncodeSmallerThanRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := New("E", "src", "dst")
	for i := 0; i < 5000; i++ {
		r.Append(rng.Int63n(20000), rng.Int63n(20000))
	}
	r.Sort()
	delta := len(Encode(r))
	raw := len(EncodeRaw(r))
	if delta*2 > raw {
		t.Fatalf("delta-varint %dB should be well under half of raw %dB on sorted runs", delta, raw)
	}
}

func TestRawCodecRoundtrip(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, -2}, {3, 4}})
	back, err := DecodeRaw(EncodeRaw(r))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Fatal("raw roundtrip mismatch")
	}
}

func benchRelation(n int) *Relation {
	rng := rand.New(rand.NewSource(1))
	r := NewWithCapacity("E", n, "src", "dst")
	for i := 0; i < n; i++ {
		r.Append(rng.Int63n(int64(n/8+1)), rng.Int63n(int64(n/8+1)))
	}
	return r.Sort()
}

func BenchmarkEncode(b *testing.B) {
	r := benchRelation(20000)
	buf := make([]byte, 0, len(Encode(r)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], r)
	}
}

func BenchmarkEncodeRaw(b *testing.B) {
	r := benchRelation(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeRaw(r)
	}
}

func BenchmarkDecode(b *testing.B) {
	r := benchRelation(20000)
	buf := Encode(r)
	var scratch Relation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(buf, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRaw(b *testing.B) {
	r := benchRelation(20000)
	buf := EncodeRaw(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRaw(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCodecCorruptPayloadFuzz hammers the decoder with randomly corrupted
// and truncated payloads produced by the columnar encoder. Decode must
// never panic or over-allocate; it either errors or returns a structurally
// consistent relation (corruption of value bytes can silently change
// values — that is the transport checksum's job, not the codec's).
func TestCodecCorruptPayloadFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		arity := 1 + rng.Intn(4)
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		r := New("F", attrs...)
		for i, n := 0, rng.Intn(40); i < n; i++ {
			row := make([]Value, arity)
			for j := range row {
				row[j] = Value(rng.Int63n(1<<30) - 1<<29)
			}
			r.AppendTuple(row)
		}
		buf := Encode(r.PivotToColumns())
		mut := append([]byte(nil), buf...)
		switch rng.Intn(3) {
		case 0: // single byte flip
			if len(mut) > 0 {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			mut = mut[:rng.Intn(len(mut)+1)]
		default: // flip then truncate
			if len(mut) > 0 {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
				mut = mut[:rng.Intn(len(mut)+1)]
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("iter %d: decoder panicked on corrupt payload: %v", iter, p)
				}
			}()
			dec, err := Decode(mut)
			if err != nil {
				return
			}
			// Structural consistency: every column the same length, Len
			// and arity coherent, row view materializable.
			if dec.Arity() > 64 {
				t.Fatalf("iter %d: implausible arity %d accepted", iter, dec.Arity())
			}
			if got := len(dec.Data()); got != dec.Len()*dec.Arity() {
				t.Fatalf("iter %d: inconsistent decoded shape: %d values for %dx%d", iter, got, dec.Len(), dec.Arity())
			}
		}()
	}
}
