package relation

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewAndAppend(t *testing.T) {
	r := New("R", "a", "b")
	if r.Arity() != 2 || r.Len() != 0 {
		t.Fatalf("empty relation: arity=%d len=%d", r.Arity(), r.Len())
	}
	r.Append(1, 2)
	r.Append(3, 4)
	if r.Len() != 2 {
		t.Fatalf("len=%d want 2", r.Len())
	}
	if got := r.Tuple(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("tuple(1)=%v", got)
	}
}

func TestAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	New("R", "a", "b").Append(1)
}

func TestSortDedup(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{
		{3, 1}, {1, 2}, {3, 1}, {1, 1}, {2, 9}, {1, 2},
	})
	r.SortDedup()
	want := [][]Value{{1, 1}, {1, 2}, {2, 9}, {3, 1}}
	if r.Len() != len(want) {
		t.Fatalf("len=%d want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if !reflect.DeepEqual([]Value(r.Tuple(i)), w) {
			t.Errorf("tuple %d = %v want %v", i, r.Tuple(i), w)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		r := New("R", "a", "b", "c")
		for i := 0; i < n; i++ {
			r.Append(rng.Int63n(5), rng.Int63n(5), rng.Int63n(5))
		}
		r.Sort()
		for i := 1; i < r.Len(); i++ {
			a, b := r.Tuple(i-1), r.Tuple(i)
			for j := 0; j < 3; j++ {
				if a[j] < b[j] {
					break
				}
				if a[j] > b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		r := New("R", "a", "b")
		seen := make(map[[2]Value]bool)
		for i := 0; i < n; i++ {
			v := [2]Value{rng.Int63n(4), rng.Int63n(4)}
			seen[v] = true
			r.Append(v[0], v[1])
		}
		r.SortDedup()
		return r.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectSetSemantics(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}, {1, 3}, {2, 2}})
	p := r.Project("a")
	if p.Len() != 2 {
		t.Fatalf("project(a) len=%d want 2", p.Len())
	}
	if p.Tuple(0)[0] != 1 || p.Tuple(1)[0] != 2 {
		t.Fatalf("project values wrong: %v", p)
	}
	// Reordered projection.
	pr := r.Project("b", "a")
	if !reflect.DeepEqual(pr.Attrs, []string{"b", "a"}) {
		t.Fatalf("schema %v", pr.Attrs)
	}
	if pr.Len() != 3 {
		t.Fatalf("project(b,a) len=%d want 3", pr.Len())
	}
}

func TestProjectMissingAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("R", "a").Project("zz")
}

func TestSelectAndDistinct(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}, {1, 3}, {2, 2}})
	s := r.Select("a", 1)
	if s.Len() != 2 {
		t.Fatalf("select len=%d", s.Len())
	}
	d := r.Distinct("b")
	if !reflect.DeepEqual(d, []Value{2, 3}) {
		t.Fatalf("distinct=%v", d)
	}
}

func TestSemijoin(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}, {2, 3}, {3, 4}})
	s := FromTuples("S", []string{"b", "c"}, [][]Value{{2, 9}, {4, 9}})
	out := r.Semijoin(s, []string{"b"})
	if out.Len() != 2 {
		t.Fatalf("semijoin len=%d want 2", out.Len())
	}
	if out.Tuple(0)[1] != 2 || out.Tuple(1)[1] != 4 {
		t.Fatalf("semijoin tuples wrong: %v", out)
	}
}

func TestSemijoinValues(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}, {2, 3}, {3, 4}})
	out := r.SemijoinValues("a", []Value{1, 3})
	if out.Len() != 2 {
		t.Fatalf("len=%d", out.Len())
	}
}

func TestHashJoinBasic(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}, {2, 3}})
	s := FromTuples("S", []string{"b", "c"}, [][]Value{{2, 7}, {2, 8}, {3, 9}})
	j := HashJoin(r, s)
	j.SortDedup()
	want := [][]Value{{1, 2, 7}, {1, 2, 8}, {2, 3, 9}}
	if j.Len() != len(want) {
		t.Fatalf("join len=%d want %d: %v", j.Len(), len(want), j)
	}
	for i, w := range want {
		if !reflect.DeepEqual([]Value(j.Tuple(i)), w) {
			t.Errorf("tuple %d = %v want %v", i, j.Tuple(i), w)
		}
	}
	if !reflect.DeepEqual(j.Attrs, []string{"a", "b", "c"}) {
		t.Fatalf("schema=%v", j.Attrs)
	}
}

func TestHashJoinNoSharedAttrsIsCross(t *testing.T) {
	r := FromTuples("R", []string{"a"}, [][]Value{{1}, {2}})
	s := FromTuples("S", []string{"b"}, [][]Value{{7}, {8}, {9}})
	j := HashJoin(r, s)
	if j.Len() != 6 {
		t.Fatalf("cross product len=%d want 6", j.Len())
	}
}

func TestHashJoinEmpty(t *testing.T) {
	r := New("R", "a", "b")
	s := FromTuples("S", []string{"b", "c"}, [][]Value{{2, 7}})
	if HashJoin(r, s).Len() != 0 || HashJoin(s, r).Len() != 0 {
		t.Fatal("join with empty must be empty")
	}
}

// HashJoin must agree with NaiveJoin on random inputs.
func TestHashJoinMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRel(rng, "R", []string{"a", "b"}, 20, 5)
		s := randRel(rng, "S", []string{"b", "c"}, 20, 5)
		got := HashJoin(r, s).SortDedup()
		want := NaiveJoin([]*Relation{r, s}, []string{"a", "b", "c"})
		return got.Len() == want.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAllTriangle(t *testing.T) {
	// Tiny triangle instance with a known answer.
	e := [][]Value{{1, 2}, {2, 3}, {1, 3}, {3, 1}}
	r1 := FromTuples("R1", []string{"a", "b"}, e)
	r2 := FromTuples("R2", []string{"b", "c"}, e)
	r3 := FromTuples("R3", []string{"a", "c"}, e)
	j := JoinAll([]*Relation{r1, r2, r3}).ProjectMulti("a", "b", "c").SortDedup()
	want := NaiveJoin([]*Relation{r1, r2, r3}, []string{"a", "b", "c"})
	if j.Len() != want.Len() {
		t.Fatalf("triangles=%d want %d", j.Len(), want.Len())
	}
	if want.Len() == 0 {
		t.Fatal("test instance should have at least one triangle")
	}
}

func TestPartitionBy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := randRel(rng, "R", []string{"a", "b"}, 500, 50)
	parts := r.PartitionBy([]int{0}, 7)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != r.Len() {
		t.Fatalf("partition lost tuples: %d vs %d", total, r.Len())
	}
	// Same key -> same partition.
	for pi, p := range parts {
		for i := 0; i < p.Len(); i++ {
			if HashValue(p.Tuple(i)[0], 7) != pi {
				t.Fatalf("tuple in wrong partition")
			}
		}
	}
}

func TestHashValueRangeAndSpread(t *testing.T) {
	counts := make([]int, 8)
	for v := Value(0); v < 8000; v++ {
		h := HashValue(v, 8)
		if h < 0 || h >= 8 {
			t.Fatalf("hash out of range: %d", h)
		}
		counts[h]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("bucket %d badly skewed: %d/8000", i, c)
		}
	}
	if HashValue(123, 1) != 0 {
		t.Fatal("parts=1 must map to 0")
	}
}

func TestIntersectSorted(t *testing.T) {
	a := []Value{1, 3, 5, 7}
	b := []Value{2, 3, 5, 8}
	got := IntersectSorted(a, b)
	if !reflect.DeepEqual(got, []Value{3, 5}) {
		t.Fatalf("intersect=%v", got)
	}
	if IntersectAllSorted([][]Value{a, b, {5}}) == nil {
		t.Fatal("triple intersection should be {5}")
	}
	if got := IntersectAllSorted([][]Value{a, {9}}); len(got) != 0 {
		t.Fatalf("empty intersection got %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := FromTuples("R", []string{"a"}, [][]Value{{1}})
	c := r.Clone()
	c.Append(2)
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone must be independent")
	}
}

func TestRenamedSharesData(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}})
	s := r.Renamed("S")
	s.Attrs = []string{"x", "y"}
	if s.Len() != 1 || s.Tuple(0)[0] != 1 {
		t.Fatal("renamed relation lost data")
	}
	if r.Attrs[0] != "a" {
		t.Fatal("renaming must not affect original schema")
	}
}

func TestSortByColumns(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{2, 1}, {1, 2}, {2, 0}})
	r.SortByColumns([]int{1})
	// Sorted by b first.
	bs := []Value{r.Tuple(0)[1], r.Tuple(1)[1], r.Tuple(2)[1]}
	if !sort.SliceIsSorted(bs, func(i, j int) bool { return bs[i] < bs[j] }) {
		t.Fatalf("not sorted by column b: %v", bs)
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// Adjacent values that a naive byte-concat might collide on.
	a := encodeKey([]Value{1, 0})
	b := encodeKey([]Value{0, 1})
	c := encodeKey([]Value{1 << 32, 0})
	if a == b || a == c || b == c {
		t.Fatal("encodeKey collided")
	}
}

func randRel(rng *rand.Rand, name string, attrs []string, n int, dom int64) *Relation {
	r := New(name, attrs...)
	for i := 0; i < n; i++ {
		row := make([]Value, len(attrs))
		for j := range row {
			row[j] = rng.Int63n(dom)
		}
		r.AppendTuple(row)
	}
	return r.SortDedup()
}
