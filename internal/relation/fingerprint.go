package relation

// Hash64 is an incremental FNV-1a hasher shared by every content/layout/
// provenance signature in the runtime (relation fingerprints, the shuffle
// layout keys, derived-relation provenance). Keeping one implementation
// matters: signatures computed by different components must keep matching
// each other across any future change to the mixing.
type Hash64 uint64

// NewHash64 returns the FNV-64 offset basis.
func NewHash64() Hash64 { return 0xcbf29ce484222325 }

const hash64Prime = 0x100000001b3

// Word mixes one 64-bit value, byte by byte.
func (h *Hash64) Word(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= hash64Prime
		v >>= 8
	}
	*h = Hash64(x)
}

// Bytes mixes a string's bytes followed by a terminator, so adjacent
// strings cannot alias each other's boundaries.
func (h *Hash64) Bytes(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= hash64Prime
	}
	x ^= 0xff
	x *= hash64Prime
	*h = Hash64(x)
}

// Sum returns the current hash value.
func (h Hash64) Sum() uint64 { return uint64(h) }

// Fingerprint returns a content signature of the relation: a 64-bit hash of
// its schema shape (arity, tuple count) and every value in row order. Two
// relations with the same fingerprint are treated as having identical
// content by the session-resident block-trie store (package blockcache), so
// the hash is order-dependent and covers every byte of every value — a
// permuted copy of the same multiset fingerprints differently, which is
// merely a missed reuse opportunity, never an unsoundness.
//
// Attribute *names* are deliberately excluded: a graph query binds the same
// edge relation under many atom names, and block tries built from it depend
// only on the values and the column permutation, not on what the columns
// are called. The fingerprint works on whichever layout is resident and
// never forces a transpose.
func Fingerprint(r *Relation) uint64 {
	h := NewHash64()
	h.Word(uint64(r.Arity()))
	h.Word(uint64(r.Len()))
	if r.ColumnsResident() {
		// Column-major walk: the hash must match the row-major walk of the
		// same content, so values are mixed in row order by striding the
		// resident columns.
		cols := r.Columns()
		n := r.Len()
		for i := 0; i < n; i++ {
			for _, col := range cols {
				h.Word(uint64(col[i]))
			}
		}
		return h.Sum()
	}
	for _, v := range r.Data() {
		h.Word(uint64(v))
	}
	return h.Sum()
}
