package relation

import (
	"errors"
	"fmt"
	"sort"
)

// Project returns a new relation containing only the given attributes, in
// the given order, with duplicates removed (set semantics, as required for
// the val(A) intersections of the sampler and for trie construction).
func (r *Relation) Project(attrs ...string) *Relation {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			panic(fmt.Sprintf("relation %q: project on missing attribute %q", r.Name, a))
		}
		idx[i] = j
	}
	out := NewWithCapacity(r.Name+"_proj", r.Len(), attrs...)
	row := make([]Value, len(attrs))
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		for j, c := range idx {
			row[j] = t[c]
		}
		out.AppendTuple(row)
	}
	return out.SortDedup()
}

// ProjectMulti keeps duplicates (bag semantics); used where counts matter.
// A columnar-resident receiver projects by whole-column copies and stays
// columnar (the BinaryJoin output path), so projection costs one memcpy
// per kept attribute instead of a row gather.
func (r *Relation) ProjectMulti(attrs ...string) *Relation {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			panic(fmt.Sprintf("relation %q: project on missing attribute %q", r.Name, a))
		}
		idx[i] = j
	}
	if cs := r.colsView(); cs != nil {
		outCols := make([][]Value, len(attrs))
		for j, c := range idx {
			outCols[j] = append([]Value(nil), cs[c]...)
		}
		return FromColumns(r.Name+"_proj", attrs, outCols)
	}
	out := NewWithCapacity(r.Name+"_proj", r.Len(), attrs...)
	row := make([]Value, len(attrs))
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		for j, c := range idx {
			row[j] = t[c]
		}
		out.AppendTuple(row)
	}
	return out
}

// Filter returns the tuples for which keep returns true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := New(r.Name+"_filt", r.Attrs...)
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		if keep(t) {
			out.AppendTuple(t)
		}
	}
	return out
}

// Select returns tuples whose attribute a equals v.
func (r *Relation) Select(a string, v Value) *Relation {
	c := r.AttrIndex(a)
	if c < 0 {
		panic(fmt.Sprintf("relation %q: select on missing attribute %q", r.Name, a))
	}
	return r.Filter(func(t Tuple) bool { return t[c] == v })
}

// Distinct returns the sorted set of values of attribute a.
func (r *Relation) Distinct(a string) []Value {
	c := r.AttrIndex(a)
	if c < 0 {
		panic(fmt.Sprintf("relation %q: distinct on missing attribute %q", r.Name, a))
	}
	seen := make(map[Value]struct{}, r.Len())
	for i, n := 0, r.Len(); i < n; i++ {
		seen[r.Tuple(i)[c]] = struct{}{}
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Semijoin returns the tuples of r that join with at least one tuple of s on
// the shared attributes `on` (which must exist in both schemas). This is the
// database-reduction step of the distributed sampler (§IV of the paper) and
// BigJoin's verify filter. The output keeps r's resident layout: a
// columnar-resident receiver yields a columnar result via one exact-size
// gather per column, so the next round's re-shuffle encodes with no pivot.
func (r *Relation) Semijoin(s *Relation, on []string) *Relation {
	ri := make([]int, len(on))
	si := make([]int, len(on))
	for i, a := range on {
		ri[i] = r.AttrIndex(a)
		si[i] = s.AttrIndex(a)
		if ri[i] < 0 || si[i] < 0 {
			panic(fmt.Sprintf("semijoin: attribute %q missing from %q or %q", a, r.Name, s.Name))
		}
	}
	keys := make(map[string]struct{}, s.Len())
	kbuf := make([]Value, len(on))
	for i, n := 0, s.Len(); i < n; i++ {
		t := s.Tuple(i)
		for j, c := range si {
			kbuf[j] = t[c]
		}
		keys[encodeKey(kbuf)] = struct{}{}
	}
	out := New(r.Name, r.Attrs...)
	if cs := r.colsView(); cs != nil {
		n := r.Len()
		keep := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			for j, c := range ri {
				kbuf[j] = cs[c][i]
			}
			if _, ok := keys[encodeKey(kbuf)]; ok {
				keep = append(keep, int32(i))
			}
		}
		outCols := make([][]Value, len(cs))
		for j, col := range cs {
			oc := make([]Value, len(keep))
			for x, i := range keep {
				oc[x] = col[i]
			}
			outCols[j] = oc
		}
		out.SetColumns(outCols)
		return out
	}
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		for j, c := range ri {
			kbuf[j] = t[c]
		}
		if _, ok := keys[encodeKey(kbuf)]; ok {
			out.AppendTuple(t)
		}
	}
	return out
}

// SemijoinValues keeps tuples whose attribute a takes a value in vals.
func (r *Relation) SemijoinValues(a string, vals []Value) *Relation {
	set := make(map[Value]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	c := r.AttrIndex(a)
	if c < 0 {
		panic(fmt.Sprintf("relation %q: semijoinValues on missing attribute %q", r.Name, a))
	}
	return r.Filter(func(t Tuple) bool { _, ok := set[t[c]]; return ok })
}

// SharedAttrs returns the attributes common to both schemas, in r's order.
func SharedAttrs(r, s *Relation) []string {
	var out []string
	for _, a := range r.Attrs {
		if s.HasAttr(a) {
			out = append(out, a)
		}
	}
	return out
}

// ErrTooLarge reports a join whose output exceeded the caller's limit; the
// engines map it to the paper's OOM/timeout failures without paying for
// the full materialization first.
var ErrTooLarge = errors.New("relation: join output limit exceeded")

// HashJoinLimit is HashJoin with an output cap: it aborts with ErrTooLarge
// as soon as the output exceeds limit tuples (limit 0 = unlimited).
func HashJoinLimit(r, s *Relation, limit int) (*Relation, error) {
	out := hashJoin(r, s, limit)
	if out == nil {
		return nil, ErrTooLarge
	}
	return out, nil
}

// HashJoin computes the natural join r ⋈ s with a classic build/probe hash
// join on all shared attributes. It is the kernel of the BinaryJoin baseline
// (the paper's SparkSQL analogue) and of GHD bag pre-computation. The output
// schema is r's attributes followed by s's non-shared attributes.
func HashJoin(r, s *Relation) *Relation {
	return hashJoin(r, s, 0)
}

// hashJoin returns nil when the limit is exceeded. The output is built
// columnar: every matched (probe, build) pair appends one value per output
// column, so the result feeds the shuffle codec, the hash partitioner and
// the trie builder in their native layout with no pivot — the path every
// BinaryJoin intermediate and ADJ bag pre-computation round takes.
func hashJoin(r, s *Relation, limit int) *Relation {
	shared := SharedAttrs(r, s)
	// Build side: the smaller input.
	build, probe := s, r
	swapped := false
	if r.Len() < s.Len() {
		build, probe, swapped = r, s, true
	}
	bi := make([]int, len(shared))
	pi := make([]int, len(shared))
	for i, a := range shared {
		bi[i] = build.AttrIndex(a)
		pi[i] = probe.AttrIndex(a)
	}
	// Output schema and the column picks for each side.
	var outAttrs []string
	outAttrs = append(outAttrs, r.Attrs...)
	var sExtra []int
	for j, a := range s.Attrs {
		if r.AttrIndex(a) < 0 {
			outAttrs = append(outAttrs, a)
			sExtra = append(sExtra, j)
		}
	}
	out := New(fmt.Sprintf("(%s⋈%s)", r.Name, s.Name), outAttrs...)
	if build.Len() == 0 || probe.Len() == 0 {
		return out
	}
	ht := make(map[string][]int, build.Len())
	kbuf := make([]Value, len(shared))
	for i, n := 0, build.Len(); i < n; i++ {
		t := build.Tuple(i)
		for j, c := range bi {
			kbuf[j] = t[c]
		}
		k := encodeKey(kbuf)
		ht[k] = append(ht[k], i)
	}
	outCols := make([][]Value, len(outAttrs))
	rk := len(r.Attrs)
	count := 0
	for i, n := 0, probe.Len(); i < n; i++ {
		pt := probe.Tuple(i)
		for j, c := range pi {
			kbuf[j] = pt[c]
		}
		matches, ok := ht[encodeKey(kbuf)]
		if !ok {
			continue
		}
		for _, m := range matches {
			bt := build.Tuple(m)
			var rt, st Tuple
			if swapped {
				rt, st = bt, pt
			} else {
				rt, st = pt, bt
			}
			// Keys are exact encodings, so shared attrs are equal here.
			for j, v := range rt {
				outCols[j] = append(outCols[j], v)
			}
			for j, c := range sExtra {
				outCols[rk+j] = append(outCols[rk+j], st[c])
			}
			count++
			if limit > 0 && count > limit {
				return nil
			}
		}
	}
	out.SetColumns(outCols)
	return out
}

// JoinAll left-folds HashJoin over rels; with set-semantics inputs the
// result equals the natural join of all of them.
func JoinAll(rels []*Relation) *Relation {
	if len(rels) == 0 {
		return New("empty")
	}
	acc := rels[0]
	for _, r := range rels[1:] {
		acc = HashJoin(acc, r)
	}
	return acc
}

// CrossCount returns the product of the sizes; a quick upper bound used by
// guards in the test harness.
func CrossCount(rels []*Relation) int64 {
	p := int64(1)
	for _, r := range rels {
		p *= int64(r.Len())
		if p < 0 { // overflow
			return 1 << 62
		}
	}
	return p
}

// encodeKey packs values into a string key for map-based joins. Values are
// written in fixed-width big-endian-ish form so distinct tuples always get
// distinct keys.
func encodeKey(vals []Value) string {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		u := uint64(v)
		o := i * 8
		b[o] = byte(u >> 56)
		b[o+1] = byte(u >> 48)
		b[o+2] = byte(u >> 40)
		b[o+3] = byte(u >> 32)
		b[o+4] = byte(u >> 24)
		b[o+5] = byte(u >> 16)
		b[o+6] = byte(u >> 8)
		b[o+7] = byte(u)
	}
	return string(b)
}
