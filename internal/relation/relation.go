// Package relation implements the relational substrate of ADJ: schemas,
// typed tuples stored in flat row-major blocks, and the operations the join
// engines need (sort, dedup, project, semijoin, hash partitioning).
//
// Values are int64. A Relation is a multiset of fixed-arity tuples over a
// named schema; most operations return new relations and leave the receiver
// untouched, matching the immutable dataflow style of the distributed
// runtime (package cluster).
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is the domain of every attribute. Graph datasets use vertex ids.
type Value = int64

// Tuple is a single row. It aliases the relation's backing array; callers
// must copy before retaining it across mutations.
type Tuple = []Value

// layout tracks which backing representation currently holds the
// relation's content. The zero value is layoutRows, so a zero Relation is a
// valid empty row-major relation.
type layout uint8

const (
	// layoutRows: data is authoritative; cols may be stale scratch.
	layoutRows layout = iota
	// layoutCols: cols is authoritative; data may be stale scratch.
	layoutCols
	// layoutBoth: data and cols hold identical content (a read-only
	// materialized view of one from the other). Any mutation collapses the
	// layout back to the representation it was applied to.
	layoutBoth
)

// Relation is a multiset of tuples with a fixed schema.
//
// Tuples live in one of two backing stores: a row-major flat slice (data)
// or a column-major slice-per-attribute (cols). Either side can be
// authoritative; the other is materialized lazily on first access and kept
// as a read-only view until the next mutation (see layout). The row-major
// API (Tuple, Append, Data, Sort, ...) keeps working on columnar relations
// via that lazy transpose, while the hot paths — the trie builder's radix
// passes, the shuffle codec's per-column delta runs, and the hash
// partitioner — operate on whichever representation is resident and prefer
// columnar when both are.
type Relation struct {
	Name  string
	Attrs []string
	data  []Value
	cols  [][]Value
	lay   layout
}

// New returns an empty relation with the given name and schema.
func New(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: append([]string(nil), attrs...)}
}

// NewWithCapacity returns an empty relation pre-sized for n tuples.
func NewWithCapacity(name string, n int, attrs ...string) *Relation {
	r := New(name, attrs...)
	r.data = make([]Value, 0, n*len(attrs))
	return r
}

// FromTuples builds a relation from explicit rows. Rows are copied.
func FromTuples(name string, attrs []string, rows [][]Value) *Relation {
	r := NewWithCapacity(name, len(rows), attrs...)
	for _, row := range rows {
		r.Append(row...)
	}
	return r
}

// FromEdges builds a binary relation over (src, dst) attribute names from an
// edge list, the representation used for all graph datasets in the paper.
func FromEdges(name, srcAttr, dstAttr string, edges [][2]Value) *Relation {
	r := NewWithCapacity(name, len(edges), srcAttr, dstAttr)
	for _, e := range edges {
		r.data = append(r.data, e[0], e[1])
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if len(r.Attrs) == 0 {
		return 0
	}
	if r.lay == layoutCols {
		return len(r.cols[0])
	}
	return len(r.data) / len(r.Attrs)
}

// Tuple returns the i-th row as a slice aliasing internal (row-major)
// storage, materializing it from the columnar store if necessary.
func (r *Relation) Tuple(i int) Tuple {
	k := len(r.Attrs)
	d := r.rows()
	return d[i*k : (i+1)*k]
}

// Append adds one row. It panics if the arity does not match the schema:
// that is always a programming error, never a data error.
func (r *Relation) Append(vals ...Value) {
	if len(vals) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %q: append arity %d != schema arity %d", r.Name, len(vals), len(r.Attrs)))
	}
	r.data = append(r.mutableRows(), vals...)
}

// AppendTuple adds one row without the variadic copy.
func (r *Relation) AppendTuple(t Tuple) {
	if len(t) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %q: append arity %d != schema arity %d", r.Name, len(t), len(r.Attrs)))
	}
	r.data = append(r.mutableRows(), t...)
}

// AppendAll concatenates all tuples of s (same arity required) onto r.
// When the source is columnar-resident and the receiver is columnar (or
// still empty), the append runs column-wise and the receiver stays
// columnar — the path shuffle receivers take when folding decoded blocks
// into cube databases.
func (r *Relation) AppendAll(s *Relation) {
	if len(s.Attrs) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %q: appendAll arity %d != %d", r.Name, len(s.Attrs), len(r.Attrs)))
	}
	if s.lay != layoutRows && (r.lay == layoutCols || (r.Len() == 0 && len(r.Attrs) > 0)) {
		dst := r.mutableColsEmptyOK()
		for j := range dst {
			dst[j] = append(dst[j], s.cols[j]...)
		}
		r.cols = dst
		return
	}
	r.data = append(r.mutableRows(), s.rows()...)
}

// Data exposes the raw row-major value block (read-only by convention),
// materializing it from the columnar store if necessary.
func (r *Relation) Data() []Value { return r.rows() }

// SetData replaces the backing array. len(d) must be a multiple of arity.
func (r *Relation) SetData(d []Value) {
	if len(r.Attrs) > 0 && len(d)%len(r.Attrs) != 0 {
		panic(fmt.Sprintf("relation %q: data length %d not a multiple of arity %d", r.Name, len(d), len(r.Attrs)))
	}
	r.data = d
	r.lay = layoutRows
}

// Clone deep-copies the relation, preserving its resident representation.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Attrs: append([]string(nil), r.Attrs...), lay: r.lay}
	switch r.lay {
	case layoutCols:
		c.cols = cloneCols(r.cols)
	case layoutBoth:
		c.data = append([]Value(nil), r.data...)
		c.cols = cloneCols(r.cols)
	default:
		c.data = append([]Value(nil), r.data...)
	}
	return c
}

// Renamed returns a shallow copy with a different name: tuple storage is
// shared, but the Attrs slice is copied (like Clone) so a later schema
// mutation on either relation cannot alias the other.
//
// Only the authoritative representation is shared. A receiver holding both
// views in sync is first collapsed to its row-major side, so an in-place
// mutation through either alias cannot leave the other serving a stale
// cached transpose: the sibling re-derives its secondary view from the
// shared (mutated) backing on next access.
func (r *Relation) Renamed(name string) *Relation {
	s := &Relation{Name: name, Attrs: append([]string(nil), r.Attrs...)}
	if r.lay == layoutBoth {
		r.lay = layoutRows
	}
	if r.lay == layoutCols {
		// Copy the outer slice so length-changing operations on one alias
		// (append, dedup) rewrite only its own column headers; the column
		// contents stay shared, matching row-major sharing semantics.
		s.cols = append([][]Value(nil), r.cols...)
		s.lay = layoutCols
	} else {
		s.data = r.data
	}
	return s
}

// AttrIndex returns the position of attribute a in the schema, or -1.
func (r *Relation) AttrIndex(a string) int {
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// HasAttr reports whether a is part of the schema.
func (r *Relation) HasAttr(a string) bool { return r.AttrIndex(a) >= 0 }

// SizeBytes returns the in-memory payload size (8 bytes per value), the unit
// the cost model charges for communication.
func (r *Relation) SizeBytes() int64 { return int64(r.Len()*r.Arity()) * 8 }

// String renders a compact human-readable form (used by tests and the CLI).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d tuples]", r.Name, strings.Join(r.Attrs, ","), r.Len())
	n := r.Len()
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\n  %v", r.Tuple(i))
	}
	if r.Len() > n {
		fmt.Fprintf(&b, "\n  ... (%d more)", r.Len()-n)
	}
	return b.String()
}

// Sort orders tuples lexicographically in place and returns the receiver.
// Columnar-resident relations stay columnar: the sort computes a row
// permutation and applies it column by column.
func (r *Relation) Sort() *Relation {
	k := len(r.Attrs)
	if k == 0 || r.Len() < 2 {
		return r
	}
	if r.lay == layoutCols {
		r.sortCols()
		return r
	}
	sort.Sort(&rowSorter{data: r.mutableRows(), k: k, tmp: make([]Value, k)})
	return r
}

// SortByColumns orders tuples in place by the given column permutation:
// first compare column cols[0], then cols[1], etc. Columns not listed keep
// their relative influence last in schema order to make the sort total.
func (r *Relation) SortByColumns(cols []int) *Relation {
	k := len(r.Attrs)
	if k == 0 || r.Len() < 2 {
		return r
	}
	full := append([]int(nil), cols...)
	seen := make(map[int]bool, k)
	for _, c := range cols {
		seen[c] = true
	}
	for c := 0; c < k; c++ {
		if !seen[c] {
			full = append(full, c)
		}
	}
	sort.Sort(&rowSorterCols{data: r.mutableRows(), k: k, cols: full, tmp: make([]Value, k)})
	return r
}

// Dedup removes duplicate tuples in place. The relation must be sorted (in
// any total order). Returns the receiver.
func (r *Relation) Dedup() *Relation {
	k := len(r.Attrs)
	n := r.Len()
	if n < 2 {
		return r
	}
	if r.lay == layoutCols {
		r.dedupCols()
		return r
	}
	d := r.mutableRows()
	w := 1
	for i := 1; i < n; i++ {
		if !equalRows(d, (w-1)*k, i*k, k) {
			copy(d[w*k:(w+1)*k], d[i*k:(i+1)*k])
			w++
		}
	}
	r.data = d[:w*k]
	return r
}

// SortDedup sorts lexicographically then removes duplicates.
func (r *Relation) SortDedup() *Relation { return r.Sort().Dedup() }

// Equal reports whether two relations have identical schema and identical
// tuple sequences (order-sensitive; sort both first for multiset equality).
// Representation does not matter: a columnar relation equals its row-major
// transpose.
func (r *Relation) Equal(s *Relation) bool {
	if len(r.Attrs) != len(s.Attrs) {
		return false
	}
	for i := range r.Attrs {
		if r.Attrs[i] != s.Attrs[i] {
			return false
		}
	}
	if r.Len() != s.Len() {
		return false
	}
	if r.lay != layoutRows && s.lay != layoutRows {
		for j := range r.cols {
			rc, sc := r.cols[j], s.cols[j]
			for i := range rc {
				if rc[i] != sc[i] {
					return false
				}
			}
		}
		return true
	}
	rd, sd := r.rows(), s.rows()
	for i := range rd {
		if rd[i] != sd[i] {
			return false
		}
	}
	return true
}

func equalRows(d []Value, a, b, k int) bool {
	for i := 0; i < k; i++ {
		if d[a+i] != d[b+i] {
			return false
		}
	}
	return true
}

// rowSorter sorts flat row-major data lexicographically.
type rowSorter struct {
	data []Value
	k    int
	tmp  []Value
}

func (s *rowSorter) Len() int { return len(s.data) / s.k }
func (s *rowSorter) Less(i, j int) bool {
	a, b := i*s.k, j*s.k
	for x := 0; x < s.k; x++ {
		if s.data[a+x] != s.data[b+x] {
			return s.data[a+x] < s.data[b+x]
		}
	}
	return false
}
func (s *rowSorter) Swap(i, j int) {
	a, b := i*s.k, j*s.k
	copy(s.tmp, s.data[a:a+s.k])
	copy(s.data[a:a+s.k], s.data[b:b+s.k])
	copy(s.data[b:b+s.k], s.tmp)
}

// rowSorterCols sorts by an explicit column priority list.
type rowSorterCols struct {
	data []Value
	k    int
	cols []int
	tmp  []Value
}

func (s *rowSorterCols) Len() int { return len(s.data) / s.k }
func (s *rowSorterCols) Less(i, j int) bool {
	a, b := i*s.k, j*s.k
	for _, c := range s.cols {
		if s.data[a+c] != s.data[b+c] {
			return s.data[a+c] < s.data[b+c]
		}
	}
	return false
}
func (s *rowSorterCols) Swap(i, j int) {
	a, b := i*s.k, j*s.k
	copy(s.tmp, s.data[a:a+s.k])
	copy(s.data[a:a+s.k], s.data[b:b+s.k])
	copy(s.data[b:b+s.k], s.tmp)
}
