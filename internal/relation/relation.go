// Package relation implements the relational substrate of ADJ: schemas,
// typed tuples stored in flat row-major blocks, and the operations the join
// engines need (sort, dedup, project, semijoin, hash partitioning).
//
// Values are int64. A Relation is a multiset of fixed-arity tuples over a
// named schema; most operations return new relations and leave the receiver
// untouched, matching the immutable dataflow style of the distributed
// runtime (package cluster).
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is the domain of every attribute. Graph datasets use vertex ids.
type Value = int64

// Tuple is a single row. It aliases the relation's backing array; callers
// must copy before retaining it across mutations.
type Tuple = []Value

// Relation is a multiset of tuples with a fixed schema.
// Tuples are stored row-major in a single flat slice.
type Relation struct {
	Name  string
	Attrs []string
	data  []Value
}

// New returns an empty relation with the given name and schema.
func New(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: append([]string(nil), attrs...)}
}

// NewWithCapacity returns an empty relation pre-sized for n tuples.
func NewWithCapacity(name string, n int, attrs ...string) *Relation {
	r := New(name, attrs...)
	r.data = make([]Value, 0, n*len(attrs))
	return r
}

// FromTuples builds a relation from explicit rows. Rows are copied.
func FromTuples(name string, attrs []string, rows [][]Value) *Relation {
	r := NewWithCapacity(name, len(rows), attrs...)
	for _, row := range rows {
		r.Append(row...)
	}
	return r
}

// FromEdges builds a binary relation over (src, dst) attribute names from an
// edge list, the representation used for all graph datasets in the paper.
func FromEdges(name, srcAttr, dstAttr string, edges [][2]Value) *Relation {
	r := NewWithCapacity(name, len(edges), srcAttr, dstAttr)
	for _, e := range edges {
		r.data = append(r.data, e[0], e[1])
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if len(r.Attrs) == 0 {
		return 0
	}
	return len(r.data) / len(r.Attrs)
}

// Tuple returns the i-th row as a slice aliasing internal storage.
func (r *Relation) Tuple(i int) Tuple {
	k := len(r.Attrs)
	return r.data[i*k : (i+1)*k]
}

// Append adds one row. It panics if the arity does not match the schema:
// that is always a programming error, never a data error.
func (r *Relation) Append(vals ...Value) {
	if len(vals) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %q: append arity %d != schema arity %d", r.Name, len(vals), len(r.Attrs)))
	}
	r.data = append(r.data, vals...)
}

// AppendTuple adds one row without the variadic copy.
func (r *Relation) AppendTuple(t Tuple) {
	if len(t) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %q: append arity %d != schema arity %d", r.Name, len(t), len(r.Attrs)))
	}
	r.data = append(r.data, t...)
}

// AppendAll concatenates all tuples of s (same arity required) onto r.
func (r *Relation) AppendAll(s *Relation) {
	if len(s.Attrs) != len(r.Attrs) {
		panic(fmt.Sprintf("relation %q: appendAll arity %d != %d", r.Name, len(s.Attrs), len(r.Attrs)))
	}
	r.data = append(r.data, s.data...)
}

// Data exposes the raw row-major value block (read-only by convention).
func (r *Relation) Data() []Value { return r.data }

// SetData replaces the backing array. len(d) must be a multiple of arity.
func (r *Relation) SetData(d []Value) {
	if len(r.Attrs) > 0 && len(d)%len(r.Attrs) != 0 {
		panic(fmt.Sprintf("relation %q: data length %d not a multiple of arity %d", r.Name, len(d), len(r.Attrs)))
	}
	r.data = d
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name, Attrs: append([]string(nil), r.Attrs...)}
	c.data = append([]Value(nil), r.data...)
	return c
}

// Renamed returns a shallow copy with a different name (shares tuple data).
func (r *Relation) Renamed(name string) *Relation {
	return &Relation{Name: name, Attrs: r.Attrs, data: r.data}
}

// AttrIndex returns the position of attribute a in the schema, or -1.
func (r *Relation) AttrIndex(a string) int {
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// HasAttr reports whether a is part of the schema.
func (r *Relation) HasAttr(a string) bool { return r.AttrIndex(a) >= 0 }

// SizeBytes returns the in-memory payload size (8 bytes per value), the unit
// the cost model charges for communication.
func (r *Relation) SizeBytes() int64 { return int64(len(r.data)) * 8 }

// String renders a compact human-readable form (used by tests and the CLI).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d tuples]", r.Name, strings.Join(r.Attrs, ","), r.Len())
	n := r.Len()
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "\n  %v", r.Tuple(i))
	}
	if r.Len() > n {
		fmt.Fprintf(&b, "\n  ... (%d more)", r.Len()-n)
	}
	return b.String()
}

// Sort orders tuples lexicographically in place and returns the receiver.
func (r *Relation) Sort() *Relation {
	k := len(r.Attrs)
	if k == 0 || r.Len() < 2 {
		return r
	}
	sort.Sort(&rowSorter{data: r.data, k: k, tmp: make([]Value, k)})
	return r
}

// SortByColumns orders tuples in place by the given column permutation:
// first compare column cols[0], then cols[1], etc. Columns not listed keep
// their relative influence last in schema order to make the sort total.
func (r *Relation) SortByColumns(cols []int) *Relation {
	k := len(r.Attrs)
	if k == 0 || r.Len() < 2 {
		return r
	}
	full := append([]int(nil), cols...)
	seen := make(map[int]bool, k)
	for _, c := range cols {
		seen[c] = true
	}
	for c := 0; c < k; c++ {
		if !seen[c] {
			full = append(full, c)
		}
	}
	sort.Sort(&rowSorterCols{data: r.data, k: k, cols: full, tmp: make([]Value, k)})
	return r
}

// Dedup removes duplicate tuples in place. The relation must be sorted (in
// any total order). Returns the receiver.
func (r *Relation) Dedup() *Relation {
	k := len(r.Attrs)
	n := r.Len()
	if n < 2 {
		return r
	}
	w := 1
	for i := 1; i < n; i++ {
		if !equalRows(r.data, (w-1)*k, i*k, k) {
			copy(r.data[w*k:(w+1)*k], r.data[i*k:(i+1)*k])
			w++
		}
	}
	r.data = r.data[:w*k]
	return r
}

// SortDedup sorts lexicographically then removes duplicates.
func (r *Relation) SortDedup() *Relation { return r.Sort().Dedup() }

// Equal reports whether two relations have identical schema and identical
// tuple sequences (order-sensitive; sort both first for multiset equality).
func (r *Relation) Equal(s *Relation) bool {
	if len(r.Attrs) != len(s.Attrs) {
		return false
	}
	for i := range r.Attrs {
		if r.Attrs[i] != s.Attrs[i] {
			return false
		}
	}
	if len(r.data) != len(s.data) {
		return false
	}
	for i := range r.data {
		if r.data[i] != s.data[i] {
			return false
		}
	}
	return true
}

func equalRows(d []Value, a, b, k int) bool {
	for i := 0; i < k; i++ {
		if d[a+i] != d[b+i] {
			return false
		}
	}
	return true
}

// rowSorter sorts flat row-major data lexicographically.
type rowSorter struct {
	data []Value
	k    int
	tmp  []Value
}

func (s *rowSorter) Len() int { return len(s.data) / s.k }
func (s *rowSorter) Less(i, j int) bool {
	a, b := i*s.k, j*s.k
	for x := 0; x < s.k; x++ {
		if s.data[a+x] != s.data[b+x] {
			return s.data[a+x] < s.data[b+x]
		}
	}
	return false
}
func (s *rowSorter) Swap(i, j int) {
	a, b := i*s.k, j*s.k
	copy(s.tmp, s.data[a:a+s.k])
	copy(s.data[a:a+s.k], s.data[b:b+s.k])
	copy(s.data[b:b+s.k], s.tmp)
}

// rowSorterCols sorts by an explicit column priority list.
type rowSorterCols struct {
	data []Value
	k    int
	cols []int
	tmp  []Value
}

func (s *rowSorterCols) Len() int { return len(s.data) / s.k }
func (s *rowSorterCols) Less(i, j int) bool {
	a, b := i*s.k, j*s.k
	for _, c := range s.cols {
		if s.data[a+c] != s.data[b+c] {
			return s.data[a+c] < s.data[b+c]
		}
	}
	return false
}
func (s *rowSorterCols) Swap(i, j int) {
	a, b := i*s.k, j*s.k
	copy(s.tmp, s.data[a:a+s.k])
	copy(s.data[a:a+s.k], s.data[b:b+s.k])
	copy(s.data[b:b+s.k], s.tmp)
}
