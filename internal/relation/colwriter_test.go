package relation

import (
	"math/rand"
	"testing"
)

// ColumnWriter runs must materialize exactly the tuples a row-major
// AppendTuple loop would, with the relation columnar-resident throughout.
func TestColumnWriterMatchesRowAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		k := 1 + rng.Intn(4)
		attrs := make([]string, k)
		for j := range attrs {
			attrs[j] = string(rune('a' + j))
		}
		colRel := New("out", attrs...)
		rowRel := New("out", attrs...)
		w := NewColumnWriter(colRel)
		row := make([]Value, k)
		prefix := make([]Value, k-1)
		for runs := 0; runs < 1+rng.Intn(8); runs++ {
			for j := range prefix {
				prefix[j] = rng.Int63n(50)
			}
			w.BeginRun(prefix)
			// Split the run's values over several AppendRun calls.
			total := rng.Intn(12)
			vals := make([]Value, total)
			for i := range vals {
				vals[i] = rng.Int63n(100)
			}
			for len(vals) > 0 {
				cut := 1 + rng.Intn(len(vals))
				w.AppendRun(vals[:cut])
				for _, v := range vals[:cut] {
					copy(row, prefix)
					row[k-1] = v
					rowRel.AppendTuple(row)
				}
				vals = vals[cut:]
			}
			w.AppendRun(nil) // empty append is a no-op
		}
		if !colRel.ColumnsResident() {
			t.Fatal("writer target lost columnar residency")
		}
		if w.Rows() != rowRel.Len() {
			t.Fatalf("iter=%d: writer rows=%d, reference=%d", iter, w.Rows(), rowRel.Len())
		}
		if !colRel.Equal(rowRel) {
			t.Fatalf("iter=%d: columnar output differs from row-major reference:\n%s\nvs\n%s",
				iter, colRel, rowRel)
		}
	}
}

// AppendTuple interleaves with runs, Reserve pre-sizes without changing
// contents, and attaching to a non-empty relation appends after the
// existing tuples.
func TestColumnWriterMixedAndReserve(t *testing.T) {
	r := FromTuples("out", []string{"x", "y"}, [][]Value{{1, 2}})
	w := NewColumnWriter(r)
	w.Reserve(16)
	w.BeginRun([]Value{7})
	w.AppendRun([]Value{10, 11})
	w.AppendTuple([]Value{8, 12})
	w.BeginRun([]Value{9})
	w.AppendRun([]Value{13})
	want := FromTuples("out", []string{"x", "y"}, [][]Value{
		{1, 2}, {7, 10}, {7, 11}, {8, 12}, {9, 13},
	})
	if !r.Equal(want) {
		t.Fatalf("got\n%s\nwant\n%s", r, want)
	}
	if w.Rows() != 5 {
		t.Fatalf("rows=%d want 5", w.Rows())
	}
}

// Arity misuse must panic loudly (programming errors, never data errors).
func TestColumnWriterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := New("out", "x", "y")
	w := NewColumnWriter(r)
	expectPanic("bad prefix arity", func() { w.BeginRun([]Value{1, 2}) })
	expectPanic("bad tuple arity", func() { w.AppendTuple([]Value{1}) })
	expectPanic("zero attrs", func() { NewColumnWriter(New("empty")) })
}
