package relation

import (
	"bytes"
	"math/rand"
	"testing"
)

// randomRelation builds a random row-major relation with the given arity.
func randomRelation(rng *rand.Rand, name string, arity, n, domain int) *Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	r := New(name, attrs...)
	for i := 0; i < n; i++ {
		row := make([]Value, arity)
		for j := range row {
			row[j] = Value(rng.Intn(domain))
		}
		r.AppendTuple(row)
	}
	return r
}

func TestColumnsTransposeRoundtrip(t *testing.T) {
	r := FromTuples("R", []string{"a", "b", "c"}, [][]Value{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	cols := r.Columns()
	if len(cols) != 3 {
		t.Fatalf("columns=%d", len(cols))
	}
	for j, want := range [][]Value{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}} {
		for i := range want {
			if cols[j][i] != want[i] {
				t.Fatalf("col %d = %v, want %v", j, cols[j], want)
			}
		}
	}
	if !r.ColumnsResident() || !r.RowsResident() {
		t.Fatal("after Columns() both representations should be in sync")
	}
	// A row mutation invalidates the columnar mirror; the next Columns()
	// call must reflect the new content.
	r.Append(10, 11, 12)
	if r.ColumnsResident() {
		t.Fatal("Append must invalidate the columnar view")
	}
	if got := r.Column(0); len(got) != 4 || got[3] != 10 {
		t.Fatalf("column 0 after append = %v", got)
	}
}

func TestFromColumnsLazyRowPivot(t *testing.T) {
	r := FromColumns("R", []string{"x", "y"}, [][]Value{{1, 3, 5}, {2, 4, 6}})
	if r.Len() != 3 || r.Arity() != 2 {
		t.Fatalf("len=%d arity=%d", r.Len(), r.Arity())
	}
	if r.RowsResident() {
		t.Fatal("fresh columnar relation should not have rows materialized")
	}
	if tup := r.Tuple(1); tup[0] != 3 || tup[1] != 4 {
		t.Fatalf("tuple 1 = %v", tup)
	}
	if !r.RowsResident() {
		t.Fatal("Tuple must materialize the row-major view")
	}
	want := FromTuples("R", []string{"x", "y"}, [][]Value{{1, 2}, {3, 4}, {5, 6}})
	if !r.Equal(want) {
		t.Fatalf("pivot mismatch:\n%v\nvs\n%v", r, want)
	}
}

func TestAppendAllAdoptsColumnarLayout(t *testing.T) {
	src := FromColumns("S", []string{"x", "y"}, [][]Value{{1, 2}, {10, 20}})
	dst := New("D", "x", "y")
	dst.AppendAll(src)
	if !dst.ColumnsResident() || dst.RowsResident() {
		t.Fatal("append of a columnar block into an empty relation should stay columnar")
	}
	dst.AppendAll(src)
	if dst.Len() != 4 {
		t.Fatalf("len=%d", dst.Len())
	}
	want := FromTuples("D", []string{"x", "y"}, [][]Value{{1, 10}, {2, 20}, {1, 10}, {2, 20}})
	if !dst.Equal(want) {
		t.Fatalf("got %v", dst)
	}
	// Mutating the source afterwards must not affect dst (AppendAll copies).
	src.Columns()[0][0] = 99
	if dst.Tuple(0)[0] != 1 {
		t.Fatal("AppendAll must copy column data")
	}
}

func TestAppendColumns(t *testing.T) {
	r := New("R", "a", "b")
	r.AppendColumns([][]Value{{1, 2}, {5, 6}})
	r.AppendColumns([][]Value{{3}, {7}})
	want := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 5}, {2, 6}, {3, 7}})
	if !r.Equal(want) {
		t.Fatalf("got %v want %v", r, want)
	}
}

func TestClonePreservesColumnarLayout(t *testing.T) {
	r := FromColumns("R", []string{"a"}, [][]Value{{1, 2, 3}})
	c := r.Clone()
	if !c.ColumnsResident() {
		t.Fatal("clone of a columnar relation should stay columnar")
	}
	c.Columns()[0][0] = 42
	if r.Column(0)[0] != 1 {
		t.Fatal("clone must deep-copy columns")
	}
}

func TestRenamedCopiesAttrsSlice(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}})
	s := r.Renamed("S")
	// In-place schema mutation of the renamed relation must not alias the
	// receiver's schema (regression: Renamed used to share the Attrs slice).
	s.Attrs[0] = "x"
	if r.Attrs[0] != "a" {
		t.Fatalf("renaming aliased the schema: %v", r.Attrs)
	}
	if s.Tuple(0)[0] != 1 {
		t.Fatal("renamed relation lost data")
	}
}

func TestSortDedupColumnarMatchesRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		arity := 1 + rng.Intn(4)
		n := rng.Intn(120)
		row := randomRelation(rng, "R", arity, n, 8) // small domain forces duplicates
		col := row.Clone().PivotToColumns()
		row.Sort().Dedup()
		col.Sort().Dedup()
		if !col.ColumnsResident() {
			t.Fatal("columnar relation should stay columnar through Sort/Dedup")
		}
		if !row.Equal(col) {
			t.Fatalf("iter %d: sort+dedup diverged:\n%v\nvs\n%v", iter, row, col)
		}
	}
}

func TestPartitionByColumnarMatchesRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 60; iter++ {
		arity := 1 + rng.Intn(3)
		n := rng.Intn(200)
		parts := 1 + rng.Intn(5)
		row := randomRelation(rng, "R", arity, n, 1000)
		col := row.Clone().PivotToColumns()
		var cols []int
		nc := 1 + rng.Intn(arity)
		perm := rng.Perm(arity)
		cols = append(cols, perm[:nc]...)
		rp := row.PartitionBy(cols, parts)
		cp := col.PartitionBy(cols, parts)
		if len(rp) != len(cp) {
			t.Fatalf("iter %d: %d vs %d partitions", iter, len(rp), len(cp))
		}
		for p := range rp {
			if !rp[p].Equal(cp[p]) {
				t.Fatalf("iter %d: partition %d diverged:\n%v\nvs\n%v", iter, p, rp[p], cp[p])
			}
		}
	}
}

func TestEncodeColumnarRowMajorIdenticalBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 80; iter++ {
		arity := 1 + rng.Intn(4)
		n := rng.Intn(150)
		row := randomRelation(rng, "R", arity, n, 1<<20)
		if rng.Intn(2) == 0 {
			row.Sort() // exercise the sorted-run case the shuffle ships
		}
		col := row.Clone().PivotToColumns()
		rb := Encode(row)
		cb := Encode(col)
		if !bytes.Equal(rb, cb) {
			t.Fatalf("iter %d: wire bytes diverge between layouts (%d vs %d bytes)", iter, len(rb), len(cb))
		}
		dec, err := Decode(cb)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if !dec.Equal(row) {
			t.Fatalf("iter %d: decode mismatch", iter)
		}
	}
}

func TestDecodeIsColumnarResident(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}, {3, 4}})
	dec, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ColumnsResident() || dec.RowsResident() {
		t.Fatal("decoded relation should be columnar-resident")
	}
	if !dec.Equal(r) {
		t.Fatalf("roundtrip mismatch: %v", dec)
	}
}

func TestDecodeIntoReusesColumnBacking(t *testing.T) {
	big := New("big", "a", "b")
	for i := 0; i < 1000; i++ {
		big.Append(Value(i), Value(i*2))
	}
	var scratch Relation
	if err := DecodeInto(Encode(big), &scratch); err != nil {
		t.Fatal(err)
	}
	firstBacking := &scratch.cols[0][0]
	small := FromTuples("small", []string{"a", "b"}, [][]Value{{5, 6}})
	if err := DecodeInto(Encode(small), &scratch); err != nil {
		t.Fatal(err)
	}
	if !scratch.Equal(small) {
		t.Fatal("second decode mismatch")
	}
	if &scratch.cols[0][0] != firstBacking {
		t.Fatal("DecodeInto should reuse column backing when capacity suffices")
	}
}

func TestHashJoinAcrossLayoutsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 40; iter++ {
		r := randomRelation(rng, "R", 2, rng.Intn(60), 20)
		r.Attrs = []string{"a", "b"}
		s := randomRelation(rng, "S", 2, rng.Intn(60), 20)
		s.Attrs = []string{"b", "c"}
		want := HashJoin(r, s).SortDedup()
		got := HashJoin(r.Clone().PivotToColumns(), s.Clone().PivotToColumns()).SortDedup()
		if !want.Equal(got) {
			t.Fatalf("iter %d: join diverged across layouts", iter)
		}
	}
}

func TestPivotsAreInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	r := randomRelation(rng, "R", 3, 100, 50)
	orig := r.Clone()
	r.PivotToColumns().PivotToRows().PivotToColumns()
	if !r.Equal(orig) {
		t.Fatal("pivot roundtrip changed content")
	}
}

// TestRenamedAliasMutationStaysConsistent is the layout-aliasing
// regression: after a sibling created by Renamed sorts the shared backing
// in place, the original must not serve a stale cached transpose — its
// secondary view has to be re-derived from the mutated storage.
func TestRenamedAliasMutationStaysConsistent(t *testing.T) {
	r := FromTuples("R", []string{"a", "b"}, [][]Value{{3, 30}, {1, 10}, {2, 20}})
	r.Columns() // cache the columnar mirror (layoutBoth)
	s := r.Renamed("S")
	s.Sort() // mutates the shared row backing in place
	wantCol0 := []Value{1, 2, 3}
	got := r.Column(0)
	for i := range wantCol0 {
		if got[i] != wantCol0[i] {
			t.Fatalf("original served a stale columnar view after sibling sort: col0=%v", got)
		}
	}
	if r.Tuple(0)[0] != 1 || s.Tuple(0)[0] != 1 {
		t.Fatalf("shared backing not sorted: r=%v s=%v", r.Tuple(0), s.Tuple(0))
	}

	// Columnar-authoritative receiver: the sibling shares the columns.
	c := FromColumns("C", []string{"a"}, [][]Value{{3, 1, 2}})
	cs := c.Renamed("CS")
	cs.Sort()
	if v := c.Column(0); v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("columnar sibling sort not visible through alias: %v", v)
	}
}

// TestRenamedColumnarAliasHeaderIsolation: length-changing operations on a
// columnar Renamed sibling must not change the original's row count — the
// outer column-header slice is private per alias even though the column
// contents are shared.
func TestRenamedColumnarAliasHeaderIsolation(t *testing.T) {
	r := FromColumns("R", []string{"a", "b"}, [][]Value{{1, 2}, {10, 20}})
	s := r.Renamed("S")
	s.AppendAll(FromColumns("X", []string{"a", "b"}, [][]Value{{3}, {30}}))
	if r.Len() != 2 {
		t.Fatalf("append through renamed alias changed original's length: %d", r.Len())
	}
	if s.Len() != 3 {
		t.Fatalf("alias append lost rows: %d", s.Len())
	}
	// Shared content still mutates through either alias (documented).
	s2 := r.Renamed("S2")
	s2.Columns()[0][0] = 7
	if r.Column(0)[0] != 7 {
		t.Fatal("column contents should remain shared")
	}
}
