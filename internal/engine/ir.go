package engine

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"adj/internal/cluster"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/plan"
	"adj/internal/relation"
	"adj/internal/sampling"
)

// errRunFailed is the interpreter's internal signal that a run ended in a
// *reported* failure (budget, memory): the Report is already marked Failed
// with its FailReason and the run returns (rep, nil), matching the paper's
// frame-top failure bars rather than a Go error.
var errRunFailed = errors.New("engine: run failed (reported)")

// runEngine is the shared engine body every registry entry delegates to:
// borrow/build the cluster, plan (or reuse the prepared Program), walk the
// operator DAG with the IR interpreter, and fold metrics into the paper's
// cost buckets. Engines differ only in the Program their planner lowers.
func runEngine(name string, q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Engine: name, Query: q.Name, Servers: cfg.NumServers}
	c, release := clusterFor(cfg)
	defer release()
	c.LoadDatabase(rels)

	// Planning: reuse the prepared Program (a session's PreparedQuery pays
	// planning once) or lower the query now, charged to the optimize phase.
	var prog *plan.Program
	if pp := preparedFor(cfg, name); pp != nil && pp.Program != nil {
		prog = pp.Program
	} else {
		t0 := time.Now()
		pp, err := Prepare(name, q, rels, cfg)
		if err != nil {
			return rep, err
		}
		prog = pp.Program
		chargeSeconds(c, "optimize", t0)
	}
	rep.Plan = prog.Label
	if err := ctxErr(cfg); err != nil {
		return rep, err
	}

	if err := runProgram(c, prog, rels, cfg, &rep); err != nil {
		if errors.Is(err, errRunFailed) {
			finishReport(&rep, c.Metrics)
			return rep, nil
		}
		return rep, err
	}
	finishReport(&rep, c.Metrics)
	return rep, nil
}

// progState is the interpreter's per-run scratch: results of executed ops
// that later ops consume by ID.
type progState struct {
	// lf holds each LeapfrogCube op's outcome.
	lf map[int]lfResult
	// shuffles records each executed hcube plan (keyed by op ID) for the
	// downstream LeapfrogCube and the end-of-run trie publish.
	shuffles map[int]hcube.Plan
	// published collects the shuffle plans to Publish on success, in
	// execution order.
	published []hcube.Plan
}

type lfResult struct {
	total  int64
	merged *relation.Relation
}

// runProgram interprets a lowered Program op by op on the resident
// cluster. A reported failure (budget, memory) marks rep and returns
// errRunFailed; every other error is a real failure of the run.
func runProgram(c *cluster.Cluster, prog *plan.Program, rels []*relation.Relation, cfg Config, rep *Report) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	st := &progState{lf: make(map[int]lfResult), shuffles: make(map[int]hcube.Plan)}
	for _, op := range prog.Ops {
		if err := ctxErr(cfg); err != nil {
			return err
		}
		if err := runOp(c, prog, op, st, rels, cfg, rep); err != nil {
			return err
		}
	}
	// Publish the built block tries for the next execution over the same
	// content (a no-op without a session store).
	for _, sp := range st.published {
		hcube.Publish(c, sp)
	}
	return nil
}

func runOp(c *cluster.Cluster, prog *plan.Program, op *plan.Op, st *progState,
	rels []*relation.Relation, cfg Config, rep *Report) error {
	switch op.Kind {
	case plan.Shuffle:
		return runShuffle(c, op, st, cfg, rep)
	case plan.BuildTrie:
		// Tries are built lazily per (relation, block) at first cube use —
		// see cubeTries — so the op itself is a marker carrying the order
		// and cost annotation for Explain.
		return nil
	case plan.LeapfrogCube:
		return runLeapfrog(c, prog, op, st, cfg, rep)
	case plan.HashJoin:
		size, err := distributedJoin(c, op.Phase, op.Left.Name, op.Left.Attrs,
			op.Right.Name, op.Right.Attrs, op.Out.Name, cfg.Budget)
		if err != nil {
			return opFailure(c, op, st, err, size, rep)
		}
		return nil
	case plan.Semijoin:
		var err error
		if op.Attr != "" {
			err = verifyRound(c, op.Phase, rels[op.RelIdx], op.Prefix, op.Attr, cfg)
		} else {
			err = distributedSemijoin(c, op.Phase, op.Left.Name, op.Left.Attrs,
				op.Right.Name, op.Right.Attrs, op.Out.Name)
		}
		if err != nil {
			return opFailure(c, op, st, err, 0, rep)
		}
		return checkOpBudget(c, op, cfg, rep)
	case plan.Project:
		return c.Parallel(op.Phase, func(w *cluster.Worker) error {
			frag, ok := w.Rels[op.Left.Name]
			if !ok {
				return nil
			}
			canon := frag.ProjectMulti(op.Out.Attrs...)
			canon.Name = op.Out.Name
			w.Rels[op.Out.Name] = canon
			return nil
		})
	case plan.Scatter:
		vals := sampling.ValA(rels, op.Attr)
		bindings := relation.New("bind0", op.Attr)
		for _, v := range vals {
			bindings.Append(v)
		}
		scatter(c, op.Phase, bindings)
		return nil
	case plan.Extend:
		if err := proposeRound(c, op.Phase, rels[op.RelIdx], op.Prefix, op.Attr, cfg); err != nil {
			return opFailure(c, op, st, err, 0, rep)
		}
		return checkOpBudget(c, op, cfg, rep)
	case plan.Emit:
		return runEmit(c, prog, op, st, cfg, rep)
	default:
		return fmt.Errorf("engine: unknown plan op kind %v", op.Kind)
	}
}

// runShuffle executes one HCube exchange: re-gather dynamic sizes,
// optimize shares (charged to the optimize phase when the plan says so),
// enforce the memory bound, and run the shuffle with session reuse wired.
func runShuffle(c *cluster.Cluster, op *plan.Op, st *progState, cfg Config, rep *Report) error {
	infos := make([]hcube.RelInfo, len(op.Rels))
	for i, rr := range op.Rels {
		size := rr.Size
		if rr.Dynamic {
			name := rr.Name
			size = c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(name)) })
		}
		infos[i] = hcube.RelInfo{Name: rr.Name, Attrs: rr.Attrs, Size: size}
	}
	t0 := time.Now()
	shares, err := hcube.Optimize(infos, hcube.Config{
		Attrs:           op.Order,
		NumServers:      cfg.NumServers,
		MaxCubes:        maxCubes(cfg),
		MinCubes:        maxCubes(cfg),
		MemoryPerServer: cfg.MemoryPerServer,
	})
	if err != nil {
		return err
	}
	if op.ChargeOptimize {
		// The HCubeJ family charges share optimization to the paper's
		// Optimization column; ADJ's shares are part of the shuffle.
		chargeSeconds(c, "optimize", t0)
	}
	planID := op.ReuseID
	if op.LabelShares {
		rep.Plan = fmt.Sprintf("ord=%v shares=%v", op.Order, shares.P)
		planID = rep.Plan
	}
	if cfg.MemoryPerServer > 0 && hcube.LoadPerCube(infos, shares) > float64(cfg.MemoryPerServer) {
		rep.Failed = true
		rep.FailReason = "memory"
		return errRunFailed
	}
	kind := shuffleKindOf(op, cfg)
	sp := hcube.Plan{
		Shares: shares, Rels: infos, Kind: kind, TrieOrder: op.Order,
		Reuse: shuffleReuse(cfg, planID, infos),
	}
	if err := hcube.Run(c, op.Phase, sp); err != nil {
		return err
	}
	st.shuffles[op.ID] = sp
	st.published = append(st.published, sp)
	return nil
}

// shuffleKindOf resolves the HCube implementation: the run config's
// override wins, then the plan's choice, then Push (the original).
func shuffleKindOf(op *plan.Op, cfg Config) hcube.Kind {
	if cfg.ShuffleKind != nil {
		return *cfg.ShuffleKind
	}
	switch op.ShuffleKind {
	case "merge":
		return hcube.Merge
	case "pull":
		return hcube.Pull
	default:
		return hcube.Push
	}
}

// runLeapfrog executes the WCOJ over the cubes its upstream Shuffle
// distributed, folding the cache/emit counters into the report.
func runLeapfrog(c *cluster.Cluster, prog *plan.Program, op *plan.Op, st *progState, cfg Config, rep *Report) error {
	sp, ok := shuffleFor(prog, op, st)
	if !ok {
		return fmt.Errorf("engine: LeapfrogCube #%d has no upstream Shuffle", op.ID)
	}
	total, output, cstats, estats, err := localCubeJoin(c, op.Phase, sp.Rels, op.Order, cfg, op.Cached, op.StoreAs)
	rep.CacheBlocks += cstats.Blocks
	rep.TrieBuilds += cstats.Builds
	rep.TrieCacheHits += cstats.Hits
	rep.EmittedRuns += estats.runs
	rep.EmittedValues += estats.values
	if err != nil {
		return opFailure(c, op, st, err, 0, rep)
	}
	st.lf[op.ID] = lfResult{total: total, merged: output}
	return nil
}

// shuffleFor resolves the executed hcube plan feeding op, walking through
// marker ops (BuildTrie) to the upstream Shuffle.
func shuffleFor(prog *plan.Program, op *plan.Op, st *progState) (hcube.Plan, bool) {
	for _, in := range op.Inputs {
		if sp, ok := st.shuffles[in]; ok {
			return sp, true
		}
		if sp, ok := shuffleFor(prog, prog.Ops[in], st); ok {
			return sp, true
		}
	}
	return hcube.Plan{}, false
}

// runEmit terminates the plan: count and optionally materialize results,
// either from the upstream LeapfrogCube's folded outputs or by gathering
// the worker fragments of the From relation.
func runEmit(c *cluster.Cluster, prog *plan.Program, op *plan.Op, st *progState, cfg Config, rep *Report) error {
	if op.From == "" {
		for _, in := range op.Inputs {
			if r, ok := st.lf[in]; ok {
				rep.Results = r.total
				rep.Output = r.merged
				return nil
			}
		}
		return fmt.Errorf("engine: Emit #%d has no upstream LeapfrogCube result", op.ID)
	}
	name := op.From
	rep.Results = c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(name)) })
	if cfg.CollectOutput {
		out := relation.New("out", op.Out.Attrs...)
		for _, w := range c.Workers {
			// Empty fragments may carry a degenerate schema (BigJoin's
			// verify resets a drained worker to an attribute-less bindings
			// relation); they contribute nothing, so skip before projecting.
			if frag, ok := w.Rels[name]; ok && frag.Len() > 0 {
				out.AppendAll(frag.ProjectMulti(op.ProjectOnto...))
			}
		}
		rep.Output = out
	}
	return nil
}

// opFailure routes an op error: a budget overrun becomes the reported
// failure the op's BudgetLabel names (with the offending size substituted
// for a "%d" verb); everything else propagates as a real error.
func opFailure(c *cluster.Cluster, op *plan.Op, st *progState, err error, size int64, rep *Report) error {
	if !errors.Is(err, ErrBudget) {
		return err
	}
	label := op.BudgetLabel
	if label == "" {
		label = "budget"
	}
	if strings.Contains(label, "%d") {
		label = fmt.Sprintf(label, size)
	}
	rep.Failed = true
	rep.FailReason = label
	return errRunFailed
}

// checkOpBudget enforces a post-op bound on the op output's global size
// (BigJoin's per-round binding cap).
func checkOpBudget(c *cluster.Cluster, op *plan.Op, cfg Config, rep *Report) error {
	if !op.CheckBudget || cfg.Budget <= 0 {
		return nil
	}
	name := op.Out.Name
	sz := c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(name)) })
	if sz > cfg.Budget {
		rep.Failed = true
		rep.FailReason = fmt.Sprintf("budget(round %d: %d bindings)", op.Round, sz)
		return errRunFailed
	}
	return nil
}
