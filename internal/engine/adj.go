package engine

import (
	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// RunADJ executes the paper's system (§III): sample, co-optimize
// pre-computing/communication/computation over the GHD-restricted plan
// space (Alg. 2), pre-compute the chosen bags with distributed joins,
// shuffle the rewritten query Qi with the optimized Merge HCube, and run
// Leapfrog per cube under the chosen valid attribute order. The planning
// lives in Prepare/lowerADJ; execution is the shared IR interpreter.
func RunADJ(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runEngine("ADJ", q, rels, cfg)
}

// RunADJCommFirst is ADJ's machinery with the communication-first strategy
// (no pre-computation, order from all orders): the right-hand columns of
// Tables II–IV. It still uses the optimized shuffle, isolating the plan
// strategy as the only difference.
func RunADJCommFirst(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runEngine("ADJ(comm-first)", q, rels, cfg)
}
