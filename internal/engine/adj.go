package engine

import (
	"errors"
	"time"

	"adj/internal/cluster"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/optimizer"
	"adj/internal/relation"
)

// RunADJ executes the paper's system (§III): sample, co-optimize
// pre-computing/communication/computation over the GHD-restricted plan
// space (Alg. 2), pre-compute the chosen bags with distributed joins,
// shuffle the rewritten query Qi with the optimized Merge HCube, and run
// Leapfrog per cube under the chosen valid attribute order.
func RunADJ(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runADJ(q, rels, cfg, true)
}

// RunADJCommFirst is ADJ's machinery with the communication-first strategy
// (no pre-computation, order from all orders): the right-hand columns of
// Tables II–IV. It still uses the optimized shuffle, isolating the plan
// strategy as the only difference.
func RunADJCommFirst(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runADJ(q, rels, cfg, false)
}

func runADJ(q hypergraph.Query, rels []*relation.Relation, cfg Config, coOptimize bool) (Report, error) {
	cfg = cfg.withDefaults()
	name := "ADJ"
	if !coOptimize {
		name = "ADJ(comm-first)"
	}
	rep := Report{Engine: name, Query: q.Name, Servers: cfg.NumServers}
	c, release := clusterFor(cfg)
	defer release()
	c.LoadDatabase(rels)

	// --- Optimization phase: calibrate, sample, plan — or reuse the
	// prepared plan (a session's PreparedQuery pays planning once). ---
	var plan *optimizer.Plan
	if pp := preparedFor(cfg, name); pp != nil && pp.Opt != nil {
		plan = pp.Opt
	} else {
		t0 := time.Now()
		var err error
		plan, err = adjPlan(q, rels, cfg, coOptimize)
		if err != nil {
			return rep, err
		}
		chargeSeconds(c, "optimize", t0)
	}
	rep.Plan = plan.String()
	if err := ctxErr(cfg); err != nil {
		return rep, err
	}

	// --- Pre-computing phase: materialize chosen bags distributedly. ---
	bagNames := make(map[int]string)
	for _, id := range plan.Precompute {
		bag := plan.Decomp.Bags[id]
		outName := optimizer.BagRelationName(plan.Decomp, id)
		bagNames[id] = outName
		accName := q.Atoms[bag.Atoms[0]].Name
		accAttrs := append([]string(nil), q.Atoms[bag.Atoms[0]].Attrs...)
		for step, ai := range bag.Atoms[1:] {
			next := q.Atoms[ai]
			stepOut := outName
			if step < len(bag.Atoms)-2 {
				stepOut = outName + "~" + next.Name
			}
			if _, err := distributedJoin(c, "precompute",
				accName, accAttrs, next.Name, next.Attrs, stepOut, cfg.Budget); err != nil {
				if errors.Is(err, ErrBudget) {
					rep.Failed = true
					rep.FailReason = "budget(precompute)"
					finishReport(&rep, c.Metrics)
					return rep, nil
				}
				return rep, err
			}
			accName = stepOut
			accAttrs = joinedAttrs(accAttrs, next.Attrs)
		}
		// Canonicalize fragment schemas to the bag's sorted vertex order so
		// HCube hashes columns consistently with the RelInfo registered below.
		if err := c.Parallel("precompute/canon", func(w *cluster.Worker) error {
			frag, ok := w.Rels[outName]
			if !ok {
				return nil
			}
			canon := frag.ProjectMulti(bag.Vertices...)
			canon.Name = outName
			w.Rels[outName] = canon
			return nil
		}); err != nil {
			return rep, err
		}
	}

	// --- Build the rewritten query Qi's relation set. ---
	var infos []hcube.RelInfo
	for _, bag := range plan.Decomp.Bags {
		if nm, ok := bagNames[bag.ID]; ok {
			size := c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(nm)) })
			infos = append(infos, hcube.RelInfo{Name: nm, Attrs: bag.Vertices, Size: size})
			continue
		}
		for _, ai := range bag.Atoms {
			r := rels[ai]
			infos = append(infos, hcube.RelInfo{Name: r.Name, Attrs: r.Attrs, Size: int64(r.Len())})
		}
	}

	// --- Communication phase: optimized HCube (Merge by default). ---
	shares, err := hcube.Optimize(infos, hcube.Config{
		Attrs:           plan.AttrOrder,
		NumServers:      cfg.NumServers,
		MaxCubes:        maxCubes(cfg),
		MinCubes:        maxCubes(cfg),
		MemoryPerServer: cfg.MemoryPerServer,
	})
	if err != nil {
		return rep, err
	}
	if cfg.MemoryPerServer > 0 && hcube.LoadPerCube(infos, shares) > float64(cfg.MemoryPerServer) {
		rep.Failed = true
		rep.FailReason = "memory"
		finishReport(&rep, c.Metrics)
		return rep, nil
	}
	kind := hcube.Merge
	if cfg.ShuffleKind != nil {
		kind = *cfg.ShuffleKind
	}
	shufflePlan := hcube.Plan{
		Shares: shares, Rels: infos, Kind: kind, TrieOrder: plan.AttrOrder,
		Reuse: shuffleReuse(cfg, plan.String(), infos),
	}
	if err := hcube.Run(c, "shuffle", shufflePlan); err != nil {
		return rep, err
	}

	// --- Computation phase: Leapfrog per cube under the plan's order. ---
	total, output, cstats, estats, err := localCubeJoin(c, "join", infos, plan.AttrOrder, cfg, false)
	rep.CacheBlocks = cstats.Blocks
	rep.TrieBuilds = cstats.Builds
	rep.TrieCacheHits = cstats.Hits
	rep.EmittedRuns = estats.runs
	rep.EmittedValues = estats.values
	if err != nil {
		if errors.Is(err, ErrBudget) {
			rep.Failed = true
			rep.FailReason = "budget"
			finishReport(&rep, c.Metrics)
			return rep, nil
		}
		return rep, err
	}
	rep.Results = total
	rep.Output = output
	// Publish the built block tries for the next execution over the same
	// content (a no-op without a session store).
	hcube.Publish(c, shufflePlan)
	finishReport(&rep, c.Metrics)
	return rep, nil
}
