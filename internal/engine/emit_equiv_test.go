package engine

import (
	"math/rand"
	"testing"

	"adj/internal/hypergraph"
	"adj/internal/testutil"
)

// The batched columnar result sink and the legacy per-tuple emit shim must
// be observationally identical across all five engines: same result
// counts, same materialized relations (contents and attribute order), in
// both sequential and parallel scheduling. The sink path must additionally
// report nonzero emitted-run counters on the Leapfrog engines — proof the
// batched path engaged rather than silently degrading to per-tuple.
func TestSinkShimOutputEquivalenceAllEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 3; iter++ {
		edges := testutil.RandEdges(rng, "E", 250+150*iter, int64(20+5*iter))
		for _, q := range []hypergraph.Query{hypergraph.Q1(), hypergraph.Q2()} {
			rels := q.BindGraph(edges)
			for name, run := range Engines() {
				for _, sequential := range []bool{true, false} {
					cfg := smallCfg(3)
					cfg.CubesPerServer = 2
					cfg.Sequential = sequential
					cfg.CollectOutput = true
					sinkRep, err := run(q, rels, cfg)
					if err != nil {
						t.Fatalf("iter=%d %s/%s seq=%v sink: %v", iter, name, q.Name, sequential, err)
					}
					cfg.PerTupleEmit = true
					shimRep, err := run(q, rels, cfg)
					if err != nil {
						t.Fatalf("iter=%d %s/%s seq=%v shim: %v", iter, name, q.Name, sequential, err)
					}
					if sinkRep.Results != shimRep.Results {
						t.Fatalf("iter=%d %s/%s seq=%v: results sink=%d shim=%d",
							iter, name, q.Name, sequential, sinkRep.Results, shimRep.Results)
					}
					a, b := sinkRep.Output, shimRep.Output
					if a == nil || b == nil {
						t.Fatalf("iter=%d %s/%s seq=%v: missing output (sink=%v shim=%v)",
							iter, name, q.Name, sequential, a != nil, b != nil)
					}
					if len(a.Attrs) != len(b.Attrs) {
						t.Fatalf("iter=%d %s/%s: attr arity differs: %v vs %v",
							iter, name, q.Name, a.Attrs, b.Attrs)
					}
					for i := range a.Attrs {
						if a.Attrs[i] != b.Attrs[i] {
							t.Fatalf("iter=%d %s/%s: attribute order differs: %v vs %v",
								iter, name, q.Name, a.Attrs, b.Attrs)
						}
					}
					// Cube outputs fold in deterministic cube order in both
					// modes, so the relations must match row for row — not
					// just as multisets.
					if !a.Equal(b) {
						t.Fatalf("iter=%d %s/%s seq=%v: sink and shim outputs differ",
							iter, name, q.Name, sequential)
					}
					if int64(a.Len()) != sinkRep.Results {
						t.Fatalf("iter=%d %s/%s: output %d tuples, results=%d",
							iter, name, q.Name, a.Len(), sinkRep.Results)
					}
					// Leapfrog engines must show batched emission engaged.
					switch name {
					case "ADJ", "HCubeJ", "HCubeJ+Cache":
						if sinkRep.Results > 0 && sinkRep.EmittedRuns == 0 {
							t.Fatalf("iter=%d %s/%s: %d results but zero emitted runs",
								iter, name, q.Name, sinkRep.Results)
						}
						if sinkRep.EmittedValues != sinkRep.Results {
							t.Fatalf("iter=%d %s/%s: emitted values=%d, results=%d",
								iter, name, q.Name, sinkRep.EmittedValues, sinkRep.Results)
						}
					}
				}
			}
		}
	}
}
