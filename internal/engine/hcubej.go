package engine

import (
	"errors"
	"fmt"
	"time"

	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/optimizer"
	"adj/internal/relation"
)

// RunHCubeJ executes the one-round, communication-first baseline (§II-A):
// HCube shuffle with shares optimized for communication only, then plain
// Leapfrog per cube. The attribute order is selected from all n! orders by
// estimated intermediate size (Fig. 8's "All-Selected"), and the original
// Push shuffle is used unless overridden — both as in the paper's HCubeJ.
func RunHCubeJ(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runHCubeJ(q, rels, cfg, false)
}

// RunHCubeJCache is HCubeJ with the CacheTrieJoin-style cached Leapfrog.
// Its cache budget shrinks with the memory HCube's shuffled load consumes,
// reproducing the starvation the paper reports on large datasets.
func RunHCubeJCache(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runHCubeJ(q, rels, cfg, true)
}

func runHCubeJ(q hypergraph.Query, rels []*relation.Relation, cfg Config, cached bool) (Report, error) {
	cfg = cfg.withDefaults()
	name := "HCubeJ"
	if cached {
		name = "HCubeJ+Cache"
	}
	rep := Report{Engine: name, Query: q.Name, Servers: cfg.NumServers}
	c, release := clusterFor(cfg)
	defer release()
	c.LoadDatabase(rels)

	// Optimization: order selection (over all orders) + share optimization,
	// both charged to the optimize phase like the paper's Optimization
	// column for the communication-first strategy. A prepared plan skips
	// the order search (the share optimization is a cheap enumeration and
	// reruns every time).
	t0 := time.Now()
	var plan *optimizer.Plan
	if pp := preparedFor(cfg, name); pp != nil && pp.Opt != nil {
		plan = pp.Opt
	} else {
		var err error
		plan, err = commFirstPlan(q, rels, cfg)
		if err != nil {
			return rep, err
		}
	}
	infos := hcube.InfoOf(rels)
	shares, err := hcube.Optimize(infos, hcube.Config{
		Attrs:           plan.AttrOrder,
		NumServers:      cfg.NumServers,
		MaxCubes:        maxCubes(cfg),
		MinCubes:        maxCubes(cfg),
		MemoryPerServer: cfg.MemoryPerServer,
	})
	if err != nil {
		return rep, err
	}
	chargeSeconds(c, "optimize", t0)
	rep.Plan = fmt.Sprintf("ord=%v shares=%v", plan.AttrOrder, shares.P)
	if err := ctxErr(cfg); err != nil {
		return rep, err
	}

	// Memory failure: if even the best shares exceed server memory, the run
	// dies like the paper's OOM bars.
	if cfg.MemoryPerServer > 0 && hcube.LoadPerCube(infos, shares) > float64(cfg.MemoryPerServer) {
		rep.Failed = true
		rep.FailReason = "memory"
		finishReport(&rep, c.Metrics)
		return rep, nil
	}

	kind := hcube.Push
	if cfg.ShuffleKind != nil {
		kind = *cfg.ShuffleKind
	}
	shufflePlan := hcube.Plan{
		Shares: shares, Rels: infos, Kind: kind, TrieOrder: plan.AttrOrder,
		Reuse: shuffleReuse(cfg, rep.Plan, infos),
	}
	if err := hcube.Run(c, "shuffle", shufflePlan); err != nil {
		return rep, err
	}

	total, output, cstats, estats, err := localCubeJoin(c, "join", infos, plan.AttrOrder, cfg, cached)
	rep.CacheBlocks = cstats.Blocks
	rep.TrieBuilds = cstats.Builds
	rep.TrieCacheHits = cstats.Hits
	rep.EmittedRuns = estats.runs
	rep.EmittedValues = estats.values
	if err != nil {
		if errors.Is(err, ErrBudget) {
			rep.Failed = true
			rep.FailReason = "budget"
			finishReport(&rep, c.Metrics)
			return rep, nil
		}
		return rep, err
	}
	rep.Results = total
	rep.Output = output
	hcube.Publish(c, shufflePlan)
	finishReport(&rep, c.Metrics)
	return rep, nil
}
