package engine

import (
	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// RunHCubeJ executes the one-round, communication-first baseline (§II-A):
// HCube shuffle with shares optimized for communication only, then plain
// Leapfrog per cube. The attribute order is selected from all n! orders by
// estimated intermediate size (Fig. 8's "All-Selected"), and the original
// Push shuffle is used unless overridden — both as in the paper's HCubeJ.
// Planning lives in Prepare/lowerHCubeJ; execution is the shared IR
// interpreter.
func RunHCubeJ(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runEngine("HCubeJ", q, rels, cfg)
}

// RunHCubeJCache is HCubeJ with the CacheTrieJoin-style cached Leapfrog.
// Its cache budget shrinks with the memory HCube's shuffled load consumes,
// reproducing the starvation the paper reports on large datasets.
func RunHCubeJCache(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runEngine("HCubeJ+Cache", q, rels, cfg)
}
