package engine

import (
	"math/rand"
	"strings"
	"testing"

	"adj/internal/hypergraph"
	"adj/internal/plan"
	"adj/internal/testutil"
)

// Every engine's Prepare must lower to a valid physical program: a
// well-formed DAG (inputs strictly precede consumers) ending in exactly
// one Emit, with the engine's identity stamped on it.
func TestEveryEngineLowersToValidProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := testutil.RandEdges(rng, "E", 300, 25)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	for _, name := range AllEngineNames() {
		pp, err := Prepare(name, q, rels, smallCfg(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pp.Program == nil {
			t.Fatalf("%s: Prepare returned no program", name)
		}
		if err := pp.Program.Validate(); err != nil {
			t.Fatalf("%s: invalid program: %v", name, err)
		}
		if pp.Program.Engine != name {
			t.Fatalf("%s: program stamped %q", name, pp.Program.Engine)
		}
		emits := 0
		for _, op := range pp.Program.Ops {
			if op.Kind == plan.Emit {
				emits++
			}
		}
		if emits != 1 {
			t.Fatalf("%s: %d Emit ops, want 1", name, emits)
		}
		if last := pp.Program.Ops[len(pp.Program.Ops)-1]; last.Kind != plan.Emit {
			t.Fatalf("%s: last op is %s, want Emit", name, last.Kind)
		}
		if tree := pp.Program.Tree(); !strings.Contains(tree, "Emit") {
			t.Fatalf("%s: Tree rendering missing Emit:\n%s", name, tree)
		}
	}
}

// The lowered programs must carry the engines' established phase
// vocabulary — finishReport buckets cost by these names, so a drift here
// silently moves seconds between report columns.
func TestLoweredPhaseNames(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	edges := testutil.RandEdges(rng, "E", 300, 25)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	cfg := smallCfg(3)

	phasesOf := func(name string) map[plan.Kind][]string {
		t.Helper()
		pp, err := Prepare(name, q, rels, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := make(map[plan.Kind][]string)
		for _, op := range pp.Program.Ops {
			out[op.Kind] = append(out[op.Kind], op.Phase)
		}
		return out
	}

	adj := phasesOf("ADJ")
	if got := adj[plan.Shuffle]; len(got) != 1 || got[0] != "shuffle" {
		t.Fatalf("ADJ shuffle phases = %v", got)
	}
	if got := adj[plan.LeapfrogCube]; len(got) != 1 || got[0] != "join" {
		t.Fatalf("ADJ leapfrog phases = %v", got)
	}

	spark := phasesOf("SparkSQL")
	for i, ph := range spark[plan.HashJoin] {
		if want := "join" + string(rune('1'+i)); ph != want {
			t.Fatalf("SparkSQL join %d phase = %q, want %q", i, ph, want)
		}
	}

	big := phasesOf("BigJoin")
	if got := big[plan.Scatter]; len(got) != 1 || got[0] != "round0" {
		t.Fatalf("BigJoin scatter phases = %v", got)
	}
	for _, ph := range big[plan.Extend] {
		if !strings.HasPrefix(ph, "round") || !strings.HasSuffix(ph, "/propose") {
			t.Fatalf("BigJoin propose phase = %q", ph)
		}
	}
	for _, ph := range big[plan.Semijoin] {
		if !strings.Contains(ph, "/verify") {
			t.Fatalf("BigJoin verify phase = %q", ph)
		}
	}
}

// A prepared execution must reproduce the direct run exactly — same
// results, same failure state, same shuffle volume — with the one intended
// difference: planning already happened, so the optimization phase reports
// (close to) zero for engines that charge planning up front.
func TestPreparedRunParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := testutil.RandEdges(rng, "E", 400, 30)
	q := hypergraph.Q2()
	rels := q.BindGraph(edges)
	cfg := smallCfg(3)
	for _, name := range AllEngineNames() {
		direct, err := Engines()[name](q, rels, cfg)
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		pp, err := Prepare(name, q, rels, cfg)
		if err != nil {
			t.Fatalf("%s prepare: %v", name, err)
		}
		pcfg := cfg
		pcfg.Prepared = pp
		warm, err := Engines()[name](q, rels, pcfg)
		if err != nil {
			t.Fatalf("%s prepared: %v", name, err)
		}
		if warm.Results != direct.Results {
			t.Fatalf("%s: prepared results=%d direct=%d", name, warm.Results, direct.Results)
		}
		if warm.Failed != direct.Failed {
			t.Fatalf("%s: prepared failed=%v direct=%v", name, warm.Failed, direct.Failed)
		}
		if warm.TuplesShuffled != direct.TuplesShuffled {
			t.Fatalf("%s: prepared shuffled=%d direct=%d", name, warm.TuplesShuffled, direct.TuplesShuffled)
		}
		if warm.Plan != direct.Plan {
			t.Fatalf("%s: prepared plan %q != direct %q", name, warm.Plan, direct.Plan)
		}
		// ADJ and Hybrid pay sampling at Prepare; the prepared run must not
		// pay it again. (The HCubeJ family charges share optimization inside
		// the shuffle, so it reports optimization seconds either way.)
		switch name {
		case "ADJ", "ADJ(comm-first)", "Hybrid":
			if warm.Optimization != 0 {
				t.Fatalf("%s: prepared run charged %.6fs optimization", name, warm.Optimization)
			}
			if direct.Optimization == 0 {
				t.Fatalf("%s: direct run charged no optimization", name)
			}
		}
	}
}

// Budget failures routed through the interpreter must keep the engines'
// established FailReason formats.
func TestInterpreterBudgetFailReasons(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges := testutil.RandEdges(rng, "E", 2000, 40)
	q := hypergraph.Q2()
	rels := q.BindGraph(edges)
	cfg := smallCfg(2)
	cfg.Budget = 40

	cases := []struct {
		engine string
		prefix string
	}{
		{"SparkSQL", "budget(intermediate "},
		{"BigJoin", "budget"}, // per-worker propose cap trips before the round check
		{"HCubeJ", "budget"},
	}
	for _, tc := range cases {
		rep, err := Engines()[tc.engine](q, rels, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.engine, err)
		}
		if !rep.Failed {
			t.Fatalf("%s: tiny budget did not fail (results=%d)", tc.engine, rep.Results)
		}
		if !strings.HasPrefix(rep.FailReason, tc.prefix) {
			t.Fatalf("%s: FailReason = %q, want prefix %q", tc.engine, rep.FailReason, tc.prefix)
		}
	}
}
