package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"adj/internal/cluster"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/testutil"
)

// detReport extracts the deterministic slice of a Report: result count,
// the full shuffle/message accounting, the block-cache structure counters
// and the sorted materialized output. Everything here must be invariant
// under scheduling mode and cube fan-out; only the measured seconds may
// differ between runs.
func detReport(t *testing.T, rep Report) string {
	t.Helper()
	out := ""
	if rep.Output != nil {
		out = rep.Output.Clone().SortDedup().String()
	}
	return fmt.Sprintf("results=%d failed=%v(%s) tuples=%d bytes=%d msgs=%d blocks=%d out=%s",
		rep.Results, rep.Failed, rep.FailReason,
		rep.TuplesShuffled, rep.BytesShuffled, rep.Messages, rep.CacheBlocks, out)
}

// The cached/scheduled execution path must be invisible in every
// deterministic report field: across all five engines, parallel scheduling
// (locality deques + stealing) vs Config.Sequential, and cube fan-outs 1
// and 4, the results, materialized outputs and cost-accounting counters
// must be identical.
func TestCacheSchedulerEquivalenceAllEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for iter := 0; iter < 3; iter++ {
		edges := testutil.RandEdges(rng, "E", 300+200*iter, int64(25+5*iter))
		for _, q := range []hypergraph.Query{hypergraph.Q1(), hypergraph.Q2()} {
			rels := q.BindGraph(edges)
			for name, run := range Engines() {
				var want string
				for _, cps := range []int{1, 4} {
					for _, sequential := range []bool{true, false} {
						cfg := smallCfg(3)
						cfg.CubesPerServer = cps
						cfg.Sequential = sequential
						cfg.CollectOutput = true
						rep, err := run(q, rels, cfg)
						if err != nil {
							t.Fatalf("iter=%d %s/%s cps=%d seq=%v: %v", iter, name, q.Name, cps, sequential, err)
						}
						// CubesPerServer changes the shuffle (finer cubes), so
						// only compare across scheduling modes within a fan-out;
						// result counts must agree across everything.
						got := detReport(t, rep)
						if sequential {
							want = got
							continue
						}
						if got != want {
							t.Fatalf("iter=%d %s/%s cps=%d: parallel differs from sequential:\n  seq: %s\n  par: %s",
								iter, name, q.Name, cps, want, got)
						}
					}
				}
			}
			// All engines and fan-outs agree on the count.
			var counts []int64
			for name, run := range Engines() {
				for _, cps := range []int{1, 4} {
					cfg := smallCfg(3)
					cfg.CubesPerServer = cps
					rep, err := run(q, rels, cfg)
					if err != nil {
						t.Fatalf("%s cps=%d: %v", name, cps, err)
					}
					counts = append(counts, rep.Results)
				}
			}
			for _, c := range counts[1:] {
				if c != counts[0] {
					t.Fatalf("iter=%d %s: engines disagree: %v", iter, q.Name, counts)
				}
			}
		}
	}
}

// Cached tries must equal rebuilt tries: for random instances and every
// shuffle kind, the per-cube tries assembled lazily from the shared block
// cache must enumerate exactly the tuples of the other kinds' cubes (Push
// and Pull rebuild from raw tuple blocks, Merge merges pre-built tries —
// three independent construction paths, one answer).
func TestCachedVsRebuiltCubeTries(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for iter := 0; iter < 10; iter++ {
		q, rels := testutil.RandQueryInstance(rng, 3, 4, 40, 8)
		order := q.Attrs()
		info := hcube.InfoOf(rels)
		n := 2 + rng.Intn(3)
		shares, err := hcube.Optimize(info, hcube.Config{
			Attrs: order, NumServers: n,
			MaxCubes: 2 * n, MinCubes: 2 * n, // force multi-cube workers
		})
		if err != nil {
			t.Fatal(err)
		}
		snaps := make(map[hcube.Kind]map[string]string)
		for _, kind := range []hcube.Kind{hcube.Push, hcube.Pull, hcube.Merge} {
			c := cluster.New(cluster.Config{N: n, Sequential: true})
			c.LoadDatabase(rels)
			if err := hcube.Run(c, "shuffle", hcube.Plan{
				Shares: shares, Rels: info, Kind: kind, TrieOrder: order,
			}); err != nil {
				t.Fatal(err)
			}
			snap := make(map[string]string)
			for _, w := range c.Workers {
				for _, cube := range allCubes(w) {
					tries, err := cubeTries(w, cube, info, order)
					if err != nil {
						t.Fatal(err)
					}
					for i, tr := range tries {
						snap[fmt.Sprintf("%s/%d", info[i].Name, cube)] = tr.ToRelation("x").String()
					}
				}
				// The cache invariant: every deposited block built at most
				// once (exactly once when all cubes were materialized above).
				st := w.Blocks.Stats()
				if st.Builds > st.Blocks {
					t.Fatalf("kind=%v worker=%d: %d builds for %d blocks", kind, w.ID, st.Builds, st.Blocks)
				}
			}
			snaps[kind] = snap
			c.Close()
		}
		for _, kind := range []hcube.Kind{hcube.Pull, hcube.Merge} {
			if len(snaps[kind]) != len(snaps[hcube.Push]) {
				t.Fatalf("iter=%d: %v has %d cube tries, push has %d",
					iter, kind, len(snaps[kind]), len(snaps[hcube.Push]))
			}
			for k, v := range snaps[hcube.Push] {
				if snaps[kind][k] != v {
					t.Fatalf("iter=%d: cube trie %s differs between push and %v:\n  push: %s\n  %v: %s",
						iter, k, kind, v, kind, snaps[kind][k])
				}
			}
		}
	}
}

// With multiple cubes per server on a shared-block workload the cache must
// actually be hit: blocks shared across cubes are built once and reused.
func TestCacheHitsWithCubeFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges := testutil.RandEdges(rng, "E", 1500, 45)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	cfg := smallCfg(4)
	cfg.CubesPerServer = 4
	rep, err := RunADJ(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheBlocks == 0 {
		t.Fatal("no blocks deposited in the cache")
	}
	if rep.TrieBuilds != rep.CacheBlocks {
		t.Fatalf("trie builds=%d, blocks=%d: each block must be built exactly once",
			rep.TrieBuilds, rep.CacheBlocks)
	}
	if rep.TrieCacheHits == 0 {
		t.Fatal("cube fan-out with shared blocks produced zero cache hits")
	}
}
