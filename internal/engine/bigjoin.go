package engine

import (
	"fmt"
	"sort"
	"strconv"

	"adj/internal/cluster"
	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// RunBigJoin is the multi-round distributed worst-case-optimal baseline
// (Ammar et al., PVLDB'18; §VII): the attribute order is processed one
// attribute per round. Partial bindings are distributed; each round a
// proposer relation (the smallest containing the attribute) generates
// candidate extensions, and every other relation containing the attribute
// verifies them via a shuffle to the worker owning the matching index
// partition. Low memory per round, but every round shuffles all partial
// bindings — the multi-round communication cost the one-round engines
// avoid. Planning lives in Prepare/lowerBigJoin; execution is the shared
// IR interpreter.
func RunBigJoin(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runEngine("BigJoin", q, rels, cfg)
}

// scatter distributes a coordinator-built relation round-robin as the
// workers' "bindings" fragments (counted as a broadcast-free placement).
func scatter(c *cluster.Cluster, phase string, r *relation.Relation) {
	frags := make([]*relation.Relation, c.N)
	for i := range frags {
		frags[i] = relation.New("bindings", r.Attrs...)
	}
	for i := 0; i < r.Len(); i++ {
		frags[i%c.N].AppendTuple(r.Tuple(i))
	}
	for i, w := range c.Workers {
		w.Rels["bindings"] = frags[i]
	}
}

// proposeRound extends every binding with the candidate values of the
// proposer relation. Bindings travel to the proposer's index partition;
// the proposer relation's fragments are indexed by their bound attributes
// within the same exchange (a self-contained simulation of BigJoin's
// pre-built indexes).
func proposeRound(c *cluster.Cluster, phase string, prop *relation.Relation, prefix []string, attr string, cfg Config) error {
	boundAttrs := sharedAttrs(prop.Attrs, prefix)
	newAttrs := append(append([]string(nil), prefix...), attr)

	return c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			// Ship proposer fragments partitioned by bound attrs (index build).
			if frag, ok := w.Rels[prop.Name]; ok {
				if len(boundAttrs) == 0 {
					// Unconstrained: broadcast the projection on attr.
					proj := frag.Project(attr)
					if proj.Len() > 0 {
						err := w.EncodeRelationChunks(proj, 0, func(payload []byte, lo, hi, chunk int) error {
							for to := 0; to < w.N; to++ {
								if err := s.Send(cluster.Envelope{
									To: to, Key: "idx", Chunk: int32(chunk),
									Payload: payload, Tuples: int64(hi - lo), Weight: partWeight(chunk),
								}); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							return err
						}
					}
				} else {
					parts := frag.PartitionBy(attrIdx(frag.Attrs, boundAttrs), w.N)
					if err := sendParts(w, s, parts, "idx"); err != nil {
						return err
					}
				}
			}
			// Ship bindings partitioned by the same key.
			if b, ok := w.Rels["bindings"]; ok && b.Len() > 0 {
				if len(boundAttrs) == 0 {
					// Keep bindings local; candidates are broadcast.
					err := w.EncodeRelationChunks(b, 0, func(payload []byte, lo, hi, chunk int) error {
						return s.Send(cluster.Envelope{
							To: w.ID, Key: "bind", Chunk: int32(chunk),
							Payload: payload, Tuples: int64(hi - lo), Weight: partWeight(chunk),
						})
					})
					if err != nil {
						return err
					}
				} else {
					parts := b.PartitionBy(attrIdx(b.Attrs, boundAttrs), w.N)
					if err := sendParts(w, s, parts, "bind"); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			idx := relation.New(prop.Name, prop.Attrs...)
			if len(boundAttrs) == 0 {
				idx = relation.New(prop.Name, attr)
			}
			binds := relation.New("bindings", prefix...)
			var scratch relation.Relation
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				var dst *relation.Relation
				switch e.Key {
				case "idx":
					dst = idx
				case "bind":
					dst = binds
				default:
					return fmt.Errorf("bigjoin propose: bad key %q", e.Key)
				}
				if err := relation.DecodeAppend(e.Payload, dst, &scratch); err != nil {
					return cluster.CorruptPayload("bigjoin exchange", err)
				}
			}
			// Build candidate lists per bound-key, aborting as soon as the
			// proposals alone exceed the budget (SparkSQL/BigJoin-style
			// blowups must fail fast, not after materializing everything).
			// Each binding extends into a run — the binding prefix repeated
			// over its candidate values — so the extension writes through
			// the columnar run writer and the round's output feeds the next
			// shuffle's EncodeRelation columnar-native, with no pivot.
			perWorkerCap := int64(0)
			if cfg.Budget > 0 {
				perWorkerCap = cfg.Budget
			}
			extended := relation.New("bindings", newAttrs...)
			cw := relation.NewColumnWriter(extended)
			overCap := func() bool {
				return perWorkerCap > 0 && int64(cw.Rows()) > perWorkerCap
			}
			if len(boundAttrs) == 0 {
				cands := idx.Distinct(attr)
				for i := 0; i < binds.Len(); i++ {
					cw.BeginRun(binds.Tuple(i))
					cw.AppendRun(cands)
					if overCap() {
						return ErrBudget
					}
				}
			} else {
				attrPos := idx.AttrIndex(attr)
				keyCols := attrIdx(idx.Attrs, boundAttrs)
				index := make(map[string][]relation.Value)
				kbuf := make([]relation.Value, len(boundAttrs))
				for i := 0; i < idx.Len(); i++ {
					t := idx.Tuple(i)
					for j, kc := range keyCols {
						kbuf[j] = t[kc]
					}
					k := keyString(kbuf)
					index[k] = append(index[k], t[attrPos])
				}
				for k := range index {
					vs := index[k]
					sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
					index[k] = dedupVals(vs)
				}
				bindCols := attrIdx(binds.Attrs, boundAttrs)
				for i := 0; i < binds.Len(); i++ {
					t := binds.Tuple(i)
					for j, bc := range bindCols {
						kbuf[j] = t[bc]
					}
					cands := index[keyString(kbuf)]
					if len(cands) == 0 {
						continue
					}
					cw.BeginRun(t)
					cw.AppendRun(cands)
					if overCap() {
						return ErrBudget
					}
				}
			}
			w.Rels["bindings"] = extended
			return nil
		})
}

// verifyRound filters extended bindings against one relation: bindings are
// shuffled to the partition owning the relation's matching tuples and kept
// only when the relation contains the projection.
func verifyRound(c *cluster.Cluster, phase string, ver *relation.Relation, prefix []string, attr string, cfg Config) error {
	checkAttrs := append(sharedAttrs(ver.Attrs, prefix), attr)
	return c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			if frag, ok := w.Rels[ver.Name]; ok {
				parts := frag.PartitionBy(attrIdx(frag.Attrs, checkAttrs), w.N)
				if err := sendParts(w, s, parts, "idx"); err != nil {
					return err
				}
			}
			if b, ok := w.Rels["bindings"]; ok && b.Len() > 0 {
				parts := b.PartitionBy(attrIdx(b.Attrs, checkAttrs), w.N)
				if err := sendParts(w, s, parts, "bind"); err != nil {
					return err
				}
			}
			return nil
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			var idx, binds *relation.Relation
			var scratch relation.Relation
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := relation.DecodeInto(e.Payload, &scratch); err != nil {
					return cluster.CorruptPayload("bigjoin exchange", err)
				}
				var dst **relation.Relation
				switch e.Key {
				case "idx":
					dst = &idx
				case "bind":
					dst = &binds
				default:
					return fmt.Errorf("bigjoin verify: bad key %q", e.Key)
				}
				if *dst == nil {
					*dst = relation.New(scratch.Name, scratch.Attrs...)
				}
				(*dst).AppendAll(&scratch)
			}
			if binds == nil {
				w.Rels["bindings"] = relation.New("bindings")
				return nil
			}
			if idx == nil {
				binds.SetData(binds.Data()[:0])
				w.Rels["bindings"] = binds
				return nil
			}
			keep := binds.Semijoin(idx, checkAttrs)
			keep.Name = "bindings"
			w.Rels["bindings"] = keep
			return nil
		})
}

func keyString(vals []relation.Value) string {
	b := make([]byte, 0, len(vals)*9)
	for _, v := range vals {
		b = strconv.AppendInt(b, int64(v), 36)
		b = append(b, '|')
	}
	return string(b)
}

func dedupVals(sorted []relation.Value) []relation.Value {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}
