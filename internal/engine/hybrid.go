package engine

import (
	"fmt"
	"sort"
	"strings"

	"adj/internal/costmodel"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/optimizer"
	"adj/internal/plan"
	"adj/internal/relation"
)

// RunHybrid executes the selectivity-routed binary/WCOJ engine: the query
// hypergraph is split by GYO ear decomposition into a cyclic core and
// acyclic ears, the sampling estimator prices a pure worst-case-optimal
// plan against the hybrid split, and the cheaper strategy wins. A hybrid
// plan semijoin-reduces core relations by their selective ears, runs the
// core as one optimized Merge shuffle + Leapfrog (kept worker-resident),
// then folds the ears back in with distributed hash joins — mixing both
// execution strategies inside a single plan, which only the shared IR
// makes expressible. Planning lives in lowerHybrid; execution is the
// shared IR interpreter.
func RunHybrid(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runEngine("Hybrid", q, rels, cfg)
}

// earSelectivity gates semijoin pre-reduction: an ear reduces a core
// relation only when it holds at most this fraction of the core
// relation's distinct join keys (fewer surviving keys → the reduction
// pays for its exchange).
const earSelectivity = 0.75

// lowerHybrid decomposes, prices and lowers the query. Returns the chosen
// Program plus the optimizer plan of its WCOJ part (nil for a pure binary
// route), for inspection and Explain.
func lowerHybrid(q hypergraph.Query, rels []*relation.Relation, cfg Config) (*plan.Program, *optimizer.Plan, error) {
	params := defaultParams(cfg)
	opt, err := optimizer.New(q, rels, optimizer.Options{
		Params:  params,
		Samples: cfg.Samples,
		Seed:    cfg.Seed,
		Cancel:  cancelOf(cfg),
	})
	if err != nil {
		return nil, nil, err
	}
	fullPlan, err := opt.CommunicationFirst()
	if err != nil {
		return nil, nil, err
	}
	if err := ctxErr(cfg); err != nil {
		return nil, nil, err
	}
	wcojCost := fullPlan.Est.Communication + orderCompCost(opt, fullPlan.AttrOrder, params)

	core, ears := earDecompose(q)

	// Fully acyclic: the whole query is ears. Route to pairwise hash joins
	// when the estimator prices them under the leapfrog, mirroring the
	// size-thresholded strategy switches unified architectures use.
	if len(core) == 0 {
		binOrder := binaryJoinOrder(rels)
		binCost := binaryChainCost(opt, q, rels, binOrder, params)
		if binCost < wcojCost {
			prog := lowerBinary(q, rels, binOrder)
			prog.Engine = "Hybrid"
			prog.Label = fmt.Sprintf("hybrid: binary (acyclic; binary=%.3gs wcoj=%.3gs) %s",
				binCost, wcojCost, prog.Label)
			for _, op := range prog.Ops {
				if op.Kind == plan.HashJoin {
					op.Cost.Seconds = 0 // priced as a chain, not per op
				}
			}
			return prog, nil, nil
		}
		prog := hybridWCOJProgram(q, rels, fullPlan, fmt.Sprintf(
			"hybrid: wcoj ord=%v (acyclic; wcoj=%.3gs binary=%.3gs)", fullPlan.AttrOrder, wcojCost, binCost))
		return prog, fullPlan, nil
	}

	// Fully cyclic: nothing to split; run the optimized pure WCOJ plan.
	if len(ears) == 0 {
		prog := hybridWCOJProgram(q, rels, fullPlan, fmt.Sprintf(
			"hybrid: wcoj ord=%v (cyclic core only)", fullPlan.AttrOrder))
		return prog, fullPlan, nil
	}

	// Mixed: price the split — Leapfrog over the cyclic core, hash joins
	// over the ears — against the pure strategies.
	//
	// Ears join back in reverse removal order: each ear's GYO witness is
	// the core or an ear removed after it, so the chain stays connected.
	tail := make([]int, len(ears))
	for i, ai := range ears {
		tail[len(ears)-1-i] = ai
	}

	// Selective-ear semijoin pre-reductions, materialized locally now:
	// planning already scans local relations (binaryJoinOrder's distinct
	// counts), and the reduced relations give the core optimizer honest
	// sizes and orders — pricing the unreduced core would bias the router
	// toward the pure plan the reductions exist to beat. Execution redoes
	// the reductions distributedly; this copy only feeds the estimator.
	reds, coreRels := planReductions(q, rels, core, tail)

	coreQ := hypergraph.Query{Name: q.Name, Atoms: make([]hypergraph.Atom, len(core))}
	for i, ai := range core {
		coreQ.Atoms[i] = q.Atoms[ai]
	}
	coreOpt, err := optimizer.New(coreQ, coreRels, optimizer.Options{
		Params:  params,
		Samples: cfg.Samples,
		Seed:    cfg.Seed,
		Cancel:  cancelOf(cfg),
	})
	if err != nil {
		return nil, nil, err
	}
	corePlan, err := coreOpt.CommunicationFirst()
	if err != nil {
		return nil, nil, err
	}
	if err := ctxErr(cfg); err != nil {
		return nil, nil, err
	}

	coreCost := corePlan.Est.Communication + orderCompCost(coreOpt, corePlan.AttrOrder, params)
	redCost := reductionCost(reds, rels, params)
	tailCost := hybridTailCost(opt, coreOpt, q, rels, corePlan.AttrOrder, tail, params)
	hybridCost := redCost + coreCost + tailCost

	if wcojCost <= hybridCost {
		prog := hybridWCOJProgram(q, rels, fullPlan, fmt.Sprintf(
			"hybrid: wcoj ord=%v (wcoj=%.3gs hybrid=%.3gs)", fullPlan.AttrOrder, wcojCost, hybridCost))
		return prog, fullPlan, nil
	}

	prog := buildHybridProgram(q, rels, core, tail, reds, corePlan, wcojCost, hybridCost)
	return prog, corePlan, nil
}

// reduction is one planned semijoin pre-reduction: core relation inName
// (the atom's relation or a previous reduction's output) shrunk by the
// ear at atom index earIdx on their shared attributes.
type reduction struct {
	coreIdx int // index into the core slice
	earIdx  int // atom index of the reducing ear
	inName  string
	outName string
	shared  []string
	est     int64 // exact local size of the reduced relation
}

// planReductions walks core × ears, chains every selective reduction and
// returns the plan plus the locally-materialized reduced core relations
// (for estimation only; unreduced cores pass through unchanged).
func planReductions(q hypergraph.Query, rels []*relation.Relation, core, tail []int) ([]reduction, []*relation.Relation) {
	var reds []reduction
	coreRels := make([]*relation.Relation, len(core))
	for i, ai := range core {
		coreRels[i] = rels[ai]
	}
	for i := range coreRels {
		name := q.Atoms[core[i]].Name
		for _, ei := range tail {
			ear := rels[ei]
			shared := sharedAttrs(coreRels[i].Attrs, ear.Attrs)
			if len(shared) == 0 {
				continue
			}
			if !earIsSelective(coreRels[i], ear, shared) {
				continue
			}
			reduced := coreRels[i].Semijoin(ear, shared)
			outName := name + "⋉" + ear.Name
			reduced.Name = outName
			reds = append(reds, reduction{
				coreIdx: i, earIdx: ei, inName: name, outName: outName,
				shared: shared, est: int64(reduced.Len()),
			})
			coreRels[i] = reduced
			name = outName
		}
	}
	return reds, coreRels
}

// reductionCost prices the planned reductions: each ships the core side
// plus the ear's distinct keys and materializes the survivors.
func reductionCost(reds []reduction, rels []*relation.Relation, p costmodel.Params) float64 {
	cost := 0.0
	for _, rd := range reds {
		if p.Alpha > 0 {
			cost += (float64(rels[rd.earIdx].Len()) + 2*float64(rd.est)) / p.Alpha
		}
	}
	return cost
}

// buildHybridProgram lowers the chosen split: the planned semijoin
// pre-reductions, the core's Merge shuffle + Leapfrog kept
// worker-resident, then the ear hash-join chain and the final gather.
func buildHybridProgram(q hypergraph.Query, rels []*relation.Relation,
	core, tail []int, reds []reduction, corePlan *optimizer.Plan, wcojCost, hybridCost float64) *plan.Program {

	coreNames := make([]string, len(core))
	for i, ai := range core {
		coreNames[i] = q.Atoms[ai].Name
	}
	earNames := make([]string, len(tail))
	for i, ai := range tail {
		earNames[i] = q.Atoms[ai].Name
	}
	label := fmt.Sprintf("hybrid: core=[%s] ord=%v ⋈ ears=[%s] (hybrid=%.3gs wcoj=%.3gs)",
		strings.Join(coreNames, " "), corePlan.AttrOrder, strings.Join(earNames, " "),
		hybridCost, wcojCost)
	prog := &plan.Program{Engine: "Hybrid", Label: label}

	// Semijoin pre-reduction ops, replaying the plan-time decisions: shrink
	// a core relation by a directly connected ear when the ear is selective
	// on their shared attributes. Always sound — the ear joins back in
	// later, so tuples the reduction drops could never reach the output.
	type coreRef struct {
		name    string
		attrs   []string
		size    int64
		dynamic bool
		lastOp  int // -1 when no reduction op produced it
	}
	refs := make([]coreRef, len(core))
	for i, ai := range core {
		refs[i] = coreRef{name: q.Atoms[ai].Name, attrs: q.Atoms[ai].Attrs,
			size: int64(rels[ai].Len()), lastOp: -1}
	}
	for n, rd := range reds {
		r := refs[rd.coreIdx]
		ear := rels[rd.earIdx]
		op := prog.Add(&plan.Op{
			Kind: plan.Semijoin, Phase: fmt.Sprintf("precompute/reduce%d", n+1),
			Strategy: "binary",
			Inputs:   inputsOf(r.lastOp),
			Left:     plan.Sig{Name: r.name, Attrs: r.attrs},
			Right:    plan.Sig{Name: ear.Name, Attrs: ear.Attrs},
			Out:      plan.Sig{Name: rd.outName, Attrs: r.attrs},
			Cost:     plan.Cost{Card: float64(rd.est)},
			Note:     "selective ear pre-reduction",
		})
		refs[rd.coreIdx] = coreRef{name: rd.outName, attrs: r.attrs,
			size: rd.est, dynamic: true, lastOp: op.ID}
	}

	// The core: one optimized Merge shuffle + Leapfrog, outputs kept
	// worker-resident as ~core to feed the ear joins.
	relRefs := make([]plan.RelRef, len(refs))
	var shuffleIns []int
	for i, r := range refs {
		relRefs[i] = plan.RelRef{Name: r.name, Attrs: r.attrs, Size: r.size, Dynamic: r.dynamic}
		if r.lastOp >= 0 {
			shuffleIns = append(shuffleIns, r.lastOp)
		}
	}
	sh := prog.Add(&plan.Op{
		Kind: plan.Shuffle, Phase: "shuffle",
		Inputs: shuffleIns, Rels: relRefs, Order: corePlan.AttrOrder,
		ShuffleKind: "merge", ReuseID: label,
		Cost: plan.Cost{Seconds: corePlan.Est.Communication},
	})
	bt := prog.Add(&plan.Op{Kind: plan.BuildTrie, Inputs: []int{sh.ID}, Order: corePlan.AttrOrder})
	lf := prog.Add(&plan.Op{
		Kind: plan.LeapfrogCube, Phase: "join", Strategy: "wcoj",
		Inputs: []int{bt.ID}, Order: corePlan.AttrOrder,
		StoreAs: "~core", BudgetLabel: "budget",
	})

	// The ears fold back in with distributed hash joins.
	accName := "~core"
	accAttrs := append([]string(nil), corePlan.AttrOrder...)
	last := lf.ID
	for step, ai := range tail {
		ear := q.Atoms[ai]
		outName := fmt.Sprintf("I%d", step+1)
		outAttrs := joinedAttrs(accAttrs, ear.Attrs)
		op := prog.Add(&plan.Op{
			Kind: plan.HashJoin, Phase: fmt.Sprintf("join%d", step+1), Strategy: "binary",
			Inputs:      []int{last},
			Left:        plan.Sig{Name: accName, Attrs: accAttrs},
			Right:       plan.Sig{Name: ear.Name, Attrs: ear.Attrs},
			Out:         plan.Sig{Name: outName, Attrs: outAttrs},
			BudgetLabel: "budget(intermediate %d tuples)",
		})
		last = op.ID
		accName = outName
		accAttrs = outAttrs
	}
	prog.Add(&plan.Op{
		Kind: plan.Emit, Inputs: []int{last},
		From: accName, ProjectOnto: q.Attrs(),
		Out: plan.Sig{Name: "out", Attrs: q.Attrs()},
	})
	return prog
}

func inputsOf(lastOp int) []int {
	if lastOp < 0 {
		return nil
	}
	return []int{lastOp}
}

// earIsSelective reports whether ear's distinct key set on the shared
// attributes is small relative to the core relation's — the plan-time
// proxy for "most core tuples drop".
func earIsSelective(coreRel, ear *relation.Relation, shared []string) bool {
	earKeys := ear.ProjectMulti(shared...).SortDedup().Len()
	coreKeys := coreRel.ProjectMulti(shared...).SortDedup().Len()
	if coreKeys == 0 {
		return false
	}
	return float64(earKeys) < earSelectivity*float64(coreKeys)
}

// hybridWCOJProgram lowers a pure worst-case-optimal route for the Hybrid
// engine: one optimized Merge shuffle of every relation, Leapfrog under
// the chosen order.
func hybridWCOJProgram(q hypergraph.Query, rels []*relation.Relation, opt *optimizer.Plan, label string) *plan.Program {
	prog := &plan.Program{Engine: "Hybrid", Label: label}
	infos := hcube.InfoOf(rels)
	refs := make([]plan.RelRef, len(infos))
	for i, ri := range infos {
		refs[i] = plan.RelRef{Name: ri.Name, Attrs: ri.Attrs, Size: ri.Size}
	}
	sh := prog.Add(&plan.Op{
		Kind: plan.Shuffle, Phase: "shuffle",
		Rels: refs, Order: opt.AttrOrder,
		ShuffleKind: "merge", ReuseID: label,
		Cost: plan.Cost{Seconds: opt.Est.Communication},
	})
	bt := prog.Add(&plan.Op{Kind: plan.BuildTrie, Inputs: []int{sh.ID}, Order: opt.AttrOrder})
	lf := prog.Add(&plan.Op{
		Kind: plan.LeapfrogCube, Phase: "join", Strategy: "wcoj",
		Inputs: []int{bt.ID}, Order: opt.AttrOrder,
		BudgetLabel: "budget",
	})
	prog.Add(&plan.Op{
		Kind: plan.Emit, Inputs: []int{lf.ID},
		Out: plan.Sig{Name: "out", Attrs: opt.AttrOrder},
	})
	return prog
}

// orderCompCost prices Leapfrog under an attribute order: the sum of
// estimated partial-binding counts over the order's proper prefixes,
// converted to seconds at the base extension rate.
func orderCompCost(opt *optimizer.Optimizer, order []string, p costmodel.Params) float64 {
	cost := 0.0
	for i := 1; i < len(order); i++ {
		cost += costmodel.ExtendCost(opt.SubsetSize(order[:i]), p.BetaBase, p.NumServers)
	}
	return cost
}

// binaryChainCost prices a pairwise hash-join chain: each step shuffles
// both inputs and materializes the estimated intermediate.
func binaryChainCost(opt *optimizer.Optimizer, q hypergraph.Query, rels []*relation.Relation,
	order []int, p costmodel.Params) float64 {

	cost := 0.0
	accAttrs := append([]string(nil), rels[order[0]].Attrs...)
	cur := float64(rels[order[0]].Len())
	for _, idx := range order[1:] {
		next := rels[idx]
		accAttrs = joinedAttrs(accAttrs, next.Attrs)
		out := opt.SubsetSize(queryAttrsIn(q, accAttrs))
		cost += stepCost(cur, float64(next.Len()), out, p)
		cur = out
	}
	return cost
}

// hybridTailCost prices the ear hash-join chain stitched onto the core's
// Leapfrog output.
func hybridTailCost(opt, coreOpt *optimizer.Optimizer, q hypergraph.Query, rels []*relation.Relation,
	coreOrder []string, tail []int, p costmodel.Params) float64 {

	cost := 0.0
	accAttrs := append([]string(nil), coreOrder...)
	cur := coreOpt.SubsetSize(coreOrder)
	for _, ai := range tail {
		ear := rels[ai]
		accAttrs = joinedAttrs(accAttrs, ear.Attrs)
		out := opt.SubsetSize(queryAttrsIn(q, accAttrs))
		cost += stepCost(cur, float64(ear.Len()), out, p)
		cur = out
	}
	return cost
}

// stepCost prices one distributed hash join: shuffle both inputs plus the
// output at the network rate, probe at the join rate.
func stepCost(left, right, out float64, p costmodel.Params) float64 {
	comm := 0.0
	if p.Alpha > 0 {
		comm = (left + right + out) / p.Alpha
	}
	return comm + costmodel.ExtendCost(out, p.JoinRate, p.NumServers)
}

// queryAttrsIn returns the members of set in the query's canonical
// attribute order (SubsetSize keys are order-independent, but a canonical
// order keeps the memo hits aligned with the optimizer's own probes).
func queryAttrsIn(q hypergraph.Query, set []string) []string {
	in := make(map[string]bool, len(set))
	for _, a := range set {
		in[a] = true
	}
	var out []string
	for _, a := range q.Attrs() {
		if in[a] {
			out = append(out, a)
		}
	}
	return out
}

// earDecompose runs GYO ear removal on the query hypergraph: an atom is
// an ear when every attribute it holds is either exclusive to it or
// contained in a single witness atom still alive. Repeated removal leaves
// the cyclic core (empty for α-acyclic queries). Ears are returned in
// removal order; the core in atom order.
func earDecompose(q hypergraph.Query) (core, ears []int) {
	n := len(q.Atoms)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	left := n
	for left > 1 {
		removed := -1
		// Attribute occurrence counts among live atoms.
		occ := make(map[string]int)
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for _, a := range q.Atoms[i].Attrs {
				occ[a]++
			}
		}
		for i := 0; i < n && removed < 0; i++ {
			if !alive[i] {
				continue
			}
			var sharedA []string
			for _, a := range q.Atoms[i].Attrs {
				if occ[a] > 1 {
					sharedA = append(sharedA, a)
				}
			}
			if len(sharedA) == 0 {
				removed = i // isolated atom: trivially an ear
				break
			}
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				if containsAll(q.Atoms[j].Attrs, sharedA) {
					removed = i
					break
				}
			}
		}
		if removed < 0 {
			break
		}
		alive[removed] = false
		ears = append(ears, removed)
		left--
	}
	if left == 1 {
		// The last atom standing is always an ear: the query was acyclic.
		for i := 0; i < n; i++ {
			if alive[i] {
				alive[i] = false
				ears = append(ears, i)
			}
		}
		left = 0
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			core = append(core, i)
		}
	}
	sort.Ints(core)
	return core, ears
}

func containsAll(attrs, want []string) bool {
	for _, w := range want {
		found := false
		for _, a := range attrs {
			if a == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
