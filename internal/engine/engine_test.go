package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adj/internal/cluster"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/relation"
	"adj/internal/testutil"
)

func smallCfg(n int) Config {
	return Config{NumServers: n, Samples: 200, Seed: 1}
}

// Every engine must produce the naive join's result count on the triangle
// query over a fixed random graph.
func TestAllEnginesTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	edges := testutil.RandEdges(rng, "E", 500, 30)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())
	if want == 0 {
		t.Fatal("test instance should have triangles")
	}
	for name, run := range Engines() {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			rep, err := run(q, rels, smallCfg(4))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed {
				t.Fatalf("failed: %s", rep.FailReason)
			}
			if rep.Results != want {
				t.Fatalf("results=%d want %d\nplan: %s", rep.Results, want, rep.Plan)
			}
		})
	}
}

// The central cross-engine property: all five engines agree with the naive
// oracle on random queries, databases and cluster sizes.
func TestEnginesAgreeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runs := map[string]RunFunc{
		"ADJ":          RunADJ,
		"HCubeJ":       RunHCubeJ,
		"HCubeJ+Cache": RunHCubeJCache,
		"BigJoin":      RunBigJoin,
		"SparkSQL":     RunBinaryJoin,
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandQueryInstance(rng, 4, 4, 25, 6)
		n := 1 + rng.Intn(4)
		want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())
		for name, run := range runs {
			rep, err := run(q, rels, Config{NumServers: n, Samples: 60, Seed: seed})
			if err != nil {
				t.Logf("seed=%d n=%d %s: error %v", seed, n, name, err)
				return false
			}
			if rep.Failed {
				t.Logf("seed=%d n=%d %s: failed %s", seed, n, name, rep.FailReason)
				return false
			}
			if rep.Results != want {
				t.Logf("seed=%d n=%d %s: results=%d want %d (q=%s, plan=%s)",
					seed, n, name, rep.Results, want, q, rep.Plan)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// ADJ's materialized output must equal the oracle's tuples, not just the
// count.
func TestADJOutputTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, rels := testutil.RandQueryInstance(rng, 3, 4, 30, 6)
	cfg := smallCfg(3)
	cfg.CollectOutput = true
	rep, err := RunADJ(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NaiveJoin(rels, q.Attrs())
	got := rep.Output
	// ADJ's output order follows its chosen attribute order; project back.
	got = got.ProjectMulti(q.Attrs()...).SortDedup()
	if got.Len() != want.Len() {
		t.Fatalf("output %d tuples, want %d", got.Len(), want.Len())
	}
	if !got.Equal(want.Renamed(got.Name)) {
		t.Fatal("output tuples differ from oracle")
	}
}

func TestADJWithPaperExample(t *testing.T) {
	// The running example (Eq. 2 / Fig. 2): ADJ should consider
	// pre-computing R2⋈R3 and/or R4⋈R5 and still return the right answer.
	q := hypergraph.PaperExample()
	rng := rand.New(rand.NewSource(9))
	db := hypergraph.Database{}
	for _, a := range q.Atoms {
		db[a.Name] = testutil.RandRelation(rng, a.Name, a.Attrs, 60, 6).SortDedup()
	}
	rels, err := q.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())
	rep, err := RunADJ(q, rels, smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != want {
		t.Fatalf("results=%d want %d (plan %s)", rep.Results, want, rep.Plan)
	}
}

func TestBudgetFailureReported(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	edges := testutil.RandEdges(rng, "E", 2000, 40)
	q := hypergraph.Q2()
	rels := q.BindGraph(edges)
	cfg := smallCfg(2)
	cfg.Budget = 50
	for _, run := range []RunFunc{RunBinaryJoin, RunBigJoin, RunHCubeJ} {
		rep, err := run(q, rels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Failed {
			t.Fatalf("%s: tiny budget should fail, got %d results", rep.Engine, rep.Results)
		}
	}
}

func TestMemoryFailureReported(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	edges := testutil.RandEdges(rng, "E", 3000, 60)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	cfg := smallCfg(2)
	cfg.MemoryPerServer = 10 // absurd: nothing fits
	rep, err := RunHCubeJ(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed || rep.FailReason != "memory" {
		t.Fatalf("expected memory failure, got %+v", rep)
	}
}

func TestBinaryJoinShufflesMoreThanOneRound(t *testing.T) {
	// Fig. 1(a): on a cyclic query the multi-round baseline shuffles far
	// more tuples than the one-round engines.
	rng := rand.New(rand.NewSource(13))
	edges := testutil.RandEdges(rng, "E", 1500, 50)
	q := hypergraph.Q5()
	rels := q.BindGraph(edges)
	bj, err := RunBinaryJoin(q, rels, smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	hc, err := RunHCubeJ(q, rels, smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if bj.Failed || hc.Failed {
		t.Skipf("instance too heavy: bj=%v hc=%v", bj.FailReason, hc.FailReason)
	}
	if bj.TuplesShuffled <= hc.TuplesShuffled {
		t.Fatalf("multi-round shuffled %d <= one-round %d", bj.TuplesShuffled, hc.TuplesShuffled)
	}
}

func TestADJOverTCPTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	edges := testutil.RandEdges(rng, "E", 300, 25)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())

	tr, err := cluster.NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(3)
	cfg.Transport = tr
	rep, err := RunADJ(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != want {
		t.Fatalf("TCP run: results=%d want %d", rep.Results, want)
	}
}

func TestShuffleKindOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	edges := testutil.RandEdges(rng, "E", 400, 25)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())
	for _, kind := range []hcube.Kind{hcube.Push, hcube.Pull, hcube.Merge} {
		kind := kind
		cfg := smallCfg(4)
		cfg.ShuffleKind = &kind
		rep, err := RunHCubeJ(q, rels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Results != want {
			t.Fatalf("kind=%v results=%d want %d", kind, rep.Results, want)
		}
	}
}

func TestRealParallelMode(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	edges := testutil.RandEdges(rng, "E", 400, 25)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())
	cfg := smallCfg(4)
	cfg.RealParallel = true
	rep, err := RunADJ(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results != want {
		t.Fatalf("parallel mode results=%d want %d", rep.Results, want)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Engine: "ADJ", Query: "Q1", Results: 5}
	if r.String() == "" || r.Total() != 0 {
		t.Fatal("report rendering broken")
	}
	r.Failed = true
	r.FailReason = "budget"
	if r.String() == "" {
		t.Fatal("failed report rendering broken")
	}
}

func TestEngineNamesComplete(t *testing.T) {
	reg := Engines()
	for _, n := range AllEngineNames() {
		if _, ok := reg[n]; !ok {
			t.Fatalf("engine %q missing from registry", n)
		}
	}
	if len(reg) != len(AllEngineNames()) {
		t.Fatalf("registry size %d != names %d", len(reg), len(AllEngineNames()))
	}
	// The paper's five stay a prefix of the full list, in its order.
	for i, n := range EngineNames() {
		if AllEngineNames()[i] != n {
			t.Fatalf("AllEngineNames()[%d] = %q, want %q", i, AllEngineNames()[i], n)
		}
	}
}

// Multiple cubes per server (skew mitigation) must not change results.
func TestCubesPerServerCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	edges := testutil.RandEdges(rng, "E", 600, 30)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())
	for _, cps := range []int{1, 2, 4} {
		cfg := smallCfg(3)
		cfg.CubesPerServer = cps
		for _, run := range []RunFunc{RunADJ, RunHCubeJ} {
			rep, err := run(q, rels, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Results != want {
				t.Fatalf("%s cps=%d: results=%d want %d", rep.Engine, cps, rep.Results, want)
			}
		}
	}
}

// ADJ's comm-first variant must agree with co-opt on results.
func TestADJCommFirstParity(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	edges := testutil.RandEdges(rng, "E", 500, 25)
	q := hypergraph.Q5()
	rels := q.BindGraph(edges)
	co, err := RunADJ(q, rels, smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	cf, err := RunADJCommFirst(q, rels, smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if co.Results != cf.Results {
		t.Fatalf("co-opt %d vs comm-first %d", co.Results, cf.Results)
	}
	if cf.PreComputing != 0 {
		t.Fatal("comm-first must not pre-compute")
	}
}

// Engines must also agree on mixed-arity random instances.
func TestEnginesAgreeMixedArity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, rels := testutil.RandMixedQueryInstance(rng, 3, 4, 20, 5)
		want := int64(relation.NaiveJoin(rels, q.Attrs()).Len())
		for _, run := range []RunFunc{RunADJ, RunHCubeJ, RunBigJoin, RunBinaryJoin} {
			rep, err := run(q, rels, Config{NumServers: 3, Samples: 60, Seed: seed})
			if err != nil || rep.Failed || rep.Results != want {
				if err != nil {
					t.Logf("seed=%d %s: %v", seed, rep.Engine, err)
				} else {
					t.Logf("seed=%d %s: results=%d want=%d failed=%v q=%s", seed, rep.Engine, rep.Results, want, rep.Failed, q)
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
