package engine

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"adj/internal/cluster"
	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// RunBinaryJoin is the SparkSQL-style baseline (§VII): the query is
// decomposed into a sequence of distributed binary hash joins, shuffling
// every intermediate result. On cyclic queries the intermediates explode —
// exactly the failure mode Fig. 12 shows for SparkSQL.
//
// The join order is greedy: start from the smallest relation, repeatedly
// join with the connected relation minimizing a textbook size estimate
// (|A|·|B| / max distinct on the join key) — the style of plan a
// cost-based pairwise optimizer would emit.
func RunBinaryJoin(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{Engine: "SparkSQL", Query: q.Name, Servers: cfg.NumServers}
	c, release := clusterFor(cfg)
	defer release()
	c.LoadDatabase(rels)

	t0 := time.Now()
	var order []int
	if pp := preparedFor(cfg, "SparkSQL"); pp != nil && len(pp.JoinOrder) > 0 {
		order = pp.JoinOrder
	} else {
		order = binaryJoinOrder(rels)
	}
	chargeSeconds(c, "optimize", t0)
	var names []string
	for _, i := range order {
		names = append(names, rels[i].Name)
	}
	rep.Plan = "pairwise: " + strings.Join(names, " ⋈ ")

	accName := rels[order[0]].Name
	accAttrs := append([]string(nil), rels[order[0]].Attrs...)
	for step, idx := range order[1:] {
		if err := ctxErr(cfg); err != nil {
			return rep, err
		}
		next := rels[idx]
		outName := fmt.Sprintf("I%d", step+1)
		size, err := distributedJoin(c, fmt.Sprintf("join%d", step+1),
			accName, accAttrs, next.Name, next.Attrs, outName, cfg.Budget)
		if err != nil {
			if errors.Is(err, ErrBudget) {
				rep.Failed = true
				rep.FailReason = fmt.Sprintf("budget(intermediate %d tuples)", size)
				finishReport(&rep, c.Metrics)
				return rep, nil
			}
			return rep, err
		}
		accName = outName
		accAttrs = joinedAttrs(accAttrs, next.Attrs)
	}

	rep.Results = c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(accName)) })
	if cfg.CollectOutput {
		out := relation.New("out", q.Attrs()...)
		for _, w := range c.Workers {
			if frag, ok := w.Rels[accName]; ok {
				out.AppendAll(frag.ProjectMulti(q.Attrs()...))
			}
		}
		rep.Output = out
	}
	finishReport(&rep, c.Metrics)
	return rep, nil
}

// binaryJoinOrder returns a greedy connected pairwise order over relation
// indexes.
func binaryJoinOrder(rels []*relation.Relation) []int {
	n := len(rels)
	used := make([]bool, n)
	// Start at the smallest relation.
	start := 0
	for i := 1; i < n; i++ {
		if rels[i].Len() < rels[start].Len() {
			start = i
		}
	}
	order := []int{start}
	used[start] = true
	attrs := append([]string(nil), rels[start].Attrs...)
	for len(order) < n {
		best := -1
		bestCost := 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			shared := sharedAttrs(attrs, rels[i].Attrs)
			var cost float64
			if len(shared) == 0 {
				cost = 1e30 * float64(rels[i].Len()+1) // cross product: last resort
			} else {
				// |A ⋈ B| ≈ |A|·|B| / max(d_A(key), d_B(key)): the classic
				// independence estimate (the style whose errors §IV criticizes).
				d := 1
				for _, a := range shared {
					di := distinctOf(rels[i], a)
					if di > d {
						d = di
					}
				}
				cost = float64(rels[i].Len()) / float64(d)
			}
			if best < 0 || cost < bestCost {
				best = i
				bestCost = cost
			}
		}
		order = append(order, best)
		used[best] = true
		attrs = joinedAttrs(attrs, rels[best].Attrs)
	}
	return order
}

func distinctOf(r *relation.Relation, attr string) int {
	return len(r.Distinct(attr))
}
