package engine

import (
	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// RunBinaryJoin is the SparkSQL-style baseline (§VII): the query is
// decomposed into a sequence of distributed binary hash joins, shuffling
// every intermediate result. On cyclic queries the intermediates explode —
// exactly the failure mode Fig. 12 shows for SparkSQL. Planning lives in
// binaryJoinOrder/lowerBinary; execution is the shared IR interpreter.
func RunBinaryJoin(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error) {
	return runEngine("SparkSQL", q, rels, cfg)
}

// binaryJoinOrder returns a greedy connected pairwise order over relation
// indexes: start from the smallest relation, repeatedly join with the
// connected relation minimizing a textbook size estimate
// (|A|·|B| / max distinct on the join key) — the style of plan a
// cost-based pairwise optimizer would emit.
func binaryJoinOrder(rels []*relation.Relation) []int {
	n := len(rels)
	used := make([]bool, n)
	// Start at the smallest relation.
	start := 0
	for i := 1; i < n; i++ {
		if rels[i].Len() < rels[start].Len() {
			start = i
		}
	}
	order := []int{start}
	used[start] = true
	attrs := append([]string(nil), rels[start].Attrs...)
	for len(order) < n {
		best := -1
		bestCost := 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			shared := sharedAttrs(attrs, rels[i].Attrs)
			var cost float64
			if len(shared) == 0 {
				cost = 1e30 * float64(rels[i].Len()+1) // cross product: last resort
			} else {
				// |A ⋈ B| ≈ |A|·|B| / max(d_A(key), d_B(key)): the classic
				// independence estimate (the style whose errors §IV criticizes).
				d := 1
				for _, a := range shared {
					di := distinctOf(rels[i], a)
					if di > d {
						d = di
					}
				}
				cost = float64(rels[i].Len()) / float64(d)
			}
			if best < 0 || cost < bestCost {
				best = i
				bestCost = cost
			}
		}
		order = append(order, best)
		used[best] = true
		attrs = joinedAttrs(attrs, rels[best].Attrs)
	}
	return order
}

func distinctOf(r *relation.Relation, attr string) int {
	return len(r.Distinct(attr))
}
