package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"adj/internal/blockcache"
)

// cubeTokens bounds concurrent cube joins process-wide at GOMAXPROCS.
// cluster.Parallel already runs one goroutine per simulated worker, so
// without a shared bound an N-worker run would schedule up to
// N×GOMAXPROCS CPU-bound goroutines; the semaphore keeps real concurrency
// at the hardware's level while still letting an idle worker's capacity
// flow to a worker stuck on skewed cubes.
var cubeTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// runCubes executes fn(0..n-1). In parallel mode the tasks are spread over
// per-goroutine deques seeded by a locality- and cost-aware partitioner:
// cubes sharing the most (relation, block) fragments land on the same
// deque (blocksOf supplies each cube's block working set; nil means no
// locality signal and the partitioner just balances load), while each
// cube's estimated work (weightOf: summed block sizes; nil means unit
// weights) balances the deques by load rather than cube count, so a
// skewed hub's heavy cubes spread up front instead of leaning on
// stealing. Each goroutine drains its own deque front-to-back — so a cube
// usually follows a cube whose block tries are already hot in its cache —
// and when idle steals from the back of the richest victim, so a
// goroutine stuck on a heavy (skewed) cube never strands the work queued
// behind it. The first error wins and remaining goroutines drain without
// starting new work.
//
// sequential runs the deterministic in-order loop (cube 0, 1, …) — the
// exact legacy path, byte-identical scheduling.
//
// cancelled, when non-nil, is polled before each cube starts (both modes);
// once it reports true no further cubes run and the scheduler returns the
// first error its workers produced (typically the join's cancellation
// error). Cubes already in flight finish through their own cancel polling.
func runCubes(n int, sequential bool, cancelled func() bool, blocksOf func(ci int) []blockcache.Key, weightOf func(ci int) int64, fn func(ci int) error) error {
	if n == 0 {
		return nil
	}
	par := runtime.GOMAXPROCS(0)
	if par > n {
		par = n
	}
	if sequential || par <= 1 || n == 1 {
		for ci := 0; ci < n; ci++ {
			if cancelled != nil && cancelled() {
				return nil
			}
			if err := fn(ci); err != nil {
				return err
			}
		}
		return nil
	}
	deques := make([]cubeDeque, par)
	for qi, cubes := range partitionCubes(n, par, blocksOf, weightOf) {
		deques[qi].items = cubes
	}
	var failed atomic.Bool
	errs := make([]error, par)
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for !failed.Load() {
				if cancelled != nil && cancelled() {
					return
				}
				ci, ok := deques[g].popFront()
				if !ok {
					ci, ok = stealRichest(deques, g)
					if !ok {
						return // every deque drained
					}
				}
				cubeTokens <- struct{}{}
				err := fn(ci)
				<-cubeTokens
				if err != nil {
					errs[g] = err
					failed.Store(true)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// partitionCubes assigns cubes 0..n-1 to nq bounded deques: each cube goes
// to the queue whose already-assigned cubes share the most block keys with
// it (ties break toward the queue with the least accumulated work, then
// the lowest index — fully deterministic). Queues are bounded by load, not
// count: a queue whose summed cube weight has reached twice the fair share
// of the total stops accepting seeds, so a skewed hub's heavy cubes are
// spread across queues up front rather than piling behind one goroutine
// and leaning on work-stealing. weightOf supplies the per-cube work
// estimate (summed block sizes); nil means unit weights, which reduces to
// the count-balanced bound. A cube rejected by every bounded queue falls
// back to the least-loaded queue, so every cube is always placed.
func partitionCubes(n, nq int, blocksOf func(ci int) []blockcache.Key, weightOf func(ci int) int64) [][]int {
	queues := make([][]int, nq)
	if blocksOf == nil && weightOf == nil {
		// No locality or cost signal: deal contiguous runs (neighbouring
		// cube ids tend to decode from the same exchange region).
		for ci := 0; ci < n; ci++ {
			qi := ci * nq / n
			queues[qi] = append(queues[qi], ci)
		}
		return queues
	}
	// Evaluate each cube's weight exactly once: weightOf is typically
	// Registry.CubeWeight, a locked block-list walk. A zero estimate
	// (empty or unsized cube) still occupies a slot.
	weights := make([]int64, n)
	var total int64
	for ci := 0; ci < n; ci++ {
		w := int64(1)
		if weightOf != nil {
			if est := weightOf(ci); est > 0 {
				w = est
			}
		}
		weights[ci] = w
		total += w
	}
	// Load bound: twice the fair share (rounded up), so locality clustering
	// cannot starve the other workers of seed work while heavy cubes still
	// spread. Total capacity is ≥ 2×total, so at most the fallback path is
	// ever needed for rounding edge cases.
	bound := 2 * ((total + int64(nq) - 1) / int64(nq))
	sets := make([]map[blockcache.Key]struct{}, nq)
	for qi := range sets {
		sets[qi] = make(map[blockcache.Key]struct{})
	}
	load := make([]int64, nq)
	leastLoaded := func() int {
		best := 0
		for qi := 1; qi < nq; qi++ {
			if load[qi] < load[best] {
				best = qi
			}
		}
		return best
	}
	for ci := 0; ci < n; ci++ {
		var keys []blockcache.Key
		if blocksOf != nil {
			keys = blocksOf(ci)
		}
		w := weights[ci]
		best, bestScore := -1, -1
		for qi := 0; qi < nq; qi++ {
			if load[qi]+w > bound {
				continue
			}
			score := 0
			for _, k := range keys {
				if _, ok := sets[qi][k]; ok {
					score++
				}
			}
			if score > bestScore ||
				(score == bestScore && best >= 0 && load[qi] < load[best]) {
				best, bestScore = qi, score
			}
		}
		if best < 0 { // every queue at the load bound: place by least load
			best = leastLoaded()
		}
		queues[best] = append(queues[best], ci)
		load[best] += w
		for _, k := range keys {
			sets[best][k] = struct{}{}
		}
	}
	return queues
}

// cubeDeque is one goroutine's bounded work queue. The owner pops from the
// front (preserving the partitioner's locality order); thieves steal from
// the back, taking the cubes least related to what the owner is about to
// run. Cube joins are coarse tasks, so a mutex per operation is in the
// noise.
type cubeDeque struct {
	mu    sync.Mutex
	items []int
}

func (q *cubeDeque) popFront() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	ci := q.items[0]
	q.items = q.items[1:]
	return ci, true
}

func (q *cubeDeque) stealBack() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	ci := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return ci, true
}

func (q *cubeDeque) size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// stealRichest takes one cube from the back of the fullest other deque.
// Sizes race with concurrent pops, so the attempt loops until a steal
// lands or every deque reads empty (at which point all tasks are claimed
// and the caller can retire).
func stealRichest(deques []cubeDeque, self int) (int, bool) {
	for {
		victim, most := -1, 0
		for qi := range deques {
			if qi == self {
				continue
			}
			if s := deques[qi].size(); s > most {
				victim, most = qi, s
			}
		}
		if victim < 0 {
			return 0, false
		}
		if ci, ok := deques[victim].stealBack(); ok {
			return ci, true
		}
	}
}
