package engine

import (
	"fmt"
	"strings"

	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/optimizer"
	"adj/internal/plan"
	"adj/internal/relation"
)

// This file holds the lowering pass: each engine's planner turns its
// planning artifact (GHD plan, attribute order, join order) into the
// physical plan.Program the shared IR interpreter executes. The engines'
// run functions are one-line shims over runEngine; everything
// engine-specific lives in its lower function.

// lowerADJ lowers ADJ's co-optimized (or communication-first) GHD plan:
// per-bag pre-computation as distributed HashJoin chains canonicalized by
// a Project, one optimized Merge shuffle of the rewritten query Qi, and
// Leapfrog under the plan's valid attribute order.
func lowerADJ(q hypergraph.Query, rels []*relation.Relation, opt *optimizer.Plan) *plan.Program {
	prog := &plan.Program{Engine: "ADJ", Label: opt.String()}

	// Pre-computing: materialize each chosen bag with a chain of
	// distributed binary joins, then canonicalize the fragment schema to
	// the bag's sorted vertex order so HCube hashes columns consistently.
	bagNames := make(map[int]string)
	bagOps := make(map[int]int)
	for _, id := range opt.Precompute {
		bag := opt.Decomp.Bags[id]
		outName := optimizer.BagRelationName(opt.Decomp, id)
		bagNames[id] = outName
		accName := q.Atoms[bag.Atoms[0]].Name
		accAttrs := append([]string(nil), q.Atoms[bag.Atoms[0]].Attrs...)
		var chain []int
		for step, ai := range bag.Atoms[1:] {
			next := q.Atoms[ai]
			stepOut := outName
			if step < len(bag.Atoms)-2 {
				stepOut = outName + "~" + next.Name
			}
			outAttrs := joinedAttrs(accAttrs, next.Attrs)
			op := prog.Add(&plan.Op{
				Kind: plan.HashJoin, Phase: "precompute", Strategy: "binary",
				Inputs:      chainTail(chain),
				Left:        plan.Sig{Name: accName, Attrs: accAttrs},
				Right:       plan.Sig{Name: next.Name, Attrs: next.Attrs},
				Out:         plan.Sig{Name: stepOut, Attrs: outAttrs},
				BudgetLabel: "budget(precompute)",
			})
			chain = append(chain, op.ID)
			accName = stepOut
			accAttrs = outAttrs
		}
		canon := prog.Add(&plan.Op{
			Kind: plan.Project, Phase: "precompute/canon",
			Inputs: chainTail(chain),
			Left:   plan.Sig{Name: outName, Attrs: accAttrs},
			Out:    plan.Sig{Name: outName, Attrs: bag.Vertices},
		})
		bagOps[id] = canon.ID
	}

	// The rewritten query Qi's relation set, in bag order: pre-computed
	// bags contribute their materialized relation (size re-gathered at run
	// time), other bags their base relations.
	var refs []plan.RelRef
	var shuffleIns []int
	for _, bag := range opt.Decomp.Bags {
		if nm, ok := bagNames[bag.ID]; ok {
			refs = append(refs, plan.RelRef{Name: nm, Attrs: bag.Vertices, Dynamic: true})
			shuffleIns = append(shuffleIns, bagOps[bag.ID])
			continue
		}
		for _, ai := range bag.Atoms {
			r := rels[ai]
			refs = append(refs, plan.RelRef{Name: r.Name, Attrs: r.Attrs, Size: int64(r.Len())})
		}
	}

	sh := prog.Add(&plan.Op{
		Kind: plan.Shuffle, Phase: "shuffle",
		Inputs: shuffleIns, Rels: refs, Order: opt.AttrOrder,
		ShuffleKind: "merge", ReuseID: opt.String(),
		Cost: plan.Cost{Seconds: opt.Est.Communication},
	})
	bt := prog.Add(&plan.Op{Kind: plan.BuildTrie, Inputs: []int{sh.ID}, Order: opt.AttrOrder})
	lf := prog.Add(&plan.Op{
		Kind: plan.LeapfrogCube, Phase: "join", Strategy: "wcoj",
		Inputs: []int{bt.ID}, Order: opt.AttrOrder,
		BudgetLabel: "budget",
		Cost:        plan.Cost{Seconds: opt.Est.Computation},
	})
	prog.Add(&plan.Op{
		Kind: plan.Emit, Inputs: []int{lf.ID},
		Out: plan.Sig{Name: "out", Attrs: opt.AttrOrder},
	})
	return prog
}

// chainTail returns the last op of a chain as an input list (empty chain →
// no inputs).
func chainTail(chain []int) []int {
	if len(chain) == 0 {
		return nil
	}
	return []int{chain[len(chain)-1]}
}

// lowerHCubeJ lowers the one-round communication-first baseline: a single
// Push shuffle of every base relation (share optimization charged to the
// optimize phase, shares folded into the run's plan label) and plain — or
// level-cached — Leapfrog per cube.
func lowerHCubeJ(name string, rels []*relation.Relation, opt *optimizer.Plan, cached bool) *plan.Program {
	prog := &plan.Program{Engine: name, Label: fmt.Sprintf("ord=%v", opt.AttrOrder)}
	infos := hcube.InfoOf(rels)
	refs := make([]plan.RelRef, len(infos))
	for i, ri := range infos {
		refs[i] = plan.RelRef{Name: ri.Name, Attrs: ri.Attrs, Size: ri.Size}
	}
	sh := prog.Add(&plan.Op{
		Kind: plan.Shuffle, Phase: "shuffle",
		Rels: refs, Order: opt.AttrOrder,
		ShuffleKind: "push", ChargeOptimize: true, LabelShares: true,
		Cost: plan.Cost{Seconds: opt.Est.Communication},
	})
	bt := prog.Add(&plan.Op{Kind: plan.BuildTrie, Inputs: []int{sh.ID}, Order: opt.AttrOrder})
	lf := prog.Add(&plan.Op{
		Kind: plan.LeapfrogCube, Phase: "join", Strategy: "wcoj",
		Inputs: []int{bt.ID}, Order: opt.AttrOrder, Cached: cached,
		BudgetLabel: "budget",
	})
	prog.Add(&plan.Op{
		Kind: plan.Emit, Inputs: []int{lf.ID},
		Out: plan.Sig{Name: "out", Attrs: opt.AttrOrder},
	})
	return prog
}

// lowerBinary lowers the SparkSQL-style baseline: the greedy pairwise
// order becomes a chain of distributed HashJoins shuffling every
// intermediate, then a gather of the final fragments.
func lowerBinary(q hypergraph.Query, rels []*relation.Relation, order []int) *plan.Program {
	names := make([]string, len(order))
	for i, idx := range order {
		names[i] = rels[idx].Name
	}
	prog := &plan.Program{Engine: "SparkSQL", Label: "pairwise: " + strings.Join(names, " ⋈ ")}

	accName := rels[order[0]].Name
	accAttrs := append([]string(nil), rels[order[0]].Attrs...)
	var chain []int
	for step, idx := range order[1:] {
		next := rels[idx]
		outName := fmt.Sprintf("I%d", step+1)
		outAttrs := joinedAttrs(accAttrs, next.Attrs)
		op := prog.Add(&plan.Op{
			Kind: plan.HashJoin, Phase: fmt.Sprintf("join%d", step+1), Strategy: "binary",
			Inputs:      chainTail(chain),
			Left:        plan.Sig{Name: accName, Attrs: accAttrs},
			Right:       plan.Sig{Name: next.Name, Attrs: next.Attrs},
			Out:         plan.Sig{Name: outName, Attrs: outAttrs},
			BudgetLabel: "budget(intermediate %d tuples)",
		})
		chain = append(chain, op.ID)
		accName = outName
		accAttrs = outAttrs
	}
	prog.Add(&plan.Op{
		Kind: plan.Emit, Inputs: chainTail(chain),
		From: accName, ProjectOnto: q.Attrs(),
		Out: plan.Sig{Name: "out", Attrs: q.Attrs()},
	})
	return prog
}

// lowerBigJoin lowers the multi-round WCOJ baseline: seed bindings with a
// Scatter of the first attribute's value list, then one Extend (propose)
// plus a Semijoin (verify) per other relation for every further
// attribute, the round's last op carrying the per-round binding budget.
func lowerBigJoin(q hypergraph.Query, rels []*relation.Relation, order []string) (*plan.Program, error) {
	prog := &plan.Program{Engine: "BigJoin", Label: fmt.Sprintf("rounds over ord=%v", order)}
	last := prog.Add(&plan.Op{
		Kind: plan.Scatter, Phase: "round0", Attr: order[0],
		Out: plan.Sig{Name: "bindings", Attrs: order[:1]},
	})
	for d := 1; d < len(order); d++ {
		attr := order[d]
		prefix := order[:d]
		bound := order[:d+1]
		var active []int
		for i, r := range rels {
			if r.HasAttr(attr) {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			return nil, fmt.Errorf("bigjoin: attribute %q uncovered", attr)
		}
		// Proposer: smallest active relation; the rest verify.
		prop := active[0]
		for _, i := range active[1:] {
			if rels[i].Len() < rels[prop].Len() {
				prop = i
			}
		}
		phase := fmt.Sprintf("round%d", d)
		last = prog.Add(&plan.Op{
			Kind: plan.Extend, Phase: phase + "/propose", Strategy: "wcoj",
			Inputs: []int{last.ID},
			RelIdx: prop, Prefix: prefix, Attr: attr,
			Out:         plan.Sig{Name: "bindings", Attrs: bound},
			BudgetLabel: "budget",
		})
		vi := 0
		for _, ridx := range active {
			if ridx == prop {
				continue
			}
			last = prog.Add(&plan.Op{
				Kind: plan.Semijoin, Phase: fmt.Sprintf("%s/verify%d", phase, vi), Strategy: "wcoj",
				Inputs: []int{last.ID},
				RelIdx: ridx, Prefix: prefix, Attr: attr,
				Out:         plan.Sig{Name: "bindings", Attrs: bound},
				BudgetLabel: "budget",
			})
			vi++
		}
		// The surviving bindings of every round are bounded by the budget.
		last.CheckBudget = true
		last.Round = d
	}
	prog.Add(&plan.Op{
		Kind: plan.Emit, Inputs: []int{last.ID},
		From: "bindings", ProjectOnto: order,
		Out: plan.Sig{Name: "out", Attrs: order},
	})
	return prog, nil
}
