package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"adj/internal/cluster"
	"adj/internal/dataset"
	"adj/internal/faultinject"
	"adj/internal/hypergraph"
)

// TestChaosMatrix drives every engine, in both execution modes, through
// randomized fault injection — dropped envelopes, failed dials, corrupted
// payloads, injected delays and worker panics — and asserts the
// fault-tolerance contract on every run:
//
//   - a run that completes returns exactly the fault-free result count
//     (faults never silently change results), and
//   - a run that fails returns a clean typed error (cluster.ErrWorkerPanic,
//     cluster.ErrTransport or a context error), never an anonymous one, and
//   - either way the goroutine count settles back to baseline (no leaks)
//     within a bounded deadline (no hangs).
func TestChaosMatrix(t *testing.T) {
	edges := dataset.Load("WB", 0.05)
	q := hypergraph.Get("Q1")
	rels := q.BindGraph(edges)
	base := Config{NumServers: 4, Samples: 100, Seed: 7}

	// Fault-free reference counts, one per engine.
	want := make(map[string]int64)
	for name, run := range Engines() {
		rep, err := run(q, rels, base)
		if err != nil {
			t.Fatalf("%s fault-free reference run: %v", name, err)
		}
		want[name] = rep.Results
	}

	kinds := []struct {
		name  string
		rule  faultinject.Rule
		panic bool
	}{
		{"drop", faultinject.Rule{From: faultinject.Any, To: faultinject.Any, Drop: 0.2}, false},
		{"faildial", faultinject.Rule{From: faultinject.Any, To: faultinject.Any, FailDial: 0.3}, false},
		{"corrupt", faultinject.Rule{From: faultinject.Any, To: faultinject.Any, Corrupt: 0.2}, false},
		{"delay", faultinject.Rule{From: faultinject.Any, To: faultinject.Any, Delay: 0.5, MaxDelay: time.Millisecond}, false},
		{"panic", faultinject.Rule{}, true},
	}
	// Each cell runs minSeeds randomized runs, and keeps drawing seeds (up
	// to maxSeeds) until at least one fault has actually fired — a cell
	// whose faults all missed would verify nothing.
	minSeeds, maxSeeds := int64(3), int64(25)
	if testing.Short() {
		minSeeds = 1
	}

	for _, sequential := range []bool{false, true} {
		mode := "parallel"
		if sequential {
			mode = "sequential"
		}
		for engName, run := range Engines() {
			for _, k := range kinds {
				engName, run, k, sequential := engName, run, k, sequential
				t.Run(engName+"/"+mode+"/"+k.name, func(t *testing.T) {
					fired := false
					for seed := int64(1); seed <= maxSeeds; seed++ {
						if seed > minSeeds && fired {
							break
						}
						baseline := runtime.NumGoroutine()
						cfg := base
						cfg.Sequential = sequential
						var clus *cluster.Cluster
						var ftr *faultinject.Transport
						if k.panic {
							// Panic injection needs the cluster's hook, so
							// borrow an explicit cluster for the run.
							clus = cluster.New(cluster.Config{N: cfg.NumServers, Sequential: sequential})
							clus.SetPanicHook(faultinject.PanicHook(seed, 0.02, ""))
							cfg.Cluster = clus
						} else {
							ftr = faultinject.Wrap(
								cluster.NewLocalTransport(cfg.NumServers), seed, k.rule)
							cfg.Transport = ftr
						}

						done := make(chan struct {
							results int64
							err     error
						}, 1)
						go func() {
							rep, err := run(q, rels, cfg)
							done <- struct {
								results int64
								err     error
							}{rep.Results, err}
						}()
						var results int64
						var err error
						select {
						case r := <-done:
							results, err = r.results, r.err
						case <-time.After(120 * time.Second):
							t.Fatalf("seed %d: run hung under fault injection", seed)
						}

						if err != nil {
							typed := errors.Is(err, cluster.ErrWorkerPanic) ||
								errors.Is(err, cluster.ErrTransport) ||
								errors.Is(err, context.Canceled) ||
								errors.Is(err, context.DeadlineExceeded)
							if !typed {
								t.Fatalf("seed %d: failed run's error is untyped: %v", seed, err)
							}
						} else if results != want[engName] {
							t.Fatalf("seed %d: faulted run silently changed the result: got %d, want %d",
								seed, results, want[engName])
						}
						if ftr != nil {
							fired = fired || ftr.Injected() > 0
						} else {
							fired = fired || err != nil // a fired hook always fails the run
						}
						if clus != nil {
							clus.Close()
						}
						waitGoroutines(t, baseline)
					}
					if !fired {
						t.Fatalf("no fault fired across %d seeds — the cell verified nothing", maxSeeds)
					}
				})
			}
		}
	}
}

// TestChaosPanicErrorDetail spot-checks the diagnostic payload of a
// contained panic surfacing through a full engine run: the error carries
// the worker, the phase and the stack.
func TestChaosPanicErrorDetail(t *testing.T) {
	edges := dataset.Load("WB", 0.03)
	q := hypergraph.Get("Q1")
	rels := q.BindGraph(edges)

	clus := cluster.New(cluster.Config{N: 2})
	defer clus.Close()
	clus.SetPanicHook(func(phase string, workerID int) {
		if workerID == 1 {
			panic("chaos")
		}
	})
	_, err := RunADJ(q, rels, Config{NumServers: 2, Samples: 50, Seed: 1, Cluster: clus})
	var wp *cluster.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("want *WorkerPanicError, got %v", err)
	}
	if wp.WorkerID != 1 || wp.Phase == "" || len(wp.Stack) == 0 {
		t.Fatalf("panic diagnostics incomplete: worker=%d phase=%q stack=%d bytes",
			wp.WorkerID, wp.Phase, len(wp.Stack))
	}
}
