package engine

import (
	"errors"
	"fmt"
	"strconv"

	"adj/internal/cluster"
	"adj/internal/relation"
)

// distributedJoin computes A ⋈ B over worker fragments: both sides are
// hash-partitioned on their shared attributes, each worker joins its
// partitions locally, and the result fragments are stored as outName. This
// is the kernel of the SparkSQL-style BinaryJoin baseline and of ADJ's bag
// pre-computation. Returns the global result size.
//
// With no shared attributes the smaller side is broadcast (a cross
// product; rare, but required for generality).
func distributedJoin(c *cluster.Cluster, phase string, aName string, aAttrs []string,
	bName string, bAttrs []string, outName string, budget int64) (int64, error) {

	shared := sharedAttrs(aAttrs, bAttrs)
	if len(shared) == 0 {
		return distributedCross(c, phase, aName, aAttrs, bName, bAttrs, outName, budget)
	}
	aCols := attrIdx(aAttrs, shared)
	bCols := attrIdx(bAttrs, shared)

	errJoin := c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			for _, side := range []struct {
				name  string
				attrs []string
				cols  []int
				tag   string
			}{
				{aName, aAttrs, aCols, "L"},
				{bName, bAttrs, bCols, "R"},
			} {
				frag, ok := w.Rels[side.name]
				if !ok {
					continue
				}
				parts := frag.PartitionBy(side.cols, w.N)
				for to, p := range parts {
					if p.Len() == 0 {
						continue
					}
					to := to
					key := side.tag + "/" + side.name + "/" + strconv.Itoa(to)
					err := w.EncodeRelationChunks(p, 0, func(payload []byte, lo, hi, chunk int) error {
						return s.Send(cluster.Envelope{
							To:      to,
							Key:     key,
							Chunk:   int32(chunk),
							Payload: payload,
							Tuples:  int64(hi - lo),
							Weight:  partWeight(chunk),
						})
					})
					if err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			left := relation.New(aName, aAttrs...)
			right := relation.New(bName, bAttrs...)
			var scratch relation.Relation
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				var dst *relation.Relation
				switch e.Key[0] {
				case 'L':
					dst = left
				case 'R':
					dst = right
				default:
					return fmt.Errorf("distributedJoin: bad key %q", e.Key)
				}
				if err := relation.DecodeAppend(e.Payload, dst, &scratch); err != nil {
					return cluster.CorruptPayload("binary join exchange", err)
				}
			}
			res, err := relation.HashJoinLimit(left, right, int(budget))
			if err != nil {
				return ErrBudget
			}
			res.Name = outName
			w.Rels[outName] = res
			return nil
		})
	if errJoin != nil {
		if errors.Is(errJoin, ErrBudget) {
			return 0, ErrBudget
		}
		return 0, errJoin
	}
	size := c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(outName)) })
	if budget > 0 && size > budget {
		return size, ErrBudget
	}
	return size, nil
}

// distributedCross broadcasts the smaller side and joins locally.
func distributedCross(c *cluster.Cluster, phase string, aName string, aAttrs []string,
	bName string, bAttrs []string, outName string, budget int64) (int64, error) {

	aSize := c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(aName)) })
	bSize := c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(bName)) })
	small, smallAttrs := bName, bAttrs
	big, bigAttrs := aName, aAttrs
	if aSize < bSize {
		small, smallAttrs = aName, aAttrs
		big, bigAttrs = bName, bAttrs
	}
	err := c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			frag, ok := w.Rels[small]
			if !ok || frag.Len() == 0 {
				return nil
			}
			return w.EncodeRelationChunks(frag, 0, func(payload []byte, lo, hi, chunk int) error {
				for to := 0; to < w.N; to++ {
					if err := s.Send(cluster.Envelope{
						To: to, Key: "B/" + small, Chunk: int32(chunk),
						Payload: payload, Tuples: int64(hi - lo), Weight: partWeight(chunk),
					}); err != nil {
						return err
					}
				}
				return nil
			})
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			smallRel := relation.New(small, smallAttrs...)
			var scratch relation.Relation
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := relation.DecodeAppend(e.Payload, smallRel, &scratch); err != nil {
					return cluster.CorruptPayload("binary join exchange", err)
				}
			}
			bigRel, ok := w.Rels[big]
			if !ok {
				bigRel = relation.New(big, bigAttrs...)
			}
			var res *relation.Relation
			if big == aName {
				res = relation.HashJoin(bigRel, smallRel)
			} else {
				res = relation.HashJoin(smallRel, bigRel)
			}
			res.Name = outName
			w.Rels[outName] = res
			return nil
		})
	if err != nil {
		return 0, err
	}
	size := c.GatherCounts(func(w *cluster.Worker) int64 { return int64(w.LocalSize(outName)) })
	if budget > 0 && size > budget {
		return size, ErrBudget
	}
	return size, nil
}

// distributedSemijoin computes A ⋉ B over worker fragments: A is
// hash-partitioned on the shared attributes, B's projection onto them
// (deduplicated per fragment to cut volume) is partitioned the same way,
// and each worker keeps the A tuples with a match. The result fragments
// are stored as outName. This is the hybrid plan's pre-reduction: a
// selective acyclic fragment shrinks a cyclic-core relation before the
// core is shuffled.
func distributedSemijoin(c *cluster.Cluster, phase string, aName string, aAttrs []string,
	bName string, bAttrs []string, outName string) error {

	shared := sharedAttrs(aAttrs, bAttrs)
	if len(shared) == 0 {
		return fmt.Errorf("distributedSemijoin: %s and %s share no attributes", aName, bName)
	}
	aCols := attrIdx(aAttrs, shared)

	return c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			if frag, ok := w.Rels[aName]; ok {
				if err := sendParts(w, s, frag.PartitionBy(aCols, w.N), "L"); err != nil {
					return err
				}
			}
			if frag, ok := w.Rels[bName]; ok {
				proj := frag.ProjectMulti(shared...).SortDedup()
				if err := sendParts(w, s, proj.PartitionBy(attrIdx(shared, shared), w.N), "R"); err != nil {
					return err
				}
			}
			return nil
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			left := relation.New(aName, aAttrs...)
			keys := relation.New(bName, shared...)
			var scratch relation.Relation
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				var dst *relation.Relation
				switch e.Key {
				case "L":
					dst = left
				case "R":
					dst = keys
				default:
					return fmt.Errorf("distributedSemijoin: bad key %q", e.Key)
				}
				if err := relation.DecodeAppend(e.Payload, dst, &scratch); err != nil {
					return cluster.CorruptPayload("semijoin exchange", err)
				}
			}
			res := left.Semijoin(keys, shared)
			res.Name = outName
			w.Rels[outName] = res
			return nil
		})
}

// partWeight is the message weight of a partition chunk: the first chunk
// carries the envelope's single logical message, continuations ride free —
// so Messages counts are invariant to chunk granularity.
func partWeight(chunk int) int64 {
	if chunk > 0 {
		return cluster.WeightContinuation
	}
	return 0
}

// sendParts streams one hash-partitioned relation: part i goes to worker i
// in bounded chunks under the given envelope key.
func sendParts(w *cluster.Worker, s cluster.StreamSender, parts []*relation.Relation, key string) error {
	for to, p := range parts {
		if p.Len() == 0 {
			continue
		}
		to := to
		err := w.EncodeRelationChunks(p, 0, func(payload []byte, lo, hi, chunk int) error {
			return s.Send(cluster.Envelope{
				To:      to,
				Key:     key,
				Chunk:   int32(chunk),
				Payload: payload,
				Tuples:  int64(hi - lo),
				Weight:  partWeight(chunk),
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func sharedAttrs(a, b []string) []string {
	var out []string
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

func attrIdx(attrs, want []string) []int {
	out := make([]int, len(want))
	for i, wa := range want {
		out[i] = -1
		for j, a := range attrs {
			if a == wa {
				out[i] = j
				break
			}
		}
	}
	return out
}

// joinedAttrs returns the output schema of A ⋈ B.
func joinedAttrs(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, x := range b {
		found := false
		for _, y := range a {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			out = append(out, x)
		}
	}
	return out
}
