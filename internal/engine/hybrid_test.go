package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"adj/internal/hypergraph"
	"adj/internal/relation"
	"adj/internal/testutil"
)

// GYO ear decomposition must classify the canonical shapes: acyclic
// queries fully reduce, cliques stay whole, and a path attached to a
// triangle splits into exactly that core and tail.
func TestEarDecompose(t *testing.T) {
	cases := []struct {
		query    string
		wantCore []int
	}{
		{"P :- R1(a,b) ⋈ R2(b,c) ⋈ R3(c,d)", nil},
		{"Star :- R1(a,b) ⋈ R2(a,c) ⋈ R3(a,d)", nil},
		{"Tri :- R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c)", []int{0, 1, 2}},
		{"TriPath :- R1(a,b) ⋈ R2(b,c) ⋈ R3(a,c) ⋈ R4(c,d) ⋈ R5(d,e)", []int{0, 1, 2}},
	}
	for _, tc := range cases {
		q, err := hypergraph.ParseQuery(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		core, ears := earDecompose(q)
		if fmt.Sprint(core) != fmt.Sprint(tc.wantCore) {
			t.Fatalf("%s: core=%v want %v (ears=%v)", q.Name, core, tc.wantCore, ears)
		}
		if len(core)+len(ears) != len(q.Atoms) {
			t.Fatalf("%s: core=%v ears=%v do not partition %d atoms", q.Name, core, ears, len(q.Atoms))
		}
	}
}

// The hybrid engine must agree byte-for-byte with every pure engine on
// random connected queries — same counts, same sorted materialized tuples —
// under both sequential and parallel scheduling. This is the correctness
// contract of strategy routing: whatever route the cost model picks, the
// answer is the answer.
func TestHybridMatchesPureEnginesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 6; iter++ {
		q, rels := testutil.RandQueryInstance(rng, 5, 5, 150, 40)
		for _, sequential := range []bool{true, false} {
			cfg := smallCfg(3)
			cfg.Sequential = sequential
			cfg.CollectOutput = true
			hyb, err := RunHybrid(q, rels, cfg)
			if err != nil {
				t.Fatalf("iter=%d seq=%v hybrid: %v", iter, sequential, err)
			}
			// Engines emit under their own attribute orders; canonicalize to
			// the query's order and sort (multiset-preserving) so the
			// comparison is byte-identical tuples, duplicates included.
			hybOut := hyb.Output.ProjectMulti(q.Attrs()...).Sort()
			for _, name := range EngineNames() {
				pure, err := Engines()[name](q, rels, cfg)
				if err != nil {
					t.Fatalf("iter=%d seq=%v %s: %v", iter, sequential, name, err)
				}
				if pure.Results != hyb.Results {
					t.Fatalf("iter=%d seq=%v %s: results=%d hybrid=%d (hybrid plan %q)",
						iter, sequential, name, pure.Results, hyb.Results, hyb.Plan)
				}
				pureOut := pure.Output.ProjectMulti(q.Attrs()...).Sort()
				if !hybOut.Equal(pureOut) {
					t.Fatalf("iter=%d seq=%v %s: materialized outputs differ (hybrid plan %q)",
						iter, sequential, name, hyb.Plan)
				}
			}
		}
	}
}

// hybridWorkload builds the path-attached-triangle instance where the
// split pays: a large random graph core, a small path relation selective
// on the attachment attribute, and a large far path relation that a pure
// HCube shuffle would have to replicate.
func hybridWorkload(scale int) (hypergraph.Query, []*relation.Relation) {
	rng := rand.New(rand.NewSource(11))
	tri := testutil.RandEdges(rng, "E", 10*scale, int64(scale/2))
	q := hypergraph.Query{Name: "Qh", Atoms: []hypergraph.Atom{
		{Name: "R1", Attrs: []string{"a", "b"}},
		{Name: "R2", Attrs: []string{"b", "c"}},
		{Name: "R3", Attrs: []string{"a", "c"}},
		{Name: "P1", Attrs: []string{"c", "d"}},
		{Name: "P2", Attrs: []string{"d", "e"}},
	}}
	p1 := relation.New("P1", "c", "d")
	p2 := relation.New("P2", "d", "e")
	for i := 0; i < scale; i++ {
		p1.Append(relation.Value(rng.Intn(40)), relation.Value(10000+rng.Int63n(int64(50*scale))))
	}
	for i := 0; i < 40*scale; i++ {
		p2.Append(relation.Value(10000+rng.Int63n(int64(50*scale))), relation.Value(rng.Int63n(8000)))
	}
	// Set semantics: duplicate input tuples would make trie-based and
	// hash-join-based engines disagree on output multiplicity.
	p1.SortDedup()
	p2.SortDedup()
	db := hypergraph.Database{"R1": tri, "R2": tri, "R3": tri, "P1": p1, "P2": p2}
	rels, err := q.Bind(db)
	if err != nil {
		panic(err)
	}
	return q, rels
}

// On the selective path-attached triangle the router must actually choose
// the split (semijoin-reduced core + ear hash joins), produce the same
// answer as the pure engines, and beat both pure strategies on the
// deterministic cost axes — shuffle volume and modeled communication
// seconds. (Wall-clock totals are asserted by cmd/bench, which runs
// alone; here the suite's parallel load would make them flaky.)
func TestHybridRoutesSplitAndWins(t *testing.T) {
	q, rels := hybridWorkload(1000)
	cfg := Config{NumServers: 4, Samples: 300, Seed: 7}

	pp, err := Prepare("Hybrid", q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pp.Program.Label, "core=[") {
		t.Fatalf("router did not pick the split: %s", pp.Program.Label)
	}
	if !strings.Contains(pp.Program.Tree(), "Semijoin") {
		t.Fatalf("split plan lost its pre-reductions:\n%s", pp.Program.Tree())
	}

	hyb, err := RunHybrid(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Failed {
		t.Fatalf("hybrid failed: %s", hyb.FailReason)
	}
	for _, name := range []string{"SparkSQL", "HCubeJ"} {
		pure, err := Engines()[name](q, rels, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pure.Results != hyb.Results {
			t.Fatalf("%s disagrees: %d != %d", name, pure.Results, hyb.Results)
		}
		if hyb.TuplesShuffled >= pure.TuplesShuffled {
			t.Fatalf("hybrid shuffled %d tuples, %s only %d", hyb.TuplesShuffled, name, pure.TuplesShuffled)
		}
		if hyb.Communication >= pure.Communication {
			t.Fatalf("hybrid modeled comm %.4fs did not beat %s (%.4fs)", hyb.Communication, name, pure.Communication)
		}
	}
}
