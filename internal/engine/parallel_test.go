package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"adj/internal/hypergraph"
	"adj/internal/testutil"
)

// The parallel default (goroutine workers + work-stealing cube pool) must
// produce exactly the sequential simulation's results — counts and
// materialized tuples — across engines, cluster sizes and cube fan-outs.
func TestParallelSequentialEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	edges := testutil.RandEdges(rng, "E", 700, 35)
	queries := []hypergraph.Query{hypergraph.Q1(), hypergraph.Q2()}
	for _, q := range queries {
		for _, cps := range []int{1, 4} {
			for name, run := range map[string]RunFunc{"ADJ": RunADJ, "HCubeJ": RunHCubeJ} {
				t.Run(fmt.Sprintf("%s/%s/cps=%d", name, q.Name, cps), func(t *testing.T) {
					rels := q.BindGraph(edges)
					seqCfg := smallCfg(3)
					seqCfg.CubesPerServer = cps
					seqCfg.Sequential = true
					seqCfg.CollectOutput = true
					parCfg := seqCfg
					parCfg.Sequential = false
					seq, err := run(q, rels, seqCfg)
					if err != nil {
						t.Fatal(err)
					}
					par, err := run(q, rels, parCfg)
					if err != nil {
						t.Fatal(err)
					}
					if seq.Results != par.Results {
						t.Fatalf("results: sequential=%d parallel=%d", seq.Results, par.Results)
					}
					if seq.TuplesShuffled != par.TuplesShuffled {
						t.Fatalf("tuples shuffled: sequential=%d parallel=%d",
							seq.TuplesShuffled, par.TuplesShuffled)
					}
					a := seq.Output.Clone().SortDedup()
					b := par.Output.Clone().SortDedup()
					if !a.Equal(b) {
						t.Fatal("materialized outputs differ between modes")
					}
				})
			}
		}
	}
}

// runCubes must visit every task exactly once in both modes and stop
// scheduling new work after an error.
func TestRunCubes(t *testing.T) {
	for _, sequential := range []bool{true, false} {
		var visited [97]atomic.Int32
		err := runCubes(97, sequential, func(ci int) error {
			visited[ci].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for ci := range visited {
			if got := visited[ci].Load(); got != 1 {
				t.Fatalf("sequential=%v: cube %d visited %d times", sequential, ci, got)
			}
		}
	}
	boom := errors.New("boom")
	var ran atomic.Int32
	err := runCubes(64, false, func(ci int) error {
		ran.Add(1)
		if ci == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v want boom", err)
	}
	if runCubes(0, false, func(int) error { t.Fatal("no tasks expected"); return nil }) != nil {
		t.Fatal("empty task set must succeed")
	}
	_ = ran.Load() // races between the error and other goroutines are fine; count is unasserted
}

// Budget failures must still surface deterministically under the parallel
// cube pool.
func TestParallelBudgetFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	edges := testutil.RandEdges(rng, "E", 2000, 40)
	q := hypergraph.Q2()
	rels := q.BindGraph(edges)
	cfg := smallCfg(2)
	cfg.Budget = 50
	cfg.CubesPerServer = 4
	rep, err := RunHCubeJ(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatalf("tiny budget should fail, got %d results", rep.Results)
	}
}
