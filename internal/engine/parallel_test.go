package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"adj/internal/blockcache"
	"adj/internal/hypergraph"
	"adj/internal/testutil"
)

// The parallel default (goroutine workers + work-stealing cube pool) must
// produce exactly the sequential simulation's results — counts and
// materialized tuples — across engines, cluster sizes and cube fan-outs.
func TestParallelSequentialEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	edges := testutil.RandEdges(rng, "E", 700, 35)
	queries := []hypergraph.Query{hypergraph.Q1(), hypergraph.Q2()}
	for _, q := range queries {
		for _, cps := range []int{1, 4} {
			for name, run := range map[string]RunFunc{"ADJ": RunADJ, "HCubeJ": RunHCubeJ} {
				t.Run(fmt.Sprintf("%s/%s/cps=%d", name, q.Name, cps), func(t *testing.T) {
					rels := q.BindGraph(edges)
					seqCfg := smallCfg(3)
					seqCfg.CubesPerServer = cps
					seqCfg.Sequential = true
					seqCfg.CollectOutput = true
					parCfg := seqCfg
					parCfg.Sequential = false
					seq, err := run(q, rels, seqCfg)
					if err != nil {
						t.Fatal(err)
					}
					par, err := run(q, rels, parCfg)
					if err != nil {
						t.Fatal(err)
					}
					if seq.Results != par.Results {
						t.Fatalf("results: sequential=%d parallel=%d", seq.Results, par.Results)
					}
					if seq.TuplesShuffled != par.TuplesShuffled {
						t.Fatalf("tuples shuffled: sequential=%d parallel=%d",
							seq.TuplesShuffled, par.TuplesShuffled)
					}
					a := seq.Output.Clone().SortDedup()
					b := par.Output.Clone().SortDedup()
					if !a.Equal(b) {
						t.Fatal("materialized outputs differ between modes")
					}
				})
			}
		}
	}
}

// runCubes must visit every task exactly once in both modes — with and
// without a locality signal — and stop scheduling new work after an error.
func TestRunCubes(t *testing.T) {
	affinities := map[string]func(ci int) []blockcache.Key{
		"none": nil,
		"shared": func(ci int) []blockcache.Key {
			// Cubes fall into 5 block-sharing groups of uneven size.
			return []blockcache.Key{{Rel: "R", Sig: ci % 5}, {Rel: "S", Sig: ci % 3}}
		},
	}
	for name, blocksOf := range affinities {
		for _, sequential := range []bool{true, false} {
			var visited [97]atomic.Int32
			err := runCubes(97, sequential, nil, blocksOf, nil, func(ci int) error {
				visited[ci].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for ci := range visited {
				if got := visited[ci].Load(); got != 1 {
					t.Fatalf("affinity=%s sequential=%v: cube %d visited %d times", name, sequential, ci, got)
				}
			}
		}
	}
	boom := errors.New("boom")
	var ran atomic.Int32
	err := runCubes(64, false, nil, nil, nil, func(ci int) error {
		ran.Add(1)
		if ci == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v want boom", err)
	}
	if runCubes(0, false, nil, nil, nil, func(int) error { t.Fatal("no tasks expected"); return nil }) != nil {
		t.Fatal("empty task set must succeed")
	}
	_ = ran.Load() // races between the error and other goroutines are fine; count is unasserted
}

// The locality partitioner must co-locate cubes sharing blocks, respect
// the per-queue bound, and cover every cube exactly once, deterministically.
func TestPartitionCubes(t *testing.T) {
	// 4 disjoint block groups over 16 cubes, 4 queues: a perfect
	// partitioning exists and greedy assignment must find it.
	blocksOf := func(ci int) []blockcache.Key {
		return []blockcache.Key{{Rel: "R", Sig: ci / 4}}
	}
	queues := partitionCubes(16, 4, blocksOf, nil)
	seen := make(map[int]int)
	for _, q := range queues {
		groups := make(map[int]bool)
		for _, ci := range q {
			seen[ci]++
			groups[ci/4] = true
		}
		if len(q) > 0 && len(groups) != 1 {
			t.Fatalf("queue mixes block groups: %v", q)
		}
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d cubes, want 16", len(seen))
	}
	for ci, n := range seen {
		if n != 1 {
			t.Fatalf("cube %d assigned %d times", ci, n)
		}
	}
	// Skewed affinity (every cube shares one hot block): the bound must
	// cap each queue at 2× the fair share instead of piling all cubes on
	// one queue.
	hot := func(ci int) []blockcache.Key { return []blockcache.Key{{Rel: "H", Sig: 0}} }
	queues = partitionCubes(20, 4, hot, nil)
	total := 0
	for _, q := range queues {
		if len(q) > 10 {
			t.Fatalf("queue exceeds 2x fair-share bound: %d cubes", len(q))
		}
		total += len(q)
	}
	if total != 20 {
		t.Fatalf("partitioned %d cubes, want 20", total)
	}
	// Determinism: same inputs, same assignment.
	a := fmt.Sprint(partitionCubes(16, 4, blocksOf, nil))
	b := fmt.Sprint(partitionCubes(16, 4, blocksOf, nil))
	if a != b {
		t.Fatal("partitioner is not deterministic")
	}
}

// The cost-aware partitioner must balance by summed block size, not cube
// count: with one skewed hub block, its heavy cubes spread across queues
// up front instead of co-locating behind one goroutine.
func TestPartitionCubesSkewedWeights(t *testing.T) {
	// 16 cubes over 4 queues. Cubes 0..3 each carry the hub block of
	// weight 1000 (plus a private block); the remaining 12 cubes weigh 10.
	// A count-balanced partitioner would co-locate all four hub cubes on
	// one queue (they share the hot block and the count bound is 8); the
	// size-balanced bound (2×fair share = 2×(4120/4) = 2060) caps each
	// queue at two hub cubes.
	hub := blockcache.Key{Rel: "H", Sig: 0}
	blocksOf := func(ci int) []blockcache.Key {
		if ci < 4 {
			return []blockcache.Key{hub, {Rel: "P", Sig: ci}}
		}
		return []blockcache.Key{{Rel: "Q", Sig: ci}}
	}
	weightOf := func(ci int) int64 {
		if ci < 4 {
			return 1000
		}
		return 10
	}
	queues := partitionCubes(16, 4, blocksOf, weightOf)
	seen := make(map[int]int)
	maxLoad := int64(0)
	for _, q := range queues {
		var load int64
		for _, ci := range q {
			seen[ci]++
			load += weightOf(ci)
		}
		if load > maxLoad {
			maxLoad = load
		}
	}
	if len(seen) != 16 {
		t.Fatalf("covered %d cubes, want 16", len(seen))
	}
	for ci, n := range seen {
		if n != 1 {
			t.Fatalf("cube %d assigned %d times", ci, n)
		}
	}
	// Fair share is 4120/4 = 1030; the bound is 2060, so no queue may
	// carry more than two hub cubes' worth of work.
	if maxLoad > 2060 {
		t.Fatalf("skewed hub not spread: max queue load %d > 2060 bound", maxLoad)
	}
	// Zero/unsized cubes must still be placed exactly once.
	zero := partitionCubes(6, 3, nil, func(int) int64 { return 0 })
	total := 0
	for _, q := range zero {
		total += len(q)
	}
	if total != 6 {
		t.Fatalf("zero-weight partitioning placed %d cubes, want 6", total)
	}
}

// Budget failures must still surface deterministically under the parallel
// cube pool.
func TestParallelBudgetFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	edges := testutil.RandEdges(rng, "E", 2000, 40)
	q := hypergraph.Q2()
	rels := q.BindGraph(edges)
	cfg := smallCfg(2)
	cfg.Budget = 50
	cfg.CubesPerServer = 4
	rep, err := RunHCubeJ(q, rels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed {
		t.Fatalf("tiny budget should fail, got %d results", rep.Results)
	}
}
