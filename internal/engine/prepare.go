package engine

import (
	"fmt"
	"sort"
	"time"

	"adj/internal/costmodel"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/optimizer"
	"adj/internal/plan"
	"adj/internal/relation"
	"adj/internal/sampling"
)

// PreparedPlan is the cached planning artifact of a prepared query: the
// part of a run that samples the data and chooses a plan, split from
// execution so a session can pay it once and execute many times. Program
// is what executes — the lowered operator DAG the IR interpreter walks;
// the other plan fields keep the engine-family artifact it was lowered
// from (inspection, Explain).
type PreparedPlan struct {
	// Engine is the registry name the plan was prepared for; engines reject
	// a plan prepared for a different engine (plans are not interchangeable:
	// ADJ's co-optimized GHD plan means nothing to BinaryJoin).
	Engine string
	// Program is the lowered physical plan the IR interpreter executes.
	Program *plan.Program
	// Opt is the optimizer plan: co-optimized for ADJ, communication-first
	// for the HCubeJ family and the hybrid's cyclic core.
	Opt *optimizer.Plan
	// JoinOrder is BinaryJoin's greedy pairwise order (indexes into the
	// bound relation list).
	JoinOrder []int
	// Order is BigJoin's round order over the query attributes.
	Order []string
	// Seconds is the measured planning time — what a one-shot run would
	// have charged to its Optimization phase.
	Seconds float64
}

// Prepare computes the planning artifact for engineName over bound
// relations and lowers it to the physical plan.Program the IR interpreter
// executes: sampling-based cardinality estimation plus plan selection for
// the optimizing engines, the cheap deterministic orders for the others,
// selectivity-driven strategy routing for Hybrid. The result plugs into
// Config.Prepared, making the engine skip its optimization phase. cfg
// supplies the planning knobs (NumServers, Samples, Seed, Ctx for
// cancellation).
func Prepare(engineName string, q hypergraph.Query, rels []*relation.Relation, cfg Config) (*PreparedPlan, error) {
	cfg = cfg.withDefaults()
	t0 := time.Now()
	pp := &PreparedPlan{Engine: engineName}
	var err error
	switch engineName {
	case "ADJ":
		pp.Opt, err = adjPlan(q, rels, cfg, true)
		if err == nil {
			pp.Program = lowerADJ(q, rels, pp.Opt)
		}
	case "ADJ(comm-first)":
		pp.Opt, err = adjPlan(q, rels, cfg, false)
		if err == nil {
			pp.Program = lowerADJ(q, rels, pp.Opt)
			pp.Program.Engine = engineName
		}
	case "HCubeJ", "HCubeJ+Cache":
		pp.Opt, err = commFirstPlan(q, rels, cfg)
		if err == nil {
			pp.Program = lowerHCubeJ(engineName, rels, pp.Opt, engineName == "HCubeJ+Cache")
		}
	case "BigJoin":
		pp.Order = q.Attrs()
		pp.Program, err = lowerBigJoin(q, rels, pp.Order)
	case "SparkSQL":
		pp.JoinOrder = binaryJoinOrder(rels)
		pp.Program = lowerBinary(q, rels, pp.JoinOrder)
	case "Hybrid":
		pp.Program, pp.Opt, err = lowerHybrid(q, rels, cfg)
	default:
		return nil, fmt.Errorf("engine: unknown engine %q (want one of %v)", engineName, AllEngineNames())
	}
	if err != nil {
		return nil, err
	}
	pp.Seconds = time.Since(t0).Seconds()
	return pp, nil
}

// preparedFor returns cfg's cached plan when it matches engineName, nil
// otherwise (a mismatched plan is ignored rather than misapplied).
func preparedFor(cfg Config, engineName string) *PreparedPlan {
	if cfg.Prepared != nil && cfg.Prepared.Engine == engineName {
		return cfg.Prepared
	}
	return nil
}

// adjPlan is ADJ's optimization phase (§III): calibrate cost constants,
// probe the sampler for machine-scaled β, then co-optimize over the
// GHD-restricted plan space (or pick the communication-first plan). Shared
// by direct runs (charged to their optimize phase) and Prepare.
func adjPlan(q hypergraph.Query, rels []*relation.Relation, cfg Config, coOptimize bool) (*optimizer.Plan, error) {
	params := defaultParams(cfg)
	params.BetaTrie = costmodel.CalibrateBetaTrie(1 << 14)
	opt, err := optimizer.New(q, rels, optimizer.Options{
		Params:  params,
		Samples: cfg.Samples,
		Seed:    cfg.Seed,
		Cancel:  cancelOf(cfg),
	})
	if err != nil {
		return nil, err
	}
	// β for raw relations from the sampler's own measured rate (§III-B): a
	// probe estimate ensures the optimizer sees machine-scaled constants.
	probe, err := sampling.EstimateCardinality(rels, q.Attrs(), sampling.Config{
		Samples: cfg.Samples / 4, Seed: cfg.Seed, MaxDepth: 2, Cancel: cancelOf(cfg),
	})
	if err == nil && probe.ExtensionsPerSecond() > 0 {
		params.BetaBase = probe.ExtensionsPerSecond()
		if params.BetaTrie < 2*params.BetaBase {
			params.BetaTrie = 2 * params.BetaBase
		}
	}
	if err := ctxErr(cfg); err != nil {
		return nil, err
	}
	if coOptimize {
		return opt.CoOptimize()
	}
	return opt.CommunicationFirst()
}

// commFirstPlan is the HCubeJ family's order selection over all n! orders
// by estimated intermediate size (Fig. 8's "All-Selected").
func commFirstPlan(q hypergraph.Query, rels []*relation.Relation, cfg Config) (*optimizer.Plan, error) {
	opt, err := optimizer.New(q, rels, optimizer.Options{
		Params:  defaultParams(cfg),
		Samples: cfg.Samples,
		Seed:    cfg.Seed,
		Cancel:  cancelOf(cfg),
	})
	if err != nil {
		return nil, err
	}
	if err := ctxErr(cfg); err != nil {
		return nil, err
	}
	return opt.CommunicationFirst()
}

// shuffleReuse builds the hcube.Reuse for one shuffle from the session's
// content signatures: base relations (query atoms) carry the signatures the
// session computed at Register time; engine-materialized relations (ADJ's
// pre-computed bags) get a signature derived deterministically from the
// plan identity and every input signature — same inputs, same plan, same
// content, so the derivation is sound. Relations can only be derived when
// every atom signature is known; otherwise reuse is disabled for the run.
func shuffleReuse(cfg Config, planID string, infos []hcube.RelInfo) *hcube.Reuse {
	if cfg.Reuse == nil || cfg.Reuse.Store == nil {
		return nil
	}
	sigs := make(map[string]uint64, len(infos))
	for _, ri := range infos {
		if s, ok := cfg.Reuse.Sigs[ri.Name]; ok {
			sigs[ri.Name] = s
			continue
		}
		if len(cfg.Reuse.Sigs) == 0 {
			return nil
		}
		sigs[ri.Name] = derivedSig(planID, ri.Name, cfg.Reuse.Sigs)
	}
	return &hcube.Reuse{Store: cfg.Reuse.Store, Sigs: sigs}
}

// derivedSig fingerprints an engine-materialized relation by provenance:
// the plan that materializes it, its name within that plan, and the
// signatures of every input relation, folded in sorted-name order so the
// hash is stable.
func derivedSig(planID, name string, inputs map[string]uint64) uint64 {
	h := relation.NewHash64()
	h.Bytes(planID)
	h.Bytes(name)
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Bytes(n)
		h.Word(inputs[n])
	}
	return h.Sum()
}
