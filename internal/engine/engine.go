// Package engine implements the five distributed join engines the paper
// evaluates (§VII): ADJ (the contribution), HCubeJ (one-round,
// communication-first), HCubeJ+Cache, BigJoin (multi-round parallel
// Leapfrog) and BinaryJoin (the SparkSQL-style multi-round pairwise
// baseline). All run on the cluster runtime and report the paper's cost
// breakdown: Optimization / Pre-Computing / Communication / Computation.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"adj/internal/blockcache"
	"adj/internal/cluster"
	"adj/internal/costmodel"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/leapfrog"
	"adj/internal/relation"
	"adj/internal/trie"
)

// ErrBudget marks a run that exceeded its work budget — the analogue of
// the paper's 12-hour timeout / OOM failures (frame-top bars in Fig. 12).
var ErrBudget = errors.New("engine: work budget exceeded")

// Config is shared engine configuration.
type Config struct {
	// NumServers is the cluster size (the paper varies 1..28).
	NumServers int
	// Samples for the sampling-based optimizer.
	Samples int
	// Seed drives every randomized choice.
	Seed int64
	// Budget caps total extension/intermediate work per run (0 = unlimited).
	Budget int64
	// MemoryPerServer bounds HCube loads in tuples (0 = unbounded).
	MemoryPerServer int64
	// CacheBudget is HCubeJ+Cache's per-level cache size in values; 0 picks
	// a default derived from MemoryPerServer.
	CacheBudget int
	// CubesPerServer assigns multiple hypercubes per server (the paper's
	// "P can be larger than N*" skew mitigation: finer cubes spread a hub's
	// work over more, smaller tasks). Default 1.
	CubesPerServer int
	// ShuffleKind overrides the engine's default HCube implementation
	// (HCubeJ family defaults to Push — the original implementation the
	// paper attributes their failures to; ADJ defaults to Merge).
	ShuffleKind *hcube.Kind
	// Transport overrides the cluster transport (default in-process).
	Transport cluster.Transport
	// Sequential forces the deterministic sequential simulation: workers
	// run one at a time and a worker's cubes run in order. The default
	// executes workers on goroutines and spreads a worker's cubes over a
	// work-stealing pool (the hot path).
	Sequential bool
	// RealParallel is the legacy name for the goroutine mode.
	//
	// Deprecated: parallel execution is now the default; set Sequential to
	// get the old default behavior. The field is ignored.
	RealParallel bool
	// CollectOutput materializes result tuples into Report.Output (tests);
	// default counts only.
	CollectOutput bool
	// PerTupleEmit forces the legacy per-tuple emit shim instead of the
	// batched columnar result sink when collecting output. Kept as the
	// equivalence/benchmark baseline; production runs leave it false.
	PerTupleEmit bool

	// --- Session execution (see the adj package's Session API) ---

	// Ctx is the run's cancellation context (nil = context.Background()).
	// Cancellation is observed at every phase barrier, between cubes in the
	// scheduler, inside the Leapfrog inner loops and between samples while
	// planning, so a mid-run cancel returns promptly with the context's
	// error and no leaked goroutines.
	Ctx context.Context
	// Cluster, when non-nil, is a session-resident cluster borrowed for
	// this run: the engine resets its metrics and per-cube state but does
	// not close it. nil keeps the one-shot behavior (fresh cluster per run,
	// closed on return).
	Cluster *cluster.Cluster
	// Prepared, when non-nil, supplies the cached planning artifact of a
	// PreparedQuery: the engine skips its optimization phase (sampling
	// included) and runs the cached plan. Produce it with Prepare.
	Prepared *PreparedPlan
	// Reuse, when non-nil, connects HCube shuffles to a session-resident
	// block-trie store: relations whose content signatures are listed skip
	// the shuffle entirely when the store still holds their complete block
	// set, and publish their built tries afterwards for the next run.
	Reuse *hcube.Reuse
}

func (c Config) withDefaults() Config {
	if c.NumServers <= 0 {
		c.NumServers = 4
	}
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	return c
}

// Report is one engine run's outcome.
type Report struct {
	Engine  string
	Query   string
	Dataset string
	Servers int
	Results int64
	// Cost breakdown in (simulated) seconds, as in Tables II–IV.
	Optimization  float64
	PreComputing  float64
	Communication float64
	Computation   float64
	// TuplesShuffled counts every tuple copy moved (Fig. 1a's metric).
	TuplesShuffled int64
	BytesShuffled  int64
	Messages       int64
	// Block-trie cache counters, summed over workers (HCube engines only):
	// CacheBlocks counts distinct (relation, block) fragments received,
	// TrieBuilds the block tries actually constructed (equal to CacheBlocks
	// when every block is built exactly once), and TrieCacheHits the
	// block-trie requests served from the shared cache — the cross-cube
	// reuse the shuffle's replication creates.
	CacheBlocks   int64
	TrieBuilds    int64
	TrieCacheHits int64
	// Emitted-run counters, summed over cubes (Leapfrog engines with
	// CollectOutput only): results leave the leaf intersection as batched
	// runs — EmittedRuns deliveries carrying EmittedValues tuples — rather
	// than per-tuple callbacks. cmd/bench asserts they are nonzero so the
	// batched path cannot silently regress to per-tuple.
	EmittedRuns   int64
	EmittedValues int64
	// Failed marks budget/memory failures (frame-top bars).
	Failed     bool
	FailReason string
	// Fault counters (fault-tolerant execution): PanicsRecovered counts
	// worker panics the runtime recovered into errors during this run,
	// TransportRetries the transport-level dial/write retries its exchanges
	// performed. Retried marks an execution the session re-ran after a
	// transient transport failure (Options.Retry) — a degraded but
	// successful exec.
	PanicsRecovered  int64
	TransportRetries int64
	Retried          bool
	// Serving-tier counters, set by session executions: QueueSeconds is
	// how long the request waited in the admission queue before a cluster
	// slot freed, AdmissionClass the scheduling class it was admitted
	// under ("interactive" or "bulk"; empty on direct engine runs, which
	// bypass admission).
	QueueSeconds   float64
	AdmissionClass string
	// Streaming-shuffle counters: StreamChunks counts chunk envelopes
	// delivered through the pipelined path (0 when every exchange ran
	// materialized), OverlapSeconds the comm/compute overlap the pipeline
	// reclaimed (producer + consumer busy time in excess of exchange wall
	// time), RecvPeakBytes the largest receive-side payload high-water of
	// any phase (window-bounded when streamed, the full inbox when
	// materialized), and TransportDials the connections the run's exchanges
	// opened — persistent transports amortize these toward zero.
	StreamChunks   int64
	OverlapSeconds float64
	RecvPeakBytes  int64
	TransportDials int64
	// Plan documents the chosen plan (ADJ) or order (others).
	Plan string
	// Output holds materialized results when Config.CollectOutput.
	Output *relation.Relation
	// Metrics exposes raw per-phase numbers.
	Metrics *cluster.Metrics
}

// Total returns the end-to-end cost.
func (r Report) Total() float64 {
	return r.Optimization + r.PreComputing + r.Communication + r.Computation
}

// String renders a one-line summary.
func (r Report) String() string {
	status := fmt.Sprintf("results=%d", r.Results)
	if r.Failed {
		status = "FAILED(" + r.FailReason + ")"
	}
	return fmt.Sprintf("%-12s %-4s opt=%7.3fs pre=%7.3fs comm=%7.3fs comp=%7.3fs total=%8.3fs tuples=%d %s",
		r.Engine, r.Query, r.Optimization, r.PreComputing, r.Communication, r.Computation,
		r.Total(), r.TuplesShuffled, status)
}

// RunFunc is the engine entry signature: bound relations (one per query
// atom, schemas renamed to query attributes) and a config.
type RunFunc func(q hypergraph.Query, rels []*relation.Relation, cfg Config) (Report, error)

// Engines returns the registry of runnable engines keyed by name: the
// paper's five plus Hybrid, the selectivity-routed binary/WCOJ planner.
func Engines() map[string]RunFunc {
	return map[string]RunFunc{
		"ADJ":          RunADJ,
		"HCubeJ":       RunHCubeJ,
		"HCubeJ+Cache": RunHCubeJCache,
		"BigJoin":      RunBigJoin,
		"SparkSQL":     RunBinaryJoin,
		"Hybrid":       RunHybrid,
	}
}

// EngineNames returns the paper's five engines in its presentation order
// (benchmark tables and figures iterate these).
func EngineNames() []string {
	return []string{"SparkSQL", "BigJoin", "HCubeJ", "HCubeJ+Cache", "ADJ"}
}

// AllEngineNames returns every registry key in presentation order: the
// paper's five followed by the engines this implementation adds.
func AllEngineNames() []string {
	return append(EngineNames(), "Hybrid")
}

// maxCubes returns the hypercube count for a run: one per server unless
// CubesPerServer requests finer skew-spreading cubes.
func maxCubes(cfg Config) int {
	if cfg.CubesPerServer > 1 {
		return cfg.NumServers * cfg.CubesPerServer
	}
	return cfg.NumServers
}

// newCluster builds the cluster for a run.
func newCluster(cfg Config) *cluster.Cluster {
	return cluster.New(cluster.Config{
		N:          cfg.NumServers,
		Transport:  cfg.Transport,
		Sequential: cfg.Sequential,
	})
}

// clusterFor returns the cluster a run executes on and its release hook:
// a borrowed session-resident cluster (cfg.Cluster) is reset — fresh
// metrics, run context installed — and handed back un-closed; otherwise a
// fresh cluster is built and the release closes it. Engines must call
// release exactly once (defer it).
func clusterFor(cfg Config) (*cluster.Cluster, func()) {
	if cfg.Cluster != nil {
		c := cfg.Cluster
		c.ResetMetrics()
		c.SetContext(cfg.Ctx)
		return c, func() {
			// Hand the cluster back with no per-run residue: a failed or
			// cancelled run must not leave inbox backlog, arena bytes or
			// half-built registries for the session's next execution (the
			// session-level trie store lives elsewhere and survives).
			c.ResetRun()
			c.SetContext(nil)
		}
	}
	c := newCluster(cfg)
	c.SetContext(cfg.Ctx)
	return c, func() { c.Close() }
}

// ctxOf returns the run's context (never nil).
func ctxOf(cfg Config) context.Context {
	if cfg.Ctx != nil {
		return cfg.Ctx
	}
	//adjlint:ignore ctxflow nil-Ctx compat default: one-shot runs are uncancellable by design
	return context.Background()
}

// cancelOf returns a cheap cancellation poll for the run's context, or nil
// when the run is uncancellable (the common one-shot case) so the hot
// loops skip the check entirely.
func cancelOf(cfg Config) func() bool {
	if cfg.Ctx == nil || cfg.Ctx.Done() == nil {
		return nil
	}
	ctx := cfg.Ctx
	return func() bool { return ctx.Err() != nil }
}

// ctxErr reports the run context's error, if any.
func ctxErr(cfg Config) error { return ctxOf(cfg).Err() }

// defaultParams calibrates cost-model constants for a run.
func defaultParams(cfg Config) costmodel.Params {
	p := costmodel.DefaultParams(cfg.NumServers)
	p.Alpha = costmodel.CalibrateAlpha(cluster.DefaultNetwork(), cfg.NumServers)
	p.MemoryPerServer = cfg.MemoryPerServer
	return p
}

// sortAttrsByOrder returns rel attrs sorted by global order position.
func sortAttrsByOrder(attrs []string, order []string) []string {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	out := append([]string(nil), attrs...)
	sort.Slice(out, func(i, j int) bool { return pos[out[i]] < pos[out[j]] })
	return out
}

// localCubeJoin runs Leapfrog on every cube of every worker and returns the
// summed result count, the materialized output (when requested) and the
// folded block-cache stats. Per-cube tries come from the worker's shared
// block-trie registry: each (relation, block) trie is built exactly once
// per worker and merged lazily into cube tries at first use (charged to
// the same computation phase, as in the paper where trie construction is
// part of join processing). The per-worker extension budget is cfg.Budget
// divided across workers.
//
// When storeAs is non-empty each worker additionally keeps its own cube
// outputs resident as w.Rels[storeAs] — a valid partition of the result,
// since HCube assigns every output tuple to exactly one cube. This is how
// the hybrid plan's cyclic core feeds its downstream distributed hash
// joins without a coordinator round-trip; the coordinator still only sees
// the count unless cfg.CollectOutput asks for the merge.
//
// By default a worker's cubes are spread over locality-partitioned
// work-stealing deques (see runCubes): cubes sharing blocks run on the
// same goroutine, back to back, so a block trie built for one cube is
// still cache-hot for the next; with CubesPerServer > 1 a skewed hub cube
// no longer serializes its worker — idle goroutines steal from the
// richest deque. cfg.Sequential restores the deterministic in-order loop.
// Results and outputs are accumulated per cube and folded in cube order,
// so both modes produce identical reports.
func localCubeJoin(c *cluster.Cluster, phase string, infos []hcube.RelInfo, order []string, cfg Config, cached bool, storeAs string) (int64, *relation.Relation, blockcache.Stats, emitStats, error) {
	collect := cfg.CollectOutput || storeAs != ""
	results := make([]int64, c.N)
	outputs := make([]*relation.Relation, c.N)
	emitted := make([]emitStats, c.N)
	budgetPer := int64(0)
	if cfg.Budget > 0 {
		budgetPer = cfg.Budget / int64(c.N)
		if budgetPer == 0 {
			budgetPer = 1
		}
	}
	// Poll the cluster's derived run context, not just cfg.Ctx: it is also
	// cancelled when a peer worker panics, so the leapfrog inner loops and
	// the cube scheduler abandon their work mid-phase instead of computing
	// to the barrier of a run that already failed.
	runCtx := c.Context()
	cancelled := c.CancelPoll()
	err := c.Parallel(phase, func(w *cluster.Worker) error {
		cubes := allCubes(w)
		perCube := make([]int64, len(cubes))
		perCubeEmit := make([]emitStats, len(cubes))
		var perCubeOut []*relation.Relation
		if collect {
			perCubeOut = make([]*relation.Relation, len(cubes))
		}
		joinCube := func(ci int) error {
			tries, err := cubeTries(w, cubes[ci], infos, order)
			if err != nil {
				return err
			}
			opts := leapfrog.Options{Budget: budgetPer, Cancel: cancelled}
			if collect {
				// Results stay columnar from the leaf intersection on: the
				// sink appends whole runs to the cube's output columns. The
				// per-tuple shim remains as the equivalence baseline.
				out := relation.New("out", order...)
				perCubeOut[ci] = out
				if cfg.PerTupleEmit {
					opts.Emit = func(t relation.Tuple) { out.AppendTuple(t) }
				} else {
					opts.Sink = relation.NewColumnWriter(out)
				}
			}
			var st leapfrog.Stats
			if cached {
				cj := leapfrog.NewCachedJoin(tries, order, cacheBudget(cfg))
				st, err = cj.Run(opts)
			} else {
				st, err = leapfrog.Join(tries, order, opts)
			}
			if err != nil {
				if errors.Is(err, leapfrog.ErrBudget) {
					return ErrBudget
				}
				if errors.Is(err, leapfrog.ErrCanceled) {
					return runCtx.Err()
				}
				return err
			}
			perCube[ci] = st.Results
			perCubeEmit[ci] = emitStats{runs: st.EmittedRuns, values: st.EmittedValues}
			return nil
		}
		blocksOf := func(ci int) []blockcache.Key { return w.Blocks.BlockKeysOf(cubes[ci]) }
		weightOf := func(ci int) int64 { return w.Blocks.CubeWeight(cubes[ci]) }
		if err := runCubes(len(cubes), cfg.Sequential, cancelled, blocksOf, weightOf, joinCube); err != nil {
			return err
		}
		if err := runCtx.Err(); err != nil {
			return err
		}
		for _, r := range perCube {
			results[w.ID] += r
		}
		for _, e := range perCubeEmit {
			emitted[w.ID].add(e)
		}
		if collect {
			out := relation.New("out", order...)
			for _, o := range perCubeOut {
				if o != nil {
					out.AppendAll(o)
				}
			}
			if storeAs != "" {
				stored := out
				stored.Name = storeAs
				w.Rels[storeAs] = stored
			}
			if cfg.CollectOutput {
				outputs[w.ID] = out
			}
		}
		return nil
	})
	var cacheStats blockcache.Stats
	for _, w := range c.Workers {
		cacheStats.Add(w.Blocks.Stats())
	}
	var allEmit emitStats
	for _, e := range emitted {
		allEmit.add(e)
	}
	if err != nil {
		return 0, nil, cacheStats, allEmit, err
	}
	var total int64
	var merged *relation.Relation
	if cfg.CollectOutput {
		merged = relation.New("out", order...)
	}
	for i := range results {
		total += results[i]
		if merged != nil && outputs[i] != nil {
			merged.AppendAll(outputs[i])
		}
	}
	return total, merged, cacheStats, allEmit, nil
}

// emitStats folds the leapfrog emitted-run counters across cubes/workers.
type emitStats struct {
	runs, values int64
}

func (e *emitStats) add(o emitStats) {
	e.runs += o.runs
	e.values += o.values
}

func cacheBudget(cfg Config) int {
	if cfg.CacheBudget > 0 {
		return cfg.CacheBudget
	}
	if cfg.MemoryPerServer > 0 {
		// The cache gets whatever memory HCube's shuffled load left behind —
		// the starvation effect §VII describes for HCubeJ+Cache on LJ.
		b := int(cfg.MemoryPerServer / 4)
		if b < 0 {
			b = 0
		}
		return b
	}
	return 1 << 22
}

func allCubes(w *cluster.Worker) []int {
	seen := make(map[int]bool)
	for _, c := range w.Blocks.Cubes() {
		seen[c] = true
	}
	for c := range w.Cubes {
		seen[c] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// cubeTries assembles the tries of one cube in the global order. The
// shared block-trie registry is the primary source: each (relation,
// block) trie is built once per worker and the cube's trie is merged
// lazily here, at first use (or aliased directly when the cube holds a
// single block of the relation — the common case, since a relation's own
// attributes pin its share coordinates). Raw per-cube fragments remain as
// the fallback for shuffles run without a TrieOrder.
func cubeTries(w *cluster.Worker, cube int, infos []hcube.RelInfo, order []string) ([]*trie.Trie, error) {
	out := make([]*trie.Trie, 0, len(infos))
	for _, ri := range infos {
		if tr, ok := w.Blocks.CubeTrie(cube, ri.Name); ok && tr != nil {
			out = append(out, tr)
			continue
		}
		var frag *relation.Relation
		if db, ok := w.Cubes[cube]; ok {
			frag = db[ri.Name]
		}
		if frag == nil {
			frag = relation.New(ri.Name, ri.Attrs...)
		}
		out = append(out, trie.Build(frag, sortAttrsByOrder(ri.Attrs, order)))
	}
	return out, nil
}

// finishReport folds phase metrics into the paper's four buckets by phase
// name prefix: "optimize", "precompute", everything else splits into comm
// (modeled network) vs comp (measured worker time).
func finishReport(r *Report, m *cluster.Metrics) {
	for _, p := range m.Phases() {
		switch {
		case strings.HasPrefix(p.Name, "optimize"):
			r.Optimization += p.CompSeconds + p.CommSeconds
		case strings.HasPrefix(p.Name, "precompute"):
			r.PreComputing += p.CompSeconds + p.CommSeconds
		default:
			r.Communication += p.CommSeconds
			r.Computation += p.CompSeconds
		}
		r.TuplesShuffled += p.TuplesSent
		r.BytesShuffled += p.BytesSent
		r.Messages += p.Messages
	}
	r.PanicsRecovered = m.PanicsRecovered()
	r.TransportRetries = m.TransportRetries()
	r.StreamChunks = m.TotalStreamChunks()
	r.OverlapSeconds = m.TotalOverlapSeconds()
	r.RecvPeakBytes = m.MaxRecvPeakBytes()
	r.TransportDials = m.TransportDials()
	r.Metrics = m
}

// chargeSeconds adds measured coordinator-side seconds to a named phase.
func chargeSeconds(c *cluster.Cluster, phase string, start time.Time) {
	c.Metrics.Phase(phase).CompSeconds += time.Since(start).Seconds()
}
