package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"adj/internal/dataset"
	"adj/internal/hypergraph"
)

// TestCancelAllEngines cancels a mid-flight run of every engine, in both
// the sequential simulation and the default parallel mode, and checks the
// run returns promptly with the context's error and the process goroutine
// count settles back to its baseline — the no-leak guarantee of the
// cancellation plumbing (phase barriers, cube scheduler, Leapfrog inner
// loops, sampling).
func TestCancelAllEngines(t *testing.T) {
	edges := dataset.Load("LJ", 0.3)
	q := hypergraph.Get("Q5") // 5-node pattern: long enough to catch mid-run
	rels := q.BindGraph(edges)
	for _, sequential := range []bool{false, true} {
		for name, run := range Engines() {
			name, run, sequential := name, run, sequential
			mode := "parallel"
			if sequential {
				mode = "sequential"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				ctx, cancel := context.WithCancel(context.Background())
				done := make(chan error, 1)
				go func() {
					_, err := run(q, rels, Config{
						NumServers: 4, Samples: 200, Seed: 1,
						Sequential: sequential, Ctx: ctx,
					})
					done <- err
				}()
				time.Sleep(20 * time.Millisecond)
				cancel()
				select {
				case err := <-done:
					if err == nil {
						t.Log("run finished before the cancel landed (tiny machine?)")
					} else if !errors.Is(err, context.Canceled) {
						t.Fatalf("want context.Canceled, got %v", err)
					}
				case <-time.After(60 * time.Second):
					t.Fatal("cancelled run did not return")
				}
				waitGoroutines(t, baseline)
			})
		}
	}
}

// TestPreCancelledContext: a context cancelled before the run starts must
// fail fast in every engine.
func TestPreCancelledContext(t *testing.T) {
	edges := dataset.Load("WB", 0.03)
	q := hypergraph.Get("Q1")
	rels := q.BindGraph(edges)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range Engines() {
		_, err := run(q, rels, Config{NumServers: 2, Samples: 50, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", name, err)
		}
	}
}

func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
