package experiments

import (
	"fmt"

	"adj/internal/dataset"
	"adj/internal/engine"
)

// Fig11 reproduces Fig. 11: ADJ's speed-up on LJ as workers grow from 1 to
// 28. Simulated wall-clock: per-phase max worker time + modeled network
// time, so a 28-worker cluster is timed faithfully on any machine.
// Expected shape: near-linear for Q2/Q3/Q4/Q6, flat for Q1 (system
// overhead dominates a cheap query), sub-linear for Q5 (skew straggler).
func Fig11(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	workerCounts := []int{1, 2, 4, 8, 16, 28}
	res := Result{
		ID:    "Fig11",
		Title: "ADJ speed-up vs workers (LJ); T(1)/T(n)",
	}
	for _, n := range workerCounts {
		res.Columns = append(res.Columns, fmt.Sprintf("n=%d", n))
	}
	edges := dataset.Load("LJ", cfg.Scale)
	for _, qn := range []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"} {
		q, rels := bindQ(qn, edges)
		row := Row{Label: qn + "/LJ", Values: map[string]float64{}}
		var t1 float64
		for _, n := range workerCounts {
			ecfg := cfg.engineConfig()
			ecfg.NumServers = n
			rep, err := engine.RunADJ(q, rels, ecfg)
			if err != nil {
				return res, err
			}
			if rep.Failed {
				row.Note = fmt.Sprintf("n=%d FAILED(%s)", n, rep.FailReason)
				continue
			}
			// Exclude optimization (coordinator-side, worker-count
			// independent) as the paper's speedup concerns execution.
			t := rep.PreComputing + rep.Communication + rep.Computation
			if n == 1 {
				t1 = t
			}
			if t1 > 0 && t > 0 {
				row.Values[fmt.Sprintf("n=%d", n)] = t1 / t
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
