// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the simulated cluster. Each experiment returns a
// structured result plus a text rendering with the same rows/series the
// paper reports; cmd/experiments prints them and bench_test.go wraps them
// in testing.B benchmarks.
//
// Scale note: datasets are the synthetic Table-I analogues at a
// configurable scale (1.0 ≈ paper ×10⁻³). Absolute seconds differ from the
// paper's 28-node cluster by construction; the *shapes* (who wins, by what
// factor, where methods fail) are the reproduction target — see
// EXPERIMENTS.md for paper-vs-measured notes.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"adj/internal/dataset"
	"adj/internal/engine"
	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// Config tunes all experiments.
type Config struct {
	// Scale multiplies dataset sizes (1.0 ≈ paper ×10⁻³). Default 0.1 keeps
	// the full suite under a few minutes.
	Scale float64
	// Workers is the cluster size (default 8; the paper's figures use 28).
	Workers int
	// Samples per estimation (default 500).
	Samples int
	Seed    int64
	// Budget caps per-run intermediate work; exceeded runs are reported as
	// failures, like the paper's 12-hour/OOM bars. Default 30M units.
	Budget int64
	// Ctx cancels in-flight experiment executions. cmd/experiments passes
	// its root context; nil falls back to an uncancellable run.
	Ctx context.Context
}

// ctx returns the run's context, never nil.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	//adjlint:ignore ctxflow nil-Ctx compat default mirrors engine.ctxOf
	return context.Background()
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Samples <= 0 {
		c.Samples = 500
	}
	if c.Budget == 0 {
		c.Budget = 30_000_000
	}
	return c
}

func (c Config) engineConfig() engine.Config {
	return engine.Config{
		NumServers: c.Workers,
		Samples:    c.Samples,
		Seed:       c.Seed,
		Budget:     c.Budget,
		// The figures reproduce the paper's *simulated* cluster timings:
		// sequential mode measures each worker in isolation and charges the
		// max, so a 28-worker run is timed faithfully (and repeatably) on a
		// 2-core machine. The goroutine-parallel default would fold CPU
		// contention between simulated workers into the phase times.
		Sequential: true,
	}
}

// graph loads a named dataset at the config's scale.
func (c Config) graph(name string) *relation.Relation {
	return dataset.Load(name, c.Scale)
}

// bind binds a catalog query to a dataset's edge relation.
func bindQ(qname string, edges *relation.Relation) (hypergraph.Query, []*relation.Relation) {
	q := hypergraph.Get(qname)
	return q, q.BindGraph(edges)
}

// Row is one labelled series entry of a figure.
type Row struct {
	Label  string
	Values map[string]float64
	Note   string
}

// Result is a rendered experiment.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "%-24s", "")
	for _, c := range r.Columns {
		fmt.Fprintf(&sb, "%16s", c)
	}
	sb.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-24s", row.Label)
		for _, c := range r.Columns {
			v, ok := row.Values[c]
			if !ok {
				fmt.Fprintf(&sb, "%16s", "-")
				continue
			}
			fmt.Fprintf(&sb, "%16.4g", v)
		}
		if row.Note != "" {
			fmt.Fprintf(&sb, "  %s", row.Note)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// All runs every experiment (the full §VII regeneration) and returns the
// results in paper order.
func All(cfg Config) ([]Result, error) {
	type namedFn struct {
		name string
		fn   func(Config) (Result, error)
	}
	fns := []namedFn{
		{"table1", Table1},
		{"fig1a", Fig1a},
		{"fig1b", Fig1b},
		{"fig6", Fig6},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12a", Fig12Datasets},
		{"fig12d", Fig12Queries},
		{"table2", Table2},
		{"table3", Table3},
		{"table4", Table4},
		{"emit", EmitPipeline},
		{"session", SessionReuse},
	}
	var out []Result
	for _, nf := range fns {
		r, err := nf.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", nf.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ByID returns the experiment runner for an id, or nil.
func ByID(id string) func(Config) (Result, error) {
	switch id {
	case "table1":
		return Table1
	case "fig1a":
		return Fig1a
	case "fig1b":
		return Fig1b
	case "fig6":
		return Fig6
	case "fig8":
		return Fig8
	case "fig9":
		return Fig9
	case "fig10":
		return Fig10
	case "fig11":
		return Fig11
	case "fig12a":
		return Fig12Datasets
	case "fig12d":
		return Fig12Queries
	case "table2":
		return Table2
	case "table3":
		return Table3
	case "table4":
		return Table4
	case "emit":
		return EmitPipeline
	case "session":
		return SessionReuse
	default:
		return nil
	}
}

// IDs lists experiment ids in paper order.
func IDs() []string {
	return []string{"table1", "fig1a", "fig1b", "fig6", "fig8", "fig9",
		"fig10", "fig11", "fig12a", "fig12d", "table2", "table3", "table4", "emit",
		"session"}
}
