package experiments

import (
	"adj/internal/dataset"
	"adj/internal/engine"
)

// Fig12Datasets reproduces Fig. 12(a)–(c): every engine's total time with
// the query fixed (Q1, Q2, Q3) across all datasets. Failures (budget /
// memory) render as +Inf-style notes, matching the paper's frame-top bars
// and missing bars.
func Fig12Datasets(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig12a-c",
		Title:   "Engine total seconds; queries fixed Q1/Q2/Q3, datasets vary",
		Columns: engine.EngineNames(),
	}
	for _, qn := range []string{"Q1", "Q2", "Q3"} {
		for _, ds := range dataset.Names() {
			row, err := engineRow(cfg, qn, ds)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Fig12Queries reproduces Fig. 12(d)–(f): datasets fixed (AS, LJ, OK),
// queries Q1–Q6 vary.
func Fig12Queries(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig12d-f",
		Title:   "Engine total seconds; datasets fixed AS/LJ/OK, queries vary",
		Columns: engine.EngineNames(),
	}
	for _, ds := range []string{"AS", "LJ", "OK"} {
		for _, qn := range []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"} {
			row, err := engineRow(cfg, qn, ds)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// engineRow runs all five engines on one test case.
func engineRow(cfg Config, qn, ds string) (Row, error) {
	edges := cfg.graph(ds)
	q, rels := bindQ(qn, edges)
	row := Row{Label: qn + "/" + ds, Values: map[string]float64{}}
	reg := engine.Engines()
	for _, name := range engine.EngineNames() {
		rep, err := reg[name](q, rels, cfg.engineConfig())
		if err != nil {
			return row, err
		}
		if rep.Failed {
			if row.Note != "" {
				row.Note += " "
			}
			row.Note += name + "=FAIL(" + rep.FailReason + ")"
			continue
		}
		row.Values[name] = rep.Total()
	}
	return row, nil
}
