package experiments

import (
	"adj/internal/dataset"
	"adj/internal/engine"
)

// Fig1a reproduces Fig. 1(a): shuffled tuples of one-round (HCubeJ) vs
// multi-round (SparkSQL-style binary join) on Q5 and Q6 over LJ. The paper
// shows multi-round shuffling orders of magnitude more.
func Fig1a(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig1a",
		Title:   "One-round vs multi-round: tuples shuffled (LJ)",
		Columns: []string{"OneRound", "MultiRound"},
	}
	edges := cfg.graph("LJ")
	for _, qn := range []string{"Q5", "Q6"} {
		q, rels := bindQ(qn, edges)
		one, err := engine.RunHCubeJ(q, rels, cfg.engineConfig())
		if err != nil {
			return res, err
		}
		multi, err := engine.RunBinaryJoin(q, rels, cfg.engineConfig())
		if err != nil {
			return res, err
		}
		row := Row{Label: qn + "/LJ", Values: map[string]float64{
			"OneRound":   float64(one.TuplesShuffled),
			"MultiRound": float64(multi.TuplesShuffled),
		}}
		if multi.Failed {
			row.Note = "multi-round FAILED(" + multi.FailReason + "): tuple count is a lower bound"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig1b reproduces Fig. 1(b): cost breakdown of the communication-first
// strategy vs co-optimization on Q5 and Q6 over LJ. Bars: Comm
// (communication), Comp (computation), Pre+Comm (pre-computing +
// communication for the co-opt strategy).
func Fig1b(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig1b",
		Title:   "Comm-first vs co-opt cost breakdown, seconds (LJ)",
		Columns: []string{"CF-Comm", "CF-Comp", "CO-Pre+Comm", "CO-Comp"},
	}
	edges := dataset.Load("LJ", cfg.Scale)
	for _, qn := range []string{"Q5", "Q6"} {
		q, rels := bindQ(qn, edges)
		cf, err := engine.RunADJCommFirst(q, rels, cfg.engineConfig())
		if err != nil {
			return res, err
		}
		co, err := engine.RunADJ(q, rels, cfg.engineConfig())
		if err != nil {
			return res, err
		}
		row := Row{Label: qn + "/LJ", Values: map[string]float64{
			"CF-Comm":     cf.Communication,
			"CF-Comp":     cf.Computation,
			"CO-Pre+Comm": co.PreComputing + co.Communication,
			"CO-Comp":     co.Computation,
		}}
		if cf.Failed {
			row.Note = "comm-first FAILED(" + cf.FailReason + ")"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
