package experiments

import (
	"fmt"
	"time"

	"adj"
)

// SessionReuse measures the server-resident Session surface on the exact
// workload the other experiments sweep: the same query repeated against
// unchanged registered relations. Each query is prepared once (planning
// amortized) and executed three times; the first execution is cold (HCube
// shuffle + shuffle-side trie builds, published to the session store), the
// rest go warm — zero shuffle traffic and zero trie builds, served from the
// content-keyed store. Columns report measured wall seconds and the
// registry counters that prove the reuse.
func SessionReuse(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "session",
		Title:   "Session repeated-query reuse (ADJ, LJ): cold vs warm execution",
		Columns: []string{"ColdSec", "WarmSec", "Speedup", "ColdBuilds", "WarmBuilds", "WarmHits"},
	}
	edges := cfg.graph("LJ")
	for _, qn := range []string{"Q1", "Q2", "Q3"} {
		row, err := sessionReuseRow(cfg, qn, edges)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// sessionReuseRow measures one query on its own session. A fresh session
// per query matters: the store's content keying deliberately crosses
// queries (a later query whose shuffle agrees on shares and permutation
// adopts an earlier query's tries), which would turn a "cold" row warm and
// flatten the measured speedup.
func sessionReuseRow(cfg Config, qn string, edges *adj.Relation) (Row, error) {
	sess, err := adj.Open(adj.Options{
		Workers: cfg.Workers, Samples: cfg.Samples, Seed: cfg.Seed, Budget: cfg.Budget,
	})
	if err != nil {
		return Row{}, err
	}
	defer sess.Close()
	if err := sess.Register("edges", edges); err != nil {
		return Row{}, err
	}
	pq, err := sess.PrepareGraph("ADJ", adj.CatalogQuery(qn), "edges")
	if err != nil {
		return Row{}, err
	}
	var coldSec, warmSec float64
	var coldBuilds, warmBuilds, warmHits int64
	var warmRuns int
	var count int64 = -1
	for exec := 0; exec < 3; exec++ {
		t0 := time.Now()
		r, err := pq.Exec(cfg.ctx(), adj.CountOnly())
		if err != nil {
			return Row{}, fmt.Errorf("%s exec %d: %w", qn, exec, err)
		}
		wall := time.Since(t0).Seconds()
		rep := r.Report()
		if rep.Failed {
			return Row{}, fmt.Errorf("%s exec %d failed: %s", qn, exec, rep.FailReason)
		}
		if count < 0 {
			count = r.Count()
		} else if r.Count() != count {
			return Row{}, fmt.Errorf("%s exec %d: count %d != cold count %d", qn, exec, r.Count(), count)
		}
		if exec == 0 {
			coldSec = wall
			coldBuilds = rep.TrieBuilds
			continue
		}
		warmSec += wall
		warmBuilds += rep.TrieBuilds
		warmHits += rep.TrieCacheHits
		warmRuns++
	}
	warmSec /= float64(warmRuns)
	speedup := 0.0
	if warmSec > 0 {
		speedup = coldSec / warmSec
	}
	return Row{
		Label: qn + fmt.Sprintf(" (|Q|=%d)", count),
		Values: map[string]float64{
			"ColdSec":    coldSec,
			"WarmSec":    warmSec,
			"Speedup":    speedup,
			"ColdBuilds": float64(coldBuilds),
			"WarmBuilds": float64(warmBuilds),
			"WarmHits":   float64(warmHits),
		},
	}, nil
}
