package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// tinyCfg keeps experiment smoke tests fast.
func tinyCfg() Config {
	return Config{Scale: 0.02, Workers: 4, Samples: 100, Seed: 1, Budget: 5_000_000}
}

func TestTable1(t *testing.T) {
	r, err := Table1(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	// Size ordering preserved.
	if r.Rows[0].Values["Edges"] >= r.Rows[5].Values["Edges"] {
		t.Fatal("WB should be smaller than OK")
	}
	if !strings.Contains(r.String(), "Table1") {
		t.Fatal("render broken")
	}
}

func TestFig1a(t *testing.T) {
	r, err := Fig1a(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		one := row.Values["OneRound"]
		multi := row.Values["MultiRound"]
		if one <= 0 {
			t.Fatalf("%s: no one-round tuples", row.Label)
		}
		// The paper's claim: multi-round shuffles more on cyclic queries.
		if multi > 0 && multi < one {
			t.Errorf("%s: multi-round %f < one-round %f", row.Label, multi, one)
		}
	}
}

func TestFig1b(t *testing.T) {
	r, err := Fig1b(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if len(row.Values) == 0 {
			t.Fatalf("%s: empty row", row.Label)
		}
	}
}

func TestFig6LastNodesDominate(t *testing.T) {
	r, err := Fig6(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	dominated := 0
	total := 0
	for _, row := range r.Rows {
		if row.Values == nil {
			continue
		}
		total++
		if row.Values["nth"]+row.Values["(n-1)th"] >= row.Values["rest"] {
			dominated++
		}
	}
	if total == 0 {
		t.Fatal("no rows measured")
	}
	// The paper's shape: the last two nodes dominate on most test cases.
	if dominated*2 < total {
		t.Fatalf("last-two-nodes dominated only %d/%d cases", dominated, total)
	}
}

func TestFig8PruningShape(t *testing.T) {
	cfg := tinyCfg()
	r, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	okValid := 0
	okSel := 0
	n := 0
	for _, row := range r.Rows {
		if row.Values == nil {
			continue
		}
		n++
		if row.Values["Valid-Max"] <= row.Values["Invalid-Max"]*1.01 {
			okValid++
		}
		if row.Values["Valid-Selected"] <= row.Values["All-Selected"]*1.5+1 {
			okSel++
		}
	}
	if n == 0 {
		t.Fatal("no rows")
	}
	if okValid*3 < n*2 {
		t.Fatalf("Valid-Max <= Invalid-Max held only %d/%d", okValid, n)
	}
	if okSel*3 < n*2 {
		t.Fatalf("Valid-Selected competitive only %d/%d", okSel, n)
	}
}

func TestFig9MergeBeatsPush(t *testing.T) {
	r, err := Fig9(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Values["Pull-Comm"] > row.Values["Push-Comm"]*1.05 {
			t.Errorf("%s: pull comm %.4f should not exceed push %.4f",
				row.Label, row.Values["Pull-Comm"], row.Values["Push-Comm"])
		}
	}
}

func TestFig10Converges(t *testing.T) {
	r, err := Fig10(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Values == nil {
			continue
		}
		d := row.Values["D@10000"]
		if d > 1.5 {
			t.Errorf("%s: D@10000=%.3f should be near 1", row.Label, d)
		}
	}
}

func TestFig11SpeedupPositive(t *testing.T) {
	cfg := tinyCfg()
	r, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if v, ok := row.Values["n=1"]; ok && v != 1 {
			t.Errorf("%s: speedup at n=1 is %.3f, want 1", row.Label, v)
		}
	}
}

func TestFig12RunsAllEngines(t *testing.T) {
	cfg := tinyCfg()
	r, err := Fig12Queries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ADJ must complete every test case at this scale.
	for _, row := range r.Rows {
		if _, ok := row.Values["ADJ"]; !ok {
			t.Errorf("%s: ADJ missing (note: %s)", row.Label, row.Note)
		}
	}
}

func TestTables234(t *testing.T) {
	cfg := tinyCfg()
	for _, fn := range []func(Config) (Result, error){Table2, Table3, Table4} {
		r, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 3 {
			t.Fatalf("%s: rows=%d", r.ID, len(r.Rows))
		}
		for _, row := range r.Rows {
			if row.Values["CO-Total"] <= 0 {
				t.Errorf("%s %s: no co-opt total", r.ID, row.Label)
			}
		}
	}
}

func TestEmitPipeline(t *testing.T) {
	r, err := EmitPipeline(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if row.Values == nil {
			continue
		}
		// The batched pipeline must engage (RunLen present means runs were
		// delivered); on tiny test graphs runs may be short, but never
		// fractional below one value per delivery.
		if rl, ok := row.Values["RunLen"]; !ok || rl < 1 {
			t.Errorf("%s: run length %.2f, batching not engaged", row.Label, rl)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if ByID(id) == nil {
			t.Fatalf("ByID(%q) nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id should be nil")
	}
}

// Regression for the ctxflow finding in sessionReuseRow: the harness used
// to hardwire context.Background() into Exec, so an interrupted
// cmd/experiments run kept executing. Config.Ctx must reach the session.
func TestSessionReuseHonorsCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := tinyCfg()
	cfg.Ctx = ctx
	if _, err := SessionReuse(cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("SessionReuse with a cancelled ctx: err = %v, want context.Canceled in the chain", err)
	}
}
