package experiments

import (
	"adj/internal/cluster"
	"adj/internal/dataset"
	"adj/internal/hcube"
	"adj/internal/trie"
)

// Fig9 reproduces Fig. 9: the three HCube implementations (Push, Pull,
// Merge) compared on communication and computation cost, for Q2 over every
// dataset. Communication is the modeled exchange time; computation covers
// the shuffle's local work plus trie construction at the receivers (which
// Merge skips by shipping pre-built tries).
func Fig9(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig9",
		Title:   "HCube implementations (Q2): comm/comp seconds",
		Columns: []string{"Push-Comm", "Pull-Comm", "Merge-Comm", "Push-Comp", "Pull-Comp", "Merge-Comp"},
	}
	for _, ds := range dataset.Names() {
		edges := cfg.graph(ds)
		q, rels := bindQ("Q2", edges)
		order := q.Attrs()
		infos := hcube.InfoOf(rels)
		row := Row{Label: "Q2/" + ds, Values: map[string]float64{}}
		for _, kind := range []hcube.Kind{hcube.Push, hcube.Pull, hcube.Merge} {
			// Sequential: the figure reports simulated per-worker timings
			// (see Config.engineConfig).
			c := cluster.New(cluster.Config{N: cfg.Workers, Sequential: true})
			c.LoadDatabase(rels)
			shares, err := hcube.Optimize(infos, hcube.Config{Attrs: order, NumServers: cfg.Workers})
			if err != nil {
				return res, err
			}
			if err := hcube.Run(c, "shuffle", hcube.Plan{
				Shares: shares, Rels: infos, Kind: kind, TrieOrder: order,
			}); err != nil {
				return res, err
			}
			// Receiver-side trie construction: Merge already has tries; the
			// others build them now (as the join engine would).
			err = c.Parallel("tries", func(w *cluster.Worker) error {
				for cube, db := range w.Cubes {
					tdb := w.CubeTrieDB(cube)
					for name, frag := range db {
						if _, ok := tdb[name]; ok {
							continue
						}
						var attrs []string
						for _, ri := range infos {
							if ri.Name == name {
								attrs = sortByOrder(ri.Attrs, order)
								break
							}
						}
						tdb[name] = trie.Build(frag, attrs)
					}
				}
				return nil
			})
			if err != nil {
				return res, err
			}
			var comm, comp float64
			for _, p := range c.Metrics.Phases() {
				comm += p.CommSeconds
				comp += p.CompSeconds
			}
			label := kind.String()
			label = string(label[0]-('a'-'A')) + label[1:]
			row.Values[label+"-Comm"] = comm
			row.Values[label+"-Comp"] = comp
			c.Close()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func sortByOrder(attrs, order []string) []string {
	pos := map[string]int{}
	for i, a := range order {
		pos[a] = i
	}
	out := append([]string(nil), attrs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && pos[out[j]] < pos[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
