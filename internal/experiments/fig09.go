package experiments

import (
	"adj/internal/cluster"
	"adj/internal/dataset"
	"adj/internal/hcube"
)

// Fig9 reproduces Fig. 9: the three HCube implementations (Push, Pull,
// Merge) compared on communication and computation cost, for Q2 over every
// dataset. Communication is the modeled exchange time; computation covers
// the shuffle's local work plus trie construction at the receivers (which
// Merge skips by shipping pre-built tries).
func Fig9(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig9",
		Title:   "HCube implementations (Q2): comm/comp seconds",
		Columns: []string{"Push-Comm", "Pull-Comm", "Merge-Comm", "Push-Comp", "Pull-Comp", "Merge-Comp"},
	}
	for _, ds := range dataset.Names() {
		edges := cfg.graph(ds)
		q, rels := bindQ("Q2", edges)
		order := q.Attrs()
		infos := hcube.InfoOf(rels)
		row := Row{Label: "Q2/" + ds, Values: map[string]float64{}}
		for _, kind := range []hcube.Kind{hcube.Push, hcube.Pull, hcube.Merge} {
			// Sequential: the figure reports simulated per-worker timings
			// (see Config.engineConfig).
			c := cluster.New(cluster.Config{N: cfg.Workers, Sequential: true})
			c.LoadDatabase(rels)
			shares, err := hcube.Optimize(infos, hcube.Config{Attrs: order, NumServers: cfg.Workers})
			if err != nil {
				return res, err
			}
			if err := hcube.Run(c, "shuffle", hcube.Plan{
				Shares: shares, Rels: infos, Kind: kind, TrieOrder: order,
			}); err != nil {
				return res, err
			}
			// Receiver-side trie construction: materialize every cube trie
			// from the block registry (as the join engine would at first
			// use). Push/Pull pay full block builds here; Merge only merges
			// the pre-built tries it received — the cost gap the figure
			// reports.
			err = c.Parallel("tries", func(w *cluster.Worker) error {
				for _, cube := range w.Blocks.Cubes() {
					for _, name := range w.Blocks.CubeRels(cube) {
						w.Blocks.CubeTrie(cube, name)
					}
				}
				return nil
			})
			if err != nil {
				return res, err
			}
			var comm, comp float64
			for _, p := range c.Metrics.Phases() {
				comm += p.CommSeconds
				comp += p.CompSeconds
			}
			label := kind.String()
			label = string(label[0]-('a'-'A')) + label[1:]
			row.Values[label+"-Comm"] = comm
			row.Values[label+"-Comp"] = comp
			c.Close()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
