package experiments

import (
	"fmt"
	"math"

	"adj/internal/dataset"
	"adj/internal/leapfrog"
	"adj/internal/sampling"
)

// Fig10 reproduces Fig. 10: sampling cost and accuracy versus sample count
// for Q4–Q6 on LJ. Accuracy is D = max(est, truth)/min(est, truth) — the
// paper's "max relative difference"; it converges to 1 once the budget
// passes ~10⁴ samples at full scale (~10³ here). Cost is the measured
// sampling time.
func Fig10(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig10",
		Title:   "Sampling cost (seconds) and accuracy (D) vs #samples (LJ)",
		Columns: []string{"k=100", "k=1000", "k=10000", "D@100", "D@1000", "D@10000"},
	}
	edges := dataset.Load("LJ", cfg.Scale)
	sampleSizes := []int{100, 1000, 10000}
	for _, qn := range []string{"Q4", "Q5", "Q6"} {
		q, rels := bindQ(qn, edges)
		order := q.Attrs()
		exact, err := leapfrog.JoinRelations(rels, order, leapfrog.Options{Budget: cfg.Budget})
		if err != nil {
			res.Rows = append(res.Rows, Row{Label: qn + "/LJ", Note: "exact count over budget"})
			continue
		}
		truth := float64(exact.Results)
		row := Row{Label: qn + "/LJ", Values: map[string]float64{}}
		for _, k := range sampleSizes {
			est, err := sampling.EstimateCardinality(rels, order, sampling.Config{
				Samples: k, Seed: cfg.Seed,
			})
			if err != nil {
				return res, err
			}
			d := maxRatio(est.Cardinality, truth)
			row.Values[fmt.Sprintf("k=%d", k)] = est.Seconds
			row.Values[fmt.Sprintf("D@%d", k)] = d
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func maxRatio(a, b float64) float64 {
	if a <= 0 && b <= 0 {
		return 1
	}
	if a <= 0 || b <= 0 {
		return math.Inf(1)
	}
	return math.Max(a, b) / math.Min(a, b)
}
