package experiments

import (
	"adj/internal/dataset"
	"adj/internal/engine"
)

// Table1 reproduces Table I: dataset statistics (for the synthetic
// analogues at the configured scale).
func Table1(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Table1",
		Title:   "Datasets (synthetic analogues; |R| scales with --scale)",
		Columns: []string{"Edges", "Nodes", "MaxOutDeg", "AvgDeg", "SizeMB"},
	}
	for _, name := range dataset.Names() {
		st := dataset.StatsOf(name, cfg.graph(name))
		res.Rows = append(res.Rows, Row{Label: name, Values: map[string]float64{
			"Edges":     float64(st.Edges),
			"Nodes":     float64(st.Nodes),
			"MaxOutDeg": float64(st.MaxOut),
			"AvgDeg":    st.AvgDegree,
			"SizeMB":    st.SizeMB,
		}})
	}
	return res, nil
}

// Table2 reproduces Table II (AS dataset): co-optimization vs
// communication-first, cost breakdown per phase for Q4–Q6.
func Table2(cfg Config) (Result, error) { return coOptTable(cfg, "Table2", "AS") }

// Table3 reproduces Table III (LJ dataset).
func Table3(cfg Config) (Result, error) { return coOptTable(cfg, "Table3", "LJ") }

// Table4 reproduces Table IV (OK dataset).
func Table4(cfg Config) (Result, error) { return coOptTable(cfg, "Table4", "OK") }

func coOptTable(cfg Config, id, ds string) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:    id,
		Title: "Co-opt vs comm-first on " + ds + " (seconds)",
		Columns: []string{
			"CO-Opt", "CO-Pre", "CO-Comm", "CO-Comp", "CO-Total",
			"CF-Opt", "CF-Comm", "CF-Comp", "CF-Total",
		},
	}
	edges := cfg.graph(ds)
	for _, qn := range []string{"Q4", "Q5", "Q6"} {
		q, rels := bindQ(qn, edges)
		co, err := engine.RunADJ(q, rels, cfg.engineConfig())
		if err != nil {
			return res, err
		}
		cf, err := engine.RunADJCommFirst(q, rels, cfg.engineConfig())
		if err != nil {
			return res, err
		}
		row := Row{Label: qn + "/" + ds, Values: map[string]float64{
			"CO-Opt":   co.Optimization,
			"CO-Pre":   co.PreComputing,
			"CO-Comm":  co.Communication,
			"CO-Comp":  co.Computation,
			"CO-Total": co.Total(),
			"CF-Opt":   cf.Optimization,
			"CF-Comm":  cf.Communication,
			"CF-Comp":  cf.Computation,
			"CF-Total": cf.Total(),
		}}
		if co.Failed {
			row.Note += "co-opt FAILED(" + co.FailReason + ") "
		}
		if cf.Failed {
			row.Note += "comm-first FAILED(" + cf.FailReason + ") — total is a lower bound"
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
