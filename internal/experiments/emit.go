package experiments

import (
	"fmt"
	"time"

	"adj/internal/leapfrog"
	"adj/internal/relation"
)

// EmitPipeline measures the result-materialization pipeline on emit-bound
// listing queries (triangle and 4-cycle), where output volume dwarfs
// input and the paper's evaluation is dominated by how fast results leave
// the leaf intersection. It lists every result twice — once through the
// batched columnar sink (relation.ColumnWriter) and once through the
// legacy per-tuple emit shim — and reports the wall seconds of each, the
// sink's speedup, and the average run length (results per sink delivery:
// the batching factor the columnar pipeline exploits).
func EmitPipeline(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "EmitPipeline",
		Title:   "Result listing: batched columnar sink vs per-tuple emit (WB)",
		Columns: []string{"Sink-Sec", "PerTuple-Sec", "Speedup", "RunLen"},
	}
	edges := cfg.graph("WB")
	for _, qn := range []string{"Q1", "Q2"} {
		q, rels := bindQ(qn, edges)
		order := q.Attrs()
		tries := leapfrog.BuildTries(rels, order)

		sinkOut := relation.New("out", order...)
		t0 := time.Now()
		sinkSt, err := leapfrog.Join(tries, order, leapfrog.Options{
			Sink: relation.NewColumnWriter(sinkOut), Budget: cfg.Budget,
		})
		sinkSec := time.Since(t0).Seconds()
		if err != nil {
			res.Rows = append(res.Rows, Row{Label: qn + "/WB", Note: "budget exceeded"})
			continue
		}

		tupleOut := relation.New("out", order...)
		t0 = time.Now()
		tupleSt, err := leapfrog.Join(tries, order, leapfrog.Options{
			Emit: func(t relation.Tuple) { tupleOut.AppendTuple(t) }, Budget: cfg.Budget,
		})
		tupleSec := time.Since(t0).Seconds()
		if err != nil {
			res.Rows = append(res.Rows, Row{Label: qn + "/WB", Note: "budget exceeded"})
			continue
		}
		if sinkSt.Results != tupleSt.Results || sinkOut.Len() != tupleOut.Len() {
			return res, fmt.Errorf("emit pipeline: %s: sink listed %d tuples, per-tuple %d",
				qn, sinkOut.Len(), tupleOut.Len())
		}
		row := Row{Label: qn + "/WB", Values: map[string]float64{
			"Sink-Sec":     sinkSec,
			"PerTuple-Sec": tupleSec,
		}}
		if sinkSec > 0 {
			row.Values["Speedup"] = tupleSec / sinkSec
		}
		if sinkSt.EmittedRuns > 0 {
			row.Values["RunLen"] = float64(sinkSt.EmittedValues) / float64(sinkSt.EmittedRuns)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
