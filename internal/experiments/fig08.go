package experiments

import (
	"adj/internal/costmodel"
	"adj/internal/dataset"
	"adj/internal/ghd"
	"adj/internal/leapfrog"
	"adj/internal/optimizer"
)

// Fig8 reproduces Fig. 8: effectiveness of attribute-order pruning. For
// Q4–Q6 over every dataset it measures the exact number of intermediate
// tuples under four orders:
//
//	Invalid-Max    — worst order among those NOT valid for the hypertree
//	Valid-Max      — worst order among the valid ones
//	All-Selected   — the order HCubeJ picks when searching all n! orders
//	Valid-Selected — the order ADJ picks among valid orders
//
// Expected shape: Valid-Max ≤ Invalid-Max and Valid-Selected ≤ All-Selected.
func Fig8(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	// Exact counts for every order are expensive; measure on a reduced
	// scale — and with a tight per-order budget — so 120 orders × 18 test
	// cases stay fast. Orders that exceed the budget report it as a lower
	// bound, which preserves every max-comparison the figure makes.
	scale := cfg.Scale / 2
	perOrderBudget := cfg.Budget / 20
	if perOrderBudget < 100_000 {
		perOrderBudget = 100_000
	}
	res := Result{
		ID:      "Fig8",
		Title:   "Attribute-order pruning: intermediate tuples per order class",
		Columns: []string{"Invalid-Max", "Valid-Max", "All-Selected", "Valid-Selected"},
	}
	for _, qn := range []string{"Q4", "Q5", "Q6"} {
		for _, ds := range dataset.Names() {
			edges := dataset.Load(ds, scale)
			q, rels := bindQ(qn, edges)
			d, err := ghd.Decompose(q, ghd.Options{})
			if err != nil {
				return res, err
			}
			valid := make(map[string]bool)
			for _, o := range d.ValidAttrOrders() {
				valid[orderKey(o)] = true
			}
			all := ghd.AllAttrOrders(q.Attrs())
			counts := make(map[string]float64, len(all))
			var invalidMax, validMax float64
			truncated := false
			for _, ord := range all {
				st, err := leapfrog.JoinRelations(rels, ord, leapfrog.Options{Budget: perOrderBudget})
				var c float64
				if err != nil {
					c = float64(perOrderBudget) // at least this much
					truncated = true
				} else {
					c = float64(st.Total())
				}
				counts[orderKey(ord)] = c
				if valid[orderKey(ord)] {
					if c > validMax {
						validMax = c
					}
				} else if c > invalidMax {
					invalidMax = c
				}
			}
			// Selected orders via the sampling-based chooser.
			opt, err := optimizer.New(q, rels, optimizer.Options{
				Params:  costmodel.DefaultParams(cfg.Workers),
				Samples: cfg.Samples,
				Seed:    cfg.Seed,
			})
			if err != nil {
				return res, err
			}
			// All-Selected: the comm-first baseline's sketch-based selection
			// over all n! orders; Valid-Selected: ADJ's sampling-based
			// selection restricted to valid orders.
			allSel := opt.ChooseOrderSketch(all)
			validSel := opt.ChooseOrder(d.ValidAttrOrders())
			row := Row{Label: qn + "/" + ds, Values: map[string]float64{
				"Invalid-Max":    invalidMax,
				"Valid-Max":      validMax,
				"All-Selected":   counts[orderKey(allSel)],
				"Valid-Selected": counts[orderKey(validSel)],
			}}
			if truncated {
				row.Note = "some orders hit the budget (lower bounds)"
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func orderKey(o []string) string {
	k := ""
	for _, a := range o {
		k += a + "\x00"
	}
	return k
}
