package experiments

import (
	"adj/internal/dataset"
	"adj/internal/ghd"
	"adj/internal/leapfrog"
)

// Fig6 reproduces Fig. 6: the fraction of Leapfrog intermediate tuples
// produced while extending the n-th, (n−1)-th and remaining traversed GHD
// nodes, for Q5 and Q6 over every dataset. The paper's point: the last two
// nodes dominate, so pre-computing them has the greatest benefit.
func Fig6(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{
		ID:      "Fig6",
		Title:   "% of intermediate tuples by traversed node (last / second-last / rest)",
		Columns: []string{"nth", "(n-1)th", "rest"},
	}
	for _, qn := range []string{"Q5", "Q6"} {
		for _, ds := range dataset.Names() {
			edges := cfg.graph(ds)
			q, rels := bindQ(qn, edges)
			d, err := ghd.Decompose(q, ghd.Options{})
			if err != nil {
				return res, err
			}
			traversal := d.TraversalOrders()[0]
			order := d.AttrOrderFor(traversal)
			st, err := leapfrog.JoinRelations(rels, order, leapfrog.Options{Budget: cfg.Budget})
			if err != nil {
				res.Rows = append(res.Rows, Row{Label: qn + "/" + ds, Note: "budget exceeded"})
				continue
			}
			// Attribute each level to the traversed node introducing it.
			groups := d.NewAttrsAt(traversal)
			nodeOfLevel := make([]int, len(order))
			lvl := 0
			for ni, grp := range groups {
				for range grp {
					nodeOfLevel[lvl] = ni
					lvl++
				}
			}
			perNode := make([]float64, len(groups))
			var total float64
			for i, c := range st.LevelTuples {
				perNode[nodeOfLevel[i]] += float64(c)
				total += float64(c)
			}
			if total == 0 {
				continue
			}
			n := len(groups)
			row := Row{Label: qn + "/" + ds, Values: map[string]float64{
				"nth": perNode[n-1] / total,
			}}
			if n >= 2 {
				row.Values["(n-1)th"] = perNode[n-2] / total
			}
			rest := 0.0
			for i := 0; i < n-2; i++ {
				rest += perNode[i]
			}
			row.Values["rest"] = rest / total
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}
