package trie

// Columnar build path: when the source relation is columnar-resident the
// builder never strides over row blocks. The first-difference marks are
// computed with one sequential scan per column, radix key gathers read a
// single contiguous column per pass, and the fill writes each trie level
// from its own column — for pre-sorted input (the shuffle-block common
// case) every pass is a pure sequential scan.

// buildCols fills t from per-attribute column slices; rcols is indexed by
// source column position, cols maps trie level d to its source column.
func (b *Builder) buildCols(t *Trie, rcols [][]Value, cols []int, k, n int) {
	b.grow(n)
	if cap(b.pcols) < k {
		b.pcols = make([][]Value, k)
	}
	pcols := b.pcols[:k]
	for d := 0; d < k; d++ {
		pcols[d] = rcols[cols[d]]
	}

	// First-difference marks, column-major: first[i] ends up as the first
	// trie level where row i differs from row i-1 (k = duplicate). Scanning
	// levels from deepest to shallowest makes the last write the smallest
	// differing level, and each scan is one sequential pass over a column.
	first := b.first[:n]
	first[0] = 0
	for i := 1; i < n; i++ {
		first[i] = int32(k)
	}
	for d := k - 1; d >= 0; d-- {
		col := pcols[d]
		for i := 1; i < n; i++ {
			if col[i] != col[i-1] {
				first[i] = int32(d)
			}
		}
	}
	// Sortedness check: a row pair's order is decided at its first
	// differing level.
	sorted := true
	for i := 1; i < n; i++ {
		if f := first[i]; f < int32(k) && pcols[f][i] < pcols[f][i-1] {
			sorted = false
			break
		}
	}

	idx := b.idx[:n]
	if sorted {
		for i := range idx {
			idx[i] = int32(i)
		}
	} else {
		idx = b.sortRowsCols(pcols, k, n)
		for i := 1; i < n; i++ {
			a, c := idx[i-1], idx[i]
			f := int32(k)
			for d := 0; d < k; d++ {
				if pcols[d][a] != pcols[d][c] {
					f = int32(d)
					break
				}
			}
			first[i] = f
		}
		first[0] = 0
	}

	// Counting pass: nodes[d] = rows with first ≤ d = trie nodes at level d.
	nodes := make([]int32, k)
	for i := 0; i < n; i++ {
		if f := first[i]; f < int32(k) {
			nodes[f]++
		}
	}
	for d := 1; d < k; d++ {
		nodes[d] += nodes[d-1]
	}
	t.NumTuples = int(nodes[k-1])

	for d := 0; d < k; d++ {
		parents := int32(1)
		if d > 0 {
			parents = nodes[d-1]
		}
		t.Levels[d].Vals = make([]Value, 0, nodes[d])
		t.Levels[d].Starts = make([]int32, 0, parents+1)
	}
	t.Levels[0].Starts = append(t.Levels[0].Starts, 0)

	// Fill, level-major: creating a node at level d-1 opens a fresh child
	// range at level d (its start recorded before the row's own value
	// lands); a row with first-difference f contributes a value to every
	// level ≥ f. Each level reads exactly one column.
	for d := 0; d < k; d++ {
		lvl := &t.Levels[d]
		col := pcols[d]
		if d == 0 {
			for i := 0; i < n; i++ {
				if first[i] == 0 {
					lvl.Vals = append(lvl.Vals, col[idx[i]])
				}
			}
			continue
		}
		df := int32(d)
		for i := 0; i < n; i++ {
			f := first[i]
			if f < df {
				lvl.Starts = append(lvl.Starts, int32(len(lvl.Vals)))
			}
			if f <= df {
				lvl.Vals = append(lvl.Vals, col[idx[i]])
			}
		}
	}
	for d := 0; d < k; d++ {
		t.Levels[d].Starts = append(t.Levels[d].Starts, int32(len(t.Levels[d].Vals)))
	}
	// Drop the column references before the Builder returns to its pool:
	// a pooled Builder must not pin the source relation's data alive.
	for d := range pcols {
		pcols[d] = nil
	}
}

// sortRowsCols mirrors sortRows over columnar input: the radix key gather
// for level c reads the single contiguous column pcols[c].
func (b *Builder) sortRowsCols(pcols [][]Value, k, n int) []int32 {
	idx := b.idx[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	if n < 48 {
		insertionSortRowsCols(idx, pcols)
		return idx
	}
	keys := b.keys[:n]
	tmpIdx := b.tmpIdx[:n]
	tmpKeys := b.tmpKeys[:n]
	for c := k - 1; c >= 0; c-- {
		col := pcols[c]
		min, max := ^uint64(0), uint64(0)
		for i, r := range idx {
			u := uint64(col[r]) ^ signFlip
			keys[i] = u
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
		}
		if min == max {
			continue
		}
		idx, tmpIdx, keys, tmpKeys = radixPasses(idx, tmpIdx, keys, tmpKeys, min, max)
	}
	return idx
}

// insertionSortRowsCols sorts idx by lexicographic row comparison over
// column slices; used for tiny inputs.
func insertionSortRowsCols(idx []int32, pcols [][]Value) {
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		j := i - 1
		for j >= 0 && rowLessCols(pcols, x, idx[j]) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = x
	}
}

func rowLessCols(pcols [][]Value, a, b int32) bool {
	for _, col := range pcols {
		va, vb := col[a], col[b]
		if va != vb {
			return va < vb
		}
	}
	return false
}
