package trie

import (
	"fmt"
	"sync"

	"adj/internal/relation"
)

// Builder constructs tries directly from a relation without the
// materialize-copy → sort → dedup → FromSorted pipeline. It sorts a row
// index column-wise with an LSD radix sort over the int64 values, then
// writes exactly-sized Levels arrays in a single fill pass. All scratch
// (index permutation, gathered column keys, first-difference marks) is
// owned by the Builder and reused across builds, so a steady-state build
// allocates only the trie's own 2k level arrays.
//
// A Builder is not safe for concurrent use; pool one per goroutine (the
// package-level Build does this automatically via an internal sync.Pool).
type Builder struct {
	idx     []int32  // row permutation being sorted
	tmpIdx  []int32  // radix ping-pong buffer
	keys    []uint64 // gathered (sign-flipped) column keys, aligned with idx
	tmpKeys []uint64
	cols    []int     // permuted column positions in the source relation
	first   []int32   // first column where sorted row i differs from row i-1; k = duplicate
	pcols   [][]Value // per-level column views for the columnar build path
}

// NewBuilder returns an empty builder; scratch grows on first use.
func NewBuilder() *Builder { return &Builder{} }

var builderPool = sync.Pool{New: func() interface{} { return NewBuilder() }}

// signFlip maps int64 order onto uint64 order for radix passes.
const signFlip = uint64(1) << 63

// Build constructs a trie from r with columns reordered to attrs. See the
// package-level Build for the contract; this variant reuses the builder's
// scratch buffers.
func (b *Builder) Build(r *relation.Relation, attrs []string) *Trie {
	if len(attrs) != len(r.Attrs) {
		panic(fmt.Sprintf("trie: attr order %v is not a permutation of %v", attrs, r.Attrs))
	}
	k := len(attrs)
	n := r.Len()
	if cap(b.cols) < k {
		b.cols = make([]int, k)
	}
	cols := b.cols[:k]
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			panic(fmt.Sprintf("trie: attr order %v is not a permutation of %v", attrs, r.Attrs))
		}
		cols[i] = j
	}
	t := &Trie{Attrs: append([]string(nil), attrs...), Levels: make([]Level, k), NumTuples: 0}
	if k == 0 || n == 0 {
		for d := 0; d < k; d++ {
			t.Levels[d] = Level{Starts: []int32{0}}
		}
		if k > 0 {
			t.Levels[0].Starts = []int32{0, 0}
		}
		return t
	}

	if r.ColumnsResident() {
		// Columnar fast path: every pass below becomes a per-column
		// sequential scan instead of a stride-k walk over row blocks.
		b.buildCols(t, r.Columns(), cols, k, n)
		return t
	}

	data := r.Data()
	b.grow(n)

	// First-difference scan doubling as the sortedness check: first[i] is
	// the first permuted column where row i differs from its predecessor
	// (k means duplicate row); first[0] = 0, the first row opens a new node
	// at every level. Pre-sorted input — the common case on the hot path,
	// since base graph relations are stored sorted and shuffle blocks
	// arrive as sorted runs — needs no sort and no second comparison pass.
	first := b.first[:n]
	first[0] = 0
	sorted := true
	for i := 1; i < n; i++ {
		a := (i - 1) * k
		c := i * k
		f := int32(k)
		for d := 0; d < k; d++ {
			va, vc := data[a+cols[d]], data[c+cols[d]]
			if va != vc {
				if vc < va {
					sorted = false
				}
				f = int32(d)
				break
			}
		}
		if !sorted {
			break
		}
		first[i] = f
	}
	var idx []int32
	if sorted {
		idx = b.idx[:n]
		for i := range idx {
			idx[i] = int32(i)
		}
	} else {
		idx = b.sortRows(data, cols, k, n)
		for i := 1; i < n; i++ {
			a := int(idx[i-1]) * k
			c := int(idx[i]) * k
			f := int32(k)
			for d := 0; d < k; d++ {
				if data[a+cols[d]] != data[c+cols[d]] {
					f = int32(d)
					break
				}
			}
			first[i] = f
		}
	}

	// Counting pass: nodes[d] = number of trie nodes at level d.
	nodes := make([]int32, k)
	tuples := 0
	for i := 0; i < n; i++ {
		f := first[i]
		if f == int32(k) {
			continue // duplicate
		}
		tuples++
		for d := int(f); d < k; d++ {
			nodes[d]++
		}
	}
	t.NumTuples = tuples

	// Allocate exact-size level arrays.
	for d := 0; d < k; d++ {
		parents := int32(1)
		if d > 0 {
			parents = nodes[d-1]
		}
		t.Levels[d].Vals = make([]Value, 0, nodes[d])
		t.Levels[d].Starts = make([]int32, 0, parents+1)
	}
	t.Levels[0].Starts = append(t.Levels[0].Starts, 0)

	// Fill pass: a row with first-difference f creates one new node at every
	// level ≥ f. Creating a node at level d opens a fresh child range at
	// level d+1, whose start is recorded before any of its children land.
	for i := 0; i < n; i++ {
		f := first[i]
		if f == int32(k) {
			continue
		}
		row := int(idx[i]) * k
		for d := int(f); d < k; d++ {
			lvl := &t.Levels[d]
			lvl.Vals = append(lvl.Vals, data[row+cols[d]])
			if d+1 < k {
				nl := &t.Levels[d+1]
				nl.Starts = append(nl.Starts, int32(len(nl.Vals)))
			}
		}
	}
	for d := 0; d < k; d++ {
		t.Levels[d].Starts = append(t.Levels[d].Starts, int32(len(t.Levels[d].Vals)))
	}
	return t
}

// grow sizes the reusable scratch for n rows.
func (b *Builder) grow(n int) {
	if cap(b.idx) < n {
		b.idx = make([]int32, n)
		b.tmpIdx = make([]int32, n)
		b.keys = make([]uint64, n)
		b.tmpKeys = make([]uint64, n)
		b.first = make([]int32, n)
	}
}

// sortRows returns a permutation of [0,n) ordering rows lexicographically by
// the permuted columns. Small inputs use insertion sort; larger ones an LSD
// radix sort (stable byte passes per column, last column first), skipping
// byte positions that are constant across the column.
func (b *Builder) sortRows(data []Value, cols []int, k, n int) []int32 {
	idx := b.idx[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	if n < 48 {
		insertionSortRows(idx, data, cols, k)
		return idx
	}
	keys := b.keys[:n]
	tmpIdx := b.tmpIdx[:n]
	tmpKeys := b.tmpKeys[:n]
	for c := k - 1; c >= 0; c-- {
		col := cols[c]
		min, max := ^uint64(0), uint64(0)
		for i, r := range idx {
			u := uint64(data[int(r)*k+col]) ^ signFlip
			keys[i] = u
			if u < min {
				min = u
			}
			if u > max {
				max = u
			}
		}
		if min == max {
			continue
		}
		idx, tmpIdx, keys, tmpKeys = radixPasses(idx, tmpIdx, keys, tmpKeys, min, max)
	}
	return idx
}

// radixPasses runs the stable LSD byte passes over keys (skipping byte
// positions constant across [min, max]) and returns the rotated buffers.
// Shared by the row-major and columnar sort paths.
func radixPasses(idx, tmpIdx []int32, keys, tmpKeys []uint64, min, max uint64) ([]int32, []int32, []uint64, []uint64) {
	// Bytes strictly above the highest differing byte are constant.
	hi := 0
	for s := 1; s < 8; s++ {
		if (min >> (8 * s)) != (max >> (8 * s)) {
			hi = s
		}
	}
	for s := 0; s <= hi; s++ {
		shift := uint(8 * s)
		var counts [256]int32
		for _, u := range keys {
			counts[(u>>shift)&0xff]++
		}
		var sum int32
		for v := 0; v < 256; v++ {
			cnt := counts[v]
			counts[v] = sum
			sum += cnt
		}
		for i, u := range keys {
			p := counts[(u>>shift)&0xff]
			counts[(u>>shift)&0xff] = p + 1
			tmpIdx[p] = idx[i]
			tmpKeys[p] = u
		}
		idx, tmpIdx = tmpIdx, idx
		keys, tmpKeys = tmpKeys, keys
	}
	return idx, tmpIdx, keys, tmpKeys
}

// insertionSortRows sorts idx by lexicographic row comparison; used for the
// tiny relations where radix setup costs more than it saves.
func insertionSortRows(idx []int32, data []Value, cols []int, k int) {
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		j := i - 1
		for j >= 0 && rowLess(data, cols, k, x, idx[j]) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = x
	}
}

func rowLess(data []Value, cols []int, k int, a, b int32) bool {
	ra, rb := int(a)*k, int(b)*k
	for _, c := range cols {
		va, vb := data[ra+c], data[rb+c]
		if va != vb {
			return va < vb
		}
	}
	return false
}
