// Package trie implements the sorted trie representation of relations used
// by the Leapfrog triejoin (§II-A of the paper) and by the Merge variant of
// HCube (§V), where tries are pre-built per block and merged at the
// receiving server.
//
// A trie over a relation of arity k has k levels. Level d stores, for every
// node of level d-1, the ascending distinct values that extend it. The
// layout is the "three arrays" scheme the paper mentions, generalized to
// arbitrary arity: per level a flat value array plus a starts array that
// delimits each parent's child range.
package trie

import (
	"fmt"

	"adj/internal/relation"
)

// Value mirrors relation.Value.
type Value = relation.Value

// Level is one depth of the trie.
type Level struct {
	// Vals holds the child values of every parent node, grouped by parent,
	// ascending within each group.
	Vals []Value
	// Starts has one entry per parent node plus a terminator: children of
	// parent p are Vals[Starts[p]:Starts[p+1]]. Level 0 has exactly one
	// parent (the root), so Starts is [0, numRootChildren].
	Starts []int32
}

// Trie is a static, immutable sorted trie over a relation.
type Trie struct {
	Attrs  []string
	Levels []Level
	// NumTuples is the number of distinct tuples represented.
	NumTuples int
}

// Build constructs a trie from r with columns reordered to `attrs` (which
// must be a permutation of r.Attrs). Rows are sorted and deduplicated into
// the trie's level arrays without materializing a permuted copy; r itself
// is not modified. Scratch buffers come from an internal Builder pool, so
// repeated builds (the per-cube loop of the engines) are allocation-light.
func Build(r *relation.Relation, attrs []string) *Trie {
	b := builderPool.Get().(*Builder)
	t := b.Build(r, attrs)
	builderPool.Put(b)
	return t
}

// FromSorted constructs a trie from a relation already sorted
// lexicographically with duplicates removed, without copying the data again.
func FromSorted(r *relation.Relation) *Trie {
	k := r.Arity()
	n := r.Len()
	t := &Trie{Attrs: append([]string(nil), r.Attrs...), Levels: make([]Level, k), NumTuples: n}
	if k == 0 || n == 0 {
		for d := 0; d < k; d++ {
			t.Levels[d] = Level{Starts: []int32{0}}
		}
		if k > 0 {
			t.Levels[0].Starts = []int32{0, 0}
		}
		return t
	}
	// prevGroup[i] = index of the level-(d-1) node owning tuple row i.
	// At level 0 all rows share the root.
	group := make([]int32, n)
	for d := 0; d < k; d++ {
		lvl := &t.Levels[d]
		var parents int32
		if d == 0 {
			parents = 1
		} else {
			parents = int32(len(t.Levels[d-1].Vals))
		}
		lvl.Starts = make([]int32, 0, parents+1)
		newGroup := make([]int32, n)
		prevParent := int32(-1)
		for i := 0; i < n; i++ {
			p := group[i]
			v := r.Tuple(i)[d]
			if p != prevParent {
				// Starting a new parent: close out starts up to p.
				for int32(len(lvl.Starts)) <= p {
					lvl.Starts = append(lvl.Starts, int32(len(lvl.Vals)))
				}
				prevParent = p
				lvl.Vals = append(lvl.Vals, v)
			} else if lvl.Vals[len(lvl.Vals)-1] != v {
				lvl.Vals = append(lvl.Vals, v)
			}
			newGroup[i] = int32(len(lvl.Vals) - 1)
		}
		for int32(len(lvl.Starts)) <= parents {
			lvl.Starts = append(lvl.Starts, int32(len(lvl.Vals)))
		}
		group = newGroup
	}
	return t
}

// Arity returns the number of levels.
func (t *Trie) Arity() int { return len(t.Levels) }

// Len returns the number of tuples.
func (t *Trie) Len() int { return t.NumTuples }

// SizeValues returns the total number of stored values across levels; the
// Merge HCube uses it to account serialized size.
func (t *Trie) SizeValues() int {
	s := 0
	for _, l := range t.Levels {
		s += len(l.Vals)
	}
	return s
}

// MemBytes estimates the resident heap size of the trie: level value and
// start arrays plus a fixed struct overhead. The session block-trie store
// charges entries against its byte budget with this estimate.
func (t *Trie) MemBytes() int64 {
	b := int64(64) // struct + slice headers
	for _, l := range t.Levels {
		b += int64(len(l.Vals))*8 + int64(len(l.Starts))*4
	}
	for _, a := range t.Attrs {
		b += int64(len(a)) + 16
	}
	return b
}

// Children returns the child value slice of parent node p at level d.
func (t *Trie) Children(d int, p int32) []Value {
	l := t.Levels[d]
	return l.Vals[l.Starts[p]:l.Starts[p+1]]
}

// Enumerate streams all tuples in lexicographic order into fn; fn must copy
// the tuple if it retains it. Enumeration order equals the sorted relation.
func (t *Trie) Enumerate(fn func(relation.Tuple)) {
	k := t.Arity()
	if k == 0 || t.NumTuples == 0 {
		return
	}
	row := make([]Value, k)
	var rec func(d int, parent int32)
	rec = func(d int, parent int32) {
		l := t.Levels[d]
		for i := l.Starts[parent]; i < l.Starts[parent+1]; i++ {
			row[d] = l.Vals[i]
			if d == k-1 {
				fn(row)
			} else {
				rec(d+1, i)
			}
		}
	}
	rec(0, 0)
}

// ToRelation materializes the trie back into a sorted relation.
func (t *Trie) ToRelation(name string) *relation.Relation {
	out := relation.NewWithCapacity(name, t.NumTuples, t.Attrs...)
	t.Enumerate(func(tp relation.Tuple) { out.AppendTuple(tp) })
	return out
}

// String summarizes the trie shape.
func (t *Trie) String() string {
	return fmt.Sprintf("trie(%v) tuples=%d values=%d", t.Attrs, t.NumTuples, t.SizeValues())
}
