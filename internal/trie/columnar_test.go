package trie

import (
	"math/rand"
	"testing"

	"adj/internal/relation"
)

// randomRel builds a random relation; small domains force shared prefixes
// and duplicate rows, the shapes that stress the trie fill.
func randomRel(rng *rand.Rand, arity, n, domain int) *relation.Relation {
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	r := relation.New("R", attrs...)
	row := make([]relation.Value, arity)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = relation.Value(rng.Intn(domain))
		}
		r.AppendTuple(row)
	}
	return r
}

// TestBuildColumnarMatchesRowMajor is the core layout-equivalence property:
// building from a columnar-resident relation must produce a trie identical
// (level arrays included) to building from its row-major twin, across
// arities, permuted attribute orders, sorted and unsorted input.
func TestBuildColumnarMatchesRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 150; iter++ {
		arity := 1 + rng.Intn(4)
		n := rng.Intn(120)
		domain := []int{2, 5, 50, 10000}[rng.Intn(4)]
		row := randomRel(rng, arity, n, domain)
		if rng.Intn(2) == 0 {
			row.Sort() // exercise the sortedness fast path
		}
		col := row.Clone().PivotToColumns()
		attrs := append([]string(nil), row.Attrs...)
		rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
		tr := Build(row, attrs)
		tc := Build(col, attrs)
		if !triesEqual(tr, tc) {
			t.Fatalf("iter %d (arity=%d n=%d dom=%d): columnar build diverged\nrow: %v\ncol: %v",
				iter, arity, n, domain, tr, tc)
		}
		if !col.ColumnsResident() {
			t.Fatalf("iter %d: Build must not de-materialize the columnar source", iter)
		}
	}
}

// TestBuildColumnarJoinEquivalence closes the loop at the semantic level:
// enumerating the columnar-built trie yields exactly the sorted distinct
// rows of the source relation.
func TestBuildColumnarJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 60; iter++ {
		arity := 1 + rng.Intn(3)
		row := randomRel(rng, arity, rng.Intn(100), 8)
		want := row.Clone().SortDedup()
		got := Build(row.Clone().PivotToColumns(), row.Attrs).ToRelation("R")
		got.Name = want.Name
		if !got.Equal(want) {
			t.Fatalf("iter %d: trie enumeration mismatch\n%v\nvs\n%v", iter, got, want)
		}
	}
}

// TestMergeUnaryTries is the regression test for the arity-1 merge path:
// the tuple stream's initial descent must open the iterator exactly once,
// so the first tuple is the real minimum, not a zero value.
func TestMergeUnaryTries(t *testing.T) {
	a := Build(relation.FromTuples("A", []string{"x"}, [][]relation.Value{{5}, {1}, {9}}), []string{"x"})
	b := Build(relation.FromTuples("B", []string{"x"}, [][]relation.Value{{2}, {9}, {4}}), []string{"x"})
	c := Build(relation.FromTuples("C", []string{"x"}, [][]relation.Value{{1}, {7}}), []string{"x"})
	m := Merge([]*Trie{a, b, c})
	got := m.ToRelation("m")
	want := relation.FromTuples("m", []string{"x"}, [][]relation.Value{{1}, {2}, {4}, {5}, {7}, {9}})
	if !got.Equal(want) {
		t.Fatalf("unary merge = %v, want %v", got, want)
	}
	if m.NumTuples != 6 {
		t.Fatalf("NumTuples=%d", m.NumTuples)
	}
	// First value must be the true minimum — the zero-value symptom of the
	// descent bug would surface as a leading 0.
	if m.Levels[0].Vals[0] != 1 {
		t.Fatalf("first merged value = %d, want 1", m.Levels[0].Vals[0])
	}
}

// TestMergeUnaryViaCodec mirrors the real Merge-HCube path: unary block
// tries are encoded, shipped, decoded and merged at the receiver.
func TestMergeUnaryViaCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 40; iter++ {
		nblocks := 1 + rng.Intn(4)
		var tries []*Trie
		union := relation.New("u", "x")
		for b := 0; b < nblocks; b++ {
			blk := randomRel(rng, 1, rng.Intn(30), 15)
			blk.Attrs[0] = "x"
			union.AppendAll(blk)
			bt := Build(blk, []string{"x"})
			dec, err := Decode(Encode(bt))
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			tries = append(tries, dec)
		}
		got := Merge(tries).ToRelation("u")
		want := union.SortDedup()
		if !got.Equal(want) {
			t.Fatalf("iter %d: merged %v want %v", iter, got, want)
		}
	}
}

// TestMergePropertyAllArities extends the merge property over arities
// 1..3 (the seed property test only covered binary tries).
func TestMergePropertyAllArities(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for iter := 0; iter < 80; iter++ {
		arity := 1 + rng.Intn(3)
		nblocks := 1 + rng.Intn(5)
		attrs := make([]string, arity)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		union := relation.New("u", attrs...)
		var tries []*Trie
		for b := 0; b < nblocks; b++ {
			blk := randomRel(rng, arity, rng.Intn(40), 6)
			union.AppendAll(blk)
			tries = append(tries, Build(blk, attrs))
		}
		got := Merge(tries).ToRelation("u")
		want := union.SortDedup()
		if !got.Equal(want) {
			t.Fatalf("iter %d (arity=%d blocks=%d): merge mismatch", iter, arity, nblocks)
		}
	}
}
