package trie

import (
	"encoding/binary"
	"fmt"
)

// Binary codec for tries: the wire format the Merge HCube ships between
// servers. Tries serialize to contiguous arrays, which is the efficiency
// argument the paper gives for Merge over Pull ("one trie, implemented
// using three arrays, is easier to serialize and deserialize than many
// tuples").
//
// Layout (all little-endian):
//   u32 arity
//   per attr: u32 name length, name bytes
//   u64 numTuples
//   per level: u64 len(vals), vals as u64; u64 len(starts), starts as u32

// Encode serializes the trie.
func Encode(t *Trie) []byte {
	size := 4 + 8
	for _, a := range t.Attrs {
		size += 4 + len(a)
	}
	for _, l := range t.Levels {
		size += 8 + 8*len(l.Vals) + 8 + 4*len(l.Starts)
	}
	buf := make([]byte, 0, size)
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	put32(uint32(len(t.Attrs)))
	for _, a := range t.Attrs {
		put32(uint32(len(a)))
		buf = append(buf, a...)
	}
	put64(uint64(t.NumTuples))
	for _, l := range t.Levels {
		put64(uint64(len(l.Vals)))
		for _, v := range l.Vals {
			put64(uint64(v))
		}
		put64(uint64(len(l.Starts)))
		for _, s := range l.Starts {
			put32(uint32(s))
		}
	}
	return buf
}

// Decode deserializes a trie encoded by Encode.
func Decode(buf []byte) (*Trie, error) {
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("trie decode: truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if off+8 > len(buf) {
			return 0, fmt.Errorf("trie decode: truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, nil
	}
	arity, err := get32()
	if err != nil {
		return nil, err
	}
	if arity > 64 {
		return nil, fmt.Errorf("trie decode: implausible arity %d", arity)
	}
	t := &Trie{Attrs: make([]string, arity), Levels: make([]Level, arity)}
	for i := range t.Attrs {
		n, err := get32()
		if err != nil {
			return nil, err
		}
		if off+int(n) > len(buf) {
			return nil, fmt.Errorf("trie decode: truncated attr name at offset %d", off)
		}
		t.Attrs[i] = string(buf[off : off+int(n)])
		off += int(n)
	}
	nt, err := get64()
	if err != nil {
		return nil, err
	}
	t.NumTuples = int(nt)
	for d := range t.Levels {
		nv, err := get64()
		if err != nil {
			return nil, err
		}
		if off+8*int(nv) > len(buf) {
			return nil, fmt.Errorf("trie decode: truncated level %d vals", d)
		}
		vals := make([]Value, nv)
		for i := range vals {
			vals[i] = Value(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		ns, err := get64()
		if err != nil {
			return nil, err
		}
		if off+4*int(ns) > len(buf) {
			return nil, fmt.Errorf("trie decode: truncated level %d starts", d)
		}
		starts := make([]int32, ns)
		for i := range starts {
			starts[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
		t.Levels[d] = Level{Vals: vals, Starts: starts}
	}
	if off != len(buf) {
		return nil, fmt.Errorf("trie decode: %d trailing bytes", len(buf)-off)
	}
	return t, nil
}
