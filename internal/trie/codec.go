package trie

import (
	"encoding/binary"
	"fmt"
	"sync"

	"adj/internal/deltaenc"
)

// Binary codec for tries: the wire format the Merge HCube ships between
// servers. Tries serialize to contiguous arrays, which is the efficiency
// argument the paper gives for Merge over Pull ("one trie, implemented
// using three arrays, is easier to serialize and deserialize than many
// tuples") — and both arrays are sorted runs (level values ascend within
// each parent group, starts are non-decreasing), so each is stored as one
// fixed-width zigzag-delta run, the same batched layout the relation codec
// uses for tuple blocks.
//
// Layout (all little-endian):
//
//	u8 magic 0xA7
//	u32 arity
//	per attr: u32 name length, name bytes
//	uvarint numTuples
//	per level:
//	  uvarint len(vals);   u8 width; len(vals) fixed-width zigzag deltas
//	  uvarint len(starts); u8 width; len(starts) fixed-width zigzag deltas

// trieMagic tags the delta-encoded trie format.
const trieMagic = 0xA7

// Encode serializes the trie.
func Encode(t *Trie) []byte {
	size := 1 + 4 + 8
	for _, a := range t.Attrs {
		size += 4 + len(a)
	}
	for _, l := range t.Levels {
		// Sorted runs usually fit 1–2 bytes per delta; headroom is cheap.
		size += 24 + 2*len(l.Vals) + 2*len(l.Starts)
	}
	buf := make([]byte, 0, size)
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	buf = append(buf, trieMagic)
	put32(uint32(len(t.Attrs)))
	for _, a := range t.Attrs {
		put32(uint32(len(a)))
		buf = append(buf, a...)
	}
	buf = binary.AppendUvarint(buf, uint64(t.NumTuples))
	for _, l := range t.Levels {
		buf = binary.AppendUvarint(buf, uint64(len(l.Vals)))
		buf = deltaenc.AppendRun(buf, l.Vals)
		buf = binary.AppendUvarint(buf, uint64(len(l.Starts)))
		// Starts are int32; widen through a stack-friendly loop.
		buf = appendDeltaStarts(buf, l.Starts)
	}
	return buf
}

// wideScratch pools the int64 staging slice that widens int32 starts
// arrays through the shared delta-run codec.
var wideScratch = sync.Pool{New: func() interface{} {
	s := make([]int64, 0, 1024)
	return &s
}}

func getWide(n int) (*[]int64, []int64) {
	sp := wideScratch.Get().(*[]int64)
	s := *sp
	if cap(s) < n {
		s = make([]int64, n)
	} else {
		s = s[:n]
	}
	return sp, s
}

func putWide(sp *[]int64, s []int64) {
	*sp = s[:0]
	wideScratch.Put(sp)
}

// appendDeltaStarts widens the non-decreasing starts array and reuses the
// int64 delta-run codec.
func appendDeltaStarts(dst []byte, starts []int32) []byte {
	sp, wide := getWide(len(starts))
	for i, v := range starts {
		wide[i] = int64(v)
	}
	dst = deltaenc.AppendRun(dst, wide)
	putWide(sp, wide)
	return dst
}

func decodeDeltaStarts(buf []byte, out []int32) (int, error) {
	sp, wide := getWide(len(out))
	defer putWide(sp, wide)
	used, err := deltaenc.DecodeRun(buf, wide)
	if err != nil {
		return 0, err
	}
	for i, v := range wide {
		if v < 0 || v > 1<<31-1 {
			return 0, fmt.Errorf("trie decode: starts[%d]=%d overflows int32", i, v)
		}
		out[i] = int32(v)
	}
	return used, nil
}

// Decode deserializes a trie encoded by Encode.
func Decode(buf []byte) (*Trie, error) {
	if len(buf) < 1 || buf[0] != trieMagic {
		return nil, fmt.Errorf("trie decode: bad magic (want 0x%02x)", trieMagic)
	}
	off := 1
	get32 := func() (uint32, error) {
		if off+4 > len(buf) {
			return 0, fmt.Errorf("trie decode: truncated at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, nil
	}
	getUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(buf[off:])
		if w <= 0 {
			return 0, fmt.Errorf("trie decode: truncated varint at offset %d", off)
		}
		off += w
		return v, nil
	}
	arity, err := get32()
	if err != nil {
		return nil, err
	}
	if arity > 64 {
		return nil, fmt.Errorf("trie decode: implausible arity %d", arity)
	}
	t := &Trie{Attrs: make([]string, arity), Levels: make([]Level, arity)}
	for i := range t.Attrs {
		n, err := get32()
		if err != nil {
			return nil, err
		}
		if off+int(n) > len(buf) {
			return nil, fmt.Errorf("trie decode: truncated attr name at offset %d", off)
		}
		t.Attrs[i] = string(buf[off : off+int(n)])
		off += int(n)
	}
	nt, err := getUvarint()
	if err != nil {
		return nil, err
	}
	t.NumTuples = int(nt)
	for d := range t.Levels {
		nv, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if nv > uint64(len(buf)) {
			return nil, fmt.Errorf("trie decode: implausible level %d size %d", d, nv)
		}
		vals := make([]Value, nv)
		used, err := deltaenc.DecodeRun(buf[off:], vals)
		if err != nil {
			return nil, err
		}
		off += used
		ns, err := getUvarint()
		if err != nil {
			return nil, err
		}
		if ns > uint64(len(buf)) {
			return nil, fmt.Errorf("trie decode: implausible level %d starts size %d", d, ns)
		}
		starts := make([]int32, ns)
		used, err = decodeDeltaStarts(buf[off:], starts)
		if err != nil {
			return nil, err
		}
		off += used
		// A corrupt payload (the wire may be a real TCP transport) must
		// fail here, not as a slice-bounds panic at join time: starts are
		// child-range offsets into vals, so they must be non-decreasing
		// and within [0, len(vals)].
		prev := int32(0)
		for i, s := range starts {
			if s < prev || int(s) > len(vals) {
				return nil, fmt.Errorf("trie decode: level %d starts[%d]=%d out of range (prev %d, %d vals)",
					d, i, s, prev, len(vals))
			}
			prev = s
		}
		t.Levels[d] = Level{Vals: vals, Starts: starts}
	}
	if off != len(buf) {
		return nil, fmt.Errorf("trie decode: %d trailing bytes", len(buf)-off)
	}
	return t, nil
}
