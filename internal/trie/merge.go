package trie

import (
	"container/heap"
	"sync"

	"adj/internal/relation"
)

// Merge combines block tries of the same schema into a single trie. This is
// the server-side half of the Merge HCube implementation (§V): each block
// arrives with its trie pre-built by the sender, and the receiver merges the
// sorted tuple streams rather than re-sorting raw tuples.
//
// Merge is reuse-safe: inputs are never mutated, and the returned trie
// aliases no pooled scratch — it is either freshly built or, when exactly
// one non-empty input remains, that input itself (callers treating tries
// as immutable, as the whole runtime does, may therefore share both inputs
// and output freely, e.g. across cubes in the block cache). All k-way
// heap state, tuple streams and the staging relation come from an
// internal pool, so repeated merges — the per-cube path of the Merge
// shuffle — allocate only the output trie.
func Merge(ts []*Trie) *Trie {
	// Remember the schema before dropping empty blocks so a fully-empty
	// merge still yields a correctly-typed empty trie.
	var schema []string
	for _, t := range ts {
		if t != nil && len(t.Attrs) > 0 {
			schema = t.Attrs
			break
		}
	}
	ts = nonEmpty(ts)
	if len(ts) == 0 {
		if schema == nil {
			return &Trie{}
		}
		return FromSorted(relation.New("merged", schema...))
	}
	if len(ts) == 1 {
		return ts[0]
	}
	m := mergePool.Get().(*merger)
	t := m.merge(ts)
	mergePool.Put(m)
	return t
}

// merger holds the pooled k-way merge state: tuple streams (iterator +
// current-tuple buffer each), the stream heap's item slice, the dedup
// buffer and the staging relation's row backing.
type merger struct {
	streams []tupleStream
	h       streamHeap
	last    []Value
	out     relation.Relation
	data    []Value
}

var mergePool = sync.Pool{New: func() interface{} { return &merger{} }}

func (m *merger) merge(ts []*Trie) *Trie {
	k := ts[0].Arity()
	attrs := ts[0].Attrs
	// Bind one stream per input, reusing stream slots (and their iterator
	// position arrays and tuple buffers) from previous merges. Heap items
	// point into m.streams, so the slice must reach its final length
	// before any pointers are taken.
	if cap(m.streams) < len(ts) {
		m.streams = make([]tupleStream, len(ts))
	} else {
		m.streams = m.streams[:len(ts)]
	}
	if cap(m.h.items) < len(ts) {
		m.h.items = make([]*tupleStream, 0, len(ts))
	} else {
		m.h.items = m.h.items[:0]
	}
	for i, t := range ts {
		s := &m.streams[i]
		s.init(t)
		if s.next() {
			m.h.items = append(m.h.items, s)
		}
	}
	m.h.k = k
	heap.Init(&m.h)
	// Stage the merged, deduplicated rows in a pooled relation; FromSorted
	// copies them into fresh level arrays, so the backing returns to the
	// pool afterwards.
	out := &m.out
	out.Name = "merged"
	out.Attrs = attrs
	need := totalTuples(ts) * k
	if cap(m.data) < need {
		m.data = make([]Value, 0, need)
	}
	out.SetData(m.data[:0])
	if cap(m.last) < k {
		m.last = make([]Value, k)
	}
	last := m.last[:k]
	havLast := false
	for m.h.Len() > 0 {
		s := m.h.items[0]
		if !havLast || !equalTuple(last, s.cur) {
			copy(last, s.cur)
			havLast = true
			out.AppendTuple(s.cur)
		}
		if s.next() {
			heap.Fix(&m.h, 0)
		} else {
			heap.Pop(&m.h)
		}
	}
	t := FromSorted(out)
	// Reclaim the (possibly grown) backing and drop the borrowed schema.
	m.data = out.Data()[:0]
	out.Attrs = nil
	out.SetData(m.data)
	// Drop every input-trie reference before the merger parks in the pool:
	// callers (the block cache in particular) release their part tries
	// after merging, and a pooled stream slot must not pin them. Clearing
	// runs at the end of every merge, so slots beyond a later, smaller
	// merge's length hold no stale pointers either.
	for i := range m.streams {
		m.streams[i].t = nil
		m.streams[i].it.t = nil
	}
	m.h.items = m.h.items[:0]
	return t
}

func nonEmpty(ts []*Trie) []*Trie {
	var out []*Trie
	for _, t := range ts {
		if t != nil && t.NumTuples > 0 {
			out = append(out, t)
		}
	}
	return out
}

func totalTuples(ts []*Trie) int {
	n := 0
	for _, t := range ts {
		n += t.NumTuples
	}
	return n
}

func equalTuple(a, b []Value) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tupleStream walks a trie's tuples in lexicographic order iteratively.
type tupleStream struct {
	t   *Trie
	it  Iterator
	cur []Value
	// started marks whether the depth-first walk has begun.
	started bool
}

// init rebinds a (possibly recycled) stream to a trie, reusing the
// iterator's position arrays and the tuple buffer.
func (s *tupleStream) init(t *Trie) {
	s.t = t
	s.it.Init(t)
	s.started = false
	k := t.Arity()
	if cap(s.cur) < k {
		s.cur = make([]Value, k)
	} else {
		s.cur = s.cur[:k]
	}
}

// next advances to the next tuple; returns false when exhausted.
func (s *tupleStream) next() bool {
	k := s.t.Arity()
	if k == 0 || s.t.NumTuples == 0 {
		return false
	}
	it := &s.it
	if !s.started {
		s.started = true
		// Initial descent: open exactly k levels from the root, recording
		// the key at every depth. Counting levels explicitly keeps the
		// loop independent of the iterator's root-depth convention (a
		// depth-based condition like `Depth() < k-1` only stays correct
		// for arity-1 tries because the root sits at depth -1); the unary
		// merge regression tests in columnar_test.go pin the behavior.
		for d := 0; d < k; d++ {
			it.Open()
			if it.AtEnd() {
				return false
			}
			s.cur[d] = it.Key()
		}
		return true
	}
	// Advance deepest level; on exhaustion pop up and advance there.
	for {
		it.Next()
		if !it.AtEnd() {
			s.cur[it.Depth()] = it.Key()
			// Re-descend to the deepest level.
			for it.Depth() < k-1 {
				it.Open()
				s.cur[it.Depth()] = it.Key()
			}
			return true
		}
		it.Up()
		if it.Depth() < 0 {
			return false
		}
	}
}

type streamHeap struct {
	items []*tupleStream
	k     int
}

func (h *streamHeap) Len() int { return len(h.items) }
func (h *streamHeap) Less(i, j int) bool {
	a, b := h.items[i].cur, h.items[j].cur
	for x := 0; x < h.k; x++ {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}
func (h *streamHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *streamHeap) Push(x interface{}) { h.items = append(h.items, x.(*tupleStream)) }
func (h *streamHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
