package trie

import (
	"container/heap"

	"adj/internal/relation"
)

// Merge combines block tries of the same schema into a single trie. This is
// the server-side half of the Merge HCube implementation (§V): each block
// arrives with its trie pre-built by the sender, and the receiver merges the
// sorted tuple streams rather than re-sorting raw tuples.
func Merge(ts []*Trie) *Trie {
	// Remember the schema before dropping empty blocks so a fully-empty
	// merge still yields a correctly-typed empty trie.
	var schema []string
	for _, t := range ts {
		if t != nil && len(t.Attrs) > 0 {
			schema = t.Attrs
			break
		}
	}
	ts = nonEmpty(ts)
	if len(ts) == 0 {
		if schema == nil {
			return &Trie{}
		}
		return FromSorted(relation.New("merged", schema...))
	}
	if len(ts) == 1 {
		return ts[0]
	}
	k := ts[0].Arity()
	attrs := ts[0].Attrs
	// K-way merge of sorted tuple streams with dedup, feeding FromSorted.
	streams := make([]*tupleStream, 0, len(ts))
	for _, t := range ts {
		s := newTupleStream(t)
		if s.next() {
			streams = append(streams, s)
		}
	}
	h := &streamHeap{items: streams, k: k}
	heap.Init(h)
	out := relation.NewWithCapacity("merged", totalTuples(ts), attrs...)
	last := make([]Value, k)
	havLast := false
	for h.Len() > 0 {
		s := h.items[0]
		if !havLast || !equalTuple(last, s.cur) {
			copy(last, s.cur)
			havLast = true
			out.AppendTuple(s.cur)
		}
		if s.next() {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return FromSorted(out)
}

func nonEmpty(ts []*Trie) []*Trie {
	var out []*Trie
	for _, t := range ts {
		if t != nil && t.NumTuples > 0 {
			out = append(out, t)
		}
	}
	return out
}

func totalTuples(ts []*Trie) int {
	n := 0
	for _, t := range ts {
		n += t.NumTuples
	}
	return n
}

func equalTuple(a, b []Value) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// tupleStream walks a trie's tuples in lexicographic order iteratively.
type tupleStream struct {
	t   *Trie
	it  *Iterator
	cur []Value
	// started marks whether the depth-first walk has begun.
	started bool
}

func newTupleStream(t *Trie) *tupleStream {
	return &tupleStream{t: t, it: NewIterator(t), cur: make([]Value, t.Arity())}
}

// next advances to the next tuple; returns false when exhausted.
func (s *tupleStream) next() bool {
	k := s.t.Arity()
	if k == 0 || s.t.NumTuples == 0 {
		return false
	}
	it := s.it
	if !s.started {
		s.started = true
		// Initial descent: open exactly k levels from the root, recording
		// the key at every depth. Counting levels explicitly keeps the
		// loop independent of the iterator's root-depth convention (a
		// depth-based condition like `Depth() < k-1` only stays correct
		// for arity-1 tries because the root sits at depth -1); the unary
		// merge regression tests in columnar_test.go pin the behavior.
		for d := 0; d < k; d++ {
			it.Open()
			if it.AtEnd() {
				return false
			}
			s.cur[d] = it.Key()
		}
		return true
	}
	// Advance deepest level; on exhaustion pop up and advance there.
	for {
		it.Next()
		if !it.AtEnd() {
			s.cur[it.Depth()] = it.Key()
			// Re-descend to the deepest level.
			for it.Depth() < k-1 {
				it.Open()
				s.cur[it.Depth()] = it.Key()
			}
			return true
		}
		it.Up()
		if it.Depth() < 0 {
			return false
		}
	}
}

type streamHeap struct {
	items []*tupleStream
	k     int
}

func (h *streamHeap) Len() int { return len(h.items) }
func (h *streamHeap) Less(i, j int) bool {
	a, b := h.items[i].cur, h.items[j].cur
	for x := 0; x < h.k; x++ {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}
func (h *streamHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *streamHeap) Push(x interface{}) { h.items = append(h.items, x.(*tupleStream)) }
func (h *streamHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
