package trie

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"adj/internal/relation"
)

func mkRel(attrs []string, rows [][]Value) *relation.Relation {
	return relation.FromTuples("R", attrs, rows)
}

func TestBuildAndEnumerateRoundtrip(t *testing.T) {
	r := mkRel([]string{"a", "b"}, [][]Value{{2, 1}, {1, 2}, {1, 1}, {2, 1}})
	tr := Build(r, []string{"a", "b"})
	if tr.Len() != 3 {
		t.Fatalf("tuples=%d want 3 (dedup)", tr.Len())
	}
	var got [][]Value
	tr.Enumerate(func(tp relation.Tuple) {
		got = append(got, append([]Value(nil), tp...))
	})
	want := [][]Value{{1, 1}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("enumerate=%v want %v", got, want)
	}
}

func TestBuildPermutedOrder(t *testing.T) {
	r := mkRel([]string{"a", "b"}, [][]Value{{1, 5}, {2, 4}})
	tr := Build(r, []string{"b", "a"})
	var got [][]Value
	tr.Enumerate(func(tp relation.Tuple) {
		got = append(got, append([]Value(nil), tp...))
	})
	want := [][]Value{{4, 2}, {5, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("permuted enumerate=%v want %v", got, want)
	}
}

func TestBuildBadOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-permutation order")
		}
	}()
	Build(mkRel([]string{"a", "b"}, nil), []string{"a", "z"})
}

func TestEmptyTrie(t *testing.T) {
	tr := Build(mkRel([]string{"a", "b"}, nil), []string{"a", "b"})
	if tr.Len() != 0 {
		t.Fatalf("len=%d", tr.Len())
	}
	count := 0
	tr.Enumerate(func(relation.Tuple) { count++ })
	if count != 0 {
		t.Fatal("empty trie enumerated tuples")
	}
	it := NewIterator(tr)
	it.Open()
	if !it.AtEnd() {
		t.Fatal("iterator over empty trie must be at end")
	}
}

// Property: enumerate(Build(R)) == sorted(dedup(R)) for random R.
func TestRoundtripProperty(t *testing.T) {
	f := func(seed int64, arityRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := int(arityRaw%3) + 1
		n := int(nRaw % 80)
		attrs := []string{"a", "b", "c"}[:arity]
		r := relation.New("R", attrs...)
		for i := 0; i < n; i++ {
			row := make([]Value, arity)
			for j := range row {
				row[j] = rng.Int63n(6)
			}
			r.AppendTuple(row)
		}
		tr := Build(r, attrs)
		back := tr.ToRelation("back")
		want := r.Clone().SortDedup()
		want.Name = "back"
		return back.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorSeekSemantics(t *testing.T) {
	r := mkRel([]string{"a"}, [][]Value{{1}, {3}, {5}, {9}})
	tr := Build(r, []string{"a"})
	it := NewIterator(tr)
	it.Open()
	it.Seek(4)
	if it.AtEnd() || it.Key() != 5 {
		t.Fatalf("seek(4) -> %v", it.Key())
	}
	it.Seek(5)
	if it.Key() != 5 {
		t.Fatal("seek to current key must not move")
	}
	it.Seek(10)
	if !it.AtEnd() {
		t.Fatal("seek past end must be AtEnd")
	}
}

func TestIteratorDescend(t *testing.T) {
	r := mkRel([]string{"a", "b"}, [][]Value{{1, 4}, {1, 7}, {2, 5}})
	tr := Build(r, []string{"a", "b"})
	it := NewIterator(tr)
	it.Open() // level a
	if it.Key() != 1 {
		t.Fatalf("first a=%d", it.Key())
	}
	it.Open() // level b under a=1
	var bs []Value
	for !it.AtEnd() {
		bs = append(bs, it.Key())
		it.Next()
	}
	if !reflect.DeepEqual(bs, []Value{4, 7}) {
		t.Fatalf("children of a=1: %v", bs)
	}
	it.Up()
	it.Next()
	if it.Key() != 2 {
		t.Fatalf("after up+next a=%d", it.Key())
	}
	it.Open()
	if it.Key() != 5 {
		t.Fatalf("children of a=2 start at %d", it.Key())
	}
}

// Property: Seek lands on the first value >= target within the sibling range.
func TestSeekProperty(t *testing.T) {
	f := func(seed int64, targetRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		r := relation.New("R", "a")
		for i := 0; i < n; i++ {
			r.Append(rng.Int63n(50))
		}
		tr := Build(r, []string{"a"})
		vals := tr.Levels[0].Vals
		target := Value(targetRaw % 60)
		it := NewIterator(tr)
		it.Open()
		it.Seek(target)
		// Expected: first val >= target.
		for _, v := range vals {
			if v >= target {
				return !it.AtEnd() && it.Key() == v
			}
		}
		return it.AtEnd()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeTwoTries(t *testing.T) {
	r1 := mkRel([]string{"a", "b"}, [][]Value{{1, 2}, {3, 4}})
	r2 := mkRel([]string{"a", "b"}, [][]Value{{1, 2}, {2, 9}})
	m := Merge([]*Trie{Build(r1, []string{"a", "b"}), Build(r2, []string{"a", "b"})})
	got := m.ToRelation("m")
	want := relation.FromTuples("m", []string{"a", "b"}, [][]Value{{1, 2}, {2, 9}, {3, 4}})
	if !got.Equal(want) {
		t.Fatalf("merge=%v", got)
	}
}

// Property: Merge(block tries) == trie of concatenated blocks.
func TestMergeProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%4) + 1
		all := relation.New("all", "a", "b")
		var ts []*Trie
		for b := 0; b < k; b++ {
			blk := relation.New("blk", "a", "b")
			n := rng.Intn(30)
			for i := 0; i < n; i++ {
				x, y := rng.Int63n(8), rng.Int63n(8)
				blk.Append(x, y)
				all.Append(x, y)
			}
			ts = append(ts, Build(blk, []string{"a", "b"}))
		}
		merged := Merge(ts).ToRelation("m")
		want := Build(all, []string{"a", "b"}).ToRelation("m")
		return merged.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if Merge(nil).Len() != 0 {
		t.Fatal("merge of nothing must be empty")
	}
	tr := Build(mkRel([]string{"a"}, [][]Value{{1}}), []string{"a"})
	if Merge([]*Trie{tr}).Len() != 1 {
		t.Fatal("merge of single trie must be itself")
	}
}

func TestCodecRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := relation.New("R", "x", "y", "z")
	for i := 0; i < 200; i++ {
		r.Append(rng.Int63n(20), rng.Int63n(20), rng.Int63n(20))
	}
	tr := Build(r, []string{"x", "y", "z"})
	buf := Encode(tr)
	back, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !back.ToRelation("b").Equal(tr.ToRelation("b")) {
		t.Fatal("codec roundtrip mismatch")
	}
	if !reflect.DeepEqual(back.Attrs, tr.Attrs) {
		t.Fatalf("attrs mismatch: %v vs %v", back.Attrs, tr.Attrs)
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	tr := Build(mkRel([]string{"a", "b"}, [][]Value{{1, 2}}), []string{"a", "b"})
	buf := Encode(tr)
	for _, cut := range []int{1, len(buf) / 2, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes should fail", cut, len(buf))
		}
	}
	if _, err := Decode(append(buf, 0)); err == nil {
		t.Fatal("decode with trailing bytes should fail")
	}
}

func TestCodecPropertyRoundtrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := relation.New("R", "a", "b")
		for i := 0; i < int(nRaw%60); i++ {
			r.Append(rng.Int63n(9), rng.Int63n(9))
		}
		tr := Build(r, []string{"a", "b"})
		back, err := Decode(Encode(tr))
		if err != nil {
			return false
		}
		return back.ToRelation("x").Equal(tr.ToRelation("x"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// A corrupt payload whose starts point outside the level's value array
// must fail at decode time, not panic at join time.
func TestCodecRejectsOutOfRangeStarts(t *testing.T) {
	good := Build(mkRel([]string{"a", "b"}, [][]Value{{1, 2}, {3, 4}}), []string{"a", "b"})
	bogus := &Trie{Attrs: good.Attrs, NumTuples: good.NumTuples, Levels: []Level{
		{Vals: good.Levels[0].Vals, Starts: []int32{0, 99}}, // 99 > len(vals)
		good.Levels[1],
	}}
	if _, err := Decode(Encode(bogus)); err == nil {
		t.Fatal("decode must reject starts beyond the value array")
	}
	descending := &Trie{Attrs: good.Attrs, NumTuples: good.NumTuples, Levels: []Level{
		good.Levels[0],
		{Vals: good.Levels[1].Vals, Starts: []int32{2, 0, 4}},
	}}
	if _, err := Decode(Encode(descending)); err == nil {
		t.Fatal("decode must reject descending starts")
	}
}

func TestTrieShape(t *testing.T) {
	// Shared prefixes must be stored once.
	r := mkRel([]string{"a", "b"}, [][]Value{{1, 1}, {1, 2}, {1, 3}, {2, 1}})
	tr := Build(r, []string{"a", "b"})
	if len(tr.Levels[0].Vals) != 2 {
		t.Fatalf("level0 vals=%v want [1 2]", tr.Levels[0].Vals)
	}
	if len(tr.Levels[1].Vals) != 4 {
		t.Fatalf("level1 vals=%v", tr.Levels[1].Vals)
	}
	if got := tr.Children(1, 0); !reflect.DeepEqual(got, []Value{1, 2, 3}) {
		t.Fatalf("children of a=1: %v", got)
	}
	if got := tr.Children(1, 1); !reflect.DeepEqual(got, []Value{1}) {
		t.Fatalf("children of a=2: %v", got)
	}
}
