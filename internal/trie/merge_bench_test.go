package trie

import (
	"math/rand"
	"testing"

	"adj/internal/relation"
)

func randBlocks(rng *rand.Rand, nblocks, rows int) []*Trie {
	out := make([]*Trie, nblocks)
	for b := range out {
		r := relation.New("B", "a", "b", "c")
		for i := 0; i < rows; i++ {
			r.Append(rng.Int63n(200), rng.Int63n(200), rng.Int63n(200))
		}
		out[b] = Build(r, []string{"a", "b", "c"})
	}
	return out
}

// Merging must be reuse-safe: repeated merges from the pooled state give
// identical results, inputs stay untouched, and the returned trie is
// independent of later merges mutating the pooled scratch.
func TestMergePooledReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blocks := randBlocks(rng, 6, 120)
	before := make([]string, len(blocks))
	for i, b := range blocks {
		before[i] = b.ToRelation("x").String()
	}
	first := Merge(blocks)
	want := first.ToRelation("m").String()
	// Churn the pool with unrelated merges, then re-check the first result.
	for i := 0; i < 10; i++ {
		other := randBlocks(rng, 4, 80)
		if got := Merge(other); got.NumTuples == 0 {
			t.Fatal("churn merge produced empty trie")
		}
	}
	if got := first.ToRelation("m").String(); got != want {
		t.Fatal("earlier merge result changed after later merges reused the pool")
	}
	if got := Merge(blocks).ToRelation("m").String(); got != want {
		t.Fatal("repeated merge of same inputs differs")
	}
	for i, b := range blocks {
		if b.ToRelation("x").String() != before[i] {
			t.Fatalf("merge mutated input trie %d", i)
		}
	}
	// Single non-empty input: returned as-is (the block cache's sharing
	// fast path).
	single := []*Trie{nil, blocks[0], {}}
	if got := Merge(single); got != blocks[0] {
		t.Fatal("single-input merge must alias the input")
	}
}

// BenchmarkMerge measures the pooled k-way merge; with the heap state,
// tuple streams and staging relation pooled, steady-state allocations are
// only the output trie's level arrays (compare trie_merge vs
// trie_merge_reference in BENCH_3.json for the before/after).
func BenchmarkMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	blocks := randBlocks(rng, 8, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(blocks)
	}
}
