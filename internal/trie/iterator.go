package trie

// Iterator is the Leapfrog trie iterator interface over a static Trie
// (open/up/next/seek/key/atEnd, as in Veldhuizen's LFTJ). The iterator
// starts positioned at the root (depth -1); Open descends to the first
// child of the current node, Up returns to the parent.
//
// Seeks use galloping (exponential) search, giving the amortized
// O(log(N/m)) bound the worst-case-optimality argument of Leapfrog needs.
type Iterator struct {
	t *Trie
	// depth is the current level, -1 at the root.
	depth int
	// pos[d] is the index into t.Levels[d].Vals of the node currently open
	// at depth d; end[d] is the exclusive end of its sibling range.
	pos []int32
	end []int32
}

// NewIterator returns an iterator positioned at the root of t.
func NewIterator(t *Trie) *Iterator {
	it := &Iterator{}
	it.Init(t)
	return it
}

// Init (re)binds the iterator to a trie, reusing the position arrays when
// their capacity suffices. It lets callers pool iterators across joins
// instead of allocating one per trie per run.
func (it *Iterator) Init(t *Trie) {
	k := t.Arity()
	it.t = t
	it.depth = -1
	if cap(it.pos) < k {
		it.pos = make([]int32, k)
		it.end = make([]int32, k)
	} else {
		it.pos = it.pos[:k]
		it.end = it.end[:k]
	}
}

// Reset repositions at the root without reallocating.
func (it *Iterator) Reset() { it.depth = -1 }

// Depth returns the current level (-1 = root).
func (it *Iterator) Depth() int { return it.depth }

// Open descends to the first child of the current node. It must not be
// called when AtEnd() is true or at the deepest level.
func (it *Iterator) Open() {
	d := it.depth + 1
	l := &it.t.Levels[d]
	var parent int32
	if d == 0 {
		parent = 0
	} else {
		parent = it.pos[d-1]
	}
	it.pos[d] = l.Starts[parent]
	it.end[d] = l.Starts[parent+1]
	it.depth = d
}

// Up returns to the parent level.
func (it *Iterator) Up() { it.depth-- }

// Key returns the value at the current position. Only valid when !AtEnd().
func (it *Iterator) Key() Value { return it.t.Levels[it.depth].Vals[it.pos[it.depth]] }

// AtEnd reports whether the iterator has moved past the last sibling.
func (it *Iterator) AtEnd() bool { return it.pos[it.depth] >= it.end[it.depth] }

// Next advances to the next sibling.
func (it *Iterator) Next() { it.pos[it.depth]++ }

// Seek positions at the least sibling with key >= v, or AtEnd if none.
// Galloping search from the current position: cheap for small forward
// steps, logarithmic for long ones.
func (it *Iterator) Seek(v Value) {
	d := it.depth
	vals := it.t.Levels[d].Vals
	lo := it.pos[d]
	hi := it.end[d]
	if lo >= hi || vals[lo] >= v {
		return
	}
	// Gallop: find a bound b with vals[lo+b] >= v.
	step := int32(1)
	prev := lo
	for lo+step < hi && vals[lo+step] < v {
		prev = lo + step
		step <<= 1
	}
	// Binary search in (prev, min(lo+step, hi)].
	a, b := prev+1, hi
	if lo+step < hi {
		b = lo + step + 1
		if b > hi {
			b = hi
		}
	}
	for a < b {
		mid := a + (b-a)/2
		if vals[mid] < v {
			a = mid + 1
		} else {
			b = mid
		}
	}
	it.pos[d] = a
}

// NodePos returns the value-array index of the current node at its depth;
// it identifies the node when calling Trie.Children on the next level.
func (it *Iterator) NodePos() int32 { return it.pos[it.depth] }

// SetPos repositions the iterator at absolute value index p within the
// current level. Leapfrog frames intersect over the sibling slices
// directly and sync the winning position back through SetPos before
// descending.
func (it *Iterator) SetPos(p int32) { it.pos[it.depth] = p }

// SiblingCount returns the size of the current sibling range (an upper
// bound on remaining Next calls from the range start).
func (it *Iterator) SiblingCount() int32 {
	d := it.depth
	var parent int32
	if d > 0 {
		parent = it.pos[d-1]
	}
	return it.end[d] - it.t.Levels[d].Starts[parent]
}

// CurrentRange returns the full sibling slice at the current depth; used by
// the cached join to materialize intersections.
func (it *Iterator) CurrentRange() []Value {
	d := it.depth
	var parent int32
	if d == 0 {
		parent = 0
	} else {
		parent = it.pos[d-1]
	}
	l := it.t.Levels[d]
	return l.Vals[l.Starts[parent]:l.Starts[parent+1]]
}

// ParentPos returns the node position of the parent at depth d-1 (0 for the
// root); used as a cache key by the cached Leapfrog variant.
func (it *Iterator) ParentPos() int32 {
	if it.depth == 0 {
		return 0
	}
	return it.pos[it.depth-1]
}
