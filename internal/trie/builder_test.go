package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"adj/internal/relation"
)

// buildReference is the pre-Builder pipeline (materialize the permuted
// relation, SortDedup, FromSorted), kept as the test oracle and the
// benchmark baseline for the radix builder.
func buildReference(r *relation.Relation, attrs []string) *Trie {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.AttrIndex(a)
	}
	perm := relation.NewWithCapacity(r.Name, r.Len(), attrs...)
	row := make([]Value, len(attrs))
	for i, n := 0, r.Len(); i < n; i++ {
		t := r.Tuple(i)
		for j, c := range cols {
			row[j] = t[c]
		}
		perm.AppendTuple(row)
	}
	perm.SortDedup()
	return FromSorted(perm)
}

func triesEqual(a, b *Trie) bool {
	if a.NumTuples != b.NumTuples || a.Arity() != b.Arity() {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for d := range a.Levels {
		la, lb := a.Levels[d], b.Levels[d]
		if len(la.Vals) != len(lb.Vals) || len(la.Starts) != len(lb.Starts) {
			return false
		}
		for i := range la.Vals {
			if la.Vals[i] != lb.Vals[i] {
				return false
			}
		}
		for i := range la.Starts {
			if la.Starts[i] != lb.Starts[i] {
				return false
			}
		}
	}
	return true
}

// Property: the radix builder produces a structurally identical trie to the
// reference sort+dedup pipeline on randomized relations — including
// permuted column orders, duplicates, negative values and sizes on both
// sides of the insertion-sort/radix cutoff.
func TestBuilderMatchesReference(t *testing.T) {
	b := NewBuilder()
	f := func(seed int64, arityRaw, sizeClass uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		arity := int(arityRaw%4) + 1
		var n int
		switch sizeClass % 3 {
		case 0:
			n = rng.Intn(20) // insertion-sort path
		case 1:
			n = 48 + rng.Intn(100) // radix path
		default:
			n = 300 + rng.Intn(500)
		}
		names := []string{"a", "b", "c", "d"}[:arity]
		r := relation.New("R", names...)
		row := make([]Value, arity)
		for i := 0; i < n; i++ {
			for j := range row {
				switch rng.Intn(3) {
				case 0:
					row[j] = rng.Int63n(5) // heavy duplication
				case 1:
					row[j] = rng.Int63n(1 << 20)
				default:
					row[j] = rng.Int63() - rng.Int63() // wide, signed
				}
			}
			r.AppendTuple(row)
		}
		attrs := append([]string(nil), names...)
		rng.Shuffle(arity, func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
		want := buildReference(r, attrs)
		if !triesEqual(b.Build(r, attrs), want) {
			return false
		}
		// The pooled package-level Build must agree too.
		return triesEqual(Build(r, attrs), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// A builder must be reusable across relations of different shapes.
func TestBuilderReuseAcrossShapes(t *testing.T) {
	b := NewBuilder()
	r3 := relation.FromTuples("R", []string{"x", "y", "z"},
		[][]Value{{3, 1, 2}, {1, 1, 1}, {3, 1, 2}})
	t3 := b.Build(r3, []string{"x", "y", "z"})
	if t3.Len() != 2 {
		t.Fatalf("arity-3 build: %d tuples, want 2", t3.Len())
	}
	r1 := relation.FromTuples("S", []string{"a"}, [][]Value{{5}, {-2}, {5}})
	t1 := b.Build(r1, []string{"a"})
	if t1.Len() != 2 || t1.Levels[0].Vals[0] != -2 {
		t.Fatalf("arity-1 build after arity-3: %v", t1.Levels[0].Vals)
	}
	empty := b.Build(relation.New("E", "a", "b"), []string{"b", "a"})
	if empty.Len() != 0 || len(empty.Levels[0].Starts) != 2 {
		t.Fatalf("empty build shape: %+v", empty.Levels)
	}
}

// Regression: SiblingCount must measure the current node's sibling range,
// not the distance from the whole level's start. Under parent a=1 the b
// range has 3 siblings, under a=2 it has 1 — the old code reported 4 for
// the second parent.
func TestSiblingCountPerParent(t *testing.T) {
	r := relation.FromTuples("R", []string{"a", "b"},
		[][]Value{{1, 10}, {1, 11}, {1, 12}, {2, 20}})
	it := NewIterator(Build(r, []string{"a", "b"}))
	it.Open() // a=1
	it.Open() // b under a=1
	if got := it.SiblingCount(); got != 3 {
		t.Fatalf("siblings under a=1: %d want 3", got)
	}
	it.Up()
	it.Next() // a=2
	it.Open() // b under a=2
	if got := it.SiblingCount(); got != 1 {
		t.Fatalf("siblings under a=2: %d want 1", got)
	}
	it.Up()
	if got := it.SiblingCount(); got != 2 {
		t.Fatalf("siblings at level a: %d want 2", got)
	}
}

func TestIteratorInitReuse(t *testing.T) {
	t1 := Build(relation.FromTuples("R", []string{"a", "b"}, [][]Value{{1, 2}}), []string{"a", "b"})
	t2 := Build(relation.FromTuples("S", []string{"x"}, [][]Value{{7}, {9}}), []string{"x"})
	var it Iterator
	it.Init(t1)
	it.Open()
	it.Open()
	if it.Key() != 2 {
		t.Fatalf("t1 leaf=%d", it.Key())
	}
	it.Init(t2)
	it.Open()
	if it.Key() != 7 || it.Depth() != 0 {
		t.Fatalf("after re-init: key=%d depth=%d", it.Key(), it.Depth())
	}
}

func randomGraphRelation(n int) *relation.Relation {
	rng := rand.New(rand.NewSource(1))
	r := relation.NewWithCapacity("E", n, "src", "dst")
	for i := 0; i < n; i++ {
		r.Append(rng.Int63n(int64(n/8+1)), rng.Int63n(int64(n/8+1)))
	}
	return r
}

func BenchmarkBuild(b *testing.B) {
	r := randomGraphRelation(40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(r, []string{"src", "dst"})
	}
}

func BenchmarkBuildReference(b *testing.B) {
	r := randomGraphRelation(40000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildReference(r, []string{"src", "dst"})
	}
}
