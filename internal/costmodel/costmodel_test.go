package costmodel

import (
	"testing"

	"adj/internal/cluster"
	"adj/internal/hcube"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(8)
	if p.NumServers != 8 || p.Alpha <= 0 || p.BetaBase <= 0 || p.BetaTrie <= p.BetaBase {
		t.Fatalf("params=%+v", p)
	}
}

func TestCalibrateAlpha(t *testing.T) {
	a := CalibrateAlpha(cluster.DefaultNetwork(), 8)
	if a < 1e6 || a > 1e10 {
		t.Fatalf("alpha=%v implausible", a)
	}
	// More servers => more aggregate bandwidth is not modeled per-tuple:
	// alpha is per-cluster throughput and must stay positive.
	if CalibrateAlpha(cluster.NetworkModel{}, 4) <= 0 {
		t.Fatal("zero model must fall back to a positive default")
	}
}

func TestCalibrateBetaTrie(t *testing.T) {
	b := CalibrateBetaTrie(1 << 12)
	if b <= 0 {
		t.Fatalf("betaTrie=%v", b)
	}
	if CalibrateBetaTrie(0) <= 0 {
		t.Fatal("degenerate size must still calibrate")
	}
}

func TestCalibrateJoinRate(t *testing.T) {
	if r := CalibrateJoinRate(); r <= 0 {
		t.Fatalf("joinRate=%v", r)
	}
}

func TestCommCost(t *testing.T) {
	p := DefaultParams(4)
	rels := []hcube.RelInfo{
		{Name: "R1", Attrs: []string{"a", "b"}, Size: 1000},
		{Name: "R2", Attrs: []string{"b", "c"}, Size: 1000},
		{Name: "R3", Attrs: []string{"a", "c"}, Size: 1000},
	}
	sec, shares, err := CommCost(rels, []string{"a", "b", "c"}, p)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatalf("comm cost=%v", sec)
	}
	if shares.NumCubes() != 4 {
		t.Fatalf("cubes=%d want 4", shares.NumCubes())
	}
	// Doubling every relation doubles the cost (same shares optimum).
	big := make([]hcube.RelInfo, len(rels))
	copy(big, rels)
	for i := range big {
		big[i].Size *= 2
	}
	sec2, _, err := CommCost(big, []string{"a", "b", "c"}, p)
	if err != nil {
		t.Fatal(err)
	}
	if sec2 < sec*1.9 || sec2 > sec*2.1 {
		t.Fatalf("cost not linear in size: %v vs %v", sec, sec2)
	}
}

func TestExtendCost(t *testing.T) {
	if c := ExtendCost(1e6, 1e6, 4); c != 0.25 {
		t.Fatalf("extend cost=%v want 0.25", c)
	}
	if ExtendCost(100, 0, 4) != 0 || ExtendCost(100, 10, 0) != 0 {
		t.Fatal("degenerate params must cost 0")
	}
}

func TestPrecomputeCost(t *testing.T) {
	p := DefaultParams(4)
	inputs := []hcube.RelInfo{
		{Name: "R4", Attrs: []string{"b", "e"}, Size: 10000},
		{Name: "R5", Attrs: []string{"c", "e"}, Size: 10000},
	}
	small := PrecomputeCost(inputs, 1000, p)
	large := PrecomputeCost(inputs, 1e9, p)
	if small <= 0 || large <= small {
		t.Fatalf("precompute costs: small=%v large=%v", small, large)
	}
}

func TestBetaFor(t *testing.T) {
	p := DefaultParams(2)
	if p.BetaFor(true) <= p.BetaFor(false) {
		t.Fatal("precomputed nodes must extend faster")
	}
}

func TestCommCostRespectsMemory(t *testing.T) {
	p := DefaultParams(4)
	p.MemoryPerServer = 600
	rels := []hcube.RelInfo{{Name: "R", Attrs: []string{"a", "b"}, Size: 2000}}
	_, shares, err := CommCost(rels, []string{"a", "b"}, p)
	if err != nil {
		t.Fatal(err)
	}
	if load := hcube.LoadPerCube(rels, shares); load > 600 {
		t.Fatalf("shares %v violate memory: load=%v", shares.P, load)
	}
}
