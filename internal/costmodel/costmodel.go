// Package costmodel implements the cost functions of §III-B: communication
// cost costC (seconds to shuffle a relation set under optimized HCube
// shares), per-level computation cost costE (partial bindings to extend,
// divided by the extension rate β and the server count), and pre-computing
// cost costM (shuffle + join of a GHD bag's relations).
//
// The constants are calibrated the way the paper prescribes: α (tuples
// shuffled per second) by timing a synthetic shuffle on the cluster's
// network model, β for raw relations by reusing the sampler's measured
// extension rate, and β for pre-computed relations by timing probes on a
// pre-built trie.
package costmodel

import (
	"math/rand"
	"time"

	"adj/internal/hcube"
	"adj/internal/relation"
	"adj/internal/trie"
)

// Params holds the calibrated constants of §III-B.
type Params struct {
	// Alpha is tuples shuffled per second across the cluster.
	Alpha float64
	// BetaBase is extension ops per second per server when the traversed
	// node's relations are raw base relations (from sampling statistics).
	BetaBase float64
	// BetaTrie is extension ops per second per server when the node is a
	// pre-computed (materialized, single-trie) relation. Higher than
	// BetaBase: one probe replaces a multi-iterator intersection, and the
	// merged relation enforces the bag's full constraint at once.
	BetaTrie float64
	// JoinRate is hash-join throughput (input+output tuples per second per
	// server) for bag pre-computation.
	JoinRate float64
	// NumServers is N*.
	NumServers int
	// MemoryPerServer bounds HCube loads (tuples; 0 = unbounded).
	MemoryPerServer int64
}

// DefaultParams returns constants roughly calibrated to this repository's
// simulated cluster; engines re-calibrate α and β at run time.
func DefaultParams(n int) Params {
	return Params{
		Alpha:      40e6,
		BetaBase:   4e6,
		BetaTrie:   25e6,
		JoinRate:   12e6,
		NumServers: n,
	}
}

// CalibrateAlpha measures shuffle throughput in tuples/second implied by
// the network model nm for blocks of binary tuples.
func CalibrateAlpha(nm interface {
	CommSeconds(maxServerBytes, maxServerMsgs int64) float64
}, numServers int) float64 {
	const tuples = 1 << 20
	const bytesPerTuple = 16
	// Tuples spread evenly: each server ships tuples/numServers in
	// block-sized messages.
	perServer := int64(tuples / numServers)
	msgs := perServer/4096 + 1
	sec := nm.CommSeconds(perServer*bytesPerTuple, msgs)
	if sec <= 0 {
		return 40e6
	}
	return float64(tuples) / (sec * float64(numServers))
}

// CalibrateBetaTrie measures probe throughput on a pre-built trie of the
// given size, as §III-B prescribes ("pre-measure β_i on tries of various
// sizes").
func CalibrateBetaTrie(size int) float64 {
	if size < 1024 {
		size = 1024
	}
	rng := rand.New(rand.NewSource(1))
	r := relation.NewWithCapacity("cal", size, "x", "y")
	for i := 0; i < size; i++ {
		r.Append(rng.Int63n(int64(size/4+1)), rng.Int63n(int64(size/4+1)))
	}
	tr := trie.Build(r, []string{"x", "y"})
	it := trie.NewIterator(tr)
	const probes = 200000
	t0 := time.Now()
	var sink relation.Value
	for i := 0; i < probes; i++ {
		it.Reset()
		it.Open()
		it.Seek(rng.Int63n(int64(size/4 + 1)))
		if !it.AtEnd() {
			sink += it.Key()
		}
	}
	el := time.Since(t0).Seconds()
	_ = sink
	if el <= 0 {
		return 25e6
	}
	return probes / el
}

// CalibrateJoinRate times a small hash join and returns tuples/second.
func CalibrateJoinRate() float64 {
	rng := rand.New(rand.NewSource(2))
	const n = 50000
	a := relation.NewWithCapacity("a", n, "x", "y")
	b := relation.NewWithCapacity("b", n, "y", "z")
	for i := 0; i < n; i++ {
		a.Append(rng.Int63n(n), rng.Int63n(n/4))
		b.Append(rng.Int63n(n/4), rng.Int63n(n))
	}
	t0 := time.Now()
	out := relation.HashJoin(a, b)
	el := time.Since(t0).Seconds()
	if el <= 0 {
		return 12e6
	}
	return float64(2*n+out.Len()) / el
}

// CommCost returns costC(C) in seconds for shuffling the given relation
// set under the best share vector, plus that vector.
func CommCost(rels []hcube.RelInfo, attrs []string, p Params) (float64, hcube.Shares, error) {
	shares, err := hcube.Optimize(rels, hcube.Config{
		Attrs:           attrs,
		NumServers:      p.NumServers,
		MemoryPerServer: p.MemoryPerServer,
	})
	if err != nil {
		return 0, hcube.Shares{}, err
	}
	tuples := hcube.TotalComm(rels, shares)
	if p.Alpha <= 0 {
		return 0, shares, nil
	}
	return float64(tuples) / p.Alpha, shares, nil
}

// ExtendCost returns costE^i: the seconds to extend `bindings` partial
// bindings at a traversed node, given the applicable β and N* servers.
func ExtendCost(bindings float64, beta float64, numServers int) float64 {
	if beta <= 0 || numServers <= 0 {
		return 0
	}
	return bindings / (beta * float64(numServers))
}

// PrecomputeCost returns costM(Rv): shuffling λ(v) for a distributed
// binary join (each tuple moves once) plus the join work spread over the
// servers.
func PrecomputeCost(inputs []hcube.RelInfo, outputSize float64, p Params) float64 {
	var inTuples int64
	for _, r := range inputs {
		inTuples += r.Size
	}
	comm := 0.0
	if p.Alpha > 0 {
		comm = float64(inTuples) / p.Alpha
	}
	comp := 0.0
	if p.JoinRate > 0 && p.NumServers > 0 {
		comp = (float64(inTuples) + outputSize) / (p.JoinRate * float64(p.NumServers))
	}
	return comm + comp
}

// BetaFor picks the extension rate for a node: trie rate when the node is
// pre-computed, base rate otherwise.
func (p Params) BetaFor(precomputed bool) float64 {
	if precomputed {
		return p.BetaTrie
	}
	return p.BetaBase
}
