package optimizer

import (
	"fmt"
	"sort"
	"strings"

	"adj/internal/costmodel"
	"adj/internal/ghd"
	"adj/internal/hcube"
	"adj/internal/hypergraph"
	"adj/internal/relation"
	"adj/internal/sampling"
)

// Options configures the planner.
type Options struct {
	// Params are the calibrated cost constants.
	Params costmodel.Params
	// Samples per cardinality estimation (§IV; the paper uses 10^5 at full
	// scale, scaled instances need fewer).
	Samples int
	Seed    int64
	// GHDMaxBagAtoms caps bag size during decomposition (0 = none).
	GHDMaxBagAtoms int
	// Cancel, when non-nil, is threaded into every sampling run so a
	// cancelled context aborts planning promptly (estimates truncated by
	// cancellation stay unmemoized garbage, but the plan is abandoned).
	Cancel func() bool
}

// Optimizer plans one query over one database.
type Optimizer struct {
	Q      hypergraph.Query
	Rels   []*relation.Relation
	Decomp *ghd.Decomposition
	opts   Options

	attrs []string
	// tCache memoizes |T_S| estimates by attribute-set key.
	tCache map[string]float64
	// bagCache memoizes |Rv| estimates by bag ID.
	bagCache map[int]float64
	// SampleOps / SampleSeconds accumulate measured sampling work, exposed
	// so engines can charge it to their Optimization phase and derive β.
	SampleOps     int64
	SampleSeconds float64
}

// New builds an optimizer: it computes the GHD immediately (cheap for the
// catalog queries) and defers sampling until costs are needed.
func New(q hypergraph.Query, rels []*relation.Relation, opts Options) (*Optimizer, error) {
	if opts.Samples <= 0 {
		opts.Samples = 1000
	}
	if opts.Params.NumServers <= 0 {
		opts.Params.NumServers = 1
	}
	d, err := ghd.Decompose(q, ghd.Options{MaxBagAtoms: opts.GHDMaxBagAtoms})
	if err != nil {
		return nil, err
	}
	return &Optimizer{
		Q: q, Rels: rels, Decomp: d, opts: opts,
		attrs:    q.Attrs(),
		tCache:   make(map[string]float64),
		bagCache: make(map[int]float64),
	}, nil
}

// SubsetSize estimates |T_S|: the number of Leapfrog partial bindings over
// the given attribute set (order-independent; memoized). The empty set has
// size 1 (the empty binding t0).
func (o *Optimizer) SubsetSize(attrSet []string) float64 {
	if len(attrSet) == 0 {
		return 1
	}
	key := setKey(attrSet)
	if v, ok := o.tCache[key]; ok {
		return v
	}
	order := o.orderWithPrefix(attrSet)
	// Loose attribute sets (few constraining relations) can have enormous
	// partial joins; a per-sample work cap keeps planning cost bounded —
	// truncated estimates read as "at least huge", which is all ordering
	// decisions need.
	samples := o.opts.Samples
	if samples > 150 {
		samples = 150
	}
	est, err := sampling.EstimateCardinality(o.Rels, order, sampling.Config{
		Samples:         samples,
		Seed:            o.opts.Seed,
		MaxDepth:        len(attrSet),
		PerSampleBudget: 5000,
		Cancel:          o.opts.Cancel,
	})
	v := 0.0
	if err == nil {
		v = est.LevelCounts[len(attrSet)-1]
		o.SampleOps += est.WorkOps
		o.SampleSeconds += est.Seconds
	}
	o.tCache[key] = v
	return v
}

// orderWithPrefix returns a full attribute order starting with the subset
// (in canonical attrs order) followed by the remaining attributes.
func (o *Optimizer) orderWithPrefix(subset []string) []string {
	in := make(map[string]bool, len(subset))
	for _, a := range subset {
		in[a] = true
	}
	var out []string
	for _, a := range o.attrs {
		if in[a] {
			out = append(out, a)
		}
	}
	for _, a := range o.attrs {
		if !in[a] {
			out = append(out, a)
		}
	}
	return out
}

// BagSize estimates |Rv| = |⋈ λ(v)| for a bag (memoized). Base bags use
// the exact relation size.
func (o *Optimizer) BagSize(id int) float64 {
	if v, ok := o.bagCache[id]; ok {
		return v
	}
	b := o.Decomp.Bags[id]
	var v float64
	if b.IsBase() {
		v = float64(o.Rels[b.Atoms[0]].Len())
	} else {
		rels := make([]*relation.Relation, len(b.Atoms))
		for i, ai := range b.Atoms {
			rels[i] = o.Rels[ai]
		}
		est, err := sampling.EstimateCardinality(rels, bagOrder(rels), sampling.Config{
			Samples: o.opts.Samples, Seed: o.opts.Seed, Cancel: o.opts.Cancel,
		})
		if err == nil {
			v = est.Cardinality
			o.SampleOps += est.WorkOps
			o.SampleSeconds += est.Seconds
		}
	}
	o.bagCache[id] = v
	return v
}

// bagOrder returns the attribute order for a bag-local estimation.
func bagOrder(rels []*relation.Relation) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range rels {
		for _, a := range r.Attrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// relSetFor returns the HCube relation infos of the query candidate Qi
// defined by precomputing the bags in C: materialized bags contribute their
// estimated output, other bags contribute their base relations.
func (o *Optimizer) relSetFor(c map[int]bool) []hcube.RelInfo {
	var out []hcube.RelInfo
	for _, b := range o.Decomp.Bags {
		if c[b.ID] && !b.IsBase() {
			out = append(out, hcube.RelInfo{
				Name:  BagRelationName(o.Decomp, b.ID),
				Attrs: b.Vertices,
				Size:  int64(o.BagSize(b.ID)),
			})
			continue
		}
		for _, ai := range b.Atoms {
			r := o.Rels[ai]
			out = append(out, hcube.RelInfo{Name: r.Name, Attrs: r.Attrs, Size: int64(r.Len())})
		}
	}
	return out
}

// commCost returns costC for the candidate set C.
func (o *Optimizer) commCost(c map[int]bool) float64 {
	sec, _, err := costmodel.CommCost(o.relSetFor(c), o.attrs, o.opts.Params)
	if err != nil {
		return 1e18
	}
	return sec
}

// precomputeCost returns costM(Rv).
func (o *Optimizer) precomputeCost(id int) float64 {
	b := o.Decomp.Bags[id]
	if b.IsBase() {
		return 0
	}
	var inputs []hcube.RelInfo
	for _, ai := range b.Atoms {
		r := o.Rels[ai]
		inputs = append(inputs, hcube.RelInfo{Name: r.Name, Attrs: r.Attrs, Size: int64(r.Len())})
	}
	return costmodel.PrecomputeCost(inputs, o.BagSize(id), o.opts.Params)
}

// CoOptimize runs Alg. 2: build the traversal order in reverse, choosing at
// each position the node (and whether to pre-compute it) with the lowest
// combined cost.
func (o *Optimizer) CoOptimize() (*Plan, error) {
	d := o.Decomp
	n := len(d.Bags)
	remaining := make(map[int]bool, n)
	for _, b := range d.Bags {
		remaining[b.ID] = true
	}
	chosen := make(map[int]bool) // C: bags to pre-compute
	var reverse []int
	est := Cost{}

	for len(remaining) > 0 {
		type candidate struct {
			v          int
			precompute bool
			cost       float64
			extendCost float64
			preCost    float64
		}
		var best *candidate
		for v := range remaining {
			if !o.prefixConnected(remaining, v) {
				continue
			}
			// |T_{v_{i-1}}|: bindings over the attrs of the remaining prefix.
			prefixAttrs := o.attrsOfBags(remaining, v)
			bindings := o.SubsetSize(prefixAttrs)

			// Branch 1: do not pre-compute v.
			ext1 := costmodel.ExtendCost(bindings, o.opts.Params.BetaFor(chosen[v]), o.opts.Params.NumServers)
			cost1 := o.commCost(chosen) + ext1
			// Branch 2: pre-compute v (only meaningful for non-base bags).
			if !d.Bags[v].IsBase() && !chosen[v] {
				c2 := cloneSet(chosen)
				c2[v] = true
				pre := o.precomputeCost(v)
				ext2 := costmodel.ExtendCost(bindings, o.opts.Params.BetaFor(true), o.opts.Params.NumServers)
				cost2 := pre + o.commCost(c2) + ext2
				if best == nil || cost2 < best.cost {
					best = &candidate{v: v, precompute: true, cost: cost2, extendCost: ext2, preCost: pre}
				}
			}
			if best == nil || cost1 < best.cost {
				best = &candidate{v: v, precompute: false, cost: cost1, extendCost: ext1}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("optimizer: no orderable node among %v (tree disconnected?)", keys(remaining))
		}
		if best.precompute {
			chosen[best.v] = true
		}
		reverse = append(reverse, best.v)
		delete(remaining, best.v)
		est.Computation += best.extendCost
		est.PreCompute += best.preCost
	}

	// Reverse into a forward traversal.
	traversal := make([]int, n)
	for i, v := range reverse {
		traversal[n-1-i] = v
	}
	est.Communication = o.commCost(chosen)

	plan := &Plan{Query: o.Q, Decomp: d, Traversal: traversal, Est: est}
	for id := range chosen {
		plan.Precompute = append(plan.Precompute, id)
	}
	sort.Ints(plan.Precompute)
	plan.AttrOrder = o.attrOrderFor(traversal)
	return plan, nil
}

// CommunicationFirst builds the HCubeJ baseline plan: no pre-computation,
// shares chosen purely for communication, and the attribute order selected
// from all n! orders with the cheap sketch estimator (Fig. 8's
// "All-Selected") — the exact strategy whose estimation errors §IV blames
// for sub-optimal orders.
func (o *Optimizer) CommunicationFirst() (*Plan, error) {
	order := o.ChooseOrderSketch(ghd.AllAttrOrders(o.attrs))
	// A canonical traversal covering all bags, for reporting only.
	traversals := o.Decomp.TraversalOrders()
	plan := &Plan{Query: o.Q, Decomp: o.Decomp, Traversal: traversals[0], AttrOrder: order}
	plan.Est.Communication = o.commCost(nil)
	return plan, nil
}

// ValidOrderPlan is CoOptimize restricted to order selection (no
// pre-computation): ADJ's plan when every bag is kept as base relations.
// Used by the Fig. 8 experiment as "Valid-Selected".
func (o *Optimizer) ValidOrderPlan() (*Plan, error) {
	order := o.ChooseOrder(o.Decomp.ValidAttrOrders())
	traversals := o.Decomp.TraversalOrders()
	plan := &Plan{Query: o.Q, Decomp: o.Decomp, Traversal: traversals[0], AttrOrder: order}
	plan.Est.Communication = o.commCost(nil)
	plan.Est.Computation = o.estimateOrderCost(order)
	return plan, nil
}

// ChooseOrder returns the order minimizing the estimated total number of
// intermediate tuples Σ_i |T_prefix_i| (prefix sizes are set-memoized, so
// enumerating all orders shares almost all sampling work).
func (o *Optimizer) ChooseOrder(orders [][]string) []string {
	best := orders[0]
	bestCost := 1e308
	for _, ord := range orders {
		c := o.estimateOrderCost(ord)
		if c < bestCost {
			bestCost = c
			best = ord
		}
	}
	return best
}

// estimateOrderCost sums estimated intermediate sizes over the order's
// proper prefixes.
func (o *Optimizer) estimateOrderCost(order []string) float64 {
	t := 0.0
	for i := 1; i < len(order); i++ {
		t += o.SubsetSize(order[:i])
	}
	return t
}

// attrOrderFor converts a bag traversal into a full attribute order,
// choosing each bag's within-bag order by estimated intermediate size.
func (o *Optimizer) attrOrderFor(traversal []int) []string {
	groups := o.Decomp.NewAttrsAt(traversal)
	var out []string
	for _, grp := range groups {
		grp = append([]string(nil), grp...)
		for len(grp) > 0 {
			// Greedily pick the next attribute minimizing |T_{prefix+a}|.
			bestI := 0
			bestV := 1e308
			for i, a := range grp {
				v := o.SubsetSize(append(append([]string(nil), out...), a))
				if v < bestV {
					bestV = v
					bestI = i
				}
			}
			out = append(out, grp[bestI])
			grp = append(grp[:bestI], grp[bestI+1:]...)
		}
	}
	return out
}

// ExhaustivePlan searches every (C, traversal) pair with the same cost
// model — exponential, used only by the ablation benchmark to check the
// greedy's quality.
func (o *Optimizer) ExhaustivePlan() (*Plan, error) {
	d := o.Decomp
	var nonBase []int
	for _, b := range d.Bags {
		if !b.IsBase() {
			nonBase = append(nonBase, b.ID)
		}
	}
	traversals := d.TraversalOrders()
	var best *Plan
	for mask := 0; mask < 1<<len(nonBase); mask++ {
		c := make(map[int]bool)
		for i, id := range nonBase {
			if mask&(1<<i) != 0 {
				c[id] = true
			}
		}
		for _, tr := range traversals {
			cost := o.planCost(c, tr)
			if best == nil || cost.Total() < best.Est.Total() {
				plan := &Plan{Query: o.Q, Decomp: d, Traversal: append([]int(nil), tr...), Est: cost}
				for id := range c {
					plan.Precompute = append(plan.Precompute, id)
				}
				sort.Ints(plan.Precompute)
				best = plan
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("optimizer: no plan found")
	}
	best.AttrOrder = o.attrOrderFor(best.Traversal)
	return best, nil
}

// planCost evaluates the full model cost of (C, traversal).
func (o *Optimizer) planCost(c map[int]bool, traversal []int) Cost {
	var cost Cost
	for id := range c {
		cost.PreCompute += o.precomputeCost(id)
	}
	cost.Communication = o.commCost(c)
	prefix := make(map[int]bool)
	for i, v := range traversal {
		if i > 0 {
			bindings := o.SubsetSize(o.attrsOfBags(prefix, -1))
			cost.Computation += costmodel.ExtendCost(bindings, o.opts.Params.BetaFor(c[v]), o.opts.Params.NumServers)
		} else {
			cost.Computation += costmodel.ExtendCost(1, o.opts.Params.BetaFor(c[v]), o.opts.Params.NumServers)
		}
		prefix[v] = true
	}
	return cost
}

// prefixConnected reports whether remaining \ {v} stays connected in the
// join tree (Alg. 2 line 6).
func (o *Optimizer) prefixConnected(remaining map[int]bool, v int) bool {
	var rest []int
	for u := range remaining {
		if u != v {
			rest = append(rest, u)
		}
	}
	if len(rest) <= 1 {
		return true
	}
	in := make(map[int]bool, len(rest))
	for _, u := range rest {
		in[u] = true
	}
	vis := map[int]bool{rest[0]: true}
	stack := []int{rest[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range o.Decomp.Adj[u] {
			if in[w] && !vis[w] {
				vis[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(vis) == len(rest)
}

// attrsOfBags returns the attribute union of the bags in set minus skip.
func (o *Optimizer) attrsOfBags(set map[int]bool, skip int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range o.attrs {
		for id := range set {
			if id == skip {
				continue
			}
			if containsVert(o.Decomp.Bags[id].Vertices, a) && !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

func containsVert(sorted []string, v string) bool {
	i := sort.SearchStrings(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

func cloneSet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func setKey(attrs []string) string {
	s := append([]string(nil), attrs...)
	sort.Strings(s)
	return strings.Join(s, "\x00")
}
