package optimizer

import (
	"math"

	"adj/internal/relation"
)

// Sketch-style cardinality estimation (System-R independence assumptions):
// the cheap per-attribute-statistics estimator that HCubeJ-style
// communication-first planners use for order selection. §IV argues these
// estimates can be orders of magnitude off on complex joins — which is why
// ADJ samples instead — so this is both the baseline's planner and the
// ablation target for BenchmarkAblationEstimator.

// sketchStats holds per-relation, per-attribute distinct counts.
type sketchStats struct {
	sizes    []float64
	distinct []map[string]float64
}

func newSketchStats(rels []*relation.Relation) *sketchStats {
	st := &sketchStats{
		sizes:    make([]float64, len(rels)),
		distinct: make([]map[string]float64, len(rels)),
	}
	for i, r := range rels {
		st.sizes[i] = float64(r.Len())
		st.distinct[i] = make(map[string]float64, r.Arity())
		for _, a := range r.Attrs {
			st.distinct[i][a] = float64(len(r.Distinct(a)))
		}
	}
	return st
}

// prefixEstimate estimates |T_P| for an attribute prefix under uniformity
// and independence: the product of each relation's restriction size,
// divided per shared attribute by the largest distinct count (the classic
// equi-join selectivity 1/max(d)).
func (st *sketchStats) prefixEstimate(rels []*relation.Relation, prefix []string) float64 {
	in := make(map[string]bool, len(prefix))
	for _, a := range prefix {
		in[a] = true
	}
	est := 1.0
	// cover[a] counts relations contributing attribute a.
	cover := make(map[string]int, len(prefix))
	maxD := make(map[string]float64, len(prefix))
	any := false
	for i, r := range rels {
		var bound []string
		for _, a := range r.Attrs {
			if in[a] {
				bound = append(bound, a)
			}
		}
		if len(bound) == 0 {
			continue
		}
		any = true
		// Restriction size: full size when all attrs bound, otherwise the
		// product of the bound attrs' distinct counts capped by |R|.
		var size float64
		if len(bound) == len(r.Attrs) {
			size = st.sizes[i]
		} else {
			size = 1
			for _, a := range bound {
				size *= st.distinct[i][a]
			}
			if size > st.sizes[i] {
				size = st.sizes[i]
			}
		}
		if size < 1 {
			size = 1
		}
		est *= size
		for _, a := range bound {
			cover[a]++
			if d := st.distinct[i][a]; d > maxD[a] {
				maxD[a] = d
			}
		}
	}
	if !any {
		return 1
	}
	for a, c := range cover {
		for k := 1; k < c; k++ {
			d := maxD[a]
			if d < 1 {
				d = 1
			}
			est /= d
		}
	}
	if math.IsInf(est, 0) || math.IsNaN(est) {
		return math.MaxFloat64 / 4
	}
	return est
}

// ChooseOrderSketch selects the order minimizing Σ sketch-estimated prefix
// sizes — no sampling, no data walks. This is the order selector of the
// communication-first baseline (Fig. 8's "All-Selected").
func (o *Optimizer) ChooseOrderSketch(orders [][]string) []string {
	st := newSketchStats(o.Rels)
	best := orders[0]
	bestCost := math.Inf(1)
	for _, ord := range orders {
		c := 0.0
		for i := 1; i < len(ord); i++ {
			c += st.prefixEstimate(o.Rels, ord[:i])
		}
		if c < bestCost {
			bestCost = c
			best = ord
		}
	}
	return best
}

// SketchPrefixEstimate exposes the raw estimator for the ablation bench.
func (o *Optimizer) SketchPrefixEstimate(prefix []string) float64 {
	return newSketchStats(o.Rels).prefixEstimate(o.Rels, prefix)
}
