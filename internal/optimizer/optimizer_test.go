package optimizer

import (
	"math/rand"
	"testing"

	"adj/internal/costmodel"
	"adj/internal/dataset"
	"adj/internal/hypergraph"
	"adj/internal/leapfrog"
	"adj/internal/relation"
	"adj/internal/testutil"
)

func testParams(n int) costmodel.Params {
	p := costmodel.DefaultParams(n)
	return p
}

func newOpt(t *testing.T, q hypergraph.Query, rels []*relation.Relation, n int) *Optimizer {
	t.Helper()
	o, err := New(q, rels, Options{Params: testParams(n), Samples: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSubsetSizeMatchesExactOnPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := testutil.RandEdges(rng, "E", 400, 20)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	o, err := New(q, rels, Options{Params: testParams(4), Samples: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"a", "b", "c"}
	st, err := leapfrog.JoinRelations(rels, order, leapfrog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		est := o.SubsetSize(order[:i])
		exact := float64(st.LevelTuples[i-1])
		if exact == 0 {
			continue
		}
		r := est / exact
		if r < 0.7 || r > 1.4 {
			t.Fatalf("prefix %v: est %.1f vs exact %.0f", order[:i], est, exact)
		}
	}
	if o.SubsetSize(nil) != 1 {
		t.Fatal("empty subset must have size 1")
	}
}

func TestSubsetSizeMemoizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	edges := testutil.RandEdges(rng, "E", 200, 15)
	q := hypergraph.Q1()
	o := newOpt(t, q, q.BindGraph(edges), 4)
	a := o.SubsetSize([]string{"b", "a"})
	ops := o.SampleOps
	b := o.SubsetSize([]string{"a", "b"}) // same set, different order
	if a != b {
		t.Fatal("subset size must be order-independent")
	}
	if o.SampleOps != ops {
		t.Fatal("second call must hit the memo")
	}
}

func TestCoOptimizePlanValid(t *testing.T) {
	for _, qn := range []string{"Q1", "Q4", "Q5", "Q6"} {
		qn := qn
		t.Run(qn, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			edges := testutil.RandEdges(rng, "E", 600, 30)
			q := hypergraph.Get(qn)
			rels := q.BindGraph(edges)
			o := newOpt(t, q, rels, 4)
			plan, err := o.CoOptimize()
			if err != nil {
				t.Fatal(err)
			}
			// Traversal covers all bags exactly once with connected prefixes.
			if len(plan.Traversal) != len(o.Decomp.Bags) {
				t.Fatalf("traversal %v over %d bags", plan.Traversal, len(o.Decomp.Bags))
			}
			seen := map[int]bool{}
			for _, v := range plan.Traversal {
				if seen[v] {
					t.Fatalf("bag %d twice in %v", v, plan.Traversal)
				}
				seen[v] = true
			}
			// AttrOrder is a permutation of the query attrs and valid for the
			// decomposition.
			if len(plan.AttrOrder) != len(q.Attrs()) {
				t.Fatalf("attr order %v", plan.AttrOrder)
			}
			if !o.Decomp.IsValidAttrOrder(plan.AttrOrder) {
				t.Fatalf("attr order %v not valid for decomposition", plan.AttrOrder)
			}
			// Precomputed bags are never base bags.
			for _, id := range plan.Precompute {
				if o.Decomp.Bags[id].IsBase() {
					t.Fatalf("plan precomputes base bag %d", id)
				}
			}
		})
	}
}

func TestCoOptimizePrecomputesOnSkewedData(t *testing.T) {
	// On a skewed graph with Q5/Q6 the last traversed bags dominate cost
	// (Fig. 6) and pre-computing them pays off under the default constants.
	edges := dataset.Load("WT", 0.2)
	q := hypergraph.Q6()
	rels := q.BindGraph(edges)
	o := newOpt(t, q, rels, 8)
	plan, err := o.CoOptimize()
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Decomp.Bags) > 1 && len(plan.Precompute) == 0 {
		t.Logf("plan: %s", plan)
		t.Skip("optimizer chose no pre-computation on this instance; acceptable when comm dominates")
	}
}

func TestCommunicationFirstNeverPrecomputes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	edges := testutil.RandEdges(rng, "E", 500, 25)
	q := hypergraph.Q5()
	o := newOpt(t, q, q.BindGraph(edges), 4)
	plan, err := o.CommunicationFirst()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Precompute) != 0 {
		t.Fatal("communication-first must not pre-compute")
	}
	if plan.Est.PreCompute != 0 {
		t.Fatal("communication-first pre-compute cost must be 0")
	}
}

func TestValidOrderPlanIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := testutil.RandEdges(rng, "E", 500, 25)
	q := hypergraph.Q4()
	o := newOpt(t, q, q.BindGraph(edges), 4)
	plan, err := o.ValidOrderPlan()
	if err != nil {
		t.Fatal(err)
	}
	if !o.Decomp.IsValidAttrOrder(plan.AttrOrder) {
		t.Fatalf("order %v invalid", plan.AttrOrder)
	}
}

func TestChooseOrderPrefersSmallIntermediates(t *testing.T) {
	// Construct a database where starting from attribute c explodes:
	// R1(a,b) tiny, R2(b,c) fan-out heavy.
	r1 := relation.FromTuples("R1", []string{"a", "b"}, [][]relation.Value{{1, 1}})
	var r2rows [][]relation.Value
	for i := relation.Value(0); i < 200; i++ {
		r2rows = append(r2rows, []relation.Value{1, i})
	}
	r2 := relation.FromTuples("R2", []string{"b", "c"}, r2rows)
	q := hypergraph.Query{Name: "Qp", Atoms: []hypergraph.Atom{
		{Name: "R1", Attrs: []string{"a", "b"}},
		{Name: "R2", Attrs: []string{"b", "c"}},
	}}
	o := newOpt(t, q, []*relation.Relation{r1, r2}, 2)
	got := o.ChooseOrder([][]string{{"c", "b", "a"}, {"a", "b", "c"}})
	if got[0] != "a" {
		t.Fatalf("order=%v, want a first (c-first explores 200 intermediates)", got)
	}
}

func TestExhaustiveAtLeastAsGoodAsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges := testutil.RandEdges(rng, "E", 400, 25)
	q := hypergraph.Q5()
	rels := q.BindGraph(edges)
	o := newOpt(t, q, rels, 4)
	greedy, err := o.CoOptimize()
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := o.ExhaustivePlan()
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.Est.Total() > greedy.Est.Total()*1.0001 {
		t.Fatalf("exhaustive %.4f worse than greedy %.4f", exhaustive.Est.Total(), greedy.Est.Total())
	}
}

func TestBagRelationName(t *testing.T) {
	q := hypergraph.PaperExample()
	rng := rand.New(rand.NewSource(9))
	db := hypergraph.Database{}
	for _, a := range q.Atoms {
		db[a.Name] = testutil.RandRelation(rng, a.Name, a.Attrs, 20, 5)
	}
	rels, err := q.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	o := newOpt(t, q, rels, 2)
	for _, b := range o.Decomp.Bags {
		name := BagRelationName(o.Decomp, b.ID)
		if name == "" {
			t.Fatal("empty bag name")
		}
	}
	plan, err := o.CoOptimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.String() == "" {
		t.Fatal("empty plan string")
	}
}
