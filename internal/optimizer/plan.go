// Package optimizer implements ADJ's query planner (§III): given a join
// query, its optimal hypertree decomposition, and sampled statistics, it
// selects which GHD bags to pre-compute and the Leapfrog traversal order so
// that pre-computing + communication + computation cost is minimal (Alg. 2).
package optimizer

import (
	"fmt"
	"strings"

	"adj/internal/ghd"
	"adj/internal/hypergraph"
)

// Cost is the estimated cost breakdown of a plan, in seconds — the columns
// of Tables II–IV.
type Cost struct {
	PreCompute    float64
	Communication float64
	Computation   float64
}

// Total sums the components.
func (c Cost) Total() float64 { return c.PreCompute + c.Communication + c.Computation }

// Plan is the optimizer's output: a query candidate Qi (which bags to
// pre-compute) plus an attribute order for Leapfrog.
type Plan struct {
	Query  hypergraph.Query
	Decomp *ghd.Decomposition
	// Precompute lists the bag IDs whose relations are materialized before
	// the one-round join. Base bags (single relations) never appear.
	Precompute []int
	// Traversal is the bag traversal order (every prefix connected).
	Traversal []int
	// AttrOrder is the Leapfrog attribute order induced by Traversal with
	// within-bag orders chosen by estimated intermediate size.
	AttrOrder []string
	// Est is the model's cost estimate for this plan.
	Est Cost
}

// IsPrecomputed reports whether bag id is materialized by this plan.
func (p *Plan) IsPrecomputed(id int) bool {
	for _, v := range p.Precompute {
		if v == id {
			return true
		}
	}
	return false
}

// BagRelationName returns the name of a bag's materialized relation.
func BagRelationName(d *ghd.Decomposition, id int) string {
	names := make([]string, len(d.Bags[id].Atoms))
	for i, ai := range d.Bags[id].Atoms {
		names[i] = d.Query.Atoms[ai].Name
	}
	return strings.Join(names, "_")
}

// String renders the plan like the paper's examples (Q2 = R1 ⋈ R23 ⋈ R45).
func (p *Plan) String() string {
	var parts []string
	for _, b := range p.Decomp.Bags {
		if p.IsPrecomputed(b.ID) {
			parts = append(parts, BagRelationName(p.Decomp, b.ID)+"*")
		} else {
			for _, ai := range b.Atoms {
				parts = append(parts, p.Query.Atoms[ai].Name)
			}
		}
	}
	return fmt.Sprintf("%s := %s ord=%v traversal=%v est={pre %.3fs comm %.3fs comp %.3fs}",
		p.Query.Name, strings.Join(parts, " ⋈ "), p.AttrOrder, p.Traversal,
		p.Est.PreCompute, p.Est.Communication, p.Est.Computation)
}
