// Package testutil provides deterministic random instance generators shared
// by the test suites: random relations, random graph databases bound to the
// catalog queries, and comparison helpers against the naive join oracle.
package testutil

import (
	"math/rand"

	"adj/internal/hypergraph"
	"adj/internal/relation"
)

// RandRelation builds a random relation with the given schema: n tuples
// with values drawn uniformly from [0, domain).
func RandRelation(rng *rand.Rand, name string, attrs []string, n int, domain int64) *relation.Relation {
	r := relation.NewWithCapacity(name, n, attrs...)
	row := make([]relation.Value, len(attrs))
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Int63n(domain)
		}
		r.AppendTuple(row)
	}
	return r
}

// RandEdges builds a random simple directed edge relation with ~n edges
// over `nodes` vertices (duplicates removed).
func RandEdges(rng *rand.Rand, name string, n int, nodes int64) *relation.Relation {
	r := relation.NewWithCapacity(name, n, "src", "dst")
	for i := 0; i < n; i++ {
		r.Append(rng.Int63n(nodes), rng.Int63n(nodes))
	}
	return r.SortDedup()
}

// RandQueryInstance generates a random query (random binary atoms over a
// small attribute alphabet, guaranteed connected) and a random database for
// it. Used by cross-engine equivalence property tests.
func RandQueryInstance(rng *rand.Rand, maxAtoms, maxAttrs int, tuples int, domain int64) (hypergraph.Query, []*relation.Relation) {
	attrsAll := []string{"a", "b", "c", "d", "e", "f"}
	if maxAttrs > len(attrsAll) {
		maxAttrs = len(attrsAll)
	}
	nAttrs := 2 + rng.Intn(maxAttrs-1)
	attrs := attrsAll[:nAttrs]
	nAtoms := 2 + rng.Intn(maxAtoms-1)
	var q hypergraph.Query
	q.Name = "Qrand"
	for i := 0; i < nAtoms; i++ {
		// Pick 2 distinct attributes; chain the first atom's attrs to keep
		// the query connected: atom i shares an attribute with atom i-1.
		var a1 string
		if i == 0 {
			a1 = attrs[rng.Intn(len(attrs))]
		} else {
			prev := q.Atoms[i-1].Attrs
			a1 = prev[rng.Intn(len(prev))]
		}
		a2 := attrs[rng.Intn(len(attrs))]
		for a2 == a1 {
			a2 = attrs[rng.Intn(len(attrs))]
		}
		q.Atoms = append(q.Atoms, hypergraph.Atom{
			Name:  atomName(i),
			Attrs: []string{a1, a2},
		})
	}
	rels := make([]*relation.Relation, nAtoms)
	for i, at := range q.Atoms {
		rels[i] = RandRelation(rng, at.Name, at.Attrs, tuples, domain).SortDedup()
	}
	return q, rels
}

func atomName(i int) string {
	return "R" + string(rune('1'+i))
}

// RandMixedQueryInstance is RandQueryInstance with atom arities 1–3,
// exercising the non-binary paths (the paper's running example has a
// ternary relation).
func RandMixedQueryInstance(rng *rand.Rand, maxAtoms, maxAttrs int, tuples int, domain int64) (hypergraph.Query, []*relation.Relation) {
	attrsAll := []string{"a", "b", "c", "d", "e", "f"}
	if maxAttrs > len(attrsAll) {
		maxAttrs = len(attrsAll)
	}
	nAttrs := 2 + rng.Intn(maxAttrs-1)
	attrs := attrsAll[:nAttrs]
	nAtoms := 2 + rng.Intn(maxAtoms-1)
	var q hypergraph.Query
	q.Name = "Qmix"
	for i := 0; i < nAtoms; i++ {
		arity := 1 + rng.Intn(3)
		if arity > nAttrs {
			arity = nAttrs
		}
		// Keep the query connected: reuse an attribute of the previous atom.
		var first string
		if i == 0 {
			first = attrs[rng.Intn(len(attrs))]
		} else {
			prev := q.Atoms[i-1].Attrs
			first = prev[rng.Intn(len(prev))]
		}
		atomAttrs := []string{first}
		for len(atomAttrs) < arity {
			a := attrs[rng.Intn(len(attrs))]
			dup := false
			for _, x := range atomAttrs {
				if x == a {
					dup = true
					break
				}
			}
			if !dup {
				atomAttrs = append(atomAttrs, a)
			}
		}
		q.Atoms = append(q.Atoms, hypergraph.Atom{Name: atomName(i), Attrs: atomAttrs})
	}
	rels := make([]*relation.Relation, nAtoms)
	for i, at := range q.Atoms {
		rels[i] = RandRelation(rng, at.Name, at.Attrs, tuples, domain).SortDedup()
	}
	return q, rels
}

// CountDistinct returns the number of distinct tuples in r (non-mutating).
func CountDistinct(r *relation.Relation) int {
	return r.Clone().SortDedup().Len()
}
