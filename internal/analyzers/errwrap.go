package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces PR 6's typed error taxonomy across boundaries: every
// error that crosses a package boundary must stay classifiable with
// errors.Is / errors.As. Two rules:
//
//  1. fmt.Errorf with an error argument must wrap it with %w. Formatting
//     an error with %v or %s flattens it to text: the taxonomy sentinel
//     underneath (ErrTransport, ErrOverloaded, context.Canceled, ...)
//     becomes unreachable and retry/shed classification silently breaks.
//  2. Sentinel errors are compared with errors.Is, never == or != —
//     the phase-wrapping the cluster runtime applies ("phase X worker Y:
//     ...: %w") makes direct comparison always false. The canonical
//     `func (e *T) Is(target error) bool { return target == ErrX }`
//     method is the one place == is the correct operator and is exempt.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "errors crossing boundaries must wrap with %w and be compared via errors.Is",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, file := range pass.Files {
		// Ranges of canonical Is-method bodies, where target == ErrX is
		// the contract rather than a bug.
		var isMethodRanges [][2]token.Pos
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Is" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
				continue
			}
			if isErrorType(sig.Params().At(0).Type()) {
				isMethodRanges = append(isMethodRanges, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
			}
		}
		inIsMethod := func(pos token.Pos) bool {
			for _, r := range isMethodRanges {
				if r[0] <= pos && pos < r[1] {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, x)
			case *ast.BinaryExpr:
				if (x.Op == token.EQL || x.Op == token.NEQ) && !inIsMethod(x.Pos()) {
					checkSentinelCompare(pass, x)
				}
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls whose format consumes an error
// argument through any verb but %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	if !isPkgFunc(obj, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	wraps := strings.Count(strings.ReplaceAll(format, "%%", ""), "%w")
	errArgs := 0
	for _, arg := range call.Args[1:] {
		if at, ok := pass.TypesInfo.Types[arg]; ok && isErrorType(at.Type) {
			errArgs++
		}
	}
	if errArgs > wraps {
		pass.Reportf(call.Pos(), "fmt.Errorf formats an error value without %%w: the typed taxonomy underneath is lost to errors.Is/errors.As — wrap with %%w")
	}
}

// checkSentinelCompare flags ==/!= between two non-nil error operands.
func checkSentinelCompare(pass *Pass, cmp *ast.BinaryExpr) {
	if isNilExpr(cmp.X) || isNilExpr(cmp.Y) {
		return
	}
	xt, xok := pass.TypesInfo.Types[cmp.X]
	yt, yok := pass.TypesInfo.Types[cmp.Y]
	if !xok || !yok || !isErrorType(xt.Type) || !isErrorType(yt.Type) {
		return
	}
	pass.Reportf(cmp.Pos(), "error compared with %s: wrapped errors (phase wrapping, %%w chains) never compare equal — use errors.Is", cmp.Op)
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
