package analyzers_test

import (
	"testing"

	"adj/internal/analyzers"
	"adj/internal/analyzers/analyzertest"
)

func TestPoolDiscipline(t *testing.T) {
	analyzertest.Run(t, "pooldiscipline", analyzers.PoolDiscipline)
}
