package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces PR 5's cancellation contract: context flows end-to-end
// from Session.Exec through the cluster, engine and leapfrog layers, so a
// caller's cancel or deadline lands everywhere. Three rules:
//
//  1. No context.Background()/context.TODO() outside package main (and
//     tests, which the driver does not analyze): a fresh root context in
//     library code severs the cancellation chain.
//  2. Inside a function that already has a context.Context parameter,
//     passing context.Background() anywhere is doubly wrong — the right
//     context is one identifier away.
//  3. A function that accepts a context.Context but never uses it, while
//     calling a callee that accepts one, silently drops cancellation at
//     that hop.
//
// Deliberate roots (nil-ctx compat guards, legacy interface shims) carry
// an //adjlint:ignore ctxflow directive with the reason.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must be threaded end-to-end; no new root contexts outside package main",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		checkCtxRoots(pass, file)
		funcScopeWalk(file, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			if lit == nil && decl != nil {
				checkUnusedCtxParam(pass, decl)
			}
		})
	}
	return nil
}

// checkCtxRoots flags context.Background()/TODO() calls (rules 1 and 2).
// A stack of enclosing function types distinguishes rule 2 (some enclosing
// function already has a ctx parameter in scope) from rule 1.
func checkCtxRoots(pass *Pass, file *ast.File) {
	type frame struct {
		ctxParam string // name of the context parameter, "" if none
	}
	var stack []frame

	pushFieldList := func(params *ast.FieldList) frame {
		f := frame{}
		if params == nil {
			return f
		}
		for _, p := range params.List {
			if t, ok := pass.TypesInfo.Types[p.Type]; ok && isContextType(t.Type) {
				name := "ctx"
				if len(p.Names) > 0 {
					name = p.Names[0].Name
				}
				f.ctxParam = name
			}
		}
		return f
	}
	enclosingCtx := func() string {
		for i := len(stack) - 1; i >= 0; i-- {
			if stack[i].ctxParam != "" && stack[i].ctxParam != "_" {
				return stack[i].ctxParam
			}
		}
		return ""
	}

	visit := func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			stack = append(stack, pushFieldList(x.Type.Params))
		case *ast.FuncLit:
			stack = append(stack, pushFieldList(x.Type.Params))
		case *ast.CallExpr:
			obj := calleeObj(pass.TypesInfo, x)
			name := ""
			if isPkgFunc(obj, "context", "Background") {
				name = "context.Background"
			} else if isPkgFunc(obj, "context", "TODO") {
				name = "context.TODO"
			}
			if name != "" {
				if ctx := enclosingCtx(); ctx != "" {
					pass.Reportf(x.Pos(), "%s() inside a function with context parameter %q: pass %s through instead of starting a new root", name, ctx, ctx)
				} else {
					pass.Reportf(x.Pos(), "%s() outside package main drops the caller's cancellation; accept and thread a context.Context", name)
				}
			}
		}
		return true
	}
	leave := func(n ast.Node) {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			stack = stack[:len(stack)-1]
		}
	}
	astInspectWithLeave(file, visit, leave)
}

// checkUnusedCtxParam implements rule 3 for declared functions.
func checkUnusedCtxParam(pass *Pass, decl *ast.FuncDecl) {
	if decl.Type.Params == nil || decl.Body == nil {
		return
	}
	var ctxIdent *ast.Ident
	var ctxObj types.Object
	for _, p := range decl.Type.Params.List {
		if t, ok := pass.TypesInfo.Types[p.Type]; ok && isContextType(t.Type) {
			for _, name := range p.Names {
				if name.Name == "_" {
					continue
				}
				ctxIdent = name
				ctxObj = pass.TypesInfo.Defs[name]
			}
		}
	}
	if ctxIdent == nil || ctxObj == nil {
		return
	}
	used := false
	var ctxCallee types.Object
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if pass.TypesInfo.Uses[x] == ctxObj {
				used = true
			}
		case *ast.CallExpr:
			if ctxCallee == nil {
				if obj := calleeObj(pass.TypesInfo, x); obj != nil {
					if sig, ok := obj.Type().(*types.Signature); ok &&
						sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) {
						ctxCallee = obj
					}
				}
			}
		}
		return true
	})
	if !used && ctxCallee != nil {
		pass.Reportf(ctxIdent.Pos(), "context parameter %q is never used, but %s accepts a context — cancellation is dropped at this hop", ctxIdent.Name, ctxCallee.Name())
	}
}

// astInspectWithLeave is ast.Inspect with a post-order callback: leave is
// invoked for every node after its children, in LIFO order.
func astInspectWithLeave(root ast.Node, visit func(ast.Node) bool, leave func(ast.Node)) {
	var nodes []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			top := nodes[len(nodes)-1]
			nodes = nodes[:len(nodes)-1]
			leave(top)
			return true
		}
		if !visit(n) {
			return false
		}
		nodes = append(nodes, n)
		return true
	})
}
