package analyzers_test

import (
	"testing"

	"adj/internal/analyzers"
	"adj/internal/analyzers/analyzertest"
)

func TestCtxFlow(t *testing.T) {
	analyzertest.Run(t, "ctxflow", analyzers.CtxFlow)
}

func TestCtxFlowMainPackageExempt(t *testing.T) {
	analyzertest.Run(t, "ctxflow_main", analyzers.CtxFlow)
}
