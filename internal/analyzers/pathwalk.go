package analyzers

import (
	"go/ast"
	"go/token"
)

// heldKind is the state of one tracked resource (a locked mutex, a pooled
// object) on the current path.
type heldKind uint8

const (
	heldDirect   heldKind = iota // acquired; must be released before return
	heldDeferred                 // a defer releases it at function exit
)

// pathState is the per-path resource state. Keys are canonical receiver
// strings (recvString); unknown marks keys the merge logic gave up on —
// no further findings are reported for them (conservative toward silence,
// never toward false positives).
type pathState struct {
	held    map[string]heldKind
	unknown map[string]bool
}

func newPathState() *pathState {
	return &pathState{held: map[string]heldKind{}, unknown: map[string]bool{}}
}

func (s *pathState) clone() *pathState {
	c := newPathState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.unknown {
		c.unknown[k] = true
	}
	return c
}

// directHeld lists keys that are acquired with no deferred release, i.e.
// the ones an early return would leak.
func (s *pathState) directHeld() []string {
	var out []string
	for k, v := range s.held {
		if v == heldDirect && !s.unknown[k] {
			out = append(out, k)
		}
	}
	return out
}

// anyHeld lists all live keys (direct or defer-released) — the set a
// blocking operation would block under.
func (s *pathState) anyHeld() []string {
	var out []string
	for k := range s.held {
		if !s.unknown[k] {
			out = append(out, k)
		}
	}
	return out
}

// pathHooks configures a walk. classify and deferredRelease identify the
// analyzer's acquire/release operations; the at* hooks receive findings.
type pathHooks struct {
	// classify scans one simple statement (no nested statements) and
	// returns the resource keys it acquires and releases.
	classify func(stmt ast.Stmt) (acquires, releases []keyAt)
	// deferredRelease returns the keys a defer statement releases at
	// function exit (directly or through an immediate closure).
	deferredRelease func(d *ast.DeferStmt) []keyAt
	// atStmt is called for every visited statement with the current state,
	// before classification — the blocking-operation inspection point.
	atStmt func(stmt ast.Stmt, st *pathState)
	// atSelect is called for select statements (atStmt is not).
	atSelect func(sel *ast.SelectStmt, st *pathState)
	// atReturn is called at each return with the keys still held directly.
	atReturn func(ret *ast.ReturnStmt, leaked []string, st *pathState)
}

// keyAt is a resource key with the position of the operation on it.
type keyAt struct {
	key string
	pos token.Pos
}

// walkPaths runs the hooks over body with branch-sensitive resource
// tracking: if/else and switch/select arms are analyzed independently and
// merged (disagreeing arms mark the key unknown), loops that change a
// key's state mark it unknown, and a terminated arm (return, panic,
// branch) drops out of the merge.
func walkPaths(body *ast.BlockStmt, hooks *pathHooks) {
	st := newPathState()
	processStmts(body.List, st, hooks)
}

// processStmts runs a statement list; true means the path terminated.
func processStmts(list []ast.Stmt, st *pathState, hooks *pathHooks) bool {
	for _, s := range list {
		if processStmt(s, st, hooks) {
			return true
		}
	}
	return false
}

func applyClassify(s ast.Stmt, st *pathState, hooks *pathHooks) {
	if hooks.classify == nil {
		return
	}
	acq, rel := hooks.classify(s)
	for _, k := range acq {
		if !st.unknown[k.key] {
			st.held[k.key] = heldDirect
		}
	}
	for _, k := range rel {
		delete(st.held, k.key)
	}
}

func processStmt(s ast.Stmt, st *pathState, hooks *pathHooks) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if hooks.atStmt != nil {
			hooks.atStmt(s, st)
		}
		applyClassify(s, st, hooks)
		// panic terminates the path; deferred releases still run.
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false

	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		if hooks.atStmt != nil {
			hooks.atStmt(s, st)
		}
		applyClassify(s, st, hooks)
		return false

	case *ast.DeferStmt:
		if hooks.deferredRelease != nil {
			for _, k := range hooks.deferredRelease(x) {
				if _, ok := st.held[k.key]; ok && !st.unknown[k.key] {
					st.held[k.key] = heldDeferred
				} else if !st.unknown[k.key] {
					// Defer scheduled before (or without) the acquire —
					// record it so a later acquire is still covered.
					st.held[k.key] = heldDeferred
				}
			}
		}
		return false

	case *ast.ReturnStmt:
		if hooks.atStmt != nil {
			hooks.atStmt(s, st)
		}
		if hooks.atReturn != nil {
			hooks.atReturn(x, st.directHeld(), st)
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto leave the enclosing region; treat as path
		// exit for merge purposes (conservative: no findings reported).
		return true

	case *ast.BlockStmt:
		return processStmts(x.List, st, hooks)

	case *ast.LabeledStmt:
		return processStmt(x.Stmt, st, hooks)

	case *ast.IfStmt:
		if x.Init != nil {
			processStmt(x.Init, st, hooks)
		}
		if hooks.atStmt != nil {
			hooks.atStmt(s, st) // inspects only the condition (see exprsOf)
		}
		thenSt := st.clone()
		thenTerm := processStmts(x.Body.List, thenSt, hooks)
		elseSt := st.clone()
		elseTerm := false
		if x.Else != nil {
			elseTerm = processStmt(x.Else, elseSt, hooks)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			mergeInto(st, thenSt, elseSt)
		}
		return false

	case *ast.ForStmt, *ast.RangeStmt:
		if hooks.atStmt != nil {
			hooks.atStmt(s, st)
		}
		var body *ast.BlockStmt
		if f, ok := x.(*ast.ForStmt); ok {
			if f.Init != nil {
				processStmt(f.Init, st, hooks)
			}
			body = f.Body
		} else {
			body = x.(*ast.RangeStmt).Body
		}
		loopSt := st.clone()
		processStmts(body.List, loopSt, hooks)
		// The body may run zero or many times: any key whose state the
		// body changed becomes unknown.
		for k, v := range loopSt.held {
			if pv, ok := st.held[k]; !ok || pv != v {
				st.unknown[k] = true
			}
		}
		for k := range st.held {
			if _, ok := loopSt.held[k]; !ok {
				st.unknown[k] = true
			}
		}
		return false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		if hooks.atStmt != nil {
			hooks.atStmt(s, st)
		}
		var bodyList []ast.Stmt
		hasDefault := false
		if sw, ok := x.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				processStmt(sw.Init, st, hooks)
			}
			bodyList = sw.Body.List
		} else {
			ts := x.(*ast.TypeSwitchStmt)
			if ts.Init != nil {
				processStmt(ts.Init, st, hooks)
			}
			bodyList = ts.Body.List
		}
		var arms []*pathState
		allTerm := true
		for _, cl := range bodyList {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			armSt := st.clone()
			if !processStmts(cc.Body, armSt, hooks) {
				arms = append(arms, armSt)
				allTerm = false
			}
		}
		if !hasDefault {
			// No default: the switch may match nothing and fall through
			// with the entry state.
			arms = append(arms, st.clone())
			allTerm = false
		}
		if allTerm {
			return true
		}
		mergeInto(st, arms...)
		return false

	case *ast.SelectStmt:
		if hooks.atSelect != nil {
			hooks.atSelect(x, st)
		}
		var arms []*pathState
		allTerm := len(x.Body.List) > 0
		for _, cl := range x.Body.List {
			cc := cl.(*ast.CommClause)
			armSt := st.clone()
			if cc.Comm != nil {
				// The comm op is the select's own blocking mechanism —
				// atSelect already judged it; only classify its effects.
				applyClassify(cc.Comm, armSt, hooks)
			}
			if !processStmts(cc.Body, armSt, hooks) {
				arms = append(arms, armSt)
				allTerm = false
			}
		}
		if allTerm {
			return true
		}
		mergeInto(st, arms...)
		return false

	case *ast.GoStmt:
		// A new goroutine does not run under the caller's locks; its body
		// (a FuncLit) is analyzed as its own scope by funcScopeWalk.
		return false

	default:
		return false
	}
}

// mergeInto folds the fall-through arm states into st: keys on which all
// arms agree keep that state; disagreements become unknown.
func mergeInto(st *pathState, arms ...*pathState) {
	if len(arms) == 0 {
		return
	}
	merged := newPathState()
	for k := range arms[0].held {
		merged.held[k] = arms[0].held[k]
	}
	for _, a := range arms {
		for k := range a.unknown {
			merged.unknown[k] = true
		}
	}
	for _, a := range arms[1:] {
		for k, v := range merged.held {
			av, ok := a.held[k]
			if !ok || av != v {
				merged.unknown[k] = true
				delete(merged.held, k)
			}
		}
		for k := range a.held {
			if _, ok := merged.held[k]; !ok {
				merged.unknown[k] = true
			}
		}
	}
	st.held = merged.held
	for k := range merged.unknown {
		st.unknown[k] = true
	}
}

// exprsOf returns the expressions a statement evaluates directly — the
// inspection surface for blocking-operation checks. Nested statement
// bodies are excluded (the walker visits them itself).
func exprsOf(s ast.Stmt) []ast.Expr {
	switch x := s.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{x.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, x.Rhs...), x.Lhs...)
	case *ast.ReturnStmt:
		return x.Results
	case *ast.IfStmt:
		return []ast.Expr{x.Cond}
	case *ast.ForStmt:
		if x.Cond != nil {
			return []ast.Expr{x.Cond}
		}
	case *ast.RangeStmt:
		return []ast.Expr{x.X}
	case *ast.SwitchStmt:
		if x.Tag != nil {
			return []ast.Expr{x.Tag}
		}
	case *ast.SendStmt:
		return []ast.Expr{x.Chan, x.Value}
	case *ast.IncDecStmt:
		return []ast.Expr{x.X}
	case *ast.DeferStmt:
		return []ast.Expr{x.Call}
	}
	return nil
}
