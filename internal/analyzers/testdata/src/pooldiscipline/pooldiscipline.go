// Fixtures for the pooldiscipline analyzer: Get/Put pairing on all paths
// and reset-before-Put for slice scratch.
package pooldiscipline

import (
	"errors"
	"sync"
)

var errBad = errors.New("bad")

var scratch = sync.Pool{
	New: func() any {
		s := make([]byte, 0, 64)
		return &s
	},
}

func goodDefer() int {
	sp := scratch.Get().(*[]byte)
	defer func() {
		*sp = (*sp)[:0]
		scratch.Put(sp)
	}()
	buf := append(*sp, 1, 2, 3)
	return len(buf)
}

func goodLoopReset(n int) int {
	sp := scratch.Get().(*[]byte)
	defer func() { scratch.Put(sp) }() // ok: reset happens in the loop below
	total := 0
	for i := 0; i < n; i++ {
		buf := append((*sp)[:0], byte(i))
		total += len(buf)
		*sp = buf[:0]
	}
	return total
}

func goodInline(n int) []byte {
	sp := scratch.Get().(*[]byte)
	buf := append((*sp)[:0], make([]byte, n)...)
	out := append([]byte(nil), buf...)
	*sp = buf[:0]
	scratch.Put(sp)
	return out
}

func leakOnError(fail bool) error {
	sp := scratch.Get().(*[]byte)
	if fail {
		return errBad // want "return without scratch.Put"
	}
	*sp = (*sp)[:0]
	scratch.Put(sp)
	return nil
}

func noReset() {
	sp := scratch.Get().(*[]byte)
	buf := append(*sp, 1)
	_ = buf
	scratch.Put(sp) // want "put back without reset"
}

func getBuf() *[]byte {
	sp := scratch.Get().(*[]byte)
	return sp // ok: ownership transfers to the caller
}

func putBuf(sp *[]byte) {
	*sp = (*sp)[:0]
	scratch.Put(sp) // ok: the Put half of a get/put helper pair
}

func handOff() {
	sp := scratch.Get().(*[]byte)
	consume(sp) // ok: ownership handed to consume
}

func consume(sp *[]byte) {
	*sp = (*sp)[:0]
	scratch.Put(sp)
}

func suppressedLeak(fail bool) error {
	sp := scratch.Get().(*[]byte)
	if fail {
		//adjlint:ignore pooldiscipline the caller reclaims the buffer via Finalize
		return errBad
	}
	*sp = (*sp)[:0]
	scratch.Put(sp)
	return nil
}

type node struct{ next *node }

var nodePool = sync.Pool{
	New: func() any { return new(node) },
}

func recycle(n *node) {
	n.next = nil
	nodePool.Put(n) // ok: not a slice buffer, no truncation contract
}
