// Fixtures for the errwrap analyzer: the typed error taxonomy must
// survive boundary crossings.
package errwrap

import (
	"errors"
	"fmt"
)

var ErrTransport = errors.New("transport failure")

func wrapGood(err error) error {
	return fmt.Errorf("phase shuffle: %w", err) // ok
}

func wrapBadVerb(err error) error {
	return fmt.Errorf("phase shuffle: %v", err) // want "without %w"
}

func wrapBadString(err error) error {
	return fmt.Errorf("worker %d: %s", 3, err) // want "without %w"
}

func wrapPartial(a, b error) error {
	return fmt.Errorf("join: %w (after %v)", a, b) // want "without %w"
}

func wrapNonError(err error) error {
	return fmt.Errorf("attempt %d: %w", 2, err) // ok: the int is not an error
}

func compareEq(err error) bool {
	return err == ErrTransport // want "use errors.Is"
}

func compareNeq(err error) bool {
	return err != ErrTransport // want "use errors.Is"
}

func compareNil(err error) bool {
	return err == nil // ok: nil check, not sentinel comparison
}

func compareIs(err error) bool {
	return errors.Is(err, ErrTransport) // ok
}

func suppressed(err error) bool {
	//adjlint:ignore errwrap err comes from a layer that never wraps
	return err == ErrTransport
}

type transportError struct{ msg string }

func (e *transportError) Error() string { return e.msg }

// Is is the canonical taxonomy hook: == against the sentinel is the
// contract here, not a bug, and the analyzer exempts it.
func (e *transportError) Is(target error) bool { return target == ErrTransport }
