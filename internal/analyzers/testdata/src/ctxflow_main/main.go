// Fixture: package main is the one place new context roots belong.
package main

import "context"

func main() {
	ctx := context.Background() // ok: main owns the root
	if err := run(ctx); err != nil {
		panic(err)
	}
}

func run(ctx context.Context) error {
	<-ctx.Done()
	return nil
}
