// Fixtures for the lockdiscipline analyzer: no blocking work or early
// returns while a mutex is held, and no mutex copies.
package lockdiscipline

import (
	"errors"
	"sync"
	"time"
)

var errProblem = errors.New("problem")

type server struct {
	mu    sync.Mutex
	ch    chan int
	wg    sync.WaitGroup
	state int
}

func (s *server) good() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func (s *server) goodManual() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.ch <- s.state // ok: send happens after unlock
}

func (s *server) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *server) recvHeld() int {
	s.mu.Lock()
	v := <-s.ch // want "channel receive while s.mu is held"
	s.mu.Unlock()
	return v
}

func (s *server) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *server) waitHeld() {
	s.mu.Lock()
	s.wg.Wait() // want "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

func (s *server) earlyReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		return errProblem // want "return with s.mu still locked"
	}
	s.mu.Unlock()
	return nil
}

func (s *server) selectHeld() {
	s.mu.Lock()
	select { // want "select without default while s.mu is held"
	case v := <-s.ch:
		s.state = v
	}
	s.mu.Unlock()
}

func (s *server) pollHeld() {
	s.mu.Lock()
	select { // ok: default arm makes this a non-blocking poll
	case v := <-s.ch:
		s.state = v
	default:
	}
	s.mu.Unlock()
}

func (s *server) closureUnlock() error {
	s.mu.Lock()
	defer func() {
		s.state++
		s.mu.Unlock()
	}()
	if s.state > 10 {
		return errProblem // ok: the deferred closure unlocks
	}
	return nil
}

func (s *server) suppressedSend() {
	s.mu.Lock()
	//adjlint:ignore lockdiscipline buffered channel sized to capacity, cannot block
	s.ch <- 2
	s.mu.Unlock()
}

type fakeCluster struct{}

func (fakeCluster) Exchange(phase string) error { return nil }

func (s *server) exchangeHeld(c fakeCluster) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.Exchange("shuffle") // want "call to Exchange while s.mu is held"
}

func takesMutex(mu sync.Mutex) { _ = mu }

func (s *server) copyArg() {
	takesMutex(s.mu) // want "copies a sync mutex by value"
}

func (s *server) copyAssign() {
	m := s.mu // want "copies a sync mutex by value"
	_ = m
}

func (s *server) pointerOK() {
	p := &s.mu // ok: pointer, shared lock state
	p.Lock()
	p.Unlock()
}
