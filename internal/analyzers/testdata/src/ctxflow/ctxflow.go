// Fixtures for the ctxflow analyzer: context must thread end-to-end.
package ctxflow

import "context"

func doWork(ctx context.Context, n int) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	_ = n
	return nil
}

func threaded(ctx context.Context) error {
	return doWork(ctx, 1) // ok: ctx flows through
}

func freshRoot() {
	ctx := context.Background() // want "outside package main drops the caller's cancellation"
	_ = ctx
}

func todoRoot() error {
	return doWork(context.TODO(), 1) // want "outside package main"
}

func shadowedRoot(ctx context.Context) error { // want "never used"
	return doWork(context.Background(), 2) // want "pass ctx through instead of starting a new root"
}

func dropped(ctx context.Context) error { // want "context parameter \"ctx\" is never used"
	return doWork(nil, 3)
}

func compatShim() error {
	//adjlint:ignore ctxflow one-shot shim keeps a deliberate root
	return doWork(context.Background(), 4)
}

func blankParam(_ context.Context) error {
	return doWork(context.TODO(), 5) // want "outside package main"
}

func launcher(ctx context.Context) func() error {
	return func() error {
		return doWork(ctx, 6) // ok: closure inherits ctx
	}
}

func closureRoot(ctx context.Context) func() error { // want "never used"
	return func() error {
		return doWork(context.Background(), 7) // want "pass ctx through"
	}
}
