// Fixtures for the phasevocab analyzer: phase-name literals come from the
// fixed vocabulary. The Op/Metrics/Cluster shapes are matched by type
// name, so local models stand in for the real packages.
package phasevocab

type Op struct {
	Kind  int
	Phase string
}

type Metrics struct{}

func (m *Metrics) Phase(name string) *Metrics { return m }

type Cluster struct{}

func (c *Cluster) Parallel(phase string, fn func() error) error { return nil }
func (c *Cluster) Exchange(phase string) error                  { return nil }
func (c *Cluster) StreamExchange(phase string) error            { return nil }

const legacyPhase = "hcube"

func good(c *Cluster, m *Metrics) {
	_ = Op{Phase: "precompute"}
	_ = Op{Phase: "precompute/canon"}
	_ = Op{Phase: "round0"}
	_ = Op{Phase: "join"}
	_ = Op{Phase: legacyPhase} // ok: named constants define vocabulary deliberately
	m.Phase("shuffle")
	m.Phase("sample/reduce")
	_ = c.Parallel("tries", nil)
	_ = c.Exchange("shuffle")
	_ = c.StreamExchange("emit")
}

func bad(c *Cluster, m *Metrics) {
	_ = Op{Phase: "shufle"}       // want "outside the vocabulary"
	m.Phase("Join")               // want "outside the vocabulary"
	_ = c.Parallel("warmup", nil) // want "outside the vocabulary"
	_ = c.Exchange("x")           // want "outside the vocabulary"
}

func suppressed(m *Metrics) {
	//adjlint:ignore phasevocab migration shim keeps the pre-rename bucket
	m.Phase("hcube")
}

func computed(c *Cluster, phase string) {
	_ = c.Exchange(phase)          // ok: computed names are the caller's problem
	_ = c.Exchange(phase + "/sub") // ok: not a literal
}

type other struct{}

func (o *other) Phase(name string) {}

func unrelated(o *other) {
	o.Phase("whatever") // ok: not the Metrics type
}
