package analyzers

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// PhaseVocab enforces the phase-name vocabulary that ties the plan IR,
// the cluster metrics ledger, and the experiment harness together. Phase
// names are join keys: lower.go stamps them on plan ops, Parallel /
// Exchange / StreamExchange charge wall-clock to them, and the fig09-style
// reports group by them. A typo'd phase name is not an error anywhere —
// it just silently opens a new metrics bucket and the report's numbers
// stop adding up.
//
// The vocabulary is root[digits][/subphase]: roots are the pipeline's
// stages (precompute, shuffle, join, round, optimize, sample, emit, tries,
// coordinator), an optional round index (round0, round1), and an optional
// slash-separated subphase (precompute/canon, sample/reduce, join/probe).
//
// Checked sites (string literals only; computed names are the caller's
// responsibility):
//   - Phase: fields in composite literals of a type named Op (the plan IR)
//   - .Phase(...) calls on a type named Metrics
//   - the phase argument of .Parallel / .Exchange / .StreamExchange calls
//     on a type named Cluster
var PhaseVocab = &Analyzer{
	Name: "phasevocab",
	Doc:  "phase-name literals on plan ops and metrics charges must come from the fixed vocabulary",
	Run:  runPhaseVocab,
}

var phaseNameRE = regexp.MustCompile(`^(precompute|shuffle|join|round|optimize|sample|emit|tries|coordinator)[0-9]*(/[A-Za-z0-9_/-]+)?$`)

func runPhaseVocab(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				checkOpPhaseField(pass, x)
			case *ast.CallExpr:
				checkPhaseCallArg(pass, x)
			}
			return true
		})
	}
	return nil
}

// litString extracts the constant string value of e, if it is one.
func litString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	// Only flag syntactic literals; named constants define vocabulary
	// deliberately and concatenations are checked at their literal parts.
	if _, isLit := ast.Unparen(e).(*ast.BasicLit); !isLit {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func reportBadPhase(pass *Pass, e ast.Expr, name, site string) {
	pass.Reportf(e.Pos(), "phase name %q (%s) is outside the vocabulary %s[digits][/subphase]: a typo here opens a fresh metrics bucket instead of failing",
		name, site, strings.Join(phaseRoots(), "|"))
}

func phaseRoots() []string {
	return []string{"precompute", "shuffle", "join", "round", "optimize", "sample", "emit", "tries", "coordinator"}
}

// checkOpPhaseField validates Phase: "..." fields in plan-IR Op literals.
func checkOpPhaseField(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || !typeNameIs(tv.Type, "Op") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Phase" {
			continue
		}
		if s, ok := litString(pass, kv.Value); ok && !phaseNameRE.MatchString(s) {
			reportBadPhase(pass, kv.Value, s, "plan op Phase field")
		}
	}
}

// checkPhaseCallArg validates the phase-name argument of Metrics.Phase and
// the Cluster phase-running methods.
func checkPhaseCallArg(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return
	}
	var site string
	switch {
	case sel.Sel.Name == "Phase" && typeNameIs(tv.Type, "Metrics"):
		site = "Metrics.Phase charge"
	case typeNameIs(tv.Type, "Cluster") &&
		(sel.Sel.Name == "Parallel" || sel.Sel.Name == "Exchange" || sel.Sel.Name == "StreamExchange"):
		site = "Cluster." + sel.Sel.Name + " phase"
	default:
		return
	}
	if s, ok := litString(pass, call.Args[0]); ok && !phaseNameRE.MatchString(s) {
		reportBadPhase(pass, call.Args[0], s, site)
	}
}
