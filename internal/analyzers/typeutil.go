package analyzers

import (
	"go/ast"
	"go/types"
)

// calleeObj resolves the function or method object a call invokes, or nil
// for indirect calls through function values and type conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[fn]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		// Package-qualified call (pkg.Func).
		if obj := info.Uses[fn.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// isPkgFunc reports whether obj is the function pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedType unwraps pointers and returns the named type underneath, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (or *t) is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}

// typeNameIs reports whether t (or *t) is a named type with the given
// bare name, regardless of package. Project-shape matching (plan.Op,
// cluster.Cluster, cluster.Metrics) is name-based so the analyzertest
// fixtures can model the shapes with local types.
func typeNameIs(t types.Type, name string) bool {
	n := namedType(t)
	return n != nil && n.Obj() != nil && n.Obj().Name() == name
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is assignable to the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Identical(t, errorType)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// isPoolType reports whether t (or *t) is sync.Pool.
func isPoolType(t types.Type) bool {
	return isNamed(t, "sync", "Pool")
}

// recvString renders the receiver expression of a selector call (the "x"
// of x.Lock()) as a stable key for matching Lock/Unlock and Get/Put pairs
// within one function. Purely syntactic: two textually identical
// expressions are treated as the same lock/pool, which is exactly the
// discipline the codebase follows (s.mu.Lock / s.mu.Unlock).
func recvString(e ast.Expr) string {
	return types.ExprString(ast.Unparen(e))
}

// funcScopeWalk visits every function body in the file — declarations and
// function literals — calling fn with the body and the enclosing
// *ast.FuncDecl (nil for literals not inside a declaration... the decl of
// the lexically innermost enclosing function is passed). Function literal
// bodies are NOT revisited when fn walks its own body; each body is
// delivered exactly once.
func funcScopeWalk(file *ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	var decl *ast.FuncDecl
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			decl = x
			if x.Body != nil {
				fn(x, nil, x.Body)
			}
		case *ast.FuncLit:
			fn(decl, x, x.Body)
		}
		return true
	}
	ast.Inspect(file, walk)
}
