package analyzers

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a field", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}

	sub, err := ByName("ctxflow, errwrap")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "ctxflow" || sub[1].Name != "errwrap" {
		t.Fatalf("ByName subset = %v", sub)
	}

	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName should reject unknown analyzer names")
	}
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package p

func f() {
	//adjlint:ignore ctxflow legacy shim
	a()
	b() //adjlint:ignore all migration in flight
	c() //adjlint:ignore errwrap,phasevocab two at once
	d()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ignores := collectIgnores(fset, []*ast.File{f})

	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"ctxflow", 5, true},    // directive on the line above a()
		{"errwrap", 5, false},   // different analyzer, not suppressed
		{"errwrap", 6, true},    // trailing "all" on b()'s own line
		{"ctxflow", 6, true},    // "all" covers every analyzer
		{"ctxflow", 7, true},    // "all" on the line above also covers c()
		{"errwrap", 7, true},    // comma list, first entry
		{"phasevocab", 7, true}, // comma list, second entry
		{"ctxflow", 8, false},   // line-7 comma list does not name ctxflow
		{"errwrap", 8, true},    // a trailing directive covers the next line too
		{"errwrap", 9, false},   // out of range
	}
	for _, c := range cases {
		if got := ignores.matches(c.analyzer, at(c.line)); got != c.want {
			t.Errorf("matches(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}
