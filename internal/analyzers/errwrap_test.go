package analyzers_test

import (
	"testing"

	"adj/internal/analyzers"
	"adj/internal/analyzers/analyzertest"
)

func TestErrWrap(t *testing.T) {
	analyzertest.Run(t, "errwrap", analyzers.ErrWrap)
}
