// Package analyzers is ADJ's project-specific static analysis suite: a
// small, dependency-free analysis framework (stdlib go/ast + go/types
// only — the build environment carries no golang.org/x/tools) plus the
// five analyzers that turn the codebase's hand-maintained invariants into
// compile-time checks:
//
//   - ctxflow: context.Context must flow end-to-end; no
//     context.Background()/context.TODO() outside package main and tests.
//   - errwrap: errors crossing package boundaries keep the typed taxonomy —
//     fmt.Errorf with an error argument must use %w, sentinel errors are
//     compared with errors.Is, never ==.
//   - lockdiscipline: no blocking operation (channel send/receive, select,
//     Exchange/StreamExchange/Parallel/Admit, time.Sleep) while a sync
//     mutex is held, and no early return that can leave one locked.
//   - pooldiscipline: every sync.Pool.Get has a matching Put on all paths,
//     and pointer-to-slice scratch is length-reset before Put.
//   - phasevocab: phase-name string literals charged to run metrics come
//     from the fixed phase vocabulary, so report accounting cannot
//     silently fragment.
//
// The cmd/adjlint multichecker drives the suite over ./... and is a hard
// CI gate. False positives are suppressed in place with
//
//	//adjlint:ignore <analyzer>[,<analyzer>] reason...
//
// on the flagged line or the line directly above it (see README.md).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// through its Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name is the short identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, ErrWrap, LockDiscipline, PoolDiscipline, PhaseVocab}
}

// ByName resolves a comma-separated analyzer list ("" = all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies each analyzer to each package, filters findings through the
// packages' //adjlint:ignore directives, and returns them sorted by
// position. Seconds maps analyzer name → cumulative runtime, so the CI log
// keeps the gate's cost visible.
func Run(pkgs []*Package, as []*Analyzer) (diags []Diagnostic, seconds map[string]float64, err error) {
	seconds = make(map[string]float64, len(as))
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		for _, a := range as {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			t0 := now()
			if rerr := a.Run(pass); rerr != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, rerr)
			}
			seconds[a.Name] += now() - t0
			for _, d := range raw {
				if !ignores.matches(a.Name, d.Pos) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, seconds, nil
}

// ignoreDirective is one parsed //adjlint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // nil = all analyzers
}

type ignoreSet []ignoreDirective

// matches reports whether a finding by analyzer at pos is suppressed: the
// directive sits on the same line (trailing comment) or the line directly
// above (its own comment line).
func (s ignoreSet) matches(analyzer string, pos token.Position) bool {
	for _, ig := range s {
		if ig.file != pos.Filename {
			continue
		}
		if ig.line != pos.Line && ig.line != pos.Line-1 {
			continue
		}
		if ig.analyzers == nil || ig.analyzers[analyzer] {
			return true
		}
	}
	return false
}

const ignorePrefix = "//adjlint:ignore"

// collectIgnores parses every //adjlint:ignore directive in the package.
// Grammar: "//adjlint:ignore <name>[,<name>...] reason..."; the name list
// "all" suppresses every analyzer.
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	var out ignoreSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				ig := ignoreDirective{file: pos.Filename, line: pos.Line}
				if fields[0] != "all" {
					ig.analyzers = make(map[string]bool)
					for _, n := range strings.Split(fields[0], ",") {
						ig.analyzers[n] = true
					}
				}
				out = append(out, ig)
			}
		}
	}
	return out
}
