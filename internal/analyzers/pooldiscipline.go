package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolDiscipline enforces the buffer-reuse contract around the codec and
// shuffle scratch pools (encScratch, the trie wide-row pools). Two rules:
//
//  1. Every sync.Pool.Get must be matched by a Put on all paths through
//     the function. A path that returns early without Put does not crash —
//     it silently degrades the pool to an allocator, which is exactly the
//     regression the PR 8 chunked-encode benchmarks exist to catch.
//     Objects that escape the function (returned, or handed whole to
//     another function, as getWide does) transfer ownership and are not
//     tracked.
//  2. Pooled buffers are reset before Put: a Put whose argument is a
//     *[]T must be preceded by a `*x = ...` truncation (the `*sp =
//     buf[:0]` idiom). Returning a grown buffer un-truncated pins its
//     backing array forever; returning one with stale contents is a
//     correctness bug waiting for the next Get.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "sync.Pool.Get must be matched by Put on all paths; pooled buffers reset before Put",
	Run:  runPoolDiscipline,
}

func runPoolDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		funcScopeWalk(file, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkPoolPaths(pass, body)
			// The reset check is position-insensitive and scans the whole
			// declaration (closures included, via ast.Inspect), so it runs
			// once per FuncDecl: a Put inside a deferred closure is paired
			// with a reset in the enclosing loop, the chunked-encoder shape.
			if lit == nil {
				checkPoolReset(pass, body)
			}
		})
	}
	return nil
}

// poolCallKey returns the pool receiver key of a Get/Put call on a
// sync.Pool-typed receiver, or "".
func poolCallKey(pass *Pass, call *ast.CallExpr, name string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isPoolType(tv.Type) {
		return ""
	}
	return recvString(sel.X)
}

// escapedPools returns the pool keys whose Get results escape the
// function: the variable a Get is assigned to appears in a return
// statement or is passed bare to a call other than a Put. Such Gets
// transfer ownership (the getWide/putWide split) and are exempt from
// path matching.
func escapedPools(pass *Pass, body *ast.BlockStmt) map[string]bool {
	// Variable object -> pool key, for each `v := pool.Get()...` binding.
	getVars := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		// RHS may wrap Get in a type assertion: pool.Get().(*[]byte).
		var key string
		ast.Inspect(as.Rhs[0], func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && key == "" {
				if k := poolCallKey(pass, call, "Get"); k != "" {
					key = k
				}
			}
			return true
		})
		if key == "" {
			return true
		}
		var obj types.Object
		if as.Tok == token.DEFINE {
			obj = pass.TypesInfo.Defs[id]
		} else {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			getVars[obj] = key
		}
		return true
	})
	if len(getVars) == 0 {
		return nil
	}

	escaped := map[string]bool{}
	isGetVar := func(e ast.Expr) (string, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return "", false
		}
		k, ok := getVars[pass.TypesInfo.Uses[id]]
		return k, ok
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if k, ok := isGetVar(r); ok {
					escaped[k] = true
				}
			}
		case *ast.CallExpr:
			// Passing the object whole to any callee but Put hands
			// ownership over; deref uses (*sp, len(*sp)) do not.
			if poolCallKey(pass, x, "Put") != "" {
				return true
			}
			for _, arg := range x.Args {
				if k, ok := isGetVar(arg); ok {
					escaped[k] = true
				}
			}
		}
		return true
	})
	return escaped
}

func checkPoolPaths(pass *Pass, body *ast.BlockStmt) {
	escaped := escapedPools(pass, body)
	hooks := &pathHooks{
		classify: func(s ast.Stmt) (acq, rel []keyAt) {
			for _, e := range exprsOf(s) {
				scanCalls(e, func(call *ast.CallExpr) {
					if k := poolCallKey(pass, call, "Get"); k != "" && !escaped[k] {
						acq = append(acq, keyAt{k, call.Pos()})
					}
					if k := poolCallKey(pass, call, "Put"); k != "" {
						rel = append(rel, keyAt{k, call.Pos()})
					}
				})
			}
			return acq, rel
		},
		deferredRelease: func(d *ast.DeferStmt) []keyAt {
			var keys []keyAt
			if k := poolCallKey(pass, d.Call, "Put"); k != "" {
				keys = append(keys, keyAt{k, d.Pos()})
			}
			// defer func() { pool.Put(sp) }() — the chunked-encoder form.
			if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if k := poolCallKey(pass, call, "Put"); k != "" {
							keys = append(keys, keyAt{k, d.Pos()})
						}
					}
					return true
				})
			}
			return keys
		},
		atReturn: func(ret *ast.ReturnStmt, leaked []string, st *pathState) {
			for _, k := range leaked {
				pass.Reportf(ret.Pos(), "return without %s.Put: this path leaks the pooled object and degrades the pool to an allocator", k)
			}
		},
	}
	walkPaths(body, hooks)
}

// checkPoolReset flags Put calls whose *[]T argument is never reset with a
// `*x = ...` assignment anywhere in the function (rule 2). The check is
// deliberately position-insensitive: the chunked encoder resets inside a
// loop and Puts from a defer, which is fine.
func checkPoolReset(pass *Pass, body *ast.BlockStmt) {
	// Objects appearing as the target of a `*x = ...` assignment.
	resetObjs := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			star, ok := ast.Unparen(lhs).(*ast.StarExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(star.X).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					resetObjs[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || poolCallKey(pass, call, "Put") == "" || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || resetObjs[obj] {
			return true
		}
		// Only pointer-to-slice arguments carry the truncation contract.
		ptr, ok := obj.Type().(*types.Pointer)
		if !ok {
			return true
		}
		if _, ok := ptr.Elem().Underlying().(*types.Slice); !ok {
			return true
		}
		pass.Reportf(call.Pos(), "pooled buffer %s put back without reset: truncate first (*%s = (*%s)[:0]) so stale contents and grown capacity don't leak to the next Get", id.Name, id.Name, id.Name)
		return true
	})
}
