// Package analyzertest is a miniature analysistest: it runs one analyzer
// over a fixture package under testdata/src/<name> and checks the
// diagnostics against `// want "regexp"` comments in the fixtures.
//
// Conventions (a strict subset of golang.org/x/tools's analysistest, so
// fixtures stay portable if the dependency ever becomes available):
//
//   - A `// want "re"` comment expects exactly one diagnostic on its line
//     whose message matches the regexp. Several expectations on one line
//     are written `// want "re1" "re2"`.
//   - Lines without a want comment must produce no diagnostics.
//   - //adjlint:ignore directives in fixtures are honored, so suppression
//     behavior is testable: a suppressed line carries no want comment.
//
// Fixture packages import only the standard library; project shapes
// (plan.Op, cluster.Metrics, ...) are matched by type name, so fixtures
// model them with local types and load fast.
package analyzertest

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"adj/internal/analyzers"
)

// One file set and source importer for the whole test binary: the first
// fixture pays for type-checking the stdlib packages it imports, the rest
// reuse them.
var (
	loadMu sync.Mutex
	fset   = token.NewFileSet()
	imp    types.Importer
)

// Run loads testdata/src/<name>, applies the analyzer, and reports any
// mismatch against the fixtures' want comments as test errors.
func Run(t *testing.T, name string, a *analyzers.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixtures in %s", dir)
	}

	loadMu.Lock()
	if imp == nil {
		imp = importer.ForCompiler(fset, "source", nil)
	}
	pkg, err := analyzers.CheckFiles(fset, imp, name, files)
	loadMu.Unlock()
	if err != nil {
		t.Fatalf("typecheck %s: %v", name, err)
	}

	diags, _, err := analyzers.Run([]*analyzers.Package{pkg}, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		if !consumeWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of a want comment. The comment text
// after "want" is a sequence of Go-quoted strings.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

func collectWants(t *testing.T, pkg *analyzers.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(t, pos.Filename, pos.Line, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// splitQuoted parses a run of adjacent Go string literals:  "a" "b" "c".
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s:%d: malformed want clause near %q (expected quoted regexp)", file, line, s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s:%d: unterminated want regexp in %q", file, line, s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %q: %v", file, line, s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

func consumeWant(wants []*want, d analyzers.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
