package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"time"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

func now() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
}

// LoadPackages enumerates the packages matching patterns with the go tool
// and type-checks each from source. Only non-test Go files are analyzed
// (the invariants the suite enforces are production contracts; tests
// exercise Background contexts and sentinel errors on purpose). All
// packages share one file set and one source importer, so each dependency
// is type-checked at most once per process.
func LoadPackages(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, errBuf.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := CheckFiles(fset, imp, lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", lp.ImportPath, err)
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from an explicit file list.
// The analyzertest harness uses it directly on testdata directories; the
// production loader goes through LoadPackages.
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
