package analyzers_test

import (
	"testing"

	"adj/internal/analyzers"
	"adj/internal/analyzers/analyzertest"
)

func TestPhaseVocab(t *testing.T) {
	analyzertest.Run(t, "phasevocab", analyzers.PhaseVocab)
}
