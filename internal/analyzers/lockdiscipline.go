package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockDiscipline enforces PR 9's serving-tier locking rules: mutexes
// (Session.mu, the admission controller's mutex, every other sync.Mutex /
// sync.RWMutex) are held for short critical sections only. Three rules:
//
//  1. No blocking operation while a mutex is held: channel sends and
//     receives, select without default, range over a channel, and the
//     runtime's blocking calls (Exchange, StreamExchange, Parallel,
//     RouteExchange, Admit, sync.WaitGroup.Wait, time.Sleep). A blocked
//     holder stalls every Exec on the session — the exact shape of the
//     retry-after-under-mu bug the -race job caught in PR 9.
//     (close() and select with a default arm are non-blocking and allowed.)
//  2. No return while a mutex is still locked without a deferred unlock:
//     an early-return path that skips Unlock wedges the session forever.
//  3. No mutex copies: a sync.Mutex passed by value forks the lock state.
//
// The analysis is per-function and branch-sensitive (see pathwalk.go);
// arms that disagree about the lock state mute further findings for that
// mutex rather than guessing.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no blocking operations or early returns while a tracked mutex is held; no mutex copies",
	Run:  runLockDiscipline,
}

// blockingMethodNames are the project's blocking phase/admission calls: a
// call to any of these while holding a mutex serializes the cluster (or
// deadlocks outright, for Admit → Exec → Admit chains).
var blockingMethodNames = map[string]bool{
	"Exchange":       true,
	"StreamExchange": true,
	"Parallel":       true,
	"RouteExchange":  true,
	"Admit":          true,
}

func runLockDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		checkMutexCopies(pass, file)
		funcScopeWalk(file, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkLockPaths(pass, body)
		})
	}
	return nil
}

// mutexCallKey returns the receiver key of a Lock/Unlock-family call on a
// mutex-typed receiver, or "" if call is not one.
func mutexCallKey(pass *Pass, call *ast.CallExpr, names ...string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return ""
	}
	return recvString(sel.X)
}

// scanCalls walks an expression, skipping function literals, invoking fn
// on every call expression.
func scanCalls(e ast.Expr, fn func(*ast.CallExpr)) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

func checkLockPaths(pass *Pass, body *ast.BlockStmt) {
	hooks := &pathHooks{
		classify: func(s ast.Stmt) (acq, rel []keyAt) {
			for _, e := range exprsOf(s) {
				scanCalls(e, func(call *ast.CallExpr) {
					if k := mutexCallKey(pass, call, "Lock", "RLock"); k != "" {
						acq = append(acq, keyAt{k, call.Pos()})
					}
					if k := mutexCallKey(pass, call, "Unlock", "RUnlock"); k != "" {
						rel = append(rel, keyAt{k, call.Pos()})
					}
				})
			}
			return acq, rel
		},
		deferredRelease: func(d *ast.DeferStmt) []keyAt {
			var keys []keyAt
			if k := mutexCallKey(pass, d.Call, "Unlock", "RUnlock"); k != "" {
				keys = append(keys, keyAt{k, d.Pos()})
			}
			// defer func() { ...; mu.Unlock() }() — the teardown-closure
			// form Session.Close and Exec use.
			if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if k := mutexCallKey(pass, call, "Unlock", "RUnlock"); k != "" {
							keys = append(keys, keyAt{k, d.Pos()})
						}
					}
					return true
				})
			}
			return keys
		},
		atStmt: func(s ast.Stmt, st *pathState) {
			held := st.anyHeld()
			if len(held) == 0 {
				return
			}
			lock := held[0]
			if send, ok := s.(*ast.SendStmt); ok {
				pass.Reportf(send.Arrow, "channel send while %s is held blocks every waiter on the mutex; move it outside the critical section", lock)
			}
			if rng, ok := s.(*ast.RangeStmt); ok {
				if tv, ok := pass.TypesInfo.Types[rng.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(rng.Pos(), "range over a channel while %s is held blocks for the channel's lifetime", lock)
					}
				}
			}
			for _, e := range exprsOf(s) {
				ast.Inspect(e, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					switch x := n.(type) {
					case *ast.UnaryExpr:
						if x.Op.String() == "<-" {
							pass.Reportf(x.Pos(), "channel receive while %s is held can block indefinitely; receive before locking", lock)
						}
					case *ast.CallExpr:
						reportBlockingCall(pass, x, lock)
					}
					return true
				})
			}
		},
		atSelect: func(sel *ast.SelectStmt, st *pathState) {
			held := st.anyHeld()
			if len(held) == 0 {
				return
			}
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					return // default arm: non-blocking poll, allowed
				}
			}
			pass.Reportf(sel.Pos(), "select without default while %s is held blocks the critical section on channel readiness", held[0])
		},
		atReturn: func(ret *ast.ReturnStmt, leaked []string, st *pathState) {
			for _, k := range leaked {
				pass.Reportf(ret.Pos(), "return with %s still locked: this path skips Unlock and wedges every later locker", k)
			}
		},
	}
	walkPaths(body, hooks)
}

// reportBlockingCall flags calls that can block while a mutex is held.
func reportBlockingCall(pass *Pass, call *ast.CallExpr, lock string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	obj := calleeObj(pass.TypesInfo, call)
	switch {
	case blockingMethodNames[name]:
		pass.Reportf(call.Pos(), "call to %s while %s is held: phase barriers and admission waits must not run under a mutex", name, lock)
	case name == "Sleep" && isPkgFunc(obj, "time", "Sleep"):
		pass.Reportf(call.Pos(), "time.Sleep while %s is held stalls every waiter; sleep outside the critical section", lock)
	case name == "Wait":
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isNamed(tv.Type, "sync", "WaitGroup") {
			pass.Reportf(call.Pos(), "WaitGroup.Wait while %s is held: workers that need the mutex to finish will deadlock", lock)
		}
	}
}

// checkMutexCopies flags sync.Mutex / sync.RWMutex values passed or
// assigned by value (rule 3). Composite-literal zero values and pointer
// uses are fine; copying a live mutex forks its state.
func checkMutexCopies(pass *Pass, file *ast.File) {
	flag := func(e ast.Expr, what string) {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok {
			return
		}
		// Value of bare mutex type (not pointer) that is not a fresh
		// composite literal.
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			return
		}
		if !isMutexType(tv.Type) {
			return
		}
		if _, isLit := ast.Unparen(e).(*ast.CompositeLit); isLit {
			return
		}
		if _, isCall := ast.Unparen(e).(*ast.CallExpr); isCall {
			return
		}
		pass.Reportf(e.Pos(), "%s copies a sync mutex by value; the copy has its own lock state — pass a pointer", what)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				flag(arg, fmt.Sprintf("argument to %s", types.ExprString(x.Fun)))
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				// `_ = mu` discards are idiomatic (silencing unused vars),
				// not live copies.
				if i < len(x.Lhs) {
					if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				flag(rhs, "assignment")
			}
		}
		return true
	})
}
