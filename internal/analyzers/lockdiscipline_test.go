package analyzers_test

import (
	"testing"

	"adj/internal/analyzers"
	"adj/internal/analyzers/analyzertest"
)

func TestLockDiscipline(t *testing.T) {
	analyzertest.Run(t, "lockdiscipline", analyzers.LockDiscipline)
}
