// Package sampling implements the paper's distributed sampling cardinality
// estimator (§IV). The estimate of |T| decomposes over the first attribute
// A of the join order: |T| = |val(A)| · E[|T_{A=a}|] for a uniform over
// val(A), where val(A) is the intersection of the A-projections of every
// relation containing A. Each sampled a is evaluated with a constrained
// Leapfrog (first attribute fixed), and the Chernoff–Hoeffding bound gives
// the (p, δ) guarantee of Lemma 2.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"adj/internal/leapfrog"
	"adj/internal/relation"
)

// Config tunes an estimation run.
type Config struct {
	// Samples is k, the number of sampled val(A) values (with replacement).
	Samples int
	// Seed makes runs deterministic.
	Seed int64
	// PerSampleBudget caps extension work per sample (0 = unlimited); a
	// truncated sample contributes its partial counts, biasing low — the
	// harness only uses budgets as an emergency brake.
	PerSampleBudget int64
	// MaxDepth, when > 0, stops descending below that many attributes: the
	// optimizer uses it to estimate partial-join sizes |T_S| without paying
	// for the full subtree under each sample.
	MaxDepth int
	// Cancel, when non-nil, is polled between samples; returning true stops
	// the run early with the partial tallies (the caller is abandoning the
	// plan anyway, so a biased estimate is fine). Threads a context's
	// cancellation through planning.
	Cancel func() bool
}

// Estimate is the result of a sampling run.
type Estimate struct {
	// Cardinality is the estimated |T|.
	Cardinality float64
	// LevelCounts[i] estimates |T_{i+1}|: partial bindings of the first i+1
	// attributes of the order (the quantities costE needs, §III-B).
	LevelCounts []float64
	// ValA is |val(A)| for the first attribute.
	ValA int
	// WorkOps counts extension operations performed while sampling.
	WorkOps int64
	// LevelOps[i] is the number of bindings visited at level i while
	// sampling (raw, unscaled).
	LevelOps []int64
	// Seconds is the measured sampling time (feeds β, §III-B).
	Seconds float64
	// Samples is the number of samples actually taken.
	Samples int
}

// ExtensionsPerSecond returns the measured β: extension ops per second of
// sampling time. Returns 0 when nothing was measured.
func (e Estimate) ExtensionsPerSecond() float64 {
	if e.Seconds <= 0 || e.WorkOps == 0 {
		return 0
	}
	return float64(e.WorkOps) / e.Seconds
}

// SampleSize returns the k of Lemma 2: with k = ⌈0.5·p⁻²·ln(2/δ)⌉ samples,
// the mean deviates from µ by more than p·b with probability < δ.
func SampleSize(p, delta float64) int {
	if p <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	return int(math.Ceil(0.5 * math.Pow(p, -2) * math.Log(2/delta)))
}

// ValA computes val(A) = ∩_{R: A ∈ attrs(R)} Π_A R over the bound
// relations.
func ValA(rels []*relation.Relation, attr string) []relation.Value {
	var lists [][]relation.Value
	for _, r := range rels {
		if !r.HasAttr(attr) {
			continue
		}
		proj := r.Project(attr)
		vals := make([]relation.Value, proj.Len())
		for i := range vals {
			vals[i] = proj.Tuple(i)[0]
		}
		lists = append(lists, vals)
	}
	if len(lists) == 0 {
		return nil
	}
	return relation.IntersectAllSorted(lists)
}

// EstimateCardinality runs the sequential sampler over bound relations for
// a given attribute order.
func EstimateCardinality(rels []*relation.Relation, order []string, cfg Config) (Estimate, error) {
	if len(order) == 0 {
		return Estimate{}, fmt.Errorf("sampling: empty order")
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 1000
	}
	t0 := time.Now()
	vals := ValA(rels, order[0])
	est := Estimate{ValA: len(vals), LevelCounts: make([]float64, len(order)), LevelOps: make([]int64, len(order))}
	if len(vals) == 0 {
		est.Seconds = time.Since(t0).Seconds()
		return est, nil
	}
	tries := leapfrog.BuildTries(rels, order)
	ext, err := leapfrog.NewExtender(tries, order)
	if err != nil {
		return Estimate{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]relation.Value, cfg.Samples)
	for i := range samples {
		samples[i] = vals[rng.Intn(len(vals))]
	}
	acc := runSamples(ext, samples, len(order), cfg.PerSampleBudget, cfg.MaxDepth, cfg.Cancel)
	est.absorb(acc, len(vals), cfg.Samples)
	est.Seconds = time.Since(t0).Seconds()
	return est, nil
}

// Accum is the raw per-level tally of a batch of samples; the distributed
// sampler sums Accums across workers before scaling.
type Accum struct {
	LevelSums []int64
	WorkOps   int64
	Samples   int
}

// Add merges another accumulator.
func (a *Accum) Add(b Accum) {
	if a.LevelSums == nil {
		a.LevelSums = make([]int64, len(b.LevelSums))
	}
	for i := range b.LevelSums {
		a.LevelSums[i] += b.LevelSums[i]
	}
	a.WorkOps += b.WorkOps
	a.Samples += b.Samples
}

// RunSamples evaluates constrained counts for each sampled first-attribute
// value and tallies per-level binding counts.
func RunSamples(ext *leapfrog.Extender, samples []relation.Value, n int, budget int64) Accum {
	return RunSamplesDepth(ext, samples, n, budget, 0)
}

// RunSamplesDepth is RunSamples with a depth bound (0 = full depth).
func RunSamplesDepth(ext *leapfrog.Extender, samples []relation.Value, n int, budget int64, maxDepth int) Accum {
	return runSamples(ext, samples, n, budget, maxDepth, nil)
}

func runSamples(ext *leapfrog.Extender, samples []relation.Value, n int, budget int64, maxDepth int, cancel func() bool) Accum {
	acc := Accum{LevelSums: make([]int64, n), Samples: len(samples)}
	depth := n
	if maxDepth > 0 && maxDepth < n {
		depth = maxDepth
	}
	for _, a := range samples {
		if cancel != nil && cancel() {
			break
		}
		levels, ops := countConstrained(ext, a, n, budget, depth)
		for i, c := range levels {
			acc.LevelSums[i] += c
		}
		acc.WorkOps += ops
	}
	return acc
}

// absorb scales a raw accumulator into the estimate: |T_i| ≈ |val(A)| ×
// mean per-sample count at level i.
func (e *Estimate) absorb(acc Accum, valA, k int) {
	n := float64(valA)
	kk := float64(k)
	for i := range acc.LevelSums {
		e.LevelCounts[i] = n * float64(acc.LevelSums[i]) / kk
		e.LevelOps[i] = acc.LevelSums[i]
	}
	e.LevelCounts[0] = n // every sampled value binds level 0 exactly once
	e.Cardinality = e.LevelCounts[len(e.LevelCounts)-1]
	e.WorkOps = acc.WorkOps
	e.Samples = k
}

// countConstrained counts partial bindings per level with the first
// attribute fixed to a, descending at most maxDepth levels. Leaf levels
// count through the extender's streaming drain, so no per-leaf value list
// is materialized (or copied) while sampling — the count-only form of the
// batched result pipeline.
func countConstrained(ext *leapfrog.Extender, a relation.Value, n int, budget int64, maxDepth int) ([]int64, int64) {
	levels := make([]int64, n)
	binding := make([]relation.Value, n)
	binding[0] = a
	levels[0] = 1
	var work int64
	var rec func(d int) bool
	rec = func(d int) bool {
		if d >= maxDepth {
			return true
		}
		if d == n-1 {
			limit := int64(-1)
			if budget > 0 {
				// Upper bound before the drain's own seek work is known;
				// clamped below so the tally matches the legacy per-value
				// accounting (which debited the seek work first).
				limit = budget - work + 1
			}
			cnt, w := ext.DrainLeaf(binding, d, limit, nil)
			work += w
			if budget > 0 && cnt > 0 {
				if rem := budget - work + 1; rem < cnt {
					// Legacy semantics: the seek work counts against the
					// budget before values do, and the value that trips
					// the budget is still tallied — so at least one value
					// counts whenever the leaf is nonempty.
					if rem < 1 {
						rem = 1
					}
					cnt = rem
				}
			}
			levels[d] += cnt
			work += cnt
			return budget <= 0 || work <= budget
		}
		vals, w := ext.Extend(binding, d)
		work += w
		for _, v := range vals {
			binding[d] = v
			levels[d]++
			work++
			if budget > 0 && work > budget {
				return false
			}
			if !rec(d + 1) {
				return false
			}
		}
		return true
	}
	if n > 1 {
		rec(1)
	}
	return levels, work
}
