package sampling

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"adj/internal/cluster"
	"adj/internal/leapfrog"
	"adj/internal/relation"
)

// Distributed sampling (§IV "Distributed Sampling"): instead of HCube-
// shuffling the full database and sampling on every server, the database
// is first *reduced*:
//
//  1. every worker projects its fragments of relations containing A onto A
//     and the projections are exchanged to compute val(A) exactly,
//  2. the coordinator samples S' ⊆ val(A),
//  3. workers semijoin-filter their fragments of A-relations against S',
//  4. only the reduced fragments are broadcast; every worker then evaluates
//     a disjoint share of the samples with constrained Leapfrog.
//
// Phase names are prefixed with phase+"/" so engines can attribute the cost
// to their Optimization bucket.

// DistributedEstimate runs the reduced-database sampler on a cluster whose
// workers hold fragments of the named relations (attribute-renamed query
// bindings). relNames/relAttrs describe the bound relations; order is the
// attribute order to sample under.
func DistributedEstimate(c *cluster.Cluster, relAttrs map[string][]string, order []string, cfg Config) (Estimate, error) {
	if len(order) == 0 {
		return Estimate{}, fmt.Errorf("sampling: empty order")
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 1000
	}
	t0 := time.Now()
	attr := order[0]

	// Step 1: compute val(A) by exchanging per-worker projections,
	// value-partitioned so each worker intersects a disjoint slice.
	withA := relationsWith(relAttrs, attr)
	if len(withA) == 0 {
		return Estimate{}, fmt.Errorf("sampling: no relation contains first attribute %q", attr)
	}
	partials := make([][]relation.Value, c.N)
	err := c.Exchange("sample/vala",
		func(w *cluster.Worker) ([]cluster.Envelope, error) {
			var out []cluster.Envelope
			for _, name := range withA {
				frag, ok := w.Rels[name]
				if !ok {
					continue
				}
				proj := frag.Project(attr)
				parts := proj.PartitionBy([]int{0}, c.N)
				for to, p := range parts {
					if p.Len() == 0 {
						continue
					}
					out = append(out, cluster.Envelope{
						To:      to,
						Key:     "proj/" + name,
						Payload: w.EncodeRelation(p),
						Tuples:  int64(p.Len()),
					})
				}
			}
			return out, nil
		},
		func(w *cluster.Worker, inbox []cluster.Envelope) error {
			// Per relation, union the received values; then intersect across
			// relations.
			perRel := make(map[string]map[relation.Value]bool, len(withA))
			for _, e := range inbox {
				r, err := relation.Decode(e.Payload)
				if err != nil {
					return err
				}
				name := e.Key[len("proj/"):]
				set, ok := perRel[name]
				if !ok {
					set = make(map[relation.Value]bool)
					perRel[name] = set
				}
				for i := 0; i < r.Len(); i++ {
					set[r.Tuple(i)[0]] = true
				}
			}
			var local []relation.Value
			if len(perRel) == len(withA) {
				first := perRel[withA[0]]
				for v := range first {
					inAll := true
					for _, name := range withA[1:] {
						if !perRel[name][v] {
							inAll = false
							break
						}
					}
					if inAll {
						local = append(local, v)
					}
				}
			}
			sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
			partials[w.ID] = local
			return nil
		})
	if err != nil {
		return Estimate{}, err
	}
	var vals []relation.Value
	for _, p := range partials {
		vals = append(vals, p...)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	est := Estimate{ValA: len(vals), LevelCounts: make([]float64, len(order)), LevelOps: make([]int64, len(order))}
	if len(vals) == 0 {
		est.Seconds = time.Since(t0).Seconds()
		return est, nil
	}

	// Step 2: sample S'.
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]relation.Value, cfg.Samples)
	distinct := make(map[relation.Value]bool)
	for i := range samples {
		samples[i] = vals[rng.Intn(len(vals))]
		distinct[samples[i]] = true
	}
	sampleSet := make([]relation.Value, 0, len(distinct))
	for v := range distinct {
		sampleSet = append(sampleSet, v)
	}
	sort.Slice(sampleSet, func(i, j int) bool { return sampleSet[i] < sampleSet[j] })

	// Steps 3+4: semijoin-reduce A-relations against S' and broadcast the
	// reduced database; every worker receives all fragments.
	reduced := make([]map[string]*relation.Relation, c.N)
	err = c.Exchange("sample/reduce",
		func(w *cluster.Worker) ([]cluster.Envelope, error) {
			var out []cluster.Envelope
			for name, attrs := range relAttrs {
				frag, ok := w.Rels[name]
				if !ok {
					continue
				}
				send := frag
				if containsStr(attrs, attr) {
					send = frag.SemijoinValues(attr, sampleSet)
				}
				if send.Len() == 0 {
					continue
				}
				payload := w.EncodeRelation(send)
				for to := 0; to < w.N; to++ {
					out = append(out, cluster.Envelope{
						To:      to,
						Key:     "red/" + name,
						Payload: payload,
						Tuples:  int64(send.Len()),
					})
				}
			}
			return out, nil
		},
		func(w *cluster.Worker, inbox []cluster.Envelope) error {
			db := make(map[string]*relation.Relation)
			for _, e := range inbox {
				r, err := relation.Decode(e.Payload)
				if err != nil {
					return err
				}
				name := e.Key[len("red/"):]
				if acc, ok := db[name]; ok {
					acc.AppendAll(r)
				} else {
					db[name] = r
				}
			}
			reduced[w.ID] = db
			return nil
		})
	if err != nil {
		return Estimate{}, err
	}

	// Step 5: each worker evaluates a contiguous share of the samples.
	accs := make([]Accum, c.N)
	err = c.Parallel("sample/count", func(w *cluster.Worker) error {
		db := reduced[w.ID]
		var rels []*relation.Relation
		for name, attrs := range relAttrs {
			r, ok := db[name]
			if !ok {
				r = relation.New(name, attrs...)
			}
			rels = append(rels, r)
		}
		tries := leapfrog.BuildTries(rels, order)
		ext, err := leapfrog.NewExtender(tries, order)
		if err != nil {
			return err
		}
		lo := w.ID * len(samples) / w.N
		hi := (w.ID + 1) * len(samples) / w.N
		accs[w.ID] = RunSamples(ext, samples[lo:hi], len(order), cfg.PerSampleBudget)
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	var total Accum
	for _, a := range accs {
		total.Add(a)
	}
	est.absorb(total, len(vals), cfg.Samples)
	est.Seconds = time.Since(t0).Seconds()
	return est, nil
}

func relationsWith(relAttrs map[string][]string, attr string) []string {
	var out []string
	for name, attrs := range relAttrs {
		if containsStr(attrs, attr) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
