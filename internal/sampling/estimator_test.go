package sampling

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"adj/internal/cluster"
	"adj/internal/hypergraph"
	"adj/internal/leapfrog"
	"adj/internal/relation"
	"adj/internal/testutil"
)

func TestSampleSize(t *testing.T) {
	// Lemma 2: k = ceil(0.5 p^-2 ln(2/δ)).
	k := SampleSize(0.1, 0.05)
	want := int(math.Ceil(0.5 * 100 * math.Log(40)))
	if k != want {
		t.Fatalf("k=%d want %d", k, want)
	}
	if SampleSize(0, 0.5) != 1 || SampleSize(0.1, 0) != 1 {
		t.Fatal("degenerate params must give 1")
	}
}

func TestValA(t *testing.T) {
	r1 := relation.FromTuples("R1", []string{"a", "b"}, [][]relation.Value{{1, 2}, {2, 3}, {5, 1}})
	r2 := relation.FromTuples("R2", []string{"a", "c"}, [][]relation.Value{{2, 9}, {5, 9}, {7, 9}})
	r3 := relation.FromTuples("R3", []string{"b", "c"}, [][]relation.Value{{1, 1}})
	got := ValA([]*relation.Relation{r1, r2, r3}, "a")
	if !reflect.DeepEqual(got, []relation.Value{2, 5}) {
		t.Fatalf("val(a)=%v", got)
	}
	if got := ValA([]*relation.Relation{r3}, "a"); got != nil {
		t.Fatalf("val over no relations=%v", got)
	}
}

func TestEstimateExactWhenSamplingAll(t *testing.T) {
	// With enough samples the estimate converges to the truth; with the
	// sampler drawing uniformly we verify on a tiny instance where every
	// val is hit many times.
	rng := rand.New(rand.NewSource(1))
	edges := testutil.RandEdges(rng, "E", 200, 15)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	truth, err := leapfrog.Count(rels, order)
	if err != nil {
		t.Fatal(err)
	}
	if truth == 0 {
		t.Skip("instance has no triangles")
	}
	est, err := EstimateCardinality(rels, order, Config{Samples: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d := ratio(est.Cardinality, float64(truth))
	if d > 1.15 {
		t.Fatalf("estimate %.1f vs truth %d: D=%.3f", est.Cardinality, truth, d)
	}
}

func TestEstimateLevelCountsMatchLeapfrog(t *testing.T) {
	// With every val(A) value sampled uniformly, level estimates approximate
	// Leapfrog's exact per-level counters.
	rng := rand.New(rand.NewSource(2))
	edges := testutil.RandEdges(rng, "E", 300, 18)
	q := hypergraph.Q4()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	st, err := leapfrog.JoinRelations(rels, order, leapfrog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCardinality(rels, order, Config{Samples: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if st.LevelTuples[i] == 0 {
			continue
		}
		d := ratio(est.LevelCounts[i], float64(st.LevelTuples[i]))
		if d > 1.3 {
			t.Fatalf("level %d: est %.1f vs exact %d (D=%.2f)", i, est.LevelCounts[i], st.LevelTuples[i], d)
		}
	}
}

func TestEstimateEmptyJoin(t *testing.T) {
	r1 := relation.FromTuples("R1", []string{"a", "b"}, [][]relation.Value{{1, 2}})
	r2 := relation.FromTuples("R2", []string{"a", "c"}, [][]relation.Value{{9, 3}})
	est, err := EstimateCardinality([]*relation.Relation{r1, r2}, []string{"a", "b", "c"}, Config{Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if est.Cardinality != 0 || est.ValA != 0 {
		t.Fatalf("empty val(A): %+v", est)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := testutil.RandEdges(rng, "E", 300, 20)
	rels := hypergraph.Q1().BindGraph(edges)
	order := []string{"a", "b", "c"}
	a, _ := EstimateCardinality(rels, order, Config{Samples: 500, Seed: 42})
	b, _ := EstimateCardinality(rels, order, Config{Samples: 500, Seed: 42})
	if a.Cardinality != b.Cardinality {
		t.Fatal("same seed must give same estimate")
	}
	c, _ := EstimateCardinality(rels, order, Config{Samples: 500, Seed: 43})
	_ = c // different seed may differ; just ensure it runs
}

func TestDistributedMatchesSequential(t *testing.T) {
	// Same seed and sample count: the distributed sampler computes the same
	// val(A), draws the same samples, and must produce the identical
	// estimate (the work is split, not re-randomized).
	rng := rand.New(rand.NewSource(8))
	edges := testutil.RandEdges(rng, "E", 500, 25)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	cfg := Config{Samples: 800, Seed: 11}
	seq, err := EstimateCardinality(rels, order, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 5} {
		c := cluster.New(cluster.Config{N: n})
		c.LoadDatabase(rels)
		relAttrs := make(map[string][]string)
		for _, r := range rels {
			relAttrs[r.Name] = r.Attrs
		}
		dist, err := DistributedEstimate(c, relAttrs, order, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if dist.ValA != seq.ValA {
			t.Fatalf("n=%d: valA %d vs %d", n, dist.ValA, seq.ValA)
		}
		if math.Abs(dist.Cardinality-seq.Cardinality) > 1e-6 {
			t.Fatalf("n=%d: distributed %.3f vs sequential %.3f", n, dist.Cardinality, seq.Cardinality)
		}
		c.Close()
	}
}

func TestDistributedReducesShuffledTuples(t *testing.T) {
	// The §IV point: semijoin reduction ships less than the raw database
	// when samples cover few val(A) values.
	rng := rand.New(rand.NewSource(9))
	edges := testutil.RandEdges(rng, "E", 4000, 500)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	relAttrs := make(map[string][]string)
	for _, r := range rels {
		relAttrs[r.Name] = r.Attrs
	}
	c := cluster.New(cluster.Config{N: 4})
	defer c.Close()
	c.LoadDatabase(rels)
	_, err := DistributedEstimate(c, relAttrs, order, Config{Samples: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reduceTuples := c.Metrics.Phase("sample/reduce").TuplesSent
	fullBroadcast := int64(3*edges.Len()) * int64(c.N)
	if reduceTuples >= fullBroadcast {
		t.Fatalf("reduction shipped %d tuples, full broadcast is %d", reduceTuples, fullBroadcast)
	}
}

func TestAccumAdd(t *testing.T) {
	a := Accum{LevelSums: []int64{1, 2}, WorkOps: 5, Samples: 1}
	var b Accum
	b.Add(a)
	b.Add(a)
	if b.LevelSums[1] != 4 || b.WorkOps != 10 || b.Samples != 2 {
		t.Fatalf("accum=%+v", b)
	}
}

func TestPerSampleBudgetTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	edges := testutil.RandEdges(rng, "E", 2000, 40)
	rels := hypergraph.Q1().BindGraph(edges)
	order := []string{"a", "b", "c"}
	full, err := EstimateCardinality(rels, order, Config{Samples: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := EstimateCardinality(rels, order, Config{Samples: 200, Seed: 1, PerSampleBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Cardinality > full.Cardinality {
		t.Fatalf("budgeted estimate %.1f should not exceed full %.1f", cut.Cardinality, full.Cardinality)
	}
}

func ratio(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 1
	}
	if a == 0 || b == 0 {
		return math.Inf(1)
	}
	return math.Max(a, b) / math.Min(a, b)
}
