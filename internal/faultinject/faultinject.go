// Package faultinject provides deterministic fault injection for the
// cluster runtime: a Transport wrapper that drops, delays, corrupts or
// fail-dials exchange legs by seeded coin flips, and a panic hook for
// Cluster.SetPanicHook that crashes chosen (phase, worker) bodies. The
// chaos tests drive every engine through it and assert the fault-tolerance
// contract: each run either matches the fault-free result exactly or
// returns a clean typed error — never a hang, a partial result, or a leak.
//
// Determinism: all randomness comes from one seeded source consumed in a
// fixed order (rules in declaration order, envelopes in exchange order), so
// a (seed, workload) pair replays the exact same fault schedule.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"adj/internal/cluster"
)

// ErrInjected marks failures this package fabricated. Injected transport
// faults are wrapped in *cluster.TransportError, so they classify both as
// cluster.ErrTransport (the class the runtime handles) and as ErrInjected
// (so tests can tell a fabricated fault from a real one).
var ErrInjected = errors.New("faultinject: injected fault")

// Rule selects exchange legs and assigns fault probabilities. A zero
// probability disables that fault kind; matching fields left at their
// wildcard values ("" / -1) match everything.
type Rule struct {
	// Phase matches exchanges whose phase name contains this substring
	// ("" matches every phase, including Route calls with no phase).
	Phase string
	// From matches the sending worker (-1 = any).
	From int
	// To matches the receiving worker (-1 = any).
	To int

	// Drop is the probability that a matched envelope's delivery fails.
	// The transport contract is deliver-all-or-error, so a drop surfaces
	// as a typed transport error for the whole exchange (silent loss would
	// make engines compute wrong results without noticing).
	Drop float64
	// FailDial is the probability, rolled once per matched exchange, that
	// the exchange fails immediately with a dial-class transport error.
	FailDial float64
	// Corrupt is the probability that a matched envelope's payload is
	// copied with its leading byte flipped. Every wire codec (relation,
	// trie) opens with a magic byte it validates, so the receive-side
	// decode reliably fails, exercising the typed corrupt-payload abort
	// path — corruption never silently changes results.
	Corrupt float64
	// Delay is the probability that a matched exchange sleeps a random
	// duration up to MaxDelay before routing.
	Delay float64
	// MaxDelay bounds an injected delay (default 2ms when Delay > 0).
	MaxDelay time.Duration
	// Times caps how many faults this rule injects in total (0 =
	// unlimited). Times=1 with probability 1 is the deterministic
	// "fail exactly once, then heal" schedule retry tests build on.
	Times int64
}

// Any is the wildcard worker ID for Rule.From / Rule.To.
const Any = -1

func (r Rule) matchesPhase(phase string) bool {
	return r.Phase == "" || strings.Contains(phase, r.Phase)
}

func (r Rule) matchesLeg(from, to int) bool {
	return (r.From == Any || r.From == from) && (r.To == Any || r.To == to)
}

// Stats counts injected faults by kind.
type Stats struct {
	Drops     int64
	FailDials int64
	Corrupts  int64
	Delays    int64
}

// Transport wraps an inner cluster transport with seeded fault injection.
// It implements cluster.ExchangeTransport (so phase names reach the rules)
// and forwards cluster.RetryCounter when the inner transport provides it.
type Transport struct {
	inner cluster.Transport

	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	fired []int64 // per-rule injection counts (enforces Rule.Times)

	drops     atomic.Int64
	failDials atomic.Int64
	corrupts  atomic.Int64
	delays    atomic.Int64
}

// Wrap decorates inner with fault rules driven by the seeded source.
func Wrap(inner cluster.Transport, seed int64, rules ...Rule) *Transport {
	return &Transport{
		inner: inner,
		rules: rules,
		fired: make([]int64, len(rules)),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetRules replaces the fault schedule (per-rule Times counters restart).
// Tests use it to heal or re-arm a transport between runs; it must not be
// called concurrently with an in-flight exchange.
func (t *Transport) SetRules(rules ...Rule) {
	t.mu.Lock()
	t.rules = rules
	t.fired = make([]int64, len(rules))
	t.mu.Unlock()
}

// snapshotRules returns the current schedule (SetRules swaps it whole, so
// the slice itself is immutable once published).
func (t *Transport) snapshotRules() []Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rules
}

// Injected returns the total number of injected faults so far.
func (t *Transport) Injected() int64 {
	s := t.Stats()
	return s.Drops + s.FailDials + s.Corrupts + s.Delays
}

// Stats returns the per-kind injection counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Drops:     t.drops.Load(),
		FailDials: t.failDials.Load(),
		Corrupts:  t.corrupts.Load(),
		Delays:    t.delays.Load(),
	}
}

// RetryStats forwards the inner transport's retry counter (0 otherwise).
func (t *Transport) RetryStats() int64 {
	if rc, ok := t.inner.(cluster.RetryCounter); ok {
		return rc.RetryStats()
	}
	return 0
}

// DialStats forwards the inner transport's dial counter (0 otherwise).
func (t *Transport) DialStats() int64 {
	if dc, ok := t.inner.(cluster.DialCounter); ok {
		return dc.DialStats()
	}
	return 0
}

// Close closes the inner transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Route implements cluster.Transport (no phase context).
func (t *Transport) Route(bySender [][]cluster.Envelope) ([][]cluster.Envelope, error) {
	//adjlint:ignore ctxflow legacy Transport.Route has no context parameter to thread
	return t.RouteExchange(context.Background(), "", bySender)
}

// roll consumes one coin flip from the seeded source for rule ri; a rule
// whose Times budget is spent stops flipping (and stops consuming
// randomness, keeping the remaining schedule deterministic).
func (t *Transport) roll(ri int, r Rule, p float64) bool {
	if p <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r.Times > 0 && ri < len(t.fired) && t.fired[ri] >= r.Times {
		return false
	}
	if t.rng.Float64() >= p {
		return false
	}
	if ri < len(t.fired) {
		t.fired[ri]++
	}
	return true
}

func (t *Transport) randDelay(max time.Duration) time.Duration {
	if max <= 0 {
		max = 2 * time.Millisecond
	}
	t.mu.Lock()
	d := time.Duration(t.rng.Int63n(int64(max)) + 1)
	t.mu.Unlock()
	return d
}

// RouteExchange applies the fault schedule to one exchange, then routes the
// (possibly corrupted) envelopes through the inner transport.
func (t *Transport) RouteExchange(ctx context.Context, phase string, bySender [][]cluster.Envelope) ([][]cluster.Envelope, error) {
	rules := t.snapshotRules()
	for ri, r := range rules {
		if !r.matchesPhase(phase) {
			continue
		}
		if t.roll(ri, r, r.FailDial) {
			t.failDials.Add(1)
			return nil, &cluster.TransportError{Op: "dial", Dest: Any, Attempts: 1,
				Err: fmt.Errorf("%w: fail-dial in phase %q", ErrInjected, phase)}
		}
		if t.roll(ri, r, r.Delay) {
			t.delays.Add(1)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(t.randDelay(r.MaxDelay)):
			}
		}
	}

	// Per-envelope faults, in deterministic (sender, envelope) order. Drops
	// abort the exchange typed; corruptions flip the magic byte of a copied
	// payload (never the caller's buffer) and let the exchange proceed so
	// the receive-side decode path sees the damage.
	var out [][]cluster.Envelope = bySender
	copied := false
	for s, envs := range bySender {
		for i, e := range envs {
			for ri, r := range rules {
				if !r.matchesPhase(phase) || !r.matchesLeg(e.From, e.To) {
					continue
				}
				if t.roll(ri, r, r.Drop) {
					t.drops.Add(1)
					return nil, &cluster.TransportError{Op: "deliver", Dest: e.To, Attempts: 1,
						Err: fmt.Errorf("%w: dropped envelope %d→%d in phase %q", ErrInjected, e.From, e.To, phase)}
				}
				if len(e.Payload) > 0 && t.roll(ri, r, r.Corrupt) {
					t.corrupts.Add(1)
					if !copied {
						out = make([][]cluster.Envelope, len(bySender))
						for j := range bySender {
							out[j] = append([]cluster.Envelope(nil), bySender[j]...)
						}
						copied = true
					}
					p := append([]byte(nil), e.Payload...)
					p[0] ^= 0xFF
					out[s][i].Payload = p
				}
			}
		}
	}

	if et, ok := t.inner.(cluster.ExchangeTransport); ok {
		return et.RouteExchange(ctx, phase, out)
	}
	return t.inner.Route(out)
}

// OpenExchange applies the fault schedule to a streaming exchange
// (cluster.StreamTransport): exchange-level FailDial rules fire at open;
// Drop, Corrupt and Delay rules fire per chunk at its Send boundary — a
// drop aborts the exchange with a typed transient error mid-stream,
// corruption flips the magic byte of a copied chunk so the receive-side
// decode fails typed, a delay stalls that one chunk. Chunk-level flips
// still come from the one seeded source and Times budgets stay exact, but
// in the goroutine-parallel streamed mode the order in which concurrent
// senders consume flips follows the runtime schedule; schedules that must
// replay exactly (the retry tests) use Times=1/probability-1 rules, which
// are order-independent.
func (t *Transport) OpenExchange(ctx context.Context, phase string, window int) (cluster.ExchangeStream, error) {
	st, ok := t.inner.(cluster.StreamTransport)
	if !ok {
		return nil, cluster.ErrStreamUnsupported
	}
	rules := t.snapshotRules()
	for ri, r := range rules {
		if !r.matchesPhase(phase) {
			continue
		}
		if t.roll(ri, r, r.FailDial) {
			t.failDials.Add(1)
			return nil, &cluster.TransportError{Op: "dial", Dest: Any, Attempts: 1,
				Err: fmt.Errorf("%w: fail-dial in phase %q", ErrInjected, phase)}
		}
	}
	inner, err := st.OpenExchange(ctx, phase, window)
	if err != nil {
		return nil, err
	}
	return &faultStream{t: t, inner: inner, ctx: ctx, phase: phase, rules: rules}, nil
}

// faultStream wraps one streaming exchange: sender halves inject
// chunk-boundary faults, everything else passes through.
type faultStream struct {
	t     *Transport
	inner cluster.ExchangeStream
	ctx   context.Context
	phase string
	rules []Rule
}

func (fs *faultStream) Sender(worker int) cluster.StreamSender {
	return &faultSender{fs: fs, inner: fs.inner.Sender(worker)}
}

func (fs *faultStream) Receiver(worker int) cluster.StreamReceiver {
	return fs.inner.Receiver(worker)
}

func (fs *faultStream) Abort(cause error)          { fs.inner.Abort(cause) }
func (fs *faultStream) Stats() cluster.StreamStats { return fs.inner.Stats() }
func (fs *faultStream) Close() error               { return fs.inner.Close() }

type faultSender struct {
	fs    *faultStream
	inner cluster.StreamSender
}

func (s *faultSender) Send(e cluster.Envelope) error {
	fs := s.fs
	t := fs.t
	for ri, r := range fs.rules {
		if !r.matchesPhase(fs.phase) || !r.matchesLeg(e.From, e.To) {
			continue
		}
		if t.roll(ri, r, r.Drop) {
			t.drops.Add(1)
			err := &cluster.TransportError{Op: "deliver", Dest: e.To, Attempts: 1,
				Err: fmt.Errorf("%w: dropped chunk %d of %d→%d in phase %q", ErrInjected, e.Chunk, e.From, e.To, fs.phase)}
			fs.inner.Abort(err)
			return err
		}
		if len(e.Payload) > 0 && t.roll(ri, r, r.Corrupt) {
			t.corrupts.Add(1)
			p := append([]byte(nil), e.Payload...)
			p[0] ^= 0xFF
			e.Payload = p
		}
		if t.roll(ri, r, r.Delay) {
			t.delays.Add(1)
			select {
			case <-fs.ctx.Done():
				return fs.ctx.Err()
			case <-time.After(t.randDelay(r.MaxDelay)):
			}
		}
	}
	return s.inner.Send(e)
}

func (s *faultSender) Close() error { return s.inner.Close() }

// PanicHook returns a hook for Cluster.SetPanicHook that panics with
// probability prob in workers whose phase name contains phaseSubstr
// ("" = every phase). The seeded source makes the crash schedule
// reproducible. The panic value wraps ErrInjected so containment tests can
// recognize fabricated crashes.
func PanicHook(seed int64, prob float64, phaseSubstr string) func(phase string, workerID int) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(phase string, workerID int) {
		if prob <= 0 || (phaseSubstr != "" && !strings.Contains(phase, phaseSubstr)) {
			return
		}
		mu.Lock()
		hit := rng.Float64() < prob
		mu.Unlock()
		if hit {
			panic(fmt.Errorf("%w: panic in phase %q worker %d", ErrInjected, phase, workerID))
		}
	}
}
