package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"adj/internal/cluster"
)

func envs(n int) [][]cluster.Envelope {
	bySender := make([][]cluster.Envelope, n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			bySender[s] = append(bySender[s], cluster.Envelope{
				From: s, To: d, Key: "k", Payload: []byte{0xAD, 1, 2, 3},
			})
		}
	}
	return bySender
}

// TestDeterministicSchedule replays the same seed twice over the same
// exchange sequence and requires identical injection counts and identical
// per-exchange outcomes.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) (Stats, []bool) {
		tr := Wrap(cluster.NewLocalTransport(3), seed,
			Rule{From: Any, To: Any, Drop: 0.2, Corrupt: 0.2, FailDial: 0.05})
		var outcomes []bool
		for i := 0; i < 50; i++ {
			_, err := tr.RouteExchange(context.Background(), "phase", envs(3))
			outcomes = append(outcomes, err == nil)
		}
		return tr.Stats(), outcomes
	}
	s1, o1 := run(42)
	s2, o2 := run(42)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, different outcome at exchange %d", i)
		}
	}
	if s1.Drops == 0 && s1.FailDials == 0 {
		t.Fatalf("schedule injected nothing: %+v", s1)
	}
	s3, _ := run(43)
	if s1 == s3 {
		t.Fatalf("different seeds produced identical stats %+v (suspicious)", s1)
	}
}

// TestDropIsTypedError verifies a dropped leg aborts the exchange with an
// error classifying as both cluster.ErrTransport and ErrInjected.
func TestDropIsTypedError(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 7, Rule{From: Any, To: Any, Drop: 1})
	_, err := tr.Route(envs(2))
	if err == nil {
		t.Fatal("Drop=1 should fail the exchange")
	}
	if !errors.Is(err, cluster.ErrTransport) || !errors.Is(err, ErrInjected) {
		t.Fatalf("drop error not typed: %v", err)
	}
	if tr.Stats().Drops != 1 {
		t.Fatalf("stats = %+v, want one drop", tr.Stats())
	}
}

// TestFailDialIsTypedError verifies the exchange-level fail-dial fault.
func TestFailDialIsTypedError(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 7, Rule{From: Any, To: Any, FailDial: 1})
	_, err := tr.Route(envs(2))
	if !errors.Is(err, cluster.ErrTransport) || !errors.Is(err, ErrInjected) {
		t.Fatalf("fail-dial error not typed: %v", err)
	}
	var te *cluster.TransportError
	if !errors.As(err, &te) || te.Op != "dial" {
		t.Fatalf("want dial-class TransportError, got %v", err)
	}
}

// TestCorruptFlipsCopyNotOriginal verifies corruption damages only a copy:
// the exchange delivers a payload with its magic byte flipped while the
// sender's buffer is untouched (engines may retain encode buffers).
func TestCorruptFlipsCopyNotOriginal(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 7, Rule{From: 0, To: 1, Corrupt: 1})
	bySender := envs(2)
	orig := bySender[0][1].Payload // the 0→1 leg
	out, err := tr.Route(bySender)
	if err != nil {
		t.Fatalf("corruption should not fail the exchange itself: %v", err)
	}
	if orig[0] != 0xAD {
		t.Fatal("corruption mutated the sender's buffer")
	}
	var hit bool
	for _, e := range out[1] {
		if e.From == 0 && e.Payload[0] != 0xAD {
			hit = true
		}
	}
	if !hit {
		t.Fatal("no corrupted payload delivered on the matched leg")
	}
	// Unmatched legs (From != 0) must arrive intact.
	for _, e := range out[0] {
		if e.Payload[0] != 0xAD {
			t.Fatalf("corruption leaked onto unmatched leg %d→%d", e.From, e.To)
		}
	}
}

// TestRuleScoping verifies phase and leg matching: a rule scoped to one
// phase substring and one leg must not fire elsewhere.
func TestRuleScoping(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 7, Rule{Phase: "hcube", From: 1, To: 0, Drop: 1})
	if _, err := tr.RouteExchange(context.Background(), "join/emit", envs(2)); err != nil {
		t.Fatalf("rule fired outside its phase: %v", err)
	}
	if _, err := tr.RouteExchange(context.Background(), "hcube/push", envs(2)); err == nil {
		t.Fatal("rule did not fire in its phase")
	}
}

// TestDelayObservesContext verifies an injected delay respects context
// cancellation instead of sleeping through it.
func TestDelayObservesContext(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 7,
		Rule{From: Any, To: Any, Delay: 1, MaxDelay: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.RouteExchange(ctx, "slow", envs(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}

// TestPanicHookDeterministic verifies the hook's crash schedule replays
// under the same seed and respects its phase scope.
func TestPanicHookDeterministic(t *testing.T) {
	fire := func(seed int64) []bool {
		hook := PanicHook(seed, 0.3, "join")
		var hits []bool
		for i := 0; i < 40; i++ {
			hits = append(hits, func() (panicked bool) {
				defer func() {
					if r := recover(); r != nil {
						panicked = true
						if err, ok := r.(error); !ok || !errors.Is(err, ErrInjected) {
							t.Errorf("panic value not ErrInjected: %v", r)
						}
					}
				}()
				hook("join/probe", i%4)
				return false
			}())
		}
		return hits
	}
	h1, h2 := fire(5), fire(5)
	any := false
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("same seed, different crash schedule at %d", i)
		}
		any = any || h1[i]
	}
	if !any {
		t.Fatal("hook never fired at prob 0.3 over 40 calls")
	}

	quiet := PanicHook(5, 1, "hcube")
	quiet("join/probe", 0) // out of scope: must not panic
}

// TestTimesBoundsInjections verifies the fail-once-then-heal schedule:
// Drop=1 with Times=1 fails exactly the first exchange, and SetRules
// restarts the budget.
func TestTimesBoundsInjections(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 9, Rule{From: Any, To: Any, Drop: 1, Times: 1})
	if _, err := tr.Route(envs(2)); err == nil {
		t.Fatal("first exchange should fail")
	}
	for i := 0; i < 5; i++ {
		if _, err := tr.Route(envs(2)); err != nil {
			t.Fatalf("exchange %d after Times budget spent should succeed: %v", i, err)
		}
	}
	if tr.Stats().Drops != 1 {
		t.Fatalf("drops = %d, want exactly 1", tr.Stats().Drops)
	}
	tr.SetRules(Rule{From: Any, To: Any, Drop: 1, Times: 1})
	if _, err := tr.Route(envs(2)); err == nil {
		t.Fatal("SetRules should restart the Times budget")
	}
}

// --- Streaming-path fault tests: faults injected at chunk boundaries
// through OpenExchange, the surface the pipelined shuffle runs on. ---

// streamRoundTrip opens a streaming exchange over tr, streams `chunks`
// chunks from worker 0 to worker 1, closes the sender halves, and drains
// receiver 1. It returns the drained payload copies or the first error.
func streamRoundTrip(ctx context.Context, tr cluster.StreamTransport, chunks int) ([][]byte, error) {
	es, err := tr.OpenExchange(ctx, "stream", 8)
	if err != nil {
		return nil, err
	}
	defer es.Close()

	sendErr := make(chan error, 1)
	go func() {
		snd := es.Sender(0)
		for k := 0; k < chunks; k++ {
			e := cluster.Envelope{From: 0, To: 1, Key: "k", Chunk: int32(k),
				Payload: []byte{0xAD, byte(k), 2, 3}}
			if err := snd.Send(e); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- snd.Close()
	}()
	go es.Sender(1).Close()

	rcv := es.Receiver(1)
	var got [][]byte
	for {
		e, ok, err := rcv.Recv()
		if err != nil {
			<-sendErr
			return got, err
		}
		if !ok {
			break
		}
		got = append(got, append([]byte(nil), e.Payload...))
	}
	if err := <-sendErr; err != nil {
		return got, err
	}
	return got, nil
}

// TestStreamDropAbortsMidStream injects exactly one drop at a chunk
// boundary: the sender's Send fails typed, the receiver observes the same
// abort cause, and a healed transport then streams clean.
func TestStreamDropAbortsMidStream(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 11, Rule{From: Any, To: Any, Drop: 1, Times: 1})
	_, err := streamRoundTrip(context.Background(), tr, 6)
	if err == nil {
		t.Fatal("dropped chunk did not abort the stream")
	}
	if !errors.Is(err, cluster.ErrTransport) || !errors.Is(err, ErrInjected) {
		t.Fatalf("drop error %v is not typed ErrTransport+ErrInjected", err)
	}
	var terr *cluster.TransportError
	if !errors.As(err, &terr) || terr.Op != "deliver" {
		t.Fatalf("drop error %v does not carry Op=deliver", err)
	}
	if got, err := streamRoundTrip(context.Background(), tr, 6); err != nil || len(got) != 6 {
		t.Fatalf("healed stream: got %d chunks, err %v", len(got), err)
	}
	if tr.Stats().Drops != 1 {
		t.Fatalf("drops = %d, want exactly 1", tr.Stats().Drops)
	}
}

// TestStreamFailDialAtOpen verifies exchange-level FailDial fires at
// OpenExchange with a typed dial error, before any chunk moves.
func TestStreamFailDialAtOpen(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 3, Rule{From: Any, To: Any, FailDial: 1, Times: 1})
	_, err := tr.OpenExchange(context.Background(), "stream", 8)
	if err == nil {
		t.Fatal("fail-dial rule did not fail OpenExchange")
	}
	var terr *cluster.TransportError
	if !errors.As(err, &terr) || terr.Op != "dial" || !errors.Is(err, ErrInjected) {
		t.Fatalf("open error %v is not a typed injected dial failure", err)
	}
	if got, err := streamRoundTrip(context.Background(), tr, 4); err != nil || len(got) != 4 {
		t.Fatalf("healed open: got %d chunks, err %v", len(got), err)
	}
}

// TestStreamCorruptFlipsChunkCopy corrupts exactly one chunk mid-stream:
// the receiver sees one flipped leading byte, the rest arrive intact, and
// the sender's original buffer is untouched.
func TestStreamCorruptFlipsChunkCopy(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 5, Rule{From: Any, To: Any, Corrupt: 1, Times: 1})
	got, err := streamRoundTrip(context.Background(), tr, 5)
	if err != nil {
		t.Fatalf("corruption must not abort the stream: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("received %d chunks, want 5", len(got))
	}
	flipped := 0
	for _, p := range got {
		switch p[0] {
		case 0xAD:
		case 0xAD ^ 0xFF:
			flipped++
		default:
			t.Fatalf("chunk leading byte %#x is neither intact nor flipped", p[0])
		}
	}
	if flipped != 1 {
		t.Fatalf("%d chunks flipped, want exactly 1 (Times=1)", flipped)
	}
}

// TestStreamDelayObservesContext arms a long per-chunk delay under an
// already-expiring context: the chunk's Send must return the context error
// promptly instead of sleeping out the full delay.
func TestStreamDelayObservesContext(t *testing.T) {
	tr := Wrap(cluster.NewLocalTransport(2), 13,
		Rule{From: Any, To: Any, Delay: 1, MaxDelay: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := streamRoundTrip(ctx, tr, 3)
	if err == nil {
		t.Fatal("delayed stream under expired context should fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored context: took %v", elapsed)
	}
}
