package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"adj/internal/cluster"
)

// admit is a test helper: Admit with a background context, failing the
// test on rejection.
func admit(t *testing.T, c *Controller, req Request) *Ticket {
	t.Helper()
	tk, err := c.Admit(context.Background(), req)
	if err != nil {
		t.Fatalf("Admit(%v/%q): %v", req.Class, req.Tenant, err)
	}
	return tk
}

// waitDepth polls until the controller's queue depth reaches want.
func waitDepth(t *testing.T, c *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Depth == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %d (now %d)", want, c.Stats().Depth)
}

func TestConcurrencyLimit(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2})
	t1 := admit(t, c, Request{})
	t2 := admit(t, c, Request{})
	if got := c.Stats().InFlight; got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	granted := make(chan *Ticket, 1)
	go func() {
		tk := admit(t, c, Request{})
		granted <- tk
	}()
	waitDepth(t, c, 1)
	select {
	case <-granted:
		t.Fatal("third request granted beyond MaxConcurrent")
	case <-time.After(20 * time.Millisecond):
	}
	t1.Release(Usage{})
	select {
	case tk := <-granted:
		tk.Release(Usage{})
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never granted after release")
	}
	t2.Release(Usage{})
	st := c.Stats()
	if st.InFlight != 0 || st.Depth != 0 || st.Admitted != 3 {
		t.Fatalf("final stats %+v, want inflight 0 depth 0 admitted 3", st)
	}
}

// TestInteractivePriority queues a bulk request before an interactive one
// and checks the interactive request is granted first anyway.
func TestInteractivePriority(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 8, ShedQueue: 8})
	hold := admit(t, c, Request{})

	order := make(chan Class, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk := admit(t, c, Request{Class: Bulk})
		order <- Bulk
		tk.Release(Usage{})
	}()
	waitDepth(t, c, 1) // bulk is queued first
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk := admit(t, c, Request{Class: Interactive})
		order <- Interactive
		tk.Release(Usage{})
	}()
	waitDepth(t, c, 2)

	hold.Release(Usage{})
	wg.Wait()
	first, second := <-order, <-order
	if first != Interactive || second != Bulk {
		t.Fatalf("grant order = %v, %v; want interactive before bulk", first, second)
	}
}

func TestBulkShedWatermark(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 8, ShedQueue: 2})
	hold := admit(t, c, Request{})
	defer hold.Release(Usage{})

	// Two queued interactive requests put the depth at the bulk watermark.
	results := make(chan *Ticket, 2)
	for i := 0; i < 2; i++ {
		go func() {
			tk, err := c.Admit(context.Background(), Request{})
			if err == nil {
				results <- tk
			}
		}()
	}
	waitDepth(t, c, 2)

	_, err := c.Admit(context.Background(), Request{Class: Bulk})
	if !errors.Is(err, cluster.ErrOverloaded) {
		t.Fatalf("bulk at watermark: err = %v, want ErrOverloaded", err)
	}
	var oe *cluster.OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err %T does not unwrap to *cluster.OverloadError", err)
	}
	if oe.Reason != "bulk shed" || oe.QueueDepth != 2 || oe.RetryAfter <= 0 {
		t.Fatalf("overload detail = %+v", oe)
	}
	// Interactive still passes the bulk watermark (queues behind the two).
	go func() {
		tk, err := c.Admit(context.Background(), Request{})
		if err == nil {
			results <- tk
		}
	}()
	waitDepth(t, c, 3)
	if got := c.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	hold.Release(Usage{})
	for i := 0; i < 3; i++ {
		tk := <-results
		tk.Release(Usage{})
	}
}

func TestQueueFullShedsInteractive(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, MaxQueue: 1, ShedQueue: 1})
	hold := admit(t, c, Request{})
	granted := make(chan *Ticket, 1)
	go func() {
		tk, err := c.Admit(context.Background(), Request{})
		if err == nil {
			granted <- tk
		}
	}()
	waitDepth(t, c, 1)

	_, err := c.Admit(context.Background(), Request{})
	var oe *cluster.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue full" {
		t.Fatalf("interactive over MaxQueue: err = %v, want queue-full OverloadError", err)
	}
	hold.Release(Usage{})
	(<-granted).Release(Usage{})
}

func TestCancelWhileQueued(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1})
	hold := admit(t, c, Request{})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Request{})
		errc <- err
	}()
	waitDepth(t, c, 0+1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait: err = %v, want context.Canceled", err)
	}
	st := c.Stats()
	if st.Depth != 0 || st.Rejected != 1 {
		t.Fatalf("after cancel: %+v, want depth 0 rejected 1", st)
	}
	// The pool stays healthy: the slot releases and re-admits normally.
	hold.Release(Usage{})
	admit(t, c, Request{}).Release(Usage{})
}

// TestDeadlineInfeasible teaches the controller a 1s service time via a
// fake clock, then asks for admission behind a held slot with a 10ms
// deadline: the estimated wait exceeds it, so the reject is immediate
// (context.DeadlineExceeded) without queuing.
func TestDeadlineInfeasible(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewController(Config{MaxConcurrent: 1, Clock: clock})

	tk := admit(t, c, Request{})
	now = now.Add(time.Second) // the run "took" 1s
	tk.Release(Usage{})
	if got := c.Stats().ServiceSeconds; got != 1 {
		t.Fatalf("ServiceSeconds = %v, want 1", got)
	}

	hold := admit(t, c, Request{})
	defer hold.Release(Usage{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Admit(ctx, Request{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("infeasible deadline: err = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Millisecond {
		t.Fatalf("infeasible deadline waited %v before rejecting; want immediate", waited)
	}
	if st := c.Stats(); st.Depth != 0 || st.Rejected != 1 {
		t.Fatalf("after reject: %+v, want depth 0 rejected 1", st)
	}

	// A feasible deadline (10s) on the same queue is accepted.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	granted := make(chan *Ticket, 1)
	go func() {
		tk, err := c.Admit(ctx2, Request{})
		if err == nil {
			granted <- tk
		}
	}()
	waitDepth(t, c, 1)
	hold.Release(Usage{})
	select {
	case tk := <-granted:
		tk.Release(Usage{})
	case <-time.After(5 * time.Second):
		t.Fatal("feasible-deadline request never granted")
	}
}

func TestTenantBudgetDecay(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewController(Config{
		MaxConcurrent: 2,
		TenantBytes:   100,
		BudgetWindow:  time.Minute,
		Clock:         clock,
	})

	tk := admit(t, c, Request{Tenant: "alice"})
	tk.Release(Usage{Bytes: 200})

	_, err := c.Admit(context.Background(), Request{Tenant: "alice"})
	var oe *cluster.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "tenant bytes budget" {
		t.Fatalf("over-budget tenant: err = %v, want tenant-bytes OverloadError", err)
	}
	if !errors.Is(err, cluster.ErrOverloaded) {
		t.Fatalf("budget refusal must match ErrOverloaded, got %v", err)
	}
	// Another tenant is unaffected.
	admit(t, c, Request{Tenant: "bob"}).Release(Usage{Bytes: 50})

	// Two half-lives later alice's 200 bytes decayed to 50 < 100.
	now = now.Add(2 * time.Minute)
	admit(t, c, Request{Tenant: "alice"}).Release(Usage{})

	st := c.Stats()
	if ts, ok := st.Tenants["alice"]; !ok || ts.Bytes > 100 {
		t.Fatalf("alice's decayed account = %+v, want <= 100 bytes", ts)
	}
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1 (the budget refusal)", st.Rejected)
	}
}

func TestCPUBudget(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewController(Config{
		MaxConcurrent:    1,
		TenantCPUSeconds: 1.0,
		BudgetWindow:     time.Minute,
		Clock:            func() time.Time { return now },
	})
	tk := admit(t, c, Request{Tenant: "carol"})
	tk.Release(Usage{CPUSeconds: 2.0})
	_, err := c.Admit(context.Background(), Request{Tenant: "carol"})
	var oe *cluster.OverloadError
	if !errors.As(err, &oe) || oe.Reason != "tenant cpu budget" {
		t.Fatalf("cpu over budget: err = %v", err)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1})
	tk := admit(t, c, Request{})
	tk.Release(Usage{})
	tk.Release(Usage{}) // second release must not free a phantom slot
	tk2 := admit(t, c, Request{})
	if got := c.Stats().InFlight; got != 1 {
		t.Fatalf("InFlight = %d after double release + admit, want 1", got)
	}
	tk2.Release(Usage{})
}

func TestClassString(t *testing.T) {
	if Interactive.String() != "interactive" || Bulk.String() != "bulk" {
		t.Fatalf("class names: %q, %q", Interactive.String(), Bulk.String())
	}
}
