// Package admission implements the serving tier's admission control: a
// priority queue (interactive before bulk), a bounded concurrency limiter,
// per-tenant byte/CPU accounting against decaying budgets, deadline-aware
// queue waits, and load-shed watermarks that drop bulk work first when the
// queue backs up.
//
// The contract mirrors what serving-scale join systems need (see
// "Processing Database Joins over a Shared-Nothing System of Multicore
// Machines": multiplex many in-flight operations over a fixed pool instead
// of dedicating the cluster to one query):
//
//   - Admit blocks until a concurrency slot frees, the context
//     cancels/expires, or the controller sheds the request.
//   - Interactive requests are granted before bulk requests, FIFO within a
//     class, so a bulk flood cannot starve the interactive trickle.
//   - A request whose context deadline cannot plausibly be met — the
//     estimated queue wait (EWMA of recent service times scaled by the
//     slots ahead) already exceeds it — is rejected immediately with
//     context.DeadlineExceeded rather than queued to die.
//   - Under pressure (queue depth or observed queue-wait latency past the
//     shed watermarks) bulk requests are refused with a typed
//     *cluster.OverloadError carrying a retry-after hint; interactive
//     requests are only refused when the queue is hard-full.
//   - Per-tenant budgets decay over Config.BudgetWindow, so a tenant that
//     burned its allowance gets it back gradually instead of at a cliff.
//
// Every rejection is errors.Is-able: cluster.ErrOverloaded for shed/full/
// budget refusals, context.DeadlineExceeded / context.Canceled for
// deadline and cancellation exits. A rejected request leaves no residue —
// no slot held, no queue entry, no goroutine.
package admission

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"adj/internal/cluster"
)

// Class is a request's scheduling class.
type Class int

const (
	// Interactive requests are latency-sensitive: granted before bulk,
	// shed only when the queue is hard-full.
	Interactive Class = iota
	// Bulk requests are throughput work: granted after interactive,
	// shed first under pressure.
	Bulk
)

// String names the class ("interactive", "bulk").
func (c Class) String() string {
	if c == Bulk {
		return "bulk"
	}
	return "interactive"
}

// Config tunes a Controller. The zero value is usable: one slot, a
// generous queue, no tenant budgets, shedding only when the queue fills.
type Config struct {
	// MaxConcurrent is the number of requests allowed in flight at once
	// (default 1). The serving tier sizes its cluster pool to this.
	MaxConcurrent int
	// MaxQueue bounds the total number of waiting requests; beyond it even
	// interactive requests are refused (default 16 × MaxConcurrent).
	MaxQueue int
	// ShedQueue is the queue depth at which bulk requests start being shed
	// (default MaxQueue/2, minimum 1).
	ShedQueue int
	// ShedLatency sheds bulk requests whenever the observed queue-wait
	// EWMA exceeds it (0 disables the latency watermark).
	ShedLatency time.Duration
	// TenantBytes caps a tenant's decayed shuffle-byte consumption; a
	// tenant over budget is refused until the account decays (0 = no cap).
	TenantBytes int64
	// TenantCPUSeconds caps a tenant's decayed CPU-seconds the same way
	// (0 = no cap).
	TenantCPUSeconds float64
	// BudgetWindow is the half-life of tenant accounts: consumption
	// recorded one window ago counts half (default 1 minute).
	BudgetWindow time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16 * c.MaxConcurrent
	}
	if c.ShedQueue <= 0 {
		c.ShedQueue = c.MaxQueue / 2
	}
	if c.ShedQueue < 1 {
		c.ShedQueue = 1
	}
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = time.Minute
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Request describes one admission attempt.
type Request struct {
	// Class is the scheduling class (zero value: Interactive).
	Class Class
	// Tenant is the budget account to charge ("" = unaccounted).
	Tenant string
}

// Usage is what an execution consumed, charged to its tenant at Release.
type Usage struct {
	// Bytes is the execution's shuffle volume.
	Bytes int64
	// CPUSeconds is the execution's modeled compute time.
	CPUSeconds float64
}

// Ticket is a granted admission: exactly one concurrency slot, held until
// Release. Release must be called exactly once.
type Ticket struct {
	c       *Controller
	class   Class
	tenant  string
	granted time.Time
	queued  time.Duration
	once    sync.Once
}

// Class returns the ticket's scheduling class.
func (t *Ticket) Class() Class { return t.class }

// QueueSeconds is how long the request waited for its slot.
func (t *Ticket) QueueSeconds() float64 { return t.queued.Seconds() }

// Release returns the ticket's slot, charges the tenant account with the
// execution's usage, and folds the service time into the controller's
// estimate. Safe to call once per ticket; extra calls are no-ops.
func (t *Ticket) Release(u Usage) {
	t.once.Do(func() { t.c.release(t, u) })
}

// waiter is one queued request.
type waiter struct {
	class   Class
	ready   chan struct{} // closed on grant
	granted bool          // set (under mu) when the slot was handed over
	at      time.Time     // enqueue time
}

// Controller is the admission gate. All methods are safe for concurrent
// use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int
	queues   [2][]*waiter // [Interactive], [Bulk]; FIFO within each

	// EWMA estimates, seconds. serviceEWMA tracks Release−grant (how long
	// a slot stays busy), waitEWMA the observed queue waits (the latency
	// shed watermark's signal).
	serviceEWMA float64
	waitEWMA    float64

	admitted int64
	shed     int64
	rejected int64 // deadline-infeasible + cancelled-in-queue + budget refusals

	tenants map[string]*tenantAccount
}

// tenantAccount is a decaying consumption record.
type tenantAccount struct {
	bytes float64
	cpu   float64
	last  time.Time
}

// NewController builds a controller from cfg (zero fields take defaults).
func NewController(cfg Config) *Controller {
	return &Controller{
		cfg:     cfg.withDefaults(),
		tenants: make(map[string]*tenantAccount),
	}
}

// MaxConcurrent reports the configured concurrency limit after defaulting
// — the serving tier sizes its resident cluster pool to match.
func (c *Controller) MaxConcurrent() int { return c.cfg.MaxConcurrent }

// ewmaAlpha weights recent observations; ~86% of the estimate comes from
// the last 12 observations.
const ewmaAlpha = 0.15

// Admit asks for a slot. It returns a Ticket when granted, or a typed
// error: *cluster.OverloadError (errors.Is cluster.ErrOverloaded) when the
// request is shed, a context error when ctx cancels or expires while
// queued, and context.DeadlineExceeded immediately when the deadline
// cannot plausibly be met.
func (c *Controller) Admit(ctx context.Context, req Request) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	now := c.cfg.Clock()

	// Tenant budgets first: a tenant over its decayed allowance is refused
	// regardless of load, so one account cannot monopolize the pool.
	if reason, wait := c.overBudgetLocked(req.Tenant, now); reason != "" {
		c.rejected++
		depth := c.depthLocked()
		c.mu.Unlock()
		return nil, &cluster.OverloadError{Reason: reason, QueueDepth: depth, RetryAfter: wait}
	}

	// Shed watermarks. Bulk goes first: at ShedQueue depth or when queue
	// waits are already blowing the latency watermark. Interactive is only
	// refused when the queue is hard-full.
	depth := c.depthLocked()
	if depth >= c.cfg.MaxQueue {
		c.shed++
		retry := c.retryAfterLocked(depth)
		c.mu.Unlock()
		return nil, &cluster.OverloadError{Reason: "queue full", QueueDepth: depth, RetryAfter: retry}
	}
	if req.Class == Bulk && (depth >= c.cfg.ShedQueue ||
		(c.cfg.ShedLatency > 0 && c.waitEWMA > c.cfg.ShedLatency.Seconds())) {
		c.shed++
		retry := c.retryAfterLocked(depth)
		c.mu.Unlock()
		return nil, &cluster.OverloadError{Reason: "bulk shed", QueueDepth: depth, RetryAfter: retry}
	}

	// Deadline feasibility: if the estimated wait for this request's place
	// in line already exceeds the context deadline, fail now — queuing it
	// would hold a queue slot only to expire.
	// (time.Until, not Config.Clock: context deadlines are wall-clock even
	// when tests fake the controller's clock.)
	if dl, ok := ctx.Deadline(); ok {
		eta := c.estimateWaitLocked(req.Class)
		if eta > 0 && time.Until(dl) < eta {
			c.rejected++
			c.mu.Unlock()
			return nil, fmt.Errorf("admission: estimated queue wait %v exceeds deadline: %w",
				eta.Round(time.Millisecond), context.DeadlineExceeded)
		}
	}

	// Fast path: free slot and nobody ahead.
	if c.inflight < c.cfg.MaxConcurrent && c.depthLocked() == 0 {
		c.inflight++
		c.admitted++
		c.observeWaitLocked(0)
		c.mu.Unlock()
		return &Ticket{c: c, class: req.Class, tenant: req.Tenant, granted: now}, nil
	}

	// Queue and wait for a grant, the context, or whichever comes first.
	w := &waiter{class: req.Class, ready: make(chan struct{}), at: now}
	c.queues[req.Class] = append(c.queues[req.Class], w)
	c.mu.Unlock()

	select {
	case <-w.ready:
		c.mu.Lock()
		granted := c.cfg.Clock()
		queued := granted.Sub(w.at)
		c.admitted++
		c.observeWaitLocked(queued.Seconds())
		c.mu.Unlock()
		return &Ticket{c: c, class: req.Class, tenant: req.Tenant, granted: granted, queued: queued}, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// Lost the race: the slot was handed to us as the context
			// fired. Hand it on rather than strand it.
			c.inflight--
			c.grantNextLocked()
		} else {
			c.removeWaiterLocked(w)
		}
		c.rejected++
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a ticket's slot and charges its tenant.
func (c *Controller) release(t *Ticket, u Usage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	service := now.Sub(t.granted).Seconds()
	if c.serviceEWMA == 0 {
		c.serviceEWMA = service
	} else {
		c.serviceEWMA += ewmaAlpha * (service - c.serviceEWMA)
	}
	if t.tenant != "" && (u.Bytes != 0 || u.CPUSeconds != 0) {
		acct := c.tenants[t.tenant]
		if acct == nil {
			acct = &tenantAccount{last: now}
			c.tenants[t.tenant] = acct
		}
		c.decayLocked(acct, now)
		acct.bytes += float64(u.Bytes)
		acct.cpu += u.CPUSeconds
	}
	c.inflight--
	c.grantNextLocked()
}

// grantNextLocked hands a free slot to the longest-waiting interactive
// request, else the longest-waiting bulk request.
func (c *Controller) grantNextLocked() {
	if c.inflight >= c.cfg.MaxConcurrent {
		return
	}
	for class := range c.queues {
		if len(c.queues[class]) > 0 {
			w := c.queues[class][0]
			c.queues[class] = c.queues[class][1:]
			w.granted = true
			c.inflight++
			close(w.ready)
			return
		}
	}
}

func (c *Controller) removeWaiterLocked(w *waiter) {
	q := c.queues[w.class]
	for i, cand := range q {
		if cand == w {
			c.queues[w.class] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

func (c *Controller) depthLocked() int {
	return len(c.queues[Interactive]) + len(c.queues[Bulk])
}

// estimateWaitLocked predicts how long a new request of class would queue:
// the requests scheduled ahead of it (all in-flight, everything queued for
// interactive+bulk if bulk, interactive only if interactive) divided by
// the drain rate MaxConcurrent, scaled by the service-time EWMA. Zero when
// no history exists — never reject on a guess.
func (c *Controller) estimateWaitLocked(class Class) time.Duration {
	if c.serviceEWMA == 0 {
		return 0
	}
	ahead := c.inflight + len(c.queues[Interactive])
	if class == Bulk {
		ahead += len(c.queues[Bulk])
	}
	if c.inflight < c.cfg.MaxConcurrent {
		// Free slots absorb that many of the requests ahead immediately.
		ahead -= c.cfg.MaxConcurrent - c.inflight
		if ahead < 0 {
			ahead = 0
		}
	}
	secs := c.serviceEWMA * float64(ahead) / float64(c.cfg.MaxConcurrent)
	return time.Duration(secs * float64(time.Second))
}

// retryAfterLocked sizes the hint on a shed: the time for the current
// queue to drain at the observed service rate, floored at 10ms so clients
// never busy-spin on a cold estimate. Caller holds c.mu.
func (c *Controller) retryAfterLocked(depth int) time.Duration {
	const floor = 10 * time.Millisecond
	if c.serviceEWMA == 0 {
		return floor
	}
	secs := c.serviceEWMA * float64(depth+1) / float64(c.cfg.MaxConcurrent)
	d := time.Duration(secs * float64(time.Second))
	if d < floor {
		d = floor
	}
	return d
}

func (c *Controller) observeWaitLocked(seconds float64) {
	c.waitEWMA += ewmaAlpha * (seconds - c.waitEWMA)
}

// decayLocked applies the half-life decay to a tenant account.
func (c *Controller) decayLocked(acct *tenantAccount, now time.Time) {
	elapsed := now.Sub(acct.last)
	if elapsed > 0 {
		f := math.Pow(0.5, elapsed.Seconds()/c.cfg.BudgetWindow.Seconds())
		acct.bytes *= f
		acct.cpu *= f
	}
	acct.last = now
}

// overBudgetLocked reports whether tenant is over either budget after
// decay, with the wait for the account to halve as the retry hint.
func (c *Controller) overBudgetLocked(tenant string, now time.Time) (string, time.Duration) {
	if tenant == "" || (c.cfg.TenantBytes <= 0 && c.cfg.TenantCPUSeconds <= 0) {
		return "", 0
	}
	acct := c.tenants[tenant]
	if acct == nil {
		return "", 0
	}
	c.decayLocked(acct, now)
	if c.cfg.TenantBytes > 0 && acct.bytes > float64(c.cfg.TenantBytes) {
		return "tenant bytes budget", c.cfg.BudgetWindow / 2
	}
	if c.cfg.TenantCPUSeconds > 0 && acct.cpu > c.cfg.TenantCPUSeconds {
		return "tenant cpu budget", c.cfg.BudgetWindow / 2
	}
	return "", 0
}

// TenantStats is one tenant's decayed consumption.
type TenantStats struct {
	// Bytes is the decayed shuffle-byte consumption.
	Bytes int64
	// CPUSeconds is the decayed CPU-second consumption.
	CPUSeconds float64
}

// Stats is a controller snapshot.
type Stats struct {
	// Depth is the current queue depth (both classes).
	Depth int
	// InFlight is the number of slots currently held.
	InFlight int
	// Admitted counts granted requests.
	Admitted int64
	// Shed counts overload refusals (queue full, bulk shed).
	Shed int64
	// Rejected counts non-overload refusals: deadline-infeasible, budget
	// refusals, and requests whose context fired while queued.
	Rejected int64
	// QueueWaitSeconds is the queue-wait EWMA the latency watermark reads.
	QueueWaitSeconds float64
	// ServiceSeconds is the service-time EWMA behind deadline estimates
	// and retry-after hints.
	ServiceSeconds float64
	// Tenants maps tenant → decayed consumption (accounted tenants only).
	Tenants map[string]TenantStats
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	st := Stats{
		Depth:            c.depthLocked(),
		InFlight:         c.inflight,
		Admitted:         c.admitted,
		Shed:             c.shed,
		Rejected:         c.rejected,
		QueueWaitSeconds: c.waitEWMA,
		ServiceSeconds:   c.serviceEWMA,
		Tenants:          make(map[string]TenantStats, len(c.tenants)),
	}
	for name, acct := range c.tenants {
		c.decayLocked(acct, now)
		st.Tenants[name] = TenantStats{Bytes: int64(acct.bytes), CPUSeconds: acct.cpu}
	}
	return st
}
