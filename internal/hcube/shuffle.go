package hcube

import (
	"fmt"
	"sort"
	"strconv"

	"adj/internal/blockcache"
	"adj/internal/cluster"
	"adj/internal/relation"
	"adj/internal/trie"
)

// Kind selects the HCube implementation (§V).
type Kind int

// The three implementations compared in Fig. 9.
const (
	// Push is the original map/reduce-style HCube: every tuple is shuffled
	// individually to each matching cube (per-tuple message accounting; the
	// runtime batches the physical transfer to stay memory-sane, which only
	// helps Push).
	Push Kind = iota
	// Pull groups tuples into blocks by their hash signature; each block is
	// serialized once and fetched by the matching servers.
	Pull
	// Merge ships blocks as pre-built tries; receivers merge tries instead
	// of re-sorting raw tuples.
	Merge
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case Merge:
		return "merge"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Plan carries everything one shuffle needs.
type Plan struct {
	Shares Shares
	// Rels names the relations (already loaded as worker fragments) to
	// shuffle, with their attrs.
	Rels []RelInfo
	// Kind selects push/pull/merge.
	Kind Kind
	// TrieOrder gives the global attribute order block tries are built in
	// (each relation uses its attrs sorted by this order). Merge requires
	// it; Push/Pull use it to route received blocks into the worker's
	// block-trie cache — without it they fall back to materializing raw
	// per-cube databases (the legacy path).
	TrieOrder []string
	// Reuse, when non-nil, connects the shuffle to a session-resident
	// block-trie store: relations whose content signature is listed and
	// whose complete block set survives in the store are not shuffled at
	// all — every worker adopts the published tries straight into its
	// registry (a "warm" relation). Relations without a surviving set run
	// the normal exchange and have their built tries published afterwards
	// via Publish. Requires a TrieOrder; ignored otherwise.
	Reuse *Reuse
}

// Reuse names the session store and the content signatures of the shuffled
// relations (relation name -> signature; relations absent from Sigs are
// always shuffled cold and never published).
type Reuse struct {
	Store *blockcache.Store
	Sigs  map[string]uint64
}

// layoutSig hashes the structural context that, together with a relation's
// content signature, pins a block trie's identity: the per-column share
// counts (in the relation's own column order — exactly what BlockSig
// consumes) and the permutation of columns into the trie's attribute
// order. Attribute names are excluded so reuse crosses atom renamings and
// whole queries; the shuffle Kind is excluded because all kinds build the
// same sorted distinct block tries.
func (p Plan) layoutSig(ri RelInfo) uint64 {
	relPos := p.Shares.RelPositions(ri.Attrs)
	trieAttrs := p.trieAttrs(ri)
	h := relation.NewHash64()
	h.Word(uint64(len(ri.Attrs)))
	for _, pos := range relPos {
		h.Word(uint64(p.Shares.P[pos]))
	}
	for _, a := range trieAttrs {
		for j, b := range ri.Attrs {
			if a == b {
				h.Word(uint64(j))
				break
			}
		}
	}
	return h.Sum()
}

// warmRels returns, per relation name, the store's complete block-trie set
// for relations the session store can serve without a shuffle. Relations
// missing a manifest (or any evicted block) are omitted and run cold.
func (p Plan) warmRels() map[string]map[int]*trie.Trie {
	if p.Reuse == nil || p.Reuse.Store == nil || len(p.TrieOrder) == 0 {
		return nil
	}
	var warm map[string]map[int]*trie.Trie
	for _, ri := range p.Rels {
		content, ok := p.Reuse.Sigs[ri.Name]
		if !ok {
			continue
		}
		blocks, ok := p.Reuse.Store.Snapshot(blockcache.ManifestID{Content: content, Layout: p.layoutSig(ri)})
		if !ok {
			continue
		}
		if warm == nil {
			warm = make(map[string]map[int]*trie.Trie)
		}
		warm[ri.Name] = blocks
	}
	return warm
}

// adoptWarm installs one worker's share of the warm relations' block tries
// into its registry: for every stored block whose signature maps a cube to
// this worker, the published trie is re-skinned with the current query's
// attribute names and deposited pre-built (requests count as cache hits,
// never builds), and the matching cubes are bound — exactly the bindings a
// cold shuffle's consume phase would have produced.
func adoptWarm(w *cluster.Worker, p Plan, warm map[string]map[int]*trie.Trie) {
	for _, ri := range p.Rels {
		blocks, ok := warm[ri.Name]
		if !ok {
			continue
		}
		relPos := p.Shares.RelPositions(ri.Attrs)
		attrs := p.trieAttrs(ri)
		sigs := make([]int, 0, len(blocks))
		for sig := range blocks {
			sigs = append(sigs, sig)
		}
		sort.Ints(sigs)
		for _, sig := range sigs {
			var local []int
			for _, cube := range p.Shares.BlockCubes(relPos, sig) {
				if ServerOfCube(cube, w.N) == w.ID {
					local = append(local, cube)
				}
			}
			if len(local) == 0 {
				continue
			}
			skinned := *blocks[sig]
			skinned.Attrs = attrs
			key := blockcache.Key{Rel: ri.Name, Sig: sig}
			w.Blocks.DepositBuilt(key, attrs, &skinned)
			for _, cube := range local {
				w.Blocks.BindCube(cube, ri.Name, key)
			}
		}
	}
}

// Publish deposits a completed run's built block tries into the session
// store, then records each fully-built relation's manifest — the complete
// signature set a later execution needs to go warm. Call it after the join
// phase (block tries are built lazily at first cube use, so they only
// exist once every cube has run). Adopted (warm) blocks skip the store
// deposit — their tries are already resident — but still count toward
// their relation's manifest, which is re-recorded idempotently; a relation
// with any block still unbuilt skips its manifest write (and PutManifest
// itself refuses sets whose blocks didn't stay resident). Block deposits
// are idempotent across workers (replicated blocks are built to identical
// tries on every receiving server).
func Publish(c *cluster.Cluster, p Plan) {
	if p.Reuse == nil || p.Reuse.Store == nil || len(p.TrieOrder) == 0 {
		return
	}
	type relState struct {
		sigs     map[int]bool
		complete bool
	}
	states := make(map[string]*relState, len(p.Rels))
	layouts := make(map[string]uint64, len(p.Rels))
	for _, ri := range p.Rels {
		if _, ok := p.Reuse.Sigs[ri.Name]; !ok {
			continue
		}
		states[ri.Name] = &relState{sigs: make(map[int]bool), complete: true}
		layouts[ri.Name] = p.layoutSig(ri)
	}
	if len(states) == 0 {
		return
	}
	for _, w := range c.Workers {
		for _, bb := range w.Blocks.BuiltBlocks() {
			st, ok := states[bb.Key.Rel]
			if !ok {
				continue
			}
			st.sigs[bb.Key.Sig] = true
			if bb.Trie == nil {
				st.complete = false
				continue
			}
			if !bb.Adopted {
				p.Reuse.Store.Put(blockcache.BlockID{
					Content: p.Reuse.Sigs[bb.Key.Rel],
					Layout:  layouts[bb.Key.Rel],
					Sig:     bb.Key.Sig,
				}, bb.Trie)
			}
		}
	}
	for name, st := range states {
		if !st.complete {
			continue
		}
		sigs := make([]int, 0, len(st.sigs))
		for sig := range st.sigs {
			sigs = append(sigs, sig)
		}
		sort.Ints(sigs)
		p.Reuse.Store.PutManifest(blockcache.ManifestID{
			Content: p.Reuse.Sigs[name],
			Layout:  layouts[name],
		}, sigs)
	}
}

// Run executes the shuffle on the cluster: afterwards every worker's
// block-trie registry (Worker.Blocks) holds the deposited blocks of its
// assigned cubes, ready for lazy per-cube trie assembly; the legacy
// Push/Pull path without a TrieOrder materializes raw cube databases
// instead. Phase metrics accrue under the given phase name.
func Run(c *cluster.Cluster, phase string, p Plan) error {
	for _, w := range c.Workers {
		w.ResetCubes()
	}
	// Warm relations: the session store still holds the complete block-trie
	// set for this content and layout, so they skip the exchange entirely —
	// no encode, no wire, no shuffle-side trie build — and every worker
	// adopts its share of the published tries during consume.
	warm := p.warmRels()
	switch p.Kind {
	case Push:
		return runPush(c, phase, p, warm)
	case Pull:
		return runPull(c, phase, p, warm)
	case Merge:
		return runMerge(c, phase, p, warm)
	default:
		return fmt.Errorf("hcube: unknown kind %d", p.Kind)
	}
}

// trieAttrs returns ri's attributes sorted by TrieOrder position, or nil
// when the plan carries no order (legacy raw-tuple path).
func (p Plan) trieAttrs(ri RelInfo) []string {
	if len(p.TrieOrder) == 0 {
		return nil
	}
	pos := make(map[string]int, len(p.TrieOrder))
	for i, a := range p.TrieOrder {
		pos[a] = i
	}
	attrs := append([]string(nil), ri.Attrs...)
	sort.Slice(attrs, func(x, y int) bool { return pos[attrs[x]] < pos[attrs[y]] })
	return attrs
}

// attrsByRel precomputes trieAttrs for every plan relation (nil map when
// the plan carries no TrieOrder).
func (p Plan) attrsByRel() map[string][]string {
	if len(p.TrieOrder) == 0 {
		return nil
	}
	out := make(map[string][]string, len(p.Rels))
	for _, ri := range p.Rels {
		out[ri.Name] = p.trieAttrs(ri)
	}
	return out
}

// runPush replicates tuples to every matching cube. Tuples are bucketed
// into sorted blocks by hash signature; each block streams out in bounded
// chunks whose payloads are shared by all destination cubes, but Weight
// still counts one message per tuple copy (the Push cost model the paper
// measures — each chunk carries the weight of its rows, so the per-tuple
// total is chunking-invariant). Envelope keys carry both the block
// signature and the destination cube ("rel@sig#cube") so the receiver can
// deposit each sender's chunk once into the block cache while still
// binding every replicated cube.
func runPush(c *cluster.Cluster, phase string, p Plan, warm map[string]map[int]*trie.Trie) error {
	return c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			for _, ri := range p.Rels {
				if _, ok := warm[ri.Name]; ok {
					continue
				}
				frag, ok := w.Rels[ri.Name]
				if !ok {
					continue
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				sigs, blocks := groupBlocks(frag, p.Shares, relPos, ri)
				for bi, sig := range sigs {
					b := blocks[bi]
					b.Sort()
					cubes := p.Shares.BlockCubes(relPos, sig)
					err := w.EncodeRelationChunks(b, 0, func(payload []byte, lo, hi, chunk int) error {
						for _, cube := range cubes {
							if err := s.Send(cluster.Envelope{
								To:      ServerOfCube(cube, c.N),
								Key:     ri.Name + "@" + strconv.Itoa(sig) + "#" + strconv.Itoa(cube),
								Chunk:   int32(chunk),
								Payload: payload,
								Tuples:  int64(hi - lo),
								Weight:  int64(hi - lo), // per-tuple shuffle messages
							}); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			adoptWarm(w, p, warm)
			return consumeTupleBlocks(w, r, p)
		})
}

// runPull groups by block signature and ships each block once per server,
// streamed as bounded chunks: the first chunk of a block copy carries the
// block's single message weight, continuations ride free
// (WeightContinuation), so the per-block message count the Pull cost model
// measures is chunking-invariant. Receivers deposit each chunk as one more
// tuple part of its block — the lazy trie build concatenates, sorts and
// dedups parts, so chunk granularity never changes the built trie.
func runPull(c *cluster.Cluster, phase string, p Plan, warm map[string]map[int]*trie.Trie) error {
	return c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			for _, ri := range p.Rels {
				if _, ok := warm[ri.Name]; ok {
					continue
				}
				frag, ok := w.Rels[ri.Name]
				if !ok {
					continue
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				sigs, blocks := groupBlocks(frag, p.Shares, relPos, ri)
				for bi, sig := range sigs {
					b := blocks[bi]
					b.Sort()
					servers := blockServers(p.Shares, relPos, sig, c.N)
					err := w.EncodeRelationChunks(b, 0, func(payload []byte, lo, hi, chunk int) error {
						weight := int64(1) // one message per block copy
						if chunk > 0 {
							weight = cluster.WeightContinuation
						}
						for _, server := range servers {
							if err := s.Send(cluster.Envelope{
								To:      server,
								Key:     ri.Name + "@" + strconv.Itoa(sig),
								Chunk:   int32(chunk),
								Payload: payload,
								Tuples:  int64(hi - lo),
								Weight:  weight,
							}); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			adoptWarm(w, p, warm)
			var scratch relation.Relation // decode scratch for the legacy path
			attrsOf := p.attrsByRel()
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				name, sig, err := splitKey(e.Key, '@')
				if err != nil {
					return err
				}
				ri, ok := relByName(p.Rels, name)
				if !ok {
					return fmt.Errorf("hcube pull: unknown relation %q", name)
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				if attrs := attrsOf[name]; attrs != nil {
					// Deposit the sender's chunk as one tuple part; bind every
					// local cube matching the signature (rebinds are no-ops).
					// The part relation is freshly decoded (not scratch)
					// because the registry retains it until the block trie is
					// built — received payloads are only valid until the next
					// Recv.
					key := blockcache.Key{Rel: name, Sig: sig}
					part := new(relation.Relation)
					if err := relation.DecodeInto(e.Payload, part); err != nil {
						return cluster.CorruptPayload("hcube pull block", err)
					}
					w.Blocks.DepositTuples(key, attrs, part)
					for _, cube := range p.Shares.BlockCubes(relPos, sig) {
						if ServerOfCube(cube, w.N) == w.ID {
							w.Blocks.BindCube(cube, name, key)
						}
					}
					continue
				}
				if err := relation.DecodeInto(e.Payload, &scratch); err != nil {
					return cluster.CorruptPayload("hcube pull tuples", err)
				}
				for _, cube := range p.Shares.BlockCubes(relPos, sig) {
					if ServerOfCube(cube, w.N) != w.ID {
						continue
					}
					db := w.CubeDB(cube)
					tgt, ok := db[name]
					if !ok {
						tgt = relation.New(name, ri.Attrs...)
						db[name] = tgt
					}
					tgt.AppendAll(&scratch)
				}
			}
		})
}

// runMerge ships pre-built block tries; receivers deposit them into the
// block-trie cache instead of eagerly merging per destination cube — the
// merge happens lazily at a cube's first use, and a block shared by many
// cubes is decoded and (when it is a relation's only block on the cube)
// merged exactly once.
func runMerge(c *cluster.Cluster, phase string, p Plan, warm map[string]map[int]*trie.Trie) error {
	if len(p.TrieOrder) == 0 {
		return fmt.Errorf("hcube merge: TrieOrder required")
	}
	return c.StreamExchange(phase,
		func(w *cluster.Worker, s cluster.StreamSender) error {
			for _, ri := range p.Rels {
				if _, ok := warm[ri.Name]; ok {
					continue
				}
				frag, ok := w.Rels[ri.Name]
				if !ok {
					continue
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				attrs := p.trieAttrs(ri)
				sigs, blocks := groupBlocks(frag, p.Shares, relPos, ri)
				for bi, sig := range sigs {
					// A trie encoding is one indivisible unit (receivers merge
					// whole tries), so each block copy streams as one chunk —
					// receivers still overlap: the first trie deposits while
					// later blocks are still being built and encoded.
					bt := trie.Build(blocks[bi], attrs)
					payload := w.PayloadCopy(trie.Encode(bt))
					for _, server := range blockServers(p.Shares, relPos, sig, c.N) {
						if err := s.Send(cluster.Envelope{
							To:      server,
							Key:     ri.Name + "@" + strconv.Itoa(sig),
							Payload: payload,
							Tuples:  int64(bt.Len()),
							Weight:  1,
						}); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
		func(w *cluster.Worker, r cluster.StreamReceiver) error {
			adoptWarm(w, p, warm)
			attrsOf := p.attrsByRel()
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				name, sig, err := splitKey(e.Key, '@')
				if err != nil {
					return err
				}
				bt, err := trie.Decode(e.Payload)
				if err != nil {
					return cluster.CorruptPayload("hcube merge trie", err)
				}
				ri, ok := relByName(p.Rels, name)
				if !ok {
					return fmt.Errorf("hcube merge: unknown relation %q", name)
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				key := blockcache.Key{Rel: name, Sig: sig}
				w.Blocks.DepositTrie(key, attrsOf[name], bt)
				for _, cube := range p.Shares.BlockCubes(relPos, sig) {
					if ServerOfCube(cube, w.N) == w.ID {
						w.Blocks.BindCube(cube, name, key)
					}
				}
			}
		})
}

// --- helpers ---

// consumeTupleBlocks drains Push envelopes ("rel@sig#cube") from the
// stream. With a TrieOrder, each sender's chunk is decoded and deposited
// once — replicated cube copies carry the same chunk ordinal, so the dedup
// key is (sender, block, chunk) — and every replicated cube binds the
// shared block key; without one it falls back to appending raw tuples into
// per-cube databases.
func consumeTupleBlocks(w *cluster.Worker, r cluster.StreamReceiver, p Plan) error {
	var scratch relation.Relation // decode scratch for the legacy path
	type seenKey struct {
		from  int
		chunk int32
		key   blockcache.Key
	}
	var seen map[seenKey]bool
	attrsOf := p.attrsByRel()
	for {
		e, ok, err := r.Recv()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		relSig, cube, err := splitKey(e.Key, '#')
		if err != nil {
			return err
		}
		name, sig, err := splitKey(relSig, '@')
		if err != nil {
			return err
		}
		ri, ok := relByName(p.Rels, name)
		if !ok {
			return fmt.Errorf("hcube push: unknown relation %q", name)
		}
		if attrs := attrsOf[name]; attrs != nil {
			key := blockcache.Key{Rel: name, Sig: sig}
			sk := seenKey{e.From, e.Chunk, key}
			if seen == nil {
				seen = make(map[seenKey]bool)
			}
			if !seen[sk] {
				seen[sk] = true
				part := new(relation.Relation)
				if err := relation.DecodeInto(e.Payload, part); err != nil {
					return cluster.CorruptPayload("hcube push block", err)
				}
				w.Blocks.DepositTuples(key, attrs, part)
			}
			w.Blocks.BindCube(cube, name, key)
			continue
		}
		if err := relation.DecodeInto(e.Payload, &scratch); err != nil {
			return cluster.CorruptPayload("hcube push tuples", err)
		}
		db := w.CubeDB(cube)
		tgt, ok := db[name]
		if !ok {
			tgt = relation.New(name, ri.Attrs...)
			db[name] = tgt
		}
		tgt.AppendAll(&scratch)
	}
}

// groupBlocks buckets a fragment's tuples by block signature into one
// contiguous columnar backing per attribute (a signature pass, a counting
// pass, then one scatter of row slots — no per-block growth). It returns
// ascending signatures and, aligned with them, the non-empty blocks; block
// relations alias the shared backing column-wise and may be sorted in
// place by the caller. Columnar blocks feed straight into the columnar
// sort/encode (Push, Pull) and trie-build (Merge) fast paths; a
// columnar-resident fragment additionally computes the signature hashes
// as per-column sequential scans.
func groupBlocks(frag *relation.Relation, s Shares, relPos []int, ri RelInfo) ([]int, []*relation.Relation) {
	n := frag.Len()
	k := frag.Arity()
	nb := s.NumBlocks(relPos)
	sigOf := make([]int32, n)
	fragCols := colsIfResident(frag)
	if fragCols != nil {
		// Mixed-radix signature accumulated one column at a time: the exact
		// sum BlockSig computes per row, reordered into sequential scans.
		stride := 1
		for j, p := range relPos {
			col := fragCols[j]
			pv := s.P[p]
			for i := 0; i < n; i++ {
				sigOf[i] += int32(relation.HashValue(col[i], pv) * stride)
			}
			stride *= pv
		}
	} else {
		for i := 0; i < n; i++ {
			sigOf[i] = int32(s.BlockSig(relPos, frag.Tuple(i)))
		}
	}
	counts := make([]int32, nb+1)
	for _, sig := range sigOf {
		counts[sig+1]++
	}
	for b := 1; b <= nb; b++ {
		counts[b] += counts[b-1]
	}
	offsets := counts // prefix sums; counts[sig] = first row slot of sig
	// One slot per row, computed once; every column scatters through it.
	slots := make([]int32, n)
	fill := make([]int32, nb)
	for i, sig := range sigOf {
		slots[i] = offsets[sig] + fill[sig]
		fill[sig]++
	}
	backCols := make([][]relation.Value, k)
	for j := 0; j < k; j++ {
		backCols[j] = make([]relation.Value, n)
	}
	if fragCols != nil {
		for j, col := range fragCols {
			back := backCols[j]
			for i, slot := range slots {
				back[slot] = col[i]
			}
		}
	} else {
		data := frag.Data()
		for i, slot := range slots {
			row := data[i*k : (i+1)*k]
			for j, v := range row {
				backCols[j][slot] = v
			}
		}
	}
	var sigs []int
	var blocks []*relation.Relation
	for sig := 0; sig < nb; sig++ {
		lo, hi := int(offsets[sig]), int(offsets[sig+1])
		if lo == hi {
			continue
		}
		b := relation.New(ri.Name, ri.Attrs...)
		// Three-index slices: cap each block column at its own region so an
		// append reallocates instead of overwriting the next block's rows.
		blockCols := make([][]relation.Value, k)
		for j := 0; j < k; j++ {
			blockCols[j] = backCols[j][lo:hi:hi]
		}
		b.SetColumns(blockCols)
		sigs = append(sigs, sig)
		blocks = append(blocks, b)
	}
	return sigs, blocks
}

// colsIfResident returns the fragment's column views only when they are
// already materialized (never forces a transpose).
func colsIfResident(r *relation.Relation) [][]relation.Value {
	if !r.ColumnsResident() {
		return nil
	}
	return r.Columns()
}

// blockServers returns the distinct servers hosting cubes matching sig.
func blockServers(s Shares, relPos []int, sig, n int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, cube := range s.BlockCubes(relPos, sig) {
		sv := ServerOfCube(cube, n)
		if !seen[sv] {
			seen[sv] = true
			out = append(out, sv)
		}
	}
	sort.Ints(out)
	return out
}

func relByName(rels []RelInfo, name string) (RelInfo, bool) {
	for _, r := range rels {
		if r.Name == name {
			return r, true
		}
	}
	return RelInfo{}, false
}

func splitKey(key string, sep byte) (string, int, error) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == sep {
			v, err := strconv.Atoi(key[i+1:])
			if err != nil {
				return "", 0, fmt.Errorf("hcube: bad envelope key %q: %w", key, err)
			}
			return key[:i], v, nil
		}
	}
	return "", 0, fmt.Errorf("hcube: bad envelope key %q", key)
}
