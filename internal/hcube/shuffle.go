package hcube

import (
	"fmt"
	"sort"
	"strconv"

	"adj/internal/cluster"
	"adj/internal/relation"
	"adj/internal/trie"
)

// Kind selects the HCube implementation (§V).
type Kind int

// The three implementations compared in Fig. 9.
const (
	// Push is the original map/reduce-style HCube: every tuple is shuffled
	// individually to each matching cube (per-tuple message accounting; the
	// runtime batches the physical transfer to stay memory-sane, which only
	// helps Push).
	Push Kind = iota
	// Pull groups tuples into blocks by their hash signature; each block is
	// serialized once and fetched by the matching servers.
	Pull
	// Merge ships blocks as pre-built tries; receivers merge tries instead
	// of re-sorting raw tuples.
	Merge
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case Merge:
		return "merge"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Plan carries everything one shuffle needs.
type Plan struct {
	Shares Shares
	// Rels names the relations (already loaded as worker fragments) to
	// shuffle, with their attrs.
	Rels []RelInfo
	// Kind selects push/pull/merge.
	Kind Kind
	// TrieOrder, for Merge, gives the global attribute order that block
	// tries are built in (each relation uses its attrs sorted by this
	// order). Ignored otherwise.
	TrieOrder []string
}

// Run executes the shuffle on the cluster: afterwards every worker's cube
// databases hold the tuples (or merged tries) of its assigned cubes.
// Phase metrics accrue under the given phase name.
func Run(c *cluster.Cluster, phase string, p Plan) error {
	for _, w := range c.Workers {
		w.ResetCubes()
	}
	switch p.Kind {
	case Push:
		return runPush(c, phase, p)
	case Pull:
		return runPull(c, phase, p)
	case Merge:
		return runMerge(c, phase, p)
	default:
		return fmt.Errorf("hcube: unknown kind %d", p.Kind)
	}
}

// runPush replicates tuple-by-tuple. Envelopes batch tuples per (relation,
// cube) to bound memory, but Weight counts one message per tuple copy.
func runPush(c *cluster.Cluster, phase string, p Plan) error {
	return c.Exchange(phase,
		func(w *cluster.Worker) ([]cluster.Envelope, error) {
			var out []cluster.Envelope
			for _, ri := range p.Rels {
				frag, ok := w.Rels[ri.Name]
				if !ok {
					continue
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				// batch[cube] accumulates this fragment's tuples for a cube.
				batch := make(map[int]*relation.Relation)
				for i, n := 0, frag.Len(); i < n; i++ {
					t := frag.Tuple(i)
					for _, cube := range p.Shares.DestCubes(relPos, t) {
						b, ok := batch[cube]
						if !ok {
							b = relation.New(ri.Name, ri.Attrs...)
							batch[cube] = b
						}
						b.AppendTuple(t)
					}
				}
				cubes := make([]int, 0, len(batch))
				for cube := range batch {
					cubes = append(cubes, cube)
				}
				sort.Ints(cubes)
				for _, cube := range cubes {
					b := batch[cube]
					out = append(out, cluster.Envelope{
						To:      ServerOfCube(cube, c.N),
						Key:     ri.Name + "#" + strconv.Itoa(cube),
						Payload: relation.Encode(b),
						Tuples:  int64(b.Len()),
						Weight:  int64(b.Len()), // per-tuple shuffle messages
					})
				}
			}
			return out, nil
		},
		func(w *cluster.Worker, inbox []cluster.Envelope) error {
			return consumeTupleBlocks(w, inbox)
		})
}

// runPull groups by block signature and ships each block once per server.
func runPull(c *cluster.Cluster, phase string, p Plan) error {
	return c.Exchange(phase,
		func(w *cluster.Worker) ([]cluster.Envelope, error) {
			var out []cluster.Envelope
			for _, ri := range p.Rels {
				frag, ok := w.Rels[ri.Name]
				if !ok {
					continue
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				blocks := groupBlocks(frag, p.Shares, relPos, ri)
				sigs := sortedSigs(blocks)
				for _, sig := range sigs {
					b := blocks[sig]
					payload := relation.Encode(b)
					for _, server := range blockServers(p.Shares, relPos, sig, c.N) {
						out = append(out, cluster.Envelope{
							To:      server,
							Key:     ri.Name + "@" + strconv.Itoa(sig),
							Payload: payload,
							Tuples:  int64(b.Len()),
							Weight:  1, // one message per block copy
						})
					}
				}
			}
			return out, nil
		},
		func(w *cluster.Worker, inbox []cluster.Envelope) error {
			for _, e := range inbox {
				name, sig, err := splitKey(e.Key, '@')
				if err != nil {
					return err
				}
				blk, err := relation.Decode(e.Payload)
				if err != nil {
					return err
				}
				ri, ok := relByName(p.Rels, name)
				if !ok {
					return fmt.Errorf("hcube pull: unknown relation %q", name)
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				for _, cube := range p.Shares.BlockCubes(relPos, sig) {
					if ServerOfCube(cube, w.N) != w.ID {
						continue
					}
					db := w.CubeDB(cube)
					tgt, ok := db[name]
					if !ok {
						tgt = relation.New(name, ri.Attrs...)
						db[name] = tgt
					}
					tgt.AppendAll(blk)
				}
			}
			return nil
		})
}

// runMerge ships pre-built block tries and merges them at the receiver.
func runMerge(c *cluster.Cluster, phase string, p Plan) error {
	if len(p.TrieOrder) == 0 {
		return fmt.Errorf("hcube merge: TrieOrder required")
	}
	pos := make(map[string]int, len(p.TrieOrder))
	for i, a := range p.TrieOrder {
		pos[a] = i
	}
	err := c.Exchange(phase,
		func(w *cluster.Worker) ([]cluster.Envelope, error) {
			var out []cluster.Envelope
			for _, ri := range p.Rels {
				frag, ok := w.Rels[ri.Name]
				if !ok {
					continue
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				// Trie attribute order for this relation.
				attrs := append([]string(nil), ri.Attrs...)
				sort.Slice(attrs, func(x, y int) bool { return pos[attrs[x]] < pos[attrs[y]] })
				blocks := groupBlocks(frag, p.Shares, relPos, ri)
				sigs := sortedSigs(blocks)
				for _, sig := range sigs {
					bt := trie.Build(blocks[sig], attrs)
					payload := trie.Encode(bt)
					for _, server := range blockServers(p.Shares, relPos, sig, c.N) {
						out = append(out, cluster.Envelope{
							To:      server,
							Key:     ri.Name + "@" + strconv.Itoa(sig),
							Payload: payload,
							Tuples:  int64(bt.Len()),
							Weight:  1,
						})
					}
				}
			}
			return out, nil
		},
		func(w *cluster.Worker, inbox []cluster.Envelope) error {
			// Collect block tries per (cube, relation), then merge.
			pending := make(map[int]map[string][]*trie.Trie)
			for _, e := range inbox {
				name, sig, err := splitKey(e.Key, '@')
				if err != nil {
					return err
				}
				bt, err := trie.Decode(e.Payload)
				if err != nil {
					return err
				}
				ri, ok := relByName(p.Rels, name)
				if !ok {
					return fmt.Errorf("hcube merge: unknown relation %q", name)
				}
				relPos := p.Shares.RelPositions(ri.Attrs)
				for _, cube := range p.Shares.BlockCubes(relPos, sig) {
					if ServerOfCube(cube, w.N) != w.ID {
						continue
					}
					m, ok := pending[cube]
					if !ok {
						m = make(map[string][]*trie.Trie)
						pending[cube] = m
					}
					m[name] = append(m[name], bt)
				}
			}
			for cube, m := range pending {
				db := w.CubeTrieDB(cube)
				for name, ts := range m {
					db[name] = trie.Merge(ts)
				}
			}
			return nil
		})
	return err
}

// --- helpers ---

func consumeTupleBlocks(w *cluster.Worker, inbox []cluster.Envelope) error {
	for _, e := range inbox {
		name, cube, err := splitKey(e.Key, '#')
		if err != nil {
			return err
		}
		blk, err := relation.Decode(e.Payload)
		if err != nil {
			return err
		}
		db := w.CubeDB(cube)
		tgt, ok := db[name]
		if !ok {
			tgt = relation.New(blk.Name, blk.Attrs...)
			db[name] = tgt
		}
		tgt.AppendAll(blk)
	}
	return nil
}

func groupBlocks(frag *relation.Relation, s Shares, relPos []int, ri RelInfo) map[int]*relation.Relation {
	blocks := make(map[int]*relation.Relation)
	for i, n := 0, frag.Len(); i < n; i++ {
		t := frag.Tuple(i)
		sig := s.BlockSig(relPos, t)
		b, ok := blocks[sig]
		if !ok {
			b = relation.New(ri.Name, ri.Attrs...)
			blocks[sig] = b
		}
		b.AppendTuple(t)
	}
	return blocks
}

func sortedSigs(blocks map[int]*relation.Relation) []int {
	sigs := make([]int, 0, len(blocks))
	for s := range blocks {
		sigs = append(sigs, s)
	}
	sort.Ints(sigs)
	return sigs
}

// blockServers returns the distinct servers hosting cubes matching sig.
func blockServers(s Shares, relPos []int, sig, n int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, cube := range s.BlockCubes(relPos, sig) {
		sv := ServerOfCube(cube, n)
		if !seen[sv] {
			seen[sv] = true
			out = append(out, sv)
		}
	}
	sort.Ints(out)
	return out
}

func relByName(rels []RelInfo, name string) (RelInfo, bool) {
	for _, r := range rels {
		if r.Name == name {
			return r, true
		}
	}
	return RelInfo{}, false
}

func splitKey(key string, sep byte) (string, int, error) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == sep {
			v, err := strconv.Atoi(key[i+1:])
			if err != nil {
				return "", 0, fmt.Errorf("hcube: bad envelope key %q: %w", key, err)
			}
			return key[:i], v, nil
		}
	}
	return "", 0, fmt.Errorf("hcube: bad envelope key %q", key)
}
