// Package hcube implements the HCube one-round shuffle (§II-A, §V of the
// paper): the output space of a join is divided into hypercubes by a share
// vector p (partitions per attribute); every input tuple is replicated to
// the cubes whose coordinates match the tuple's hash on the relation's own
// attributes. After one exchange every server evaluates its cubes
// independently — no intermediate-result shuffling.
//
// The share optimizer solves the paper's Eq. (3): minimize total shuffled
// tuples subject to p ≥ 1 and a per-server memory bound, by exhaustive
// enumeration of share vectors with bounded product (queries here have at
// most six attributes, so enumeration is exact and fast).
package hcube

import (
	"fmt"
	"math"
	"sort"

	"adj/internal/relation"
)

// RelInfo describes one input relation for share optimization.
type RelInfo struct {
	Name  string
	Attrs []string
	Size  int64
}

// InfoOf extracts RelInfo from bound relations.
func InfoOf(rels []*relation.Relation) []RelInfo {
	out := make([]RelInfo, len(rels))
	for i, r := range rels {
		out[i] = RelInfo{Name: r.Name, Attrs: append([]string(nil), r.Attrs...), Size: int64(r.Len())}
	}
	return out
}

// Shares is the hypercube share vector p over a fixed attribute list.
type Shares struct {
	Attrs []string
	P     []int
}

// NumCubes returns Π p_i.
func (s Shares) NumCubes() int {
	n := 1
	for _, p := range s.P {
		n *= p
	}
	return n
}

// AttrPos returns the index of attribute a, or -1.
func (s Shares) AttrPos(a string) int {
	for i, x := range s.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// Dup returns the replication factor of a relation: Π_{A ∉ attrs(R)} p_A —
// the number of cubes each tuple is sent to.
func (s Shares) Dup(relAttrs []string) int64 {
	d := int64(1)
	for i, a := range s.Attrs {
		if !containsAttr(relAttrs, a) {
			d *= int64(s.P[i])
		}
	}
	return d
}

// Frac returns the expected fraction of a relation landing on one cube:
// 1 / Π_{A ∈ attrs(R)} p_A.
func (s Shares) Frac(relAttrs []string) float64 {
	f := 1.0
	for i, a := range s.Attrs {
		if containsAttr(relAttrs, a) {
			f /= float64(s.P[i])
		}
	}
	return f
}

// String renders the share vector.
func (s Shares) String() string {
	return fmt.Sprintf("p=%v over %v (%d cubes)", s.P, s.Attrs, s.NumCubes())
}

func containsAttr(attrs []string, a string) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}

// TotalComm returns Σ_R |R| · dup(R, p): the total tuple copies shuffled —
// the numerator of costC in §III-B.
func TotalComm(rels []RelInfo, s Shares) int64 {
	var t int64
	for _, r := range rels {
		t += r.Size * s.Dup(r.Attrs)
	}
	return t
}

// LoadPerCube returns Σ_R |R| · frac(R, p): the expected tuple count one
// cube receives (the memory constraint's left-hand side, per cube).
func LoadPerCube(rels []RelInfo, s Shares) float64 {
	t := 0.0
	for _, r := range rels {
		t += float64(r.Size) * s.Frac(r.Attrs)
	}
	return t
}

// Config bounds the share search.
type Config struct {
	// Attrs is the global attribute list (every relation attr must appear).
	Attrs []string
	// NumServers is N*.
	NumServers int
	// MaxCubes caps Π p (default NumServers: one cube per server). Values
	// above NumServers assign multiple cubes per server, the paper's skew
	// mitigation.
	MaxCubes int
	// MinCubes floors Π p (default NumServers, so every server works).
	MinCubes int
	// MemoryPerServer bounds expected tuples per server (0 = unbounded).
	MemoryPerServer int64
}

func (c *Config) normalize() {
	if c.NumServers <= 0 {
		c.NumServers = 1
	}
	if c.MaxCubes <= 0 {
		c.MaxCubes = c.NumServers
	}
	if c.MinCubes <= 0 {
		c.MinCubes = c.NumServers
	}
	if c.MinCubes > c.MaxCubes {
		c.MinCubes = c.MaxCubes
	}
}

// Optimize picks the share vector minimizing total communication subject to
// the cube-count window and memory bound (Eq. 3). Ties break toward lower
// per-server load, then lexicographically smaller p. When the memory bound
// is unsatisfiable it is dropped and the minimum-load vector is returned
// (the run will be reported as memory-stressed by the engine, mirroring the
// paper's OOM failures).
func Optimize(rels []RelInfo, cfg Config) (Shares, error) {
	cfg.normalize()
	n := len(cfg.Attrs)
	if n == 0 {
		return Shares{}, fmt.Errorf("hcube: no attributes")
	}
	for _, r := range rels {
		for _, a := range r.Attrs {
			if !containsAttr(cfg.Attrs, a) {
				return Shares{}, fmt.Errorf("hcube: relation %s attr %q not in global attrs %v", r.Name, a, cfg.Attrs)
			}
		}
	}
	type cand struct {
		s        Shares
		comm     int64
		load     float64
		feasible bool
	}
	var best, bestAny *cand
	better := func(a, b *cand) bool {
		if b == nil {
			return true
		}
		if a.comm != b.comm {
			return a.comm < b.comm
		}
		if math.Abs(a.load-b.load) > 1e-9 {
			return a.load < b.load
		}
		for i := range a.s.P {
			if a.s.P[i] != b.s.P[i] {
				return a.s.P[i] < b.s.P[i]
			}
		}
		return false
	}
	cubesPerServer := func(total int) float64 {
		return math.Ceil(float64(total) / float64(cfg.NumServers))
	}
	p := make([]int, n)
	var rec func(i, prod int)
	rec = func(i, prod int) {
		if i == n {
			if prod < cfg.MinCubes {
				return
			}
			s := Shares{Attrs: cfg.Attrs, P: append([]int(nil), p...)}
			c := &cand{s: s, comm: TotalComm(rels, s)}
			c.load = LoadPerCube(rels, s) * cubesPerServer(prod)
			c.feasible = cfg.MemoryPerServer <= 0 || c.load <= float64(cfg.MemoryPerServer)
			if c.feasible && better(c, best) {
				best = c
			}
			if bestAny == nil || c.load < bestAny.load-1e-9 || (math.Abs(c.load-bestAny.load) <= 1e-9 && better(c, bestAny)) {
				bestAny = c
			}
			return
		}
		for v := 1; prod*v <= cfg.MaxCubes; v++ {
			p[i] = v
			rec(i+1, prod*v)
		}
	}
	rec(0, 1)
	if best != nil {
		return best.s, nil
	}
	if bestAny != nil {
		return bestAny.s, nil
	}
	return Shares{}, fmt.Errorf("hcube: no share vector with %d..%d cubes over %d attrs",
		cfg.MinCubes, cfg.MaxCubes, n)
}

// --- Coordinate math ---

// Strides returns the mixed-radix strides of the share vector: cube index
// = Σ coord_i × stride_i.
func (s Shares) Strides() []int {
	st := make([]int, len(s.P))
	acc := 1
	for i := range s.P {
		st[i] = acc
		acc *= s.P[i]
	}
	return st
}

// CubeOf returns the cube index of a fully-bound output tuple (values in
// s.Attrs order): the unique cube that reports this output tuple.
func (s Shares) CubeOf(binding []relation.Value) int {
	idx := 0
	stride := 1
	for i, pv := range s.P {
		idx += relation.HashValue(binding[i], pv) * stride
		stride *= pv
	}
	return idx
}

// CoordsOf decodes a cube index into per-attribute coordinates.
func (s Shares) CoordsOf(cube int) []int {
	out := make([]int, len(s.P))
	for i, pv := range s.P {
		out[i] = cube % pv
		cube /= pv
	}
	return out
}

// RelPositions returns the positions in s.Attrs of a relation's attributes.
func (s Shares) RelPositions(relAttrs []string) []int {
	out := make([]int, len(relAttrs))
	for i, a := range relAttrs {
		p := s.AttrPos(a)
		if p < 0 {
			panic(fmt.Sprintf("hcube: attr %q not in shares %v", a, s.Attrs))
		}
		out[i] = p
	}
	return out
}

// DestCubes returns the cube indexes a tuple of a relation is replicated
// to: coordinates fixed to the tuple's hashes on the relation's attributes,
// free on all others.
func (s Shares) DestCubes(relPos []int, t relation.Tuple) []int {
	fixed := make(map[int]int, len(relPos))
	for i, p := range relPos {
		fixed[p] = relation.HashValue(t[i], s.P[p])
	}
	return s.matching(fixed)
}

// BlockSig returns the block signature of a tuple: the mixed-radix index of
// its hash coordinates over the relation's own attributes. Tuples sharing a
// signature form one block (§V's Pull/Merge grouping).
func (s Shares) BlockSig(relPos []int, t relation.Tuple) int {
	sig := 0
	stride := 1
	for i, p := range relPos {
		sig += relation.HashValue(t[i], s.P[p]) * stride
		stride *= s.P[p]
	}
	return sig
}

// NumBlocks returns the number of distinct block signatures of a relation:
// Π_{A ∈ attrs(R)} p_A.
func (s Shares) NumBlocks(relPos []int) int {
	n := 1
	for _, p := range relPos {
		n *= s.P[p]
	}
	return n
}

// BlockCubes returns the cubes matching a block signature.
func (s Shares) BlockCubes(relPos []int, sig int) []int {
	fixed := make(map[int]int, len(relPos))
	for _, p := range relPos {
		fixed[p] = sig % s.P[p]
		sig /= s.P[p]
	}
	return s.matching(fixed)
}

// matching enumerates cube indexes whose coordinates agree with fixed.
func (s Shares) matching(fixed map[int]int) []int {
	free := make([]int, 0, len(s.P))
	for i := range s.P {
		if _, ok := fixed[i]; !ok {
			free = append(free, i)
		}
	}
	total := 1
	for _, f := range free {
		total *= s.P[f]
	}
	strides := s.Strides()
	base := 0
	for p, c := range fixed {
		base += c * strides[p]
	}
	out := make([]int, 0, total)
	coords := make([]int, len(free))
	for {
		idx := base
		for i, f := range free {
			idx += coords[i] * strides[f]
		}
		out = append(out, idx)
		// Odometer increment.
		i := 0
		for ; i < len(free); i++ {
			coords[i]++
			if coords[i] < s.P[free[i]] {
				break
			}
			coords[i] = 0
		}
		if i == len(free) {
			break
		}
	}
	sort.Ints(out)
	return out
}

// ServerOfCube maps cube indexes to servers round-robin (the paper assigns
// one or more hypercubes per worker core).
func ServerOfCube(cube, numServers int) int { return cube % numServers }

// CubesOfServer lists the cubes assigned to one server.
func CubesOfServer(server, numCubes, numServers int) []int {
	var out []int
	for c := server; c < numCubes; c += numServers {
		out = append(out, c)
	}
	return out
}
