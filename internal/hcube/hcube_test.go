package hcube

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"adj/internal/cluster"
	"adj/internal/hypergraph"
	"adj/internal/leapfrog"
	"adj/internal/relation"
	"adj/internal/testutil"
	"adj/internal/trie"
)

func TestSharesBasics(t *testing.T) {
	s := Shares{Attrs: []string{"a", "b", "c", "d", "e"}, P: []int{1, 2, 2, 1, 1}}
	if s.NumCubes() != 4 {
		t.Fatalf("cubes=%d", s.NumCubes())
	}
	// R3(c,d): dup = p_a * p_b * p_e = 2.
	if d := s.Dup([]string{"c", "d"}); d != 2 {
		t.Fatalf("dup=%d want 2", d)
	}
	if f := s.Frac([]string{"c", "d"}); f != 0.5 {
		t.Fatalf("frac=%v want 0.5", f)
	}
	if f := s.Frac([]string{"b", "c"}); f != 0.25 {
		t.Fatalf("frac=%v want 0.25", f)
	}
}

func TestCoordsRoundtrip(t *testing.T) {
	s := Shares{Attrs: []string{"a", "b", "c"}, P: []int{2, 3, 2}}
	strides := s.Strides()
	if !reflect.DeepEqual(strides, []int{1, 2, 6}) {
		t.Fatalf("strides=%v", strides)
	}
	for cube := 0; cube < s.NumCubes(); cube++ {
		coords := s.CoordsOf(cube)
		idx := 0
		for i, c := range coords {
			idx += c * strides[i]
		}
		if idx != cube {
			t.Fatalf("roundtrip %d -> %v -> %d", cube, coords, idx)
		}
	}
}

// Every tuple must reach exactly dup(R) cubes, and those cubes' coordinates
// must match the tuple's hashes on the relation's attributes.
func TestDestCubesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		attrs := []string{"a", "b", "c", "d"}
		p := []int{1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3), 1 + rng.Intn(3)}
		s := Shares{Attrs: attrs, P: p}
		relAttrs := []string{"b", "d"}
		relPos := s.RelPositions(relAttrs)
		tuple := []relation.Value{rng.Int63n(100), rng.Int63n(100)}
		cubes := s.DestCubes(relPos, tuple)
		if int64(len(cubes)) != s.Dup(relAttrs) {
			return false
		}
		for _, cube := range cubes {
			coords := s.CoordsOf(cube)
			if coords[1] != relation.HashValue(tuple[0], p[1]) {
				return false
			}
			if coords[3] != relation.HashValue(tuple[1], p[3]) {
				return false
			}
		}
		// No duplicates.
		seen := map[int]bool{}
		for _, c := range cubes {
			if seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSigConsistentWithDestCubes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Shares{Attrs: []string{"a", "b", "c"}, P: []int{2, 2, 2}}
	relPos := s.RelPositions([]string{"a", "c"})
	for i := 0; i < 100; i++ {
		tu := []relation.Value{rng.Int63n(50), rng.Int63n(50)}
		sig := s.BlockSig(relPos, tu)
		if sig < 0 || sig >= s.NumBlocks(relPos) {
			t.Fatalf("sig %d out of range", sig)
		}
		a := s.DestCubes(relPos, tu)
		b := s.BlockCubes(relPos, sig)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("DestCubes=%v BlockCubes=%v", a, b)
		}
	}
}

func TestOptimizeUsesAllServers(t *testing.T) {
	q := hypergraph.Q1()
	rels := []RelInfo{
		{Name: "R1", Attrs: []string{"a", "b"}, Size: 1000},
		{Name: "R2", Attrs: []string{"b", "c"}, Size: 1000},
		{Name: "R3", Attrs: []string{"a", "c"}, Size: 1000},
	}
	s, err := Optimize(rels, Config{Attrs: q.Attrs(), NumServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCubes() != 8 {
		t.Fatalf("cubes=%d want 8 (MinCubes defaults to N)", s.NumCubes())
	}
	// Triangle with equal sizes: balanced shares (2,2,2) minimize comm
	// (each relation duplicated by the share of its missing attribute).
	if !reflect.DeepEqual(s.P, []int{2, 2, 2}) {
		t.Fatalf("p=%v want [2 2 2]", s.P)
	}
}

func TestOptimizeSkewedSizes(t *testing.T) {
	// One giant relation: its missing attribute should get share 1 so the
	// giant is never replicated.
	attrs := []string{"a", "b", "c"}
	rels := []RelInfo{
		{Name: "BIG", Attrs: []string{"a", "b"}, Size: 1_000_000},
		{Name: "S1", Attrs: []string{"b", "c"}, Size: 10},
		{Name: "S2", Attrs: []string{"a", "c"}, Size: 10},
	}
	s, err := Optimize(rels, Config{Attrs: attrs, NumServers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.P[2] != 1 {
		t.Fatalf("p=%v: share of c should be 1 to avoid replicating BIG", s.P)
	}
	if s.P[0]*s.P[1] != 4 {
		t.Fatalf("p=%v: a,b shares should multiply to 4", s.P)
	}
}

func TestOptimizeMemoryConstraint(t *testing.T) {
	attrs := []string{"a", "b"}
	rels := []RelInfo{{Name: "R", Attrs: []string{"a", "b"}, Size: 1000}}
	// With 4 servers and memory for only 300 tuples each, p=(2,2) is needed
	// (frac 1/4 → 250 ≤ 300); p=(4,1) also works. Either way load must fit.
	s, err := Optimize(rels, Config{Attrs: attrs, NumServers: 4, MemoryPerServer: 300})
	if err != nil {
		t.Fatal(err)
	}
	if load := LoadPerCube(rels, s); load > 300 {
		t.Fatalf("p=%v load=%v exceeds memory", s.P, load)
	}
}

func TestOptimizeInfeasibleMemoryFallsBack(t *testing.T) {
	attrs := []string{"a"}
	rels := []RelInfo{{Name: "R", Attrs: []string{"a"}, Size: 1000}}
	s, err := Optimize(rels, Config{Attrs: attrs, NumServers: 2, MemoryPerServer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Falls back to min-load vector (max split).
	if s.P[0] != 2 {
		t.Fatalf("p=%v want max split", s.P)
	}
}

func TestCubesOfServer(t *testing.T) {
	got := CubesOfServer(1, 7, 3)
	if !reflect.DeepEqual(got, []int{1, 4}) {
		t.Fatalf("cubes=%v", got)
	}
	total := 0
	for sv := 0; sv < 3; sv++ {
		total += len(CubesOfServer(sv, 7, 3))
	}
	if total != 7 {
		t.Fatalf("cube assignment lost cubes: %d", total)
	}
}

// The big HCube correctness property: for a random query/database and
// random share vector, running Leapfrog per cube over shuffled data and
// summing per-cube results (restricted to outputs whose full-tuple cube is
// the local cube) equals the sequential join. Each output is produced by
// exactly one cube, so plain summation must match.
func TestShuffleJoinEqualsSequential(t *testing.T) {
	for _, kind := range []Kind{Push, Pull, Merge} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				q, rels := testutil.RandQueryInstance(rng, 3, 4, 30, 6)
				order := q.Attrs()
				n := 1 + rng.Intn(5)
				c := cluster.New(cluster.Config{N: n})
				defer c.Close()
				c.LoadDatabase(rels)
				info := InfoOf(rels)
				shares, err := Optimize(info, Config{Attrs: order, NumServers: n})
				if err != nil {
					t.Logf("optimize: %v", err)
					return false
				}
				plan := Plan{Shares: shares, Rels: info, Kind: kind, TrieOrder: order}
				if err := Run(c, "shuffle", plan); err != nil {
					t.Logf("shuffle: %v", err)
					return false
				}
				var total int64
				for _, w := range c.Workers {
					for cube := range mergeCubeKeys(w) {
						tries, err := cubeTries(w, cube, info, order)
						if err != nil {
							t.Logf("cubeTries: %v", err)
							return false
						}
						st, err := leapfrog.Join(tries, order, leapfrog.Options{})
						if err != nil {
							t.Logf("join: %v", err)
							return false
						}
						total += st.Results
					}
				}
				want := relation.NaiveJoin(rels, order).Len()
				if int(total) != want {
					t.Logf("seed=%d n=%d kind=%v: got %d want %d (shares %v)", seed, n, kind, total, want, shares)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// mergeCubeKeys returns the union of cube ids present on a worker —
// block-cache bindings plus the legacy per-cube maps.
func mergeCubeKeys(w *cluster.Worker) map[int]bool {
	out := make(map[int]bool)
	for _, c := range w.Blocks.Cubes() {
		out[c] = true
	}
	for c := range w.Cubes {
		out[c] = true
	}
	return out
}

// cubeTries assembles tries for one cube: the block-trie cache first (the
// runtime path), then the legacy per-cube stores. Relations with no local
// tuples for the cube are empty.
func cubeTries(w *cluster.Worker, cube int, info []RelInfo, order []string) ([]*trie.Trie, error) {
	pos := make(map[string]int, len(order))
	for i, a := range order {
		pos[a] = i
	}
	var out []*trie.Trie
	for _, ri := range info {
		if tr, ok := w.Blocks.CubeTrie(cube, ri.Name); ok && tr != nil {
			out = append(out, tr)
			continue
		}
		var frag *relation.Relation
		if db, ok := w.Cubes[cube]; ok {
			frag = db[ri.Name]
		}
		if frag == nil {
			frag = relation.New(ri.Name, ri.Attrs...)
		}
		attrs := append([]string(nil), ri.Attrs...)
		sort.Slice(attrs, func(x, y int) bool { return pos[attrs[x]] < pos[attrs[y]] })
		out = append(out, trie.Build(frag, attrs))
	}
	return out, nil
}

// Push, Pull and Merge must deliver identical cube contents.
func TestShuffleKindsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	edges := testutil.RandEdges(rng, "E", 400, 30)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	info := InfoOf(rels)

	contents := make([]map[string]string, 3)
	for ki, kind := range []Kind{Push, Pull, Merge} {
		c := cluster.New(cluster.Config{N: 4})
		c.LoadDatabase(rels)
		shares, err := Optimize(info, Config{Attrs: order, NumServers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := Run(c, "shuffle", Plan{Shares: shares, Rels: info, Kind: kind, TrieOrder: order}); err != nil {
			t.Fatal(err)
		}
		snap := make(map[string]string)
		for _, w := range c.Workers {
			for cube := range mergeCubeKeys(w) {
				tries, _ := cubeTries(w, cube, info, order)
				for i, tr := range tries {
					key := info[i].Name + "/" + string(rune('0'+cube))
					snap[key] = tr.ToRelation("x").SortDedup().String()
				}
			}
		}
		contents[ki] = snap
		c.Close()
	}
	if !reflect.DeepEqual(contents[0], contents[1]) {
		t.Error("push vs pull cube contents differ")
	}
	if !reflect.DeepEqual(contents[1], contents[2]) {
		t.Error("pull vs merge cube contents differ")
	}
}

// Pull must move fewer messages than Push; Merge fewer bytes than Pull on
// prefix-heavy data.
func TestShuffleCostOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := testutil.RandEdges(rng, "E", 3000, 60)
	q := hypergraph.Q1()
	rels := q.BindGraph(edges)
	order := q.Attrs()
	info := InfoOf(rels)
	shares, err := Optimize(info, Config{Attrs: order, NumServers: 8})
	if err != nil {
		t.Fatal(err)
	}
	msgs := map[Kind]int64{}
	for _, kind := range []Kind{Push, Pull, Merge} {
		c := cluster.New(cluster.Config{N: 8})
		c.LoadDatabase(rels)
		if err := Run(c, "sh", Plan{Shares: shares, Rels: info, Kind: kind, TrieOrder: order}); err != nil {
			t.Fatal(err)
		}
		msgs[kind] = c.Metrics.Phase("sh").Messages
		c.Close()
	}
	if msgs[Pull] >= msgs[Push] {
		t.Fatalf("pull messages %d should be < push %d", msgs[Pull], msgs[Push])
	}
	if msgs[Merge] != msgs[Pull] {
		t.Fatalf("merge messages %d should equal pull %d", msgs[Merge], msgs[Pull])
	}
}

// TestShuffleColumnarFragmentsMatchRowMajor pivots every worker fragment
// to the columnar layout before shuffling and asserts byte-identical
// envelopes and identical cube contents versus row-major fragments. It
// covers the per-column signature accumulation in groupBlocks, the
// columnar block sort, and the columnar encoder — the layout must never
// change what goes on the wire.
func TestShuffleColumnarFragmentsMatchRowMajor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, kind := range []Kind{Push, Pull, Merge} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for iter := 0; iter < 8; iter++ {
				q, rels := testutil.RandQueryInstance(rng, 3, 4, 40, 8)
				order := q.Attrs()
				info := InfoOf(rels)
				n := 1 + rng.Intn(4)
				shares, err := Optimize(info, Config{Attrs: order, NumServers: n})
				if err != nil {
					t.Fatal(err)
				}
				plan := Plan{Shares: shares, Rels: info, Kind: kind, TrieOrder: order}

				snap := func(pivot bool) (map[string]string, int64) {
					c := cluster.New(cluster.Config{N: n, Sequential: true})
					defer c.Close()
					c.LoadDatabase(rels)
					if pivot {
						for _, w := range c.Workers {
							for _, frag := range w.Rels {
								frag.PivotToColumns()
							}
						}
					}
					if err := Run(c, "shuffle", plan); err != nil {
						t.Fatal(err)
					}
					out := make(map[string]string)
					var bytes int64
					for _, p := range c.Metrics.Phases() {
						bytes += p.BytesSent
					}
					for _, w := range c.Workers {
						for cube := range mergeCubeKeys(w) {
							tries, _ := cubeTries(w, cube, info, order)
							for i, tr := range tries {
								key := fmt.Sprintf("%s/%d", info[i].Name, cube)
								out[key] = tr.ToRelation("x").SortDedup().String()
							}
						}
					}
					return out, bytes
				}

				rowSnap, rowBytes := snap(false)
				colSnap, colBytes := snap(true)
				if rowBytes != colBytes {
					t.Fatalf("iter %d: shuffled bytes differ between layouts: %d vs %d", iter, rowBytes, colBytes)
				}
				if !reflect.DeepEqual(rowSnap, colSnap) {
					t.Fatalf("iter %d: cube contents differ between row-major and columnar fragments", iter)
				}
			}
		})
	}
}
