package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// streamSettle waits for the goroutine count to return to (near) baseline —
// the leak check after exercising the streaming machinery.
func streamSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// chunkTag renders one received chunk as a comparable line.
func chunkTag(e Envelope) string {
	return fmt.Sprintf("%d|%s|%d|%s", e.From, e.Key, e.Chunk, string(e.Payload))
}

// runStreamCollect runs one StreamExchange in which every worker sends
// `chunks` chunks to every destination and returns, per worker, the sorted
// received chunk tags.
func runStreamCollect(t *testing.T, c *Cluster, phase string, chunks int) [][]string {
	t.Helper()
	got := make([][]string, c.N)
	var mu sync.Mutex
	err := c.StreamExchange(phase,
		func(w *Worker, s StreamSender) error {
			for d := 0; d < c.N; d++ {
				for k := 0; k < chunks; k++ {
					weight := int64(0)
					if k > 0 {
						weight = WeightContinuation
					}
					e := Envelope{
						To:      d,
						Key:     fmt.Sprintf("blk-%d-%d", w.ID, d),
						Chunk:   int32(k),
						Payload: []byte(fmt.Sprintf("p%d.%d.%d", w.ID, d, k)),
						Tuples:  1,
						Weight:  weight,
					}
					if err := s.Send(e); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(w *Worker, r StreamReceiver) error {
			var lines []string
			for {
				e, ok, err := r.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				lines = append(lines, chunkTag(e))
			}
			sort.Strings(lines)
			mu.Lock()
			got[w.ID] = lines
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatalf("StreamExchange: %v", err)
	}
	return got
}

// TestStreamExchangeLocalMatchesMaterialized runs the same chunked exchange
// through the parallel (streamed) and sequential (materialized shim) paths
// and requires identical delivered content; the streamed run must also
// report wire-level chunk counters while the shim reports none.
func TestStreamExchangeLocalMatchesMaterialized(t *testing.T) {
	const n, chunks = 4, 7
	par := New(Config{N: n})
	defer par.Close()
	seq := New(Config{N: n, Sequential: true})
	defer seq.Close()

	gotPar := runStreamCollect(t, par, "x", chunks)
	gotSeq := runStreamCollect(t, seq, "x", chunks)
	for d := 0; d < n; d++ {
		if len(gotPar[d]) != n*chunks {
			t.Fatalf("worker %d received %d chunks, want %d", d, len(gotPar[d]), n*chunks)
		}
		if strings.Join(gotPar[d], "\n") != strings.Join(gotSeq[d], "\n") {
			t.Fatalf("worker %d: streamed and materialized deliveries differ", d)
		}
	}

	pmPar := par.Metrics.Phase("x")
	if pmPar.StreamChunks != int64(n*n*chunks) {
		t.Fatalf("streamed StreamChunks = %d, want %d", pmPar.StreamChunks, n*n*chunks)
	}
	if pmPar.InflightPeakChunks <= 0 || pmPar.InflightPeakChunks > DefaultStreamWindow {
		t.Fatalf("InflightPeakChunks = %d, want in (0, %d]", pmPar.InflightPeakChunks, DefaultStreamWindow)
	}
	pmSeq := seq.Metrics.Phase("x")
	if pmSeq.StreamChunks != 0 {
		t.Fatalf("materialized run reported %d stream chunks", pmSeq.StreamChunks)
	}
	// Identical logical counters either way: chunked weights preserve the
	// one-message-per-block accounting.
	if pmPar.Messages != pmSeq.Messages || pmPar.TuplesSent != pmSeq.TuplesSent || pmPar.BytesSent != pmSeq.BytesSent {
		t.Fatalf("counter drift: streamed (msgs=%d tuples=%d bytes=%d) vs materialized (msgs=%d tuples=%d bytes=%d)",
			pmPar.Messages, pmPar.TuplesSent, pmPar.BytesSent,
			pmSeq.Messages, pmSeq.TuplesSent, pmSeq.BytesSent)
	}
	if pmPar.Messages != int64(n*n) {
		t.Fatalf("Messages = %d, want %d (one per logical block)", pmPar.Messages, n*n)
	}
}

// TestStreamBackpressureWindowBounded pushes far more chunks than the
// window at a deliberately slow consumer: the in-flight high-water must
// never exceed the window, and every chunk must still arrive.
func TestStreamBackpressureWindowBounded(t *testing.T) {
	const window, total = 4, 100
	tr := NewLocalTransport(2)
	es, err := tr.OpenExchange(context.Background(), "bp", window)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()

	done := make(chan error, 1)
	go func() {
		snd := es.Sender(0)
		for k := 0; k < total; k++ {
			if err := snd.Send(Envelope{From: 0, To: 1, Key: "k", Chunk: int32(k), Payload: []byte{byte(k)}}); err != nil {
				done <- err
				return
			}
		}
		done <- snd.Close()
	}()
	go es.Sender(1).Close()

	rcv := es.Receiver(1)
	var got int
	for {
		_, ok, err := rcv.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if !ok {
			break
		}
		got++
		if got%10 == 0 {
			time.Sleep(time.Millisecond) // let the sender run ahead into the window
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}
	if got != total {
		t.Fatalf("received %d chunks, want %d", got, total)
	}
	if s := es.Stats(); s.Chunks != total || s.InflightPeak > window {
		t.Fatalf("stats = %+v, want %d chunks with in-flight peak <= %d", s, total, window)
	}
}

// TestStreamConsumerEarlyReturnDrains has consumers stop reading after one
// chunk while senders push far past the window: the cluster must drain the
// leftovers so no sender deadlocks on backpressure.
func TestStreamConsumerEarlyReturnDrains(t *testing.T) {
	const n = 3
	c := New(Config{N: n})
	defer c.Close()
	err := c.StreamExchange("early",
		func(w *Worker, s StreamSender) error {
			for d := 0; d < n; d++ {
				for k := 0; k < 3*DefaultStreamWindow; k++ {
					if err := s.Send(Envelope{To: d, Key: "k", Chunk: int32(k), Payload: []byte{1}}); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(w *Worker, r StreamReceiver) error {
			_, _, err := r.Recv()
			return err // return after one chunk; the runtime must drain the rest
		})
	if err != nil {
		t.Fatalf("StreamExchange: %v", err)
	}
}

// TestStreamConsumerErrorAttributed fails one consumer mid-stream: the
// phase error must name the recv side and the failing worker, and peer
// errors provoked by the abort must not displace it.
func TestStreamConsumerErrorAttributed(t *testing.T) {
	c := New(Config{N: 3})
	defer c.Close()
	boom := errors.New("boom")
	err := c.StreamExchange("x",
		func(w *Worker, s StreamSender) error {
			for d := 0; d < c.N; d++ {
				for k := 0; k < 2*DefaultStreamWindow; k++ {
					if err := s.Send(Envelope{To: d, Key: "k", Chunk: int32(k), Payload: []byte{9}}); err != nil {
						return err
					}
				}
			}
			return nil
		},
		func(w *Worker, r StreamReceiver) error {
			if w.ID == 1 {
				return boom
			}
			for {
				if _, ok, err := r.Recv(); err != nil || !ok {
					return err
				}
			}
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if want := "phase x/recv worker 1:"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not carry %q", err, want)
	}
}

// TestStreamExchangeContextCancelMidStream cancels the run context while
// chunks are in flight: the exchange must unwind promptly with the parent
// context's error at chunk granularity (not after the stream completes).
func TestStreamExchangeContextCancelMidStream(t *testing.T) {
	c := New(Config{N: 2})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c.SetContext(ctx)

	var delivered atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- c.StreamExchange("cancel",
			func(w *Worker, s StreamSender) error {
				for k := 0; ; k++ {
					if err := s.Send(Envelope{To: (w.ID + 1) % 2, Key: "k", Chunk: int32(k), Payload: make([]byte, 64)}); err != nil {
						return err
					}
				}
			},
			func(w *Worker, r StreamReceiver) error {
				for {
					if _, ok, err := r.Recv(); err != nil || !ok {
						return err
					}
					delivered.Add(1)
				}
			})
	}()
	for delivered.Load() < 8 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not unwind the stream")
	}
}

// TestTCPStreamConcurrentExchanges interleaves many streaming exchanges
// over one TCP transport's persistent connections: every exchange must
// receive exactly its own chunks (the exchange-sequence demux), and the
// dial count stays bounded by n² no matter how many exchanges ran.
func TestTCPStreamConcurrentExchanges(t *testing.T) {
	const n, rounds, concurrent = 3, 4, 6
	baseline := runtime.NumGoroutine()
	tr, err := NewTCPTransport(n)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, concurrent)
		for g := 0; g < concurrent; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				tag := fmt.Sprintf("r%d.g%d", round, g)
				bySender := make([][]Envelope, n)
				for s := 0; s < n; s++ {
					for d := 0; d < n; d++ {
						for k := 0; k < 5; k++ {
							bySender[s] = append(bySender[s], Envelope{
								From: s, To: d, Key: tag, Chunk: int32(k),
								Payload: []byte(fmt.Sprintf("%s|%d>%d#%d", tag, s, d, k)),
							})
						}
					}
				}
				out, err := tr.RouteExchange(context.Background(), tag, bySender)
				if err != nil {
					errs[g] = err
					return
				}
				for d := 0; d < n; d++ {
					if len(out[d]) != n*5 {
						errs[g] = fmt.Errorf("%s: worker %d got %d envelopes, want %d", tag, d, len(out[d]), n*5)
						return
					}
					for _, e := range out[d] {
						if e.Key != tag {
							errs[g] = fmt.Errorf("%s: cross-exchange leak: got key %q", tag, e.Key)
							return
						}
						want := fmt.Sprintf("%s|%d>%d#%d", tag, e.From, d, e.Chunk)
						if string(e.Payload) != want {
							errs[g] = fmt.Errorf("%s: payload %q, want %q", tag, e.Payload, want)
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	if dials := tr.DialStats(); dials > n*n {
		t.Fatalf("%d dials across %d exchanges; persistent connections should bound this by n²=%d",
			dials, rounds*concurrent, n*n)
	}
	if retries := tr.RetryStats(); retries != 0 {
		t.Fatalf("healthy run performed %d retries", retries)
	}
	tr.Close()
	streamSettle(t, baseline)
}

// TestTCPStreamBackpressure verifies the window bound holds across the real
// wire: a small window against a slow receiver must cap the in-flight
// high-water while every chunk still lands.
func TestTCPStreamBackpressure(t *testing.T) {
	const window, total = 4, 200
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	es, err := tr.OpenExchange(context.Background(), "bp", window)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		snd := es.Sender(0)
		for k := 0; k < total; k++ {
			if snd.Send(Envelope{From: 0, To: 1, Key: "k", Chunk: int32(k), Payload: make([]byte, 1024)}) != nil {
				return
			}
		}
		snd.Close()
	}()
	go es.Sender(1).Close()

	rcv := es.Receiver(1)
	var got int
	for {
		_, ok, err := rcv.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if !ok {
			break
		}
		got++
		if got%20 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if got != total {
		t.Fatalf("received %d chunks, want %d", got, total)
	}
	if s := es.Stats(); s.InflightPeak > window {
		t.Fatalf("in-flight peak %d exceeded window %d", s.InflightPeak, window)
	}
	es.Close()
}

// TestTCPStreamMidStreamCancel cancels an exchange while a sender is
// blocked on backpressure: both halves must unwind with the context error
// and the transport must serve the next exchange cleanly.
func TestTCPStreamMidStreamCancel(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	es, err := tr.OpenExchange(ctx, "cancel", 2)
	if err != nil {
		t.Fatal(err)
	}
	sendErr := make(chan error, 1)
	go func() {
		snd := es.Sender(0)
		for k := 0; ; k++ {
			if err := snd.Send(Envelope{From: 0, To: 1, Key: "k", Chunk: int32(k), Payload: make([]byte, 512)}); err != nil {
				sendErr <- err
				return
			}
		}
	}()

	rcv := es.Receiver(1)
	for i := 0; i < 3; i++ {
		if _, ok, err := rcv.Recv(); err != nil || !ok {
			t.Fatalf("warm-up Recv %d failed: ok=%v err=%v", i, ok, err)
		}
	}
	cancel()
	var got error
	select {
	case got = <-sendErr:
	case <-time.After(30 * time.Second):
		t.Fatal("blocked sender ignored cancellation")
	}
	// The blocked sender surfaces either the abort cause directly or the
	// typed write error from its killed connection — both acceptable; the
	// receiver below must see the cause itself.
	if !errors.Is(got, context.Canceled) && !errors.Is(got, ErrTransport) {
		t.Fatalf("sender error = %v, want context.Canceled or ErrTransport", got)
	}
	if _, _, err := rcv.Recv(); !errors.Is(err, context.Canceled) {
		t.Fatalf("receiver error = %v, want context.Canceled", err)
	}
	es.Close()

	// The aborted exchange must not poison the next one.
	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "next", Payload: []byte("ok")}}
	out, err := tr.RouteExchange(context.Background(), "next", bySender)
	if err != nil {
		t.Fatalf("follow-up exchange failed: %v", err)
	}
	if len(out[1]) != 1 || out[1][0].Key != "next" {
		t.Fatalf("follow-up delivered %+v", out[1])
	}
}

// TestTCPStreamExchangeSequentialReuse runs many sequential exchanges and
// asserts dial amortization: after the first exchange warms the
// connections, later exchanges dial nothing.
func TestTCPStreamExchangeSequentialReuse(t *testing.T) {
	const n = 2
	tr, err := NewTCPTransport(n)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	run := func() {
		t.Helper()
		bySender := make([][]Envelope, n)
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				bySender[s] = append(bySender[s], Envelope{From: s, To: d, Key: "k", Payload: []byte{1, 2}})
			}
		}
		if _, err := tr.Route(bySender); err != nil {
			t.Fatalf("route: %v", err)
		}
	}
	run()
	warm := tr.DialStats()
	if warm == 0 || warm > n*n {
		t.Fatalf("first exchange dialed %d connections, want in (0, %d]", warm, n*n)
	}
	for i := 0; i < 10; i++ {
		run()
	}
	if after := tr.DialStats(); after != warm {
		t.Fatalf("warm exchanges dialed %d new connections (persistent reuse broken)", after-warm)
	}
}
