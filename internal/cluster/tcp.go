package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPTransport routes envelopes over real loopback TCP sockets. It exists
// to keep the serialization and wire path honest: integration tests run
// the full join engines over it and must produce byte-identical results to
// the local transport.
//
// Connection discipline (the serving-scale contract):
//
//   - One long-lived connection per (sender, destination) pair per
//     transport lifetime: lazily dialed on first use, reused by every
//     subsequent exchange, and healed (re-dialed on next use) after an
//     error tears it down. Dials retry with capped exponential backoff
//     plus seeded jitter up to RetryPolicy.MaxAttempts; exhaustion aborts
//     the exchange with a typed *TransportError.
//   - Exchange frames are multiplexed over the shared connections by the
//     transport-local exchange sequence number. The receive side demuxes
//     each frame into the addressed exchange's bounded per-destination
//     chunk queue (blocking the connection reader when the queue is full,
//     so backpressure propagates to the sender through TCP flow control).
//     Frames addressed to an exchange that is not registered — one that
//     already completed or aborted — are discarded silently; an active
//     exchange always registers before its senders emit.
//   - A write failure mid-stream cannot be retried: earlier chunks of the
//     stream may already have been consumed by the receiver, so the
//     transport tears the connection down and aborts the exchange with a
//     typed transient *TransportError. Recovery is the caller's re-run
//     (session retry), which finds the connection healed by lazy redial.
//   - OpenExchange observes its context: a deadline becomes a per-write
//     deadline and bounds dial attempts; in-flight cancellation aborts the
//     exchange at chunk granularity, returning the context's error from
//     every blocked Send/Recv.
//   - Frame-level protocol violations (implausible lengths, bad
//     addressing — a corrupt stream) abort the addressed exchange with a
//     typed error and close the connection; retrying cannot repair
//     corrupt bytes.
//
// Wire layout (little-endian):
//
//	conn header: u32 magic | u32 sender        (once per connection)
//	frame:       u64 exchange | u32 from | u32 to | u32 chunk |
//	             u32 keyLen | key | u64 tuples | u64 weight |
//	             u32 payloadLen | payload
type TCPTransport struct {
	n         int
	listeners []net.Listener
	addrs     []string
	retry     RetryPolicy

	seq     atomic.Uint64
	retries atomic.Int64
	dials   atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	connMu sync.Mutex
	slots  map[pairKey]*connSlot

	exMu      sync.Mutex
	exchanges map[uint64]*tcpExchange

	inMu     sync.Mutex
	inConns  map[net.Conn]struct{}
	inClosed bool

	acceptWG sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

type pairKey struct{ s, d int }

// connSlot holds the persistent connection of one worker pair. dialMu
// serializes dialing so concurrent Sends for the same pair share one dial.
type connSlot struct {
	dialMu sync.Mutex
	mu     sync.Mutex
	wc     *wconn
}

// RetryPolicy bounds the transport's dial retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of dial attempts per connection
	// (1 = no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt, capped at MaxDelay, with ±50% seeded jitter.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// DialTimeout bounds a single dial attempt (tightened further by a
	// context deadline when one is set).
	DialTimeout time.Duration
	// Seed makes the jitter deterministic (0 uses a fixed default seed —
	// the transport is deterministic unless explicitly seeded otherwise).
	Seed int64
}

// DefaultRetryPolicy is the production default: 3 attempts, 2ms base
// backoff capped at 250ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond, DialTimeout: 5 * time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = d.DialTimeout
	}
	return p
}

// NewTCPTransport starts n loopback listeners (one per worker) with the
// default retry policy.
func NewTCPTransport(n int) (*TCPTransport, error) {
	return NewTCPTransportWithRetry(n, DefaultRetryPolicy())
}

// NewTCPTransportWithRetry starts n loopback listeners with an explicit
// retry policy.
func NewTCPTransportWithRetry(n int, policy RetryPolicy) (*TCPTransport, error) {
	policy = policy.withDefaults()
	t := &TCPTransport{
		n:         n,
		retry:     policy,
		rng:       rand.New(rand.NewSource(policy.Seed + 1)),
		slots:     make(map[pairKey]*connSlot),
		exchanges: make(map[uint64]*tcpExchange),
		inConns:   make(map[net.Conn]struct{}),
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("tcp transport: listen worker %d: %w", i, err)
		}
		t.listeners = append(t.listeners, l)
		t.addrs = append(t.addrs, l.Addr().String())
	}
	for i := range t.listeners {
		t.acceptWG.Add(1)
		go t.acceptLoop(i)
	}
	return t, nil
}

// Addrs returns the listener addresses (for diagnostics).
func (t *TCPTransport) Addrs() []string { return append([]string(nil), t.addrs...) }

// RetryStats returns the cumulative dial retry count (RetryCounter).
func (t *TCPTransport) RetryStats() int64 { return t.retries.Load() }

// DialStats returns the cumulative successful dial count (DialCounter).
// With persistent connections it is bounded by n² per transport lifetime
// unless connections are torn down by faults.
func (t *TCPTransport) DialStats() int64 { return t.dials.Load() }

// Route performs one exchange without context plumbing (Transport compat).
func (t *TCPTransport) Route(bySender [][]Envelope) ([][]Envelope, error) {
	//adjlint:ignore ctxflow legacy Transport.Route has no context parameter to thread
	return t.RouteExchange(context.Background(), "", bySender)
}

// backoff returns the jittered exponential delay before retry `attempt`
// (1-based: the delay after the attempt-th failure).
func (t *TCPTransport) backoff(attempt int) time.Duration {
	d := t.retry.BaseDelay << (attempt - 1)
	if d > t.retry.MaxDelay || d <= 0 {
		d = t.retry.MaxDelay
	}
	t.rngMu.Lock()
	jitter := 0.5 + t.rng.Float64() // ±50% around the nominal delay
	t.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// OpenExchange registers a streaming exchange and returns its stream. The
// exchange is registered before any sender can emit, so its frames are
// never mistaken for stale traffic. Every sender half must be closed for
// receivers to observe end-of-stream, and Close must always be called.
func (t *TCPTransport) OpenExchange(ctx context.Context, phase string, window int) (ExchangeStream, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, &TransportError{Op: "open", Dest: -1, Err: errors.New("transport closed")}
	}
	t.mu.Unlock()
	ex := &tcpExchange{
		t:          t,
		id:         t.seq.Add(1),
		queues:     make([]*chunkQueue, t.n),
		senderDone: make([]bool, t.n),
		expected:   make([]int64, t.n),
		delivered:  make([]int64, t.n),
		destDone:   make([]bool, t.n),
		abortCh:    make(chan struct{}),
		watchStop:  make(chan struct{}),
		watchDone:  make(chan struct{}),
	}
	ex.deadline, ex.hasDeadline = ctx.Deadline()
	for i := range ex.queues {
		ex.queues[i] = newChunkQueue(window)
	}
	t.exMu.Lock()
	t.exchanges[ex.id] = ex
	t.exMu.Unlock()
	go func() {
		defer close(ex.watchDone)
		if ctx.Done() == nil {
			<-ex.watchStop
			return
		}
		select {
		case <-ctx.Done():
			ex.abort(ctx.Err())
		case <-ex.watchStop:
		}
	}()
	return ex, nil
}

// RouteExchange performs one materialized all-to-all exchange as a shim
// over the streaming path: senders stream their envelopes as chunks over
// the persistent connections, receivers drain their queues into
// caller-owned slices. The first unrecoverable failure aborts the
// exchange with a typed error; ctx cancellation aborts it with ctx's
// error.
func (t *TCPTransport) RouteExchange(ctx context.Context, phase string, bySender [][]Envelope) ([][]Envelope, error) {
	es, err := t.OpenExchange(ctx, phase, 0)
	if err != nil {
		return nil, err
	}
	ex := es.(*tcpExchange)
	defer ex.Close()

	out := make([][]Envelope, t.n)
	var wg sync.WaitGroup
	for s := 0; s < t.n; s++ {
		var envs []Envelope
		if s < len(bySender) {
			envs = bySender[s]
		}
		wg.Add(1)
		go func(s int, envs []Envelope) {
			defer wg.Done()
			snd := ex.Sender(s)
			for _, e := range envs {
				if err := snd.Send(e); err != nil {
					break
				}
			}
			snd.Close()
		}(s, envs)
	}
	for d := 0; d < t.n; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rcv := ex.Receiver(d)
			for {
				e, ok, err := rcv.Recv()
				if err != nil || !ok {
					return
				}
				// Own the (pooled) payload before the next Recv.
				e.Payload = append([]byte(nil), e.Payload...)
				out[d] = append(out[d], e)
			}
		}(d)
	}
	wg.Wait()
	if cause := ex.cause(); cause != nil {
		return nil, cause
	}
	return out, nil
}

// getConn returns the persistent connection for (s, d), dialing it (with
// retry/backoff) if absent or previously broken.
func (t *TCPTransport) getConn(ex *tcpExchange, s, d int) (*wconn, error) {
	key := pairKey{s, d}
	t.connMu.Lock()
	slot := t.slots[key]
	if slot == nil {
		slot = &connSlot{}
		t.slots[key] = slot
	}
	t.connMu.Unlock()

	slot.dialMu.Lock()
	defer slot.dialMu.Unlock()
	slot.mu.Lock()
	wc := slot.wc
	slot.mu.Unlock()
	if wc != nil && !wc.broken.Load() {
		return wc, nil
	}
	wc, err := t.dialConn(ex, s, d)
	if err != nil {
		return nil, err
	}
	slot.mu.Lock()
	slot.wc = wc
	slot.mu.Unlock()
	return wc, nil
}

func (t *TCPTransport) dialConn(ex *tcpExchange, s, d int) (*wconn, error) {
	var lastErr error
	for attempt := 1; attempt <= t.retry.MaxAttempts; attempt++ {
		if err := ex.cause(); err != nil {
			return nil, err
		}
		if attempt > 1 {
			t.retries.Add(1)
			select {
			case <-ex.abortCh:
				return nil, ex.cause()
			case <-time.After(t.backoff(attempt - 1)):
			}
		}
		dialTimeout := t.retry.DialTimeout
		if ex.hasDeadline {
			if until := time.Until(ex.deadline); until < dialTimeout {
				dialTimeout = until
			}
		}
		if dialTimeout <= 0 {
			lastErr = context.DeadlineExceeded
			continue
		}
		conn, err := net.DialTimeout("tcp", t.addrs[d], dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		var hd [8]byte
		binary.LittleEndian.PutUint32(hd[0:], tcpMagic)
		binary.LittleEndian.PutUint32(hd[4:], uint32(s))
		if _, err := conn.Write(hd[:]); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		t.dials.Add(1)
		return &wconn{conn: conn}, nil
	}
	return nil, &TransportError{Op: "dial", Dest: d, Attempts: t.retry.MaxAttempts, Err: lastErr}
}

// killWriters tears down connections currently writing for exchange id
// (part of abort: unblocks a sender stuck in a write the receiver will
// never drain). The torn connection heals by lazy redial on next use.
func (t *TCPTransport) killWriters(id uint64) {
	t.connMu.Lock()
	var victims []*wconn
	for _, slot := range t.slots {
		slot.mu.Lock()
		wc := slot.wc
		slot.mu.Unlock()
		if wc != nil && wc.writing.Load() == id {
			victims = append(victims, wc)
		}
	}
	t.connMu.Unlock()
	for _, wc := range victims {
		wc.fail()
	}
}

func (t *TCPTransport) lookupExchange(id uint64) *tcpExchange {
	t.exMu.Lock()
	ex := t.exchanges[id]
	t.exMu.Unlock()
	return ex
}

func (t *TCPTransport) unregister(id uint64) {
	t.exMu.Lock()
	delete(t.exchanges, id)
	t.exMu.Unlock()
}

// acceptLoop accepts inbound connections for worker d and spawns a demux
// reader per connection.
func (t *TCPTransport) acceptLoop(d int) {
	defer t.acceptWG.Done()
	for {
		conn, err := t.listeners[d].Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		t.inMu.Lock()
		if t.inClosed {
			t.inMu.Unlock()
			conn.Close()
			return
		}
		t.inConns[conn] = struct{}{}
		t.inMu.Unlock()
		t.acceptWG.Add(1)
		go func() {
			defer t.acceptWG.Done()
			t.serveConn(d, conn)
			t.inMu.Lock()
			delete(t.inConns, conn)
			t.inMu.Unlock()
			conn.Close()
		}()
	}
}

// serveConn demuxes one inbound connection's frames into their exchanges'
// receive queues. Receive payload buffers are pooled per connection and
// returned by the receiver after decode adoption (the payload handed to
// Recv is only valid until the next Recv). Pushing into a full queue
// blocks the reader — backpressure reaches the sender via TCP flow
// control.
func (t *TCPTransport) serveConn(d int, conn net.Conn) {
	var hd [8]byte
	if _, err := io.ReadFull(conn, hd[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hd[0:]) != tcpMagic {
		return
	}
	if sender := int(binary.LittleEndian.Uint32(hd[4:])); sender < 0 || sender >= t.n {
		return
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	pool := &bufPool{}
	var fh [24]byte
	var tail [20]byte
	for {
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return
		}
		exchID := binary.LittleEndian.Uint64(fh[0:])
		from := int(binary.LittleEndian.Uint32(fh[8:]))
		to := int(binary.LittleEndian.Uint32(fh[12:]))
		chunk := int32(binary.LittleEndian.Uint32(fh[16:]))
		keyLen := binary.LittleEndian.Uint32(fh[20:])
		ex := t.lookupExchange(exchID)
		if keyLen > 1<<20 {
			t.abortProto(ex, d, fmt.Errorf("%w: implausible key length %d", errProtocol, keyLen))
			return
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(br, key); err != nil {
			return
		}
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return
		}
		tuples := int64(binary.LittleEndian.Uint64(tail[0:]))
		weight := int64(binary.LittleEndian.Uint64(tail[8:]))
		plen := binary.LittleEndian.Uint32(tail[16:])
		if plen > 1<<31 {
			t.abortProto(ex, d, fmt.Errorf("%w: implausible payload length %d", errProtocol, plen))
			return
		}
		if from < 0 || from >= t.n || to != d {
			t.abortProto(ex, d, fmt.Errorf("%w: bad addressing from=%d to=%d at worker %d", errProtocol, from, to, d))
			return
		}
		if ex == nil {
			// Completed, aborted, or never-registered exchange: stale
			// traffic, discarded without disturbing the connection.
			if _, err := br.Discard(int(plen)); err != nil {
				return
			}
			continue
		}
		buf := pool.get(int(plen))
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		env := Envelope{
			From: from, To: to, Key: string(key), Payload: buf,
			Tuples: tuples, Weight: weight, Chunk: chunk,
		}
		ex.deliver(d, queuedChunk{env: env, release: func() { pool.put(buf) }})
	}
}

// abortProto handles a frame-level protocol violation: the addressed
// exchange (when identifiable and active) aborts with a typed read error;
// the connection is closed by the caller either way.
func (t *TCPTransport) abortProto(ex *tcpExchange, d int, err error) {
	if ex != nil {
		ex.abort(&TransportError{Op: "read", Dest: d, Err: err})
	}
}

// Close shuts down listeners, persistent connections, and any in-flight
// exchanges, then waits for the demux goroutines to settle.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	t.exMu.Lock()
	exs := make([]*tcpExchange, 0, len(t.exchanges))
	for _, ex := range t.exchanges {
		exs = append(exs, ex)
	}
	t.exMu.Unlock()
	for _, ex := range exs {
		ex.abort(&TransportError{Op: "close", Dest: -1, Err: errors.New("transport closed")})
	}

	var first error
	for _, l := range t.listeners {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.connMu.Lock()
	for _, slot := range t.slots {
		slot.mu.Lock()
		if slot.wc != nil {
			slot.wc.fail()
		}
		slot.mu.Unlock()
	}
	t.connMu.Unlock()
	t.inMu.Lock()
	t.inClosed = true
	for c := range t.inConns {
		c.Close()
	}
	t.inMu.Unlock()
	t.acceptWG.Wait()
	return first
}

// wconn is one persistent outbound connection. A mutex serializes frame
// writes (exchanges multiplex whole frames); writing publishes the
// exchange currently holding the writer so an abort can tear down a
// blocked write.
type wconn struct {
	conn        net.Conn
	mu          sync.Mutex
	scratch     []byte
	curDeadline time.Time
	writing     atomic.Uint64
	broken      atomic.Bool
}

var errConnBroken = errors.New("tcp transport: connection broken")

func (wc *wconn) fail() {
	wc.broken.Store(true)
	wc.conn.Close()
}

func (wc *wconn) writeFrame(ex *tcpExchange, e Envelope) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.broken.Load() {
		return errConnBroken
	}
	wc.writing.Store(ex.id)
	defer wc.writing.Store(0)
	if ex.hasDeadline {
		if !wc.curDeadline.Equal(ex.deadline) {
			wc.conn.SetWriteDeadline(ex.deadline)
			wc.curDeadline = ex.deadline
		}
	} else if !wc.curDeadline.IsZero() {
		wc.conn.SetWriteDeadline(time.Time{})
		wc.curDeadline = time.Time{}
	}
	buf := wc.scratch[:0]
	var b4 [4]byte
	var b8 [8]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b4[:], v)
		buf = append(buf, b4[:]...)
	}
	p64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		buf = append(buf, b8[:]...)
	}
	p64(ex.id)
	p32(uint32(e.From))
	p32(uint32(e.To))
	p32(uint32(e.Chunk))
	p32(uint32(len(e.Key)))
	buf = append(buf, e.Key...)
	p64(uint64(e.Tuples))
	p64(uint64(e.Weight))
	p32(uint32(len(e.Payload)))
	wc.scratch = buf[:0]
	if _, err := wc.conn.Write(buf); err != nil {
		wc.fail()
		return err
	}
	if len(e.Payload) > 0 {
		if _, err := wc.conn.Write(e.Payload); err != nil {
			wc.fail()
			return err
		}
	}
	return nil
}

// tcpExchange is one registered streaming exchange. Completion is
// accounted in-process: each sender records its per-destination chunk
// counts at Close, and a destination's queue closes once every sender has
// closed and the destination has received its expected chunk count.
type tcpExchange struct {
	t           *TCPTransport
	id          uint64
	deadline    time.Time
	hasDeadline bool
	queues      []*chunkQueue

	mu            sync.Mutex
	closedSenders int
	senderDone    []bool
	expected      []int64
	delivered     []int64
	destDone      []bool
	abortErr      error
	closed        bool

	abortOnce sync.Once
	abortCh   chan struct{}
	watchStop chan struct{}
	watchDone chan struct{}
}

func (ex *tcpExchange) Sender(worker int) StreamSender {
	return &tcpSender{ex: ex, s: worker, sent: make([]int64, ex.t.n)}
}

func (ex *tcpExchange) Receiver(worker int) StreamReceiver {
	return &tcpReceiver{ex: ex, d: worker}
}

func (ex *tcpExchange) cause() error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.abortErr
}

func (ex *tcpExchange) Abort(cause error) {
	if cause == nil {
		cause = errors.New("tcp transport: exchange aborted")
	}
	ex.abort(cause)
}

func (ex *tcpExchange) abort(cause error) {
	ex.abortOnce.Do(func() {
		ex.mu.Lock()
		ex.abortErr = cause
		ex.mu.Unlock()
		close(ex.abortCh)
		for _, q := range ex.queues {
			q.fail(cause)
		}
		ex.t.killWriters(ex.id)
	})
}

func (ex *tcpExchange) Stats() StreamStats {
	var s StreamStats
	for _, q := range ex.queues {
		s.merge(q.stats())
	}
	return s
}

func (ex *tcpExchange) Close() error {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return nil
	}
	ex.closed = true
	complete := ex.abortErr == nil
	if complete {
		for _, done := range ex.destDone {
			if !done {
				complete = false
				break
			}
		}
	}
	ex.mu.Unlock()
	if !complete && ex.cause() == nil {
		ex.abort(errors.New("tcp transport: exchange closed before completion"))
	}
	close(ex.watchStop)
	<-ex.watchDone
	ex.t.unregister(ex.id)
	return nil
}

// deliver pushes one inbound chunk into destination d's queue (blocking
// under backpressure) and runs completion accounting. Aborted exchanges
// discard the chunk, returning its buffer to the pool.
func (ex *tcpExchange) deliver(d int, item queuedChunk) {
	if err := ex.queues[d].push(item); err != nil {
		if item.release != nil {
			item.release()
		}
		return
	}
	ex.mu.Lock()
	ex.delivered[d]++
	ex.maybeFinishLocked(d)
	ex.mu.Unlock()
}

func (ex *tcpExchange) senderClosed(s int, sent []int64) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if s < 0 || s >= len(ex.senderDone) || ex.senderDone[s] {
		return
	}
	ex.senderDone[s] = true
	ex.closedSenders++
	for d, c := range sent {
		ex.expected[d] += c
	}
	if ex.closedSenders == len(ex.senderDone) {
		for d := range ex.queues {
			ex.maybeFinishLocked(d)
		}
	}
}

func (ex *tcpExchange) maybeFinishLocked(d int) {
	if ex.destDone[d] || ex.closedSenders != len(ex.senderDone) || ex.abortErr != nil {
		return
	}
	if ex.delivered[d] >= ex.expected[d] {
		ex.destDone[d] = true
		ex.queues[d].close()
	}
}

type tcpSender struct {
	ex     *tcpExchange
	s      int
	sent   []int64
	closed bool
}

func (snd *tcpSender) Send(e Envelope) error {
	ex := snd.ex
	if err := ex.cause(); err != nil {
		return err
	}
	t := ex.t
	if e.To < 0 || e.To >= t.n {
		err := &TransportError{Op: "deliver", Dest: e.To,
			Err: fmt.Errorf("destination out of range [0,%d)", t.n)}
		ex.abort(err)
		return err
	}
	wc, err := t.getConn(ex, snd.s, e.To)
	if err != nil {
		ex.abort(err)
		return err
	}
	if err := wc.writeFrame(ex, e); err != nil {
		terr := &TransportError{Op: "write", Dest: e.To, Attempts: 1, Err: err}
		ex.abort(terr)
		return terr
	}
	snd.sent[e.To]++
	return nil
}

func (snd *tcpSender) Close() error {
	if snd.closed {
		return nil
	}
	snd.closed = true
	snd.ex.senderClosed(snd.s, snd.sent)
	return nil
}

type tcpReceiver struct {
	ex      *tcpExchange
	d       int
	pending func()
}

func (r *tcpReceiver) Recv() (Envelope, bool, error) {
	if r.pending != nil {
		r.pending()
		r.pending = nil
	}
	c, ok, err := r.ex.queues[r.d].pop()
	if err != nil || !ok {
		return Envelope{}, false, err
	}
	r.pending = c.release
	return c.env, true, nil
}

// bufPool is a per-connection free list of receive payload buffers: the
// demux reader gets, the receiving worker puts back after decode adoption.
type bufPool struct {
	mu   sync.Mutex
	bufs [][]byte
}

const (
	bufPoolMin  = 4096
	bufPoolKeep = 8
)

func (p *bufPool) get(n int) []byte {
	p.mu.Lock()
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			b := p.bufs[i][:n]
			p.bufs = append(p.bufs[:i], p.bufs[i+1:]...)
			p.mu.Unlock()
			return b
		}
	}
	p.mu.Unlock()
	c := n
	if c < bufPoolMin {
		c = bufPoolMin
	}
	return make([]byte, n, c)
}

func (p *bufPool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < bufPoolKeep {
		p.bufs = append(p.bufs, b[:0])
	}
	p.mu.Unlock()
}

// tcpMagic opens every connection header ("AJX2" — protocol v2:
// persistent multiplexed streaming).
const tcpMagic = 0x414A5832

// errProtocol classifies frame-level violations: implausible lengths or a
// malformed stream. Unlike transient I/O errors, these abort the exchange
// (the bytes are corrupt; a retry cannot repair them).
var errProtocol = errors.New("tcp transport: protocol violation")
