package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPTransport routes envelopes over real loopback TCP sockets using a
// minimal length-prefixed frame protocol. It exists to keep the
// serialization and wire path honest: integration tests run the full join
// engines over it and must produce byte-identical results to the local
// transport.
//
// Failure discipline (the fault-tolerance contract):
//
//   - Every connection opens with a header carrying the transport-local
//     exchange sequence number and the sender ID, and closes with an
//     explicit end-of-stream marker. A transfer without its marker is
//     incomplete and is discarded by the receiver, never committed — so a
//     sender may safely retry the whole stream on a new connection, and a
//     connection left in the kernel accept backlog by an aborted exchange
//     is recognized by its stale sequence number and dropped (no
//     deadline-polling drain pass).
//   - Dials and writes retry with capped exponential backoff plus seeded
//     jitter up to RetryPolicy.MaxAttempts; exhaustion aborts the exchange
//     with a typed *TransportError (errors.Is(err, ErrTransport)).
//   - RouteExchange observes its context: a deadline becomes a per-
//     connection I/O deadline, and in-flight cancellation aborts the
//     exchange promptly (listeners deadline out, live connections are torn
//     down), returning the context's error.
//   - Frame-level protocol violations (implausible lengths — a corrupt
//     stream) abort the exchange with a typed error immediately; transient
//     I/O errors on a partially-read connection only discard that transfer
//     and wait for the sender's retry (the sender aborts the exchange if
//     its retries exhaust, so no one waits forever).
//
// Frame layout (little-endian):
//
//	header: u32 magic | u64 exchange | u32 sender | u32 attempt
//	frame:  u32 from | u32 to | u32 keyLen | key | u64 tuples | u64 weight |
//	        u32 payloadLen | payload
//	end:    u32 0xFFFF_FFFF
type TCPTransport struct {
	n         int
	listeners []net.Listener
	addrs     []string
	retry     RetryPolicy

	seq     atomic.Uint64
	retries atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	closed bool
}

// RetryPolicy bounds the transport's dial/write retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per (sender, destination)
	// transfer (1 = no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt, capped at MaxDelay, with ±50% seeded jitter.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// DialTimeout bounds a single dial attempt (tightened further by a
	// context deadline when one is set).
	DialTimeout time.Duration
	// Seed makes the jitter deterministic (0 uses a fixed default seed —
	// the transport is deterministic unless explicitly seeded otherwise).
	Seed int64
}

// DefaultRetryPolicy is the production default: 3 attempts, 2ms base
// backoff capped at 250ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond, DialTimeout: 5 * time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = d.DialTimeout
	}
	return p
}

// NewTCPTransport starts n loopback listeners (one per worker) with the
// default retry policy.
func NewTCPTransport(n int) (*TCPTransport, error) {
	return NewTCPTransportWithRetry(n, DefaultRetryPolicy())
}

// NewTCPTransportWithRetry starts n loopback listeners with an explicit
// retry policy.
func NewTCPTransportWithRetry(n int, policy RetryPolicy) (*TCPTransport, error) {
	policy = policy.withDefaults()
	t := &TCPTransport{n: n, retry: policy, rng: rand.New(rand.NewSource(policy.Seed + 1))}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("tcp transport: listen worker %d: %w", i, err)
		}
		t.listeners = append(t.listeners, l)
		t.addrs = append(t.addrs, l.Addr().String())
	}
	return t, nil
}

// Addrs returns the listener addresses (for diagnostics).
func (t *TCPTransport) Addrs() []string { return append([]string(nil), t.addrs...) }

// RetryStats returns the cumulative dial/write retry count (RetryCounter).
func (t *TCPTransport) RetryStats() int64 { return t.retries.Load() }

// Route performs one exchange without context plumbing (Transport compat).
func (t *TCPTransport) Route(bySender [][]Envelope) ([][]Envelope, error) {
	return t.RouteExchange(context.Background(), "", bySender)
}

// backoff returns the jittered exponential delay before retry `attempt`
// (1-based: the delay after the attempt-th failure).
func (t *TCPTransport) backoff(attempt int) time.Duration {
	d := t.retry.BaseDelay << (attempt - 1)
	if d > t.retry.MaxDelay || d <= 0 {
		d = t.retry.MaxDelay
	}
	t.rngMu.Lock()
	jitter := 0.5 + t.rng.Float64() // ±50% around the nominal delay
	t.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// RouteExchange performs one all-to-all exchange under ctx: every sender
// dials every destination it has envelopes for (with retry/backoff),
// streams frames, and each listener accepts until every expected sender's
// transfer has committed. The first unrecoverable failure on either side
// aborts the exchange with a typed error; ctx cancellation aborts it with
// ctx's error.
func (t *TCPTransport) RouteExchange(ctx context.Context, phase string, bySender [][]Envelope) ([][]Envelope, error) {
	exch := t.seq.Add(1)
	out := make([][]Envelope, t.n)
	var outMu sync.Mutex

	// Count connections each receiver should expect: one per sender that has
	// at least one envelope for it.
	expect := make([]int, t.n)
	perPair := make([][][]Envelope, len(bySender))
	for s, envs := range bySender {
		perPair[s] = make([][]Envelope, t.n)
		for _, e := range envs {
			if e.To < 0 || e.To >= t.n {
				return nil, &TransportError{Op: "deliver", Dest: e.To,
					Err: fmt.Errorf("destination out of range [0,%d)", t.n)}
			}
			perPair[s][e.To] = append(perPair[s][e.To], e)
		}
		for d := 0; d < t.n; d++ {
			if len(perPair[s][d]) > 0 {
				expect[d]++
			}
		}
	}

	// Abort: the first unrecoverable failure deadlines every listener
	// (unblocking receivers stuck in Accept) and tears down live
	// connections (unblocking blocked reads/writes). The triggering error
	// is the exchange's root cause; collateral errors the abort provokes
	// are discarded. abortCh lets senders bail out of backoff sleeps.
	deadline, hasDeadline := ctx.Deadline()
	live := &connSet{conns: make(map[net.Conn]struct{})}
	abortCh := make(chan struct{})
	var abortOnce sync.Once
	var rootCause error // written inside abortOnce; read only after wg.Wait
	abort := func(cause error) {
		abortOnce.Do(func() {
			rootCause = cause
			close(abortCh)
			now := time.Now()
			for _, l := range t.listeners {
				if tl, ok := l.(*net.TCPListener); ok {
					tl.SetDeadline(now)
				}
			}
			live.abortAll()
		})
	}
	aborted := func() bool {
		select {
		case <-abortCh:
			return true
		default:
			return false
		}
	}

	// In-flight cancellation: a context watcher converts Done into an
	// abort carrying the context's error.
	watcherDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				abort(ctx.Err())
			case <-watcherDone:
			}
		}()
	}

	var wg sync.WaitGroup

	// Receivers: accept until every expected sender's transfer commits.
	// Stale-exchange and duplicate-sender connections are recognized by
	// their headers and dropped without counting; incomplete transfers
	// (I/O error before the end marker) are discarded — the sender retries
	// on a fresh connection or aborts the exchange.
	for d := 0; d < t.n; d++ {
		if expect[d] == 0 {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			committed := make(map[int]bool)
			for len(committed) < expect[d] {
				conn, err := t.listeners[d].Accept()
				if err != nil {
					if !aborted() {
						abort(&TransportError{Op: "accept", Dest: d, Err: err})
					}
					return
				}
				if !live.add(conn) {
					conn.Close()
					return
				}
				if hasDeadline {
					conn.SetDeadline(deadline)
				}
				sender, ok := readHeader(conn, exch)
				if !ok || committed[sender] {
					// Stale exchange, garbage header, or a duplicate retry
					// of an already-committed transfer: drop silently.
					live.remove(conn)
					conn.Close()
					continue
				}
				envs, err := readFrames(conn)
				live.remove(conn)
				conn.Close()
				if err != nil {
					if errors.Is(err, errProtocol) {
						// Corrupt stream: retrying cannot help (the sender
						// believes it succeeded) — abort with a typed error.
						abort(&TransportError{Op: "read", Dest: d, Err: err})
						return
					}
					// Transfer died mid-stream: discard, let the sender's
					// retry (or its abort) resolve the exchange.
					continue
				}
				committed[sender] = true
				outMu.Lock()
				out[d] = append(out[d], envs...)
				outMu.Unlock()
			}
		}(d)
	}

	// Senders: one goroutine per (sender, destination) leg, retrying the
	// whole transfer (dial + frames + end marker) with backoff on dial or
	// write failure. Safe because the receiver commits a transfer only
	// when its end marker arrives and dedupes by sender ID.
	for s := range perPair {
		for d := 0; d < t.n; d++ {
			envs := perPair[s][d]
			if len(envs) == 0 {
				continue
			}
			wg.Add(1)
			go func(s, d int, envs []Envelope) {
				defer wg.Done()
				var lastErr error
				lastOp := "dial"
				for attempt := 1; attempt <= t.retry.MaxAttempts; attempt++ {
					if aborted() {
						return
					}
					if attempt > 1 {
						t.retries.Add(1)
						select {
						case <-abortCh:
							return
						case <-time.After(t.backoff(attempt - 1)):
						}
					}
					lastOp, lastErr = t.sendOnce(exch, s, d, attempt, envs, live, deadline, hasDeadline)
					if lastErr == nil {
						return
					}
					if aborted() {
						return // collateral failure of someone else's abort
					}
				}
				abort(&TransportError{Op: lastOp, Dest: d, Attempts: t.retry.MaxAttempts, Err: lastErr})
			}(s, d, envs)
		}
	}

	wg.Wait()
	close(watcherDone)
	// Re-arm the listeners for the next exchange. Connections an aborted
	// exchange left in the accept backlog carry its sequence number and
	// are dropped by header inspection next time — no drain pass needed.
	for _, l := range t.listeners {
		if tl, ok := l.(*net.TCPListener); ok {
			tl.SetDeadline(time.Time{})
		}
	}
	if rootCause != nil {
		return nil, rootCause
	}
	return out, nil
}

// sendOnce performs one complete transfer attempt: dial, header, frames,
// end marker. It returns the failing operation name and error, or ("", nil)
// on success.
func (t *TCPTransport) sendOnce(exch uint64, s, d, attempt int, envs []Envelope, live *connSet, deadline time.Time, hasDeadline bool) (string, error) {
	dialTimeout := t.retry.DialTimeout
	if hasDeadline {
		if until := time.Until(deadline); until < dialTimeout {
			dialTimeout = until
		}
	}
	if dialTimeout <= 0 {
		return "dial", context.DeadlineExceeded
	}
	conn, err := net.DialTimeout("tcp", t.addrs[d], dialTimeout)
	if err != nil {
		return "dial", err
	}
	if !live.add(conn) {
		conn.Close()
		return "write", errExchangeAborted
	}
	defer func() {
		live.remove(conn)
		conn.Close()
	}()
	if hasDeadline {
		conn.SetDeadline(deadline)
	}
	if err := writeHeader(conn, exch, s, attempt); err != nil {
		return "write", err
	}
	for _, e := range envs {
		if err := writeFrame(conn, e); err != nil {
			return "write", err
		}
	}
	if err := writeEndMarker(conn); err != nil {
		return "write", err
	}
	return "", nil
}

// errExchangeAborted marks a send attempt cut short because the exchange
// was already aborted; the root cause is recorded by whoever aborted.
var errExchangeAborted = errors.New("exchange aborted")

// Close shuts all listeners.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var first error
	for _, l := range t.listeners {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// connSet tracks the live connections of one in-flight exchange so an
// abort can tear them all down (unblocking reads and writes stuck against
// a peer that stopped participating).
type connSet struct {
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	aborted bool
}

// add registers c; it reports false (without registering) when the
// exchange has already been aborted, in which case the caller must close c.
func (cs *connSet) add(c net.Conn) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.aborted {
		return false
	}
	cs.conns[c] = struct{}{}
	return true
}

func (cs *connSet) remove(c net.Conn) {
	cs.mu.Lock()
	delete(cs.conns, c)
	cs.mu.Unlock()
}

func (cs *connSet) abortAll() {
	cs.mu.Lock()
	cs.aborted = true
	for c := range cs.conns {
		c.Close()
	}
	cs.mu.Unlock()
}

// tcpMagic opens every connection header ("AJX1").
const tcpMagic = 0x414A5831

// endMarker terminates a transfer's frame stream. Frames begin with the
// sender's worker ID (< n), so the all-ones word is unambiguous.
const endMarker = 0xFFFFFFFF

// errProtocol classifies frame-level violations: implausible lengths or a
// malformed stream. Unlike transient I/O errors, these abort the exchange
// (the bytes are corrupt; a retry cannot repair them).
var errProtocol = errors.New("tcp transport: protocol violation")

func writeHeader(w io.Writer, exch uint64, sender, attempt int) error {
	var head [20]byte
	binary.LittleEndian.PutUint32(head[0:], tcpMagic)
	binary.LittleEndian.PutUint64(head[4:], exch)
	binary.LittleEndian.PutUint32(head[12:], uint32(sender))
	binary.LittleEndian.PutUint32(head[16:], uint32(attempt))
	_, err := w.Write(head[:])
	return err
}

// readHeader validates a connection's opening header against the current
// exchange number and returns the sender ID. ok is false for garbage,
// truncated headers, or stale exchanges — connections to drop silently.
func readHeader(r io.Reader, exch uint64) (sender int, ok bool) {
	var head [20]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, false
	}
	if binary.LittleEndian.Uint32(head[0:]) != tcpMagic {
		return 0, false
	}
	if binary.LittleEndian.Uint64(head[4:]) != exch {
		return 0, false
	}
	return int(binary.LittleEndian.Uint32(head[12:])), true
}

func writeEndMarker(w io.Writer) error {
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], endMarker)
	_, err := w.Write(b4[:])
	return err
}

func writeFrame(w io.Writer, e Envelope) error {
	head := make([]byte, 0, 32+len(e.Key))
	var b4 [4]byte
	var b8 [8]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b4[:], v)
		head = append(head, b4[:]...)
	}
	p64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		head = append(head, b8[:]...)
	}
	p32(uint32(e.From))
	p32(uint32(e.To))
	p32(uint32(len(e.Key)))
	head = append(head, e.Key...)
	p64(uint64(e.Tuples))
	p64(uint64(e.MsgWeight()))
	p32(uint32(len(e.Payload)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(e.Payload)
	return err
}

// readFrames consumes frames until the end-of-stream marker. An I/O error
// (including EOF before the marker) marks an incomplete transfer the
// caller should discard; a frame-level violation returns an error wrapping
// errProtocol, which aborts the exchange.
func readFrames(r io.Reader) ([]Envelope, error) {
	var out []Envelope
	var b4 [4]byte
	var b8 [8]byte
	for {
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("stream ended before end marker: %w", io.ErrUnexpectedEOF)
			}
			return nil, err
		}
		first := binary.LittleEndian.Uint32(b4[:])
		if first == endMarker {
			return out, nil
		}
		var e Envelope
		e.From = int(first)
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		e.To = int(binary.LittleEndian.Uint32(b4[:]))
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		keyLen := binary.LittleEndian.Uint32(b4[:])
		if keyLen > 1<<20 {
			return nil, fmt.Errorf("%w: implausible key length %d", errProtocol, keyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(r, key); err != nil {
			return nil, err
		}
		e.Key = string(key)
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, err
		}
		e.Tuples = int64(binary.LittleEndian.Uint64(b8[:]))
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, err
		}
		e.Weight = int64(binary.LittleEndian.Uint64(b8[:]))
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		plen := binary.LittleEndian.Uint32(b4[:])
		if plen > 1<<31 {
			return nil, fmt.Errorf("%w: implausible payload length %d", errProtocol, plen)
		}
		e.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, e.Payload); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
