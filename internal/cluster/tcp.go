package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport routes envelopes over real loopback TCP sockets using a
// minimal length-prefixed frame protocol. It exists to keep the
// serialization and wire path honest: integration tests run the full join
// engines over it and must produce byte-identical results to the local
// transport.
//
// Frame layout (little-endian):
//
//	u32 from | u32 to | u32 keyLen | key | u64 tuples | u64 weight |
//	u32 payloadLen | payload
type TCPTransport struct {
	n         int
	listeners []net.Listener
	addrs     []string

	mu     sync.Mutex
	closed bool
}

// NewTCPTransport starts n loopback listeners (one per worker).
func NewTCPTransport(n int) (*TCPTransport, error) {
	t := &TCPTransport{n: n}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("tcp transport: listen worker %d: %w", i, err)
		}
		t.listeners = append(t.listeners, l)
		t.addrs = append(t.addrs, l.Addr().String())
	}
	return t, nil
}

// Addrs returns the listener addresses (for diagnostics).
func (t *TCPTransport) Addrs() []string { return append([]string(nil), t.addrs...) }

// Route performs one all-to-all exchange: every sender dials every
// destination it has envelopes for, streams frames, and each listener
// accepts until all senders signal completion.
func (t *TCPTransport) Route(bySender [][]Envelope) ([][]Envelope, error) {
	out := make([][]Envelope, t.n)
	var outMu sync.Mutex

	// Count connections each receiver should expect: one per sender that has
	// at least one envelope for it.
	expect := make([]int, t.n)
	perPair := make([][][]Envelope, len(bySender))
	for s, envs := range bySender {
		perPair[s] = make([][]Envelope, t.n)
		for _, e := range envs {
			if e.To < 0 || e.To >= t.n {
				return nil, fmt.Errorf("tcp transport: destination %d out of range", e.To)
			}
			perPair[s][e.To] = append(perPair[s][e.To], e)
		}
		for d := 0; d < t.n; d++ {
			if len(perPair[s][d]) > 0 {
				expect[d]++
			}
		}
	}

	// A failed sender (dial or write error) never delivers its connection,
	// so without intervention the destination's receiver goroutine would
	// block in Accept forever and wg.Wait below would hang. The first
	// failure on either side therefore aborts the exchange: an immediate
	// accept deadline on every listener makes pending and future Accepts
	// return (unblocking all receivers), and in-flight sender connections
	// are torn down (unblocking senders stuck in large writes). The
	// triggering error is recorded as the exchange's root cause; collateral
	// errors the abort itself provokes (deadline-exceeded accepts,
	// closed-connection writes) are discarded. Deadlines are cleared before
	// returning so the transport stays usable for the next exchange.
	live := &connSet{conns: make(map[net.Conn]struct{})}
	var abortOnce sync.Once
	var rootCause error // written inside abortOnce; read only after wg.Wait
	abort := func(cause error) {
		abortOnce.Do(func() {
			rootCause = cause
			now := time.Now()
			for _, l := range t.listeners {
				if tl, ok := l.(*net.TCPListener); ok {
					tl.SetDeadline(now)
				}
			}
			// Also tear down in-flight sender connections: a sender blocked
			// in a large write to a destination that stopped accepting
			// would otherwise never return.
			live.abortAll()
		})
	}
	var wg sync.WaitGroup

	// Receivers.
	for d := 0; d < t.n; d++ {
		if expect[d] == 0 {
			continue
		}
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for c := 0; c < expect[d]; c++ {
				conn, err := t.listeners[d].Accept()
				if err != nil {
					// Abort even on independent accept failures (fd
					// exhaustion, concurrent Close): senders blocked in a
					// large write to this destination must be unblocked or
					// wg.Wait hangs. A no-op recording nothing when the
					// accept error was itself caused by an abort deadline.
					abort(fmt.Errorf("tcp transport: accept on %d: %w", d, err))
					return
				}
				envs, err := readFrames(conn)
				conn.Close()
				if err != nil {
					abort(fmt.Errorf("tcp transport: read on %d: %w", d, err))
					return
				}
				outMu.Lock()
				out[d] = append(out[d], envs...)
				outMu.Unlock()
			}
		}(d)
	}

	// Senders.
	for s := range perPair {
		for d := 0; d < t.n; d++ {
			envs := perPair[s][d]
			if len(envs) == 0 {
				continue
			}
			wg.Add(1)
			go func(d int, envs []Envelope) {
				defer wg.Done()
				conn, err := net.Dial("tcp", t.addrs[d])
				if err != nil {
					abort(fmt.Errorf("tcp transport: dial %d: %w", d, err))
					return
				}
				if !live.add(conn) {
					// Exchange already aborted; the root-cause error is
					// recorded by whoever called abort.
					conn.Close()
					return
				}
				defer func() {
					live.remove(conn)
					conn.Close()
				}()
				for _, e := range envs {
					if err := writeFrame(conn, e); err != nil {
						abort(fmt.Errorf("tcp transport: write to %d: %w", d, err))
						return
					}
				}
			}(d, envs)
		}
	}

	wg.Wait()
	if rootCause != nil {
		// Drain stale backlog connections before the listeners are
		// re-armed: a sender that dialed and wrote successfully while its
		// receiver was already gone leaves a fully-written connection in
		// the kernel accept queue, and the next exchange on this transport
		// would otherwise accept it and mistake the previous exchange's
		// envelopes for its own. Accept with an already-expired deadline
		// errors without dequeuing, so each drain attempt arms a short
		// future deadline: queued connections are returned immediately and
		// an empty queue costs one bounded wait.
		for _, l := range t.listeners {
			tl, ok := l.(*net.TCPListener)
			if !ok {
				continue
			}
			for {
				tl.SetDeadline(time.Now().Add(10 * time.Millisecond))
				conn, err := tl.Accept()
				if err != nil {
					break
				}
				conn.Close()
			}
		}
	}
	// Re-arm the listeners for the next exchange.
	for _, l := range t.listeners {
		if tl, ok := l.(*net.TCPListener); ok {
			tl.SetDeadline(time.Time{})
		}
	}
	if rootCause != nil {
		return nil, rootCause
	}
	return out, nil
}

// Close shuts all listeners.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var first error
	for _, l := range t.listeners {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// connSet tracks the sender connections of one in-flight exchange so an
// abort can tear them all down (unblocking writes stuck against a
// destination that stopped accepting).
type connSet struct {
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	aborted bool
}

// add registers c; it reports false (without registering) when the
// exchange has already been aborted, in which case the caller must close c.
func (cs *connSet) add(c net.Conn) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.aborted {
		return false
	}
	cs.conns[c] = struct{}{}
	return true
}

func (cs *connSet) remove(c net.Conn) {
	cs.mu.Lock()
	delete(cs.conns, c)
	cs.mu.Unlock()
}

func (cs *connSet) abortAll() {
	cs.mu.Lock()
	cs.aborted = true
	for c := range cs.conns {
		c.Close()
	}
	cs.mu.Unlock()
}

func writeFrame(w io.Writer, e Envelope) error {
	head := make([]byte, 0, 32+len(e.Key))
	var b4 [4]byte
	var b8 [8]byte
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b4[:], v)
		head = append(head, b4[:]...)
	}
	p64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		head = append(head, b8[:]...)
	}
	p32(uint32(e.From))
	p32(uint32(e.To))
	p32(uint32(len(e.Key)))
	head = append(head, e.Key...)
	p64(uint64(e.Tuples))
	p64(uint64(e.MsgWeight()))
	p32(uint32(len(e.Payload)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	_, err := w.Write(e.Payload)
	return err
}

// readFrames consumes frames until EOF.
func readFrames(r io.Reader) ([]Envelope, error) {
	var out []Envelope
	var b4 [4]byte
	var b8 [8]byte
	for {
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
		var e Envelope
		e.From = int(binary.LittleEndian.Uint32(b4[:]))
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		e.To = int(binary.LittleEndian.Uint32(b4[:]))
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		keyLen := binary.LittleEndian.Uint32(b4[:])
		if keyLen > 1<<20 {
			return nil, fmt.Errorf("tcp transport: implausible key length %d", keyLen)
		}
		key := make([]byte, keyLen)
		if _, err := io.ReadFull(r, key); err != nil {
			return nil, err
		}
		e.Key = string(key)
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, err
		}
		e.Tuples = int64(binary.LittleEndian.Uint64(b8[:]))
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return nil, err
		}
		e.Weight = int64(binary.LittleEndian.Uint64(b8[:]))
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		plen := binary.LittleEndian.Uint32(b4[:])
		if plen > 1<<31 {
			return nil, fmt.Errorf("tcp transport: implausible payload length %d", plen)
		}
		e.Payload = make([]byte, plen)
		if _, err := io.ReadFull(r, e.Payload); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
