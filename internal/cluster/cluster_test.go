package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"adj/internal/blockcache"
	"adj/internal/relation"
)

func TestLoadRelationRoundRobin(t *testing.T) {
	r := relation.New("R", "a")
	for i := relation.Value(0); i < 10; i++ {
		r.Append(i)
	}
	c := New(Config{N: 3})
	defer c.Close()
	c.LoadRelation(r)
	sizes := []int{c.Workers[0].LocalSize("R"), c.Workers[1].LocalSize("R"), c.Workers[2].LocalSize("R")}
	if !reflect.DeepEqual(sizes, []int{4, 3, 3}) {
		t.Fatalf("sizes=%v", sizes)
	}
	total := c.GatherCounts(func(w *Worker) int64 { return int64(w.LocalSize("R")) })
	if total != 10 {
		t.Fatalf("total=%d", total)
	}
}

func TestParallelChargesMaxTime(t *testing.T) {
	c := New(Config{N: 4})
	defer c.Close()
	err := c.Parallel("work", func(w *Worker) error {
		// Unequal busy loops: worker 3 does ~4x the work.
		n := 1 + w.ID
		s := 0
		for i := 0; i < n*200000; i++ {
			s += i
		}
		w.Scratch["s"] = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics.Phase("work").CompSeconds <= 0 {
		t.Fatal("no computation time recorded")
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	c := New(Config{N: 2})
	defer c.Close()
	err := c.Parallel("p", func(w *Worker) error {
		if w.ID == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestExchangeRoutesAndCounts(t *testing.T) {
	for _, mode := range []string{"local", "tcp", "parallel"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			cfg := Config{N: 3}
			switch mode {
			case "tcp":
				tr, err := NewTCPTransport(3)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Transport = tr
			case "parallel":
				cfg.RealParallel = true
			}
			c := New(cfg)
			defer c.Close()
			// Every worker sends its ID to every other worker.
			got := make([][]int, 3)
			err := c.Exchange("x",
				func(w *Worker) ([]Envelope, error) {
					var out []Envelope
					for to := 0; to < 3; to++ {
						if to == w.ID {
							continue
						}
						out = append(out, Envelope{
							To:      to,
							Key:     "id",
							Payload: []byte{byte(w.ID)},
							Tuples:  1,
						})
					}
					return out, nil
				},
				func(w *Worker, inbox []Envelope) error {
					for _, e := range inbox {
						got[w.ID] = append(got[w.ID], int(e.Payload[0]))
						if e.From != int(e.Payload[0]) {
							return fmt.Errorf("From field mismatch: %d vs %d", e.From, e.Payload[0])
						}
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			for id := range got {
				sort.Ints(got[id])
				want := []int{0, 1, 2}
				want = append(want[:id], want[id+1:]...)
				if !reflect.DeepEqual(got[id], want) {
					t.Fatalf("worker %d received %v want %v", id, got[id], want)
				}
			}
			pm := c.Metrics.Phase("x")
			if pm.Messages != 6 || pm.TuplesSent != 6 || pm.BytesSent != 6 {
				t.Fatalf("metrics: %+v", pm)
			}
			if pm.CommSeconds <= 0 {
				t.Fatal("no modeled communication time")
			}
		})
	}
}

func TestExchangeRelationPayloadOverTCP(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{N: 2, Transport: tr})
	defer c.Close()
	rng := rand.New(rand.NewSource(1))
	orig := relation.New("R", "a", "b")
	for i := 0; i < 500; i++ {
		orig.Append(rng.Int63(), rng.Int63())
	}
	var received *relation.Relation
	err = c.Exchange("ship",
		func(w *Worker) ([]Envelope, error) {
			if w.ID != 0 {
				return nil, nil
			}
			return []Envelope{{To: 1, Key: "rel", Payload: relation.Encode(orig), Tuples: int64(orig.Len())}}, nil
		},
		func(w *Worker, inbox []Envelope) error {
			for _, e := range inbox {
				r, err := relation.Decode(e.Payload)
				if err != nil {
					return err
				}
				received = r
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if received == nil || !received.Equal(orig) {
		t.Fatal("relation did not survive the TCP roundtrip")
	}
}

func TestTCPMultipleExchanges(t *testing.T) {
	// The transport must survive repeated Route calls (one per BSP phase).
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{N: 2, Transport: tr})
	defer c.Close()
	for round := 0; round < 3; round++ {
		var sum atomic.Int64 // consume runs on one goroutine per worker
		err := c.Exchange("r",
			func(w *Worker) ([]Envelope, error) {
				return []Envelope{{To: 1 - w.ID, Payload: []byte{byte(round)}}}, nil
			},
			func(w *Worker, inbox []Envelope) error {
				for _, e := range inbox {
					sum.Add(int64(e.Payload[0]))
				}
				return nil
			})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := sum.Load(); got != int64(2*round) {
			t.Fatalf("round %d: sum=%d", round, got)
		}
	}
}

func TestEnvelopeOutOfRange(t *testing.T) {
	c := New(Config{N: 2})
	defer c.Close()
	err := c.Exchange("bad",
		func(w *Worker) ([]Envelope, error) {
			return []Envelope{{To: 5}}, nil
		},
		func(w *Worker, inbox []Envelope) error { return nil })
	if err == nil {
		t.Fatal("expected routing error")
	}
}

func TestMetricsAccumulation(t *testing.T) {
	m := NewMetrics()
	m.Phase("a").CompSeconds = 1
	m.Phase("a").CommSeconds = 2
	m.Phase("b/send").CompSeconds = 3
	if m.TotalSeconds() != 6 {
		t.Fatalf("total=%v", m.TotalSeconds())
	}
	comp, comm := m.SumMatching("a")
	if comp != 1 || comm != 2 {
		t.Fatalf("SumMatching: %v %v", comp, comm)
	}
	if len(m.Phases()) != 2 {
		t.Fatalf("phases=%d", len(m.Phases()))
	}
}

func TestNetworkModel(t *testing.T) {
	nm := NetworkModel{BandwidthBytesPerSec: 1e9, PerMessageSec: 1e-5}
	s := nm.CommSeconds(1e9, 100)
	if s < 1.0 || s > 1.01 {
		t.Fatalf("comm seconds=%v", s)
	}
	if (NetworkModel{}).CommSeconds(100, 100) != 0 {
		t.Fatal("zero model must cost nothing")
	}
}

func TestCubeDBHelpers(t *testing.T) {
	w := newWorker(0, 1)
	db := w.CubeDB(3)
	db["R"] = relation.New("R", "a")
	if w.CubeDB(3)["R"] == nil {
		t.Fatal("cube db lost")
	}
	w.Blocks.BindCube(3, "R", blockcache.Key{Rel: "R", Sig: 0})
	w.ResetCubes()
	if len(w.Cubes) != 0 || len(w.Blocks.Cubes()) != 0 {
		t.Fatal("reset failed")
	}
}
