package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// The cluster runtime's typed error taxonomy. Every failure an engine run
// can hit maps onto exactly one of these classes, and all of them survive
// the phase-wrapping the runtime applies (`phase X worker Y: ...`), so
// callers classify with errors.Is / errors.As at any layer:
//
//   - ErrWorkerPanic — a worker goroutine panicked during a phase. The
//     panic is recovered into a *WorkerPanicError (worker ID, phase, panic
//     value, stack) instead of crashing the process; peer workers are
//     cancelled promptly and exactly one error propagates.
//   - ErrTransport — the exchange transport failed: dial/write exhausted
//     its retries, an in-flight connection died, or a payload arrived
//     corrupt (decode failure). Carried by *TransportError. Transport
//     errors are the transient class: a later run on the same cluster may
//     succeed (Session Options.Retry keys on this).
//   - ErrCanceled — the run's context was cancelled. This is context.Canceled
//     itself, so existing errors.Is(err, context.Canceled) checks and the
//     taxonomy name are the same test.
//   - ErrOverloaded — the serving tier refused the request before it ran:
//     the admission queue was full, a load-shed watermark tripped, or a
//     tenant exhausted its budget. Carried by *OverloadError with a
//     retry-after hint; the execution never started, so retrying after the
//     hint is always safe.
var (
	// ErrWorkerPanic classifies recovered worker panics (errors.Is target).
	ErrWorkerPanic = errors.New("cluster: worker panic")
	// ErrTransport classifies transport-layer failures (errors.Is target).
	ErrTransport = errors.New("cluster: transport failure")
	// ErrCanceled classifies cancelled runs. It is context.Canceled: the
	// runtime returns the run context's own error, so both names match.
	ErrCanceled = context.Canceled
	// ErrOverloaded classifies admission-control rejections (errors.Is
	// target): the serving tier shed or refused the request to protect
	// in-flight work. Carried by *OverloadError, which adds the shed
	// reason, the queue depth at rejection and a retry-after hint.
	ErrOverloaded = errors.New("cluster: overloaded")
)

// WorkerPanicError is a panic recovered from a worker goroutine, converted
// into an error so one crashing worker fails its run instead of the whole
// process. errors.Is(err, ErrWorkerPanic) matches it; errors.As recovers
// the worker ID, phase and stack for diagnostics.
type WorkerPanicError struct {
	// WorkerID is the panicking worker.
	WorkerID int
	// Phase is the phase name the panic happened in.
	Phase string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic with its origin; the stack is kept out of the
// one-line message (retrieve it via errors.As).
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("cluster: worker %d panicked in phase %q: %v", e.WorkerID, e.Phase, e.Value)
}

// Is matches the ErrWorkerPanic class.
func (e *WorkerPanicError) Is(target error) bool { return target == ErrWorkerPanic }

// TransportError is a typed transport failure: which operation failed
// (dial, write, accept, decode, deliver), against which peer, after how
// many attempts, and the underlying cause. errors.Is(err, ErrTransport)
// matches it; Unwrap exposes the cause for further classification.
type TransportError struct {
	// Op is the failing operation: "dial", "write", "accept", "read",
	// "decode", "deliver".
	Op string
	// Dest is the destination worker of the failing leg (-1 when the
	// failure is not tied to one destination).
	Dest int
	// Attempts is how many attempts were made before giving up (0 when the
	// operation is not retried).
	Attempts int
	// Err is the underlying cause.
	Err error
}

// Error renders the failure.
func (e *TransportError) Error() string {
	msg := "cluster: transport " + e.Op
	if e.Dest >= 0 {
		msg += fmt.Sprintf(" to %d", e.Dest)
	}
	if e.Attempts > 1 {
		msg += fmt.Sprintf(" (after %d attempts)", e.Attempts)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Is matches the ErrTransport class.
func (e *TransportError) Is(target error) bool { return target == ErrTransport }

// Unwrap exposes the underlying cause.
func (e *TransportError) Unwrap() error { return e.Err }

// CorruptPayload wraps a receive-side decode failure as a typed transport
// error, so a corrupt payload aborts its exchange with a classifiable
// error (errors.Is(err, ErrTransport)) instead of an anonymous decode
// message. Exchange consumers (hcube, distributed joins) wrap every
// payload decode with it.
func CorruptPayload(op string, err error) error {
	return &TransportError{Op: "decode", Dest: -1, Err: fmt.Errorf("%s: %w", op, err)}
}

// IsTransient reports whether err is worth retrying a run over: transport
// failures are transient (a flaky dial or dropped connection may not
// recur), panics and cancellations are not. Overload rejections are not
// transient in this sense either — the execution never started, and an
// immediate retry would land on the same overloaded queue; honor the
// OverloadError's RetryAfter instead.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransport) && !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// OverloadError is a typed admission rejection: the serving tier refused
// the request to keep in-flight work responsive. errors.Is(err,
// ErrOverloaded) matches it; errors.As recovers why (queue full, bulk
// shed, tenant budget), the queue depth at rejection and a retry-after
// hint sized from the controller's observed service times.
type OverloadError struct {
	// Reason is the rejection cause: "queue full", "bulk shed",
	// "tenant bytes budget", "tenant cpu budget".
	Reason string
	// QueueDepth is the admission queue depth when the request was refused.
	QueueDepth int
	// RetryAfter estimates when capacity is likely to free up; clients
	// should back off at least this long before re-submitting.
	RetryAfter time.Duration
}

// Error renders the rejection with its retry hint.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster: overloaded (%s, queue depth %d): retry after %v",
		e.Reason, e.QueueDepth, e.RetryAfter)
}

// Is matches the ErrOverloaded class.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }
