package cluster

import "fmt"

// Envelope is one logical message between workers. Payload is an opaque
// serialized blob (relation block, trie block, or control data); Tuples
// records how many logical tuples it carries for metric accounting, and
// Weight how many logical envelopes it represents (Push-style shuffles
// batch physically but count per-tuple messages).
type Envelope struct {
	From    int
	To      int
	Key     string
	Payload []byte
	Tuples  int64
	Weight  int64
}

// MsgWeight returns the logical message count of e (min 1).
func (e Envelope) MsgWeight() int64 {
	if e.Weight > 0 {
		return e.Weight
	}
	return 1
}

// Transport routes envelopes between workers. Implementations must deliver
// every envelope to inboxes grouped by destination and preserve payload
// bytes exactly.
type Transport interface {
	// Route takes all envelopes produced in one exchange (grouped by sender)
	// and returns them grouped by destination worker.
	Route(bySender [][]Envelope) ([][]Envelope, error)
	// Close releases transport resources.
	Close() error
}

// LocalTransport moves envelopes in-process. Payloads are still serialized
// bytes (senders encode, receivers decode), so the compute cost of the
// serialization path is identical to a networked deployment; only the wire
// is skipped.
type LocalTransport struct {
	n int
}

// NewLocalTransport returns a transport for n workers.
func NewLocalTransport(n int) *LocalTransport { return &LocalTransport{n: n} }

// Route groups envelopes by destination.
func (t *LocalTransport) Route(bySender [][]Envelope) ([][]Envelope, error) {
	out := make([][]Envelope, t.n)
	for _, envs := range bySender {
		for _, e := range envs {
			if e.To < 0 || e.To >= t.n {
				return nil, fmt.Errorf("local transport: destination %d out of range [0,%d)", e.To, t.n)
			}
			out[e.To] = append(out[e.To], e)
		}
	}
	return out, nil
}

// Close is a no-op.
func (t *LocalTransport) Close() error { return nil }
