package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Envelope is one logical message between workers. Payload is an opaque
// serialized blob (relation block, trie block, or control data); Tuples
// records how many logical tuples it carries for metric accounting, and
// Weight how many logical envelopes it represents (Push-style shuffles
// batch physically but count per-tuple messages). Chunk is the ordinal of
// this envelope within a chunked stream of one logical block: receivers
// that deduplicate by key must include it, and continuation chunks carry
// Weight < 0 so a chunked block still counts as one logical message.
type Envelope struct {
	From    int
	To      int
	Key     string
	Payload []byte
	Tuples  int64
	Weight  int64
	Chunk   int32
}

// WeightContinuation marks an envelope as a continuation chunk of a block
// whose first chunk already carried the block's logical message weight.
const WeightContinuation int64 = -1

// MsgWeight returns the logical message count of e (min 1, except
// continuation chunks which count 0).
func (e Envelope) MsgWeight() int64 {
	if e.Weight < 0 {
		return 0
	}
	if e.Weight > 0 {
		return e.Weight
	}
	return 1
}

// Transport routes envelopes between workers. Implementations must either
// deliver every envelope to inboxes grouped by destination with payload
// bytes preserved exactly, or return an error — partial or corrupted
// delivery without an error is a contract violation (the engines would
// silently compute wrong results).
type Transport interface {
	// Route takes all envelopes produced in one exchange (grouped by sender)
	// and returns them grouped by destination worker.
	Route(bySender [][]Envelope) ([][]Envelope, error)
	// Close releases transport resources.
	Close() error
}

// ExchangeTransport is the context-aware transport surface: RouteExchange
// receives the run's context (deadline + in-flight cancellation) and the
// exchange's phase name (metrics, fault injection). Cluster.Exchange
// prefers it when implemented and falls back to Route otherwise.
type ExchangeTransport interface {
	Transport
	RouteExchange(ctx context.Context, phase string, bySender [][]Envelope) ([][]Envelope, error)
}

// RetryCounter is implemented by transports that retry failed operations;
// RetryStats returns the cumulative retry count, which Exchange diffs
// around each route to charge retries to the run's metrics.
type RetryCounter interface {
	RetryStats() int64
}

// DialCounter is implemented by transports that open connections lazily;
// DialStats returns the cumulative successful dial count, which the
// cluster diffs around each run so reports can show connection reuse
// (persistent transports amortize dials across exchanges).
type DialCounter interface {
	DialStats() int64
}

// ErrStreamUnsupported is returned by OpenExchange when a transport (or a
// wrapper around one) cannot stream; callers fall back to the materialized
// Route path.
var ErrStreamUnsupported = errors.New("cluster: transport does not support streaming exchanges")

// StreamSender is one worker's sending half of a streaming exchange. Send
// delivers a single bounded chunk and may block under backpressure (the
// receiver's in-flight window is full). Close ends the worker's outgoing
// stream; every sender must be closed — including senders that sent
// nothing — before receivers observe end-of-stream.
type StreamSender interface {
	Send(e Envelope) error
	Close() error
}

// StreamReceiver is one worker's pull iterator over incoming chunks. Recv
// blocks until a chunk arrives, the stream ends (ok=false), or the
// exchange aborts (err != nil). The returned payload is only valid until
// the next Recv call: transports pool receive buffers, so consumers must
// decode or copy before pulling again.
type StreamReceiver interface {
	Recv() (e Envelope, ok bool, err error)
}

// ExchangeStream is one in-flight streaming exchange: per-worker sender
// and receiver halves multiplexed over the transport, with chunk
// granularity cancellation via Abort. Close releases the exchange
// (aborting it if still active) and must always be called.
type ExchangeStream interface {
	Sender(worker int) StreamSender
	Receiver(worker int) StreamReceiver
	// Abort cancels the exchange: blocked Send/Recv calls on every worker
	// return cause (first abort wins). Safe to call concurrently.
	Abort(cause error)
	// Stats reports wire-level counters accumulated so far.
	Stats() StreamStats
	Close() error
}

// StreamStats are wire-level counters for one streaming exchange.
type StreamStats struct {
	// Chunks is the number of chunk envelopes delivered to receivers.
	Chunks int64
	// InflightPeak is the high-water mark of chunks queued at any single
	// receiver (bounded by the exchange window).
	InflightPeak int64
	// RecvPeakBytes is the high-water mark of payload bytes queued at any
	// single receiver — the streamed path's peak receive-side memory.
	RecvPeakBytes int64
}

func (s *StreamStats) merge(o StreamStats) {
	s.Chunks += o.Chunks
	if o.InflightPeak > s.InflightPeak {
		s.InflightPeak = o.InflightPeak
	}
	if o.RecvPeakBytes > s.RecvPeakBytes {
		s.RecvPeakBytes = o.RecvPeakBytes
	}
}

// StreamTransport is the streaming transport surface: OpenExchange starts
// a multiplexed exchange in which senders emit bounded chunks and
// receivers pull them through a window of at most `window` in-flight
// chunks per receiver (backpressure propagates to senders).
type StreamTransport interface {
	Transport
	OpenExchange(ctx context.Context, phase string, window int) (ExchangeStream, error)
}

// DefaultStreamWindow bounds the per-receiver in-flight chunk queue when a
// caller passes window <= 0.
const DefaultStreamWindow = 64

// LocalTransport moves envelopes in-process. Payloads are still serialized
// bytes (senders encode, receivers decode), so the compute cost of the
// serialization path is identical to a networked deployment; only the wire
// is skipped.
type LocalTransport struct {
	n int
}

// NewLocalTransport returns a transport for n workers.
func NewLocalTransport(n int) *LocalTransport { return &LocalTransport{n: n} }

// Route groups envelopes by destination. A counting pass sizes each
// per-destination slice exactly before any envelope is appended.
func (t *LocalTransport) Route(bySender [][]Envelope) ([][]Envelope, error) {
	counts := make([]int, t.n)
	for _, envs := range bySender {
		for i := range envs {
			e := &envs[i]
			if e.To < 0 || e.To >= t.n {
				return nil, fmt.Errorf("local transport: destination %d out of range [0,%d)", e.To, t.n)
			}
			if e.From < 0 || e.From >= t.n {
				return nil, fmt.Errorf("local transport: sender %d out of range [0,%d)", e.From, t.n)
			}
			counts[e.To]++
		}
	}
	out := make([][]Envelope, t.n)
	for d, c := range counts {
		if c > 0 {
			out[d] = make([]Envelope, 0, c)
		}
	}
	for _, envs := range bySender {
		for _, e := range envs {
			out[e.To] = append(out[e.To], e)
		}
	}
	return out, nil
}

// OpenExchange starts an in-process streaming exchange backed by bounded
// per-destination chunk queues.
func (t *LocalTransport) OpenExchange(ctx context.Context, phase string, window int) (ExchangeStream, error) {
	return newLocalExchange(ctx, t.n, window), nil
}

// Close is a no-op.
func (t *LocalTransport) Close() error { return nil }

// queuedChunk pairs a delivered envelope with an optional release hook
// returning its (pooled) payload buffer to the transport.
type queuedChunk struct {
	env     Envelope
	release func()
}

// chunkQueue is a bounded producer/consumer queue of chunks with abort
// support and high-water tracking. push blocks while the queue holds
// `window` chunks (backpressure); pop blocks until a chunk, close, or
// abort.
type chunkQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []queuedChunk
	head     int
	window   int
	closed   bool
	err      error
	curBytes int64

	chunks    int64
	peak      int64
	peakBytes int64
}

func newChunkQueue(window int) *chunkQueue {
	if window <= 0 {
		window = DefaultStreamWindow
	}
	q := &chunkQueue{window: window}
	q.cond = sync.NewCond(&q.mu)
	return q
}

var errQueueClosed = errors.New("cluster: send on closed stream")

func (q *chunkQueue) push(c queuedChunk) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items)-q.head >= q.window && q.err == nil && !q.closed {
		q.cond.Wait()
	}
	if q.err != nil {
		return q.err
	}
	if q.closed {
		return errQueueClosed
	}
	q.items = append(q.items, c)
	q.chunks++
	q.curBytes += int64(len(c.env.Payload))
	if depth := int64(len(q.items) - q.head); depth > q.peak {
		q.peak = depth
	}
	if q.curBytes > q.peakBytes {
		q.peakBytes = q.curBytes
	}
	q.cond.Broadcast()
	return nil
}

func (q *chunkQueue) pop() (queuedChunk, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == q.head && q.err == nil && !q.closed {
		q.cond.Wait()
	}
	if q.err != nil {
		return queuedChunk{}, false, q.err
	}
	if len(q.items) == q.head {
		return queuedChunk{}, false, nil
	}
	c := q.items[q.head]
	q.items[q.head] = queuedChunk{}
	q.head++
	q.curBytes -= int64(len(c.env.Payload))
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.cond.Broadcast()
	return c, true, nil
}

// close marks end-of-stream; buffered chunks remain poppable.
func (q *chunkQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// fail aborts the queue: pending and future push/pop return err, and any
// buffered pooled payloads are released.
func (q *chunkQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
		for i := q.head; i < len(q.items); i++ {
			if rel := q.items[i].release; rel != nil {
				rel()
			}
			q.items[i] = queuedChunk{}
		}
		q.items = q.items[:0]
		q.head = 0
		q.curBytes = 0
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *chunkQueue) stats() StreamStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return StreamStats{Chunks: q.chunks, InflightPeak: q.peak, RecvPeakBytes: q.peakBytes}
}

// localExchange is the in-process ExchangeStream: senders push directly
// into per-destination bounded queues; a queue closes once every sender
// has closed.
type localExchange struct {
	n      int
	queues []*chunkQueue

	mu            sync.Mutex
	closedSenders int
	aborted       error

	watchStop chan struct{}
	watchDone chan struct{}
}

func newLocalExchange(ctx context.Context, n, window int) *localExchange {
	ex := &localExchange{
		n:         n,
		queues:    make([]*chunkQueue, n),
		watchStop: make(chan struct{}),
		watchDone: make(chan struct{}),
	}
	for i := range ex.queues {
		ex.queues[i] = newChunkQueue(window)
	}
	go func() {
		defer close(ex.watchDone)
		select {
		case <-ctx.Done():
			ex.Abort(ctx.Err())
		case <-ex.watchStop:
		}
	}()
	return ex
}

func (ex *localExchange) Sender(worker int) StreamSender { return &localSender{ex: ex, id: worker} }
func (ex *localExchange) Receiver(worker int) StreamReceiver {
	return &localReceiver{ex: ex, id: worker}
}

func (ex *localExchange) Abort(cause error) {
	if cause == nil {
		cause = errors.New("cluster: exchange aborted")
	}
	ex.mu.Lock()
	if ex.aborted == nil {
		ex.aborted = cause
	}
	ex.mu.Unlock()
	for _, q := range ex.queues {
		q.fail(cause)
	}
}

func (ex *localExchange) Stats() StreamStats {
	var s StreamStats
	for _, q := range ex.queues {
		s.merge(q.stats())
	}
	return s
}

func (ex *localExchange) Close() error {
	ex.mu.Lock()
	done := ex.closedSenders >= ex.n || ex.aborted != nil
	ex.mu.Unlock()
	if !done {
		ex.Abort(errors.New("cluster: exchange closed before completion"))
	}
	close(ex.watchStop)
	<-ex.watchDone
	return nil
}

type localSender struct {
	ex     *localExchange
	id     int
	closed bool
}

func (s *localSender) Send(e Envelope) error {
	ex := s.ex
	if e.To < 0 || e.To >= ex.n {
		err := fmt.Errorf("local transport: destination %d out of range [0,%d)", e.To, ex.n)
		ex.Abort(err)
		return err
	}
	return ex.queues[e.To].push(queuedChunk{env: e})
}

func (s *localSender) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	ex := s.ex
	ex.mu.Lock()
	ex.closedSenders++
	last := ex.closedSenders == ex.n && ex.aborted == nil
	ex.mu.Unlock()
	if last {
		for _, q := range ex.queues {
			q.close()
		}
	}
	return nil
}

type localReceiver struct {
	ex *localExchange
	id int
}

func (r *localReceiver) Recv() (Envelope, bool, error) {
	c, ok, err := r.ex.queues[r.id].pop()
	if err != nil || !ok {
		return Envelope{}, false, err
	}
	return c.env, true, nil
}
