package cluster

import (
	"context"
	"fmt"
)

// Envelope is one logical message between workers. Payload is an opaque
// serialized blob (relation block, trie block, or control data); Tuples
// records how many logical tuples it carries for metric accounting, and
// Weight how many logical envelopes it represents (Push-style shuffles
// batch physically but count per-tuple messages).
type Envelope struct {
	From    int
	To      int
	Key     string
	Payload []byte
	Tuples  int64
	Weight  int64
}

// MsgWeight returns the logical message count of e (min 1).
func (e Envelope) MsgWeight() int64 {
	if e.Weight > 0 {
		return e.Weight
	}
	return 1
}

// Transport routes envelopes between workers. Implementations must either
// deliver every envelope to inboxes grouped by destination with payload
// bytes preserved exactly, or return an error — partial or corrupted
// delivery without an error is a contract violation (the engines would
// silently compute wrong results).
type Transport interface {
	// Route takes all envelopes produced in one exchange (grouped by sender)
	// and returns them grouped by destination worker.
	Route(bySender [][]Envelope) ([][]Envelope, error)
	// Close releases transport resources.
	Close() error
}

// ExchangeTransport is the context-aware transport surface: RouteExchange
// receives the run's context (deadline + in-flight cancellation) and the
// exchange's phase name (metrics, fault injection). Cluster.Exchange
// prefers it when implemented and falls back to Route otherwise.
type ExchangeTransport interface {
	Transport
	RouteExchange(ctx context.Context, phase string, bySender [][]Envelope) ([][]Envelope, error)
}

// RetryCounter is implemented by transports that retry failed operations;
// RetryStats returns the cumulative retry count, which Exchange diffs
// around each route to charge retries to the run's metrics.
type RetryCounter interface {
	RetryStats() int64
}

// LocalTransport moves envelopes in-process. Payloads are still serialized
// bytes (senders encode, receivers decode), so the compute cost of the
// serialization path is identical to a networked deployment; only the wire
// is skipped.
type LocalTransport struct {
	n int
}

// NewLocalTransport returns a transport for n workers.
func NewLocalTransport(n int) *LocalTransport { return &LocalTransport{n: n} }

// Route groups envelopes by destination.
func (t *LocalTransport) Route(bySender [][]Envelope) ([][]Envelope, error) {
	out := make([][]Envelope, t.n)
	for _, envs := range bySender {
		for _, e := range envs {
			if e.To < 0 || e.To >= t.n {
				return nil, fmt.Errorf("local transport: destination %d out of range [0,%d)", e.To, t.n)
			}
			out[e.To] = append(out[e.To], e)
		}
	}
	return out, nil
}

// Close is a no-op.
func (t *LocalTransport) Close() error { return nil }
