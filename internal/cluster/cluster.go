package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"adj/internal/blockcache"
	"adj/internal/relation"
)

// Worker is one simulated server: its local relation fragments, local
// tries, and per-cube databases after an HCube shuffle.
type Worker struct {
	ID int
	N  int
	// Rels holds local fragments of base/derived relations, keyed by name.
	Rels map[string]*relation.Relation
	// Cubes holds, per hypercube coordinate index assigned to this server,
	// the local database for that cube (relation name -> fragment) — the
	// legacy raw-tuple path, populated only by Push/Pull shuffles run
	// without a TrieOrder.
	Cubes map[int]map[string]*relation.Relation
	// Blocks is the worker's shared block-trie cache: the HCube shuffle
	// deposits (relation, block) parts here and the join phase pulls
	// per-cube tries built exactly once per block (see blockcache).
	Blocks *blockcache.Registry
	// Inbox receives envelopes during an exchange.
	Inbox []Envelope
	// Scratch carries engine-specific per-phase state.
	Scratch map[string]interface{}
	// arena holds per-exchange payload allocations; reset after consume.
	arena payloadArena
}

// PayloadCopy copies enc into the worker's per-exchange payload arena and
// returns the stable copy. Envelope payloads built this way share slab
// allocations instead of one garbage buffer each; the arena is recycled at
// the end of the exchange, so payloads must not be retained past consume
// (decoders copy, so this holds everywhere in the runtime).
func (w *Worker) PayloadCopy(enc []byte) []byte { return w.arena.copyOf(enc) }

// encScratch pools the delta-encoder's working buffer shared by every
// exchange producer; the finished bytes are copied into the worker's
// payload arena, so neither side of the encode allocates in steady state.
var encScratch = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 1<<14)
	return &b
}}

// EncodeRelation serializes r with the delta codec into a pooled scratch
// buffer and parks the payload in the worker's per-exchange arena. All
// shuffle producers (HCube blocks, BigJoin binding rounds, binary-join
// partitions) share this path.
func (w *Worker) EncodeRelation(r *relation.Relation) []byte {
	sp := encScratch.Get().(*[]byte)
	buf := relation.AppendEncode((*sp)[:0], r)
	payload := w.PayloadCopy(buf)
	*sp = buf[:0]
	encScratch.Put(sp)
	return payload
}

// DefaultChunkRows bounds the rows per stream chunk when a producer
// passes chunkRows <= 0: large enough to amortize framing, small enough
// that receivers start decoding long before a big block finishes sending.
const DefaultChunkRows = 8192

// EncodeRelationChunks serializes r in row-range chunks of at most
// chunkRows rows (<= 0 uses DefaultChunkRows), invoking fn once per chunk
// with the arena-parked payload, the row range [lo, hi), and the chunk
// ordinal. Each chunk is an independently decodable relation encoding; a
// relation at or under chunkRows yields exactly one chunk, byte-identical
// to EncodeRelation's output. Iteration stops at fn's first error.
func (w *Worker) EncodeRelationChunks(r *relation.Relation, chunkRows int, fn func(payload []byte, lo, hi, chunk int) error) error {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	n := r.Len()
	if n <= chunkRows {
		return fn(w.EncodeRelation(r), 0, n, 0)
	}
	sp := encScratch.Get().(*[]byte)
	defer func() { encScratch.Put(sp) }()
	chunk := 0
	for lo := 0; lo < n; lo += chunkRows {
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		buf := relation.AppendEncodeRange((*sp)[:0], r, lo, hi)
		*sp = buf[:0]
		if err := fn(w.PayloadCopy(buf), lo, hi, chunk); err != nil {
			return err
		}
		chunk++
	}
	return nil
}

// payloadArena is a slab allocator for envelope payloads. Reset keeps the
// first slab, so steady-state exchanges reuse one allocation.
type payloadArena struct {
	slabs [][]byte
	cur   []byte
}

const arenaSlabSize = 1 << 18

func (a *payloadArena) copyOf(b []byte) []byte {
	n := len(b)
	if n == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < n {
		size := arenaSlabSize
		if n > size {
			size = n
		}
		if a.cur != nil {
			a.slabs = append(a.slabs, a.cur)
		}
		a.cur = make([]byte, 0, size)
	}
	off := len(a.cur)
	a.cur = append(a.cur, b...)
	return a.cur[off : off+n : off+n]
}

func (a *payloadArena) reset() {
	// Keep only the current (largest-lived) slab for reuse.
	a.slabs = a.slabs[:0]
	a.cur = a.cur[:0]
}

func newWorker(id, n int) *Worker {
	return &Worker{
		ID: id, N: n,
		Rels:    make(map[string]*relation.Relation),
		Cubes:   make(map[int]map[string]*relation.Relation),
		Blocks:  blockcache.New(),
		Scratch: make(map[string]interface{}),
	}
}

// CubeDB returns (creating if needed) the local database of cube c.
func (w *Worker) CubeDB(c int) map[string]*relation.Relation {
	db, ok := w.Cubes[c]
	if !ok {
		db = make(map[string]*relation.Relation)
		w.Cubes[c] = db
	}
	return db
}

// ResetCubes clears per-cube state between shuffles.
func (w *Worker) ResetCubes() {
	w.Cubes = make(map[int]map[string]*relation.Relation)
	w.Blocks = blockcache.New()
}

// Config configures a cluster.
type Config struct {
	// N is the number of workers (the paper uses up to 28).
	N int
	// Transport defaults to LocalTransport.
	Transport Transport
	// Network models exchange wall time; zero value uses DefaultNetwork.
	Network NetworkModel
	// Sequential runs phase bodies one worker at a time and defines phase
	// wall time as the max per-worker time — the deterministic simulation
	// mode, which times a 28-worker cluster faithfully on a 2-core machine.
	// The default runs one goroutine per worker, using the real hardware.
	Sequential bool
	// RealParallel is the legacy name for the goroutine mode.
	//
	// Deprecated: goroutine-parallel workers are now the default; set
	// Sequential for the deterministic simulation. The field is ignored.
	RealParallel bool
}

// Cluster is a simulated cluster executing BSP phases.
type Cluster struct {
	N        int
	Workers  []*Worker
	Metrics  *Metrics
	network  NetworkModel
	transp   Transport
	parallel bool
	// parent is the caller's run context (SetContext's argument; never
	// nil). Its error is what a cancelled run reports.
	parent context.Context
	// ctx derives from parent with an internal cancel the runtime fires on
	// a worker panic, so peers observe prompt cancellation even when the
	// caller's context stays live. Phases check it at every barrier;
	// in-phase cancellation is handled by the workloads themselves (the
	// cube scheduler and the join inner loops poll the same context via
	// CancelPoll).
	ctx       context.Context
	cancelRun context.CancelFunc
	// panicHook, when non-nil, runs at the start of every worker's phase
	// body (fault injection: a hook that panics exercises the containment
	// path). Production runs leave it nil.
	panicHook func(phase string, workerID int)
}

// New builds a cluster.
func New(cfg Config) *Cluster {
	if cfg.N <= 0 {
		cfg.N = 1
	}
	if cfg.Transport == nil {
		cfg.Transport = NewLocalTransport(cfg.N)
	}
	if cfg.Network == (NetworkModel{}) {
		cfg.Network = DefaultNetwork()
	}
	c := &Cluster{
		N:        cfg.N,
		Metrics:  NewMetrics(),
		network:  cfg.Network,
		transp:   cfg.Transport,
		parallel: !cfg.Sequential,
	}
	//adjlint:ignore ctxflow constructor default: every execution re-installs its own context via SetContext
	c.SetContext(context.Background())
	for i := 0; i < cfg.N; i++ {
		c.Workers = append(c.Workers, newWorker(i, cfg.N))
	}
	return c
}

// Close releases the transport.
func (c *Cluster) Close() error {
	if c.cancelRun != nil {
		c.cancelRun()
	}
	return c.transp.Close()
}

// SetContext installs the cancellation context for subsequent phases.
// A nil ctx resets to Background. A session-resident cluster calls this at
// the start of every execution with that execution's context. The
// installed context is re-derived with an internal cancel so a worker
// panic can cancel its peers promptly without touching the caller's
// context; re-installing (the next run) re-arms it.
func (c *Cluster) SetContext(ctx context.Context) {
	if ctx == nil {
		//adjlint:ignore ctxflow documented nil-reset: SetContext(nil) restores the uncancellable default
		ctx = context.Background()
	}
	if c.cancelRun != nil {
		c.cancelRun() // release the previous run's derived context
	}
	c.parent = ctx
	c.ctx, c.cancelRun = context.WithCancel(ctx)
}

// Context returns the current run's context (never nil). It is cancelled
// when the caller's context is cancelled or when a worker panic aborts the
// run.
func (c *Cluster) Context() context.Context { return c.ctx }

// CancelPoll returns a cheap poll reporting whether the current run is
// cancelled (caller cancellation or a peer worker's panic). Workloads with
// long inner loops (the cube scheduler, the Leapfrog intersections) poll
// it between batches so an abort lands mid-phase, not at the next barrier.
func (c *Cluster) CancelPoll() func() bool {
	ctx := c.ctx
	return func() bool { return ctx.Err() != nil }
}

// SetPanicHook installs a hook invoked at the start of every worker phase
// body — the deterministic fault-injection point for panic containment
// (see internal/faultinject). nil removes it.
func (c *Cluster) SetPanicHook(hook func(phase string, workerID int)) {
	c.panicHook = hook
}

// ResetRun clears all per-run worker state: inboxes, payload arenas,
// per-cube databases, block-trie registries and relation fragments. A
// session calls it after a failed or cancelled execution so no partial
// exchange backlog or half-built registry can leak into the next run (a
// clean run re-loads everything it needs; the session-level trie store is
// separate state and survives).
func (c *Cluster) ResetRun() {
	for _, w := range c.Workers {
		w.Inbox = nil
		w.arena = payloadArena{}
		w.Rels = make(map[string]*relation.Relation)
		w.ResetCubes()
		w.Scratch = make(map[string]interface{})
	}
}

// ResetMetrics starts a fresh metrics collection (workers keep their data).
func (c *Cluster) ResetMetrics() { c.Metrics = NewMetrics() }

// Parallel runs fn on every worker and charges the phase's computation time
// as the maximum per-worker duration (simulated parallel wall clock).
//
// Panic containment: a panic in any worker's phase body (either mode) is
// recovered into a *WorkerPanicError carrying the worker ID, phase and
// stack, the run's derived context is cancelled so peer workers polling it
// bail out promptly, and exactly one error propagates — the panic, never
// the collateral cancellations it provoked.
func (c *Cluster) Parallel(phase string, fn func(w *Worker) error) error {
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("phase %s: %w", phase, err)
	}
	durs := make([]time.Duration, c.N)
	errs := make([]error, c.N)
	if c.parallel {
		var wg sync.WaitGroup
		for i := 0; i < c.N; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				errs[i] = c.runWorker(phase, c.Workers[i], fn)
				durs[i] = time.Since(t0)
			}(i)
		}
		wg.Wait()
	} else {
		for i := 0; i < c.N; i++ {
			if err := c.ctx.Err(); err != nil {
				errs[i] = err
				break
			}
			t0 := time.Now()
			errs[i] = c.runWorker(phase, c.Workers[i], fn)
			durs[i] = time.Since(t0)
		}
	}
	var max time.Duration
	for _, d := range durs {
		if d > max {
			max = d
		}
	}
	c.Metrics.Phase(phase).CompSeconds += max.Seconds()
	return c.foldErrors(phase, errs)
}

// runWorker executes one worker's phase body with panic containment: a
// panic is recovered into a *WorkerPanicError and the run's derived
// context is cancelled so every peer observes the abort promptly (at its
// next barrier check or inner-loop poll).
func (c *Cluster) runWorker(phase string, w *Worker, fn func(w *Worker) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &WorkerPanicError{
				WorkerID: w.ID,
				Phase:    phase,
				Value:    r,
				Stack:    debug.Stack(),
			}
			c.Metrics.AddPanicRecovered()
			c.cancelRun()
		}
	}()
	if c.panicHook != nil {
		c.panicHook(phase, w.ID)
	}
	return fn(w)
}

// foldErrors reduces per-worker errors to the single error a phase
// reports, by root-cause priority: a recovered panic beats everything (the
// cancellations it provoked are collateral); then a caller-level
// cancellation (the user's context, not the internal abort); then the
// first remaining error in worker order.
func (c *Cluster) foldErrors(phase string, errs []error) error {
	var panicErr, firstErr error
	firstWorker := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		var wp *WorkerPanicError
		if panicErr == nil && errors.As(err, &wp) {
			panicErr = err
		}
		if firstErr == nil {
			firstErr, firstWorker = err, i
		}
	}
	if panicErr != nil {
		return fmt.Errorf("phase %s: %w", phase, panicErr)
	}
	if firstErr == nil {
		return nil
	}
	if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
		// Distinguish the caller's cancellation from the internal panic
		// abort (already handled above) — report the parent context's error
		// when it fired, else fall through to the worker's own error.
		if perr := c.parent.Err(); perr != nil {
			return fmt.Errorf("phase %s: %w", phase, perr)
		}
	}
	return fmt.Errorf("phase %s worker %d: %w", phase, firstWorker, firstErr)
}

// Exchange runs one all-to-all shuffle: produce yields each worker's
// outgoing envelopes (charged as computation), the transport routes them,
// and consume processes each worker's inbox (also computation). Network
// counters and modeled communication time accrue to the phase.
func (c *Cluster) Exchange(phase string,
	produce func(w *Worker) ([]Envelope, error),
	consume func(w *Worker, inbox []Envelope) error) error {

	bySender := make([][]Envelope, c.N)
	err := c.Parallel(phase+"/send", func(w *Worker) error {
		envs, err := produce(w)
		if err != nil {
			return err
		}
		for i := range envs {
			envs[i].From = w.ID
		}
		bySender[w.ID] = envs
		return nil
	})
	if err != nil {
		return err
	}

	// Account network counters.
	pm := c.Metrics.Phase(phase)
	outBytes := make([]int64, c.N)
	inBytes := make([]int64, c.N)
	outMsgs := make([]int64, c.N)
	for s, envs := range bySender {
		for _, e := range envs {
			b := int64(len(e.Payload))
			pm.BytesSent += b
			pm.TuplesSent += e.Tuples
			pm.Messages += e.MsgWeight()
			outBytes[s] += b
			outMsgs[s] += e.MsgWeight()
			if e.To >= 0 && e.To < c.N {
				inBytes[e.To] += b
			}
		}
	}
	var maxBytes, maxMsgs int64
	for i := 0; i < c.N; i++ {
		if outBytes[i] > maxBytes {
			maxBytes = outBytes[i]
		}
		if inBytes[i] > maxBytes {
			maxBytes = inBytes[i]
		}
		if outMsgs[i] > maxMsgs {
			maxMsgs = outMsgs[i]
		}
	}
	pm.CommSeconds += c.network.CommSeconds(maxBytes, maxMsgs)

	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("phase %s: %w", phase, err)
	}
	routed, err := c.route(phase, bySender)
	if err != nil {
		return fmt.Errorf("phase %s: %w", phase, err)
	}
	for i, inbox := range routed {
		c.Workers[i].Inbox = inbox
	}
	defer func() {
		for _, w := range c.Workers {
			w.Inbox = nil
			w.arena.reset()
		}
	}()
	return c.Parallel(phase+"/recv", func(w *Worker) error {
		return consume(w, w.Inbox)
	})
}

// route dispatches one exchange's envelopes through the transport,
// preferring the context-aware interface (deadlines, in-flight
// cancellation, per-phase fault injection) when the transport implements
// it, and folds the transport's retry counters into the run's metrics.
func (c *Cluster) route(phase string, bySender [][]Envelope) ([][]Envelope, error) {
	var retryBefore, dialBefore int64
	rc, counted := c.transp.(RetryCounter)
	if counted {
		retryBefore = rc.RetryStats()
	}
	dc, dialed := c.transp.(DialCounter)
	if dialed {
		dialBefore = dc.DialStats()
	}
	var routed [][]Envelope
	var err error
	if et, ok := c.transp.(ExchangeTransport); ok {
		routed, err = et.RouteExchange(c.ctx, phase, bySender)
	} else {
		routed, err = c.transp.Route(bySender)
	}
	if counted {
		c.Metrics.AddTransportRetries(rc.RetryStats() - retryBefore)
	}
	if dialed {
		c.Metrics.AddTransportDials(dc.DialStats() - dialBefore)
	}
	return routed, err
}

// LoadRelation distributes r across workers round-robin (the arbitrary
// initial placement a distributed file system gives you). Fragments keep
// the relation's name.
func (c *Cluster) LoadRelation(r *relation.Relation) {
	frags := make([]*relation.Relation, c.N)
	for i := range frags {
		frags[i] = relation.New(r.Name, r.Attrs...)
	}
	for i, n := 0, r.Len(); i < n; i++ {
		frags[i%c.N].AppendTuple(r.Tuple(i))
	}
	for i, w := range c.Workers {
		w.Rels[r.Name] = frags[i]
	}
}

// LoadDatabase distributes every relation.
func (c *Cluster) LoadDatabase(rels []*relation.Relation) {
	for _, r := range rels {
		c.LoadRelation(r)
	}
}

// DropRelation removes a relation's fragments from all workers.
func (c *Cluster) DropRelation(name string) {
	for _, w := range c.Workers {
		delete(w.Rels, name)
	}
}

// GatherCounts sums a per-worker int64 extractor (e.g. local result counts).
func (c *Cluster) GatherCounts(get func(w *Worker) int64) int64 {
	var t int64
	for _, w := range c.Workers {
		t += get(w)
	}
	return t
}

// LocalSize returns the number of tuples of relation name on worker w
// (0 when absent).
func (w *Worker) LocalSize(name string) int {
	if r, ok := w.Rels[name]; ok {
		return r.Len()
	}
	return 0
}
