package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// StreamExchange runs one all-to-all shuffle through the streaming
// transport path: every worker's producer emits bounded chunks while every
// worker's consumer pulls and processes them, so communication overlaps
// computation on both sides (trie builds start when the first chunk lands,
// not when the slowest sender finishes).
//
// Contract: produce must Send complete, independently-decodable chunks and
// return (the cluster closes the sender half); consume must drain its
// receiver until end-of-stream or error, must tolerate any arrival
// interleaving across senders, and must not retain a received payload past
// the next Recv (transports pool receive buffers).
//
// In sequential mode — the deterministic simulation — or over a transport
// without streaming support, the exchange runs materialized through the
// same Exchange shim as every legacy call site: produce collects into an
// inbox routed as one batch, consume iterates it in deterministic order.
// Results must be identical either way; only wall-clock and the wire-level
// counters (chunks, overlap, receive peaks) differ.
func (c *Cluster) StreamExchange(phase string,
	produce func(w *Worker, s StreamSender) error,
	consume func(w *Worker, r StreamReceiver) error) error {

	if st, ok := c.transp.(StreamTransport); ok && c.parallel {
		err := c.streamedExchange(phase, st, produce, consume)
		if !errors.Is(err, ErrStreamUnsupported) {
			return err
		}
	}
	return c.materializedStreamExchange(phase, produce, consume)
}

// streamedExchange is the overlapping path: 2N goroutines (one producer
// and one consumer per worker, both under panic containment) over one
// multiplexed transport exchange.
func (c *Cluster) streamedExchange(phase string, st StreamTransport,
	produce func(w *Worker, s StreamSender) error,
	consume func(w *Worker, r StreamReceiver) error) error {

	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("phase %s: %w", phase, err)
	}

	var retryBefore, dialBefore int64
	rc, hasRetry := c.transp.(RetryCounter)
	if hasRetry {
		retryBefore = rc.RetryStats()
	}
	dc, hasDial := c.transp.(DialCounter)
	if hasDial {
		dialBefore = dc.DialStats()
	}

	es, err := st.OpenExchange(c.ctx, phase, DefaultStreamWindow)
	if err != nil {
		if errors.Is(err, ErrStreamUnsupported) {
			return err
		}
		return fmt.Errorf("phase %s: %w", phase, err)
	}

	n := c.N
	tracker := &abortTracker{}
	prodErrs := make([]error, n)
	consErrs := make([]error, n)
	prodDur := make([]time.Duration, n)
	consDur := make([]time.Duration, n)
	senders := make([]*meteredSender, n)
	receivers := make([]*meteredReceiver, n)

	defer func() {
		for _, w := range c.Workers {
			w.arena.reset()
		}
	}()

	t0 := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			w := c.Workers[i]
			ms := &meteredSender{inner: es.Sender(i), w: w, inBytes: make([]int64, n)}
			senders[i] = ms
			ts := time.Now()
			err := c.runWorker(phase+"/send", w, func(w *Worker) error {
				return produce(w, ms)
			})
			prodDur[i] = time.Since(ts)
			ms.inner.Close()
			if err != nil {
				//adjlint:ignore errwrap identity dedup against the recorded abort cause, not classification
				if tracker.abort(es, err) || err != tracker.cause() {
					prodErrs[i] = err
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			w := c.Workers[i]
			mr := &meteredReceiver{inner: es.Receiver(i)}
			receivers[i] = mr
			ts := time.Now()
			err := c.runWorker(phase+"/recv", w, func(w *Worker) error {
				return consume(w, mr)
			})
			consDur[i] = time.Since(ts)
			if err != nil {
				//adjlint:ignore errwrap identity dedup against the recorded abort cause, not classification
				if tracker.abort(es, err) || err != tracker.cause() {
					consErrs[i] = err
				}
				return
			}
			// Drain anything the consumer left unread so senders blocked on
			// the window can finish and pooled buffers return.
			for {
				if _, ok, err := mr.inner.Recv(); err != nil || !ok {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	stats := es.Stats()
	es.Close()

	// Accounting. Producer/consumer "busy" time excludes blocking inside
	// Send/Recv (backpressure waits are not computation); the comp phases
	// keep the same vocabulary as the materialized path, and the overlap
	// counter records how much busy time the pipeline packed into less
	// wall clock than a barriered exchange would need.
	pm := c.Metrics.Phase(phase)
	inBytes := make([]int64, n)
	var maxBytes, maxMsgs int64
	var maxProdBusy, maxConsBusy float64
	for i := 0; i < n; i++ {
		ms, mr := senders[i], receivers[i]
		if ms == nil || mr == nil {
			continue
		}
		pm.BytesSent += ms.bytes
		pm.TuplesSent += ms.tuples
		pm.Messages += ms.msgs
		if ms.bytes > maxBytes {
			maxBytes = ms.bytes
		}
		if ms.msgs > maxMsgs {
			maxMsgs = ms.msgs
		}
		for d, b := range ms.inBytes {
			inBytes[d] += b
		}
		if busy := (prodDur[i] - ms.wait).Seconds(); busy > maxProdBusy {
			maxProdBusy = busy
		}
		if busy := (consDur[i] - mr.wait).Seconds(); busy > maxConsBusy {
			maxConsBusy = busy
		}
	}
	for _, b := range inBytes {
		if b > maxBytes {
			maxBytes = b
		}
	}
	pm.CommSeconds += c.network.CommSeconds(maxBytes, maxMsgs)
	c.Metrics.Phase(phase + "/send").CompSeconds += maxProdBusy
	c.Metrics.Phase(phase + "/recv").CompSeconds += maxConsBusy
	if overlap := maxProdBusy + maxConsBusy - elapsed; overlap > 0 {
		pm.OverlapSeconds += overlap
	}
	pm.StreamChunks += stats.Chunks
	if stats.InflightPeak > pm.InflightPeakChunks {
		pm.InflightPeakChunks = stats.InflightPeak
	}
	if stats.RecvPeakBytes > pm.RecvPeakBytes {
		pm.RecvPeakBytes = stats.RecvPeakBytes
	}
	if hasRetry {
		c.Metrics.AddTransportRetries(rc.RetryStats() - retryBefore)
	}
	if hasDial {
		c.Metrics.AddTransportDials(dc.DialStats() - dialBefore)
	}

	if err := c.foldErrors(phase+"/send", prodErrs); err != nil {
		return err
	}
	if err := c.foldErrors(phase+"/recv", consErrs); err != nil {
		return err
	}
	if cause := tracker.cause(); cause != nil {
		// Every worker error was collateral of one abort (e.g. the caller's
		// context fired): the cause itself is the phase's error.
		return fmt.Errorf("phase %s: %w", phase, cause)
	}
	return nil
}

// materializedStreamExchange runs a StreamExchange body through the
// materialized Exchange shim: identical accounting, routing, and error
// semantics to every legacy call site, with deterministic consume order in
// sequential mode.
func (c *Cluster) materializedStreamExchange(phase string,
	produce func(w *Worker, s StreamSender) error,
	consume func(w *Worker, r StreamReceiver) error) error {

	inboxBytes := make([]int64, c.N)
	err := c.Exchange(phase,
		func(w *Worker) ([]Envelope, error) {
			cs := &collectSender{}
			if err := produce(w, cs); err != nil {
				return nil, err
			}
			return cs.envs, nil
		},
		func(w *Worker, inbox []Envelope) error {
			var b int64
			for i := range inbox {
				b += int64(len(inbox[i].Payload))
			}
			inboxBytes[w.ID] = b
			return consume(w, &sliceReceiver{inbox: inbox})
		})
	var peak int64
	for _, b := range inboxBytes {
		if b > peak {
			peak = b
		}
	}
	pm := c.Metrics.Phase(phase)
	if peak > pm.RecvPeakBytes {
		pm.RecvPeakBytes = peak
	}
	return err
}

// abortTracker distinguishes a worker's own error from the collateral
// errors an exchange abort propagates to its peers: only the first abort's
// owner (and workers failing with a different error, e.g. a recovered
// panic) record into the fold arrays.
type abortTracker struct {
	mu  sync.Mutex
	err error
}

func (a *abortTracker) abort(es ExchangeStream, err error) (first bool) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
		first = true
	}
	a.mu.Unlock()
	es.Abort(err)
	return first
}

func (a *abortTracker) cause() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// meteredSender stamps From, tallies network counters per chunk, and
// tracks time blocked inside the transport (excluded from comp charging).
type meteredSender struct {
	inner   StreamSender
	w       *Worker
	wait    time.Duration
	bytes   int64
	tuples  int64
	msgs    int64
	inBytes []int64
}

func (s *meteredSender) Send(e Envelope) error {
	e.From = s.w.ID
	b := int64(len(e.Payload))
	t0 := time.Now()
	err := s.inner.Send(e)
	s.wait += time.Since(t0)
	if err != nil {
		return err
	}
	s.bytes += b
	s.tuples += e.Tuples
	s.msgs += e.MsgWeight()
	if e.To >= 0 && e.To < len(s.inBytes) {
		s.inBytes[e.To] += b
	}
	return nil
}

func (s *meteredSender) Close() error { return s.inner.Close() }

// meteredReceiver tracks time blocked inside Recv (excluded from comp
// charging: waiting for chunks is communication, not computation).
type meteredReceiver struct {
	inner StreamReceiver
	wait  time.Duration
}

func (r *meteredReceiver) Recv() (Envelope, bool, error) {
	t0 := time.Now()
	e, ok, err := r.inner.Recv()
	r.wait += time.Since(t0)
	return e, ok, err
}

// collectSender materializes a produce callback's chunks for the Exchange
// shim.
type collectSender struct {
	envs []Envelope
}

func (s *collectSender) Send(e Envelope) error {
	s.envs = append(s.envs, e)
	return nil
}

func (s *collectSender) Close() error { return nil }

// sliceReceiver iterates a materialized inbox through the StreamReceiver
// surface.
type sliceReceiver struct {
	inbox []Envelope
	i     int
}

func (r *sliceReceiver) Recv() (Envelope, bool, error) {
	if r.i >= len(r.inbox) {
		return Envelope{}, false, nil
	}
	e := r.inbox[r.i]
	r.i++
	return e, true, nil
}
