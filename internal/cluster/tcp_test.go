package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// deadAddr returns a loopback address that refuses connections (a port
// that was bound and released).
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// routeWithTimeout runs Route and fails the test if it hangs — the
// regression this guards against is Route blocking forever in wg.Wait when
// a sender dies and its receiver keeps waiting in Accept.
func routeWithTimeout(t *testing.T, tr *TCPTransport, bySender [][]Envelope, d time.Duration) ([][]Envelope, error) {
	t.Helper()
	type result struct {
		out [][]Envelope
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := tr.Route(bySender)
		done <- result{out, err}
	}()
	select {
	case r := <-done:
		return r.out, r.err
	case <-time.After(d):
		t.Fatal("TCPTransport.Route hung after a sender failure (deadlock regression)")
		return nil, nil
	}
}

// TestTCPRouteSenderFailureReturnsError kills a sender mid-exchange by
// pointing its destination at a dead address: the dial fails, no
// connection ever reaches the destination's listener, and Route must
// surface the sender error instead of hanging in Accept.
func TestTCPRouteSenderFailureReturnsError(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.addrs[1] = deadAddr(t)

	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "k", Payload: []byte("payload")}}
	if _, err := routeWithTimeout(t, tr, bySender, 30*time.Second); err == nil {
		t.Fatal("Route should report the failed sender")
	}
}

// TestTCPRoutePartialSenderFailure mixes healthy and dead destinations:
// the healthy exchange leg completes, the dead one errors, and Route
// still returns (with the sender error) instead of deadlocking on the
// receiver that never gets its connection.
func TestTCPRoutePartialSenderFailure(t *testing.T) {
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.addrs[2] = deadAddr(t)

	bySender := make([][]Envelope, 3)
	bySender[0] = []Envelope{
		{From: 0, To: 1, Key: "ok", Payload: []byte("a")},
		{From: 0, To: 2, Key: "dead", Payload: []byte("b")},
	}
	bySender[1] = []Envelope{{From: 1, To: 1, Key: "self", Payload: []byte("c")}}
	if _, err := routeWithTimeout(t, tr, bySender, 30*time.Second); err == nil {
		t.Fatal("Route should report the failed sender")
	}
}

// TestTCPRouteRecoversAfterFailure verifies the abort path re-arms the
// listeners: a failed exchange must not poison the next one.
func TestTCPRouteRecoversAfterFailure(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	good := tr.addrs[1]
	tr.addrs[1] = deadAddr(t)

	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "k", Payload: []byte("x")}}
	if _, err := routeWithTimeout(t, tr, bySender, 30*time.Second); err == nil {
		t.Fatal("first route should fail")
	}

	tr.addrs[1] = good
	out, err := routeWithTimeout(t, tr, bySender, 30*time.Second)
	if err != nil {
		t.Fatalf("second route should succeed: %v", err)
	}
	if len(out[1]) != 1 || out[1][0].Key != "k" || string(out[1][0].Payload) != "x" {
		t.Fatalf("second route delivered %+v", out[1])
	}
}

// TestTCPRouteNoStaleBacklogAfterAbort stresses the abort path for backlog
// contamination: in exchange 1, sender 0→1 dials and writes successfully
// while sender 1→0 fails, so the abort can fire before receiver 1 accepts
// the healthy connection, leaving it in the kernel backlog. Exchange 2 on
// the same transport must never be handed exchange 1's envelopes.
func TestTCPRouteNoStaleBacklogAfterAbort(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		tr, err := NewTCPTransport(2)
		if err != nil {
			t.Fatal(err)
		}
		good := tr.addrs[0]
		tr.addrs[0] = deadAddr(t)

		first := make([][]Envelope, 2)
		first[0] = []Envelope{{From: 0, To: 1, Key: "OLD", Payload: []byte("stale")}}
		first[1] = []Envelope{{From: 1, To: 0, Key: "doomed", Payload: []byte("x")}}
		if _, err := routeWithTimeout(t, tr, first, 30*time.Second); err == nil {
			tr.Close()
			t.Fatal("first route should fail")
		}

		tr.addrs[0] = good
		second := make([][]Envelope, 2)
		second[0] = []Envelope{{From: 0, To: 1, Key: "NEW", Payload: []byte("fresh")}}
		out, err := routeWithTimeout(t, tr, second, 30*time.Second)
		if err != nil {
			tr.Close()
			t.Fatalf("iter %d: second route failed: %v", iter, err)
		}
		if len(out[1]) != 1 || out[1][0].Key != "NEW" {
			tr.Close()
			t.Fatalf("iter %d: exchange 2 received stale envelopes: %+v", iter, out[1])
		}
		tr.Close()
	}
}

// TestTCPRouteNoStaleBacklogBusyReceiver is the harder contamination
// scenario: receiver 1 is kept busy reading a multi-megabyte frame while a
// second, fully-written small connection parks in its accept backlog; the
// abort (triggered by a third, dead destination) kills the big transfer,
// the receiver exits with the small connection still queued, and exchange
// 2 must not be handed its envelopes.
func TestTCPRouteNoStaleBacklogBusyReceiver(t *testing.T) {
	big := make([]byte, 4<<20)
	for iter := 0; iter < 40; iter++ {
		tr, err := NewTCPTransport(3)
		if err != nil {
			t.Fatal(err)
		}
		good := tr.addrs[2]
		tr.addrs[2] = deadAddr(t)

		first := make([][]Envelope, 3)
		first[0] = []Envelope{{From: 0, To: 1, Key: "OLD-big", Payload: big}}
		first[1] = []Envelope{
			{From: 1, To: 1, Key: "OLD-small", Payload: []byte("stale")},
			{From: 1, To: 2, Key: "doomed", Payload: []byte("x")},
		}
		if _, err := routeWithTimeout(t, tr, first, 30*time.Second); err == nil {
			tr.Close()
			t.Fatal("first route should fail")
		}

		tr.addrs[2] = good
		second := make([][]Envelope, 3)
		second[0] = []Envelope{{From: 0, To: 1, Key: "NEW", Payload: []byte("fresh")}}
		out, err := routeWithTimeout(t, tr, second, 30*time.Second)
		if err != nil {
			tr.Close()
			t.Fatalf("iter %d: second route failed: %v", iter, err)
		}
		if len(out[1]) != 1 || out[1][0].Key != "NEW" {
			tr.Close()
			t.Fatalf("iter %d: exchange 2 received stale envelopes: %d envs, first key %q",
				iter, len(out[1]), out[1][0].Key)
		}
		tr.Close()
	}
}

// TestTCPRetryStatsCountDialRetries verifies the retry loop: a dead
// destination is retried MaxAttempts times with backoff, the retry counter
// records the extra attempts, and the final error is a typed
// *TransportError carrying the attempt count.
func TestTCPRetryStatsCountDialRetries(t *testing.T) {
	tr, err := NewTCPTransportWithRetry(2, RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.addrs[1] = deadAddr(t)

	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "k", Payload: []byte("p")}}
	_, err = routeWithTimeout(t, tr, bySender, 30*time.Second)
	if err == nil {
		t.Fatal("Route to a dead destination should fail")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrTransport, got %v", err)
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("want *TransportError, got %T", err)
	}
	if te.Op != "dial" || te.Dest != 1 || te.Attempts != 3 {
		t.Fatalf("unexpected TransportError: %+v", te)
	}
	if got := tr.RetryStats(); got != 2 {
		t.Fatalf("RetryStats() = %d, want 2 (attempts 2 and 3)", got)
	}
}

// TestTCPRouteExchangeCancelInFlight cancels the context while a sender is
// stuck retrying a dead destination: the exchange must abort promptly and
// return the context's error, classifiable as ErrCanceled.
func TestTCPRouteExchangeCancelInFlight(t *testing.T) {
	tr, err := NewTCPTransportWithRetry(2, RetryPolicy{
		MaxAttempts: 1000, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.addrs[1] = deadAddr(t)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "k", Payload: []byte("p")}}

	done := make(chan error, 1)
	go func() {
		_, err := tr.RouteExchange(ctx, "test", bySender)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RouteExchange ignored in-flight cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestTCPRouteExchangeDeadline gives the exchange a context deadline while
// its only destination is dead: the retry loop must stop at the deadline
// and surface context.DeadlineExceeded instead of spinning through its
// (effectively unbounded) attempt budget.
func TestTCPRouteExchangeDeadline(t *testing.T) {
	tr, err := NewTCPTransportWithRetry(2, RetryPolicy{
		MaxAttempts: 100000, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.addrs[1] = deadAddr(t)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "k", Payload: []byte("p")}}

	done := make(chan error, 1)
	go func() {
		_, err := tr.RouteExchange(ctx, "test", bySender)
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RouteExchange ignored its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestTCPCorruptStreamAbortsTyped forges a connection carrying a corrupt
// frame (implausible key length) addressed to an open exchange: the
// exchange must abort with a typed read-side transport error — corruption
// is not retried — and the transport must still serve the next exchange.
func TestTCPCorruptStreamAbortsTyped(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	es, err := tr.OpenExchange(context.Background(), "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", tr.addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hd [8]byte
	binary.LittleEndian.PutUint32(hd[0:], tcpMagic)
	binary.LittleEndian.PutUint32(hd[4:], 0) // sender 0
	if _, err := conn.Write(hd[:]); err != nil {
		t.Fatal(err)
	}
	var fh [24]byte
	binary.LittleEndian.PutUint64(fh[0:], es.(*tcpExchange).id)
	binary.LittleEndian.PutUint32(fh[8:], 0)      // from
	binary.LittleEndian.PutUint32(fh[12:], 1)     // to
	binary.LittleEndian.PutUint32(fh[16:], 0)     // chunk
	binary.LittleEndian.PutUint32(fh[20:], 1<<30) // keyLen: beyond bound
	if _, err := conn.Write(fh[:]); err != nil {
		t.Fatal(err)
	}

	recvErr := make(chan error, 1)
	go func() {
		_, _, err := es.Receiver(1).Recv()
		recvErr <- err
	}()
	select {
	case err = <-recvErr:
	case <-time.After(30 * time.Second):
		t.Fatal("receiver did not observe the corrupt-stream abort")
	}
	if err == nil {
		t.Fatal("corrupt stream should abort the exchange")
	}
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("want ErrTransport, got %v", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "read" {
		t.Fatalf("want read-side TransportError, got %v", err)
	}
	es.Close()

	// The poisoned exchange must not break the transport.
	bySender := make([][]Envelope, 2)
	bySender[1] = []Envelope{{From: 1, To: 1, Key: "legit", Payload: []byte("x")}}
	out, err := routeWithTimeout(t, tr, bySender, 30*time.Second)
	if err != nil {
		t.Fatalf("recovery exchange failed: %v", err)
	}
	if len(out[1]) != 1 || out[1][0].Key != "legit" {
		t.Fatalf("recovery exchange delivered %+v", out[1])
	}
}
