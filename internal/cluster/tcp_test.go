package cluster

import (
	"net"
	"testing"
	"time"
)

// deadAddr returns a loopback address that refuses connections (a port
// that was bound and released).
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// routeWithTimeout runs Route and fails the test if it hangs — the
// regression this guards against is Route blocking forever in wg.Wait when
// a sender dies and its receiver keeps waiting in Accept.
func routeWithTimeout(t *testing.T, tr *TCPTransport, bySender [][]Envelope, d time.Duration) ([][]Envelope, error) {
	t.Helper()
	type result struct {
		out [][]Envelope
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := tr.Route(bySender)
		done <- result{out, err}
	}()
	select {
	case r := <-done:
		return r.out, r.err
	case <-time.After(d):
		t.Fatal("TCPTransport.Route hung after a sender failure (deadlock regression)")
		return nil, nil
	}
}

// TestTCPRouteSenderFailureReturnsError kills a sender mid-exchange by
// pointing its destination at a dead address: the dial fails, no
// connection ever reaches the destination's listener, and Route must
// surface the sender error instead of hanging in Accept.
func TestTCPRouteSenderFailureReturnsError(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.addrs[1] = deadAddr(t)

	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "k", Payload: []byte("payload")}}
	if _, err := routeWithTimeout(t, tr, bySender, 30*time.Second); err == nil {
		t.Fatal("Route should report the failed sender")
	}
}

// TestTCPRoutePartialSenderFailure mixes healthy and dead destinations:
// the healthy exchange leg completes, the dead one errors, and Route
// still returns (with the sender error) instead of deadlocking on the
// receiver that never gets its connection.
func TestTCPRoutePartialSenderFailure(t *testing.T) {
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.addrs[2] = deadAddr(t)

	bySender := make([][]Envelope, 3)
	bySender[0] = []Envelope{
		{From: 0, To: 1, Key: "ok", Payload: []byte("a")},
		{From: 0, To: 2, Key: "dead", Payload: []byte("b")},
	}
	bySender[1] = []Envelope{{From: 1, To: 1, Key: "self", Payload: []byte("c")}}
	if _, err := routeWithTimeout(t, tr, bySender, 30*time.Second); err == nil {
		t.Fatal("Route should report the failed sender")
	}
}

// TestTCPRouteRecoversAfterFailure verifies the abort path re-arms the
// listeners: a failed exchange must not poison the next one.
func TestTCPRouteRecoversAfterFailure(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	good := tr.addrs[1]
	tr.addrs[1] = deadAddr(t)

	bySender := make([][]Envelope, 2)
	bySender[0] = []Envelope{{From: 0, To: 1, Key: "k", Payload: []byte("x")}}
	if _, err := routeWithTimeout(t, tr, bySender, 30*time.Second); err == nil {
		t.Fatal("first route should fail")
	}

	tr.addrs[1] = good
	out, err := routeWithTimeout(t, tr, bySender, 30*time.Second)
	if err != nil {
		t.Fatalf("second route should succeed: %v", err)
	}
	if len(out[1]) != 1 || out[1][0].Key != "k" || string(out[1][0].Payload) != "x" {
		t.Fatalf("second route delivered %+v", out[1])
	}
}

// TestTCPRouteNoStaleBacklogAfterAbort stresses the abort path for backlog
// contamination: in exchange 1, sender 0→1 dials and writes successfully
// while sender 1→0 fails, so the abort can fire before receiver 1 accepts
// the healthy connection, leaving it in the kernel backlog. Exchange 2 on
// the same transport must never be handed exchange 1's envelopes.
func TestTCPRouteNoStaleBacklogAfterAbort(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		tr, err := NewTCPTransport(2)
		if err != nil {
			t.Fatal(err)
		}
		good := tr.addrs[0]
		tr.addrs[0] = deadAddr(t)

		first := make([][]Envelope, 2)
		first[0] = []Envelope{{From: 0, To: 1, Key: "OLD", Payload: []byte("stale")}}
		first[1] = []Envelope{{From: 1, To: 0, Key: "doomed", Payload: []byte("x")}}
		if _, err := routeWithTimeout(t, tr, first, 30*time.Second); err == nil {
			tr.Close()
			t.Fatal("first route should fail")
		}

		tr.addrs[0] = good
		second := make([][]Envelope, 2)
		second[0] = []Envelope{{From: 0, To: 1, Key: "NEW", Payload: []byte("fresh")}}
		out, err := routeWithTimeout(t, tr, second, 30*time.Second)
		if err != nil {
			tr.Close()
			t.Fatalf("iter %d: second route failed: %v", iter, err)
		}
		if len(out[1]) != 1 || out[1][0].Key != "NEW" {
			tr.Close()
			t.Fatalf("iter %d: exchange 2 received stale envelopes: %+v", iter, out[1])
		}
		tr.Close()
	}
}

// TestTCPRouteNoStaleBacklogBusyReceiver is the harder contamination
// scenario: receiver 1 is kept busy reading a multi-megabyte frame while a
// second, fully-written small connection parks in its accept backlog; the
// abort (triggered by a third, dead destination) kills the big transfer,
// the receiver exits with the small connection still queued, and exchange
// 2 must not be handed its envelopes.
func TestTCPRouteNoStaleBacklogBusyReceiver(t *testing.T) {
	big := make([]byte, 4<<20)
	for iter := 0; iter < 40; iter++ {
		tr, err := NewTCPTransport(3)
		if err != nil {
			t.Fatal(err)
		}
		good := tr.addrs[2]
		tr.addrs[2] = deadAddr(t)

		first := make([][]Envelope, 3)
		first[0] = []Envelope{{From: 0, To: 1, Key: "OLD-big", Payload: big}}
		first[1] = []Envelope{
			{From: 1, To: 1, Key: "OLD-small", Payload: []byte("stale")},
			{From: 1, To: 2, Key: "doomed", Payload: []byte("x")},
		}
		if _, err := routeWithTimeout(t, tr, first, 30*time.Second); err == nil {
			tr.Close()
			t.Fatal("first route should fail")
		}

		tr.addrs[2] = good
		second := make([][]Envelope, 3)
		second[0] = []Envelope{{From: 0, To: 1, Key: "NEW", Payload: []byte("fresh")}}
		out, err := routeWithTimeout(t, tr, second, 30*time.Second)
		if err != nil {
			tr.Close()
			t.Fatalf("iter %d: second route failed: %v", iter, err)
		}
		if len(out[1]) != 1 || out[1][0].Key != "NEW" {
			tr.Close()
			t.Fatalf("iter %d: exchange 2 received stale envelopes: %d envs, first key %q",
				iter, len(out[1]), out[1][0].Key)
		}
		tr.Close()
	}
}
