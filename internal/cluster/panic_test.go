package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestParallelRecoversPanic checks the containment contract in both
// execution modes: a panicking worker becomes a typed *WorkerPanicError
// (worker ID, phase, stack), the run's metrics count the recovery, and the
// cluster serves the next run after SetContext re-arms it.
func TestParallelRecoversPanic(t *testing.T) {
	for _, sequential := range []bool{false, true} {
		name := "parallel"
		if sequential {
			name = "sequential"
		}
		t.Run(name, func(t *testing.T) {
			c := New(Config{N: 4, Sequential: sequential})
			defer c.Close()

			err := c.Parallel("boom", func(w *Worker) error {
				if w.ID == 1 {
					panic("injected")
				}
				return nil
			})
			if err == nil {
				t.Fatal("Parallel should surface the panic as an error")
			}
			if !errors.Is(err, ErrWorkerPanic) {
				t.Fatalf("want ErrWorkerPanic, got %v", err)
			}
			var wp *WorkerPanicError
			if !errors.As(err, &wp) {
				t.Fatalf("want *WorkerPanicError, got %T", err)
			}
			if wp.WorkerID != 1 || wp.Phase != "boom" || wp.Value != "injected" {
				t.Fatalf("unexpected panic record: %+v", wp)
			}
			if len(wp.Stack) == 0 {
				t.Fatal("panic record should carry the stack trace")
			}
			if got := c.Metrics.PanicsRecovered(); got != 1 {
				t.Fatalf("PanicsRecovered() = %d, want 1", got)
			}

			// The panic cancelled the derived run context; until the next
			// SetContext the cluster refuses phases...
			if err := c.Parallel("after", func(w *Worker) error { return nil }); err == nil {
				t.Fatal("phases should fail until the run context is re-armed")
			}
			// ...and after re-arming it runs normally again.
			c.SetContext(context.Background())
			if err := c.Parallel("after", func(w *Worker) error { return nil }); err != nil {
				t.Fatalf("cluster unusable after recovered panic: %v", err)
			}
		})
	}
}

// TestParallelPanicCancelsPeers verifies prompt peer cancellation: worker 0
// panics while its peers sit in a poll loop on CancelPoll; every peer must
// observe the abort well before the test deadline, and the one error that
// propagates is the panic, not the peers' collateral cancellations.
func TestParallelPanicCancelsPeers(t *testing.T) {
	c := New(Config{N: 4})
	defer c.Close()

	cancelled := c.CancelPoll()
	err := c.Parallel("poll", func(w *Worker) error {
		if w.ID == 0 {
			time.Sleep(5 * time.Millisecond) // let peers enter their loops
			panic("abort peers")
		}
		deadline := time.Now().Add(30 * time.Second)
		for !cancelled() {
			if time.Now().After(deadline) {
				return fmt.Errorf("worker %d never observed the abort", w.ID)
			}
			time.Sleep(100 * time.Microsecond)
		}
		return c.Context().Err() // what a real workload returns on abort
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("want the panic as root cause, got %v", err)
	}
}

// TestExchangePanicInConsume checks containment on the exchange path: a
// panic in a consume body is typed, and the deferred inbox/arena cleanup
// still runs.
func TestExchangePanicInConsume(t *testing.T) {
	c := New(Config{N: 2})
	defer c.Close()

	err := c.Exchange("x",
		func(w *Worker) ([]Envelope, error) {
			return []Envelope{{To: (w.ID + 1) % 2, Payload: []byte("p")}}, nil
		},
		func(w *Worker, inbox []Envelope) error {
			if w.ID == 1 {
				panic("consume")
			}
			return nil
		})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("want ErrWorkerPanic, got %v", err)
	}
	for _, w := range c.Workers {
		if w.Inbox != nil {
			t.Fatalf("worker %d inbox not cleared after panic", w.ID)
		}
	}
}

// TestPanicHookInjection exercises the deterministic fault-injection seam:
// a hook that panics for one (phase, worker) pair trips containment exactly
// there.
func TestPanicHookInjection(t *testing.T) {
	c := New(Config{N: 3})
	defer c.Close()
	c.SetPanicHook(func(phase string, workerID int) {
		if phase == "target" && workerID == 2 {
			panic("hooked")
		}
	})

	if err := c.Parallel("clean", func(w *Worker) error { return nil }); err != nil {
		t.Fatalf("hook fired outside its target: %v", err)
	}
	err := c.Parallel("target", func(w *Worker) error { return nil })
	var wp *WorkerPanicError
	if !errors.As(err, &wp) || wp.WorkerID != 2 {
		t.Fatalf("want worker 2 panic, got %v", err)
	}
}

// TestParallelParentCancelReported checks the cancellation class: when the
// caller's context is cancelled, the phase error is the parent context's
// own error (ErrCanceled == context.Canceled), not a panic or transport
// class.
func TestParallelParentCancelReported(t *testing.T) {
	c := New(Config{N: 2})
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c.SetContext(ctx)
	cancel()

	err := c.Parallel("cancelled", func(w *Worker) error { return nil })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if errors.Is(err, ErrWorkerPanic) || errors.Is(err, ErrTransport) {
		t.Fatalf("cancellation misclassified: %v", err)
	}
}

// TestResetRunClearsWorkerState verifies the fail-safe reset a session
// performs after a failed execution: all per-run worker state is dropped.
func TestResetRunClearsWorkerState(t *testing.T) {
	c := New(Config{N: 2})
	defer c.Close()
	w := c.Workers[0]
	w.Inbox = []Envelope{{Key: "left-over"}}
	w.Scratch["k"] = 1
	w.CubeDB(3)["r"] = nil
	c.ResetRun()
	if w.Inbox != nil || len(w.Scratch) != 0 || len(w.Cubes) != 0 {
		t.Fatalf("ResetRun left state behind: inbox=%v scratch=%v cubes=%v",
			w.Inbox, w.Scratch, w.Cubes)
	}
}
