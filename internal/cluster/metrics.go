// Package cluster implements the distributed dataflow runtime ADJ runs on:
// N workers executing BSP-style phases (parallel local compute + all-to-all
// exchanges) over a pluggable Transport. The paper deploys on Spark over 7
// machines with 10 GbE; here workers are in-process and the network is
// modeled, which preserves every relative cost the evaluation reasons about
// (tuples/bytes shuffled, per-server compute, stragglers) while staying
// laptop-scale and deterministic. A real TCP transport (stdlib net) is
// provided and integration-tested so the serialization path is honest.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// NetworkModel converts exchange counters into modeled seconds, calibrated
// to the paper's cluster (10 GbE ≈ 1.1 GB/s usable per server; per-message
// software overhead dominates tuple-at-a-time shuffles).
type NetworkModel struct {
	// BandwidthBytesPerSec is the per-server usable bandwidth.
	BandwidthBytesPerSec float64
	// PerMessageSec is the fixed cost per envelope (framing, syscalls,
	// scheduling) — what makes Push-style shuffles slow.
	PerMessageSec float64
}

// DefaultNetwork approximates the paper's testbed.
func DefaultNetwork() NetworkModel {
	return NetworkModel{
		BandwidthBytesPerSec: 1.1e9,
		PerMessageSec:        20e-6,
	}
}

// CommSeconds models the wall-clock of one exchange: the bottleneck server
// pays max(in, out) bytes over its link, plus per-message overhead which is
// paid by the senders in parallel.
func (nm NetworkModel) CommSeconds(maxServerBytes int64, maxServerMsgs int64) float64 {
	if nm.BandwidthBytesPerSec <= 0 {
		return 0
	}
	return float64(maxServerBytes)/nm.BandwidthBytesPerSec + float64(maxServerMsgs)*nm.PerMessageSec
}

// PhaseMetrics aggregates one named phase (possibly over several calls).
type PhaseMetrics struct {
	Name string
	// CompSeconds is the simulated wall time of local computation: the max
	// over workers of measured per-worker time, summed over calls.
	CompSeconds float64
	// CommSeconds is the modeled network time (see NetworkModel).
	CommSeconds float64
	// TuplesSent counts logical tuples moved (a block of k tuples counts k).
	TuplesSent int64
	// BytesSent counts serialized payload bytes.
	BytesSent int64
	// Messages counts logical envelopes (Push counts one per tuple even
	// though the runtime batches the physical transfer).
	Messages int64
	// OverlapSeconds is the comm/compute overlap the streaming path
	// reclaimed: producer busy time + consumer busy time in excess of the
	// exchange's wall time (0 on the materialized path, where consume
	// cannot start before the last producer finishes).
	OverlapSeconds float64
	// StreamChunks counts chunk envelopes delivered through the streaming
	// path (0 when the exchange ran materialized).
	StreamChunks int64
	// InflightPeakChunks is the high-water mark of chunks queued at any
	// single receiver (bounded by the stream window).
	InflightPeakChunks int64
	// RecvPeakBytes is the high-water mark of receive-side payload bytes
	// held at any single worker: queued chunk bytes when streamed, the
	// full inbox when materialized. The streaming win on multi-round
	// engines shows up here.
	RecvPeakBytes int64
}

// Metrics collects phase metrics for one engine run.
type Metrics struct {
	mu     sync.Mutex
	phases []*PhaseMetrics
	byName map[string]*PhaseMetrics
	// Fault counters (atomic; written from worker goroutines and the
	// exchange path): panics recovered into errors by Parallel, and
	// transport-level dial/write retries the exchanges performed.
	panicsRecovered  atomic.Int64
	transportRetries atomic.Int64
	transportDials   atomic.Int64
}

// AddPanicRecovered counts one worker panic recovered into an error.
func (m *Metrics) AddPanicRecovered() { m.panicsRecovered.Add(1) }

// PanicsRecovered returns the recovered-panic count of the run.
func (m *Metrics) PanicsRecovered() int64 { return m.panicsRecovered.Load() }

// AddTransportRetries folds n transport retries into the run's counter.
func (m *Metrics) AddTransportRetries(n int64) {
	if n > 0 {
		m.transportRetries.Add(n)
	}
}

// TransportRetries returns the transport dial/write retry count of the run.
func (m *Metrics) TransportRetries() int64 { return m.transportRetries.Load() }

// AddTransportDials folds n transport dials into the run's counter.
func (m *Metrics) AddTransportDials(n int64) {
	if n > 0 {
		m.transportDials.Add(n)
	}
}

// TransportDials returns the number of connections the run's exchanges
// dialed. Persistent transports amortize: after warm-up a run dials 0.
func (m *Metrics) TransportDials() int64 { return m.transportDials.Load() }

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{byName: make(map[string]*PhaseMetrics)}
}

// Phase returns (creating if needed) the accumulator for a phase name.
func (m *Metrics) Phase(name string) *PhaseMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.byName[name]
	if !ok {
		p = &PhaseMetrics{Name: name}
		m.byName[name] = p
		m.phases = append(m.phases, p)
	}
	return p
}

// Phases returns phases in first-use order.
func (m *Metrics) Phases() []*PhaseMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*PhaseMetrics(nil), m.phases...)
}

// TotalSeconds sums comp+comm over all phases.
func (m *Metrics) TotalSeconds() float64 {
	t := 0.0
	for _, p := range m.Phases() {
		t += p.CompSeconds + p.CommSeconds
	}
	return t
}

// TotalTuplesSent sums tuples over all phases.
func (m *Metrics) TotalTuplesSent() int64 {
	var t int64
	for _, p := range m.Phases() {
		t += p.TuplesSent
	}
	return t
}

// TotalOverlapSeconds sums streaming comm/compute overlap over all phases.
func (m *Metrics) TotalOverlapSeconds() float64 {
	t := 0.0
	for _, p := range m.Phases() {
		t += p.OverlapSeconds
	}
	return t
}

// TotalStreamChunks sums delivered stream chunks over all phases.
func (m *Metrics) TotalStreamChunks() int64 {
	var t int64
	for _, p := range m.Phases() {
		t += p.StreamChunks
	}
	return t
}

// MaxRecvPeakBytes returns the largest receive-side byte high-water of any
// phase.
func (m *Metrics) MaxRecvPeakBytes() int64 {
	var t int64
	for _, p := range m.Phases() {
		if p.RecvPeakBytes > t {
			t = p.RecvPeakBytes
		}
	}
	return t
}

// SumMatching sums (comp, comm) over phases whose name has the prefix.
func (m *Metrics) SumMatching(prefix string) (comp, comm float64) {
	for _, p := range m.Phases() {
		if strings.HasPrefix(p.Name, prefix) {
			comp += p.CompSeconds
			comm += p.CommSeconds
		}
	}
	return comp, comm
}

// String renders a metrics table.
func (m *Metrics) String() string {
	var sb strings.Builder
	ps := m.Phases()
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	for _, p := range ps {
		fmt.Fprintf(&sb, "%-28s comp=%8.3fs comm=%8.3fs tuples=%-10d bytes=%-12d msgs=%d\n",
			p.Name, p.CompSeconds, p.CommSeconds, p.TuplesSent, p.BytesSent, p.Messages)
	}
	return sb.String()
}
