package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
)

// TestErrorTaxonomyClassification pins the errors.Is / errors.As behavior
// the rest of the codebase builds on: the typed values classify under
// their class sentinels, survive phase-wrapping, and expose their fields.
func TestErrorTaxonomyClassification(t *testing.T) {
	wp := &WorkerPanicError{WorkerID: 3, Phase: "join/probe", Value: "boom", Stack: []byte("stack")}
	wrapped := fmt.Errorf("phase join/probe worker 3: %w", wp)
	if !errors.Is(wrapped, ErrWorkerPanic) {
		t.Fatal("wrapped WorkerPanicError does not classify as ErrWorkerPanic")
	}
	var gotWP *WorkerPanicError
	if !errors.As(wrapped, &gotWP) || gotWP.WorkerID != 3 || gotWP.Phase != "join/probe" {
		t.Fatalf("errors.As lost panic fields: %+v", gotWP)
	}
	if errors.Is(wrapped, ErrTransport) || errors.Is(wrapped, ErrCanceled) {
		t.Fatal("panic error leaked into other classes")
	}

	te := &TransportError{Op: "dial", Dest: 2, Attempts: 3, Err: io.ErrUnexpectedEOF}
	wrapped = fmt.Errorf("phase hcube/push: %w", te)
	if !errors.Is(wrapped, ErrTransport) {
		t.Fatal("wrapped TransportError does not classify as ErrTransport")
	}
	if !errors.Is(wrapped, io.ErrUnexpectedEOF) {
		t.Fatal("TransportError does not unwrap to its cause")
	}
	var gotTE *TransportError
	if !errors.As(wrapped, &gotTE) || gotTE.Op != "dial" || gotTE.Dest != 2 || gotTE.Attempts != 3 {
		t.Fatalf("errors.As lost transport fields: %+v", gotTE)
	}
	if errors.Is(wrapped, ErrWorkerPanic) {
		t.Fatal("transport error leaked into the panic class")
	}

	if !errors.Is(context.Canceled, ErrCanceled) {
		t.Fatal("ErrCanceled must be context.Canceled itself")
	}
}

// TestCorruptPayloadTyped verifies the decode-wrap helper produces a
// transport-class decode error that keeps the cause chain.
func TestCorruptPayloadTyped(t *testing.T) {
	cause := errors.New("bad magic byte")
	err := CorruptPayload("hcube pull block", cause)
	if !errors.Is(err, ErrTransport) {
		t.Fatal("CorruptPayload not transport-class")
	}
	if !errors.Is(err, cause) {
		t.Fatal("CorruptPayload lost the cause")
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Op != "decode" {
		t.Fatalf("want decode-class TransportError, got %v", err)
	}
}

// TestIsTransient pins the retry predicate: transport failures are
// transient; panics, cancellations, deadline hits and plain errors are not
// — even when a transport error wraps a context error (an aborted exchange
// must not be retried against the caller's cancellation).
func TestIsTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("whatever"), false},
		{"transport", &TransportError{Op: "dial", Dest: 1, Err: io.EOF}, true},
		{"transport wrapped", fmt.Errorf("phase p: %w", &TransportError{Op: "write", Dest: 0, Err: io.EOF}), true},
		{"decode", CorruptPayload("exchange", errors.New("bad magic")), true},
		{"panic", &WorkerPanicError{WorkerID: 0, Phase: "p", Value: "v"}, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"transport wrapping cancel", &TransportError{Op: "write", Dest: 1, Err: context.Canceled}, false},
		{"transport wrapping deadline", &TransportError{Op: "read", Dest: 1, Err: context.DeadlineExceeded}, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// countingTransport is a fake ExchangeTransport + RetryCounter: each
// exchange "retries" a fixed number of times so the test can assert
// Exchange diffs the counter into the run's metrics.
type countingTransport struct {
	inner           *LocalTransport
	retriesPerRoute int64
	total           int64
	sawPhase        string
	sawCtx          context.Context
}

func (c *countingTransport) Route(bySender [][]Envelope) ([][]Envelope, error) {
	c.total += c.retriesPerRoute
	return c.inner.Route(bySender)
}

func (c *countingTransport) RouteExchange(ctx context.Context, phase string, bySender [][]Envelope) ([][]Envelope, error) {
	c.sawPhase = phase
	c.sawCtx = ctx
	return c.Route(bySender)
}

func (c *countingTransport) RetryStats() int64 { return c.total }
func (c *countingTransport) Close() error      { return c.inner.Close() }

// TestExchangeFoldsRetryStats verifies the metrics plumbing: a transport
// that reports retries sees them charged to the run's metrics, one diff per
// exchange, and the context-aware route receives the run context and phase.
func TestExchangeFoldsRetryStats(t *testing.T) {
	const n = 3
	ct := &countingTransport{inner: NewLocalTransport(n), retriesPerRoute: 2}
	c := New(Config{N: n, Transport: ct})
	defer c.Close()

	exchange := func(phase string) error {
		return c.Exchange(phase,
			func(w *Worker) ([]Envelope, error) {
				return []Envelope{{From: w.ID, To: (w.ID + 1) % n, Key: "k"}}, nil
			},
			func(w *Worker, inbox []Envelope) error { return nil })
	}
	if err := exchange("shuffle/a"); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics.TransportRetries(); got != 2 {
		t.Fatalf("after one exchange: TransportRetries = %d, want 2", got)
	}
	if err := exchange("shuffle/b"); err != nil {
		t.Fatal(err)
	}
	if got := c.Metrics.TransportRetries(); got != 4 {
		t.Fatalf("after two exchanges: TransportRetries = %d, want 4", got)
	}
	if ct.sawPhase != "shuffle/b" {
		t.Fatalf("context-aware route saw phase %q", ct.sawPhase)
	}
	if ct.sawCtx == nil {
		t.Fatal("context-aware route did not receive the run context")
	}
}
