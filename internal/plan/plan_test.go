package plan

import (
	"strings"
	"testing"
)

func TestAddAssignsIDsInOrder(t *testing.T) {
	p := &Program{Engine: "X"}
	a := p.Add(&Op{Kind: Shuffle, Order: []string{"a", "b"}})
	b := p.Add(&Op{Kind: BuildTrie, Inputs: []int{a.ID}})
	c := p.Add(&Op{Kind: LeapfrogCube, Inputs: []int{b.ID}})
	if a.ID != 0 || b.ID != 1 || c.ID != 2 {
		t.Fatalf("IDs = %d %d %d, want 0 1 2", a.ID, b.ID, c.ID)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddPanicsOnForwardReference(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add accepted a forward input reference")
		}
	}()
	p := &Program{}
	p.Add(&Op{Kind: Emit, Inputs: []int{3}})
}

func TestValidateEmptyAndMisnumbered(t *testing.T) {
	if err := (&Program{}).Validate(); err == nil {
		t.Fatalf("empty program validated")
	}
	p := &Program{Ops: []*Op{{ID: 5, Kind: Emit}}}
	if err := p.Validate(); err == nil {
		t.Fatalf("misnumbered program validated")
	}
}

func TestRootsFindsUnconsumedOps(t *testing.T) {
	p := &Program{}
	s := p.Add(&Op{Kind: Shuffle})
	bt := p.Add(&Op{Kind: BuildTrie, Inputs: []int{s.ID}})
	lf := p.Add(&Op{Kind: LeapfrogCube, Inputs: []int{bt.ID}})
	em := p.Add(&Op{Kind: Emit, Inputs: []int{lf.ID}})
	roots := p.Roots()
	if len(roots) != 1 || roots[0].ID != em.ID {
		t.Fatalf("Roots = %v, want just the Emit", roots)
	}
}

func TestTreeRendersPipelineAndSharedNodes(t *testing.T) {
	p := &Program{Engine: "ADJ", Label: "plan-label"}
	s := p.Add(&Op{Kind: Shuffle, Phase: "shuffle", Order: []string{"a", "b", "c"},
		Rels: []RelRef{{Name: "R1"}, {Name: "R2"}}, ShuffleKind: "merge"})
	bt := p.Add(&Op{Kind: BuildTrie, Inputs: []int{s.ID}, Order: []string{"a", "b", "c"}})
	lf := p.Add(&Op{Kind: LeapfrogCube, Phase: "join", Strategy: "wcoj",
		Inputs: []int{bt.ID}, Order: []string{"a", "b", "c"}, Cost: Cost{Card: 1000}})
	p.Add(&Op{Kind: Emit, Inputs: []int{lf.ID}, Out: Sig{Name: "out", Attrs: []string{"a", "b", "c"}}})

	tree := p.Tree()
	for _, want := range []string{
		"ADJ: plan-label",
		"Emit",
		"LeapfrogCube",
		"BuildTrie",
		"Shuffle merge rels=[R1 R2]",
		"wcoj",
		"card≈1e+03",
		"phase=join",
		"└─",
	} {
		if !strings.Contains(tree, want) {
			t.Fatalf("Tree missing %q:\n%s", want, tree)
		}
	}
	// Every op renders exactly once in a linear pipeline.
	for _, label := range []string{"#0 ", "#1 ", "#2 ", "#3 "} {
		if n := strings.Count(tree, label); n != 1 {
			t.Fatalf("op %q rendered %d times:\n%s", label, n, tree)
		}
	}

	// A shared node renders once in full, then as a back-reference.
	p2 := &Program{Engine: "Hybrid"}
	core := p2.Add(&Op{Kind: LeapfrogCube, Out: Sig{Name: "~core"}})
	j1 := p2.Add(&Op{Kind: HashJoin, Inputs: []int{core.ID}, Left: Sig{Name: "~core"}, Right: Sig{Name: "P1"}})
	j2 := p2.Add(&Op{Kind: HashJoin, Inputs: []int{core.ID, j1.ID}, Left: Sig{Name: "I1"}, Right: Sig{Name: "P2"}})
	p2.Add(&Op{Kind: Emit, Inputs: []int{j2.ID}})
	tree2 := p2.Tree()
	if !strings.Contains(tree2, "↑") {
		t.Fatalf("shared node not back-referenced:\n%s", tree2)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Shuffle, BuildTrie, LeapfrogCube, HashJoin, Semijoin, Project, Emit, Scatter, Extend}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("Kind %d has no name", int(k))
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}
