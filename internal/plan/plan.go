// Package plan defines the physical plan IR every engine compiles to: a
// DAG of typed operators over worker-resident relations. Engines are
// *planners* — they lower a query into a Program — and a single shared
// interpreter (internal/engine's runProgram) walks the DAG on the resident
// cluster. The IR is what lets one plan mix execution strategies: a
// selective acyclic fragment can run as HashJoin/Semijoin ops while the
// cyclic core runs as a Shuffle → BuildTrie → LeapfrogCube pipeline, with
// the routing decision annotated on the ops themselves.
//
// The package is deliberately dependency-free: operators reference
// relations by signature (name + attribute schema) and carry plan-time
// cost annotations, never runtime handles. That keeps Programs cacheable
// (a PreparedQuery stores one per (query fingerprint, stats epoch)),
// printable (Tree renders the operator DAG for Explain), and comparable in
// tests.
package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the physical operators.
type Kind uint8

const (
	// Shuffle is one HCube all-to-all exchange: the listed relations are
	// hash-partitioned into hypercubes on Order, with shares optimized at
	// run time (sizes marked Dynamic are re-gathered from worker
	// fragments first).
	Shuffle Kind = iota
	// BuildTrie marks the block-trie construction the downstream
	// LeapfrogCube forces lazily out of the shuffle's block registry. It
	// executes as a no-op — tries are built at first use, once per
	// (relation, block) per worker — but carries the order and cost
	// annotation so Explain shows where trie time goes.
	BuildTrie
	// LeapfrogCube runs the worst-case-optimal Leapfrog join over every
	// cube of every worker under Order.
	LeapfrogCube
	// HashJoin is one distributed binary hash join Left ⋈ Right → Out:
	// both sides are repartitioned on their shared attributes and joined
	// locally.
	HashJoin
	// Semijoin reduces a relation by another: Left ⋉ Right → Out. With
	// Attr set it is a BigJoin verify round instead (bindings filtered
	// against the relation at RelIdx on Prefix+Attr).
	Semijoin
	// Project replaces the worker fragments of Left with their projection
	// onto Out.Attrs (schema canonicalization for materialized bags).
	Project
	// Emit terminates the plan: it counts (and, when requested,
	// materializes) the result — either the LeapfrogCube input's cube
	// outputs, or the worker fragments of the From relation projected
	// onto Project attributes.
	Emit
	// Scatter seeds BigJoin's round 0: the global value list of Attr is
	// distributed round-robin as the initial bindings.
	Scatter
	// Extend is one BigJoin propose round: every binding over Prefix is
	// extended with the candidate values the proposer relation (RelIdx)
	// holds for Attr.
	Extend
)

// String names the operator kind.
func (k Kind) String() string {
	switch k {
	case Shuffle:
		return "Shuffle"
	case BuildTrie:
		return "BuildTrie"
	case LeapfrogCube:
		return "LeapfrogCube"
	case HashJoin:
		return "HashJoin"
	case Semijoin:
		return "Semijoin"
	case Project:
		return "Project"
	case Emit:
		return "Emit"
	case Scatter:
		return "Scatter"
	case Extend:
		return "Extend"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Sig is a relation signature: the name and attribute schema under which
// worker fragments are stored and looked up.
type Sig struct {
	Name  string
	Attrs []string
}

// String renders "name(a,b,c)".
func (s Sig) String() string {
	return s.Name + "(" + strings.Join(s.Attrs, ",") + ")"
}

// RelRef names one shuffle participant. Dynamic marks relations
// materialized by upstream ops (pre-computed bags, semijoin-reduced
// inputs) whose sizes must be re-gathered from worker fragments at run
// time; static refs carry the plan-time size.
type RelRef struct {
	Name    string
	Attrs   []string
	Size    int64
	Dynamic bool
}

// Cost is a plan-time cost annotation. Zero values mean "not estimated".
type Cost struct {
	// Card is the estimated output cardinality (tuples).
	Card float64
	// Seconds is the modeled cost in seconds, when the cost model priced
	// the op.
	Seconds float64
}

func (c Cost) String() string {
	var parts []string
	if c.Card > 0 {
		parts = append(parts, fmt.Sprintf("card≈%.3g", c.Card))
	}
	if c.Seconds > 0 {
		parts = append(parts, fmt.Sprintf("est %.3gs", c.Seconds))
	}
	return strings.Join(parts, " ")
}

// Op is one physical operator. It is a tagged union: Kind selects which
// fields are meaningful (see the Kind constants). Every op carries the
// metrics phase its work is charged to, the IDs of the ops producing its
// inputs, its output signature, and optional cost/strategy annotations.
type Op struct {
	ID       int
	Kind     Kind
	Phase    string
	Strategy string // "wcoj", "binary", "" — the routing Explain surfaces
	Inputs   []int
	Out      Sig
	Cost     Cost
	Note     string // free-form annotation for Explain

	// Shuffle
	Rels []RelRef
	// Order: the shuffle/trie/Leapfrog attribute order.
	Order []string
	// ShuffleKind is "push", "pull", "merge", or "" for the run config's
	// engine default (overridable by Config.ShuffleKind either way).
	ShuffleKind string
	// ChargeOptimize charges the run-time share optimization to the
	// optimize phase (the HCubeJ family's accounting).
	ChargeOptimize bool
	// LabelShares amends the run report's plan label with the chosen
	// shares (HCubeJ's "ord=... shares=..." rendering).
	LabelShares bool
	// ReuseID seeds the provenance signature of relations this shuffle
	// moves that are not session-registered content (materialized bags).
	ReuseID string

	// LeapfrogCube
	Cached bool // use the level-cached Leapfrog (HCubeJ+Cache)
	// StoreAs keeps each worker's cube outputs resident under this name
	// (feeding downstream HashJoin ops) instead of folding them at the
	// coordinator.
	StoreAs string

	// HashJoin / Semijoin / Project
	Left  Sig
	Right Sig

	// BigJoin rounds (Scatter / Extend / Semijoin-with-Attr)
	Attr   string
	Prefix []string
	RelIdx int
	Round  int

	// BudgetLabel is the Report.FailReason when this op exceeds the work
	// budget; a single "%d" verb receives the offending size.
	BudgetLabel string
	// CheckBudget re-checks Out's global size against the budget after
	// the op completes (BigJoin's per-round binding cap).
	CheckBudget bool

	// Emit
	From        string   // source relation; "" reads the LeapfrogCube input
	ProjectOnto []string // projection applied when materializing output
}

// label renders the op's one-line description for Tree.
func (op *Op) label() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s", op.ID, op.Kind)
	switch op.Kind {
	case Shuffle:
		names := make([]string, len(op.Rels))
		for i, r := range op.Rels {
			names[i] = r.Name
		}
		kind := op.ShuffleKind
		if kind == "" {
			kind = "default"
		}
		fmt.Fprintf(&b, " %s rels=[%s] ord=%v", kind, strings.Join(names, " "), op.Order)
	case BuildTrie, LeapfrogCube:
		fmt.Fprintf(&b, " ord=%v", op.Order)
		if op.Cached {
			b.WriteString(" cached")
		}
		if op.StoreAs != "" {
			fmt.Fprintf(&b, " store=%s", op.StoreAs)
		}
	case HashJoin:
		fmt.Fprintf(&b, " %s ⋈ %s → %s", op.Left, op.Right, op.Out)
	case Semijoin:
		if op.Attr != "" {
			fmt.Fprintf(&b, " bindings ⋉ rel#%d on %v+%s", op.RelIdx, op.Prefix, op.Attr)
		} else {
			fmt.Fprintf(&b, " %s ⋉ %s → %s", op.Left, op.Right, op.Out)
		}
	case Project:
		fmt.Fprintf(&b, " %s → %s", op.Left, op.Out)
	case Emit:
		if op.From != "" {
			fmt.Fprintf(&b, " from %s → %s", op.From, op.Out)
		} else {
			fmt.Fprintf(&b, " → %s", op.Out)
		}
	case Scatter:
		fmt.Fprintf(&b, " val(%s) → %s", op.Attr, op.Out)
	case Extend:
		fmt.Fprintf(&b, " bindings%v + %s via rel#%d", op.Prefix, op.Attr, op.RelIdx)
	}
	var tags []string
	if op.Strategy != "" {
		tags = append(tags, op.Strategy)
	}
	if c := op.Cost.String(); c != "" {
		tags = append(tags, c)
	}
	if op.Phase != "" {
		tags = append(tags, "phase="+op.Phase)
	}
	if op.Note != "" {
		tags = append(tags, op.Note)
	}
	if len(tags) > 0 {
		fmt.Fprintf(&b, "  [%s]", strings.Join(tags, ", "))
	}
	return b.String()
}

// Program is a lowered query: operators in topological (execution) order.
type Program struct {
	// Engine is the engine name the program was lowered for.
	Engine string
	// Label is the static plan description (Report.Plan); ops flagged
	// LabelShares may amend it at run time.
	Label string
	Ops   []*Op
}

// Add assigns the next ID and appends op. Ops must be added in a valid
// topological order: an op may only reference already-added inputs (Add
// panics otherwise — planners are deterministic, so this is a plan bug,
// not an input error).
func (p *Program) Add(op *Op) *Op {
	op.ID = len(p.Ops)
	for _, in := range op.Inputs {
		if in < 0 || in >= op.ID {
			panic(fmt.Sprintf("plan: op #%d (%s) references input #%d out of order", op.ID, op.Kind, in))
		}
	}
	p.Ops = append(p.Ops, op)
	return op
}

// Roots returns the ops no other op consumes — the plan's outputs (usually
// a single Emit).
func (p *Program) Roots() []*Op {
	consumed := make(map[int]bool)
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			consumed[in] = true
		}
	}
	var roots []*Op
	for _, op := range p.Ops {
		if !consumed[op.ID] {
			roots = append(roots, op)
		}
	}
	return roots
}

// Validate checks DAG well-formedness: IDs match positions, inputs precede
// consumers, and exactly the final op (or at least one op) is a root.
func (p *Program) Validate() error {
	if len(p.Ops) == 0 {
		return fmt.Errorf("plan: empty program")
	}
	for i, op := range p.Ops {
		if op.ID != i {
			return fmt.Errorf("plan: op at position %d has ID %d", i, op.ID)
		}
		for _, in := range op.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("plan: op #%d references input #%d out of order", i, in)
			}
		}
	}
	if len(p.Roots()) == 0 {
		return fmt.Errorf("plan: no root op")
	}
	return nil
}

// Tree renders the operator DAG as an indented tree rooted at the plan's
// outputs, children being input ops. Ops feeding several consumers render
// in full once; later references print as "#id ↑". This is what
// Explain (and cmd/adj -explain) shows.
func (p *Program) Tree() string {
	var b strings.Builder
	if p.Label != "" {
		fmt.Fprintf(&b, "%s: %s\n", p.Engine, p.Label)
	} else if p.Engine != "" {
		fmt.Fprintf(&b, "%s:\n", p.Engine)
	}
	seen := make(map[int]bool)
	roots := p.Roots()
	// Roots render in reverse add-order so the final Emit leads.
	sort.Slice(roots, func(i, j int) bool { return roots[i].ID > roots[j].ID })
	for _, r := range roots {
		p.render(&b, r, "", "", seen)
	}
	return b.String()
}

func (p *Program) render(b *strings.Builder, op *Op, prefix, childPrefix string, seen map[int]bool) {
	if seen[op.ID] {
		fmt.Fprintf(b, "%s#%d ↑\n", prefix, op.ID)
		return
	}
	seen[op.ID] = true
	fmt.Fprintf(b, "%s%s\n", prefix, op.label())
	// Children render newest-first: the main pipeline input (added last)
	// reads top-down.
	ins := append([]int(nil), op.Inputs...)
	sort.Sort(sort.Reverse(sort.IntSlice(ins)))
	for i, in := range ins {
		last := i == len(ins)-1
		connector, cont := "├─ ", "│  "
		if last {
			connector, cont = "└─ ", "   "
		}
		p.render(b, p.Ops[in], childPrefix+connector, childPrefix+cont, seen)
	}
}
