// Package lp implements a small dense two-phase simplex solver. ADJ uses it
// to compute fractional edge covers: the fractional hypertree width (fhw)
// that scores candidate decompositions in §III-A is a max over bags of a
// tiny linear program (minimize Σ x_e subject to Σ_{e∋v} x_e ≥ 1 for every
// vertex v in the bag, x ≥ 0).
//
// The implementation is a classic tableau simplex with Bland's rule (no
// cycling) and a phase-1 artificial objective to find an initial basic
// feasible solution. Problems here have at most a few dozen variables, so a
// dense float64 tableau is the right tool.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ConstraintOp is the relation of one constraint row.
type ConstraintOp int

// Constraint operators.
const (
	LE ConstraintOp = iota // Σ a_j x_j ≤ b
	GE                     // Σ a_j x_j ≥ b
	EQ                     // Σ a_j x_j = b
)

// Problem is a linear program over x ≥ 0:
//
//	minimize  c·x
//	s.t.      A[i]·x  Op[i]  B[i]   for every row i
type Problem struct {
	C  []float64
	A  [][]float64
	B  []float64
	Op []ConstraintOp
}

// Solution is an optimal solution of a Problem.
type Solution struct {
	X     []float64
	Value float64
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Solve minimizes the problem with two-phase simplex.
func Solve(p Problem) (Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m || len(p.Op) != m {
		return Solution{}, fmt.Errorf("lp: inconsistent sizes: %d rows, %d b, %d ops", m, len(p.B), len(p.Op))
	}
	for i, row := range p.A {
		if len(row) != n {
			return Solution{}, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}

	// Normalize to b >= 0 by flipping rows.
	a := make([][]float64, m)
	b := make([]float64, m)
	op := make([]ConstraintOp, m)
	for i := range p.A {
		a[i] = append([]float64(nil), p.A[i]...)
		b[i] = p.B[i]
		op[i] = p.Op[i]
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
			switch op[i] {
			case LE:
				op[i] = GE
			case GE:
				op[i] = LE
			}
		}
	}

	// Column layout: [x (n)] [slack/surplus (one per LE/GE row)] [artificial].
	nSlack := 0
	for _, o := range op {
		if o != EQ {
			nSlack++
		}
	}
	// Artificial variables for GE and EQ rows (LE rows use their slack as the
	// initial basis).
	nArt := 0
	for _, o := range op {
		if o != LE {
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows of coefficients + rhs, basis tracking.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	for i := 0; i < m; i++ {
		t[i] = make([]float64, total+1)
		copy(t[i], a[i])
		t[i][total] = b[i]
		switch op[i] {
		case LE:
			t[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			t[i][slackCol] = -1
			slackCol++
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: minimize sum of artificial variables.
	if nArt > 0 {
		obj := make([]float64, total+1)
		for j := n + nSlack; j < total; j++ {
			obj[j] = 1
		}
		// Express objective in terms of non-basic variables (price out basis).
		for i, bv := range basis {
			if bv >= n+nSlack {
				for j := 0; j <= total; j++ {
					obj[j] -= t[i][j]
				}
			}
		}
		if err := iterate(t, obj, basis, total); err != nil {
			return Solution{}, err
		}
		if -obj[total] > 1e-7 { // objective value = -obj[rhs]
			return Solution{}, ErrInfeasible
		}
		// Drive any remaining artificial variables out of the basis.
		for i, bv := range basis {
			if bv < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless. Leave the artificial at zero.
				_ = i
			}
		}
	}

	// Phase 2: minimize c·x, artificial columns frozen at zero.
	obj := make([]float64, total+1)
	copy(obj, p.C)
	for i, bv := range basis {
		if bv < total && math.Abs(obj[bv]) > eps {
			coef := obj[bv]
			for j := 0; j <= total; j++ {
				obj[j] -= coef * t[i][j]
			}
		}
	}
	limit := n + nSlack // never re-enter artificial columns
	if err := iteratePhase2(t, obj, basis, total, limit); err != nil {
		return Solution{}, err
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = t[i][total]
		}
	}
	val := 0.0
	for j := 0; j < n; j++ {
		val += p.C[j] * x[j]
	}
	return Solution{X: x, Value: val}, nil
}

// iterate runs simplex until optimal over all columns (phase 1).
func iterate(t [][]float64, obj []float64, basis []int, total int) error {
	return iteratePhase2(t, obj, basis, total, total)
}

// iteratePhase2 runs simplex allowing only columns < limit to enter.
func iteratePhase2(t [][]float64, obj []float64, basis []int, total, limit int) error {
	m := len(t)
	for iter := 0; iter < 10000; iter++ {
		// Bland's rule: entering = lowest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < limit; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Ratio test; Bland tie-break on basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][total] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		pivot(t, basis, leave, enter, total)
		// Update objective row.
		coef := obj[enter]
		if math.Abs(coef) > eps {
			for j := 0; j <= total; j++ {
				obj[j] -= coef * t[leave][j]
			}
		}
	}
	return errors.New("lp: iteration limit exceeded")
}

// pivot makes column j basic in row i.
func pivot(t [][]float64, basis []int, i, j, total int) {
	p := t[i][j]
	for k := 0; k <= total; k++ {
		t[i][k] /= p
	}
	for r := range t {
		if r == i {
			continue
		}
		f := t[r][j]
		if math.Abs(f) <= eps {
			continue
		}
		for k := 0; k <= total; k++ {
			t[r][k] -= f * t[i][k]
		}
	}
	basis[i] = j
}
