package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// minimize -x-y s.t. x+y<=4, x<=3, y<=3  -> x=3,y=1 or x=1,y=3, value -4.
	sol, err := Solve(Problem{
		C:  []float64{-1, -1},
		A:  [][]float64{{1, 1}, {1, 0}, {0, 1}},
		B:  []float64{4, 3, 3},
		Op: []ConstraintOp{LE, LE, LE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Value, -4) {
		t.Fatalf("value=%v want -4", sol.Value)
	}
}

func TestGERequiresPhase1(t *testing.T) {
	// minimize x+y s.t. x+y>=2, x>=0.5 -> value 2.
	sol, err := Solve(Problem{
		C:  []float64{1, 1},
		A:  [][]float64{{1, 1}, {1, 0}},
		B:  []float64{2, 0.5},
		Op: []ConstraintOp{GE, GE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Value, 2) {
		t.Fatalf("value=%v want 2", sol.Value)
	}
}

func TestEquality(t *testing.T) {
	// minimize 2x+3y s.t. x+y=10, x<=4 -> x=4,y=6 -> 26.
	sol, err := Solve(Problem{
		C:  []float64{2, 3},
		A:  [][]float64{{1, 1}, {1, 0}},
		B:  []float64{10, 4},
		Op: []ConstraintOp{EQ, LE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Value, 26) {
		t.Fatalf("value=%v want 26", sol.Value)
	}
}

func TestInfeasible(t *testing.T) {
	_, err := Solve(Problem{
		C:  []float64{1},
		A:  [][]float64{{1}, {1}},
		B:  []float64{1, 3},
		Op: []ConstraintOp{LE, GE},
	})
	if err != ErrInfeasible {
		t.Fatalf("err=%v want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// minimize -x with only x >= 1: unbounded below.
	_, err := Solve(Problem{
		C:  []float64{-1},
		A:  [][]float64{{1}},
		B:  []float64{1},
		Op: []ConstraintOp{GE},
	})
	if err != ErrUnbounded {
		t.Fatalf("err=%v want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x <= -1 written as -x >= 1: minimize x s.t. -x >= 1 means x <= -1,
	// infeasible with x >= 0.
	_, err := Solve(Problem{
		C:  []float64{1},
		A:  [][]float64{{1}},
		B:  []float64{-1},
		Op: []ConstraintOp{LE},
	})
	if err != ErrInfeasible {
		t.Fatalf("err=%v want ErrInfeasible", err)
	}
}

func TestTriangleFractionalCover(t *testing.T) {
	// Fractional edge cover of a triangle: 3 edges ab, bc, ac covering
	// vertices a,b,c; optimum is 1/2 each = 1.5 (the AGM bound exponent).
	sol, err := Solve(Problem{
		C: []float64{1, 1, 1},
		A: [][]float64{
			{1, 0, 1}, // a: edges ab, ac
			{1, 1, 0}, // b: edges ab, bc
			{0, 1, 1}, // c: edges bc, ac
		},
		B:  []float64{1, 1, 1},
		Op: []ConstraintOp{GE, GE, GE},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Value, 1.5) {
		t.Fatalf("triangle cover=%v want 1.5", sol.Value)
	}
}

func TestDegenerateZeroRows(t *testing.T) {
	sol, err := Solve(Problem{C: []float64{1, 2}, A: nil, B: nil, Op: nil})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Value, 0) {
		t.Fatalf("unconstrained min of nonneg objective should be 0, got %v", sol.Value)
	}
}

func TestSizeMismatch(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Op: []ConstraintOp{LE}}); err == nil {
		t.Fatal("expected error for ragged row")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Op: []ConstraintOp{LE}}); err == nil {
		t.Fatal("expected error for b/op mismatch")
	}
}

// Property test: on random small covering LPs, simplex matches a
// brute-force grid search within tolerance.
func TestRandomCoverAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(3) // variables (edges)
		nc := 1 + rng.Intn(3) // constraints (vertices)
		a := make([][]float64, nc)
		feasible := false
		for i := range a {
			a[i] = make([]float64, nv)
			any := false
			for j := range a[i] {
				if rng.Intn(2) == 1 {
					a[i][j] = 1
					any = true
				}
			}
			if !any {
				a[i][rng.Intn(nv)] = 1
			}
			feasible = true
		}
		if !feasible {
			return true
		}
		c := make([]float64, nv)
		for j := range c {
			c[j] = 1
		}
		b := make([]float64, nc)
		ops := make([]ConstraintOp, nc)
		for i := range b {
			b[i] = 1
			ops[i] = GE
		}
		sol, err := Solve(Problem{C: c, A: a, B: b, Op: ops})
		if err != nil {
			return false
		}
		// Brute force over a grid of x in {0, 0.25, ..., 2}.
		best := math.Inf(1)
		var grid func(j int, x []float64)
		x := make([]float64, nv)
		grid = func(j int, x []float64) {
			if j == nv {
				for i := range a {
					s := 0.0
					for k := range x {
						s += a[i][k] * x[k]
					}
					if s < b[i]-1e-9 {
						return
					}
				}
				tot := 0.0
				for _, v := range x {
					tot += v
				}
				if tot < best {
					best = tot
				}
				return
			}
			for v := 0.0; v <= 2.0; v += 0.25 {
				x[j] = v
				grid(j+1, x)
			}
		}
		grid(0, x)
		// Simplex must be at least as good as the grid (grid is coarser).
		return sol.Value <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
