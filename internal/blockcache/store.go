package blockcache

import (
	"container/list"
	"sync"

	"adj/internal/trie"
)

// BlockID addresses one block trie in the session-resident store across
// queries and shuffles. It is keyed purely by content, never by name:
//
//   - Content is the fingerprint of the base relation the block was carved
//     from (relation.Fingerprint of the registered relation, or a derived
//     signature for engine-materialized intermediates).
//   - Layout hashes the structural context that determines both the block's
//     membership and its trie shape: the column permutation into the trie's
//     attribute order and the per-column share counts of the HCube shuffle.
//     Attribute *names* are excluded, so the same edge relation bound under
//     atoms R1, R2, R3 — or under a different query entirely — shares one
//     set of store entries whenever the shares and permutation agree.
//   - Sig is the block's hash signature under those shares.
//
// Same BlockID ⇒ byte-identical block trie (up to attribute names, which
// adopters re-skin), so a store hit replaces a shuffle-side build exactly.
type BlockID struct {
	Content uint64
	Layout  uint64
	Sig     int
}

// ManifestID addresses the manifest of one (relation content, layout): the
// complete set of non-empty block signatures a shuffle of that relation
// produces. A warm shuffle needs the manifest plus every listed block; if
// eviction broke the set, the relation falls back to a cold shuffle.
type ManifestID struct {
	Content uint64
	Layout  uint64
}

// StoreStats snapshots store activity.
type StoreStats struct {
	// Blocks and Bytes are the current resident entry count and charged size.
	Blocks int64
	Bytes  int64
	// Budget echoes the configured byte budget (0 = unbounded).
	Budget int64
	// Hits counts block lookups served; Misses counts lookups (or manifest
	// snapshots) that failed; Evictions counts blocks dropped by the LRU.
	Hits      int64
	Misses    int64
	Evictions int64
}

// Store is the session-resident, cross-query block-trie store: the
// promotion of the per-shuffle Registry to session lifetime. Cold shuffles
// publish their built block tries here (keyed by content, not by query);
// later executions over unchanged relation content adopt the tries back
// into their per-shuffle registries and skip the shuffle — and its trie
// builds — entirely. Entries are bounded by an LRU byte budget measured
// with trie.MemBytes. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	entries   map[BlockID]*storeEntry
	lru       *list.List // front = most recently used; values are *storeEntry
	manifests map[ManifestID][]int

	hits, misses, evictions int64
}

type storeEntry struct {
	id    BlockID
	trie  *trie.Trie
	bytes int64
	elem  *list.Element
}

// NewStore returns an empty store with the given byte budget (<= 0 means
// unbounded).
func NewStore(budgetBytes int64) *Store {
	return &Store{
		budget:    budgetBytes,
		entries:   make(map[BlockID]*storeEntry),
		lru:       list.New(),
		manifests: make(map[ManifestID][]int),
	}
}

// Put deposits one built block trie, evicting least-recently-used entries
// if the byte budget overflows. Re-putting an existing id refreshes its
// recency and swaps the trie (same content key ⇒ same content, so the swap
// is observationally idempotent).
func (s *Store) Put(id BlockID, t *trie.Trie) {
	if s == nil || t == nil {
		return
	}
	nb := t.MemBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && nb > s.budget {
		// A block that alone exceeds the whole budget is never admitted —
		// admitting it would evict everything else and still overflow. Its
		// relation simply can't go warm, so the manifest is dropped too.
		// The rejection counts as an eviction: the block was offered and
		// not retained.
		s.evictions++
		delete(s.manifests, ManifestID{id.Content, id.Layout})
		if e, ok := s.entries[id]; ok {
			s.lru.Remove(e.elem)
			delete(s.entries, id)
			s.bytes -= e.bytes
		}
		return
	}
	if e, ok := s.entries[id]; ok {
		s.bytes += nb - e.bytes
		e.trie, e.bytes = t, nb
		s.lru.MoveToFront(e.elem)
		s.evictOver()
		return
	}
	e := &storeEntry{id: id, trie: t, bytes: nb}
	e.elem = s.lru.PushFront(e)
	s.entries[id] = e
	s.bytes += nb
	s.evictOver()
}

// evictOver drops LRU entries until bytes fit the budget. Called with the
// lock held. Oversized single blocks are rejected at Put, so the loop
// always terminates within budget.
func (s *Store) evictOver() {
	if s.budget <= 0 {
		return
	}
	for s.bytes > s.budget && s.lru.Len() > 0 {
		back := s.lru.Back()
		e := back.Value.(*storeEntry)
		s.lru.Remove(back)
		delete(s.entries, e.id)
		s.bytes -= e.bytes
		s.evictions++
		// The manifest referencing the evicted block can no longer serve a
		// warm shuffle; dropping it keeps the manifest map bounded by the
		// LRU too (stale contents age out with their blocks instead of
		// accumulating over a session's lifetime of re-registrations).
		delete(s.manifests, ManifestID{e.id.Content, e.id.Layout})
	}
}

// PutManifest records the complete signature set of one (content, layout)
// after a cold shuffle published all its blocks. sigs is copied. If any
// listed block is not resident — rejected as oversized, or already evicted
// by the publishes that followed it — the manifest is dropped instead of
// stored: a manifest that can never be served would otherwise make every
// later execution walk it, miss, fall back cold and re-publish, churning
// the store on each run.
func (s *Store) PutManifest(id ManifestID, sigs []int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sig := range sigs {
		if _, ok := s.entries[BlockID{id.Content, id.Layout, sig}]; !ok {
			delete(s.manifests, id)
			return
		}
	}
	s.manifests[id] = append([]int(nil), sigs...)
}

// Snapshot returns every block trie of one (content, layout) keyed by block
// signature, touching each entry's recency — the warm-shuffle lookup. It
// returns ok=false (and counts a miss) when no manifest exists or any
// listed block has been evicted: warm execution is all-or-nothing per
// relation, because a partial set cannot reproduce the shuffle's bindings.
func (s *Store) Snapshot(id ManifestID) (map[int]*trie.Trie, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sigs, ok := s.manifests[id]
	if !ok {
		s.misses++
		return nil, false
	}
	out := make(map[int]*trie.Trie, len(sigs))
	for _, sig := range sigs {
		e, ok := s.entries[BlockID{id.Content, id.Layout, sig}]
		if !ok {
			s.misses++
			return nil, false
		}
		out[sig] = e.trie
	}
	for _, sig := range sigs {
		s.lru.MoveToFront(s.entries[BlockID{id.Content, id.Layout, sig}].elem)
	}
	s.hits += int64(len(sigs))
	return out, true
}

// Len returns the number of resident blocks.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the charged resident size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Blocks:    int64(len(s.entries)),
		Bytes:     s.bytes,
		Budget:    s.budget,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}
