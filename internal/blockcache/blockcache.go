// Package blockcache is the per-worker shared block-trie registry behind
// the Merge HCube's amortization argument (§V of the paper): a block of a
// relation — all tuples sharing one hash signature — lands in every cube
// whose coordinates match the signature, so with CubesPerServer > 1 many of
// a worker's cubes contain the exact same (relation, block) fragment. The
// registry builds each block's trie exactly once per worker and hands the
// shared immutable trie to every cube that needs it; per-(cube, relation)
// tries are assembled lazily at first use by merging the cube's block
// tries (or aliasing the single block trie directly — the common case when
// a relation's attributes pin every one of its share coordinates).
//
// Deposits happen during the shuffle's consume phase (one goroutine per
// worker); trie construction happens during the join phase, where cubes
// run on a work-stealing pool — both block and cube entries are
// single-flight, so two cubes racing on the same block wait for one build
// instead of duplicating it.
package blockcache

import (
	"sort"
	"sync"
	"sync/atomic"

	"adj/internal/relation"
	"adj/internal/trie"
)

// Key identifies one block: a relation name plus the block's hash
// signature under the shuffle's share vector.
type Key struct {
	Rel string
	Sig int
}

// Stats is a snapshot of registry activity.
type Stats struct {
	// Blocks counts distinct (relation, block) entries deposited.
	Blocks int64
	// Builds counts block tries constructed. With every deposited block
	// requested at least once, Builds == Blocks: each trie is built exactly
	// once no matter how many cubes share it.
	Builds int64
	// Hits counts block-trie requests served from the cache (requests
	// beyond the first per block — the cross-cube reuse factor).
	Hits int64
	// CubeMerges counts lazy per-(cube, relation) k-way merges; cubes whose
	// relation has a single block alias the block trie and merge nothing.
	CubeMerges int64
}

// Add accumulates s2 into s (for folding per-worker stats into a report).
func (s *Stats) Add(s2 Stats) {
	s.Blocks += s2.Blocks
	s.Builds += s2.Builds
	s.Hits += s2.Hits
	s.CubeMerges += s2.CubeMerges
}

// Registry is one worker's block-trie cache. Deposit* and Bind* are called
// from the (single-goroutine) shuffle consume phase; BlockTrie/CubeTrie
// are safe for concurrent use from the cube pool.
type Registry struct {
	mu     sync.Mutex
	blocks map[Key]*blockEntry
	cubes  map[cubeKey]*cubeEntry
	// byCube aggregates each cube's block working set for the locality
	// scheduler (ordered by first binding, deduplicated).
	byCube map[int][]Key

	builds     atomic.Int64
	hits       atomic.Int64
	cubeMerges atomic.Int64
}

type cubeKey struct {
	cube int
	rel  string
}

// blockEntry holds one block's raw parts (one per sender) and its
// lazily-built trie.
type blockEntry struct {
	once  sync.Once
	attrs []string
	// trieParts are pre-built block tries (Merge shuffle); tupleParts are
	// sorted raw blocks (Push/Pull shuffles). Exactly one kind is populated.
	trieParts  []*trie.Trie
	tupleParts []*relation.Relation
	built      *trie.Trie
	// adopted is a pre-built trie installed from the session-resident store
	// (a warm shuffle). The first request counts as a cache hit, not a
	// build — the whole point of cross-query reuse is that no shuffle-side
	// trie construction happens at all.
	adopted *trie.Trie
	// size accumulates the tuples deposited for this block — the cost
	// estimate the cube scheduler weighs (deposits happen before the join
	// phase reads sizes, so no atomicity beyond the registry lock needed).
	size int64
}

// cubeEntry lists the blocks of one (cube, relation) and memoizes their
// merged trie.
type cubeEntry struct {
	once  sync.Once
	keys  []Key
	built *trie.Trie
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		blocks: make(map[Key]*blockEntry),
		cubes:  make(map[cubeKey]*cubeEntry),
		byCube: make(map[int][]Key),
	}
}

// DepositTrie adds a pre-built block trie part (Merge shuffle). attrs is
// the trie attribute order; all parts of a key must share it. The trie is
// retained and must not be mutated afterwards.
func (r *Registry) DepositTrie(k Key, attrs []string, t *trie.Trie) {
	r.mu.Lock()
	e := r.entry(k, attrs)
	e.trieParts = append(e.trieParts, t)
	e.size += int64(t.NumTuples)
	r.mu.Unlock()
}

// DepositTuples adds a raw tuple block part (Push/Pull shuffles). attrs is
// the order the block's trie will be built in. part is retained and must
// be a stable copy (not a reused decode scratch).
func (r *Registry) DepositTuples(k Key, attrs []string, part *relation.Relation) {
	r.mu.Lock()
	e := r.entry(k, attrs)
	e.tupleParts = append(e.tupleParts, part)
	e.size += int64(part.Len())
	r.mu.Unlock()
}

// DepositBuilt adds a block whose trie is already built — the warm-shuffle
// path, where the session store supplies tries published by an earlier
// execution over the same relation content. Requests for the block are
// served without any build (all of them count as cache hits). t is retained
// and must not be mutated.
func (r *Registry) DepositBuilt(k Key, attrs []string, t *trie.Trie) {
	r.mu.Lock()
	e := r.entry(k, attrs)
	e.adopted = t
	e.size += int64(t.NumTuples)
	r.mu.Unlock()
}

func (r *Registry) entry(k Key, attrs []string) *blockEntry {
	e, ok := r.blocks[k]
	if !ok {
		e = &blockEntry{attrs: attrs}
		r.blocks[k] = e
	}
	return e
}

// BindCube records that cube's copy of relation rel includes block k.
// Rebinding the same (cube, rel, k) is a no-op.
func (r *Registry) BindCube(cube int, rel string, k Key) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ck := cubeKey{cube, rel}
	ce, ok := r.cubes[ck]
	if !ok {
		ce = &cubeEntry{}
		r.cubes[ck] = ce
	}
	for _, have := range ce.keys {
		if have == k {
			return
		}
	}
	ce.keys = append(ce.keys, k)
	r.byCube[cube] = append(r.byCube[cube], k)
}

// BlockTrie returns the trie of block k, building it exactly once
// (single-flight: concurrent callers wait for the first build). Returns
// nil for unknown keys.
func (r *Registry) BlockTrie(k Key) *trie.Trie {
	r.mu.Lock()
	e := r.blocks[k]
	r.mu.Unlock()
	if e == nil {
		return nil
	}
	built := false
	e.once.Do(func() {
		if e.adopted != nil {
			e.built = e.adopted
		} else {
			e.built = e.build()
			built = true
			r.builds.Add(1)
		}
		e.trieParts, e.tupleParts = nil, nil // parts are dead once built
	})
	if !built {
		r.hits.Add(1)
	}
	return e.built
}

func (e *blockEntry) build() *trie.Trie {
	if len(e.trieParts) > 0 {
		return trie.Merge(e.trieParts)
	}
	switch len(e.tupleParts) {
	case 0:
		return trie.Build(relation.New("block", e.attrs...), e.attrs)
	case 1:
		return trie.Build(e.tupleParts[0], e.attrs)
	}
	// Multiple senders contributed sub-blocks: concatenate (AppendAll
	// adopts the columnar layout the decoder produced) and build once —
	// the radix builder sorts and dedups across parts.
	total := 0
	for _, p := range e.tupleParts {
		total += p.Len()
	}
	all := relation.NewWithCapacity(e.tupleParts[0].Name, total, e.tupleParts[0].Attrs...)
	for _, p := range e.tupleParts {
		all.AppendAll(p)
	}
	return trie.Build(all, e.attrs)
}

// CubeTrie returns the merged trie of relation rel on cube, assembling it
// at first use: block tries are pulled from the cache (shared across
// cubes) and k-way merged only when the cube holds more than one block of
// the relation. The second return is false when the (cube, rel) pair holds
// no blocks.
func (r *Registry) CubeTrie(cube int, rel string) (*trie.Trie, bool) {
	r.mu.Lock()
	ce := r.cubes[cubeKey{cube, rel}]
	r.mu.Unlock()
	if ce == nil {
		return nil, false
	}
	ce.once.Do(func() {
		if len(ce.keys) == 1 {
			ce.built = r.BlockTrie(ce.keys[0])
			return
		}
		parts := make([]*trie.Trie, len(ce.keys))
		for i, k := range ce.keys {
			parts[i] = r.BlockTrie(k)
		}
		ce.built = trie.Merge(parts)
		r.cubeMerges.Add(1)
	})
	return ce.built, true
}

// BuiltBlock is one registry block whose trie exists: the key, the trie
// attribute order it was built in, and the trie itself. Adopted marks
// blocks installed pre-built from the session store (already published —
// republishing them would only churn the store's recency list).
type BuiltBlock struct {
	Key     Key
	Attrs   []string
	Trie    *trie.Trie
	Adopted bool
}

// BuiltBlocks snapshots every deposited block in deterministic key order —
// the publish walk that deposits a cold shuffle's tries into the
// session-resident store after the join phase. Blocks deposited but never
// requested have a nil Trie; publishers treat a relation with any unbuilt
// block as incomplete and skip its manifest.
func (r *Registry) BuiltBlocks() []BuiltBlock {
	r.mu.Lock()
	out := make([]BuiltBlock, 0, len(r.blocks))
	for k, e := range r.blocks {
		out = append(out, BuiltBlock{Key: k, Attrs: e.attrs, Trie: e.built, Adopted: e.adopted != nil})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Rel != out[j].Key.Rel {
			return out[i].Key.Rel < out[j].Key.Rel
		}
		return out[i].Key.Sig < out[j].Key.Sig
	})
	return out
}

// Cubes returns the sorted distinct cube ids with at least one bound block.
func (r *Registry) Cubes() []int {
	r.mu.Lock()
	out := make([]int, 0, len(r.byCube))
	for c := range r.byCube {
		out = append(out, c)
	}
	r.mu.Unlock()
	sort.Ints(out)
	return out
}

// CubeRels returns the sorted relation names bound on cube.
func (r *Registry) CubeRels(cube int) []string {
	r.mu.Lock()
	var out []string
	for ck := range r.cubes {
		if ck.cube == cube {
			out = append(out, ck.rel)
		}
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// BlockKeysOf returns cube's block working set across all relations, in
// binding order — the locality signal the cube scheduler partitions on.
// The returned slice is shared; callers must not mutate it.
func (r *Registry) BlockKeysOf(cube int) []Key {
	r.mu.Lock()
	ks := r.byCube[cube]
	r.mu.Unlock()
	return ks
}

// CubeWeight estimates cube's join work as the summed tuple counts
// deposited for its bound blocks — the cost signal the locality
// partitioner balances deques by. Sizes survive the trie build, so cubes
// can be weighed at any point.
func (r *Registry) CubeWeight(cube int) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var w int64
	for _, k := range r.byCube[cube] {
		if e, ok := r.blocks[k]; ok {
			w += e.size
		}
	}
	return w
}

// Len returns the number of distinct blocks deposited.
func (r *Registry) Len() int {
	r.mu.Lock()
	n := len(r.blocks)
	r.mu.Unlock()
	return n
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Blocks:     int64(r.Len()),
		Builds:     r.builds.Load(),
		Hits:       r.hits.Load(),
		CubeMerges: r.cubeMerges.Load(),
	}
}
