package blockcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"adj/internal/relation"
	"adj/internal/trie"
)

func mkRel(name string, rows [][]relation.Value) *relation.Relation {
	return relation.FromTuples(name, []string{"a", "b"}, rows)
}

func trieRows(t *trie.Trie) string {
	if t == nil {
		return "<nil>"
	}
	return t.ToRelation("x").String()
}

// A block deposited as tuple parts from several senders must build one
// trie equal to the trie over the concatenation, and every subsequent
// request must return the same shared instance.
func TestBlockTrieBuildOnce(t *testing.T) {
	r := New()
	k := Key{Rel: "R", Sig: 3}
	attrs := []string{"a", "b"}
	p1 := mkRel("R", [][]relation.Value{{1, 2}, {5, 6}})
	p2 := mkRel("R", [][]relation.Value{{1, 2}, {3, 4}})
	r.DepositTuples(k, attrs, p1)
	r.DepositTuples(k, attrs, p2)
	if r.Len() != 1 {
		t.Fatalf("len=%d after two deposits of one key", r.Len())
	}
	first := r.BlockTrie(k)
	if first == nil || first.NumTuples != 3 {
		t.Fatalf("block trie = %s, want 3 distinct tuples", trieRows(first))
	}
	again := r.BlockTrie(k)
	if again != first {
		t.Fatal("second request built a new trie instead of sharing")
	}
	st := r.Stats()
	if st.Builds != 1 || st.Hits != 1 || st.Blocks != 1 {
		t.Fatalf("stats = %+v, want builds=1 hits=1 blocks=1", st)
	}
}

// Two cubes bound to the same single block must alias the same trie with
// no cube-level merge; a cube holding two blocks merges them lazily.
func TestCubeTrieSharingAndLazyMerge(t *testing.T) {
	r := New()
	attrs := []string{"a", "b"}
	kA := Key{Rel: "R", Sig: 0}
	kB := Key{Rel: "R", Sig: 1}
	r.DepositTuples(kA, attrs, mkRel("R", [][]relation.Value{{1, 1}}))
	r.DepositTuples(kB, attrs, mkRel("R", [][]relation.Value{{2, 2}}))
	r.BindCube(0, "R", kA)
	r.BindCube(2, "R", kA) // shares block A with cube 0
	r.BindCube(4, "R", kA)
	r.BindCube(4, "R", kB) // cube 4 holds both blocks
	r.BindCube(4, "R", kA) // rebinding is a no-op

	t0, ok := r.CubeTrie(0, "R")
	if !ok {
		t.Fatal("cube 0 unbound")
	}
	t2, _ := r.CubeTrie(2, "R")
	if t0 != t2 {
		t.Fatal("single-block cubes must share the block trie instance")
	}
	t4, _ := r.CubeTrie(4, "R")
	if t4.NumTuples != 2 {
		t.Fatalf("cube 4 merged trie = %s, want 2 tuples", trieRows(t4))
	}
	if _, ok := r.CubeTrie(1, "R"); ok {
		t.Fatal("unbound cube reported present")
	}
	st := r.Stats()
	if st.Builds != 2 {
		t.Fatalf("builds = %d, want 2 (one per block, shared by 3 cube bindings)", st.Builds)
	}
	if st.CubeMerges != 1 {
		t.Fatalf("cube merges = %d, want 1 (only the two-block cube merges)", st.CubeMerges)
	}
	if got := len(r.BlockKeysOf(4)); got != 2 {
		t.Fatalf("cube 4 working set = %d keys, want 2", got)
	}
	if got := r.Cubes(); fmt.Sprint(got) != "[0 2 4]" {
		t.Fatalf("cubes = %v", got)
	}
}

// Trie parts (Merge shuffle) from several senders merge once into the
// deduplicated union.
func TestTriePartsMerge(t *testing.T) {
	r := New()
	k := Key{Rel: "S", Sig: 7}
	attrs := []string{"a", "b"}
	r.DepositTrie(k, attrs, trie.Build(mkRel("S", [][]relation.Value{{1, 2}, {3, 4}}), attrs))
	r.DepositTrie(k, attrs, trie.Build(mkRel("S", [][]relation.Value{{3, 4}, {5, 6}}), attrs))
	bt := r.BlockTrie(k)
	if bt.NumTuples != 3 {
		t.Fatalf("merged block = %s, want 3 tuples", trieRows(bt))
	}
}

// Single-flight: many goroutines racing on the same blocks and cubes must
// observe exactly one build per block (run with -race in CI).
func TestSingleFlightUnderRace(t *testing.T) {
	r := New()
	attrs := []string{"a", "b"}
	const blocks = 8
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < blocks; s++ {
		k := Key{Rel: "R", Sig: s}
		rows := make([][]relation.Value, 50)
		for i := range rows {
			rows[i] = []relation.Value{rng.Int63n(100), rng.Int63n(100)}
		}
		r.DepositTuples(k, attrs, mkRel("R", rows))
		for cube := 0; cube < 16; cube++ {
			if cube%blocks == s || (cube+1)%blocks == s {
				r.BindCube(cube, "R", k)
			}
		}
	}
	var wg sync.WaitGroup
	tries := make([][]*trie.Trie, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for cube := 0; cube < 16; cube++ {
				tr, ok := r.CubeTrie(cube, "R")
				if ok {
					tries[g] = append(tries[g], tr)
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if len(tries[g]) != len(tries[0]) {
			t.Fatalf("goroutine %d saw %d cube tries, goroutine 0 saw %d", g, len(tries[g]), len(tries[0]))
		}
		for i := range tries[g] {
			if tries[g][i] != tries[0][i] {
				t.Fatalf("goroutine %d got a different trie instance for cube %d", g, i)
			}
		}
	}
	st := r.Stats()
	if st.Builds != blocks {
		t.Fatalf("builds = %d, want exactly %d (one per block)", st.Builds, blocks)
	}
}

// CubeWeight must sum the tuple counts deposited for a cube's bound
// blocks — across senders, both deposit kinds, and surviving the trie
// build (the scheduler weighs cubes after tries may already exist).
func TestCubeWeight(t *testing.T) {
	r := New()
	attrs := []string{"a", "b"}
	kA := Key{Rel: "R", Sig: 0}
	kB := Key{Rel: "S", Sig: 1}
	r.DepositTuples(kA, attrs, mkRel("R", [][]relation.Value{{1, 2}, {1, 3}}))
	r.DepositTuples(kA, attrs, mkRel("R", [][]relation.Value{{2, 2}}))
	r.DepositTrie(kB, attrs, trie.Build(mkRel("S", [][]relation.Value{{5, 6}, {5, 7}, {6, 6}, {7, 7}}), attrs))
	r.BindCube(0, "R", kA)
	r.BindCube(0, "S", kB)
	r.BindCube(1, "R", kA)
	if w := r.CubeWeight(0); w != 7 {
		t.Fatalf("cube 0 weight = %d, want 7 (3 tuple-part rows + 4 trie tuples)", w)
	}
	if w := r.CubeWeight(1); w != 3 {
		t.Fatalf("cube 1 weight = %d, want 3", w)
	}
	if w := r.CubeWeight(99); w != 0 {
		t.Fatalf("unknown cube weight = %d, want 0", w)
	}
	// Building the tries must not lose the size accounting.
	r.BlockTrie(kA)
	r.BlockTrie(kB)
	if w := r.CubeWeight(0); w != 7 {
		t.Fatalf("cube 0 weight after builds = %d, want 7", w)
	}
}

// An empty registry answers gracefully.
func TestEmptyRegistry(t *testing.T) {
	r := New()
	if tr := r.BlockTrie(Key{Rel: "X", Sig: 0}); tr != nil {
		t.Fatal("unknown block should return nil")
	}
	if _, ok := r.CubeTrie(0, "X"); ok {
		t.Fatal("unknown cube should report absent")
	}
	if len(r.Cubes()) != 0 || r.Len() != 0 {
		t.Fatal("empty registry reports contents")
	}
}
