package blockcache

import (
	"testing"

	"adj/internal/relation"
	"adj/internal/trie"
)

func testTrie(t *testing.T, name string, n int) *trie.Trie {
	t.Helper()
	r := relation.New(name, "a", "b")
	for i := 0; i < n; i++ {
		r.Append(relation.Value(i), relation.Value(i*7%n))
	}
	return trie.Build(r, []string{"a", "b"})
}

func TestStorePutSnapshot(t *testing.T) {
	s := NewStore(0)
	tr := testTrie(t, "R", 16)
	mid := ManifestID{Content: 1, Layout: 2}
	s.Put(BlockID{1, 2, 0}, tr)
	s.Put(BlockID{1, 2, 3}, tr)
	if _, ok := s.Snapshot(mid); ok {
		t.Fatal("snapshot without manifest must miss")
	}
	s.PutManifest(mid, []int{0, 3})
	blocks, ok := s.Snapshot(mid)
	if !ok || len(blocks) != 2 || blocks[0] != tr || blocks[3] != tr {
		t.Fatalf("snapshot = %v ok=%v", blocks, ok)
	}
	// Missing block breaks the whole snapshot.
	s.PutManifest(ManifestID{Content: 9, Layout: 9}, []int{1})
	if _, ok := s.Snapshot(ManifestID{Content: 9, Layout: 9}); ok {
		t.Fatal("snapshot with evicted block must miss")
	}
	st := s.Stats()
	if st.Blocks != 2 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreEmptyManifest(t *testing.T) {
	s := NewStore(0)
	mid := ManifestID{Content: 5, Layout: 5}
	s.PutManifest(mid, nil)
	blocks, ok := s.Snapshot(mid)
	if !ok || len(blocks) != 0 {
		t.Fatalf("empty manifest snapshot = %v ok=%v", blocks, ok)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	tr := testTrie(t, "R", 32)
	per := tr.MemBytes()
	s := NewStore(3 * per)
	for sig := 0; sig < 5; sig++ {
		s.Put(BlockID{1, 1, sig}, tr)
	}
	st := s.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// The oldest entries (sigs 0, 1) must be gone; the newest must survive.
	if _, ok := s.entries[BlockID{1, 1, 0}]; ok {
		t.Fatal("sig 0 should have been evicted")
	}
	if _, ok := s.entries[BlockID{1, 1, 4}]; !ok {
		t.Fatal("sig 4 should be resident")
	}
	// Touching sig 2 via a manifest snapshot protects it from the next Put.
	s.PutManifest(ManifestID{1, 1}, []int{2})
	if _, ok := s.Snapshot(ManifestID{1, 1}); !ok {
		t.Fatal("sig 2 should be resident")
	}
	s.Put(BlockID{1, 1, 5}, tr)
	if _, ok := s.entries[BlockID{1, 1, 2}]; !ok {
		t.Fatal("recently-used sig 2 evicted before older entries")
	}
}

func TestStoreRejectsOversizedBlock(t *testing.T) {
	small := testTrie(t, "R", 4)
	s := NewStore(small.MemBytes())
	big := testTrie(t, "R", 4096)
	s.Put(BlockID{1, 1, 0}, big)
	if s.Len() != 0 {
		t.Fatal("oversized block admitted")
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("rejection must count as eviction")
	}
	s.Put(BlockID{1, 1, 1}, small)
	if s.Len() != 1 {
		t.Fatal("small block rejected")
	}
}

func TestRegistryAdoptedTriesCountAsHits(t *testing.T) {
	r := New()
	tr := testTrie(t, "R", 8)
	k := Key{Rel: "R", Sig: 0}
	r.DepositBuilt(k, []string{"a", "b"}, tr)
	r.BindCube(1, "R", k)
	if got := r.BlockTrie(k); got != tr {
		t.Fatal("adopted trie not returned")
	}
	r.BlockTrie(k)
	st := r.Stats()
	if st.Builds != 0 {
		t.Fatalf("adopted block counted %d builds", st.Builds)
	}
	if st.Hits != 2 {
		t.Fatalf("adopted block hits = %d, want 2 (every request)", st.Hits)
	}
	bbs := r.BuiltBlocks()
	if len(bbs) != 1 || !bbs[0].Adopted || bbs[0].Trie != tr {
		t.Fatalf("BuiltBlocks = %+v", bbs)
	}
}
