// Package deltaenc is the shared wire-level delta scheme of the batched
// codecs: zigzag-mapped deltas stored at one fixed byte width per run
// (0, 1, 2, 4 or 8 — width 0 means every delta is zero). The relation
// codec applies it column-wise over row-major tuples; the trie codec
// applies it to flat level arrays. Keeping the primitives here means a
// width or zigzag fix cannot drift between the two payload formats.
package deltaenc

import (
	"encoding/binary"
	"fmt"
)

// Zigzag maps signed deltas onto unsigned magnitudes.
func Zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// WidthFor returns the byte width (0, 1, 2, 4, 8) holding maxZ.
func WidthFor(maxZ uint64) int {
	switch {
	case maxZ == 0:
		return 0
	case maxZ < 1<<8:
		return 1
	case maxZ < 1<<16:
		return 2
	case maxZ < 1<<32:
		return 4
	default:
		return 8
	}
}

// ValidWidth reports whether w is an encodable width.
func ValidWidth(w int) bool {
	switch w {
	case 0, 1, 2, 4, 8:
		return true
	}
	return false
}

// Extend grows dst by n bytes and returns the extended slice; the new
// region's contents are overwritten by the caller.
func Extend(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}

// AppendRun encodes vals as one zigzag-delta run — a width byte followed
// by len(vals) fixed-width little-endian deltas.
func AppendRun(dst []byte, vals []int64) []byte {
	var maxZ uint64
	prev := int64(0)
	for _, v := range vals {
		if z := Zigzag(v - prev); z > maxZ {
			maxZ = z
		}
		prev = v
	}
	w := WidthFor(maxZ)
	dst = append(dst, byte(w))
	if w == 0 {
		return dst
	}
	off := len(dst)
	dst = Extend(dst, len(vals)*w)
	out := dst[off:]
	prev = 0
	switch w {
	case 1:
		for i, v := range vals {
			out[i] = byte(Zigzag(v - prev))
			prev = v
		}
	case 2:
		for i, v := range vals {
			binary.LittleEndian.PutUint16(out[2*i:], uint16(Zigzag(v-prev)))
			prev = v
		}
	case 4:
		for i, v := range vals {
			binary.LittleEndian.PutUint32(out[4*i:], uint32(Zigzag(v-prev)))
			prev = v
		}
	default:
		for i, v := range vals {
			binary.LittleEndian.PutUint64(out[8*i:], Zigzag(v-prev))
			prev = v
		}
	}
	return dst
}

// DecodeRun decodes len(out) values from buf (a width byte plus deltas)
// into out and returns the bytes consumed.
func DecodeRun(buf []byte, out []int64) (int, error) {
	if len(buf) < 1 {
		return 0, fmt.Errorf("deltaenc: missing width byte")
	}
	w := int(buf[0])
	if !ValidWidth(w) {
		return 0, fmt.Errorf("deltaenc: bad delta width %d", w)
	}
	n := len(out)
	need := 1 + n*w
	if len(buf) < need {
		return 0, fmt.Errorf("deltaenc: truncated run: need %d bytes", need)
	}
	in := buf[1:need]
	prev := int64(0)
	switch w {
	case 0:
		for i := range out {
			out[i] = 0
		}
	case 1:
		for i := range out {
			prev += Unzigzag(uint64(in[i]))
			out[i] = prev
		}
	case 2:
		for i := range out {
			prev += Unzigzag(uint64(binary.LittleEndian.Uint16(in[2*i:])))
			out[i] = prev
		}
	case 4:
		for i := range out {
			prev += Unzigzag(uint64(binary.LittleEndian.Uint32(in[4*i:])))
			out[i] = prev
		}
	default:
		for i := range out {
			prev += Unzigzag(binary.LittleEndian.Uint64(in[8*i:]))
			out[i] = prev
		}
	}
	return need, nil
}
