// Package deltaenc is the shared wire-level delta scheme of the batched
// codecs: zigzag-mapped deltas stored at one fixed byte width per run
// (0, 1, 2, 4 or 8 — width 0 means every delta is zero), or — when it is
// strictly smaller — in the exception-list form: a narrow base width for
// the bulk of the run plus a sparse list of wide outlier deltas, so one
// skewed value no longer forces the whole run wide. The relation codec
// applies the scheme column-wise; the trie codec applies it to flat level
// arrays. Keeping the primitives here means a width or zigzag fix cannot
// drift between the two payload formats.
package deltaenc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Zigzag maps signed deltas onto unsigned magnitudes.
func Zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }

// WidthFor returns the byte width (0, 1, 2, 4, 8) holding maxZ.
func WidthFor(maxZ uint64) int {
	switch {
	case maxZ == 0:
		return 0
	case maxZ < 1<<8:
		return 1
	case maxZ < 1<<16:
		return 2
	case maxZ < 1<<32:
		return 4
	default:
		return 8
	}
}

// ValidWidth reports whether w is an encodable fixed width.
func ValidWidth(w int) bool {
	switch w {
	case 0, 1, 2, 4, 8:
		return true
	}
	return false
}

// exceptionTag marks the exception-list run form: the low nibble holds the
// base width (0, 1, 2 or 4 — never 8, which has no outliers to strip).
// Values 0–8 remain the plain fixed-width tags, so old payloads decode
// unchanged.
const exceptionTag = 0x10

// exceptionOverhead is the wire cost of one outlier: a u32 position plus a
// u64 wide zigzag delta.
const exceptionOverhead = 12

// validBase reports whether b can be an exception run's base width.
func validBase(b int) bool {
	switch b {
	case 0, 1, 2, 4:
		return true
	}
	return false
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Extend grows dst by n bytes and returns the extended slice; the new
// region's contents are overwritten by the caller.
func Extend(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	return append(dst, make([]byte, n)...)
}

// AppendRun encodes vals as one zigzag-delta run: a tag byte followed by
// the run body. The encoder picks, per run, the cheapest of the fixed
// widths and the exception-list forms — the latter is chosen only when its
// total size (tag + exception count + 12 bytes per outlier + narrow base
// deltas) beats every fixed width, so a run of graph ids with a handful of
// hub-sized jumps stores one or two bytes per value instead of going wide
// for the whole run.
func AppendRun(dst []byte, vals []int64) []byte {
	// Pass 1: bucket every delta by bit length (one lzcnt + increment per
	// value — the only cost the common fixed-width case pays for width
	// adaptivity). Bucket b holds deltas of (b·8-7)..(b·8) significant
	// bits, i.e. exactly the ones needing b bytes; bucket 0 is the zeros.
	// Two interleaved tallies break the store-to-load dependency a single
	// array would chain through same-class runs (sorted data is exactly
	// such a run); the &15 mask proves the index in range so the loop
	// stays bounds-check-free.
	var bucketsA, bucketsB [16]int
	prev := int64(0)
	n2 := len(vals) &^ 1
	for i := 0; i < n2; i += 2 {
		za := Zigzag(vals[i] - prev)
		zb := Zigzag(vals[i+1] - vals[i])
		prev = vals[i+1]
		bucketsA[((bits.Len64(za)+7)>>3)&15]++
		bucketsB[((bits.Len64(zb)+7)>>3)&15]++
	}
	if n2 < len(vals) {
		bucketsA[((bits.Len64(Zigzag(vals[n2]-prev))+7)>>3)&15]++
	}
	var buckets [16]int
	for i := range buckets {
		buckets[i] = bucketsA[i] + bucketsB[i]
	}
	n := len(vals)
	// Cumulative fits per base width and the tightest fixed width.
	c0 := buckets[0]
	c1 := c0 + buckets[1]
	c2 := c1 + buckets[2]
	c4 := c2 + buckets[3] + buckets[4]
	wf := 8
	switch n {
	case c0:
		wf = 0
	case c1:
		wf = 1
	case c2:
		wf = 2
	case c4:
		wf = 4
	}
	bestCost := 1 + n*wf
	bestBase, bestM := -1, 0 // base -1 = plain fixed width
	for _, cand := range [...]struct{ base, fit int }{{0, c0}, {1, c1}, {2, c2}, {4, c4}} {
		if cand.base >= wf {
			break
		}
		m := n - cand.fit
		cost := 1 + uvarintLen(uint64(m)) + m*exceptionOverhead + n*cand.base
		// Margin gate: the exception form must be at least 1/8 smaller
		// than the best fixed width, not merely smaller. Marginal wins
		// (dense-ish outliers shaving single-digit percents) cost more in
		// the branchy encode/decode loops than the bytes save against the
		// modeled link bandwidth; genuinely sparse skew clears the margin
		// easily.
		if cost*8 > (1+n*wf)*7 {
			continue
		}
		if cost < bestCost {
			bestCost = cost
			bestBase, bestM = cand.base, m
		}
	}
	if bestBase < 0 {
		return appendFixedRun(dst, vals, wf)
	}
	return appendExceptionRun(dst, vals, bestBase, bestM)
}

// appendFixedRun writes the classic fixed-width form: a width byte
// followed by len(vals) fixed-width little-endian deltas.
func appendFixedRun(dst []byte, vals []int64, w int) []byte {
	dst = append(dst, byte(w))
	if w == 0 {
		return dst
	}
	off := len(dst)
	dst = Extend(dst, len(vals)*w)
	out := dst[off:]
	prev := int64(0)
	switch w {
	case 1:
		for i, v := range vals {
			out[i] = byte(Zigzag(v - prev))
			prev = v
		}
	case 2:
		for i, v := range vals {
			binary.LittleEndian.PutUint16(out[2*i:], uint16(Zigzag(v-prev)))
			prev = v
		}
	case 4:
		for i, v := range vals {
			binary.LittleEndian.PutUint32(out[4*i:], uint32(Zigzag(v-prev)))
			prev = v
		}
	default:
		for i, v := range vals {
			binary.LittleEndian.PutUint64(out[8*i:], Zigzag(v-prev))
			prev = v
		}
	}
	return dst
}

// appendExceptionRun writes the exception-list form: tag (0x10|base),
// uvarint outlier count m, m u32 ascending positions, m u64 wide zigzag
// deltas, then len(vals) base-width deltas with outlier slots zeroed.
func appendExceptionRun(dst []byte, vals []int64, base, m int) []byte {
	dst = append(dst, byte(exceptionTag|base))
	dst = binary.AppendUvarint(dst, uint64(m))
	off := len(dst)
	dst = Extend(dst, m*exceptionOverhead+len(vals)*base)
	pos := dst[off : off+4*m]
	wide := dst[off+4*m : off+exceptionOverhead*m]
	body := dst[off+exceptionOverhead*m:]
	// A delta is an outlier iff its zigzag ≥ thr; 1<<(8·base) covers base 0
	// too (z ≥ 1 ⇔ z ≠ 0). Specialized per-base loops keep the body write
	// branch-free apart from the (rare, predictable) outlier test.
	thr := uint64(1) << (8 * base)
	prev := int64(0)
	e := 0
	switch base {
	case 0:
		for i, v := range vals {
			z := Zigzag(v - prev)
			prev = v
			if z != 0 {
				binary.LittleEndian.PutUint32(pos[4*e:], uint32(i))
				binary.LittleEndian.PutUint64(wide[8*e:], z)
				e++
			}
		}
	case 1:
		for i, v := range vals {
			z := Zigzag(v - prev)
			prev = v
			if z >= thr {
				binary.LittleEndian.PutUint32(pos[4*e:], uint32(i))
				binary.LittleEndian.PutUint64(wide[8*e:], z)
				e++
				z = 0
			}
			body[i] = byte(z)
		}
	case 2:
		for i, v := range vals {
			z := Zigzag(v - prev)
			prev = v
			if z >= thr {
				binary.LittleEndian.PutUint32(pos[4*e:], uint32(i))
				binary.LittleEndian.PutUint64(wide[8*e:], z)
				e++
				z = 0
			}
			binary.LittleEndian.PutUint16(body[2*i:], uint16(z))
		}
	default:
		for i, v := range vals {
			z := Zigzag(v - prev)
			prev = v
			if z >= thr {
				binary.LittleEndian.PutUint32(pos[4*e:], uint32(i))
				binary.LittleEndian.PutUint64(wide[8*e:], z)
				e++
				z = 0
			}
			binary.LittleEndian.PutUint32(body[4*i:], uint32(z))
		}
	}
	return dst
}

// RunSize returns the total encoded size of the run of n values starting
// at buf, validating that buf holds it entirely — the section walk the
// relation codec performs before materializing any values.
func RunSize(buf []byte, n int) (int, error) {
	if len(buf) < 1 {
		return 0, fmt.Errorf("deltaenc: missing tag byte")
	}
	tag := int(buf[0])
	if ValidWidth(tag) {
		size := 1 + n*tag
		if len(buf) < size {
			return 0, fmt.Errorf("deltaenc: truncated run: need %d bytes", size)
		}
		return size, nil
	}
	base := tag &^ exceptionTag
	if tag&exceptionTag == 0 || !validBase(base) {
		return 0, fmt.Errorf("deltaenc: bad run tag %#02x", tag)
	}
	m64, w := binary.Uvarint(buf[1:])
	if w <= 0 {
		return 0, fmt.Errorf("deltaenc: truncated exception count")
	}
	if m64 > uint64(n) {
		return 0, fmt.Errorf("deltaenc: %d exceptions for %d values", m64, n)
	}
	size := 1 + w + int(m64)*exceptionOverhead + n*base
	if len(buf) < size {
		return 0, fmt.Errorf("deltaenc: truncated exception run: need %d bytes", size)
	}
	return size, nil
}

// DecodeRun decodes len(out) values from buf (a tag byte plus the run
// body, in either the fixed-width or the exception-list form) into out and
// returns the bytes consumed.
func DecodeRun(buf []byte, out []int64) (int, error) {
	if len(buf) < 1 {
		return 0, fmt.Errorf("deltaenc: missing tag byte")
	}
	tag := int(buf[0])
	if !ValidWidth(tag) {
		return decodeExceptionRun(buf, out)
	}
	w := tag
	n := len(out)
	need := 1 + n*w
	if len(buf) < need {
		return 0, fmt.Errorf("deltaenc: truncated run: need %d bytes", need)
	}
	in := buf[1:need]
	prev := int64(0)
	switch w {
	case 0:
		for i := range out {
			out[i] = 0
		}
	case 1:
		for i := range out {
			prev += Unzigzag(uint64(in[i]))
			out[i] = prev
		}
	case 2:
		for i := range out {
			prev += Unzigzag(uint64(binary.LittleEndian.Uint16(in[2*i:])))
			out[i] = prev
		}
	case 4:
		for i := range out {
			prev += Unzigzag(uint64(binary.LittleEndian.Uint32(in[4*i:])))
			out[i] = prev
		}
	default:
		for i := range out {
			prev += Unzigzag(binary.LittleEndian.Uint64(in[8*i:]))
			out[i] = prev
		}
	}
	return need, nil
}

// decodeExceptionRun decodes the exception-list form, validating the tag,
// the outlier count and the position list (strictly ascending, in range)
// so a corrupt or hostile payload cannot index out of bounds.
func decodeExceptionRun(buf []byte, out []int64) (int, error) {
	tag := int(buf[0])
	base := tag &^ exceptionTag
	if tag&exceptionTag == 0 || !validBase(base) {
		return 0, fmt.Errorf("deltaenc: bad run tag %#02x", tag)
	}
	n := len(out)
	m64, uw := binary.Uvarint(buf[1:])
	if uw <= 0 {
		return 0, fmt.Errorf("deltaenc: truncated exception count")
	}
	m := int(m64)
	if m64 > uint64(n) {
		return 0, fmt.Errorf("deltaenc: %d exceptions for %d values", m64, n)
	}
	need := 1 + uw + m*exceptionOverhead + n*base
	if len(buf) < need {
		return 0, fmt.Errorf("deltaenc: truncated exception run: need %d bytes", need)
	}
	pos := buf[1+uw : 1+uw+4*m]
	wide := buf[1+uw+4*m : 1+uw+exceptionOverhead*m]
	body := buf[1+uw+exceptionOverhead*m : need]
	// Validate positions before touching the body.
	last := -1
	for e := 0; e < m; e++ {
		p := int(binary.LittleEndian.Uint32(pos[4*e:]))
		if p <= last || p >= n {
			return 0, fmt.Errorf("deltaenc: bad exception position %d (n=%d)", p, n)
		}
		last = p
	}
	// Decode segment-wise: a tight base-width loop between outliers, then
	// the wide delta spliced in — the inner loops stay branch-free.
	prev := int64(0)
	i := 0
	for e := 0; e <= m; e++ {
		stop := n
		if e < m {
			stop = int(binary.LittleEndian.Uint32(pos[4*e:]))
		}
		switch base {
		case 0:
			for ; i < stop; i++ {
				out[i] = prev
			}
		case 1:
			for ; i < stop; i++ {
				prev += Unzigzag(uint64(body[i]))
				out[i] = prev
			}
		case 2:
			for ; i < stop; i++ {
				prev += Unzigzag(uint64(binary.LittleEndian.Uint16(body[2*i:])))
				out[i] = prev
			}
		default:
			for ; i < stop; i++ {
				prev += Unzigzag(uint64(binary.LittleEndian.Uint32(body[4*i:])))
				out[i] = prev
			}
		}
		if e < m {
			prev += Unzigzag(binary.LittleEndian.Uint64(wide[8*e:]))
			out[i] = prev
			i++
		}
	}
	return need, nil
}
