package deltaenc

import (
	"math"
	"math/rand"
	"testing"
)

func TestZigzagRoundtripBoundaries(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 63, -64, math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1}
	for _, v := range cases {
		if got := Unzigzag(Zigzag(v)); got != v {
			t.Errorf("Unzigzag(Zigzag(%d)) = %d", v, got)
		}
	}
	// Zigzag must map small magnitudes to small codes (the property the
	// width choice depends on).
	if Zigzag(0) != 0 || Zigzag(-1) != 1 || Zigzag(1) != 2 || Zigzag(-2) != 3 {
		t.Errorf("zigzag order broken: %d %d %d %d", Zigzag(0), Zigzag(-1), Zigzag(1), Zigzag(-2))
	}
	if Zigzag(math.MinInt64) != math.MaxUint64 {
		t.Errorf("Zigzag(MinInt64) = %d, want MaxUint64", Zigzag(math.MinInt64))
	}
}

func TestWidthForBoundaries(t *testing.T) {
	cases := []struct {
		z uint64
		w int
	}{
		{0, 0},
		{1, 1}, {255, 1},
		{256, 2}, {65535, 2},
		{65536, 4}, {1<<32 - 1, 4},
		{1 << 32, 8}, {math.MaxUint64, 8},
	}
	for _, c := range cases {
		if got := WidthFor(c.z); got != c.w {
			t.Errorf("WidthFor(%d) = %d, want %d", c.z, got, c.w)
		}
	}
}

func TestValidWidth(t *testing.T) {
	for w := -1; w <= 16; w++ {
		want := w == 0 || w == 1 || w == 2 || w == 4 || w == 8
		if got := ValidWidth(w); got != want {
			t.Errorf("ValidWidth(%d) = %v, want %v", w, got, want)
		}
	}
}

// runRoundtrip encodes vals, asserts the chosen width, and decodes back.
func runRoundtrip(t *testing.T, vals []int64, wantWidth int) {
	t.Helper()
	buf := AppendRun(nil, vals)
	if len(buf) == 0 || int(buf[0]) != wantWidth {
		t.Fatalf("vals %v: encoded width %d, want %d", vals, buf[0], wantWidth)
	}
	if want := 1 + len(vals)*wantWidth; len(buf) != want {
		t.Fatalf("vals %v: encoded %d bytes, want %d", vals, len(buf), want)
	}
	out := make([]int64, len(vals))
	used, err := DecodeRun(buf, out)
	if err != nil {
		t.Fatalf("vals %v: decode: %v", vals, err)
	}
	if used != len(buf) {
		t.Fatalf("vals %v: consumed %d bytes, want %d", vals, used, len(buf))
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("vals %v: decoded %v", vals, out)
		}
	}
}

func TestRunRoundtripEveryWidth(t *testing.T) {
	runRoundtrip(t, []int64{0, 0, 0, 0}, 0)                                  // all-zero deltas (first delta is vs 0)
	runRoundtrip(t, []int64{0, 1, 2, 3, -60}, 1)                             // |zigzag| < 1<<8
	runRoundtrip(t, []int64{0, 1000, 2000, -30000}, 2)                       // < 1<<16
	runRoundtrip(t, []int64{0, 1 << 20, 1 << 21, -(1 << 29)}, 4)             // < 1<<32
	runRoundtrip(t, []int64{0, 1 << 40, -(1 << 40)}, 8)                      // wide deltas
	runRoundtrip(t, []int64{math.MaxInt64}, 8)                               // zigzag(MaxInt64) needs 8
	runRoundtrip(t, []int64{math.MinInt64}, 8)                               // zigzag(MinInt64) = MaxUint64
	runRoundtrip(t, []int64{math.MinInt64, math.MaxInt64, math.MinInt64}, 8) // full-range swings
	runRoundtrip(t, nil, 0)                                                  // empty run is one width byte
}

func TestRunRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(64)
		vals := make([]int64, n)
		for i := range vals {
			switch rng.Intn(4) {
			case 0:
				vals[i] = int64(rng.Intn(256))
			case 1:
				vals[i] = rng.Int63n(1 << 20)
			case 2:
				vals[i] = -rng.Int63n(1 << 40)
			default:
				vals[i] = int64(rng.Uint64()) // full range, incl. MinInt64 region
			}
		}
		buf := AppendRun(nil, vals)
		out := make([]int64, n)
		used, err := DecodeRun(buf, out)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if used != len(buf) {
			t.Fatalf("iter %d: consumed %d of %d bytes", iter, used, len(buf))
		}
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("iter %d: value %d: got %d want %d", iter, i, out[i], vals[i])
			}
		}
	}
}

func TestAppendRunPreservesPrefix(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf := AppendRun(append([]byte(nil), prefix...), []int64{1, 2, 3})
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatalf("prefix clobbered: % x", buf[:2])
	}
	out := make([]int64, 3)
	if _, err := DecodeRun(buf[2:], out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("decoded %v", out)
	}
}

func TestDecodeRunErrors(t *testing.T) {
	out := make([]int64, 4)
	if _, err := DecodeRun(nil, out); err == nil {
		t.Error("empty buffer: want missing-width error")
	}
	for _, w := range []byte{3, 5, 6, 7, 9, 255} {
		if _, err := DecodeRun([]byte{w, 0, 0, 0, 0}, out); err == nil {
			t.Errorf("width %d: want bad-width error", w)
		}
	}
	// Truncated payloads at every valid width.
	for _, w := range []int{1, 2, 4, 8} {
		full := AppendRun(nil, []int64{1 << (8 * (w - 1)), 2 << (8 * (w - 1)), 0, 0}[:4])
		for cut := 1; cut < len(full); cut++ {
			if _, err := DecodeRun(full[:cut], out); err == nil {
				t.Errorf("width %d: truncation at %d bytes not detected", w, cut)
			}
		}
	}
}

func TestExtendReusesCapacity(t *testing.T) {
	base := make([]byte, 2, 64)
	got := Extend(base, 10)
	if len(got) != 12 {
		t.Fatalf("len=%d", len(got))
	}
	if &got[0] != &base[0] {
		t.Error("Extend should reuse capacity in place")
	}
	grown := Extend(make([]byte, 2, 4), 10)
	if len(grown) != 12 {
		t.Fatalf("grown len=%d", len(grown))
	}
}
