package deltaenc

import (
	"math"
	"math/rand"
	"testing"
)

func TestZigzagRoundtripBoundaries(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 63, -64, math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1}
	for _, v := range cases {
		if got := Unzigzag(Zigzag(v)); got != v {
			t.Errorf("Unzigzag(Zigzag(%d)) = %d", v, got)
		}
	}
	// Zigzag must map small magnitudes to small codes (the property the
	// width choice depends on).
	if Zigzag(0) != 0 || Zigzag(-1) != 1 || Zigzag(1) != 2 || Zigzag(-2) != 3 {
		t.Errorf("zigzag order broken: %d %d %d %d", Zigzag(0), Zigzag(-1), Zigzag(1), Zigzag(-2))
	}
	if Zigzag(math.MinInt64) != math.MaxUint64 {
		t.Errorf("Zigzag(MinInt64) = %d, want MaxUint64", Zigzag(math.MinInt64))
	}
}

func TestWidthForBoundaries(t *testing.T) {
	cases := []struct {
		z uint64
		w int
	}{
		{0, 0},
		{1, 1}, {255, 1},
		{256, 2}, {65535, 2},
		{65536, 4}, {1<<32 - 1, 4},
		{1 << 32, 8}, {math.MaxUint64, 8},
	}
	for _, c := range cases {
		if got := WidthFor(c.z); got != c.w {
			t.Errorf("WidthFor(%d) = %d, want %d", c.z, got, c.w)
		}
	}
}

func TestValidWidth(t *testing.T) {
	for w := -1; w <= 16; w++ {
		want := w == 0 || w == 1 || w == 2 || w == 4 || w == 8
		if got := ValidWidth(w); got != want {
			t.Errorf("ValidWidth(%d) = %v, want %v", w, got, want)
		}
	}
}

// runRoundtrip encodes vals, asserts the chosen width, and decodes back.
func runRoundtrip(t *testing.T, vals []int64, wantWidth int) {
	t.Helper()
	buf := AppendRun(nil, vals)
	if len(buf) == 0 || int(buf[0]) != wantWidth {
		t.Fatalf("vals %v: encoded width %d, want %d", vals, buf[0], wantWidth)
	}
	if want := 1 + len(vals)*wantWidth; len(buf) != want {
		t.Fatalf("vals %v: encoded %d bytes, want %d", vals, len(buf), want)
	}
	out := make([]int64, len(vals))
	used, err := DecodeRun(buf, out)
	if err != nil {
		t.Fatalf("vals %v: decode: %v", vals, err)
	}
	if used != len(buf) {
		t.Fatalf("vals %v: consumed %d bytes, want %d", vals, used, len(buf))
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("vals %v: decoded %v", vals, out)
		}
	}
}

func TestRunRoundtripEveryWidth(t *testing.T) {
	runRoundtrip(t, []int64{0, 0, 0, 0}, 0)                      // all-zero deltas (first delta is vs 0)
	runRoundtrip(t, []int64{0, 1, 2, 3, -60}, 1)                 // |zigzag| < 1<<8
	runRoundtrip(t, []int64{0, 1000, 2000, -30000}, 2)           // < 1<<16
	runRoundtrip(t, []int64{0, 1 << 20, 1 << 21, -(1 << 29)}, 4) // < 1<<32
	runRoundtrip(t, []int64{0, 1 << 40, -(1 << 40)}, 8)          // wide deltas (exceptions would cost more)
	runRoundtrip(t, []int64{math.MaxInt64}, 8)                   // zigzag(MaxInt64) needs 8
	runRoundtrip(t, []int64{math.MinInt64}, 8)                   // zigzag(MinInt64) = MaxUint64
	runRoundtrip(t, nil, 0)                                      // empty run is one width byte
	// Full-range swings: two of the three deltas are tiny (the overflowing
	// subtraction wraps to ±1), so the adaptive encoder stores them at base
	// width 1 with a single wide exception — 17 bytes instead of 25.
	exceptionRoundtrip(t, []int64{math.MinInt64, math.MaxInt64, math.MinInt64}, 1, 1)
}

// exceptionRoundtrip encodes vals, asserts the exception-list form with
// the given base width and outlier count was chosen, and decodes back.
func exceptionRoundtrip(t *testing.T, vals []int64, wantBase, wantM int) {
	t.Helper()
	buf := AppendRun(nil, vals)
	if len(buf) == 0 || int(buf[0]) != exceptionTag|wantBase {
		t.Fatalf("vals %v: tag %#02x, want exception base %d (%#02x)",
			vals, buf[0], wantBase, exceptionTag|wantBase)
	}
	if want := 1 + uvarintLen(uint64(wantM)) + wantM*exceptionOverhead + len(vals)*wantBase; len(buf) != want {
		t.Fatalf("vals %v: encoded %d bytes, want %d", vals, len(buf), want)
	}
	if fixed := 1 + len(vals)*8; len(buf) >= fixed {
		t.Fatalf("vals %v: exception form (%d bytes) not smaller than widest fixed (%d)",
			vals, len(buf), fixed)
	}
	out := make([]int64, len(vals))
	used, err := DecodeRun(buf, out)
	if err != nil {
		t.Fatalf("vals %v: decode: %v", vals, err)
	}
	if used != len(buf) {
		t.Fatalf("vals %v: consumed %d bytes, want %d", vals, used, len(buf))
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Fatalf("vals %v: decoded %v", vals, out)
		}
	}
}

// The exception-list form must engage exactly when it is smaller: a long
// narrow run with sparse wide outliers compresses near the base width,
// while dense outliers fall back to the fixed form.
func TestExceptionRunForms(t *testing.T) {
	// 64 small steps with two hub-sized jumps: base width 1, two outliers.
	vals := make([]int64, 64)
	acc := int64(0)
	for i := range vals {
		acc += int64(i % 7)
		vals[i] = acc
	}
	vals[20] += 1 << 40
	for i := 21; i < len(vals); i++ {
		vals[i] += 1 << 40 // jump up at 20 (wide delta), stays up: one outlier
	}
	vals[40] -= 1 << 40
	for i := 41; i < len(vals); i++ {
		vals[i] -= 1 << 40 // jump back down at 40: second outlier
	}
	exceptionRoundtrip(t, vals, 1, 2)

	// A constant run with one wide jump: base width 0 (all other deltas
	// zero) plus a single exception.
	flat := make([]int64, 32)
	for i := 16; i < 32; i++ {
		flat[i] = 1 << 50
	}
	exceptionRoundtrip(t, flat, 0, 1)

	// Dense outliers: every delta wide → fixed width 8 stays cheaper.
	wide := make([]int64, 16)
	for i := range wide {
		wide[i] = int64(i) << 40
	}
	runRoundtrip(t, wide, 8)

	// Marginal wins fail the margin gate: with a wide outlier every fourth
	// value, base 4 is smaller than fixed width 8 (282 vs 321 bytes here)
	// but saves only ~12.1% < 1/8, so the fixed width holds.
	marginal := make([]int64, 40)
	acc = 0
	for i := range marginal {
		if i%4 == 3 {
			acc += 1 << 40 // wide outlier
		} else {
			acc += 1 << 20 // needs 4 bytes: base 4, not narrower
		}
		marginal[i] = acc
	}
	marginalBuf := AppendRun(nil, marginal)
	if int(marginalBuf[0])&exceptionTag != 0 {
		t.Fatalf("marginal saving chose exception form (tag %#02x), margin gate should hold", marginalBuf[0])
	}

	// Exception at position 0 (the very first delta) and at the last slot.
	edge := make([]int64, 32)
	edge[0] = 1 << 50
	for i := 1; i < 31; i++ {
		edge[i] = edge[i-1] + 1
	}
	edge[31] = 1
	exceptionRoundtrip(t, edge, 1, 2)
}

// Randomized property: skewed runs (mostly small deltas, sparse huge
// jumps) always round-trip and never encode larger than the widest fixed
// form.
func TestExceptionRunProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(100)
		vals := make([]int64, n)
		acc := int64(0)
		for i := range vals {
			if rng.Intn(12) == 0 {
				acc += rng.Int63() - rng.Int63() // occasional huge jump
			} else {
				acc += int64(rng.Intn(100) - 50)
			}
			vals[i] = acc
		}
		buf := AppendRun(nil, vals)
		if len(buf) > 1+8*n {
			t.Fatalf("iter %d: encoded %d bytes > widest fixed %d", iter, len(buf), 1+8*n)
		}
		out := make([]int64, n)
		used, err := DecodeRun(buf, out)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if used != len(buf) {
			t.Fatalf("iter %d: consumed %d of %d bytes", iter, used, len(buf))
		}
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("iter %d: value %d: got %d want %d", iter, i, out[i], vals[i])
			}
		}
		// RunSize must agree with the decoder on the section length.
		if size, err := RunSize(buf, n); err != nil || size != used {
			t.Fatalf("iter %d: RunSize=(%d,%v), decoder used %d", iter, size, err, used)
		}
	}
}

// Corrupt exception payloads must error, never panic or mis-decode
// silently out of bounds.
func TestExceptionRunCorrupt(t *testing.T) {
	flat := make([]int64, 32)
	for i := 16; i < 32; i++ {
		flat[i] = 1 << 50
	}
	good := AppendRun(nil, flat)
	if good[0] != exceptionTag|0 {
		t.Fatalf("setup: tag %#02x, want exception base 0", good[0])
	}
	out := make([]int64, len(flat))

	// Invalid base widths in the tag nibble.
	for _, tag := range []byte{exceptionTag | 3, exceptionTag | 5, exceptionTag | 8, 0x2F} {
		bad := append([]byte(nil), good...)
		bad[0] = tag
		if _, err := DecodeRun(bad, out); err == nil {
			t.Errorf("tag %#02x: want bad-tag error", tag)
		}
		if _, err := RunSize(bad, len(out)); err == nil {
			t.Errorf("tag %#02x: RunSize: want bad-tag error", tag)
		}
	}
	// Truncation at every byte.
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeRun(good[:cut], out); err == nil {
			t.Errorf("truncation at %d bytes not detected", cut)
		}
	}
	// More exceptions than values.
	bad := append([]byte(nil), good...)
	bad[1] = 64 // uvarint m = 64 > n = 32
	if _, err := DecodeRun(bad, out); err == nil {
		t.Error("m > n not detected")
	}
	if _, err := RunSize(bad, len(out)); err == nil {
		t.Error("RunSize: m > n not detected")
	}
	// Out-of-range exception position.
	bad = append([]byte(nil), good...)
	bad[2], bad[3], bad[4], bad[5] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeRun(bad, out); err == nil {
		t.Error("out-of-range position not detected")
	}
	// Non-ascending positions: craft a two-exception run by hand.
	two := make([]int64, 8)
	two[2] = 1 << 50
	two[3] = 0
	for i := 4; i < 8; i++ {
		two[i] = 0
	}
	twoBuf := AppendRun(nil, two)
	if twoBuf[0] != exceptionTag|0 || twoBuf[1] != 2 {
		t.Fatalf("setup: want 2-exception base-0 run, got tag %#02x m=%d", twoBuf[0], twoBuf[1])
	}
	// Swap the two positions so they descend.
	copy(twoBuf[2:6], []byte{3, 0, 0, 0})
	copy(twoBuf[6:10], []byte{2, 0, 0, 0})
	if _, err := DecodeRun(twoBuf, make([]int64, 8)); err == nil {
		t.Error("non-ascending positions not detected")
	}
}

func TestRunRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(64)
		vals := make([]int64, n)
		for i := range vals {
			switch rng.Intn(4) {
			case 0:
				vals[i] = int64(rng.Intn(256))
			case 1:
				vals[i] = rng.Int63n(1 << 20)
			case 2:
				vals[i] = -rng.Int63n(1 << 40)
			default:
				vals[i] = int64(rng.Uint64()) // full range, incl. MinInt64 region
			}
		}
		buf := AppendRun(nil, vals)
		out := make([]int64, n)
		used, err := DecodeRun(buf, out)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if used != len(buf) {
			t.Fatalf("iter %d: consumed %d of %d bytes", iter, used, len(buf))
		}
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("iter %d: value %d: got %d want %d", iter, i, out[i], vals[i])
			}
		}
	}
}

func TestAppendRunPreservesPrefix(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf := AppendRun(append([]byte(nil), prefix...), []int64{1, 2, 3})
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatalf("prefix clobbered: % x", buf[:2])
	}
	out := make([]int64, 3)
	if _, err := DecodeRun(buf[2:], out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("decoded %v", out)
	}
}

func TestDecodeRunErrors(t *testing.T) {
	out := make([]int64, 4)
	if _, err := DecodeRun(nil, out); err == nil {
		t.Error("empty buffer: want missing-width error")
	}
	for _, w := range []byte{3, 5, 6, 7, 9, 255} {
		if _, err := DecodeRun([]byte{w, 0, 0, 0, 0}, out); err == nil {
			t.Errorf("width %d: want bad-width error", w)
		}
	}
	// Truncated payloads at every valid width.
	for _, w := range []int{1, 2, 4, 8} {
		full := AppendRun(nil, []int64{1 << (8 * (w - 1)), 2 << (8 * (w - 1)), 0, 0}[:4])
		for cut := 1; cut < len(full); cut++ {
			if _, err := DecodeRun(full[:cut], out); err == nil {
				t.Errorf("width %d: truncation at %d bytes not detected", w, cut)
			}
		}
	}
}

func TestExtendReusesCapacity(t *testing.T) {
	base := make([]byte, 2, 64)
	got := Extend(base, 10)
	if len(got) != 12 {
		t.Fatalf("len=%d", len(got))
	}
	if &got[0] != &base[0] {
		t.Error("Extend should reuse capacity in place")
	}
	grown := Extend(make([]byte, 2, 4), 10)
	if len(grown) != 12 {
		t.Fatalf("grown len=%d", len(grown))
	}
}
