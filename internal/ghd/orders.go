package ghd

import "strings"

// Traversal orders and attribute orders (§III-A "Reducing Choice of
// Attribute Orders"). A traversal order of the hypertree is valid when
// every prefix induces a connected subtree; an attribute order is valid
// when it lists, for some valid traversal order, each bag's not-yet-seen
// attributes as a contiguous block.

// TraversalOrders returns every valid traversal order of the bags (each
// prefix connected in the join tree). For a single bag there is one order.
func (d *Decomposition) TraversalOrders() [][]int {
	n := len(d.Bags)
	var out [][]int
	used := make([]bool, n)
	order := make([]int, 0, n)
	var rec func()
	rec = func() {
		if len(order) == n {
			out = append(out, append([]int(nil), order...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if len(order) > 0 && !d.adjacentToAny(v, order) {
				continue
			}
			used[v] = true
			order = append(order, v)
			rec()
			order = order[:len(order)-1]
			used[v] = false
		}
	}
	rec()
	return out
}

func (d *Decomposition) adjacentToAny(v int, set []int) bool {
	for _, u := range set {
		for _, w := range d.Adj[u] {
			if w == v {
				return true
			}
		}
	}
	return false
}

// NewAttrsAt returns, for a traversal order, the attributes newly
// introduced by each bag (bag attrs minus attrs of earlier bags), in
// sorted-vertex order.
func (d *Decomposition) NewAttrsAt(order []int) [][]string {
	seen := make(map[string]bool)
	out := make([][]string, len(order))
	for i, b := range order {
		for _, v := range d.Bags[b].Vertices {
			if !seen[v] {
				seen[v] = true
				out[i] = append(out[i], v)
			}
		}
	}
	return out
}

// AttrOrderFor builds one canonical valid attribute order for a traversal
// order: each bag's new attributes in sorted order. Engines that want the
// best within-bag permutation refine this with local statistics.
func (d *Decomposition) AttrOrderFor(order []int) []string {
	var out []string
	for _, grp := range d.NewAttrsAt(order) {
		out = append(out, grp...)
	}
	return out
}

// ValidAttrOrders enumerates all valid attribute orders: for every valid
// traversal order, every permutation of each bag's new attributes. The
// result is deduplicated (different traversals can yield the same order).
func (d *Decomposition) ValidAttrOrders() [][]string {
	seen := make(map[string]bool)
	var out [][]string
	for _, to := range d.TraversalOrders() {
		groups := d.NewAttrsAt(to)
		var build func(i int, acc []string)
		build = func(i int, acc []string) {
			if i == len(groups) {
				key := strings.Join(acc, "\x00")
				if !seen[key] {
					seen[key] = true
					out = append(out, append([]string(nil), acc...))
				}
				return
			}
			perms(groups[i], func(p []string) {
				build(i+1, append(acc, p...))
			})
		}
		build(0, nil)
	}
	return out
}

// IsValidAttrOrder reports whether ord is among the valid attribute orders.
func (d *Decomposition) IsValidAttrOrder(ord []string) bool {
	key := strings.Join(ord, "\x00")
	for _, v := range d.ValidAttrOrders() {
		if strings.Join(v, "\x00") == key {
			return true
		}
	}
	return false
}

// AllAttrOrders enumerates every permutation of the query attributes —
// the unpruned O(n!) space HCubeJ searches (Fig. 8's "All-Selected").
func AllAttrOrders(attrs []string) [][]string {
	var out [][]string
	perms(attrs, func(p []string) {
		out = append(out, append([]string(nil), p...))
	})
	return out
}

// perms calls fn with every permutation of items (fn must copy to retain).
func perms(items []string, fn func([]string)) {
	n := len(items)
	if n == 0 {
		fn(nil)
		return
	}
	buf := append([]string(nil), items...)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			fn(buf)
			return
		}
		for i := k; i < n; i++ {
			buf[k], buf[i] = buf[i], buf[k]
			rec(k + 1)
			buf[k], buf[i] = buf[i], buf[k]
		}
	}
	rec(0)
}

// BagOfAttr returns, for a traversal order, the index i of the first bag in
// the order whose vertex set introduces attribute a (i.e. the traversed
// node that Leapfrog is "extending" when it binds a).
func (d *Decomposition) BagOfAttr(order []int, a string) int {
	groups := d.NewAttrsAt(order)
	for i, grp := range groups {
		for _, v := range grp {
			if v == a {
				return i
			}
		}
	}
	return -1
}
